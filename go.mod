module bprom

go 1.24
