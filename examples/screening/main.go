// Screening example: the detector's learned prompt reused as an inline
// request screen. A BadNets-backdoored model is served with screening
// enabled; clean inputs and trigger-stamped inputs are sent through the
// same predict API, and the per-row screening verdicts show the trigger
// rows lighting up while the served confidences stay untouched (annotate
// policy). A second server demonstrates the reject policy withholding
// flagged rows.
package main

import (
	"context"
	"fmt"
	"log"

	"bprom/internal/attack"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/mlaas"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/tensor"
	"bprom/internal/trainer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
	srcTrain, srcTest := srcGen.GenerateSplit(50, 150, rng.New(2))
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(20, 10, rng.New(4))

	// Train the victim: a BadNets patch backdoor targeting class 2.
	fmt.Println("train: poisoning and training a BadNets model ...")
	atk := attack.Config{Kind: attack.BadNets, PoisonRate: 0.15, Target: 2, TriggerSize: 4, Seed: 5}
	poisoned, _, err := attack.Poison(srcTrain, atk, rng.New(6))
	if err != nil {
		return err
	}
	model, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchConvLite, C: srcTrain.Shape.C, H: srcTrain.Shape.H, W: srcTrain.Shape.W,
		NumClasses: srcTrain.Classes, Hidden: 24,
	}, rng.New(7))
	if err != nil {
		return err
	}
	if _, err := trainer.Train(ctx, model, poisoned, trainer.Config{Epochs: 14}, rng.New(8)); err != nil {
		return err
	}

	// Train a small BPROM detector; its shadow prompts are what the
	// screener reuses (mean θ), so this is the same artifact a `bprom
	// train` run would persist and `mlaas-server -screen` would load.
	fmt.Println("train: BPROM detector (shadow prompts double as the request screen) ...")
	det, err := bprom.Train(ctx, bprom.Config{
		Reserved:      srcTest.Reserve(0.10, rng.New(9)),
		ExternalTrain: tgtTrain,
		ExternalTest:  tgtTest,
		NumClean:      4,
		NumBackdoor:   4,
		ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 24},
		ShadowTrain:   trainer.Config{Epochs: 12},
		// A wider learned border (smaller inner window) makes the prompt
		// dominate clean content, which is what separates clean rows
		// (argmax shifts, score drops) from trigger rows (the patch
		// survives the resize and keeps hijacking) at this demo scale.
		PromptFrac: 0.6,
		Seed:       42,
	})
	if err != nil {
		return err
	}
	screener, err := det.Screener(0)
	if err != nil {
		return err
	}
	fmt.Printf("screen: threshold %.2f, canvas dim %d\n", screener.Threshold(), screener.InputDim())

	// Serve WITH inline screening (annotate policy: confidences untouched,
	// verdicts ride along). Equivalent to `mlaas-server -screen d.bpd`.
	server := mlaas.NewServer(model, mlaas.ServerConfig{
		Name:     "model-zoo/animal-classifier",
		Screener: screener,
	})
	ready := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready
	fmt.Printf("serve: screened endpoint live at http://%s\n", addr)

	client, err := mlaas.Dial(ctx, "http://"+addr, mlaas.ClientConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("serve: endpoint advertises screened=%v policy=%q\n", client.Screened(), client.ScreenPolicy())

	// Build a mixed batch: n clean test rows followed by the SAME rows with
	// the attacker's test-time trigger stamped on.
	const n = 6
	trig, err := attack.MakeTrigger(atk, srcTest.Shape)
	if err != nil {
		return err
	}
	dim := srcTest.Shape.Dim()
	x := tensor.New(2*n, dim)
	for i := 0; i < n; i++ {
		copy(x.Row(i), srcTest.Sample(i+2))
		trig.Stamp(x.Row(n+i), srcTest.Sample(i+2), srcTest.Shape, i, 0, true)
	}

	out, scr, err := client.PredictScreened(ctx, x)
	if err != nil {
		return err
	}
	fmt.Println("predict: per-row screening verdicts (annotate policy):")
	var cleanSum, trigSum float64
	for i := 0; i < 2*n; i++ {
		kind := "clean    "
		if i >= n {
			kind = "triggered"
			trigSum += scr[i].Score
		} else {
			cleanSum += scr[i].Score
		}
		fmt.Printf("  row %d  %s  class=%d  score=%.3f  flagged=%v\n",
			i, kind, argmax(out.Row(i)), scr[i].Score, scr[i].Flagged)
	}
	// Per-row flags are noisy at this toy scale (4+4 shadows, 12×12 demo
	// images); the score MEANS separate, which is what a production-scale
	// detector sharpens into reliable per-row flags.
	fmt.Printf("predict: mean score clean %.3f vs triggered %.3f\n", cleanSum/n, trigSum/n)

	// The reject policy withholds flagged rows' confidences instead.
	reject := mlaas.NewServer(model, mlaas.ServerConfig{
		Name:         "model-zoo/animal-classifier",
		Screener:     screener,
		ScreenPolicy: mlaas.ScreenReject,
	})
	ready2 := make(chan string, 1)
	serveErr2 := make(chan error, 1)
	go func() { serveErr2 <- reject.Serve(ctx, "127.0.0.1:0", ready2) }()
	client2, err := mlaas.Dial(ctx, "http://"+<-ready2, mlaas.ClientConfig{})
	if err != nil {
		return err
	}
	_, scr2, err := client2.PredictScreened(ctx, x)
	if err != nil {
		return err
	}
	rejected := 0
	for _, s := range scr2 {
		if s.Rejected {
			rejected++
		}
	}
	fmt.Printf("reject: same batch under -screen-policy reject: %d/%d rows withheld\n", rejected, 2*n)

	cancel()
	if err := <-serveErr; err != nil {
		return err
	}
	if err := <-serveErr2; err != nil {
		return err
	}
	return nil
}

func argmax(row []float64) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}
