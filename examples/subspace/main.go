// Subspace visualization: emit the PCA scatter data behind the paper's
// Figures 3 and 5 as CSV on stdout, plus silhouette summaries. Pipe the
// output into any plotting tool:
//
//	go run ./examples/subspace > subspace.csv
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"bprom/internal/attack"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/stats"
	"bprom/internal/trainer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
	srcTrain, srcTest := srcGen.GenerateSplit(50, 150, rng.New(2))
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(20, 10, rng.New(4))

	// Figure 3 panels (a) and (c): class subspaces of a clean vs an
	// infected source model, projected onto their top-2 PCA directions.
	train := func(ds *data.Dataset, seed uint64) (*nn.Model, error) {
		m, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchConvLite, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
			NumClasses: ds.Classes, Hidden: 24,
		}, rng.New(seed))
		if err != nil {
			return nil, err
		}
		_, err = trainer.Train(ctx, m, ds, trainer.Config{Epochs: 14}, rng.New(seed+1))
		return m, err
	}
	clean, err := train(srcTrain, 10)
	if err != nil {
		return err
	}
	cfg := attack.Config{Kind: attack.BadNets, PoisonRate: 0.20, Target: 0, Seed: 5}
	poisoned, _, err := attack.Poison(srcTrain, cfg, rng.New(6))
	if err != nil {
		return err
	}
	infected, err := train(poisoned, 20)
	if err != nil {
		return err
	}

	fmt.Println("panel,model,x,y,class")
	for _, mc := range []struct {
		name string
		m    *nn.Model
	}{{"clean-source", clean}, {"infected-source", infected}} {
		if err := emitScatter(mc.name, mc.m, srcTest, 150); err != nil {
			return err
		}
	}

	// Figure 5: meta-feature PCA of shadow models from a trained detector.
	det, err := bprom.Train(ctx, bprom.Config{
		Reserved:      srcTest.Reserve(0.10, rng.New(7)),
		ExternalTrain: tgtTrain,
		ExternalTest:  tgtTest,
		NumClean:      6,
		NumBackdoor:   6,
		ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 24},
		ShadowTrain:   trainer.Config{Epochs: 14},
		Seed:          42,
	})
	if err != nil {
		return err
	}
	var rows [][]float64
	var labels []int
	for _, s := range det.Shadows {
		rows = append(rows, s.Features)
		if s.Backdoor {
			labels = append(labels, 1)
		} else {
			labels = append(labels, 0)
		}
	}
	comps, _, err := stats.PCA(rows, 2, rng.New(8))
	if err != nil {
		return err
	}
	proj := stats.Project(rows, comps)
	for i, pnt := range proj {
		fmt.Printf("meta-features,shadow,%.4f,%.4f,%d\n", pnt[0], pnt[1], labels[i])
	}
	fmt.Fprintf(os.Stderr, "meta-feature silhouette (clean vs backdoor): %.3f\n", stats.Silhouette(proj, labels))
	return nil
}

func emitScatter(panel string, m *nn.Model, ds *data.Dataset, n int) error {
	idx := rng.New(9).Sample(ds.Len(), n)
	sub := ds.Subset(idx)
	f := m.Features(sub.Tensor())
	d := f.Dim(1)
	rows := make([][]float64, sub.Len())
	for i := range rows {
		rows[i] = append([]float64(nil), f.Data[i*d:(i+1)*d]...)
	}
	comps, _, err := stats.PCA(rows, 2, rng.New(10))
	if err != nil {
		return err
	}
	proj := stats.Project(rows, comps)
	labels := make([]int, sub.Len())
	copy(labels, sub.Y)
	for i, pnt := range proj {
		fmt.Printf("%s,source,%.4f,%.4f,%d\n", panel, pnt[0], pnt[1], labels[i])
	}
	fmt.Fprintf(os.Stderr, "%s class silhouette: %.3f\n", panel, stats.Silhouette(proj, labels))
	return nil
}
