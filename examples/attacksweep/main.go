// Attack sweep: reproduce the shapes of the paper's Tables 3/4/8 — prompted
// accuracy falls and ASR rises as trigger size and poison rate grow.
package main

import (
	"context"
	"fmt"
	"log"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/trainer"
	"bprom/internal/vp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
	srcTrain, srcTest := srcGen.GenerateSplit(50, 20, rng.New(2))
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(20, 10, rng.New(4))

	probe := func(cfg attack.Config) (asr, pacc float64, err error) {
		poisoned, _, err := attack.Poison(srcTrain, cfg, rng.New(6))
		if err != nil {
			return 0, 0, err
		}
		m, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchConvLite, C: srcTrain.Shape.C, H: srcTrain.Shape.H, W: srcTrain.Shape.W,
			NumClasses: srcTrain.Classes, Hidden: 24,
		}, rng.New(7))
		if err != nil {
			return 0, 0, err
		}
		if _, err := trainer.Train(ctx, m, poisoned, trainer.Config{Epochs: 14}, rng.New(8)); err != nil {
			return 0, 0, err
		}
		asr, err = attack.ASR(m, srcTest, cfg)
		if err != nil {
			return 0, 0, err
		}
		prompt, err := vp.NewPrompt(srcTrain.Shape, tgtTrain.Shape, 0.83)
		if err != nil {
			return 0, 0, err
		}
		o := oracle.NewModelOracle(m)
		if err := vp.TrainBlackBox(ctx, o, prompt, tgtTrain, vp.BlackBoxConfig{Iterations: 30}, rng.New(9)); err != nil {
			return 0, 0, err
		}
		pacc, err = (&vp.Prompted{Oracle: o, Prompt: prompt}).Accuracy(ctx, tgtTest)
		return asr, pacc, err
	}

	fmt.Println("trigger-size sweep (Blend, poison 20%):")
	fmt.Println("size  ASR    prompted-acc")
	for _, size := range []int{2, 3, 4, 6} {
		asr, pacc, err := probe(attack.Config{Kind: attack.Blend, PoisonRate: 0.20, TriggerSize: size, Seed: 10})
		if err != nil {
			return err
		}
		fmt.Printf("%dx%d   %.3f  %.3f\n", size, size, asr, pacc)
	}

	fmt.Println("\npoison-rate sweep (Blend, default trigger):")
	fmt.Println("rate  ASR    prompted-acc")
	for _, rate := range []float64{0.05, 0.10, 0.20} {
		asr, pacc, err := probe(attack.Config{Kind: attack.Blend, PoisonRate: rate, Seed: 11})
		if err != nil {
			return err
		}
		fmt.Printf("%.0f%%   %.3f  %.3f\n", rate*100, asr, pacc)
	}
	fmt.Println("\nexpected shape: ASR rises with both knobs; prompted accuracy falls (class-subspace inconsistency).")
	return nil
}
