// MLaaS example: detection across a REAL network boundary. A backdoored
// model is served over HTTP; the BPROM detector dials the endpoint and
// decides clean/backdoor using only the prediction API — exactly the paper's
// MLaaS threat model.
package main

import (
	"context"
	"fmt"
	"log"

	"bprom/internal/attack"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/mlaas"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/trainer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
	srcTrain, srcTest := srcGen.GenerateSplit(50, 150, rng.New(2))
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(20, 10, rng.New(4))

	// The "attacker" side: train a Trojan-backdoored model and serve it.
	fmt.Println("attacker: training and serving a trojaned model ...")
	atk := attack.Config{Kind: attack.Trojan, PoisonRate: 0.15, Target: 2, Seed: 5}
	poisoned, _, err := attack.Poison(srcTrain, atk, rng.New(6))
	if err != nil {
		return err
	}
	model, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchConvLite, C: srcTrain.Shape.C, H: srcTrain.Shape.H, W: srcTrain.Shape.W,
		NumClasses: srcTrain.Classes, Hidden: 24,
	}, rng.New(7))
	if err != nil {
		return err
	}
	if _, err := trainer.Train(ctx, model, poisoned, trainer.Config{Epochs: 14}, rng.New(8)); err != nil {
		return err
	}
	server := mlaas.NewServer(model, mlaas.ServerConfig{Name: "model-zoo/animal-classifier"})
	ready := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready
	fmt.Printf("attacker: model live at http://%s\n", addr)

	// The defender side: dial the endpoint (black-box!) and run BPROM.
	client, err := mlaas.Dial(ctx, "http://"+addr, mlaas.ClientConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("defender: endpoint reports %d classes, input dim %d\n", client.NumClasses(), client.InputDim())

	fmt.Println("defender: training BPROM detector locally ...")
	det, err := bprom.Train(ctx, bprom.Config{
		Reserved:      srcTest.Reserve(0.10, rng.New(9)),
		ExternalTrain: tgtTrain,
		ExternalTest:  tgtTest,
		NumClean:      6,
		NumBackdoor:   6,
		ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 24},
		ShadowTrain:   trainer.Config{Epochs: 14},
		Seed:          42,
	})
	if err != nil {
		return err
	}
	fmt.Println("defender: prompting the remote model over HTTP (CMA-ES, confidence queries only) ...")
	v, err := det.Inspect(ctx, client, 0)
	if err != nil {
		return err
	}
	fmt.Printf("defender: verdict backdoored=%v (score %.3f, prompted acc %.3f, %d HTTP-queried samples)\n",
		v.Backdoored, v.Score, v.PromptedAcc, v.Queries)

	cancel()
	if err := <-serveErr; err != nil {
		return err
	}
	return nil
}
