// Gateway example: the multi-node serving plane in one process. A zoo of
// checkpoints — clean and backdoored — is exported to disk and served by
// TWO mlaas-server nodes (each a registry over the same zoo build, each
// holding the train-once detector artifact reloaded from disk). An
// mlaas-gateway fronts them as one endpoint speaking the exact single-node
// wire API: models are placed on nodes by rendezvous hashing with
// replication, membership is health-checked, and audit jobs come back with
// namespaced ids ("n0.a2" = node n0's job a2). The defender fleet-audits
// THROUGH the gateway — verdicts bit-identical to auditing either node
// directly — and then the node OWNING a running audit is killed mid-run:
// the gateway marks it down, fails predicts over to the survivor, and its
// migration supervisor re-homes the audit job onto the survivor, where it
// completes under its original id with the same verdict the dead node
// would have produced.
//
// This is the in-process twin of the CLI topology:
//
//	attackzoo -export zoo/
//	bprom train -out detector.bpd
//	mlaas-server -addr :8081 -models zoo/ -detector detector.bpd
//	mlaas-server -addr :8082 -models zoo/ -detector detector.bpd
//	mlaas-gateway -nodes http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	    -replication 2 -migrate -migrate-grace 200ms
//	bprom audit -url http://127.0.0.1:8100 -fleet -timeout 5s
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bprom/internal/attack"
	"bprom/internal/audit"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/mlaas"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/tensor"
	"bprom/internal/trainer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
	srcTrain, srcTest := srcGen.GenerateSplit(50, 150, rng.New(2))
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(20, 10, rng.New(4))

	// Materialize the zoo once; every node serves the same build (the
	// uniform-fleet assumption the gateway documents).
	work, err := os.MkdirTemp("", "bprom-gateway-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	zoo := filepath.Join(work, "zoo")
	if err := os.MkdirAll(zoo, 0o755); err != nil {
		return err
	}
	uploads := []struct {
		id   string
		seed uint64
		atk  *attack.Config
	}{
		{"clean", 0, nil},
		// Seed offset 2 matches the examples/fleet badnets upload, keeping
		// the demo checkpoints (and verdicts) consistent across examples.
		{"badnets", 2, &attack.Config{Kind: attack.BadNets, PoisonRate: 0.15, Target: 0, Seed: 6}},
	}
	fmt.Printf("attacker: uploading %d models to the platform ...\n", len(uploads))
	for _, up := range uploads {
		train := srcTrain
		note := "clean upload"
		if up.atk != nil {
			poisoned, _, err := attack.Poison(srcTrain, *up.atk, rng.New(20+up.seed))
			if err != nil {
				return err
			}
			train = poisoned
			note = fmt.Sprintf("backdoored upload (%s)", up.atk.Kind)
		}
		model, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchConvLite, C: srcTrain.Shape.C, H: srcTrain.Shape.H, W: srcTrain.Shape.W,
			NumClasses: srcTrain.Classes, Hidden: 24,
		}, rng.New(30+up.seed))
		if err != nil {
			return err
		}
		if _, err := trainer.Train(ctx, model, train, trainer.Config{Epochs: 14}, rng.New(40+up.seed)); err != nil {
			return err
		}
		path := filepath.Join(zoo, up.id+".bin")
		if err := model.SaveFile(path); err != nil {
			return err
		}
		if err := nn.SidecarFor(model, "zoo/"+up.id, note).WriteFile(path); err != nil {
			return err
		}
	}

	// Train the detector ONCE; both nodes reload the artifact from disk.
	fmt.Println("defender: training BPROM detector once ...")
	det, err := bprom.Train(ctx, bprom.Config{
		Reserved:      srcTest.Reserve(0.10, rng.New(9)),
		ExternalTrain: tgtTrain,
		ExternalTest:  tgtTest,
		NumClean:      6,
		NumBackdoor:   6,
		ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 24},
		ShadowTrain:   trainer.Config{Epochs: 14},
		Seed:          42,
	})
	if err != nil {
		return err
	}
	artifact := filepath.Join(work, "detector.bpd")
	if err := det.SaveFile(artifact); err != nil {
		return err
	}

	// Two independent serving nodes over the same zoo + artifact.
	const nodeCount = 2
	nodeURLs := make([]string, nodeCount)
	serveErrs := make([]chan error, nodeCount)
	cancels := make([]context.CancelFunc, nodeCount)
	for i := 0; i < nodeCount; i++ {
		loaded, err := bprom.LoadFile(artifact)
		if err != nil {
			return err
		}
		reg, err := mlaas.OpenRegistry(zoo, mlaas.RegistryConfig{MaxLoaded: len(uploads)})
		if err != nil {
			return err
		}
		server := mlaas.NewRegistryServer(reg)
		if err := server.EnableAudits(loaded, mlaas.AuditConfig{Workers: 2}); err != nil {
			return err
		}
		nodeCtx, nodeCancel := context.WithCancel(ctx)
		cancels[i] = nodeCancel
		ready := make(chan string, 1)
		serveErrs[i] = make(chan error, 1)
		go func(ch chan error) { ch <- server.Serve(nodeCtx, "127.0.0.1:0", ready) }(serveErrs[i])
		nodeURLs[i] = "http://" + <-ready
		fmt.Printf("platform: node n%d serving %d models at %s\n", i, reg.Len(), nodeURLs[i])
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	// One gateway in front: same wire API, fleet-wide membership. The
	// migration supervisor is on with a short grace window so the demo's
	// node kill re-homes the running audit within a few sweeps.
	gw, err := mlaas.NewGateway(ctx, mlaas.GatewayConfig{
		Nodes:          nodeURLs,
		Replication:    nodeCount,
		HealthInterval: 100 * time.Millisecond,
		MarkDownAfter:  1,
		MarkUpAfter:    1,
		Migration: mlaas.MigrationConfig{
			Enabled:  true,
			Grace:    200 * time.Millisecond,
			Interval: 100 * time.Millisecond,
		},
	})
	if err != nil {
		return err
	}
	gwServer := mlaas.NewGatewayServer(gw)
	gwReady := make(chan string, 1)
	gwErr := make(chan error, 1)
	gwCtx, gwCancel := context.WithCancel(context.Background())
	defer gwCancel()
	go func() { gwErr <- gwServer.Serve(gwCtx, "127.0.0.1:0", gwReady) }()
	base := "http://" + <-gwReady
	h, err := mlaas.Healthz(ctx, base, mlaas.ClientConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("gateway: %s fronting %d/%d healthy nodes (status %s, audits enabled %v)\n",
		base, h.HealthyNodes, h.Nodes, h.Status, h.AuditsEnabled)

	// Fleet audit THROUGH the gateway: jobs land on their rendezvous
	// primary and come back namespaced; verdicts are bit-identical to
	// auditing a node directly.
	list, err := mlaas.ListModels(ctx, base, mlaas.ClientConfig{})
	if err != nil {
		return err
	}
	for i, mi := range list.Models {
		client, err := mlaas.DialModel(ctx, base, mi.ID, mlaas.ClientConfig{AuditPoll: 50 * time.Millisecond})
		if err != nil {
			return err
		}
		job, err := client.AuditModel(ctx, i)
		if err != nil {
			return err
		}
		fmt.Printf("defender: job %s queued for %s on node %s\n", job.ID, mi.ID, job.Node)
		if job, err = client.WaitAudit(ctx, job.ID); err != nil {
			return err
		}
		if job.State != audit.StateDone || job.Verdict == nil {
			return fmt.Errorf("job %s for %s ended %s: %s", job.ID, job.ModelID, job.State, job.Error)
		}
		verdict := "CLEAN"
		if job.Verdict.Backdoored {
			verdict = "BACKDOORED"
		}
		fmt.Printf("defender: %-8s -> %-10s (job %s, node %s, score %.3f, %d queries)\n",
			mi.ID, verdict, job.ID, job.Node, job.Verdict.Score, job.Verdict.Queries)
	}

	// Fault injection: submit one more audit, then kill the node that OWNS
	// it mid-run. The probe loop marks the owner down, predicts fail over
	// to the survivor, and — after the grace window — the migration
	// supervisor re-submits the job to the survivor with the newest
	// exported checkpoint. The original namespaced id keeps answering the
	// whole way, and the verdict is the one the dead node owed.
	auditClient, err := mlaas.DialModel(ctx, base, "badnets", mlaas.ClientConfig{AuditPoll: 50 * time.Millisecond})
	if err != nil {
		return err
	}
	job, err := auditClient.AuditModel(ctx, 7)
	if err != nil {
		return err
	}
	victim := int(job.Node[len(job.Node)-1] - '0')
	survivor := 1 - victim
	fmt.Printf("chaos: job %s is running on node %s — killing that node ...\n", job.ID, job.Node)
	cancels[victim]()
	if err := <-serveErrs[victim]; err != nil {
		return err
	}

	client, err := mlaas.DialModel(ctx, base, "clean", mlaas.ClientConfig{})
	if err != nil {
		return err
	}
	x := tensor.New(1, client.InputDim())
	rng.New(7).Uniform(x.Data, 0, 1)
	for i := 0; i < 3; i++ {
		if _, err := client.Predict(ctx, x.Clone()); err != nil {
			return fmt.Errorf("predict after node kill: %w", err)
		}
	}

	// The pre-kill id rides through the 503 window: WaitAudit keeps
	// polling, the supervisor migrates, and the gateway forwards the old
	// id to the new job on the survivor.
	migCtx, migCancel := context.WithTimeout(ctx, 2*time.Minute)
	defer migCancel()
	moved, err := auditClient.WaitAudit(migCtx, job.ID)
	if err != nil {
		return fmt.Errorf("wait for migrated audit: %w", err)
	}
	if moved.State != audit.StateDone || moved.Verdict == nil {
		return fmt.Errorf("migrated job ended %s: %s", moved.State, moved.Error)
	}
	fmt.Printf("gateway: audit migrated %s -> %s (node n%d, continues %s): score %.3f, %d queries\n",
		job.ID, moved.ID, survivor, moved.MigratedFrom, moved.Verdict.Score, moved.Verdict.Queries)

	deadline := time.Now().Add(5 * time.Second)
	for h.HealthyNodes != 1 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		if h, err = mlaas.Healthz(ctx, base, mlaas.ClientConfig{}); err != nil {
			return err
		}
	}
	fmt.Printf("gateway: predicts kept answering; fleet now %d/%d healthy (status %s), %d job(s) migrated\n",
		h.HealthyNodes, h.Nodes, h.Status, h.MigratedJobs)

	gwCancel()
	if err := <-gwErr; err != nil {
		return err
	}
	cancels[survivor]()
	if err := <-serveErrs[survivor]; err != nil {
		return err
	}
	return nil
}
