// Quickstart: train a clean and a BadNets-backdoored classifier on the
// synthetic CIFAR-10 analogue, train a BPROM detector, and inspect both
// models black-box. Expected output: the clean model scores low, the
// backdoored one high.
package main

import (
	"context"
	"fmt"
	"log"

	"bprom/internal/attack"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/trainer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// 1. Data: the suspicious models' domain (CIFAR-10 analogue) and the
	//    defender's external clean dataset DT (STL-10 analogue).
	srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
	srcTrain, srcTest := srcGen.GenerateSplit(50, 150, rng.New(2))
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(20, 10, rng.New(4))

	// 2. Two suspicious models: one clean, one carrying a BadNets backdoor.
	fmt.Println("training suspicious models ...")
	cleanModel, err := trainOn(ctx, srcTrain, 10)
	if err != nil {
		return err
	}
	atk := attack.Config{Kind: attack.BadNets, PoisonRate: 0.15, Target: 0, Seed: 5}
	poisoned, _, err := attack.Poison(srcTrain, atk, rng.New(6))
	if err != nil {
		return err
	}
	backdoored, err := trainOn(ctx, poisoned, 20)
	if err != nil {
		return err
	}
	asr, err := attack.ASR(backdoored, srcTest, atk)
	if err != nil {
		return err
	}
	fmt.Printf("backdoored model: clean acc %.3f, attack success rate %.3f\n",
		trainer.Evaluate(backdoored, srcTest, 0), asr)

	// 3. BPROM: the defender reserves 10%% of the test set as DS, trains
	//    shadow models + meta-classifier.
	fmt.Println("training BPROM detector (shadow models + prompting + meta-classifier) ...")
	det, err := bprom.Train(ctx, bprom.Config{
		Reserved:      srcTest.Reserve(0.10, rng.New(7)),
		ExternalTrain: tgtTrain,
		ExternalTest:  tgtTest,
		NumClean:      6,
		NumBackdoor:   6,
		ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 24},
		ShadowTrain:   trainer.Config{Epochs: 14},
		Seed:          42,
	})
	if err != nil {
		return err
	}

	// 4. Inspect both models using only black-box confidence queries. The
	//    paper evaluates with AUROC, i.e. by score ORDERING across many
	//    models: the backdoored model must score above the clean one.
	scores := make([]float64, 2)
	for i, m := range []*nn.Model{cleanModel, backdoored} {
		name := [...]string{"clean model     ", "backdoored model"}[i]
		v, err := det.Inspect(ctx, oracle.NewModelOracle(m), i)
		if err != nil {
			return err
		}
		scores[i] = v.Score
		fmt.Printf("%s -> backdoor score %.3f (threshold %.3f), prompted acc %.3f, %d queries\n",
			name, v.Score, v.Threshold, v.PromptedAcc, v.Queries)
	}
	if scores[1] > scores[0] {
		fmt.Println("detection succeeded: the backdoored model scores above the clean one")
	} else {
		fmt.Println("detection inconclusive on this seed: scores did not separate")
	}
	return nil
}

func trainOn(ctx context.Context, ds *data.Dataset, seed uint64) (*nn.Model, error) {
	m, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchConvLite, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
		NumClasses: ds.Classes, Hidden: 24,
	}, rng.New(seed))
	if err != nil {
		return nil, err
	}
	if _, err := trainer.Train(ctx, m, ds, trainer.Config{Epochs: 14}, rng.New(seed+1)); err != nil {
		return nil, err
	}
	return m, nil
}
