// Fleet-audit example: the full train-once / audit-many workload in one
// process. An attacker uploads a zoo of checkpoints — a clean model and two
// backdoored ones — to a multi-model MLaaS registry whose LRU hot-set is
// SMALLER than the zoo, so serving pages models in and out of memory. The
// defender trains ONE BPROM detector, persists it as a versioned .bpd
// artifact, and hands the artifact to the platform; the platform reloads it
// from disk (exactly what a separate server process would do) and exposes
// audit-as-a-service. Auditing the whole fleet is then nothing but
// submitting asynchronous audit jobs over HTTP and polling their progress —
// no retraining, and no probe traffic across the wire.
//
// This is the in-process twin of the CLI walkthrough:
//
//	attackzoo -export zoo/
//	bprom train -out detector.bpd
//	mlaas-server -models zoo/ -detector detector.bpd
//	bprom audit -url http://... -fleet
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bprom/internal/attack"
	"bprom/internal/audit"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/mlaas"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/trainer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
	srcTrain, srcTest := srcGen.GenerateSplit(50, 150, rng.New(2))
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(20, 10, rng.New(4))

	// The "attacker" side: materialize a zoo of checkpoints on disk.
	work, err := os.MkdirTemp("", "bprom-fleet-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	zoo := filepath.Join(work, "zoo")
	if err := os.MkdirAll(zoo, 0o755); err != nil {
		return err
	}
	uploads := []struct {
		id  string
		atk *attack.Config
	}{
		{"clean", nil},
		{"trojan", &attack.Config{Kind: attack.Trojan, PoisonRate: 0.15, Target: 2, Seed: 5}},
		{"badnets", &attack.Config{Kind: attack.BadNets, PoisonRate: 0.15, Target: 0, Seed: 6}},
	}
	fmt.Printf("attacker: uploading %d models to the platform ...\n", len(uploads))
	for i, up := range uploads {
		train := srcTrain
		note := "clean upload"
		if up.atk != nil {
			poisoned, _, err := attack.Poison(srcTrain, *up.atk, rng.New(uint64(20+i)))
			if err != nil {
				return err
			}
			train = poisoned
			note = fmt.Sprintf("backdoored upload (%s)", up.atk.Kind)
		}
		model, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchConvLite, C: srcTrain.Shape.C, H: srcTrain.Shape.H, W: srcTrain.Shape.W,
			NumClasses: srcTrain.Classes, Hidden: 24,
		}, rng.New(uint64(30+i)))
		if err != nil {
			return err
		}
		if _, err := trainer.Train(ctx, model, train, trainer.Config{Epochs: 14}, rng.New(uint64(40+i))); err != nil {
			return err
		}
		path := filepath.Join(zoo, up.id+".bin")
		if err := model.SaveFile(path); err != nil {
			return err
		}
		if err := nn.SidecarFor(model, "zoo/"+up.id, note).WriteFile(path); err != nil {
			return err
		}
	}

	// The defender side, OFFLINE phase: train the detector ONCE and persist
	// it as a versioned artifact.
	fmt.Println("defender: training BPROM detector once ...")
	det, err := bprom.Train(ctx, bprom.Config{
		Reserved:      srcTest.Reserve(0.10, rng.New(9)),
		ExternalTrain: tgtTrain,
		ExternalTest:  tgtTest,
		NumClean:      6,
		NumBackdoor:   6,
		ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 24},
		ShadowTrain:   trainer.Config{Epochs: 14},
		Seed:          42,
	})
	if err != nil {
		return err
	}
	artifact := filepath.Join(work, "detector.bpd")
	if err := det.SaveFile(artifact); err != nil {
		return err
	}
	st, err := os.Stat(artifact)
	if err != nil {
		return err
	}
	fmt.Printf("defender: detector artifact written (%s, %d bytes)\n", filepath.Base(artifact), st.Size())

	// The platform: a registry whose hot-set is smaller than the zoo, plus
	// audit-as-a-service over the artifact RELOADED from disk — the same
	// train-once detector a fresh server process would start from.
	loaded, err := bprom.LoadFile(artifact)
	if err != nil {
		return err
	}
	const maxLoaded = 2
	reg, err := mlaas.OpenRegistry(zoo, mlaas.RegistryConfig{MaxLoaded: maxLoaded})
	if err != nil {
		return err
	}
	server := mlaas.NewRegistryServer(reg)
	if err := server.EnableAudits(loaded, mlaas.AuditConfig{Workers: 2}); err != nil {
		return err
	}
	ready := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready
	fmt.Printf("platform: %d models live at http://%s (LRU hot-set of %d, audits enabled)\n",
		reg.Len(), addr, maxLoaded)

	// The defender side, ONLINE phase: discover the fleet and submit one
	// asynchronous server-side audit job per model. No retraining, no
	// probe traffic over the wire — just job submissions and polling.
	base := "http://" + addr
	if h, err := mlaas.Healthz(ctx, base, mlaas.ClientConfig{}); err != nil || !h.AuditsEnabled {
		return fmt.Errorf("platform health: %+v err=%v", h, err)
	}
	list, err := mlaas.ListModels(ctx, base, mlaas.ClientConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("defender: endpoint lists %d models; submitting audit jobs ...\n", len(list.Models))

	jobs := make([]audit.Job, len(list.Models))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, mi := range list.Models {
		wg.Add(1)
		go func(i int, mi mlaas.ModelInfo) {
			defer wg.Done()
			client, err := mlaas.DialModel(ctx, base, mi.ID, mlaas.ClientConfig{AuditPoll: 50 * time.Millisecond})
			var job audit.Job
			if err == nil {
				job, err = client.AuditModel(ctx, i)
			}
			if err == nil {
				fmt.Printf("defender: job %s queued for %s\n", job.ID, mi.ID)
				job, err = client.WaitAudit(ctx, job.ID)
				jobs[i] = job
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("audit %s: %w", mi.ID, err)
				}
				mu.Unlock()
			}
		}(i, mi)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for _, job := range jobs {
		if job.State != audit.StateDone || job.Verdict == nil {
			return fmt.Errorf("job %s for %s ended %s: %s", job.ID, job.ModelID, job.State, job.Error)
		}
		v := job.Verdict
		verdict := "CLEAN"
		if v.Backdoored {
			verdict = "BACKDOORED"
		}
		fmt.Printf("defender: %-8s -> %-10s (job %s, score %.3f, prompted acc %.3f, %d queries in %s)\n",
			job.ModelID, verdict, job.ID, v.Score, v.PromptedAcc, v.Queries,
			job.Finished.Sub(job.Started).Round(time.Millisecond))
	}

	cancel()
	if err := <-serveErr; err != nil {
		return err
	}
	return nil
}
