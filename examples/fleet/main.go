// Fleet-audit example: the full "audit a whole platform" workload in one
// process. An attacker uploads a zoo of checkpoints — a clean model and two
// backdoored ones — to a multi-model MLaaS registry whose LRU hot-set is
// SMALLER than the zoo, so serving pages models in and out of memory. The
// defender then discovers every hosted model over HTTP, trains one BPROM
// detector, and audits the entire fleet concurrently with nothing but
// confidence queries.
//
// This is the in-process twin of the CLI walkthrough:
//
//	attackzoo -export zoo/ && mlaas-server -models zoo/ && bprom -url ... -fleet
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"bprom/internal/attack"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/mlaas"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/trainer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
	srcTrain, srcTest := srcGen.GenerateSplit(50, 150, rng.New(2))
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(20, 10, rng.New(4))

	// The "attacker" side: materialize a zoo of checkpoints on disk.
	zoo, err := os.MkdirTemp("", "bprom-zoo-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(zoo)
	uploads := []struct {
		id  string
		atk *attack.Config
	}{
		{"clean", nil},
		{"trojan", &attack.Config{Kind: attack.Trojan, PoisonRate: 0.15, Target: 2, Seed: 5}},
		{"badnets", &attack.Config{Kind: attack.BadNets, PoisonRate: 0.15, Target: 0, Seed: 6}},
	}
	fmt.Printf("attacker: uploading %d models to the platform ...\n", len(uploads))
	for i, up := range uploads {
		train := srcTrain
		note := "clean upload"
		if up.atk != nil {
			poisoned, _, err := attack.Poison(srcTrain, *up.atk, rng.New(uint64(20+i)))
			if err != nil {
				return err
			}
			train = poisoned
			note = fmt.Sprintf("backdoored upload (%s)", up.atk.Kind)
		}
		model, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchConvLite, C: srcTrain.Shape.C, H: srcTrain.Shape.H, W: srcTrain.Shape.W,
			NumClasses: srcTrain.Classes, Hidden: 24,
		}, rng.New(uint64(30+i)))
		if err != nil {
			return err
		}
		if _, err := trainer.Train(ctx, model, train, trainer.Config{Epochs: 14}, rng.New(uint64(40+i))); err != nil {
			return err
		}
		path := filepath.Join(zoo, up.id+".bin")
		if err := model.SaveFile(path); err != nil {
			return err
		}
		if err := nn.SidecarFor(model, "zoo/"+up.id, note).WriteFile(path); err != nil {
			return err
		}
	}

	// The platform: a registry whose hot-set is smaller than the zoo —
	// serving all models pages checkpoints in and out on demand.
	const maxLoaded = 2
	reg, err := mlaas.OpenRegistry(zoo, mlaas.RegistryConfig{MaxLoaded: maxLoaded})
	if err != nil {
		return err
	}
	server := mlaas.NewRegistryServer(reg)
	ready := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready
	fmt.Printf("platform: %d models live at http://%s (LRU hot-set of %d)\n", reg.Len(), addr, maxLoaded)

	// The defender side: discover the fleet, train ONE detector, audit all.
	list, err := mlaas.ListModels(ctx, "http://"+addr, mlaas.ClientConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("defender: endpoint lists %d models (default %q)\n", len(list.Models), list.Default)

	fmt.Println("defender: training BPROM detector locally ...")
	det, err := bprom.Train(ctx, bprom.Config{
		Reserved:      srcTest.Reserve(0.10, rng.New(9)),
		ExternalTrain: tgtTrain,
		ExternalTest:  tgtTest,
		NumClean:      6,
		NumBackdoor:   6,
		ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 24},
		ShadowTrain:   trainer.Config{Epochs: 14},
		Seed:          42,
	})
	if err != nil {
		return err
	}

	fmt.Println("defender: auditing the whole fleet concurrently (black-box) ...")
	type result struct {
		id string
		v  bprom.Verdict
	}
	results := make([]result, len(list.Models))
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for i, mi := range list.Models {
		wg.Add(1)
		go func(i int, mi mlaas.ModelInfo) {
			defer wg.Done()
			client, err := mlaas.DialModel(ctx, "http://"+addr, mi.ID, mlaas.ClientConfig{})
			if err == nil {
				var v bprom.Verdict
				v, err = det.Inspect(ctx, client, i)
				results[i] = result{id: mi.ID, v: v}
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("audit %s: %w", mi.ID, err)
				}
				mu.Unlock()
			}
		}(i, mi)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for _, res := range results {
		verdict := "CLEAN"
		if res.v.Backdoored {
			verdict = "BACKDOORED"
		}
		fmt.Printf("defender: %-8s -> %-10s (score %.3f, prompted acc %.3f, %d queries)\n",
			res.id, verdict, res.v.Score, res.v.PromptedAcc, res.v.Queries)
	}

	cancel()
	if err := <-serveErr; err != nil {
		return err
	}
	return nil
}
