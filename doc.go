// Package bprom is the repository root of a pure-Go reproduction of
// "Prompting the Unseen: Detecting Hidden Backdoors in Black-Box Models"
// (IEEE/IFIP DSN 2025). The implementation lives under internal/; the
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section. See README.md for the tour and DESIGN.md for
// the system inventory and substitution notes.
package bprom
