package audit

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"bprom/internal/jobstore"
	"bprom/internal/oracle"
	"bprom/internal/tensor"
)

// gateOracle forwards Predicts to the real model until the gate is shut,
// then parks until the context dies — the deterministic way to freeze an
// inspection mid-run so a shutdown lands between generations.
type gateOracle struct {
	inner oracle.Oracle
	shut  atomic.Bool
}

func (o *gateOracle) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if o.shut.Load() {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return o.inner.Predict(ctx, x)
}
func (o *gateOracle) NumClasses() int { return o.inner.NumClasses() }
func (o *gateOracle) InputDim() int   { return o.inner.InputDim() }

// openStore opens a job store in dir or fails the test.
func openStore(t *testing.T, dir string) *jobstore.Store {
	t.Helper()
	s, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestKillRestartResumesBitExact is the platform's core durability claim:
// an audit interrupted mid-run by a shutdown resumes on the next boot from
// its last journaled generation and still produces a verdict bit-identical
// to an uninterrupted in-process inspection on the same RNG stream.
func TestKillRestartResumesBitExact(t *testing.T) {
	det, sus := sharedDetector(t)
	dir := t.TempDir()
	oracleFor := func(modelID, tenant string) (oracle.Oracle, error) {
		return oracle.NewModelOracle(sus), nil
	}

	// First life: run the job past generation 1, then freeze its oracle and
	// shut down gracefully mid-inspection.
	store1 := openStore(t, dir)
	m1 := mustManager(t, det, Config{Workers: 1, Store: store1, OracleFor: oracleFor})
	gate := &gateOracle{inner: oracle.NewModelOracle(sus)}
	j, err := m1.Submit("m0", "acme", gate, 7)
	if err != nil {
		t.Fatal(err)
	}
	mid := waitState(t, m1, j.ID, func(j Job) bool {
		return j.Progress.Generation >= 1 || j.State.Terminal()
	})
	if mid.State.Terminal() {
		t.Fatalf("job finished before it could be interrupted: %+v", mid)
	}
	gate.shut.Store(true)
	m1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: the journal must re-enqueue the job (no terminal record
	// was written at shutdown) and finish it bit-exactly.
	store2 := openStore(t, dir)
	defer store2.Close()
	m2 := mustManager(t, det, Config{Workers: 1, Store: store2, OracleFor: oracleFor})
	t.Cleanup(m2.Close)
	if m2.Resumed() != 1 {
		t.Fatalf("Resumed() = %d, want 1", m2.Resumed())
	}
	final := waitState(t, m2, j.ID, func(j Job) bool { return j.State.Terminal() })
	if final.State != StateDone || final.Verdict == nil {
		t.Fatalf("resumed job did not complete: %+v", final)
	}
	if final.Tenant != "acme" {
		t.Fatalf("tenant attribution lost across restart: %q", final.Tenant)
	}

	want, err := det.Inspect(context.Background(), oracle.NewModelOracle(sus), 7)
	if err != nil {
		t.Fatal(err)
	}
	if *final.Verdict != want {
		t.Fatalf("resumed verdict %+v differs from uninterrupted inspection %+v", *final.Verdict, want)
	}
}

// TestCloseFlushesFinalCheckpoint pins the graceful-shutdown guarantee on
// its own: with CheckpointEvery far above the generation budget the
// periodic journaling never writes a checkpoint, so the one the next boot
// resumes from can only have come from the Close flush.
func TestCloseFlushesFinalCheckpoint(t *testing.T) {
	det, sus := sharedDetector(t)
	dir := t.TempDir()
	oracleFor := func(modelID, tenant string) (oracle.Oracle, error) {
		return oracle.NewModelOracle(sus), nil
	}

	store1 := openStore(t, dir)
	m1 := mustManager(t, det, Config{Workers: 1, Store: store1, OracleFor: oracleFor, CheckpointEvery: 1000})
	gate := &gateOracle{inner: oracle.NewModelOracle(sus)}
	j, err := m1.Submit("m0", "", gate, 3)
	if err != nil {
		t.Fatal(err)
	}
	mid := waitState(t, m1, j.ID, func(j Job) bool {
		return j.Progress.Generation >= 1 || j.State.Terminal()
	})
	if mid.State.Terminal() {
		t.Fatalf("job finished before it could be interrupted: %+v", mid)
	}
	gate.shut.Store(true)
	m1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := openStore(t, dir)
	defer store2.Close()
	recs := store2.Jobs()
	if len(recs) != 1 {
		t.Fatalf("journal holds %d jobs, want 1", len(recs))
	}
	if recs[0].Generation < 1 || len(recs[0].Checkpoint) == 0 {
		t.Fatalf("Close did not flush a checkpoint: gen %d, %d checkpoint bytes",
			recs[0].Generation, len(recs[0].Checkpoint))
	}
	if recs[0].State.Terminal() {
		t.Fatalf("shutdown wrote a terminal record: %q", recs[0].State)
	}

	m2 := mustManager(t, det, Config{Workers: 1, Store: store2, OracleFor: oracleFor})
	t.Cleanup(m2.Close)
	final := waitState(t, m2, j.ID, func(j Job) bool { return j.State.Terminal() })
	want, err := det.Inspect(context.Background(), oracle.NewModelOracle(sus), 3)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Verdict == nil || *final.Verdict != want {
		t.Fatalf("resumed-from-flush verdict mismatch: %+v want %+v", final, want)
	}
}

// TestQuotaExhaustedJob drives a tenant's oracle-query budget to zero
// mid-audit and checks the failure is structured: machine-readable error
// code, and a queries figure that matches the tenant ledger exactly.
func TestQuotaExhaustedJob(t *testing.T) {
	det, sus := sharedDetector(t)
	tn := jobstore.NewTenancy([]jobstore.TenantConfig{
		{Name: "broke", Key: "k1", Quota: 10},
	}, nil)
	tenant, _ := tn.Lookup("broke")

	m := mustManager(t, det, Config{Workers: 1})
	t.Cleanup(m.Close)
	j, err := m.Submit("m0", "broke", jobstore.WrapOracle(tenant, oracle.NewModelOracle(sus)), 1)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, j.ID, func(j Job) bool { return j.State.Terminal() })
	if final.State != StateFailed || final.ErrorCode != "quota_exhausted" {
		t.Fatalf("quota exhaustion not classified: %+v", final)
	}
	if !strings.Contains(final.Error, "quota") {
		t.Fatalf("error message does not mention the quota: %q", final.Error)
	}
	if final.Progress.Queries != tenant.Spent() {
		t.Fatalf("job queries %d != tenant ledger %d", final.Progress.Queries, tenant.Spent())
	}
	if spent := tenant.Spent(); spent > 10 {
		t.Fatalf("ledger overspent the quota: %d > 10", spent)
	}
}

// TestDeleteStaysGoneAfterRestart distinguishes the two ways a job stops:
// shutdown leaves it resumable, Delete journals a cancel that survives
// compaction and keeps the job out of the next boot's listing.
func TestDeleteStaysGoneAfterRestart(t *testing.T) {
	det, sus := sharedDetector(t)
	dir := t.TempDir()
	oracleFor := func(modelID, tenant string) (oracle.Oracle, error) {
		return oracle.NewModelOracle(sus), nil
	}

	store1 := openStore(t, dir)
	m1 := mustManager(t, det, Config{Workers: 1, Store: store1, OracleFor: oracleFor})
	blocker := newBlockingOracle(det)
	j, err := m1.Submit("doomed", "", blocker, -1)
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	if _, err := m1.Delete(j.ID); err != nil {
		t.Fatal(err)
	}
	m1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := openStore(t, dir)
	defer store2.Close()
	m2 := mustManager(t, det, Config{Workers: 1, Store: store2, OracleFor: oracleFor})
	t.Cleanup(m2.Close)
	if m2.Resumed() != 0 {
		t.Fatalf("cancelled job resumed: Resumed() = %d", m2.Resumed())
	}
	if n := len(m2.List()); n != 0 {
		t.Fatalf("cancelled job still listed after restart: %d jobs", n)
	}
}

// TestSubmitJournaledBeforeAck: an acknowledged submission must already be
// in the journal — a crash immediately after Submit returns cannot lose it.
func TestSubmitJournaledBeforeAck(t *testing.T) {
	det, _ := sharedDetector(t)
	dir := t.TempDir()
	store := openStore(t, dir)
	defer store.Close()
	m := mustManager(t, det, Config{Workers: 1, Store: store, OracleFor: func(string, string) (oracle.Oracle, error) {
		return newBlockingOracle(det), nil
	}})
	t.Cleanup(m.Close)

	blocker := newBlockingOracle(det)
	if _, err := m.Submit("m0", "acme", blocker, 5); err != nil {
		t.Fatal(err)
	}
	recs := store.Jobs()
	if len(recs) != 1 || recs[0].ModelID != "m0" || recs[0].Tenant != "acme" || recs[0].InspectID != 5 {
		t.Fatalf("submission not journaled before ack: %+v", recs)
	}
}

// TestResumedSeqContinues: job IDs minted after a restart must not collide
// with journaled ones.
func TestResumedSeqContinues(t *testing.T) {
	det, sus := sharedDetector(t)
	dir := t.TempDir()
	oracleFor := func(modelID, tenant string) (oracle.Oracle, error) {
		return oracle.NewModelOracle(sus), nil
	}

	store1 := openStore(t, dir)
	m1 := mustManager(t, det, Config{Workers: 1, Store: store1, OracleFor: oracleFor})
	a, err := m1.Submit("m0", "", oracle.NewModelOracle(sus), 1)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, a.ID, func(j Job) bool { return j.State.Terminal() })
	m1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := openStore(t, dir)
	defer store2.Close()
	m2 := mustManager(t, det, Config{Workers: 1, Store: store2, OracleFor: oracleFor})
	t.Cleanup(m2.Close)
	b, err := m2.Submit("m1", "", oracle.NewModelOracle(sus), 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID == a.ID {
		t.Fatalf("post-restart job ID collides with journaled job: %s", b.ID)
	}
	// The terminal job from the first life is retained in the listing.
	got, err := m2.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Verdict == nil {
		t.Fatalf("journaled terminal job lost its verdict: %+v", got)
	}
	waitState(t, m2, b.ID, func(j Job) bool { return j.State.Terminal() })
}
