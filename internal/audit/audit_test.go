package audit

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/tensor"
	"bprom/internal/trainer"
	"bprom/internal/vp"
)

// Tiny prompting budgets: the tests exercise scheduling, not detection
// quality.
func vpWhiteBox() vp.WhiteBoxConfig { return vp.WhiteBoxConfig{Epochs: 2} }
func vpBlackBox() vp.BlackBoxConfig { return vp.BlackBoxConfig{Iterations: 3, BatchSize: 6} }

// trackingOracle counts Predict calls on the way into another oracle.
type trackingOracle struct {
	inner oracle.Oracle
	calls atomic.Int64
}

func (o *trackingOracle) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	o.calls.Add(1)
	return o.inner.Predict(ctx, x)
}
func (o *trackingOracle) NumClasses() int { return o.inner.NumClasses() }
func (o *trackingOracle) InputDim() int   { return o.inner.InputDim() }

var (
	envOnce sync.Once
	envDet  *bprom.Detector
	envSus  *nn.Model
)

// sharedDetector trains one tiny detector and one suspicious model, reused
// across the tests (training dominates test runtime).
func sharedDetector(t *testing.T) (*bprom.Detector, *nn.Model) {
	t.Helper()
	envOnce.Do(func() {
		ctx := context.Background()
		srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
		srcTrain, srcTest := srcGen.GenerateSplit(12, 40, rng.New(2))
		tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
		tgtTrain, tgtTest := tgtGen.GenerateSplit(6, 4, rng.New(4))
		det, err := bprom.Train(ctx, bprom.Config{
			Reserved:      srcTest.Reserve(0.10, rng.New(5)),
			ExternalTrain: tgtTrain,
			ExternalTest:  tgtTest,
			NumClean:      2,
			NumBackdoor:   2,
			ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 12},
			ShadowTrain:   trainer.Config{Epochs: 3},
			WhiteBox:      vpWhiteBox(),
			BlackBox:      vpBlackBox(),
			QuerySamples:  6,
			Seed:          42,
		})
		if err != nil {
			panic(err)
		}
		envDet = det
		m, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchConvLite, C: srcTrain.Shape.C, H: srcTrain.Shape.H, W: srcTrain.Shape.W,
			NumClasses: srcTrain.Classes, Hidden: 12,
		}, rng.New(7))
		if err != nil {
			panic(err)
		}
		if _, err := trainer.Train(ctx, m, srcTrain, trainer.Config{Epochs: 3}, rng.New(8)); err != nil {
			panic(err)
		}
		envSus = m
	})
	return envDet, envSus
}

func waitState(t *testing.T, m *Manager, id string, want func(Job) bool) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if want(j) {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the wanted state", id)
	return Job{}
}

// mustManager constructs a Manager or fails the test.
func mustManager(t *testing.T, det *bprom.Detector, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestJobLifecycleAndVerdictParity(t *testing.T) {
	det, sus := sharedDetector(t)
	m := mustManager(t, det, Config{Workers: 2})
	t.Cleanup(m.Close)

	j, err := m.Submit("m0", "", oracle.NewModelOracle(sus), 7)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID == "" || j.InspectID != 7 {
		t.Fatalf("submitted snapshot: %+v", j)
	}
	final := waitState(t, m, j.ID, func(j Job) bool { return j.State.Terminal() })
	if final.State != StateDone || final.Verdict == nil {
		t.Fatalf("job did not complete: %+v", final)
	}
	if final.Progress.Generation != final.Progress.Generations || final.Progress.Generations == 0 {
		t.Fatalf("final progress incomplete: %+v", final.Progress)
	}
	if final.Progress.Queries == 0 || final.Verdict.Queries != final.Progress.Queries {
		t.Fatalf("query accounting: progress %d, verdict %d", final.Progress.Queries, final.Verdict.Queries)
	}
	if final.Started.IsZero() || final.Finished.IsZero() {
		t.Fatalf("lifecycle timestamps missing: %+v", final)
	}

	// The job's verdict must be bit-identical to a direct in-process
	// inspection with the same inspect id.
	want, err := det.Inspect(context.Background(), oracle.NewModelOracle(sus), 7)
	if err != nil {
		t.Fatal(err)
	}
	if *final.Verdict != want {
		t.Fatalf("job verdict %+v differs from in-process %+v", *final.Verdict, want)
	}

	list := m.List()
	if len(list) != 1 || list[0].ID != j.ID {
		t.Fatalf("listing: %+v", list)
	}
}

func TestSequentialInspectIDs(t *testing.T) {
	det, sus := sharedDetector(t)
	m := mustManager(t, det, Config{Workers: 1})
	t.Cleanup(m.Close)
	a, err := m.Submit("m0", "", oracle.NewModelOracle(sus), -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit("m1", "", oracle.NewModelOracle(sus), -1)
	if err != nil {
		t.Fatal(err)
	}
	if a.InspectID == b.InspectID {
		t.Fatalf("auto inspect ids collide: %d", a.InspectID)
	}
}

// blockingOracle parks every Predict until its context is cancelled,
// simulating an arbitrarily slow suspicious endpoint.
type blockingOracle struct {
	classes, dim int
	started      chan struct{}
	once         sync.Once
}

func (o *blockingOracle) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	o.once.Do(func() { close(o.started) })
	<-ctx.Done()
	return nil, ctx.Err()
}
func (o *blockingOracle) NumClasses() int { return o.classes }
func (o *blockingOracle) InputDim() int   { return o.dim }

func newBlockingOracle(det *bprom.Detector) *blockingOracle {
	return &blockingOracle{classes: det.MinClasses(), dim: det.InputDim(), started: make(chan struct{})}
}

func TestDeleteCancelsRunningJob(t *testing.T) {
	det, sus := sharedDetector(t)
	m := mustManager(t, det, Config{Workers: 1})
	t.Cleanup(m.Close)

	blocker := newBlockingOracle(det)
	j, err := m.Submit("slow", "", blocker, -1)
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started // the inspection is inside a Predict now
	if _, err := m.Delete(j.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(j.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("deleted job still resolvable: %v", err)
	}

	// The single worker must be free again: a real job completes.
	k, err := m.Submit("m0", "", oracle.NewModelOracle(sus), 1)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, k.ID, func(j Job) bool { return j.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("post-delete job failed: %+v", final)
	}
}

func TestDeleteQueuedJobNeverRuns(t *testing.T) {
	det, _ := sharedDetector(t)
	m := mustManager(t, det, Config{Workers: 1})
	t.Cleanup(m.Close)

	blocker := newBlockingOracle(det)
	running, err := m.Submit("slow", "", blocker, -1)
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	tracked := &trackingOracle{inner: newBlockingOracle(det)}
	queued, err := m.Submit("queued", "", tracked, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Delete(queued.ID); err != nil {
		t.Fatal(err)
	}
	// Free the worker; the deleted job must be skipped without a query.
	if _, err := m.Delete(running.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(m.List()) != 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if tracked.calls.Load() != 0 {
		t.Fatalf("deleted queued job still queried the oracle %d times", tracked.calls.Load())
	}
}

func TestQueueBound(t *testing.T) {
	det, _ := sharedDetector(t)
	m := mustManager(t, det, Config{Workers: 1, MaxQueued: 1})
	t.Cleanup(m.Close)

	blocker := newBlockingOracle(det)
	if _, err := m.Submit("slow", "", blocker, -1); err != nil {
		t.Fatal(err)
	}
	<-blocker.started // worker occupied; queue empty
	if _, err := m.Submit("q1", "", newBlockingOracle(det), -1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("q2", "", newBlockingOracle(det), -1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
}

func TestDeleteFreesQueueSlot(t *testing.T) {
	det, _ := sharedDetector(t)
	m := mustManager(t, det, Config{Workers: 1, MaxQueued: 1})
	t.Cleanup(m.Close)

	blocker := newBlockingOracle(det)
	if _, err := m.Submit("slow", "", blocker, -1); err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	q1, err := m.Submit("q1", "", newBlockingOracle(det), -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("q2", "", newBlockingOracle(det), -1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	// Deleting the queued job must release its slot immediately, even
	// though the worker is still stuck in the running inspection.
	if _, err := m.Delete(q1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("q3", "", newBlockingOracle(det), -1); err != nil {
		t.Fatalf("queue slot not released after delete: %v", err)
	}
}

func TestCloseDrainsRunningJobs(t *testing.T) {
	det, _ := sharedDetector(t)
	m := mustManager(t, det, Config{Workers: 2})

	blocker := newBlockingOracle(det)
	j, err := m.Submit("slow", "", blocker, -1)
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	queued, err := m.Submit("queued", "", newBlockingOracle(det), -1)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain the running job")
	}
	for _, id := range []string{j.ID, queued.ID} {
		got, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != StateFailed {
			t.Fatalf("job %s after Close: %+v", id, got)
		}
	}
	if _, err := m.Submit("late", "", blocker, -1); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}
