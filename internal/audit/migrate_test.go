package audit

import (
	"context"
	"errors"
	"strings"
	"testing"

	"bprom/internal/bprom"
	"bprom/internal/jobstore"
	"bprom/internal/oracle"
	"bprom/internal/tensor"
)

// pauseOracle holds every Predict until its gate channel is closed, then
// forwards to the real model. Unlike gateOracle's park (which only releases
// when the job dies) this lets a test freeze a job in StateRunning before
// its first generation and afterwards let it run to completion.
type pauseOracle struct {
	inner oracle.Oracle
	open  chan struct{}
}

func (o *pauseOracle) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	select {
	case <-o.open:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return o.inner.Predict(ctx, x)
}
func (o *pauseOracle) NumClasses() int { return o.inner.NumClasses() }
func (o *pauseOracle) InputDim() int   { return o.inner.InputDim() }

// Manager-level contract of the migration primitives: ExportCheckpoint's
// lifecycle errors and SubmitResume's three inputs — a live checkpoint, no
// checkpoint at all, and corrupt bytes — each with the verdict/spend
// invariants the gateway supervisor builds on.

func TestExportCheckpointLifecycle(t *testing.T) {
	det, sus := sharedDetector(t)
	m := mustManager(t, det, Config{Workers: 1})
	t.Cleanup(m.Close)

	if _, err := m.ExportCheckpoint("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v, want ErrUnknownJob", err)
	}

	// A job parked before its first completed generation has nothing to
	// export yet: 204 semantics, not an error the supervisor acts on.
	gate := &pauseOracle{inner: oracle.NewModelOracle(sus), open: make(chan struct{})}
	j, err := m.Submit("m0", "", gate, 4)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, func(j Job) bool { return j.State == StateRunning })
	if _, err := m.ExportCheckpoint(j.ID); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("checkpoint before first generation: %v, want ErrNoCheckpoint", err)
	}

	// Once the gate opens the job runs to completion — and a terminal job
	// refuses export: there is nothing to migrate, only a verdict to read.
	close(gate.open)
	waitState(t, m, j.ID, func(j Job) bool { return j.State.Terminal() })
	if _, err := m.ExportCheckpoint(j.ID); !errors.Is(err, ErrTerminalJob) {
		t.Fatalf("terminal job export: %v, want ErrTerminalJob", err)
	}
}

// captureCheckpoint reruns the shared inspection once in-process, returning
// its first mid-run checkpoint (already CRC-framed for the wire) and the
// uninterrupted verdict.
func captureCheckpoint(t *testing.T, inspectID int) ([]byte, bprom.Verdict) {
	t.Helper()
	det, sus := sharedDetector(t)
	var ckpt *bprom.Checkpoint
	want, err := det.InspectResumable(context.Background(), oracle.NewModelOracle(sus), inspectID, nil,
		func(c *bprom.Checkpoint) {
			if ckpt == nil {
				ckpt = c
			}
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt == nil || ckpt.Queries <= 0 || ckpt.Queries >= want.Queries {
		t.Fatalf("unusable mid-run checkpoint: %+v", ckpt)
	}
	blob, err := ckpt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := jobstore.EncodeFrame(blob)
	if err != nil {
		t.Fatal(err)
	}
	return frame, want
}

func TestSubmitResumeBitExactFromCheckpoint(t *testing.T) {
	det, sus := sharedDetector(t)
	frame, want := captureCheckpoint(t, 11)
	m := mustManager(t, det, Config{Workers: 1})
	t.Cleanup(m.Close)

	j, err := m.SubmitResume("m0", "acme", oracle.NewModelOracle(sus), 11, frame, "n0.a3")
	if err != nil {
		t.Fatal(err)
	}
	if j.Tenant != "acme" || j.MigratedFrom != "n0.a3" || j.InspectID != 11 {
		t.Fatalf("resumed identity: %+v", j)
	}
	if j.Progress.Queries == 0 {
		t.Fatal("resumed snapshot must carry the checkpointed spend before the job runs")
	}
	final := waitState(t, m, j.ID, func(j Job) bool { return j.State.Terminal() })
	if final.State != StateDone || final.Verdict == nil {
		t.Fatalf("resumed job: %+v", final)
	}
	if *final.Verdict != want || final.Progress.Queries != want.Queries {
		t.Fatalf("resumed verdict %+v (queries %d) != uninterrupted %+v", *final.Verdict, final.Progress.Queries, want)
	}
}

func TestSubmitResumeEmptyFrameRestartsFresh(t *testing.T) {
	det, sus := sharedDetector(t)
	m := mustManager(t, det, Config{Workers: 1})
	t.Cleanup(m.Close)

	// No cached checkpoint (the owner died before one was exported): the
	// job restarts from generation zero but keeps its identity, so the
	// verdict is still the one the tenant was promised.
	j, err := m.SubmitResume("m0", "acme", oracle.NewModelOracle(sus), 12, nil, "n1.a8")
	if err != nil {
		t.Fatal(err)
	}
	if j.MigratedFrom != "n1.a8" || j.Progress.Queries != 0 {
		t.Fatalf("fresh restart snapshot: %+v", j)
	}
	final := waitState(t, m, j.ID, func(j Job) bool { return j.State.Terminal() })
	want, err := det.Inspect(context.Background(), oracle.NewModelOracle(sus), 12)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Verdict == nil || *final.Verdict != want {
		t.Fatalf("fresh restart verdict: %+v, want %+v", final, want)
	}
}

func TestSubmitResumeCorruptFrameFailsClean(t *testing.T) {
	det, sus := sharedDetector(t)
	frame, _ := captureCheckpoint(t, 13)
	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)-1] ^= 0xff
	m := mustManager(t, det, Config{Workers: 1})
	t.Cleanup(m.Close)

	// The submission is ACCEPTED — the supervisor sees one uniform outcome,
	// a job it can poll — but the job is born terminal with the machine-
	// readable code, and no oracle query is ever spent on it.
	j, err := m.SubmitResume("m0", "acme", oracle.NewModelOracle(sus), 13, corrupt, "n0.a1")
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateFailed || j.ErrorCode != BadCheckpointCode {
		t.Fatalf("corrupt resume: %+v, want failed/%s", j, BadCheckpointCode)
	}
	if !strings.Contains(j.Error, "corrupt") {
		t.Fatalf("failure should say the checkpoint was corrupt: %q", j.Error)
	}
	if j.Progress.Queries != 0 {
		t.Fatalf("corrupt resume charged %d queries", j.Progress.Queries)
	}
	got, err := m.Get(j.ID)
	if err != nil || got.State != StateFailed {
		t.Fatalf("corrupt-resume job must stay pollable: %+v, %v", got, err)
	}
}
