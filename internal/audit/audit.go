// Package audit turns BPROM detection into a platform service: a Manager
// owns one trained (typically artifact-loaded) detector and runs audit JOBS
// against hosted models on a bounded worker pool — the paper's
// train-once / audit-many deployment. Submissions enqueue instantly and
// return a job id; jobs progress queued → running → done / failed, report
// live progress (CMA-ES generation plus oracle query count), and can be
// cancelled at any point via their context. The HTTP face of this package
// is the /v1/audits route family in internal/mlaas (docs/API.md).
//
// Inspections execute in-process on the worker goroutines, so their tensor
// work lands on the one process-wide shared kernel pool (internal/tensor)
// alongside the serving path: audit concurrency is bounded by Workers
// without oversubscribing CPUs.
package audit

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"bprom/internal/bprom"
	"bprom/internal/jobstore"
	"bprom/internal/oracle"
)

// State is an audit job's lifecycle phase.
type State string

// The job lifecycle: Queued → Running → Done | Failed. Cancelled and
// drained jobs end as Failed with a descriptive error.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Job is an immutable snapshot of one audit job. The JSON tags are its wire
// form in the audit-job API (docs/API.md).
type Job struct {
	// ID identifies the job on the /v1/audits routes.
	ID string `json:"id"`
	// ModelID names the audited model.
	ModelID string `json:"model_id"`
	// InspectID seeds the inspection's RNG stream: the same detector,
	// model, and InspectID reproduce the same verdict bit-for-bit.
	InspectID int `json:"inspect_id"`
	// State is the lifecycle phase at snapshot time.
	State State `json:"state"`
	// Progress is the latest inspection progress report.
	Progress bprom.Progress `json:"progress"`
	// Verdict is set once State is StateDone.
	Verdict *bprom.Verdict `json:"verdict,omitempty"`
	// Error describes the failure once State is StateFailed.
	Error string `json:"error,omitempty"`
	// ErrorCode is a machine-readable failure class ("quota_exhausted" when
	// the tenant's oracle-query budget ran out mid-job; empty otherwise).
	ErrorCode string `json:"error_code,omitempty"`
	// Tenant attributes the job to the API-key tenant that submitted it
	// ("" when the server runs without tenancy).
	Tenant string `json:"tenant,omitempty"`
	// Node names the serving node running the job when the job was routed
	// through a gateway ("" for jobs on the node itself). Gateway job ids
	// are namespaced "{node}.{id}" so id collisions across nodes cannot
	// alias; Node carries the same routing fact as a first-class field.
	Node string `json:"node,omitempty"`
	// MigratedFrom names the job this one resumed from when a gateway
	// migrated it off a dead node (the source's namespaced gateway id,
	// e.g. "n0.a3"; empty for jobs that never moved).
	MigratedFrom string `json:"migrated_from,omitempty"`
	// Created, Started and Finished stamp the lifecycle transitions.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// Config tunes a Manager.
type Config struct {
	// Workers bounds concurrently running audits. Each audit is one
	// in-process black-box inspection (thousands of oracle queries);
	// its tensor kernels run on the shared process-wide pool. Default 2.
	Workers int
	// MaxQueued bounds jobs waiting for a worker; Submit fails with
	// ErrQueueFull beyond it. Default 64.
	MaxQueued int
	// Store, when non-nil, makes jobs durable: every lifecycle transition is
	// journaled, running jobs checkpoint their search state at generation
	// boundaries, and NewManager re-enqueues the journal's non-terminal jobs
	// so they resume bit-exactly after a restart. The caller owns the store
	// and must close it only after Close returns.
	Store *jobstore.Store
	// OracleFor rebuilds the black-box oracle for a journaled job at resume
	// time (submission-time oracles do not survive the process). Required
	// when Store is set; a resumed job whose oracle cannot be rebuilt fails
	// with the returned error.
	OracleFor func(modelID, tenant string) (oracle.Oracle, error)
	// CheckpointEvery journals every Nth generation checkpoint (default 1:
	// every completed generation). Larger values trade restart granularity
	// for journal traffic; the latest snapshot is still flushed on graceful
	// Close regardless.
	CheckpointEvery int
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
}

// ErrQueueFull reports a Submit against a full job queue. The HTTP layer
// maps it to 429.
var ErrQueueFull = errors.New("audit: job queue full")

// ErrClosed reports an operation on a closed Manager.
var ErrClosed = errors.New("audit: manager closed")

// ErrUnknownJob reports a job id the manager does not hold. The HTTP layer
// maps it to 404.
var ErrUnknownJob = errors.New("audit: unknown job")

// ErrNoCheckpoint reports an ExportCheckpoint against a job that has not
// completed a generation yet (nothing to resume from). The HTTP layer maps
// it to 204: the job exists, there is just no state to ship.
var ErrNoCheckpoint = errors.New("audit: job has no checkpoint yet")

// ErrTerminalJob reports an ExportCheckpoint against a finished job —
// terminal jobs have verdicts, not resumable state.
var ErrTerminalJob = errors.New("audit: job already terminal")

// BadCheckpointCode is the machine-readable error_code of a job that failed
// because its resume checkpoint (journaled or handed over the wire by a
// migrating gateway) did not decode. The job fails cleanly instead of
// re-running from scratch, which would double-spend the tenant's already-
// journaled queries.
const BadCheckpointCode = "bad_checkpoint"

// job is the mutable behind-the-scenes record; snap and the checkpoint
// fields are guarded by mu.
type job struct {
	mu     sync.Mutex
	snap   Job
	sus    oracle.Oracle
	ctx    context.Context
	cancel context.CancelFunc

	// num is the journal's numeric job ID (snap.ID is "a<num>").
	num uint64
	// resume is the journal checkpoint a rebooted job restarts from.
	resume *bprom.Checkpoint
	// ckpt is the latest in-memory checkpoint; journaledGen tracks the
	// newest generation already written to the journal, so the graceful
	// Close flush and the periodic journaling never double-write.
	ckpt         *bprom.Checkpoint
	journaledGen int
}

func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snap
}

// Manager schedules audit jobs over one trained detector. All methods are
// safe for concurrent use.
type Manager struct {
	det    *bprom.Detector
	cfg    Config
	root   context.Context
	cancel context.CancelFunc
	wake   chan struct{} // nudges idle workers; buffered, best-effort
	wg     sync.WaitGroup
	now    func() time.Time

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, for stable listings
	pending []*job   // queued jobs, FIFO; deleting removes immediately
	seq     int
	resumed int
	closed  bool
}

// NewManager starts a Manager with cfg.Workers worker goroutines over det.
// With a Store configured it first replays the journal: terminal jobs are
// restored to the listing, non-terminal ones are re-enqueued (resuming from
// their last checkpoint when they have one), and the ID sequence continues
// past every journaled ID. Call Close to stop the workers.
func NewManager(det *bprom.Detector, cfg Config) (*Manager, error) {
	cfg.defaults()
	if cfg.Store != nil && cfg.OracleFor == nil {
		return nil, fmt.Errorf("audit: Config.Store requires Config.OracleFor to rebuild oracles on resume")
	}
	root, cancel := context.WithCancel(context.Background())
	m := &Manager{
		det:    det,
		cfg:    cfg,
		root:   root,
		cancel: cancel,
		wake:   make(chan struct{}, cfg.Workers),
		now:    time.Now,
		jobs:   make(map[string]*job),
	}
	if cfg.Store != nil {
		if err := m.replay(); err != nil {
			cancel()
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// replay rebuilds the job table from the journal. Cancelled jobs were
// removed from the listing by Delete and stay gone; done/failed jobs return
// as retained terminal snapshots; queued/running jobs are re-enqueued.
func (m *Manager) replay() error {
	for _, rec := range m.cfg.Store.Jobs() {
		if rec.State == jobstore.StateCancelled {
			continue
		}
		ctx, cancel := context.WithCancel(m.root)
		j := &job{
			num: rec.ID,
			snap: Job{
				ID:        "a" + strconv.FormatUint(rec.ID, 10),
				ModelID:   rec.ModelID,
				InspectID: rec.InspectID,
				Tenant:    rec.Tenant,
				State:     StateQueued,
				Created:   rec.Created,
			},
			ctx:          ctx,
			cancel:       cancel,
			journaledGen: rec.Generation,
		}
		switch rec.State {
		case jobstore.StateDone:
			j.snap.State = StateDone
			j.snap.Finished = rec.Finished
			v := bprom.Verdict{
				Score:       rec.Verdict.Score,
				Threshold:   rec.Verdict.Threshold,
				Backdoored:  rec.Verdict.Backdoored,
				PromptedAcc: rec.Verdict.PromptedAcc,
				Queries:     rec.Verdict.Queries,
			}
			j.snap.Verdict = &v
			j.snap.Progress = bprom.Progress{Queries: v.Queries}
			cancel()
		case jobstore.StateFailed:
			j.snap.State = StateFailed
			j.snap.Finished = rec.Finished
			j.snap.Error = rec.Error
			j.snap.ErrorCode = rec.ErrorCode
			j.snap.Progress = bprom.Progress{Generation: rec.Generation, Queries: rec.Queries}
			cancel()
		default: // queued or running: re-enqueue
			j.snap.Progress = bprom.Progress{Generation: rec.Generation, Queries: rec.Queries}
			if len(rec.Checkpoint) > 0 {
				c, err := bprom.DecodeCheckpoint(rec.Checkpoint)
				if err != nil {
					// A checkpoint that does not decode is real corruption
					// below the CRC layer; fail the job rather than silently
					// re-running it from scratch (which would double-spend
					// the tenant's journaled queries).
					m.failResumed(j, fmt.Sprintf("resume checkpoint corrupt: %v", err), BadCheckpointCode)
					continue
				}
				j.resume = c
				j.ckpt = c
			}
			sus, err := m.cfg.OracleFor(rec.ModelID, rec.Tenant)
			if err != nil {
				m.failResumed(j, fmt.Sprintf("rebuilding oracle for resume: %v", err), "")
				continue
			}
			j.sus = sus
			m.pending = append(m.pending, j)
		}
		m.jobs[j.snap.ID] = j
		m.order = append(m.order, j.snap.ID)
	}
	m.seq = int(m.cfg.Store.NextSeq()) - 1
	m.resumed = len(m.pending)
	return nil
}

// failResumed marks a journal job failed during replay (bad checkpoint,
// unbuildable oracle) both in memory and in the journal.
func (m *Manager) failResumed(j *job, msg, code string) {
	j.cancel()
	j.snap.State = StateFailed
	j.snap.Error = msg
	j.snap.ErrorCode = code
	j.snap.Finished = m.now()
	_ = m.cfg.Store.Fail(j.num, msg, code, j.snap.Progress.Queries, j.snap.Finished)
	m.jobs[j.snap.ID] = j
	m.order = append(m.order, j.snap.ID)
}

// Resumed reports how many journal jobs were re-enqueued at construction.
func (m *Manager) Resumed() int { return m.resumed }

// Detector exposes the managed detector (serving layers use it for
// compatibility checks at submission time).
func (m *Manager) Detector() *bprom.Detector { return m.det }

// Submit enqueues an audit of sus (the black-box oracle for modelID) and
// returns the queued job snapshot. inspectID selects the inspection RNG
// stream; pass a negative value to use the job's submission sequence
// number, which keeps distinct jobs on distinct streams automatically.
// tenant attributes the job for quota accounting and usage reporting (""
// without tenancy). With a Store configured the job is journaled before
// Submit returns: an acknowledged submission survives a crash.
func (m *Manager) Submit(modelID, tenant string, sus oracle.Oracle, inspectID int) (Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Job{}, ErrClosed
	}
	if len(m.pending) >= m.cfg.MaxQueued {
		m.mu.Unlock()
		return Job{}, fmt.Errorf("%w (%d queued)", ErrQueueFull, m.cfg.MaxQueued)
	}
	m.seq++
	if inspectID < 0 {
		inspectID = m.seq
	}
	ctx, cancel := context.WithCancel(m.root)
	j := &job{
		num: uint64(m.seq),
		snap: Job{
			ID:        fmt.Sprintf("a%d", m.seq),
			ModelID:   modelID,
			InspectID: inspectID,
			Tenant:    tenant,
			State:     StateQueued,
			Created:   m.now(),
		},
		sus:    sus,
		ctx:    ctx,
		cancel: cancel,
	}
	if m.cfg.Store != nil {
		if err := m.cfg.Store.Create(j.num, modelID, tenant, inspectID, j.snap.Created); err != nil {
			m.seq--
			m.mu.Unlock()
			cancel()
			return Job{}, fmt.Errorf("audit: journaling submission: %w", err)
		}
	}
	m.pending = append(m.pending, j)
	m.jobs[j.snap.ID] = j
	m.order = append(m.order, j.snap.ID)
	m.mu.Unlock()
	// Best-effort nudge: if the buffer is full, enough wakeups are already
	// outstanding, and workers re-check the pending list before sleeping.
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return j.snapshot(), nil
}

// ExportCheckpoint returns the newest in-memory checkpoint of a
// queued/running job — the state a gateway ships to a healthy replica when
// the node owning the job dies. Jobs that have not completed a generation
// yet fail with ErrNoCheckpoint; terminal jobs with ErrTerminalJob. The
// caller must treat the returned checkpoint as read-only.
func (m *Manager) ExportCheckpoint(id string) (*bprom.Checkpoint, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.snap.State.Terminal() {
		return nil, fmt.Errorf("%w: %q is %s", ErrTerminalJob, id, j.snap.State)
	}
	if j.ckpt == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoCheckpoint, id)
	}
	return j.ckpt, nil
}

// SubmitResume enqueues a migrated audit job: an audit started elsewhere,
// resumed here from a wire-shipped checkpoint (a jobstore CRC frame around
// an encoded bprom.Checkpoint; nil for a from-scratch re-run that only
// preserves identity). source names the job this one continues (the
// gateway's namespaced id) and lands in the snapshot's MigratedFrom.
//
// The frame is validated here, not at the transport: a corrupt or
// truncated checkpoint ACCEPTS the submission and immediately fails the
// job with error code BadCheckpointCode, so a migrating supervisor sees
// one uniform outcome (a terminal job) instead of a rejected request it
// would be tempted to retry. Resuming from scratch on corruption is
// deliberately not attempted — the checkpointed queries are already in the
// source node's ledger, and re-spending them silently would double-charge
// the tenant.
func (m *Manager) SubmitResume(modelID, tenant string, sus oracle.Oracle, inspectID int, frame []byte, source string) (Job, error) {
	var ckpt *bprom.Checkpoint
	var decErr error
	if len(frame) > 0 {
		if payload, err := jobstore.DecodeFrame(frame); err != nil {
			decErr = err
		} else if c, err := bprom.DecodeCheckpoint(payload); err != nil {
			decErr = err
		} else {
			ckpt = c
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Job{}, ErrClosed
	}
	if len(m.pending) >= m.cfg.MaxQueued {
		m.mu.Unlock()
		return Job{}, fmt.Errorf("%w (%d queued)", ErrQueueFull, m.cfg.MaxQueued)
	}
	m.seq++
	if inspectID < 0 {
		inspectID = m.seq
	}
	ctx, cancel := context.WithCancel(m.root)
	j := &job{
		num: uint64(m.seq),
		snap: Job{
			ID:           fmt.Sprintf("a%d", m.seq),
			ModelID:      modelID,
			InspectID:    inspectID,
			Tenant:       tenant,
			State:        StateQueued,
			Created:      m.now(),
			MigratedFrom: source,
		},
		sus:    sus,
		ctx:    ctx,
		cancel: cancel,
	}
	if ckpt != nil {
		j.resume = ckpt
		j.ckpt = ckpt
		j.snap.Progress = bprom.Progress{Generation: ckpt.Generation, Queries: ckpt.Queries}
	}
	if m.cfg.Store != nil {
		if err := m.cfg.Store.Create(j.num, modelID, tenant, inspectID, j.snap.Created); err != nil {
			m.seq--
			m.mu.Unlock()
			cancel()
			return Job{}, fmt.Errorf("audit: journaling submission: %w", err)
		}
	}
	if decErr != nil {
		msg := fmt.Sprintf("migrated checkpoint corrupt: %v", decErr)
		cancel()
		j.snap.State = StateFailed
		j.snap.Error = msg
		j.snap.ErrorCode = BadCheckpointCode
		j.snap.Finished = m.now()
		if m.cfg.Store != nil {
			_ = m.cfg.Store.Fail(j.num, msg, BadCheckpointCode, 0, j.snap.Finished)
		}
		m.jobs[j.snap.ID] = j
		m.order = append(m.order, j.snap.ID)
		m.mu.Unlock()
		return j.snapshot(), nil
	}
	if ckpt != nil && m.cfg.Store != nil {
		// Journal the carried-over checkpoint before the ack: if this node
		// crashes before the job runs, the next boot still resumes from the
		// migrated state, and the tenant's carried spend stays on the ledger.
		if blob, err := ckpt.Encode(); err == nil {
			if m.cfg.Store.Checkpoint(j.num, ckpt.Generation, ckpt.Queries, blob) == nil {
				j.journaledGen = ckpt.Generation
			}
		}
	}
	m.pending = append(m.pending, j)
	m.jobs[j.snap.ID] = j
	m.order = append(m.order, j.snap.ID)
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return j.snapshot(), nil
}

// RetryAfter estimates how long a submitter rejected with ErrQueueFull
// should wait before trying again: the current queue depth spread over the
// worker pool, read as "queue positions a worker tick frees", clamped to
// [1s, 60s]. It is a coarse backpressure hint — audits vary in duration —
// but it scales with real backlog instead of leaving every rejected client
// to guess (the HTTP layer emits it as the 429 Retry-After header).
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	queued := len(m.pending)
	m.mu.Unlock()
	secs := (queued + m.cfg.Workers - 1) / m.cfg.Workers
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

// Len reports how many jobs the manager holds (queued, running, and
// retained terminal jobs) without snapshotting them.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// Get returns the job's current snapshot.
func (m *Manager) Get(id string) (Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.snapshot(), nil
}

// List returns snapshots of every job the manager holds, in submission
// order.
func (m *Manager) List() []Job {
	m.mu.Lock()
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Job, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	return out
}

// Delete cancels the job via its context — a queued job never starts, a
// running inspection aborts at its next oracle query or context check — and
// removes it from the manager. A deleted queued job releases its queue slot
// immediately. It returns the job's final-as-of-deletion snapshot.
func (m *Manager) Delete(id string) (Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if ok {
		delete(m.jobs, id)
		for i, oid := range m.order {
			if oid == id {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		for i, pj := range m.pending {
			if pj == j {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
	}
	m.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.cancel()
	// A deleted job is journaled cancelled: it stays out of the listing on
	// the next boot (unlike shutdown, which deliberately leaves no terminal
	// record so the job resumes).
	if m.cfg.Store != nil {
		_ = m.cfg.Store.Cancel(j.num, m.now())
	}
	return j.snapshot(), nil
}

// Close cancels every queued and running job via the shared root context
// and waits for the workers to drain. In-flight inspections abort at their
// next context check and finish as StateFailed; Close returns once every
// worker has exited. Safe to call more than once.
//
// With a Store configured, Close first persists each running job's latest
// in-memory checkpoint (before the context-cancel, so graceful shutdown
// never loses more than the in-flight generation even when CheckpointEvery
// skips journal writes), and deliberately writes no terminal records: the
// journal keeps shutdown-interrupted jobs queued/running so the next boot
// resumes them.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	var flush []*job
	if m.cfg.Store != nil {
		for _, id := range m.order {
			flush = append(flush, m.jobs[id])
		}
	}
	m.mu.Unlock()
	for _, j := range flush {
		j.mu.Lock()
		c := j.ckpt
		terminal := j.snap.State.Terminal()
		j.mu.Unlock()
		if c != nil && !terminal {
			m.journalCheckpoint(j, c)
		}
	}
	m.cancel()
	m.wg.Wait()
}

// journalCheckpoint writes c to the journal unless an equal-or-newer
// generation is already there. Races between the periodic journaling and the
// Close flush are benign: the generation guard makes the second write a
// no-op.
func (m *Manager) journalCheckpoint(j *job, c *bprom.Checkpoint) {
	j.mu.Lock()
	if c.Generation <= j.journaledGen {
		j.mu.Unlock()
		return
	}
	j.journaledGen = c.Generation
	j.mu.Unlock()
	blob, err := c.Encode()
	if err != nil {
		return
	}
	// A failed journal append is not fatal to the job: the next checkpoint
	// (or the Close flush) retries with a newer generation.
	_ = m.cfg.Store.Checkpoint(j.num, c.Generation, c.Queries, blob)
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		if j := m.pop(); j != nil {
			m.run(j)
			continue
		}
		select {
		case <-m.root.Done():
			m.failQueued()
			return
		case <-m.wake:
		}
	}
}

// pop takes the oldest queued job, or nil when none is waiting. Workers pop
// before sleeping on wake, so a nudge dropped on a full buffer can never
// strand a job: some worker's next pop finds it.
func (m *Manager) pop() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pending) == 0 {
		return nil
	}
	j := m.pending[0]
	m.pending = m.pending[1:]
	return j
}

// failQueued marks every still-queued job failed during shutdown, so no
// snapshot is left dangling in StateQueued forever. It races only with
// Delete, which holds m.mu for its pending-list removal.
func (m *Manager) failQueued() {
	m.mu.Lock()
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	for _, j := range pending {
		j.mu.Lock()
		if !j.snap.State.Terminal() {
			j.snap.State = StateFailed
			j.snap.Error = "audit manager closed before the job ran"
			j.snap.Finished = m.now()
		}
		j.mu.Unlock()
	}
}

func (m *Manager) run(j *job) {
	defer j.cancel() // the job is terminal after run; release its context
	store := m.cfg.Store
	if err := j.ctx.Err(); err != nil {
		// Deleted (journaled cancelled by Delete) or manager closed (no
		// terminal record on purpose: the job resumes next boot) while
		// queued.
		j.mu.Lock()
		j.snap.State = StateFailed
		j.snap.Error = "audit cancelled before it ran"
		j.snap.Finished = m.now()
		j.mu.Unlock()
		return
	}
	j.mu.Lock()
	j.snap.State = StateRunning
	j.snap.Started = m.now()
	inspectID := j.snap.InspectID
	resume := j.resume
	j.mu.Unlock()
	if store != nil {
		_ = store.Start(j.num)
	}

	// The in-memory latest checkpoint is tracked even without a Store: it is
	// what GET /v1/audits/{id}/checkpoint exports, and a storeless node must
	// still hand its jobs to a migrating gateway.
	onCheckpoint := func(c *bprom.Checkpoint) {
		j.mu.Lock()
		j.ckpt = c
		j.mu.Unlock()
		if store != nil && c.Generation%m.cfg.CheckpointEvery == 0 {
			m.journalCheckpoint(j, c)
		}
	}
	v, err := m.det.InspectResumable(j.ctx, j.sus, inspectID, func(p bprom.Progress) {
		j.mu.Lock()
		j.snap.Progress = p
		j.mu.Unlock()
	}, onCheckpoint, resume)

	finished := m.now()
	if err != nil {
		shutdown := m.root.Err() != nil
		cancelled := j.ctx.Err() != nil
		var qe *jobstore.QuotaError
		quota := errors.As(err, &qe)
		j.mu.Lock()
		j.snap.Finished = finished
		j.snap.State = StateFailed
		switch {
		case cancelled:
			j.snap.Error = fmt.Sprintf("audit cancelled: %v", err)
		case quota:
			j.snap.Error = fmt.Sprintf("tenant oracle-query quota exhausted after %d job queries: %v", v.Queries, err)
			j.snap.ErrorCode = "quota_exhausted"
		default:
			j.snap.Error = err.Error()
		}
		j.snap.Progress.Queries = v.Queries
		msg, code, queries := j.snap.Error, j.snap.ErrorCode, v.Queries
		ckpt := j.ckpt
		j.mu.Unlock()
		if store == nil {
			return
		}
		switch {
		case shutdown:
			// Graceful drain: flush the newest checkpoint, write no
			// terminal record — the journal keeps the job running, and the
			// next boot resumes it from exactly here.
			if ckpt != nil {
				m.journalCheckpoint(j, ckpt)
			}
		case cancelled:
			// Deleted mid-run; Delete wrote the cancelled record.
		default:
			_ = store.Fail(j.num, msg, code, queries, finished)
		}
		return
	}

	j.mu.Lock()
	j.snap.Finished = finished
	j.snap.State = StateDone
	j.snap.Verdict = &v
	j.mu.Unlock()
	if store != nil {
		_ = store.Done(j.num, jobstore.VerdictRecord{
			Score:       v.Score,
			Threshold:   v.Threshold,
			Backdoored:  v.Backdoored,
			PromptedAcc: v.PromptedAcc,
			Queries:     v.Queries,
		}, finished)
	}
}
