// Package audit turns BPROM detection into a platform service: a Manager
// owns one trained (typically artifact-loaded) detector and runs audit JOBS
// against hosted models on a bounded worker pool — the paper's
// train-once / audit-many deployment. Submissions enqueue instantly and
// return a job id; jobs progress queued → running → done / failed, report
// live progress (CMA-ES generation plus oracle query count), and can be
// cancelled at any point via their context. The HTTP face of this package
// is the /v1/audits route family in internal/mlaas (docs/API.md).
//
// Inspections execute in-process on the worker goroutines, so their tensor
// work lands on the one process-wide shared kernel pool (internal/tensor)
// alongside the serving path: audit concurrency is bounded by Workers
// without oversubscribing CPUs.
package audit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"bprom/internal/bprom"
	"bprom/internal/oracle"
)

// State is an audit job's lifecycle phase.
type State string

// The job lifecycle: Queued → Running → Done | Failed. Cancelled and
// drained jobs end as Failed with a descriptive error.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Job is an immutable snapshot of one audit job. The JSON tags are its wire
// form in the audit-job API (docs/API.md).
type Job struct {
	// ID identifies the job on the /v1/audits routes.
	ID string `json:"id"`
	// ModelID names the audited model.
	ModelID string `json:"model_id"`
	// InspectID seeds the inspection's RNG stream: the same detector,
	// model, and InspectID reproduce the same verdict bit-for-bit.
	InspectID int `json:"inspect_id"`
	// State is the lifecycle phase at snapshot time.
	State State `json:"state"`
	// Progress is the latest inspection progress report.
	Progress bprom.Progress `json:"progress"`
	// Verdict is set once State is StateDone.
	Verdict *bprom.Verdict `json:"verdict,omitempty"`
	// Error describes the failure once State is StateFailed.
	Error string `json:"error,omitempty"`
	// Node names the serving node running the job when the job was routed
	// through a gateway ("" for jobs on the node itself). Gateway job ids
	// are namespaced "{node}.{id}" so id collisions across nodes cannot
	// alias; Node carries the same routing fact as a first-class field.
	Node string `json:"node,omitempty"`
	// Created, Started and Finished stamp the lifecycle transitions.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// Config tunes a Manager.
type Config struct {
	// Workers bounds concurrently running audits. Each audit is one
	// in-process black-box inspection (thousands of oracle queries);
	// its tensor kernels run on the shared process-wide pool. Default 2.
	Workers int
	// MaxQueued bounds jobs waiting for a worker; Submit fails with
	// ErrQueueFull beyond it. Default 64.
	MaxQueued int
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
}

// ErrQueueFull reports a Submit against a full job queue. The HTTP layer
// maps it to 429.
var ErrQueueFull = errors.New("audit: job queue full")

// ErrClosed reports an operation on a closed Manager.
var ErrClosed = errors.New("audit: manager closed")

// ErrUnknownJob reports a job id the manager does not hold. The HTTP layer
// maps it to 404.
var ErrUnknownJob = errors.New("audit: unknown job")

// job is the mutable behind-the-scenes record; snap is guarded by mu.
type job struct {
	mu     sync.Mutex
	snap   Job
	sus    oracle.Oracle
	ctx    context.Context
	cancel context.CancelFunc
}

func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snap
}

// Manager schedules audit jobs over one trained detector. All methods are
// safe for concurrent use.
type Manager struct {
	det    *bprom.Detector
	cfg    Config
	root   context.Context
	cancel context.CancelFunc
	wake   chan struct{} // nudges idle workers; buffered, best-effort
	wg     sync.WaitGroup
	now    func() time.Time

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, for stable listings
	pending []*job   // queued jobs, FIFO; deleting removes immediately
	seq     int
	closed  bool
}

// NewManager starts a Manager with cfg.Workers worker goroutines over det.
// Call Close to stop them.
func NewManager(det *bprom.Detector, cfg Config) *Manager {
	cfg.defaults()
	root, cancel := context.WithCancel(context.Background())
	m := &Manager{
		det:    det,
		cfg:    cfg,
		root:   root,
		cancel: cancel,
		wake:   make(chan struct{}, cfg.Workers),
		now:    time.Now,
		jobs:   make(map[string]*job),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Detector exposes the managed detector (serving layers use it for
// compatibility checks at submission time).
func (m *Manager) Detector() *bprom.Detector { return m.det }

// Submit enqueues an audit of sus (the black-box oracle for modelID) and
// returns the queued job snapshot. inspectID selects the inspection RNG
// stream; pass a negative value to use the job's submission sequence
// number, which keeps distinct jobs on distinct streams automatically.
func (m *Manager) Submit(modelID string, sus oracle.Oracle, inspectID int) (Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Job{}, ErrClosed
	}
	if len(m.pending) >= m.cfg.MaxQueued {
		m.mu.Unlock()
		return Job{}, fmt.Errorf("%w (%d queued)", ErrQueueFull, m.cfg.MaxQueued)
	}
	m.seq++
	if inspectID < 0 {
		inspectID = m.seq
	}
	ctx, cancel := context.WithCancel(m.root)
	j := &job{
		snap: Job{
			ID:        fmt.Sprintf("a%d", m.seq),
			ModelID:   modelID,
			InspectID: inspectID,
			State:     StateQueued,
			Created:   m.now(),
		},
		sus:    sus,
		ctx:    ctx,
		cancel: cancel,
	}
	m.pending = append(m.pending, j)
	m.jobs[j.snap.ID] = j
	m.order = append(m.order, j.snap.ID)
	m.mu.Unlock()
	// Best-effort nudge: if the buffer is full, enough wakeups are already
	// outstanding, and workers re-check the pending list before sleeping.
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return j.snapshot(), nil
}

// RetryAfter estimates how long a submitter rejected with ErrQueueFull
// should wait before trying again: the current queue depth spread over the
// worker pool, read as "queue positions a worker tick frees", clamped to
// [1s, 60s]. It is a coarse backpressure hint — audits vary in duration —
// but it scales with real backlog instead of leaving every rejected client
// to guess (the HTTP layer emits it as the 429 Retry-After header).
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	queued := len(m.pending)
	m.mu.Unlock()
	secs := (queued + m.cfg.Workers - 1) / m.cfg.Workers
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

// Len reports how many jobs the manager holds (queued, running, and
// retained terminal jobs) without snapshotting them.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// Get returns the job's current snapshot.
func (m *Manager) Get(id string) (Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.snapshot(), nil
}

// List returns snapshots of every job the manager holds, in submission
// order.
func (m *Manager) List() []Job {
	m.mu.Lock()
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Job, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	return out
}

// Delete cancels the job via its context — a queued job never starts, a
// running inspection aborts at its next oracle query or context check — and
// removes it from the manager. A deleted queued job releases its queue slot
// immediately. It returns the job's final-as-of-deletion snapshot.
func (m *Manager) Delete(id string) (Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if ok {
		delete(m.jobs, id)
		for i, oid := range m.order {
			if oid == id {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		for i, pj := range m.pending {
			if pj == j {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
	}
	m.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.cancel()
	return j.snapshot(), nil
}

// Close cancels every queued and running job via the shared root context
// and waits for the workers to drain. In-flight inspections abort at their
// next context check and finish as StateFailed; Close returns once every
// worker has exited. Safe to call more than once.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		if j := m.pop(); j != nil {
			m.run(j)
			continue
		}
		select {
		case <-m.root.Done():
			m.failQueued()
			return
		case <-m.wake:
		}
	}
}

// pop takes the oldest queued job, or nil when none is waiting. Workers pop
// before sleeping on wake, so a nudge dropped on a full buffer can never
// strand a job: some worker's next pop finds it.
func (m *Manager) pop() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pending) == 0 {
		return nil
	}
	j := m.pending[0]
	m.pending = m.pending[1:]
	return j
}

// failQueued marks every still-queued job failed during shutdown, so no
// snapshot is left dangling in StateQueued forever. It races only with
// Delete, which holds m.mu for its pending-list removal.
func (m *Manager) failQueued() {
	m.mu.Lock()
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	for _, j := range pending {
		j.mu.Lock()
		if !j.snap.State.Terminal() {
			j.snap.State = StateFailed
			j.snap.Error = "audit manager closed before the job ran"
			j.snap.Finished = m.now()
		}
		j.mu.Unlock()
	}
}

func (m *Manager) run(j *job) {
	defer j.cancel() // the job is terminal after run; release its context
	if err := j.ctx.Err(); err != nil {
		// Deleted (or manager closed) while queued.
		j.mu.Lock()
		j.snap.State = StateFailed
		j.snap.Error = "audit cancelled before it ran"
		j.snap.Finished = m.now()
		j.mu.Unlock()
		return
	}
	j.mu.Lock()
	j.snap.State = StateRunning
	j.snap.Started = m.now()
	inspectID := j.snap.InspectID
	j.mu.Unlock()

	v, err := m.det.InspectProgress(j.ctx, j.sus, inspectID, func(p bprom.Progress) {
		j.mu.Lock()
		j.snap.Progress = p
		j.mu.Unlock()
	})

	j.mu.Lock()
	defer j.mu.Unlock()
	j.snap.Finished = m.now()
	if err != nil {
		j.snap.State = StateFailed
		if j.ctx.Err() != nil {
			j.snap.Error = fmt.Sprintf("audit cancelled: %v", err)
		} else {
			j.snap.Error = err.Error()
		}
		return
	}
	j.snap.State = StateDone
	j.snap.Verdict = &v
}
