package cmaes

import (
	"context"
	"math"
	"testing"

	"bprom/internal/rng"
)

func sphere(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

func shiftedSphere(target []float64) Objective {
	return func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			d := v - target[i]
			s += d * d
		}
		return s
	}
}

func ellipse(x []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += math.Pow(10, 3*float64(i)/float64(len(x)-1)) * v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	s := 0.0
	for i := 0; i < len(x)-1; i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func TestMinimizeSphere(t *testing.T) {
	x0 := []float64{2, -3, 1, 4, -2}
	res, err := Minimize(sphere, x0, Options{MaxIters: 200, Sigma0: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue > 1e-6 {
		t.Fatalf("full CMA on sphere: best %v", res.BestValue)
	}
}

func TestMinimizeSepSphere(t *testing.T) {
	x0 := make([]float64, 20)
	rng.New(2).Uniform(x0, -3, 3)
	res, err := MinimizeSep(sphere, x0, Options{MaxIters: 300, Sigma0: 1}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue > 1e-4 {
		t.Fatalf("sep-CMA on sphere: best %v", res.BestValue)
	}
}

func TestMinimizeSepShiftedTarget(t *testing.T) {
	target := []float64{1, -2, 0.5, 3}
	res, err := MinimizeSep(shiftedSphere(target), make([]float64, 4), Options{MaxIters: 300, Sigma0: 1}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Best {
		if math.Abs(v-target[i]) > 0.01 {
			t.Fatalf("dim %d: %v, want %v", i, v, target[i])
		}
	}
}

func TestMinimizeEllipse(t *testing.T) {
	// Ill-conditioned problem: full covariance adaptation should still solve it.
	x0 := []float64{3, 3, 3, 3, 3, 3}
	res, err := Minimize(ellipse, x0, Options{MaxIters: 400, Sigma0: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue > 1e-4 {
		t.Fatalf("full CMA on ellipse: best %v", res.BestValue)
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	x0 := make([]float64, 4)
	res, err := Minimize(rosenbrock, x0, Options{MaxIters: 600, Sigma0: 0.5}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue > 1e-2 {
		t.Fatalf("full CMA on rosenbrock: best %v", res.BestValue)
	}
}

func TestBoundsRespected(t *testing.T) {
	// minimum at 2 but box is [-1, 1]: solution should ride the boundary.
	obj := shiftedSphere([]float64{2, 2, 2})
	res, err := MinimizeSep(obj, make([]float64, 3), Options{MaxIters: 200, Sigma0: 0.5, Lo: -1, Hi: 1}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Best {
		if v < -1-1e-12 || v > 1+1e-12 {
			t.Fatalf("candidate outside box: %v", v)
		}
	}
	if res.Best[0] < 0.9 {
		t.Fatalf("expected boundary solution near 1, got %v", res.Best[0])
	}
}

func TestMaxEvalsBudget(t *testing.T) {
	evals := 0
	obj := func(x []float64) float64 {
		evals++
		return sphere(x)
	}
	res, err := MinimizeSep(obj, []float64{5, 5}, Options{MaxIters: 1000, MaxEvals: 40}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if evals > 40 || res.Evals > 40 {
		t.Fatalf("budget exceeded: %d evals (reported %d)", evals, res.Evals)
	}
}

func TestNoisyObjective(t *testing.T) {
	// CMA-ES must tolerate mini-batch style noise.
	noise := rng.New(9)
	obj := func(x []float64) float64 {
		return sphere(x) + 0.05*noise.NormFloat64()
	}
	res, err := MinimizeSep(obj, []float64{3, -3, 2}, Options{MaxIters: 250, Sigma0: 1}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	// true value at the returned point (without noise)
	if sphere(res.Best) > 0.5 {
		t.Fatalf("noisy sphere: true value %v at best point", sphere(res.Best))
	}
}

func TestEmptyStartRejected(t *testing.T) {
	if _, err := Minimize(sphere, nil, Options{}, rng.New(1)); err == nil {
		t.Fatal("expected error for empty x0")
	}
	if _, err := MinimizeSep(sphere, nil, Options{}, rng.New(1)); err == nil {
		t.Fatal("expected error for empty x0")
	}
}

func TestDeterministicRuns(t *testing.T) {
	x0 := []float64{1, 2, 3}
	r1, err := MinimizeSep(sphere, x0, Options{MaxIters: 50}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MinimizeSep(sphere, x0, Options{MaxIters: 50}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestValue != r2.BestValue {
		t.Fatal("same seed produced different trajectories")
	}
	for i := range r1.Best {
		if r1.Best[i] != r2.Best[i] {
			t.Fatal("same seed produced different best points")
		}
	}
}

func TestSPSAConverges(t *testing.T) {
	res := SPSA(context.Background(), sphere, []float64{3, -2, 4}, 500, 0.2, 0.1, Options{}, rng.New(12))
	if res.BestValue > 0.1 {
		t.Fatalf("SPSA best %v", res.BestValue)
	}
}

func TestSPSABounds(t *testing.T) {
	res := SPSA(context.Background(), shiftedSphere([]float64{5, 5}), []float64{0, 0}, 200, 0.3, 0.1, Options{Lo: -1, Hi: 1}, rng.New(13))
	for _, v := range res.Best {
		if v < -1 || v > 1 {
			t.Fatalf("SPSA left the box: %v", v)
		}
	}
}

func TestSPSAMaxEvalsBudget(t *testing.T) {
	for _, maxEvals := range []int{1, 2, 3, 7, 29, 30} {
		evals := 0
		obj := func(x []float64) float64 {
			evals++
			return sphere(x)
		}
		res := SPSA(context.Background(), obj, []float64{3, -2}, 1000, 0.2, 0.1, Options{MaxEvals: maxEvals}, rng.New(14))
		if evals > maxEvals || res.Evals != evals {
			t.Fatalf("MaxEvals=%d: %d objective calls (reported %d)", maxEvals, evals, res.Evals)
		}
		// A step either runs all three of its evaluations or none: the
		// budget must never be spent on a discarded partial step.
		if want := 3 * (maxEvals / 3); evals != want {
			t.Fatalf("MaxEvals=%d: %d evals, want %d full steps' worth", maxEvals, evals, want)
		}
	}
}

func TestSPSAContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	obj := func(x []float64) float64 {
		evals++
		if evals == 6 { // cancel mid-run: the next step must not start
			cancel()
		}
		return sphere(x)
	}
	res := SPSA(ctx, obj, []float64{3, -2}, 1000, 0.2, 0.1, Options{}, rng.New(15))
	if evals > 6 {
		t.Fatalf("SPSA kept evaluating after cancellation: %d evals", evals)
	}
	if res.Iters >= 1000 {
		t.Fatal("SPSA ran to completion despite cancellation")
	}
}

// batchFrom adapts a scalar objective into a BatchObjective that records
// call widths, for the parity tests below.
func batchFrom(obj Objective, widths *[]int) BatchObjective {
	return func(cands [][]float64) []float64 {
		*widths = append(*widths, len(cands))
		out := make([]float64, len(cands))
		for i, x := range cands {
			out[i] = obj(x)
		}
		return out
	}
}

// TestBatchEvaluateBitParity locks the tentpole contract: a run whose
// generations are evaluated by one fused call must be bit-identical to the
// scalar run — same best point, same value, same eval count, same iteration
// count — for both optimizers, with and without a truncating MaxEvals.
func TestBatchEvaluateBitParity(t *testing.T) {
	type minimizer func(obj Objective, x0 []float64, opt Options, r *rng.RNG) (Result, error)
	cases := []struct {
		name string
		run  minimizer
		opt  Options
	}{
		{"sep", MinimizeSep, Options{MaxIters: 60, Sigma0: 0.7}},
		{"sep-maxevals", MinimizeSep, Options{MaxIters: 60, Sigma0: 0.7, MaxEvals: 47}}, // not a λ multiple: truncates a generation
		{"sep-box", MinimizeSep, Options{MaxIters: 40, Sigma0: 0.5, Lo: -1, Hi: 1}},
		{"full", Minimize, Options{MaxIters: 60, Sigma0: 0.7}},
		{"full-maxevals", Minimize, Options{MaxIters: 60, Sigma0: 0.7, MaxEvals: 31}},
	}
	x0 := []float64{2, -3, 1, 4, -2, 0.5}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Stochastic objective with its own stream, like a mini-batch
			// loss: parity must hold for the draw sequence too.
			mkObj := func(seed uint64) Objective {
				noise := rng.New(seed)
				return func(x []float64) float64 { return sphere(x) + 0.01*noise.NormFloat64() }
			}
			serial, err := tc.run(mkObj(77), x0, tc.opt, rng.New(21))
			if err != nil {
				t.Fatal(err)
			}
			var widths []int
			opt := tc.opt
			opt.Evaluate = batchFrom(mkObj(77), &widths)
			batched, err := tc.run(nil, x0, opt, rng.New(21))
			if err != nil {
				t.Fatal(err)
			}
			if batched.BestValue != serial.BestValue || batched.Evals != serial.Evals || batched.Iters != serial.Iters {
				t.Fatalf("batched %+v != serial %+v", batched, serial)
			}
			for i := range serial.Best {
				if batched.Best[i] != serial.Best[i] {
					t.Fatalf("best[%d]: batched %v != serial %v", i, batched.Best[i], serial.Best[i])
				}
			}
			if len(widths) != serial.Iters {
				t.Fatalf("%d fused calls for %d generations", len(widths), serial.Iters)
			}
			total := 0
			for _, w := range widths {
				total += w
			}
			if total != serial.Evals {
				t.Fatalf("fused widths sum to %d, want %d evals", total, serial.Evals)
			}
			if tc.opt.MaxEvals > 0 && widths[len(widths)-1] >= widths[0] && serial.Evals == tc.opt.MaxEvals && tc.opt.MaxEvals%widths[0] != 0 {
				t.Fatalf("expected a truncated final generation, widths %v", widths)
			}
		})
	}
}

func TestBatchEvaluateWrongWidthRejected(t *testing.T) {
	bad := func(cands [][]float64) []float64 { return make([]float64, len(cands)+1) }
	if _, err := MinimizeSep(nil, []float64{1, 2}, Options{MaxIters: 5, Evaluate: bad}, rng.New(1)); err == nil {
		t.Fatal("expected error for wrong-width batch evaluator")
	}
	if _, err := Minimize(nil, []float64{1, 2}, Options{MaxIters: 5, Evaluate: bad}, rng.New(1)); err == nil {
		t.Fatal("expected error for wrong-width batch evaluator")
	}
}

func TestJacobiEigenIdentityAndDiag(t *testing.T) {
	v, eig, err := jacobiEigen([][]float64{{3, 0}, {0, 7}})
	if err != nil {
		t.Fatal(err)
	}
	got := map[float64]bool{}
	for _, e := range eig {
		got[math.Round(e)] = true
	}
	if !got[3] || !got[7] {
		t.Fatalf("eigenvalues %v, want {3,7}", eig)
	}
	// eigenvectors orthonormal
	dot := v[0][0]*v[0][1] + v[1][0]*v[1][1]
	if math.Abs(dot) > 1e-9 {
		t.Fatalf("eigenvectors not orthogonal: %v", dot)
	}
}

func TestJacobiEigenSymmetric(t *testing.T) {
	// A = Q Λ Qᵀ reconstruction check on a random symmetric matrix.
	r := rng.New(14)
	n := 5
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a[i][j], a[j][i] = v, v
		}
	}
	v, eig, err := jacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			recon := 0.0
			for k := 0; k < n; k++ {
				recon += v[i][k] * eig[k] * v[j][k]
			}
			if math.Abs(recon-a[i][j]) > 1e-8 {
				t.Fatalf("reconstruction error at (%d,%d): %v vs %v", i, j, recon, a[i][j])
			}
		}
	}
}
