package cmaes

import (
	"context"
	"fmt"
	"math"
	"sort"

	"bprom/internal/rng"
)

// Minimize runs full-covariance CMA-ES from x0. Suitable for prompts up to a
// few dozen dimensions; above that prefer MinimizeSep (the eigendecomposition
// is O(n³)).
func Minimize(obj Objective, x0 []float64, opt Options, r *rng.RNG) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, fmt.Errorf("cmaes: empty start point")
	}
	opt.defaults(n)
	lambda := opt.PopSize
	w, mu, muEff := weightsFor(lambda)

	cs := (muEff + 2) / (float64(n) + muEff + 5)
	ds := 1 + 2*math.Max(0, math.Sqrt((muEff-1)/float64(n+1))-1) + cs
	cc := (4 + muEff/float64(n)) / (float64(n) + 4 + 2*muEff/float64(n))
	c1 := 2 / (math.Pow(float64(n)+1.3, 2) + muEff)
	cmu := math.Min(1-c1, 2*(muEff-2+1/muEff)/(math.Pow(float64(n)+2, 2)+muEff))
	chiN := math.Sqrt(float64(n)) * (1 - 1/(4*float64(n)) + 1/(21*float64(n)*float64(n)))

	mean := append([]float64(nil), x0...)
	sigma := opt.Sigma0
	c := identity(n)
	b := identity(n) // eigenbasis
	d := make([]float64, n)
	for i := range d {
		d[i] = 1
	}
	ps := make([]float64, n)
	pc := make([]float64, n)
	eigenStale := 0

	type cand struct {
		x, y, z []float64 // y = B D z (unscaled step), x = mean + sigma*y
		f       float64
	}
	pop := make([]cand, lambda)
	xs := make([][]float64, lambda) // candidate views handed to the evaluator
	fs := make([]float64, lambda)
	for i := range pop {
		pop[i].x = make([]float64, n)
		pop[i].y = make([]float64, n)
		pop[i].z = make([]float64, n)
	}
	res := Result{Best: append([]float64(nil), x0...), BestValue: math.Inf(1)}

	for iter := 0; iter < opt.MaxIters; iter++ {
		// refresh eigendecomposition periodically
		if eigenStale == 0 {
			var err error
			b, d, err = jacobiEigen(c)
			if err != nil {
				return res, fmt.Errorf("cmaes: eigendecomposition failed: %w", err)
			}
			for i := range d {
				if d[i] < 1e-14 {
					d[i] = 1e-14
				}
				d[i] = math.Sqrt(d[i])
			}
		}
		eigenStale = (eigenStale + 1) % maxI(1, n/10)

		// Sample first, then score — one fused Evaluate call per generation
		// when configured (see MinimizeSep for the parity argument).
		take := generationBudget(opt, res.Evals, lambda)
		for i := 0; i < take; i++ {
			for j := 0; j < n; j++ {
				pop[i].z[j] = r.NormFloat64()
			}
			// y = B * (D .* z)
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += b[j][k] * d[k] * pop[i].z[k]
				}
				pop[i].y[j] = s
				pop[i].x[j] = mean[j] + sigma*s
			}
			clipInto(pop[i].x, opt.Lo, opt.Hi)
			xs[i] = pop[i].x
		}
		if err := evaluatePop(obj, opt.Evaluate, xs[:take], fs[:take]); err != nil {
			return res, err
		}
		for i := 0; i < take; i++ {
			pop[i].f = fs[i]
			res.Evals++
			if pop[i].f < res.BestValue {
				res.BestValue = pop[i].f
				copy(res.Best, pop[i].x)
			}
		}
		if take < lambda || (opt.MaxEvals > 0 && res.Evals >= opt.MaxEvals) {
			res.Iters = iter + 1
			return res, nil
		}
		sort.Slice(pop, func(a, bb int) bool { return pop[a].f < pop[bb].f })

		yMean := make([]float64, n)
		for i := 0; i < mu; i++ {
			for j := 0; j < n; j++ {
				yMean[j] += w[i] * pop[i].y[j]
			}
		}
		for j := 0; j < n; j++ {
			mean[j] += sigma * yMean[j]
		}

		// ps update needs C^{-1/2} yMean = B D^{-1} Bᵀ yMean
		cInvHalfY := make([]float64, n)
		tmp := make([]float64, n)
		for k := 0; k < n; k++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += b[j][k] * yMean[j]
			}
			tmp[k] = s / d[k]
		}
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b[j][k] * tmp[k]
			}
			cInvHalfY[j] = s
		}
		psNorm := 0.0
		for j := 0; j < n; j++ {
			ps[j] = (1-cs)*ps[j] + math.Sqrt(cs*(2-cs)*muEff)*cInvHalfY[j]
			psNorm += ps[j] * ps[j]
		}
		psNorm = math.Sqrt(psNorm)
		sigma *= math.Exp((cs / ds) * (psNorm/chiN - 1))
		if math.IsNaN(sigma) {
			return res, fmt.Errorf("cmaes: step size became NaN at iteration %d", iter)
		}
		// Box-clipped runs can flatten selection at a boundary, sending the
		// step-size random walk upward; cap it instead of diverging.
		if maxSigma := 100 * opt.Sigma0; sigma > maxSigma {
			sigma = maxSigma
		}
		if sigma < 1e-14 {
			sigma = 1e-14
		}

		hsig := 0.0
		if psNorm/math.Sqrt(1-math.Pow(1-cs, 2*float64(iter+1)))/chiN < 1.4+2/(float64(n)+1) {
			hsig = 1
		}
		for j := 0; j < n; j++ {
			pc[j] = (1-cc)*pc[j] + hsig*math.Sqrt(cc*(2-cc)*muEff)*yMean[j]
		}
		// rank-one + rank-mu covariance update
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				rankMu := 0.0
				for k := 0; k < mu; k++ {
					rankMu += w[k] * pop[k].y[i] * pop[k].y[j]
				}
				c[i][j] = (1-c1-cmu)*c[i][j] + c1*(pc[i]*pc[j]+(1-hsig)*cc*(2-cc)*c[i][j]) + cmu*rankMu
			}
		}
		res.Iters = iter + 1
		if opt.OnIter != nil {
			opt.OnIter(iter + 1)
		}
	}
	return res, nil
}

// SPSA minimizes obj by simultaneous-perturbation stochastic approximation:
// two evaluations per step estimate a descent direction, a third scores the
// stepped point. Cheapest in queries; noisier than CMA-ES. Used as an
// ablation against CMA-ES prompting.
//
// SPSA honors the same run bounds as the CMA-ES entry points: it stops
// between steps once ctx is cancelled, and opt.MaxEvals caps total objective
// evaluations — a step whose remaining budget cannot cover all three of its
// evaluations returns before spending any of them, so res.Evals never
// exceeds the cap and no partial step burns budget on results that would be
// discarded. This is how vp.BlackBoxConfig.MaxQueries bounds SPSA audits
// identically to CMA-ES ones.
func SPSA(ctx context.Context, obj Objective, x0 []float64, steps int, a, cGain float64, opt Options, r *rng.RNG) Result {
	n := len(x0)
	x := append([]float64(nil), x0...)
	res := Result{Best: append([]float64(nil), x0...), BestValue: math.Inf(1)}
	delta := make([]float64, n)
	plus := make([]float64, n)
	minus := make([]float64, n)
	budget := func(next int) bool {
		return opt.MaxEvals <= 0 || res.Evals+next <= opt.MaxEvals
	}
	for k := 0; k < steps; k++ {
		if ctx.Err() != nil || !budget(3) {
			return res
		}
		ak := a / math.Pow(float64(k+1), 0.602)
		ck := cGain / math.Pow(float64(k+1), 0.101)
		for i := range delta {
			if r.Float64() < 0.5 {
				delta[i] = 1
			} else {
				delta[i] = -1
			}
			plus[i] = x[i] + ck*delta[i]
			minus[i] = x[i] - ck*delta[i]
		}
		clipInto(plus, opt.Lo, opt.Hi)
		clipInto(minus, opt.Lo, opt.Hi)
		fp, fm := obj(plus), obj(minus)
		res.Evals += 2
		for i := range x {
			g := (fp - fm) / (2 * ck * delta[i])
			x[i] -= ak * g
		}
		clipInto(x, opt.Lo, opt.Hi)
		res.Iters = k + 1
		f := obj(x)
		res.Evals++
		if f < res.BestValue {
			res.BestValue = f
			copy(res.Best, x)
		}
	}
	return res
}

func identity(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	return m
}

// jacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi rotations,
// returning eigenvectors (columns of v) and eigenvalues.
func jacobiEigen(a [][]float64) (v [][]float64, eig []float64, err error) {
	n := len(a)
	// work on a copy
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v = identity(n)
	for sweep := 0; sweep < 50; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-18 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				cth := 1 / math.Sqrt(t*t+1)
				s := t * cth
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = cth*mkp - s*mkq
					m[k][q] = s*mkp + cth*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = cth*mpk - s*mqk
					m[q][k] = s*mpk + cth*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = cth*vkp - s*vkq
					v[k][q] = s*vkp + cth*vkq
				}
			}
		}
	}
	eig = make([]float64, n)
	for i := range eig {
		eig[i] = m[i][i]
		if math.IsNaN(eig[i]) {
			return nil, nil, fmt.Errorf("cmaes: NaN eigenvalue")
		}
	}
	return v, eig, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
