package cmaes

import (
	"math"
	"reflect"
	"testing"

	"bprom/internal/rng"
)

// noisySphere draws per-evaluation jitter from its own RNG so the test also
// exercises objectives with internal randomness (the checkpoint protocol
// requires callers to snapshot such streams themselves; here the reference
// and resumed runs share a replayed stream via rng state capture).
func noisySphere(r *rng.RNG) Objective {
	return func(x []float64) float64 {
		return sphere(x) + 1e-9*r.Float64()
	}
}

// TestMinimizeSepResumeBitExact checkpoints a sep-CMA-ES run at every
// generation boundary, then resumes from a mid-run snapshot and asserts the
// final result is bit-identical to the uninterrupted run.
func TestMinimizeSepResumeBitExact(t *testing.T) {
	x0 := []float64{2, -3, 1, 4, -2, 0.5, -1.5, 3}
	opt := Options{MaxIters: 30, Sigma0: 0.8, PopSize: 10, Lo: -5, Hi: 5}

	var states []*SepState
	full := opt
	full.OnState = func(st *SepState) { states = append(states, st) }
	ref, err := MinimizeSep(sphere, x0, full, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 30 {
		t.Fatalf("expected 30 state snapshots, got %d", len(states))
	}

	for _, cut := range []int{0, 10, 28} {
		resumed := opt
		resumed.Resume = states[cut]
		// The RNG argument is superseded by the snapshot; hand a wrong-seed
		// generator to prove it.
		got, err := MinimizeSep(sphere, x0, resumed, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if got.BestValue != ref.BestValue || !reflect.DeepEqual(got.Best, ref.Best) {
			t.Fatalf("resume at gen %d: best %v (%v) != uninterrupted %v (%v)",
				cut+1, got.BestValue, got.Best, ref.BestValue, ref.Best)
		}
		if got.Evals != ref.Evals || got.Iters != ref.Iters {
			t.Fatalf("resume at gen %d: evals/iters %d/%d != %d/%d",
				cut+1, got.Evals, got.Iters, ref.Evals, ref.Iters)
		}
	}
}

// TestMinimizeSepResumeFinishedRun resumes from the final snapshot: the loop
// body never executes and the snapshot's best point is returned unchanged.
func TestMinimizeSepResumeFinishedRun(t *testing.T) {
	x0 := []float64{1, -2, 0.5}
	opt := Options{MaxIters: 8, Sigma0: 0.5, PopSize: 8}
	var last *SepState
	full := opt
	full.OnState = func(st *SepState) { last = st }
	ref, err := MinimizeSep(sphere, x0, full, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	resumed := opt
	resumed.Resume = last
	got, err := MinimizeSep(sphere, x0, resumed, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if got.BestValue != ref.BestValue || got.Evals != ref.Evals || got.Iters != ref.Iters {
		t.Fatalf("finished-run resume drifted: %+v vs %+v", got, ref)
	}
}

// TestMinimizeSepResumeDimensionMismatch rejects a snapshot from a different
// problem size instead of silently corrupting the run.
func TestMinimizeSepResumeDimensionMismatch(t *testing.T) {
	bad := &SepState{Mean: make([]float64, 3), Diag: make([]float64, 3),
		Ps: make([]float64, 3), Pc: make([]float64, 3), Best: make([]float64, 3)}
	_, err := MinimizeSep(sphere, make([]float64, 5), Options{Resume: bad}, rng.New(1))
	if err == nil {
		t.Fatal("expected dimension-mismatch error")
	}
}

// TestRNGStateRoundTrip pins the rng State/FromState contract the resume
// machinery depends on, including the Box–Muller spare cache.
func TestRNGStateRoundTrip(t *testing.T) {
	r := rng.New(11)
	r.NormFloat64() // leaves a cached spare variate behind
	st := r.State()
	clone := rng.FromState(st)
	for i := 0; i < 100; i++ {
		a, b := r.NormFloat64(), clone.NormFloat64()
		if a != b {
			t.Fatalf("draw %d diverged: %v vs %v", i, a, b)
		}
		if u, v := r.Uint64(), clone.Uint64(); u != v {
			t.Fatalf("uint draw %d diverged", i)
		}
	}
	if math.IsNaN(noisySphere(clone)([]float64{1})) {
		t.Fatal("noisy objective produced NaN")
	}
}
