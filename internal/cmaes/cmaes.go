// Package cmaes implements the gradient-free optimizers BPROM uses to learn
// visual prompts against a black-box oracle: CMA-ES with full covariance
// adaptation (Hansen's (μ/μ_w, λ) strategy) for low-dimensional prompts,
// the separable sep-CMA-ES variant whose diagonal covariance scales to
// high-dimensional prompts, and SPSA as a cheap baseline.
//
// All three minimize a possibly stochastic objective f: R^n -> R using only
// function evaluations — exactly the access a defender has to an MLaaS
// endpoint (confidence vectors in, loss out).
package cmaes

import (
	"fmt"
	"math"
	"sort"

	"bprom/internal/rng"
)

// Objective is a function to minimize. It may be stochastic (mini-batch
// losses); rank-based selection makes CMA-ES robust to that noise.
type Objective func(x []float64) float64

// BatchObjective evaluates one whole generation of candidates at once and
// returns one value per candidate, in order. It exists for objectives whose
// dominant cost is a batched backend call (an oracle Predict, an MLaaS
// round-trip): fusing the λ evaluations lets the backend see one full-width
// batch per generation instead of λ narrow ones. The candidate slices are
// owned by the optimizer — implementations must not retain or mutate them.
type BatchObjective func(cands [][]float64) []float64

// Options configures a minimization run.
type Options struct {
	// Sigma0 is the initial step size. Default 0.3.
	Sigma0 float64
	// PopSize overrides λ (default 4+⌊3·ln n⌋).
	PopSize int
	// MaxIters bounds the number of generations. Default 100.
	MaxIters int
	// MaxEvals bounds total objective evaluations (0 = unlimited).
	MaxEvals int
	// Lo/Hi clip candidate coordinates when Hi > Lo (box constraint for
	// pixel-valued prompts).
	Lo, Hi float64
	// TolFun stops when the best value improves by less than this across a
	// generation window. <= 0 disables.
	TolFun float64
	// OnIter, when non-nil, is invoked after every completed generation
	// with the 1-based generation count — a progress hook for long
	// optimizations (server-side audit jobs report it live). It must not
	// mutate optimizer state, and it does not fire for a generation cut
	// short by MaxEvals.
	OnIter func(iter int)
	// OnState, when non-nil, is invoked after every completed generation
	// with a snapshot of the full optimizer state (it fires alongside
	// OnIter, and like OnIter it does not fire for a generation cut short
	// by MaxEvals or for the generation that trips TolFun). Passing the
	// snapshot back via Resume continues the run bit-exactly, which is how
	// server-side audit jobs survive restarts. The snapshot is deep-copied;
	// the callback owns it.
	OnState func(st *SepState)
	// Resume, when non-nil, restores a MinimizeSep run from an OnState
	// snapshot instead of starting at x0. The caller must supply the same
	// dimension, population size, and strategy options as the original run;
	// only the loop state (mean, paths, RNG, budget accounting) comes from
	// the snapshot.
	Resume *SepState
	// Evaluate, when non-nil, replaces the per-candidate Objective calls
	// with one fused BatchObjective call per generation. The call receives
	// the λ clipped candidates in sample order (fewer when MaxEvals
	// truncates the final generation), and eval counting, best-point
	// tracking, and selection consume its values in that same order — so a
	// run with Evaluate is bit-identical to the scalar path as long as the
	// two evaluators agree per candidate. The scalar objective argument is
	// ignored (and may be nil) while Evaluate is set.
	Evaluate BatchObjective
}

func (o *Options) defaults(n int) {
	if o.Sigma0 <= 0 {
		o.Sigma0 = 0.3
	}
	if o.PopSize <= 0 {
		o.PopSize = 4 + int(3*math.Log(float64(n)))
	}
	if o.PopSize < 4 {
		o.PopSize = 4
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
}

// SepState is the complete loop state of a MinimizeSep run at a generation
// boundary: distribution parameters, evolution paths, best-so-far tracking,
// stagnation counters, and the sampling RNG. A run resumed from a SepState
// produces the same remaining sample sequence — and therefore the same
// result — as the uninterrupted run, provided the objective itself is
// deterministic or checkpoints its own randomness alongside (vp.SearchState
// carries the mini-batch RNG for exactly that reason).
type SepState struct {
	Iter      int // completed generations; the resumed loop starts here
	Evals     int
	Sigma     float64
	Mean      []float64
	Diag      []float64
	Ps        []float64
	Pc        []float64
	Best      []float64
	BestValue float64
	PrevBest  float64
	Stale     int
	RNG       [6]uint64
}

// clone deep-copies the snapshot so the optimizer's live buffers are never
// shared with the checkpoint consumer.
func (st *SepState) clone() *SepState {
	c := *st
	c.Mean = append([]float64(nil), st.Mean...)
	c.Diag = append([]float64(nil), st.Diag...)
	c.Ps = append([]float64(nil), st.Ps...)
	c.Pc = append([]float64(nil), st.Pc...)
	c.Best = append([]float64(nil), st.Best...)
	return &c
}

// Result reports the best point found.
type Result struct {
	Best      []float64
	BestValue float64
	Evals     int
	Iters     int
}

// weightsFor returns the standard log-rank recombination weights and μ_eff.
func weightsFor(lambda int) (w []float64, mu int, muEff float64) {
	mu = lambda / 2
	w = make([]float64, mu)
	sum := 0.0
	for i := 0; i < mu; i++ {
		w[i] = math.Log(float64(lambda)/2+0.5) - math.Log(float64(i+1))
		sum += w[i]
	}
	sqSum := 0.0
	for i := range w {
		w[i] /= sum
		sqSum += w[i] * w[i]
	}
	return w, mu, 1 / sqSum
}

func clipInto(x []float64, lo, hi float64) {
	if hi <= lo {
		return
	}
	for i, v := range x {
		if v < lo {
			x[i] = lo
		} else if v > hi {
			x[i] = hi
		}
	}
}

// evaluatePop scores the already-sampled candidates xs into fs: one fused
// batch call when configured, otherwise one scalar call per candidate. Both
// paths visit candidates in sample order, so a stochastic objective drawing
// from its own RNG stream sees the identical draw sequence either way.
func evaluatePop(obj Objective, batch BatchObjective, xs [][]float64, fs []float64) error {
	if batch == nil {
		for i, x := range xs {
			fs[i] = obj(x)
		}
		return nil
	}
	vals := batch(xs)
	if len(vals) != len(xs) {
		return fmt.Errorf("cmaes: batch evaluator returned %d values for %d candidates", len(vals), len(xs))
	}
	copy(fs, vals)
	return nil
}

// generationBudget reports how many of the λ candidates of the next
// generation fit in the remaining eval budget (λ when unlimited).
func generationBudget(opt Options, done, lambda int) int {
	if opt.MaxEvals <= 0 {
		return lambda
	}
	if remaining := opt.MaxEvals - done; remaining < lambda {
		return remaining
	}
	return lambda
}

// MinimizeSep runs sep-CMA-ES (diagonal covariance) from x0. It is the
// default for visual prompts, whose dimension (hundreds of pixels) makes the
// full covariance update unnecessary and slow.
func MinimizeSep(obj Objective, x0 []float64, opt Options, r *rng.RNG) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, fmt.Errorf("cmaes: empty start point")
	}
	opt.defaults(n)
	lambda := opt.PopSize
	w, mu, muEff := weightsFor(lambda)

	// Strategy constants (Ros & Hansen 2008 for the separable variant; c_cov
	// scaled by (n+2)/3 relative to full CMA).
	cs := (muEff + 2) / (float64(n) + muEff + 5)
	ds := 1 + 2*math.Max(0, math.Sqrt((muEff-1)/float64(n+1))-1) + cs
	cc := (4 + muEff/float64(n)) / (float64(n) + 4 + 2*muEff/float64(n))
	c1 := 2 / (math.Pow(float64(n)+1.3, 2) + muEff) * (float64(n) + 2) / 3
	cmu := math.Min(1-c1, 2*(muEff-2+1/muEff)/(math.Pow(float64(n)+2, 2)+muEff)*(float64(n)+2)/3)
	chiN := math.Sqrt(float64(n)) * (1 - 1/(4*float64(n)) + 1/(21*float64(n)*float64(n)))

	mean := append([]float64(nil), x0...)
	sigma := opt.Sigma0
	diag := make([]float64, n) // diagonal of C
	for i := range diag {
		diag[i] = 1
	}
	ps := make([]float64, n)
	pc := make([]float64, n)

	type cand struct {
		x, z []float64
		f    float64
	}
	pop := make([]cand, lambda)
	xs := make([][]float64, lambda) // candidate views handed to the evaluator
	fs := make([]float64, lambda)
	for i := range pop {
		pop[i].x = make([]float64, n)
		pop[i].z = make([]float64, n)
	}

	res := Result{Best: append([]float64(nil), x0...), BestValue: math.Inf(1)}
	prevBest := math.Inf(1)
	stale := 0
	startIter := 0
	if st := opt.Resume; st != nil {
		if len(st.Mean) != n || len(st.Diag) != n || len(st.Ps) != n || len(st.Pc) != n || len(st.Best) != n {
			return res, fmt.Errorf("cmaes: resume state dimension mismatch (want %d)", n)
		}
		copy(mean, st.Mean)
		copy(diag, st.Diag)
		copy(ps, st.Ps)
		copy(pc, st.Pc)
		copy(res.Best, st.Best)
		sigma = st.Sigma
		res.BestValue = st.BestValue
		res.Evals = st.Evals
		res.Iters = st.Iter
		prevBest = st.PrevBest
		stale = st.Stale
		startIter = st.Iter
		r = rng.FromState(st.RNG)
	}
	for iter := startIter; iter < opt.MaxIters; iter++ {
		// Sample the whole generation first (RNG draw order is identical to
		// drawing per candidate: the objective never touches r), then score
		// it — one fused call when Evaluate is set.
		take := generationBudget(opt, res.Evals, lambda)
		for i := 0; i < take; i++ {
			for j := 0; j < n; j++ {
				z := r.NormFloat64()
				pop[i].z[j] = z
				pop[i].x[j] = mean[j] + sigma*math.Sqrt(diag[j])*z
			}
			clipInto(pop[i].x, opt.Lo, opt.Hi)
			xs[i] = pop[i].x
		}
		if err := evaluatePop(obj, opt.Evaluate, xs[:take], fs[:take]); err != nil {
			return res, err
		}
		for i := 0; i < take; i++ {
			pop[i].f = fs[i]
			res.Evals++
			if pop[i].f < res.BestValue {
				res.BestValue = pop[i].f
				copy(res.Best, pop[i].x)
			}
		}
		if take < lambda || (opt.MaxEvals > 0 && res.Evals >= opt.MaxEvals) {
			res.Iters = iter + 1
			return res, nil
		}
		// sort ascending by f (selection)
		sort.Slice(pop, func(a, b int) bool { return pop[a].f < pop[b].f })

		// recombination in z-space and x-space
		zMean := make([]float64, n)
		newMean := make([]float64, n)
		for i := 0; i < mu; i++ {
			for j := 0; j < n; j++ {
				zMean[j] += w[i] * pop[i].z[j]
				newMean[j] += w[i] * pop[i].x[j]
			}
		}
		copy(mean, newMean)

		// step-size path (coordinates are already whitened in z-space)
		psNorm := 0.0
		for j := 0; j < n; j++ {
			ps[j] = (1-cs)*ps[j] + math.Sqrt(cs*(2-cs)*muEff)*zMean[j]
			psNorm += ps[j] * ps[j]
		}
		psNorm = math.Sqrt(psNorm)
		sigma *= math.Exp((cs / ds) * (psNorm/chiN - 1))
		if math.IsNaN(sigma) {
			return res, fmt.Errorf("cmaes: step size became NaN at iteration %d", iter)
		}
		// Box-clipped runs can flatten selection at a boundary, sending the
		// step-size random walk upward; cap it instead of diverging.
		if maxSigma := 100 * opt.Sigma0; sigma > maxSigma {
			sigma = maxSigma
		}
		if sigma < 1e-14 {
			sigma = 1e-14
		}

		// covariance path and diagonal update
		hsig := 0.0
		if psNorm/math.Sqrt(1-math.Pow(1-cs, 2*float64(iter+1)))/chiN < 1.4+2/(float64(n)+1) {
			hsig = 1
		}
		for j := 0; j < n; j++ {
			pc[j] = (1-cc)*pc[j] + hsig*math.Sqrt(cc*(2-cc)*muEff)*math.Sqrt(diag[j])*zMean[j]
		}
		for j := 0; j < n; j++ {
			rankMu := 0.0
			for i := 0; i < mu; i++ {
				rankMu += w[i] * diag[j] * pop[i].z[j] * pop[i].z[j]
			}
			diag[j] = (1-c1-cmu)*diag[j] + c1*pc[j]*pc[j] + cmu*rankMu
			if diag[j] < 1e-12 {
				diag[j] = 1e-12
			}
		}

		res.Iters = iter + 1
		if opt.OnIter != nil {
			opt.OnIter(iter + 1)
		}
		if opt.TolFun > 0 {
			if prevBest-res.BestValue < opt.TolFun {
				stale++
				if stale >= 10 {
					break
				}
			} else {
				stale = 0
			}
			prevBest = res.BestValue
		}
		if opt.OnState != nil {
			st := SepState{
				Iter:      iter + 1,
				Evals:     res.Evals,
				Sigma:     sigma,
				Mean:      mean,
				Diag:      diag,
				Ps:        ps,
				Pc:        pc,
				Best:      res.Best,
				BestValue: res.BestValue,
				PrevBest:  prevBest,
				Stale:     stale,
				RNG:       r.State(),
			}
			opt.OnState(st.clone())
		}
	}
	return res, nil
}
