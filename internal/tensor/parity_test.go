package tensor

import (
	"fmt"
	"math"
	"testing"

	"bprom/internal/rng"
)

// Parity harness: the tiled/parallel kernels must agree with the naive
// reference forms (naive.go) on every shape, including the degenerate and
// non-tile-multiple ones, and must be *identical* under any pool size —
// the kernels partition output rows/channels, so accumulation order never
// depends on the worker count. Seeds come from internal/rng so every
// failure reproduces deterministically.

// matMulShapes exercises 1×N, N×1, tile-boundary and odd non-multiple dims.
// tileK is 128 and tileJ is 64, so 127/128/129 and 63/64/65 straddle both.
var matMulShapes = [][3]int{
	{1, 1, 1},
	{1, 7, 1},
	{1, 1, 300},
	{300, 1, 1},
	{1, 300, 1},
	{5, 129, 3},
	{3, 128, 5},
	{2, 127, 7},
	{64, 64, 64},
	{65, 63, 67},
	{97, 130, 61}, // above the parallel threshold
	{130, 257, 65},
	{1, 4096, 1},
	{33, 2, 129},
	{1, 300, 257}, // column-partitioned dispatch (skinny, wide)
	{2, 513, 129},
}

func fillRandom(r *rng.RNG, ts ...*Tensor) {
	for _, t := range ts {
		r.Gaussian(t.Data, 0, 1)
	}
}

func requireEqual(t *testing.T, label string, got, want *Tensor) {
	t.Helper()
	for i := range got.Data {
		if got.Data[i] != want.Data[i] && !(math.IsNaN(got.Data[i]) && math.IsNaN(want.Data[i])) {
			t.Fatalf("%s: element %d differs: got %v, want %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

func requireClose(t *testing.T, label string, got, want *Tensor, tol float64) {
	t.Helper()
	for i := range got.Data {
		diff := math.Abs(got.Data[i] - want.Data[i])
		if diff > tol*math.Max(1, math.Abs(want.Data[i])) {
			t.Fatalf("%s: element %d differs: got %v, want %v (diff %g)", label, i, got.Data[i], want.Data[i], diff)
		}
	}
}

// TestMatMulTiledMatchesNaive checks all three variants against the naive
// triple loops over the odd-shape table. The plain and TransA kernels
// preserve the naive per-element accumulation order exactly (ascending p),
// so only zero-skipping could perturb bits — Gaussian data has no zeros, so
// a tight relative tolerance holds; TransB is bitwise identical.
func TestMatMulTiledMatchesNaive(t *testing.T) {
	root := rng.New(42)
	for si, s := range matMulShapes {
		m, k, n := s[0], s[1], s[2]
		r := root.Split("shape", si)

		a, b := New(m, k), New(k, n)
		fillRandom(r, a, b)
		got, want := New(m, n), New(m, n)
		MatMulInto(got, a, b)
		NaiveMatMulInto(want, a, b)
		requireClose(t, fmt.Sprintf("MatMulInto %v", s), got, want, 1e-12)

		at := New(k, m) // a stored transposed: aᵀ @ b == a @ b
		fillRandom(r, at, b)
		MatMulTransAInto(got, at, b)
		NaiveMatMulTransAInto(want, at, b)
		requireClose(t, fmt.Sprintf("MatMulTransAInto %v", s), got, want, 1e-12)

		bt := New(n, k)
		fillRandom(r, a, bt)
		MatMulTransBInto(got, a, bt)
		NaiveMatMulTransBInto(want, a, bt)
		requireEqual(t, fmt.Sprintf("MatMulTransBInto %v", s), got, want)
	}
}

// TestMatMulSerialVsParallel pins the shared pool to 1 worker and then to 8
// and demands bitwise-identical output: row partitioning must not change
// accumulation order. Shapes sit above the parallel dispatch threshold.
func TestMatMulSerialVsParallel(t *testing.T) {
	defer SetWorkers(0)
	root := rng.New(7)
	// {1, 300, 257} and {2, 513, 129} force the column-partitioned path
	// (rows < workers, wide output); the rest take the row path.
	for si, s := range [][3]int{{97, 130, 61}, {130, 257, 65}, {64, 64, 64}, {1, 4096, 9}, {1, 300, 257}, {2, 513, 129}} {
		m, k, n := s[0], s[1], s[2]
		r := root.Split("svp", si)
		a, b := New(m, k), New(k, n)
		at, bt := New(k, m), New(n, k)
		fillRandom(r, a, b, at, bt)

		type variant struct {
			name string
			run  func(dst *Tensor)
		}
		variants := []variant{
			{"MatMulInto", func(dst *Tensor) { MatMulInto(dst, a, b) }},
			{"MatMulTransAInto", func(dst *Tensor) { MatMulTransAInto(dst, at, b) }},
			{"MatMulTransBInto", func(dst *Tensor) { MatMulTransBInto(dst, a, bt) }},
		}
		for _, v := range variants {
			serial, parallel := New(m, n), New(m, n)
			SetWorkers(1)
			v.run(serial)
			SetWorkers(8)
			v.run(parallel)
			requireEqual(t, fmt.Sprintf("%s %v serial-vs-parallel", v.name, s), parallel, serial)
		}
	}
}

// convGeometries straddles the convParMin threshold and covers 1×N images,
// asymmetric kernels, stride > 1 and padding.
var convGeometries = []ConvDims{
	{InC: 1, InH: 1, InW: 9, OutC: 1, KH: 1, KW: 3, Stride: 1, Pad: 0},
	{InC: 1, InH: 9, InW: 1, OutC: 1, KH: 3, KW: 1, Stride: 1, Pad: 1},
	{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1},
	{InC: 2, InH: 7, InW: 5, OutC: 1, KH: 2, KW: 4, Stride: 2, Pad: 2},
	{InC: 5, InH: 13, InW: 11, OutC: 2, KH: 3, KW: 3, Stride: 3, Pad: 1},
	{InC: 4, InH: 32, InW: 32, OutC: 8, KH: 5, KW: 5, Stride: 1, Pad: 2}, // above threshold
	{InC: 1, InH: 40, InW: 40, OutC: 1, KH: 7, KW: 7, Stride: 2, Pad: 3},
}

// TestIm2ColCol2ImMatchesNaive: the parallel gather/scatter must reproduce
// the reference kernels bitwise — Im2Col is a pure gather and Col2Im's
// per-pixel accumulation order is channel-local and unchanged.
func TestIm2ColCol2ImMatchesNaive(t *testing.T) {
	root := rng.New(99)
	for gi, d := range convGeometries {
		if err := d.Resolve(); err != nil {
			t.Fatalf("geometry %d: %v", gi, err)
		}
		r := root.Split("conv", gi)
		k := d.InC * d.KH * d.KW
		x := make([]float64, d.InC*d.InH*d.InW)
		r.Gaussian(x, 0, 1)

		got, want := New(d.OutH*d.OutW, k), New(d.OutH*d.OutW, k)
		Im2Col(x, d, got)
		NaiveIm2Col(x, d, want)
		requireEqual(t, fmt.Sprintf("Im2Col %+v", d), got, want)

		g := New(d.OutH*d.OutW, k)
		r.Gaussian(g.Data, 0, 1)
		gotDx := make([]float64, len(x))
		wantDx := make([]float64, len(x))
		Col2Im(g, d, gotDx)
		NaiveCol2Im(g, d, wantDx)
		requireEqual(t, fmt.Sprintf("Col2Im %+v", d),
			FromSlice(gotDx, len(gotDx)), FromSlice(wantDx, len(wantDx)))
	}
}

// TestIm2ColCol2ImSerialVsParallel: pool width must not change either
// kernel's output bits.
func TestIm2ColCol2ImSerialVsParallel(t *testing.T) {
	defer SetWorkers(0)
	root := rng.New(3)
	for gi, d := range convGeometries {
		if err := d.Resolve(); err != nil {
			t.Fatalf("geometry %d: %v", gi, err)
		}
		r := root.Split("convsvp", gi)
		k := d.InC * d.KH * d.KW
		x := make([]float64, d.InC*d.InH*d.InW)
		r.Gaussian(x, 0, 1)
		g := New(d.OutH*d.OutW, k)
		r.Gaussian(g.Data, 0, 1)

		SetWorkers(1)
		serialCols := New(d.OutH*d.OutW, k)
		Im2Col(x, d, serialCols)
		serialDx := make([]float64, len(x))
		Col2Im(g, d, serialDx)

		SetWorkers(8)
		parCols := New(d.OutH*d.OutW, k)
		Im2Col(x, d, parCols)
		parDx := make([]float64, len(x))
		Col2Im(g, d, parDx)

		requireEqual(t, fmt.Sprintf("Im2Col %+v serial-vs-parallel", d), parCols, serialCols)
		requireEqual(t, fmt.Sprintf("Col2Im %+v serial-vs-parallel", d),
			FromSlice(parDx, len(parDx)), FromSlice(serialDx, len(serialDx)))
	}
}

// TestElementwiseSerialVsParallel: the chunked elementwise ops are per-index
// pure, so width must not change bits either. The length sits above
// elemParMin to force the parallel path.
func TestElementwiseSerialVsParallel(t *testing.T) {
	defer SetWorkers(0)
	const n = 1 << 16
	r := rng.New(11)
	a, b := New(n), New(n)
	fillRandom(r, a, b)

	run := func() []*Tensor {
		add, sub, mul := New(n), New(n), New(n)
		AddInto(add, a, b)
		SubInto(sub, a, b)
		MulInto(mul, a, b)
		axpy := a.Clone()
		AXPY(0.5, b, axpy)
		app := a.Clone()
		app.Apply(func(v float64) float64 { return v * v })
		sc := a.Clone()
		sc.Scale(1.25)
		return []*Tensor{add, sub, mul, axpy, app, sc}
	}
	SetWorkers(1)
	serial := run()
	SetWorkers(8)
	parallel := run()
	names := []string{"AddInto", "SubInto", "MulInto", "AXPY", "Apply", "Scale"}
	for i := range serial {
		requireEqual(t, names[i]+" serial-vs-parallel", parallel[i], serial[i])
	}
}

// TestMatMulRandomizedParity hammers random small-to-medium shapes, the
// quick-check style sweep the fuzz targets extend.
func TestMatMulRandomizedParity(t *testing.T) {
	root := rng.New(2026)
	for trial := 0; trial < 150; trial++ {
		r := root.Split("trial", trial)
		m := r.Intn(70) + 1
		k := r.Intn(300) + 1
		n := r.Intn(70) + 1
		a, b := New(m, k), New(k, n)
		fillRandom(r, a, b)
		got, want := New(m, n), New(m, n)
		MatMulInto(got, a, b)
		NaiveMatMulInto(want, a, b)
		requireClose(t, fmt.Sprintf("random [%d,%d,%d]", m, k, n), got, want, 1e-12)
	}
}
