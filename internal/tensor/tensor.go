// Package tensor implements the dense numerical arrays underlying the neural
// network substrate. It supports the small set of operations the repository
// needs — matrix multiplication, im2col convolution, pooling, elementwise
// arithmetic and reductions — on float64 data stored in row-major order.
//
// Design notes: shapes are plain []int; a Tensor owns its backing slice
// unless created with FromSlice, in which case the caller promises not to
// alias it concurrently. Operations either write into a receiver (the *Into
// forms, used on hot paths to avoid allocation) or return fresh tensors.
//
// Performance: the compute kernels are cache-blocked (tiled) and dispatch
// row-block chunks onto a shared worker pool (see pool.go) once the work
// exceeds a size threshold; below it they run serially so tiny-scale
// experiments never pay goroutine overhead. Partitioning is always over
// output rows/channels, so every output element is accumulated in the same
// floating-point order as the serial path and results do not depend on the
// pool size. Reductions (Sum, Dot, Norm2) stay single-threaded — partial
// sums per worker would make results depend on the machine's core count,
// which the bit-reproducible experiment harness cannot tolerate — but are
// unrolled into four independent accumulators for instruction-level
// parallelism. The naive reference forms live in naive.go and anchor the
// parity/fuzz test harness.
package tensor

import (
	"fmt"
	"math"
)

// Tiling and dispatch thresholds. The flop floors are deliberately small
// multiples of the per-chunk dispatch cost (~1µs): below them a goroutine
// handoff costs more than it buys.
const (
	// tileK is the k-panel height for MatMulInto/MatMulTransAInto: a
	// [tileK, n] panel of b is streamed across every dst row of a worker's
	// block while still cache-resident.
	tileK = 128
	// tileJ is the b-row panel width for MatMulTransBInto: tileJ rows of b
	// are reused across the worker's a rows.
	tileJ = 64
	// matMulParMin is the m*n*k floor below which matmuls stay serial.
	matMulParMin = 32 * 1024
	// elemParMin is the element-count floor for parallel elementwise ops;
	// they are memory-bound, so the threshold is high.
	elemParMin = 1 << 15
	// elemGrain is the minimum elementwise chunk handed to a worker.
	elemGrain = 1 << 13
)

// Tensor is a dense row-major float64 array with an explicit shape.
type Tensor struct {
	Data  []float64
	shape []int
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Data: make([]float64, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data with the given shape without copying. The product of
// the shape must equal len(data).
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v does not match data length %d", shape, len(data)))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// Shape returns the tensor's dimensions. Callers must not mutate the result.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the same data under a new shape. The element
// count must match. The returned tensor shares the backing slice.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// At returns the element at the given multi-index (2-D fast path only where
// it matters; general indexing is used in tests and setup code).
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// --- Elementwise operations -------------------------------------------------

// WorthParallel reports whether work (≈ a multiply-accumulate count) clears
// the floor below which parallel dispatch costs more than it buys. Callers
// that partition their own outer loops over ParallelFor (the nn Conv2D
// batch loop) use it so their serial/parallel decision stays in lockstep
// with the kernels' own.
func WorthParallel(work int) bool { return work >= matMulParMin }

// forEachRange runs f over [0, n): inline for small n, in parallel chunks on
// the shared pool otherwise. Chunk boundaries never change per-element
// results, so all elementwise ops stay bit-deterministic under any pool size.
func forEachRange(n int, f func(lo, hi int)) {
	forEachScaled(n, 1, f)
}

// forEachScaled is forEachRange for callers whose iterations each touch
// width elements (rows, channels): the serial/parallel decision weighs the
// true element count count*width, and the grain shrinks accordingly so a
// few thousand heavy rows still split across workers.
func forEachScaled(count, width int, f func(lo, hi int)) {
	if count*width < elemParMin {
		f(0, count)
		return
	}
	ParallelFor(count, max(1, elemGrain/width), f)
}

// AddInto computes dst = a + b elementwise. All three must share a length.
func AddInto(dst, a, b *Tensor) {
	checkSameLen("AddInto", dst, a, b)
	forEachRange(len(dst.Data), func(lo, hi int) {
		ad, bd, dd := a.Data[lo:hi], b.Data[lo:hi], dst.Data[lo:hi]
		for i := range dd {
			dd[i] = ad[i] + bd[i]
		}
	})
}

// SubInto computes dst = a - b elementwise.
func SubInto(dst, a, b *Tensor) {
	checkSameLen("SubInto", dst, a, b)
	forEachRange(len(dst.Data), func(lo, hi int) {
		ad, bd, dd := a.Data[lo:hi], b.Data[lo:hi], dst.Data[lo:hi]
		for i := range dd {
			dd[i] = ad[i] - bd[i]
		}
	})
}

// MulInto computes dst = a * b elementwise (Hadamard product).
func MulInto(dst, a, b *Tensor) {
	checkSameLen("MulInto", dst, a, b)
	forEachRange(len(dst.Data), func(lo, hi int) {
		ad, bd, dd := a.Data[lo:hi], b.Data[lo:hi], dst.Data[lo:hi]
		for i := range dd {
			dd[i] = ad[i] * bd[i]
		}
	})
}

// AXPY computes dst += alpha * x.
func AXPY(alpha float64, x, dst *Tensor) {
	checkSameLen("AXPY", dst, x)
	forEachRange(len(dst.Data), func(lo, hi int) {
		xd, dd := x.Data[lo:hi], dst.Data[lo:hi]
		for i := range dd {
			dd[i] += alpha * xd[i]
		}
	})
}

// Scale multiplies every element by alpha in place.
func (t *Tensor) Scale(alpha float64) {
	forEachRange(len(t.Data), func(lo, hi int) {
		d := t.Data[lo:hi]
		for i := range d {
			d[i] *= alpha
		}
	})
}

// AddScalar adds alpha to every element in place.
func (t *Tensor) AddScalar(alpha float64) {
	forEachRange(len(t.Data), func(lo, hi int) {
		d := t.Data[lo:hi]
		for i := range d {
			d[i] += alpha
		}
	})
}

// Clamp limits every element to [lo, hi] in place.
func (t *Tensor) Clamp(lo, hi float64) {
	forEachRange(len(t.Data), func(i0, i1 int) {
		d := t.Data[i0:i1]
		for i, v := range d {
			if v < lo {
				d[i] = lo
			} else if v > hi {
				d[i] = hi
			}
		}
	})
}

// Apply replaces each element x with f(x). f must be pure: it may run
// concurrently across chunks of the tensor.
func (t *Tensor) Apply(f func(float64) float64) {
	forEachRange(len(t.Data), func(lo, hi int) {
		d := t.Data[lo:hi]
		for i, v := range d {
			d[i] = f(v)
		}
	})
}

// checkSameLen panics with the offending shapes when any tensor's element
// count differs from the first's.
func checkSameLen(op string, ts ...*Tensor) {
	n := ts[0].Len()
	for i, t := range ts[1:] {
		if t.Len() != n {
			panic(fmt.Sprintf("tensor: %s length mismatch: argument 0 has shape %v (%d elements), argument %d has shape %v (%d elements)",
				op, ts[0].shape, n, i+1, t.shape, t.Len()))
		}
	}
}

// --- Reductions ---------------------------------------------------------------

// Reductions run single-threaded on purpose: splitting them across workers
// would make the accumulation order (and therefore the low-order bits) a
// function of the pool size, breaking the bit-for-bit reproducibility the
// experiment harness guarantees. Instead they use four independent
// accumulators — a fixed order on every machine — which breaks the serial
// add dependency chain and roughly triples throughput on large tensors.

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s0, s1, s2, s3 float64
	d := t.Data
	i := 0
	for ; i+4 <= len(d); i += 4 {
		s0 += d[i]
		s1 += d[i+1]
		s2 += d[i+2]
		s3 += d[i+3]
	}
	for ; i < len(d); i++ {
		s0 += d[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// MaxIndex returns the index of the largest element (first on ties).
func (t *Tensor) MaxIndex() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	var s0, s1, s2, s3 float64
	d := t.Data
	i := 0
	for ; i+4 <= len(d); i += 4 {
		s0 += d[i] * d[i]
		s1 += d[i+1] * d[i+1]
		s2 += d[i+2] * d[i+2]
		s3 += d[i+3] * d[i+3]
	}
	for ; i < len(d); i++ {
		s0 += d[i] * d[i]
	}
	return math.Sqrt((s0 + s1) + (s2 + s3))
}

// Dot returns the inner product of two equally sized tensors.
func Dot(a, b *Tensor) float64 {
	checkSameLen("Dot", a, b)
	var s0, s1, s2, s3 float64
	ad, bd := a.Data, b.Data
	i := 0
	for ; i+4 <= len(ad); i += 4 {
		s0 += ad[i] * bd[i]
		s1 += ad[i+1] * bd[i+1]
		s2 += ad[i+2] * bd[i+2]
		s3 += ad[i+3] * bd[i+3]
	}
	for ; i < len(ad); i++ {
		s0 += ad[i] * bd[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// --- Matrix operations ---------------------------------------------------------

// checkMatMulShapes validates dst = a @ b and returns (m, k, n).
func checkMatMulShapes(op string, dst, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s requires 2-D tensors, got %v @ %v -> %v", op, a.shape, b.shape, dst.shape))
	}
	m, k = a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v @ %v -> %v", op, a.shape, b.shape, dst.shape))
	}
	return m, k, n
}

// checkMatMulTransAShapes validates dst = aᵀ @ b and returns (k, m, n).
func checkMatMulTransAShapes(op string, dst, a, b *Tensor) (k, m, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s requires 2-D tensors, got %v ᵀ@ %v -> %v", op, a.shape, b.shape, dst.shape))
	}
	k, m = a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v ᵀ@ %v -> %v", op, a.shape, b.shape, dst.shape))
	}
	return k, m, n
}

// checkMatMulTransBShapes validates dst = a @ bᵀ and returns (m, k, n).
func checkMatMulTransBShapes(op string, dst, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s requires 2-D tensors, got %v @ᵀ %v -> %v", op, a.shape, b.shape, dst.shape))
	}
	m, k = a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v @ᵀ %v -> %v", op, a.shape, b.shape, dst.shape))
	}
	return m, k, n
}

// dispatchMatMul partitions a matmul's output across the pool: by dst rows
// when there are enough rows to feed every worker, by dst columns otherwise
// (the batch-1 probe shape: [1,k] @ [k,n] must not pin a whole forward pass
// to one core). Both choices partition the *output*, so every element keeps
// its serial accumulation order and the result is independent of which path
// ran — parity_test.go pins this.
func dispatchMatMul(m, n int, run func(i0, i1, j0, j1 int)) {
	w := Workers()
	if m >= w || n < 2*w {
		ParallelFor(m, 1, func(i0, i1 int) { run(i0, i1, 0, n) })
		return
	}
	ParallelFor(n, 16, func(j0, j1 int) { run(0, m, j0, j1) })
}

// MatMulInto computes dst = a @ b for 2-D tensors a [m,k] and b [k,n],
// writing into dst [m,n]. The kernel is k-panel tiled: a [tileK, width] slab
// of b is streamed across every dst row of the current block while it is
// cache-hot. Output blocks are dispatched onto the shared worker pool above
// matMulParMin total work. Accumulation over p stays ascending per output
// element, so the result is identical to the naive kernel for finite inputs.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMulShapes("MatMulInto", dst, a, b)
	if m*n*k < matMulParMin {
		matMulRange(dst, a, b, 0, m, 0, n)
		return
	}
	dispatchMatMul(m, n, func(i0, i1, j0, j1 int) { matMulRange(dst, a, b, i0, i1, j0, j1) })
}

// matMulRange computes the dst block rows [i0, i1) × columns [j0, j1) of
// a @ b.
func matMulRange(dst, a, b *Tensor, i0, i1, j0, j1 int) {
	k, n := a.shape[1], b.shape[1]
	for i := i0; i < i1; i++ {
		di := dst.Data[i*n+j0 : i*n+j1]
		for j := range di {
			di[j] = 0
		}
	}
	for p0 := 0; p0 < k; p0 += tileK {
		p1 := min(p0+tileK, k)
		for i := i0; i < i1; i++ {
			ai := a.Data[i*k : (i+1)*k]
			di := dst.Data[i*n+j0 : i*n+j1]
			for p := p0; p < p1; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := b.Data[p*n+j0 : p*n+j1]
				for j, bv := range bp {
					di[j] += av * bv
				}
			}
		}
	}
}

// MatMul returns a @ b as a fresh tensor.
func MatMul(a, b *Tensor) *Tensor {
	dst := New(a.shape[0], b.shape[1])
	MatMulInto(dst, a, b)
	return dst
}

// MatMulTransAInto computes dst = aᵀ @ b where a is [k,m] and b is [k,n].
// Output blocks are partitioned across the pool; within a block the walk is
// k-panel tiled so the paired a/b panels stay cache-resident.
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m, n := checkMatMulTransAShapes("MatMulTransAInto", dst, a, b)
	if m*n*k < matMulParMin {
		matMulTransARange(dst, a, b, 0, m, 0, n)
		return
	}
	dispatchMatMul(m, n, func(i0, i1, j0, j1 int) { matMulTransARange(dst, a, b, i0, i1, j0, j1) })
}

// matMulTransARange computes the dst block rows [i0, i1) × columns [j0, j1)
// of aᵀ @ b.
func matMulTransARange(dst, a, b *Tensor, i0, i1, j0, j1 int) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	for i := i0; i < i1; i++ {
		di := dst.Data[i*n+j0 : i*n+j1]
		for j := range di {
			di[j] = 0
		}
	}
	for p0 := 0; p0 < k; p0 += tileK {
		p1 := min(p0+tileK, k)
		for p := p0; p < p1; p++ {
			ap := a.Data[p*m : (p+1)*m]
			bp := b.Data[p*n+j0 : p*n+j1]
			for i := i0; i < i1; i++ {
				av := ap[i]
				if av == 0 {
					continue
				}
				di := dst.Data[i*n+j0 : i*n+j1]
				for j, bv := range bp {
					di[j] += av * bv
				}
			}
		}
	}
}

// MatMulTransBInto computes dst = a @ bᵀ where a is [m,k] and b is [n,k].
// Output blocks are partitioned across the pool; within a block, tileJ rows
// of b are reused across every a row before moving to the next b panel.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransBShapes("MatMulTransBInto", dst, a, b)
	if m*n*k < matMulParMin {
		matMulTransBRange(dst, a, b, 0, m, 0, n)
		return
	}
	dispatchMatMul(m, n, func(i0, i1, j0, j1 int) { matMulTransBRange(dst, a, b, i0, i1, j0, j1) })
}

// matMulTransBRange computes the dst block rows [i0, i1) × columns [j0, j1)
// of a @ bᵀ.
func matMulTransBRange(dst, a, b *Tensor, i0, i1, j0, j1 int) {
	k := a.shape[1]
	n := b.shape[0]
	for jb := j0; jb < j1; jb += tileJ {
		je := min(jb+tileJ, j1)
		for i := i0; i < i1; i++ {
			ai := a.Data[i*k : (i+1)*k]
			di := dst.Data[i*n : (i+1)*n]
			for j := jb; j < je; j++ {
				bj := b.Data[j*k : (j+1)*k]
				s := 0.0
				for p, av := range ai {
					s += av * bj[p]
				}
				di[j] = s
			}
		}
	}
}

// Transpose returns the transpose of a 2-D tensor.
func (t *Tensor) Transpose() *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose requires a 2-D tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}

// AddRowVecInto adds a length-n row vector to every row of an [m,n] matrix.
func AddRowVecInto(dst, a *Tensor, v []float64) {
	m, n := a.shape[0], a.shape[1]
	if len(v) != n || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: AddRowVecInto shape mismatch: a %v, dst %v, vector length %d", a.shape, dst.shape, len(v)))
	}
	forEachScaled(m, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*n : (i+1)*n]
			di := dst.Data[i*n : (i+1)*n]
			for j := range di {
				di[j] = ai[j] + v[j]
			}
		}
	})
}

// ColSumsInto writes the per-column sums of an [m,n] matrix into dst (len n).
func ColSumsInto(dst []float64, a *Tensor) {
	m, n := a.shape[0], a.shape[1]
	if len(dst) != n {
		panic(fmt.Sprintf("tensor: ColSumsInto length mismatch: a %v, dst length %d", a.shape, len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m; i++ {
		ai := a.Data[i*n : (i+1)*n]
		for j, v := range ai {
			dst[j] += v
		}
	}
}

// Row returns a view of row i of a 2-D tensor (shares backing storage).
func (t *Tensor) Row(i int) []float64 {
	if t.Rank() != 2 {
		panic("tensor: Row requires a 2-D tensor")
	}
	n := t.shape[1]
	return t.Data[i*n : (i+1)*n]
}
