// Package tensor implements the dense numerical arrays underlying the neural
// network substrate. It supports the small set of operations the repository
// needs — matrix multiplication, im2col convolution, pooling, elementwise
// arithmetic and reductions — on float64 data stored in row-major order.
//
// Design notes: shapes are plain []int; a Tensor owns its backing slice
// unless created with FromSlice, in which case the caller promises not to
// alias it concurrently. Operations either write into a receiver (the *Into
// forms, used on hot paths to avoid allocation) or return fresh tensors.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 array with an explicit shape.
type Tensor struct {
	Data  []float64
	shape []int
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Data: make([]float64, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data with the given shape without copying. The product of
// the shape must equal len(data).
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v does not match data length %d", shape, len(data)))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// Shape returns the tensor's dimensions. Callers must not mutate the result.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the same data under a new shape. The element
// count must match. The returned tensor shares the backing slice.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// At returns the element at the given multi-index (2-D fast path only where
// it matters; general indexing is used in tests and setup code).
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// --- Elementwise operations -------------------------------------------------

// AddInto computes dst = a + b elementwise. All three must share a length.
func AddInto(dst, a, b *Tensor) {
	checkSameLen("AddInto", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SubInto computes dst = a - b elementwise.
func SubInto(dst, a, b *Tensor) {
	checkSameLen("SubInto", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// MulInto computes dst = a * b elementwise (Hadamard product).
func MulInto(dst, a, b *Tensor) {
	checkSameLen("MulInto", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// AXPY computes dst += alpha * x.
func AXPY(alpha float64, x, dst *Tensor) {
	checkSameLen("AXPY", dst, x, x)
	for i := range dst.Data {
		dst.Data[i] += alpha * x.Data[i]
	}
}

// Scale multiplies every element by alpha in place.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// AddScalar adds alpha to every element in place.
func (t *Tensor) AddScalar(alpha float64) {
	for i := range t.Data {
		t.Data[i] += alpha
	}
}

// Clamp limits every element to [lo, hi] in place.
func (t *Tensor) Clamp(lo, hi float64) {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
}

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

func checkSameLen(op string, ts ...*Tensor) {
	n := ts[0].Len()
	for _, t := range ts[1:] {
		if t.Len() != n {
			panic(fmt.Sprintf("tensor: %s length mismatch %d vs %d", op, n, t.Len()))
		}
	}
}

// --- Reductions ---------------------------------------------------------------

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// MaxIndex returns the index of the largest element (first on ties).
func (t *Tensor) MaxIndex() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equally sized tensors.
func Dot(a, b *Tensor) float64 {
	checkSameLen("Dot", a, b)
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// --- Matrix operations ---------------------------------------------------------

// MatMulInto computes dst = a @ b for 2-D tensors a [m,k] and b [k,n],
// writing into dst [m,n]. The inner loops are ordered i-k-j so the innermost
// loop streams both b and dst rows sequentially, which is the standard
// cache-friendly layout for row-major data.
func MatMulInto(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic("tensor: MatMulInto requires 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %v @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	for i := 0; i < m; i++ {
		di := dst.Data[i*n : (i+1)*n]
		for j := range di {
			di[j] = 0
		}
		ai := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMul returns a @ b as a fresh tensor.
func MatMul(a, b *Tensor) *Tensor {
	dst := New(a.shape[0], b.shape[1])
	MatMulInto(dst, a, b)
	return dst
}

// MatMulTransAInto computes dst = aᵀ @ b where a is [k,m] and b is [k,n].
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch %v ᵀ@ %v -> %v", a.shape, b.shape, dst.shape))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			di := dst.Data[i*n : (i+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulTransBInto computes dst = a @ bᵀ where a is [m,k] and b is [n,k].
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shape mismatch %v @ᵀ %v -> %v", a.shape, b.shape, dst.shape))
	}
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		di := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			di[j] = s
		}
	}
}

// Transpose returns the transpose of a 2-D tensor.
func (t *Tensor) Transpose() *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose requires a 2-D tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}

// AddRowVecInto adds a length-n row vector to every row of an [m,n] matrix.
func AddRowVecInto(dst, a *Tensor, v []float64) {
	m, n := a.shape[0], a.shape[1]
	if len(v) != n || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: AddRowVecInto shape mismatch")
	}
	for i := 0; i < m; i++ {
		ai := a.Data[i*n : (i+1)*n]
		di := dst.Data[i*n : (i+1)*n]
		for j := range di {
			di[j] = ai[j] + v[j]
		}
	}
}

// ColSumsInto writes the per-column sums of an [m,n] matrix into dst (len n).
func ColSumsInto(dst []float64, a *Tensor) {
	m, n := a.shape[0], a.shape[1]
	if len(dst) != n {
		panic("tensor: ColSumsInto length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m; i++ {
		ai := a.Data[i*n : (i+1)*n]
		for j, v := range ai {
			dst[j] += v
		}
	}
}

// Row returns a view of row i of a 2-D tensor (shares backing storage).
func (t *Tensor) Row(i int) []float64 {
	if t.Rank() != 2 {
		panic("tensor: Row requires a 2-D tensor")
	}
	n := t.shape[1]
	return t.Data[i*n : (i+1)*n]
}
