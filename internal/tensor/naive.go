package tensor

// Naive reference kernels.
//
// These are the textbook single-threaded forms of the compute kernels,
// retained as ground truth for the parity/fuzz harness (parity_test.go,
// fuzz_test.go) and as the baseline for the benchmark regression guards
// (BenchmarkMatMulNaive in the root bench_test.go). They are deliberately
// free of tiling, zero-skipping and parallel dispatch so a bug in the fast
// path cannot hide in a shared shortcut. Production code should call the
// tiled forms (MatMulInto etc.); nothing outside tests and benchmarks should
// need these.

// NaiveMatMulInto computes dst = a @ b with the straightforward triple loop.
func NaiveMatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMulShapes("NaiveMatMulInto", dst, a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			dst.Data[i*n+j] = s
		}
	}
}

// NaiveMatMulTransAInto computes dst = aᵀ @ b for a [k,m] and b [k,n].
func NaiveMatMulTransAInto(dst, a, b *Tensor) {
	k, m, n := checkMatMulTransAShapes("NaiveMatMulTransAInto", dst, a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.Data[p*m+i] * b.Data[p*n+j]
			}
			dst.Data[i*n+j] = s
		}
	}
}

// NaiveMatMulTransBInto computes dst = a @ bᵀ for a [m,k] and b [n,k].
func NaiveMatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransBShapes("NaiveMatMulTransBInto", dst, a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[j*k+p]
			}
			dst.Data[i*n+j] = s
		}
	}
}

// NaiveIm2Col is the original single-threaded patch unroll: one sliding
// window row at a time, padding positions written as zeros.
func NaiveIm2Col(x []float64, d ConvDims, cols *Tensor) {
	k := d.InC * d.KH * d.KW
	row := 0
	for oy := 0; oy < d.OutH; oy++ {
		for ox := 0; ox < d.OutW; ox++ {
			dst := cols.Data[row*k : (row+1)*k]
			di := 0
			for c := 0; c < d.InC; c++ {
				chanOff := c * d.InH * d.InW
				for ky := 0; ky < d.KH; ky++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.InH {
						for kx := 0; kx < d.KW; kx++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowOff := chanOff + iy*d.InW
					for kx := 0; kx < d.KW; kx++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix < 0 || ix >= d.InW {
							dst[di] = 0
						} else {
							dst[di] = x[rowOff+ix]
						}
						di++
					}
				}
			}
			row++
		}
	}
}

// NaiveCol2Im is the original single-threaded scatter-accumulate adjoint of
// NaiveIm2Col.
func NaiveCol2Im(cols *Tensor, d ConvDims, dx []float64) {
	k := d.InC * d.KH * d.KW
	row := 0
	for oy := 0; oy < d.OutH; oy++ {
		for ox := 0; ox < d.OutW; ox++ {
			src := cols.Data[row*k : (row+1)*k]
			si := 0
			for c := 0; c < d.InC; c++ {
				chanOff := c * d.InH * d.InW
				for ky := 0; ky < d.KH; ky++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.InH {
						si += d.KW
						continue
					}
					rowOff := chanOff + iy*d.InW
					for kx := 0; kx < d.KW; kx++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix >= 0 && ix < d.InW {
							dx[rowOff+ix] += src[si]
						}
						si++
					}
				}
			}
			row++
		}
	}
}
