package tensor

import "fmt"

// Conv2D support via im2col: an input batch [N, C, H, W] is unrolled into a
// matrix of sliding-window patches so the convolution becomes one MatMul.
// This is the standard CPU strategy; the unrolled buffer is reused by the nn
// layer between calls to avoid per-batch allocation.
//
// Parallelism: Im2Col is a pure gather, so output rows are partitioned
// across the shared pool directly. Col2Im scatters into the image gradient
// with *overlapping* windows — neighbouring output positions write the same
// input pixel — so it is partitioned by channel instead: every channel owns
// a disjoint region of dx, and within a channel the accumulation order over
// window positions matches the serial kernel exactly. Both degrade to the
// single-threaded path below convParMin work.

// convParMin is the per-call work floor (output positions × patch size)
// below which the im2col kernels stay serial.
const convParMin = 16 * 1024

// ConvDims describes a 2-D convolution geometry.
type ConvDims struct {
	InC, InH, InW int // input channels / height / width
	OutC          int // output channels
	KH, KW        int // kernel height / width
	Stride, Pad   int
	OutH, OutW    int // derived by Resolve
}

// Resolve fills the derived output dimensions and validates the geometry.
func (d *ConvDims) Resolve() error {
	if d.Stride <= 0 {
		return fmt.Errorf("tensor: conv stride must be positive, got %d", d.Stride)
	}
	d.OutH = (d.InH+2*d.Pad-d.KH)/d.Stride + 1
	d.OutW = (d.InW+2*d.Pad-d.KW)/d.Stride + 1
	if d.OutH <= 0 || d.OutW <= 0 {
		return fmt.Errorf("tensor: conv output collapsed to %dx%d for input %dx%d kernel %dx%d",
			d.OutH, d.OutW, d.InH, d.InW, d.KH, d.KW)
	}
	return nil
}

// Im2Col unrolls one image (C,H,W flattened in x) into cols, a matrix of
// shape [OutH*OutW, C*KH*KW]. Padding positions contribute zeros. Output
// window rows are gathered in parallel for large geometries.
func Im2Col(x []float64, d ConvDims, cols *Tensor) {
	work := d.OutH * d.OutW * d.InC * d.KH * d.KW
	if work < convParMin {
		im2colRows(x, d, cols, 0, d.OutH)
		return
	}
	ParallelFor(d.OutH, 1, func(lo, hi int) { im2colRows(x, d, cols, lo, hi) })
}

// im2colRows unrolls output rows oy in [oy0, oy1): each writes the disjoint
// cols rows [oy*OutW, (oy+1)*OutW).
func im2colRows(x []float64, d ConvDims, cols *Tensor, oy0, oy1 int) {
	k := d.InC * d.KH * d.KW
	for oy := oy0; oy < oy1; oy++ {
		row := oy * d.OutW
		for ox := 0; ox < d.OutW; ox++ {
			dst := cols.Data[row*k : (row+1)*k]
			di := 0
			for c := 0; c < d.InC; c++ {
				chanOff := c * d.InH * d.InW
				for ky := 0; ky < d.KH; ky++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.InH {
						for kx := 0; kx < d.KW; kx++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowOff := chanOff + iy*d.InW
					for kx := 0; kx < d.KW; kx++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix < 0 || ix >= d.InW {
							dst[di] = 0
						} else {
							dst[di] = x[rowOff+ix]
						}
						di++
					}
				}
			}
			row++
		}
	}
}

// Col2Im scatters gradient columns (shape [OutH*OutW, C*KH*KW]) back into an
// image gradient (C,H,W flattened into dx, accumulated). Channels are
// scattered in parallel for large geometries; each channel's dx region is
// disjoint, and the per-pixel accumulation order is the serial one.
func Col2Im(cols *Tensor, d ConvDims, dx []float64) {
	work := d.OutH * d.OutW * d.InC * d.KH * d.KW
	if d.InC == 1 || work < convParMin {
		col2imChans(cols, d, dx, 0, d.InC)
		return
	}
	ParallelFor(d.InC, 1, func(lo, hi int) { col2imChans(cols, d, dx, lo, hi) })
}

// col2imChans scatters channels [c0, c1) of every window row into dx.
func col2imChans(cols *Tensor, d ConvDims, dx []float64, c0, c1 int) {
	k := d.InC * d.KH * d.KW
	for c := c0; c < c1; c++ {
		chanOff := c * d.InH * d.InW
		base := c * d.KH * d.KW
		row := 0
		for oy := 0; oy < d.OutH; oy++ {
			for ox := 0; ox < d.OutW; ox++ {
				src := cols.Data[row*k+base : row*k+base+d.KH*d.KW]
				si := 0
				for ky := 0; ky < d.KH; ky++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.InH {
						si += d.KW
						continue
					}
					rowOff := chanOff + iy*d.InW
					for kx := 0; kx < d.KW; kx++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix >= 0 && ix < d.InW {
							dx[rowOff+ix] += src[si]
						}
						si++
					}
				}
				row++
			}
		}
	}
}

// AvgPool2D performs global average pooling over each channel of a batch
// [N, C, H, W], producing [N, C]. Channels are reduced in parallel for
// large batches; each output element is one serial sum, so results are
// pool-size independent.
func AvgPool2D(x *Tensor) *Tensor {
	if x.Rank() != 4 {
		panic("tensor: AvgPool2D requires a 4-D tensor")
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n, c)
	area := float64(h * w)
	spatial := h * w
	forEachScaled(n*c, spatial, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			off := nc * spatial
			s := 0.0
			for p := 0; p < spatial; p++ {
				s += x.Data[off+p]
			}
			out.Data[nc] = s / area
		}
	})
	return out
}

// AvgPool2DBackward spreads the pooled gradient [N, C] uniformly back over
// the spatial positions, producing [N, C, H, W].
func AvgPool2DBackward(grad *Tensor, h, w int) *Tensor {
	n, c := grad.shape[0], grad.shape[1]
	out := New(n, c, h, w)
	inv := 1.0 / float64(h*w)
	spatial := h * w
	forEachScaled(n*c, spatial, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			g := grad.Data[nc] * inv
			off := nc * spatial
			for p := 0; p < spatial; p++ {
				out.Data[off+p] = g
			}
		}
	})
	return out
}
