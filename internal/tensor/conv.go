package tensor

import "fmt"

// Conv2D support via im2col: an input batch [N, C, H, W] is unrolled into a
// matrix of sliding-window patches so the convolution becomes one MatMul.
// This is the standard CPU strategy; the unrolled buffer is reused by the nn
// layer between calls to avoid per-batch allocation.

// ConvDims describes a 2-D convolution geometry.
type ConvDims struct {
	InC, InH, InW int // input channels / height / width
	OutC          int // output channels
	KH, KW        int // kernel height / width
	Stride, Pad   int
	OutH, OutW    int // derived by Resolve
}

// Resolve fills the derived output dimensions and validates the geometry.
func (d *ConvDims) Resolve() error {
	if d.Stride <= 0 {
		return fmt.Errorf("tensor: conv stride must be positive, got %d", d.Stride)
	}
	d.OutH = (d.InH+2*d.Pad-d.KH)/d.Stride + 1
	d.OutW = (d.InW+2*d.Pad-d.KW)/d.Stride + 1
	if d.OutH <= 0 || d.OutW <= 0 {
		return fmt.Errorf("tensor: conv output collapsed to %dx%d for input %dx%d kernel %dx%d",
			d.OutH, d.OutW, d.InH, d.InW, d.KH, d.KW)
	}
	return nil
}

// Im2Col unrolls one image (C,H,W flattened in x) into cols, a matrix of
// shape [OutH*OutW, C*KH*KW]. Padding positions contribute zeros.
func Im2Col(x []float64, d ConvDims, cols *Tensor) {
	k := d.InC * d.KH * d.KW
	row := 0
	for oy := 0; oy < d.OutH; oy++ {
		for ox := 0; ox < d.OutW; ox++ {
			dst := cols.Data[row*k : (row+1)*k]
			di := 0
			for c := 0; c < d.InC; c++ {
				chanOff := c * d.InH * d.InW
				for ky := 0; ky < d.KH; ky++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.InH {
						for kx := 0; kx < d.KW; kx++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowOff := chanOff + iy*d.InW
					for kx := 0; kx < d.KW; kx++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix < 0 || ix >= d.InW {
							dst[di] = 0
						} else {
							dst[di] = x[rowOff+ix]
						}
						di++
					}
				}
			}
			row++
		}
	}
}

// Col2Im scatters gradient columns (shape [OutH*OutW, C*KH*KW]) back into an
// image gradient (C,H,W flattened into dx, accumulated).
func Col2Im(cols *Tensor, d ConvDims, dx []float64) {
	k := d.InC * d.KH * d.KW
	row := 0
	for oy := 0; oy < d.OutH; oy++ {
		for ox := 0; ox < d.OutW; ox++ {
			src := cols.Data[row*k : (row+1)*k]
			si := 0
			for c := 0; c < d.InC; c++ {
				chanOff := c * d.InH * d.InW
				for ky := 0; ky < d.KH; ky++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.InH {
						si += d.KW
						continue
					}
					rowOff := chanOff + iy*d.InW
					for kx := 0; kx < d.KW; kx++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix >= 0 && ix < d.InW {
							dx[rowOff+ix] += src[si]
						}
						si++
					}
				}
			}
			row++
		}
	}
}

// AvgPool2D performs global average pooling over each channel of a batch
// [N, C, H, W], producing [N, C].
func AvgPool2D(x *Tensor) *Tensor {
	if x.Rank() != 4 {
		panic("tensor: AvgPool2D requires a 4-D tensor")
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n, c)
	area := float64(h * w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			off := (i*c + ch) * h * w
			s := 0.0
			for p := 0; p < h*w; p++ {
				s += x.Data[off+p]
			}
			out.Data[i*c+ch] = s / area
		}
	}
	return out
}

// AvgPool2DBackward spreads the pooled gradient [N, C] uniformly back over
// the spatial positions, producing [N, C, H, W].
func AvgPool2DBackward(grad *Tensor, h, w int) *Tensor {
	n, c := grad.shape[0], grad.shape[1]
	out := New(n, c, h, w)
	inv := 1.0 / float64(h*w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g := grad.Data[i*c+ch] * inv
			off := (i*c + ch) * h * w
			for p := 0; p < h*w; p++ {
				out.Data[off+p] = g
			}
		}
	}
	return out
}
