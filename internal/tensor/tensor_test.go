package tensor

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"bprom/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
	if x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("shape metadata wrong: rank=%d dim1=%d", x.Rank(), x.Dim(1))
	}
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	x.Data[0] = 9
	if d[0] != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSliceShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if x.At(2, 1) != 7.5 {
		t.Fatal("At/Set round trip failed")
	}
	if x.Data[2*4+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestReshapeSharesAndValidates(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 5
	if x.Data[0] != 5 {
		t.Fatal("Reshape must share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	x.Reshape(5, 5)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	dst := New(3)
	AddInto(dst, a, b)
	if dst.Data[2] != 9 {
		t.Fatalf("AddInto got %v", dst.Data)
	}
	SubInto(dst, b, a)
	if dst.Data[0] != 3 {
		t.Fatalf("SubInto got %v", dst.Data)
	}
	MulInto(dst, a, b)
	if dst.Data[1] != 10 {
		t.Fatalf("MulInto got %v", dst.Data)
	}
	AXPY(2, a, dst) // dst = (4,10,18) + 2*(1,2,3)
	if dst.Data[2] != 24 {
		t.Fatalf("AXPY got %v", dst.Data)
	}
}

func TestScaleClampApply(t *testing.T) {
	x := FromSlice([]float64{-2, 0.5, 3}, 3)
	x.Scale(2)
	x.Clamp(-1, 4)
	if x.Data[0] != -1 || x.Data[2] != 4 {
		t.Fatalf("Scale/Clamp got %v", x.Data)
	}
	x.Apply(func(v float64) float64 { return v + 1 })
	if x.Data[1] != 2 {
		t.Fatalf("Apply got %v", x.Data)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{3, -1, 4}, 3)
	if x.Sum() != 6 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if !almostEq(x.Mean(), 2, 1e-12) {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.MaxIndex() != 2 {
		t.Fatalf("MaxIndex = %d", x.MaxIndex())
	}
	if !almostEq(x.Norm2(), math.Sqrt(26), 1e-12) {
		t.Fatalf("Norm2 = %v", x.Norm2())
	}
	if Dot(x, x) != 26 {
		t.Fatalf("Dot = %v", Dot(x, x))
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(5)
	a := New(4, 4)
	r.Gaussian(a.Data, 0, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if !almostEq(c.Data[i], a.Data[i], 1e-12) {
			t.Fatal("A @ I != A")
		}
	}
}

// naive reference implementation for property tests
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	f := func(seed uint64, rm, rk, rn uint8) bool {
		m, k, n := int(rm%6)+1, int(rk%6)+1, int(rn%6)+1
		r := rng.New(seed)
		a, b := New(m, k), New(k, n)
		r.Gaussian(a.Data, 0, 1)
		r.Gaussian(b.Data, 0, 1)
		got, want := MatMul(a, b), naiveMatMul(a, b)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransAMatchesExplicit(t *testing.T) {
	r := rng.New(7)
	a, b := New(5, 3), New(5, 4)
	r.Gaussian(a.Data, 0, 1)
	r.Gaussian(b.Data, 0, 1)
	dst := New(3, 4)
	MatMulTransAInto(dst, a, b)
	want := MatMul(a.Transpose(), b)
	for i := range dst.Data {
		if !almostEq(dst.Data[i], want.Data[i], 1e-9) {
			t.Fatal("MatMulTransAInto mismatch vs explicit transpose")
		}
	}
}

func TestMatMulTransBMatchesExplicit(t *testing.T) {
	r := rng.New(8)
	a, b := New(5, 3), New(4, 3)
	r.Gaussian(a.Data, 0, 1)
	r.Gaussian(b.Data, 0, 1)
	dst := New(5, 4)
	MatMulTransBInto(dst, a, b)
	want := MatMul(a, b.Transpose())
	for i := range dst.Data {
		if !almostEq(dst.Data[i], want.Data[i], 1e-9) {
			t.Fatal("MatMulTransBInto mismatch vs explicit transpose")
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64, rm, rn uint8) bool {
		m, n := int(rm%5)+1, int(rn%5)+1
		r := rng.New(seed)
		a := New(m, n)
		r.Gaussian(a.Data, 0, 1)
		b := a.Transpose().Transpose()
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRowVecAndColSums(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	dst := New(2, 2)
	AddRowVecInto(dst, a, []float64{10, 20})
	if dst.At(1, 1) != 24 || dst.At(0, 0) != 11 {
		t.Fatalf("AddRowVecInto got %v", dst.Data)
	}
	sums := make([]float64, 2)
	ColSumsInto(sums, a)
	if sums[0] != 4 || sums[1] != 6 {
		t.Fatalf("ColSumsInto got %v", sums)
	}
}

func TestRowView(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	row := a.Row(1)
	row[0] = 99
	if a.At(1, 0) != 99 {
		t.Fatal("Row must return a view")
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is the identity (per channel).
	d := ConvDims{InC: 2, InH: 3, InW: 3, OutC: 1, KH: 1, KW: 1, Stride: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2*3*3)
	for i := range x {
		x[i] = float64(i)
	}
	cols := New(d.OutH*d.OutW, d.InC)
	Im2Col(x, d, cols)
	for pos := 0; pos < 9; pos++ {
		if cols.At(pos, 0) != float64(pos) || cols.At(pos, 1) != float64(9+pos) {
			t.Fatalf("im2col 1x1 mismatch at %d", pos)
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	d := ConvDims{InC: 1, InH: 2, InW: 2, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	if d.OutH != 2 || d.OutW != 2 {
		t.Fatalf("resolved %dx%d, want 2x2", d.OutH, d.OutW)
	}
	x := []float64{1, 2, 3, 4}
	cols := New(d.OutH*d.OutW, 9)
	Im2Col(x, d, cols)
	// Output position (0,0): window centered at (0,0); top row and left col
	// fall in padding.
	want0 := []float64{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for i, w := range want0 {
		if cols.At(0, i) != w {
			t.Fatalf("padded im2col row0[%d] = %v, want %v", i, cols.At(0, i), w)
		}
	}
}

func TestCol2ImAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), g> == <x, Col2Im(g)> must hold for the pair to implement a
	// correct linear operator and its transpose (the backprop requirement).
	f := func(seed uint64) bool {
		d := ConvDims{InC: 2, InH: 5, InW: 4, OutC: 1, KH: 3, KW: 3, Stride: 2, Pad: 1}
		if err := d.Resolve(); err != nil {
			return false
		}
		r := rng.New(seed)
		x := make([]float64, d.InC*d.InH*d.InW)
		r.Gaussian(x, 0, 1)
		cols := New(d.OutH*d.OutW, d.InC*d.KH*d.KW)
		Im2Col(x, d, cols)
		g := New(d.OutH*d.OutW, d.InC*d.KH*d.KW)
		r.Gaussian(g.Data, 0, 1)
		lhs := Dot(cols, g)
		dx := make([]float64, len(x))
		Col2Im(g, d, dx)
		rhs := 0.0
		for i := range x {
			rhs += x[i] * dx[i]
		}
		return almostEq(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConvDimsResolveErrors(t *testing.T) {
	d := ConvDims{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1}
	if err := d.Resolve(); err == nil {
		t.Fatal("expected error for kernel larger than input")
	}
	d = ConvDims{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 0}
	if err := d.Resolve(); err == nil {
		t.Fatal("expected error for zero stride")
	}
}

func TestAvgPoolForwardBackward(t *testing.T) {
	x := New(1, 2, 2, 2)
	copy(x.Data, []float64{1, 2, 3, 4, 10, 20, 30, 40})
	p := AvgPool2D(x)
	if !almostEq(p.At(0, 0), 2.5, 1e-12) || !almostEq(p.At(0, 1), 25, 1e-12) {
		t.Fatalf("AvgPool2D got %v", p.Data)
	}
	g := FromSlice([]float64{4, 8}, 1, 2)
	back := AvgPool2DBackward(g, 2, 2)
	if back.At(0, 0, 1, 1) != 1 || back.At(0, 1, 0, 0) != 2 {
		t.Fatalf("AvgPool2DBackward got %v", back.Data)
	}
}

// TestLengthMismatchPanicsReportShapes covers every checkSameLen panic path:
// the message must name the operation and both offending shapes (not just
// lengths), so a failure inside a deep training loop is diagnosable.
func TestLengthMismatchPanicsReportShapes(t *testing.T) {
	a23 := New(2, 3) // 6 elements
	b4 := New(4)     // 4 elements
	cases := []struct {
		name string
		call func()
	}{
		{"AddInto", func() { AddInto(New(2, 3), a23, b4) }},
		{"AddInto-dst", func() { AddInto(b4, a23, a23) }},
		{"SubInto", func() { SubInto(New(2, 3), a23, b4) }},
		{"MulInto", func() { MulInto(New(2, 3), a23, b4) }},
		{"AXPY", func() { AXPY(1, b4, a23) }},
		{"Dot", func() { Dot(a23, b4) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected panic for length mismatch")
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("panic value %T, want string", r)
				}
				for _, want := range []string{"[2 3]", "[4]", "length mismatch"} {
					if !strings.Contains(msg, want) {
						t.Fatalf("panic %q does not mention %q", msg, want)
					}
				}
			}()
			tc.call()
		})
	}
}

// TestMatMulShapePanicsReportShapes covers the matmul shape validators for
// all three variants and their naive references.
func TestMatMulShapePanicsReportShapes(t *testing.T) {
	cases := []struct {
		name string
		call func()
	}{
		{"MatMulInto-inner", func() { MatMulInto(New(2, 5), New(2, 3), New(4, 5)) }},
		{"MatMulInto-dst", func() { MatMulInto(New(9, 9), New(2, 3), New(3, 5)) }},
		{"MatMulInto-rank", func() { MatMulInto(New(2, 5), New(2, 3, 1), New(3, 5)) }},
		{"MatMulTransAInto", func() { MatMulTransAInto(New(3, 5), New(2, 3), New(4, 5)) }},
		{"MatMulTransBInto", func() { MatMulTransBInto(New(2, 4), New(2, 3), New(4, 9)) }},
		{"NaiveMatMulInto", func() { NaiveMatMulInto(New(2, 5), New(2, 3), New(4, 5)) }},
		{"NaiveMatMulTransAInto", func() { NaiveMatMulTransAInto(New(3, 5), New(2, 3), New(4, 5)) }},
		{"NaiveMatMulTransBInto", func() { NaiveMatMulTransBInto(New(2, 4), New(2, 3), New(4, 9)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected shape panic")
				}
				msg := r.(string)
				if !strings.Contains(msg, "[2 3") || !strings.Contains(msg, "tensor: ") {
					t.Fatalf("panic %q does not report the offending shapes", msg)
				}
			}()
			tc.call()
		})
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := rng.New(1)
	a, c := New(64, 64), New(64, 64)
	r.Gaussian(a.Data, 0, 1)
	r.Gaussian(c.Data, 0, 1)
	dst := New(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, c)
	}
}
