package tensor

// Reduced-precision (int8) matmul kernel family.
//
// A QTensor is a 2-D weight matrix quantized to int8 with per-channel affine
// parameters (scale + zero-point), where "channel" is the output dimension:
// columns for the [k,n] layout consumed by QMatMulInto (the Dense layer's
// x @ W), rows for the [n,k] layout consumed by QMatMulTransBInto (the
// Conv2D layer's im2col product col @ Wᵀ). Activations are quantized on the
// fly, one affine pair per row, so every matmul is pure int8×int8 → int32
// arithmetic followed by a per-element dequantization:
//
//	dst[i][j] = sx_i·sw_j·( acc[i][j] − zw_j·Σp qx[i][p] − zx_i·Σp qw[p][j] + k·zx_i·zw_j )
//
// where acc is the raw int32 dot product of the quantized operands and the
// correction terms fold both zero-points back out (the per-channel weight
// sums are precomputed at quantization time; the per-row activation sums
// fall out of the row quantization pass). Integer accumulation is exact, so
// the fast kernels are *bitwise* reproducible against the NaiveQ* reference
// forms (naive_quant.go) and under any worker-pool size — the parity/fuzz
// harness pins both, exactly like the float64 kernels.
//
// The im2col path stays float64: Im2Col is a pure gather with no arithmetic,
// so the conv layer feeds its float64 col matrix straight into
// QMatMulTransBInto, which quantizes the gathered rows on the fly. Padding
// zeros survive quantization exactly — the row quantizer always includes 0
// in the clamped range, so 0 maps to the zero-point and back to exactly 0.
//
// The inner loops are 8-wide unrolled and gather-free. QMatMulInto is the
// throughput kernel: it carries a SWAR-packed mirror of the weights (four
// columns per uint64, 16-bit lanes, operands biased to unsigned) so one
// 64-bit multiply performs four multiply-accumulates — pure integer, still
// exact, and ~2-3x the fp64 kernel's single-core throughput without any
// architecture-specific code. QMatMulTransBInto is the plain unrolled
// signed form kept for the [n,k] layout; throughput-sensitive callers
// (the conv path) pre-transpose into the per-column layout instead.
// Reduction dims are bounded by qMaxK so no accumulator can overflow; the
// dequantization correction runs in int64.
//
// Quantization is lossy (the fp-exact serving path remains the default
// everywhere); the quantized path trades a bounded confidence error for
// ~2x single-core matmul throughput and 8x smaller weight bytes. The nn
// layer owns that trade-off (Model.Quantize); nothing here is invoked
// unless a caller explicitly quantizes.

import (
	"fmt"
	"math"
	"sync"
)

// qMaxK bounds the reduction dimension of the quantized kernels. The SWAR
// fast path accumulates unsigned biased products (≤ 255·255 = 65025) in
// 32-bit sublanes of a uint64, which stays exact for up to 2^16 terms
// (65025·2^16 < 2^32); the signed path's int32 accumulator is safe to 2^17,
// so the SWAR bound is the binding one. Larger reductions would overflow
// silently; the shape checks panic instead.
const qMaxK = 1 << 16

// QTensor is an int8-quantized 2-D matrix with per-channel affine
// parameters. Channels run over the output dimension: columns when perRow
// is false (QuantizePerCol, the [k,n] Dense weight layout), rows when
// perRow is true (QuantizePerRow, the [n,k] transposed-B layout). The
// fields are read-only after construction; a QTensor is safe for any number
// of concurrent kernel calls.
type QTensor struct {
	// Data holds the quantized values in the source tensor's row-major
	// layout.
	Data []int8
	// Scales and ZeroPoints are the per-channel affine parameters:
	// value ≈ scale·(q − zeroPoint).
	Scales     []float64
	ZeroPoints []int32
	// Sums holds the per-channel sums of Data, precomputed so the kernels
	// can fold the activation zero-point back out without a second pass.
	Sums []int32

	// packed (per-column layout only) holds the weights biased to unsigned
	// (q+128 ∈ [0,255]) and packed four adjacent columns per uint64 as
	// 16-bit lanes: the SWAR inner loop multiplies a whole lane group by a
	// biased activation scalar with one 64-bit multiply. Layout is
	// group-major — packed[g*rows+p] covers columns 4g..4g+3 of weight row
	// p — so the reduction walks packGroups contiguous streams. Remainder
	// columns (cols mod 4) run through the scalar path over Data.
	packed     []uint64
	packGroups int

	rows, cols int
	perRow     bool
}

// Shape returns the quantized matrix's dimensions (same layout as the
// source tensor). Callers must not mutate the result.
func (q *QTensor) Shape() []int { return []int{q.rows, q.cols} }

// PerRow reports the channel axis: true for per-row channels (the [n,k]
// QMatMulTransBInto layout), false for per-column channels ([k,n]).
func (q *QTensor) PerRow() bool { return q.perRow }

// Bytes reports the resident size of the quantized representation: the
// int8 data, the SWAR-packed mirror, and the per-channel parameter arrays.
func (q *QTensor) Bytes() int {
	return len(q.Data) + 8*len(q.packed) + 8*len(q.Scales) + 4*len(q.ZeroPoints) + 4*len(q.Sums)
}

// reduceDim is the length of the dimension the kernels sum over.
func (q *QTensor) reduceDim() int {
	if q.perRow {
		return q.cols
	}
	return q.rows
}

// rangeOf scans vals at the given stride for the [lo, hi] envelope,
// ignoring non-finite values — a NaN or ±Inf must not blow up the channel
// scale; quantizeValue clamps such values to the ends of the int8 range
// instead.
func rangeOf(vals []float64, stride int) (lo, hi float64) {
	for i := 0; i < len(vals); i += stride {
		v := vals[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// affineParams derives the (scale, zeroPoint) pair mapping [lo, hi] onto
// the full int8 range. The range is widened to include 0 so exact zeros
// (padding, ReLU outputs) quantize to the zero-point and dequantize back to
// exactly 0. A degenerate all-zero range gets scale 1.
func affineParams(lo, hi float64) (scale float64, zp int32) {
	lo = math.Min(lo, 0)
	hi = math.Max(hi, 0)
	scale = (hi - lo) / 255
	if scale == 0 {
		scale = 1
	}
	z := math.Round(-128 - lo/scale)
	if !(z > -129) { // also catches NaN from pathological ranges
		z = -128
	}
	if z > 127 {
		z = 127
	}
	return scale, int32(z)
}

// quantizeValue maps v onto int8 under (scale, zp), clamping to the
// representable range. Non-finite inputs clamp deterministically.
func quantizeValue(v, scale float64, zp int32) int8 {
	r := math.Round(v/scale) + float64(zp)
	if !(r > -129) { // NaN and underflow both land on the bottom of the range
		r = -128
	}
	if r > 127 {
		r = 127
	}
	return int8(r)
}

// QuantizePerCol quantizes a [k,n] matrix with one affine pair per column —
// the layout QMatMulInto consumes (columns are the output channels of
// x @ W). The source tensor is not retained.
func QuantizePerCol(t *Tensor) *QTensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: QuantizePerCol requires a 2-D tensor, got shape %v", t.shape))
	}
	k, n := t.shape[0], t.shape[1]
	q := &QTensor{
		Data:       make([]int8, k*n),
		Scales:     make([]float64, n),
		ZeroPoints: make([]int32, n),
		Sums:       make([]int32, n),
		rows:       k,
		cols:       n,
	}
	for j := 0; j < n; j++ {
		scale, zp := affineParams(rangeOf(t.Data[j:], n))
		q.Scales[j], q.ZeroPoints[j] = scale, zp
		var sum int32
		for p := 0; p < k; p++ {
			qv := quantizeValue(t.Data[p*n+j], scale, zp)
			q.Data[p*n+j] = qv
			sum += int32(qv)
		}
		q.Sums[j] = sum
	}
	q.packGroups = n >> 2
	if q.packGroups > 0 {
		q.packed = make([]uint64, q.packGroups*k)
		for g := 0; g < q.packGroups; g++ {
			dst := q.packed[g*k : (g+1)*k]
			for p := 0; p < k; p++ {
				// Bias flip to unsigned: two's-complement int8 + 128 is the
				// same bit pattern as uint8 XOR 0x80.
				b := q.Data[p*n+g*4 : p*n+g*4+4]
				dst[p] = uint64(uint8(b[0])^0x80) |
					uint64(uint8(b[1])^0x80)<<16 |
					uint64(uint8(b[2])^0x80)<<32 |
					uint64(uint8(b[3])^0x80)<<48
			}
		}
	}
	return q
}

// QuantizePerRow quantizes an [n,k] matrix with one affine pair per row —
// the layout QMatMulTransBInto consumes (rows are the output channels of
// x @ Wᵀ, i.e. Conv2D's [OutC, InC·KH·KW] weights). The source tensor is
// not retained.
func QuantizePerRow(t *Tensor) *QTensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: QuantizePerRow requires a 2-D tensor, got shape %v", t.shape))
	}
	n, k := t.shape[0], t.shape[1]
	q := &QTensor{
		Data:       make([]int8, n*k),
		Scales:     make([]float64, n),
		ZeroPoints: make([]int32, n),
		Sums:       make([]int32, n),
		rows:       n,
		cols:       k,
		perRow:     true,
	}
	for j := 0; j < n; j++ {
		row := t.Data[j*k : (j+1)*k]
		scale, zp := affineParams(rangeOf(row, 1))
		q.Scales[j], q.ZeroPoints[j] = scale, zp
		dst := q.Data[j*k : (j+1)*k]
		var sum int32
		for p, v := range row {
			qv := quantizeValue(v, scale, zp)
			dst[p] = qv
			sum += int32(qv)
		}
		q.Sums[j] = sum
	}
	return q
}

// Dequantize reconstructs the float64 matrix the quantized data represents
// (tests and diagnostics; the kernels never materialize it).
func (q *QTensor) Dequantize() *Tensor {
	out := New(q.rows, q.cols)
	for j := 0; j < len(q.Scales); j++ {
		scale, zp := q.Scales[j], q.ZeroPoints[j]
		if q.perRow {
			for p := 0; p < q.cols; p++ {
				out.Data[j*q.cols+p] = scale * float64(int32(q.Data[j*q.cols+p])-zp)
			}
		} else {
			for p := 0; p < q.rows; p++ {
				out.Data[p*q.cols+j] = scale * float64(int32(q.Data[p*q.cols+j])-zp)
			}
		}
	}
	return out
}

// dequant converts the raw int32 accumulator for output channel j back to
// float64, folding out both zero-points: sx/zx/sumX are the activation
// row's scale, zero-point and quantized-value sum. The correction runs in
// int64 so it cannot overflow for any reduction dim the checks admit, and
// the float expression has a fixed evaluation order, so fast and naive
// kernels (and any pool partitioning) produce identical bits.
func (q *QTensor) dequant(acc int32, j int, sx float64, zx, sumX int32) float64 {
	zw := int64(q.ZeroPoints[j])
	corr := int64(acc) - zw*int64(sumX) - int64(zx)*int64(q.Sums[j]) + int64(q.reduceDim())*int64(zx)*zw
	return sx * q.Scales[j] * float64(corr)
}

// qActs is the scratch holding one activation batch quantized row-wise:
// int8 values plus the per-row affine parameters and quantized-value sums
// the dequantization correction needs.
type qActs struct {
	data   []int8
	scales []float64
	zps    []int32
	sums   []int32
}

var qActsPool = sync.Pool{New: func() any { return new(qActs) }}

// quantizeActs quantizes every row of x (shape [m,k]) into a pooled
// scratch. Rows are independent, so the pass parallelizes on the shared
// pool without affecting bits. Callers release() the scratch when done.
func quantizeActs(x *Tensor) *qActs {
	m, k := x.shape[0], x.shape[1]
	a := qActsPool.Get().(*qActs)
	if cap(a.data) < m*k {
		a.data = make([]int8, m*k)
	}
	a.data = a.data[:m*k]
	if cap(a.scales) < m {
		a.scales = make([]float64, m)
		a.zps = make([]int32, m)
		a.sums = make([]int32, m)
	}
	a.scales, a.zps, a.sums = a.scales[:m], a.zps[:m], a.sums[:m]
	forEachScaled(m, k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.scales[i], a.zps[i], a.sums[i] = quantizeRow(a.data[i*k:(i+1)*k], x.Data[i*k:(i+1)*k])
		}
	})
	return a
}

func (a *qActs) release() { qActsPool.Put(a) }

// quantizeRow quantizes one activation row with its own affine pair and
// returns (scale, zeroPoint, sum of quantized values). This is the
// canonical row quantizer — the fast and naive kernels share it, so the
// parity harness exercises the integer matmul and dequantization machinery
// against an independent reference while the (exact, branch-free) rounding
// policy stays single-sourced.
func quantizeRow(dst []int8, row []float64) (scale float64, zp int32, sum int32) {
	scale, zp = affineParams(rangeOf(row, 1))
	for i, v := range row {
		qv := quantizeValue(v, scale, zp)
		dst[i] = qv
		sum += int32(qv)
	}
	return scale, zp, sum
}

// checkQMatMulShapes validates dst = x @ q for a per-column QTensor and
// returns (m, k, n).
func checkQMatMulShapes(op string, dst, x *Tensor, q *QTensor) (m, k, n int) {
	if x.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s requires 2-D tensors, got %v @ %v -> %v", op, x.shape, q.Shape(), dst.shape))
	}
	if q.perRow {
		panic(fmt.Sprintf("tensor: %s requires a per-column QTensor (QuantizePerCol), got per-row %v", op, q.Shape()))
	}
	m, k = x.shape[0], x.shape[1]
	n = q.cols
	if k != q.rows || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v @ %v -> %v", op, x.shape, q.Shape(), dst.shape))
	}
	if k > qMaxK {
		panic(fmt.Sprintf("tensor: %s reduction dim %d exceeds the int32-safe bound %d", op, k, qMaxK))
	}
	return m, k, n
}

// checkQMatMulTransBShapes validates dst = x @ qᵀ for a per-row QTensor and
// returns (m, k, n).
func checkQMatMulTransBShapes(op string, dst, x *Tensor, q *QTensor) (m, k, n int) {
	if x.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s requires 2-D tensors, got %v @ᵀ %v -> %v", op, x.shape, q.Shape(), dst.shape))
	}
	if !q.perRow {
		panic(fmt.Sprintf("tensor: %s requires a per-row QTensor (QuantizePerRow), got per-column %v", op, q.Shape()))
	}
	m, k = x.shape[0], x.shape[1]
	n = q.rows
	if k != q.cols || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v @ᵀ %v -> %v", op, x.shape, q.Shape(), dst.shape))
	}
	if k > qMaxK {
		panic(fmt.Sprintf("tensor: %s reduction dim %d exceeds the int32-safe bound %d", op, k, qMaxK))
	}
	return m, k, n
}

// QMatMulInto computes dst = x @ q for float64 x [m,k] and a per-column
// quantized q [k,n]: x rows are quantized on the fly, the integer product
// accumulates in int32, and each output element is dequantized in place.
// Output blocks dispatch onto the shared worker pool above the same
// work floor as the float64 kernels; results are bitwise independent of
// the pool size and identical to NaiveQMatMulInto.
func QMatMulInto(dst, x *Tensor, q *QTensor) {
	m, k, n := checkQMatMulShapes("QMatMulInto", dst, x, q)
	acts := quantizeActs(x)
	defer acts.release()
	if m*n*k < matMulParMin {
		qMatMulRange(dst, acts, q, 0, m, 0, n)
		return
	}
	dispatchMatMul(m, n, func(i0, i1, j0, j1 int) { qMatMulRange(dst, acts, q, i0, i1, j0, j1) })
}

// qLaneMask selects the even 16-bit lanes of a uint64, giving two 32-bit
// accumulation sublanes.
const qLaneMask = 0x0000ffff0000ffff

// dequantBiased finishes one SWAR column: accPrime is the unsigned biased
// accumulator Σ (qx+128)(qw+128), which relates to the signed product by
// acc = accPrime − 128·(ΣqX + ΣqW) − 128²·k; corrBase carries the per-row
// half of that correction (−128·ΣqX − 16384·k). All terms are exact
// integers, so the result is bit-identical to the signed scalar path.
func (q *QTensor) dequantBiased(accPrime uint32, j int, corrBase int64, sx float64, zx, sumX int32) float64 {
	acc := int64(accPrime) + corrBase - 128*int64(q.Sums[j])
	return q.dequant(int32(acc), j, sx, zx, sumX)
}

// qMatMulRange computes the dst block rows [i0,i1) × columns [j0,j1) of
// x @ q. The inner loop is SWAR: both operands are biased to unsigned
// [0,255] (an XOR with 0x80 on the int8 bits), four weight columns ride in
// 16-bit lanes of one uint64, and a single 64-bit multiply by the biased
// activation scalar produces all four lane products (each < 2^16, so lanes
// never carry). Products are split into even/odd 32-bit sublanes and
// accumulated there — exact for the whole reduction because k ≤ qMaxK —
// giving 8 multiply-accumulates per two loads and two multiplies, with no
// gathers and no stores in the loop. The bias is folded back out in
// dequantBiased, so results match the signed scalar path bit for bit.
//
// Loop order is column-group-major: the two packed weight streams of each
// 8-column step (~16·k bytes) are reused across every row of the block, so
// the packed mirror is read once per call instead of once per row — the
// same weight-reuse trick the tiled float64 kernel gets from its panels.
// Narrow blocks (the serving path's 16-row predict blocks against wide
// Dense layers) would otherwise stream k×n weights per row and thrash L2.
// Each output element still accumulates in the same p order, so the result
// is bitwise independent of the loop nesting.
func qMatMulRange(dst *Tensor, acts *qActs, q *QTensor, i0, i1, j0, j1 int) {
	k, n := q.rows, q.cols
	packLim := q.packGroups * 4
	scalarCol := func(i, j int) {
		qa := acts.data[i*k : (i+1)*k]
		var s int32
		for p, av8 := range qa {
			s += int32(av8) * int32(q.Data[p*n+j])
		}
		dst.Data[i*n+j] = q.dequant(s, j, acts.scales[i], acts.zps[i], acts.sums[i])
	}
	j := j0
	for ; j < j1 && j&3 != 0; j++ { // align to a packed 4-column group
		for i := i0; i < i1; i++ {
			scalarCol(i, j)
		}
	}
	for ; j+8 <= j1 && j+8 <= packLim; j += 8 {
		g := j >> 2
		// Two contiguous group streams, L2-resident across the row loop.
		pw0 := q.packed[g*k : (g+1)*k]
		pw1 := q.packed[(g+1)*k : (g+2)*k]
		for i := i0; i < i1; i++ {
			qa := acts.data[i*k : (i+1)*k]
			// The [:len(qa)] reslices let the compiler drop the bounds
			// checks inside the reduction.
			pq0 := pw0[:len(qa)]
			pq1 := pw1[:len(qa)]
			var e0, o0, e1, o1 uint64
			for p, av8 := range qa {
				s := uint64(uint8(av8) ^ 0x80)
				w0 := pq0[p] * s
				w1 := pq1[p] * s
				e0 += w0 & qLaneMask
				o0 += (w0 >> 16) & qLaneMask
				e1 += w1 & qLaneMask
				o1 += (w1 >> 16) & qLaneMask
			}
			sx, zx, sumX := acts.scales[i], acts.zps[i], acts.sums[i]
			corrBase := -128*int64(sumX) - 16384*int64(k)
			di := dst.Data[i*n : (i+1)*n]
			di[j+0] = q.dequantBiased(uint32(e0), j+0, corrBase, sx, zx, sumX)
			di[j+1] = q.dequantBiased(uint32(o0), j+1, corrBase, sx, zx, sumX)
			di[j+2] = q.dequantBiased(uint32(e0>>32), j+2, corrBase, sx, zx, sumX)
			di[j+3] = q.dequantBiased(uint32(o0>>32), j+3, corrBase, sx, zx, sumX)
			di[j+4] = q.dequantBiased(uint32(e1), j+4, corrBase, sx, zx, sumX)
			di[j+5] = q.dequantBiased(uint32(o1), j+5, corrBase, sx, zx, sumX)
			di[j+6] = q.dequantBiased(uint32(e1>>32), j+6, corrBase, sx, zx, sumX)
			di[j+7] = q.dequantBiased(uint32(o1>>32), j+7, corrBase, sx, zx, sumX)
		}
	}
	for ; j < j1; j++ {
		for i := i0; i < i1; i++ {
			scalarCol(i, j)
		}
	}
}

// QMatMulTransBInto computes dst = x @ qᵀ for float64 x [m,k] and a
// per-row quantized q [n,k] — the quantized twin of MatMulTransBInto,
// consumed by the conv path (col @ Wᵀ with per-output-channel scales).
// Same contract as QMatMulInto: bitwise pool-size independent and
// identical to NaiveQMatMulTransBInto.
func QMatMulTransBInto(dst, x *Tensor, q *QTensor) {
	m, k, n := checkQMatMulTransBShapes("QMatMulTransBInto", dst, x, q)
	acts := quantizeActs(x)
	defer acts.release()
	if m*n*k < matMulParMin {
		qMatMulTransBRange(dst, acts, q, 0, m, 0, n)
		return
	}
	dispatchMatMul(m, n, func(i0, i1, j0, j1 int) { qMatMulTransBRange(dst, acts, q, i0, i1, j0, j1) })
}

// qMatMulTransBRange computes the dst block rows [i0,i1) × columns [j0,j1)
// of x @ qᵀ as contiguous int8 dot products, 8-wide unrolled onto eight
// independent accumulators (integer addition is associative, so the split
// is exact).
func qMatMulTransBRange(dst *Tensor, acts *qActs, q *QTensor, i0, i1, j0, j1 int) {
	k, n := q.cols, q.rows
	for i := i0; i < i1; i++ {
		qa := acts.data[i*k : (i+1)*k]
		di := dst.Data[i*n : (i+1)*n]
		sx, zx, sumX := acts.scales[i], acts.zps[i], acts.sums[i]
		for j := j0; j < j1; j++ {
			qb := q.Data[j*k : (j+1)*k]
			var s0, s1, s2, s3, s4, s5, s6, s7 int32
			p := 0
			for ; p+8 <= len(qa); p += 8 {
				s0 += int32(qa[p]) * int32(qb[p])
				s1 += int32(qa[p+1]) * int32(qb[p+1])
				s2 += int32(qa[p+2]) * int32(qb[p+2])
				s3 += int32(qa[p+3]) * int32(qb[p+3])
				s4 += int32(qa[p+4]) * int32(qb[p+4])
				s5 += int32(qa[p+5]) * int32(qb[p+5])
				s6 += int32(qa[p+6]) * int32(qb[p+6])
				s7 += int32(qa[p+7]) * int32(qb[p+7])
			}
			s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
			for ; p < len(qa); p++ {
				s += int32(qa[p]) * int32(qb[p])
			}
			di[j] = q.dequant(s, j, sx, zx, sumX)
		}
	}
}
