package tensor

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolSize1RunsInline: a width-1 pool is the serial fallback — exactly
// one callback covering the whole range, executed on the caller.
func TestPoolSize1RunsInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if p.Size() != 1 {
		t.Fatalf("Size = %d, want 1", p.Size())
	}
	var calls [][2]int
	p.For(100, 1, func(lo, hi int) { calls = append(calls, [2]int{lo, hi}) })
	// Appending without synchronization above is itself the assertion that
	// everything ran inline; the race detector would flag worker execution.
	if len(calls) != 1 || calls[0] != [2]int{0, 100} {
		t.Fatalf("size-1 pool calls = %v, want exactly [{0 100}]", calls)
	}
}

// TestPoolBelowGrainRunsInline: n <= grain short-circuits to one inline call
// regardless of pool width, so tiny ops never pay dispatch overhead.
func TestPoolBelowGrainRunsInline(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var calls int32
	p.For(64, 64, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo != 0 || hi != 64 {
			t.Errorf("chunk [%d,%d), want [0,64)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

// TestPoolForCoversRangeExactlyOnce: every index in [0, n) is visited by
// exactly one chunk, with no overlap and no gap, for assorted widths/grains.
func TestPoolForCoversRangeExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ size, n, grain int }{
		{1, 1000, 1},
		{2, 1000, 1},
		{4, 1, 1},
		{4, 7, 3},
		{4, 1000, 1},
		{8, 1000, 64},
		{8, 1024, 1024},
		{3, 999, 7},
	} {
		p := NewPool(tc.size)
		counts := make([]int32, tc.n)
		p.For(tc.n, tc.grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		p.Close()
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("size=%d n=%d grain=%d: index %d visited %d times", tc.size, tc.n, tc.grain, i, c)
			}
		}
	}
}

// TestPoolForEmptyRange: n <= 0 must be a no-op.
func TestPoolForEmptyRange(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, -5} {
		p.For(n, 1, func(lo, hi int) { t.Fatalf("callback for n=%d", n) })
	}
}

// TestPoolForConcurrentCallers: many goroutines sharing one pool — the
// serving-path shape — must each see their own full range exactly once.
func TestPoolForConcurrentCallers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const callers, n = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			p.For(n, 1, func(lo, hi int) {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				sum.Add(s)
			})
			if got, want := sum.Load(), int64(n*(n-1)/2); got != want {
				t.Errorf("concurrent caller sum = %d, want %d", got, want)
			}
		}()
	}
	wg.Wait()
}

// TestPoolForNested: a chunk that itself calls For must not deadlock —
// saturated submissions run inline on the submitter.
func TestPoolForNested(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var total atomic.Int64
	p.For(10, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.For(10, 1, func(lo2, hi2 int) {
				total.Add(int64(hi2 - lo2))
			})
		}
	})
	if total.Load() != 100 {
		t.Fatalf("nested total = %d, want 100", total.Load())
	}
}

// TestPoolForPanicPropagates: a panic inside a chunk — wherever it ran —
// must reach the submitting goroutine after all chunks finish, not kill a
// bare worker goroutine (which would crash the process) and not wedge the
// help-first wait.
func TestPoolForPanicPropagates(t *testing.T) {
	for _, size := range []int{1, 4} {
		p := NewPool(size)
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("size %d: panic did not propagate to the caller", size)
				} else if s, ok := r.(string); !ok || s != "kernel misuse" {
					t.Errorf("size %d: recovered %v, want \"kernel misuse\"", size, r)
				}
			}()
			p.For(100, 1, func(lo, hi int) {
				if lo <= 50 && 50 < hi {
					panic("kernel misuse")
				}
			})
		}()
		// The pool must still be usable afterwards.
		var n atomic.Int64
		p.For(10, 1, func(lo, hi int) { n.Add(int64(hi - lo)) })
		if n.Load() != 10 {
			t.Errorf("size %d: pool unusable after panic: covered %d", size, n.Load())
		}
		p.Close()
	}
}

// TestSharedPoolSetWorkers: SetWorkers resizes the shared pool, 0 restores
// the default, and kernels keep producing identical results at width 1
// (serial degradation) and a forced width 8.
func TestSharedPoolSetWorkers(t *testing.T) {
	defer SetWorkers(0)

	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() != DefaultWorkers() {
		t.Fatalf("Workers = %d after reset, want DefaultWorkers %d", Workers(), DefaultWorkers())
	}
}

// TestDefaultWorkersEnv: BPROM_TENSOR_WORKERS overrides the GOMAXPROCS
// default; garbage values fall through.
func TestDefaultWorkersEnv(t *testing.T) {
	t.Setenv("BPROM_TENSOR_WORKERS", "3")
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers = %d with env 3", got)
	}
	t.Setenv("BPROM_TENSOR_WORKERS", "not-a-number")
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers = %d with garbage env", got)
	}
	t.Setenv("BPROM_TENSOR_WORKERS", "-2")
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers = %d with negative env", got)
	}
}
