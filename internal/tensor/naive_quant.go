package tensor

// Naive reference forms of the quantized kernels (quant.go).
//
// Like naive.go, these are deliberately free of unrolling, tiling and
// parallel dispatch so a bug in the fast path cannot hide in a shared
// shortcut. They DO share the canonical row quantizer (quantizeRow) and the
// dequantization correction (QTensor.dequant) with the fast kernels — those
// are part of the quantization scheme's definition, not an optimization —
// which is why the parity harness also bounds the quantized results against
// the float64 NaiveMatMulInto output: a bug in the shared pieces would
// survive Q-vs-NaiveQ parity but not the fp error bound.
//
// Integer accumulation is exact and the dequantization expression has a
// fixed evaluation order, so the fast kernels must match these bitwise.

// NaiveQMatMulInto computes dst = x @ q for a per-column quantized q with
// the straightforward triple loop and a single int32 accumulator.
func NaiveQMatMulInto(dst, x *Tensor, q *QTensor) {
	m, k, n := checkQMatMulShapes("NaiveQMatMulInto", dst, x, q)
	qx := make([]int8, k)
	for i := 0; i < m; i++ {
		sx, zx, sumX := quantizeRow(qx, x.Data[i*k:(i+1)*k])
		for j := 0; j < n; j++ {
			var s int32
			for p := 0; p < k; p++ {
				s += int32(qx[p]) * int32(q.Data[p*n+j])
			}
			dst.Data[i*n+j] = q.dequant(s, j, sx, zx, sumX)
		}
	}
}

// NaiveQMatMulTransBInto computes dst = x @ qᵀ for a per-row quantized q
// with the straightforward triple loop and a single int32 accumulator.
func NaiveQMatMulTransBInto(dst, x *Tensor, q *QTensor) {
	m, k, n := checkQMatMulTransBShapes("NaiveQMatMulTransBInto", dst, x, q)
	qx := make([]int8, k)
	for i := 0; i < m; i++ {
		sx, zx, sumX := quantizeRow(qx, x.Data[i*k:(i+1)*k])
		for j := 0; j < n; j++ {
			var s int32
			for p := 0; p < k; p++ {
				s += int32(qx[p]) * int32(q.Data[j*k+p])
			}
			dst.Data[i*n+j] = q.dequant(s, j, sx, zx, sumX)
		}
	}
}
