package tensor

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"bprom/internal/rng"
)

// Quantized-kernel parity harness, mirroring parity_test.go: the unrolled
// parallel Q kernels must be *bitwise* identical to the NaiveQ* references
// (integer accumulation is exact) on every shape in the shared table and
// under any pool width, and the whole scheme must stay within the analytic
// quantization error bound of the float64 ground truth.

// quantShapes reuses the fp shape table but drops reduction dims the fuzz
// seeds already cover past tile boundaries; all 16 shapes stay well under
// the qMaxK overflow bound, which has its own panic test.
var quantShapes = matMulShapes

// dequantizeRow reconstructs the float64 values a quantized activation row
// represents, used to compute the exact real-arithmetic product the integer
// kernels should reproduce.
func dequantizeRow(q []int8, scale float64, zp int32) []float64 {
	out := make([]float64, len(q))
	for i, v := range q {
		out[i] = scale * float64(int32(v)-zp)
	}
	return out
}

// TestQMatMulMatchesNaiveQ: fast vs naive, both variants, bitwise.
func TestQMatMulMatchesNaiveQ(t *testing.T) {
	root := rng.New(61)
	for si, s := range quantShapes {
		m, k, n := s[0], s[1], s[2]
		r := root.Split("qshape", si)

		x, w := New(m, k), New(k, n)
		fillRandom(r, x, w)
		q := QuantizePerCol(w)
		got, want := New(m, n), New(m, n)
		QMatMulInto(got, x, q)
		NaiveQMatMulInto(want, x, q)
		requireEqual(t, fmt.Sprintf("QMatMulInto %v", s), got, want)

		wt := New(n, k)
		fillRandom(r, wt)
		qt := QuantizePerRow(wt)
		QMatMulTransBInto(got, x, qt)
		NaiveQMatMulTransBInto(want, x, qt)
		requireEqual(t, fmt.Sprintf("QMatMulTransBInto %v", s), got, want)
	}
}

// TestQMatMulSerialVsParallel: pool width must not change output bits —
// the Q kernels partition output blocks and quantize activations per row,
// so no accumulation crosses a partition boundary.
func TestQMatMulSerialVsParallel(t *testing.T) {
	defer SetWorkers(0)
	root := rng.New(62)
	for si, s := range [][3]int{{97, 130, 61}, {130, 257, 65}, {64, 64, 64}, {1, 300, 257}, {2, 513, 129}} {
		m, k, n := s[0], s[1], s[2]
		r := root.Split("qsvp", si)
		x, w, wt := New(m, k), New(k, n), New(n, k)
		fillRandom(r, x, w, wt)
		q, qt := QuantizePerCol(w), QuantizePerRow(wt)

		for _, v := range []struct {
			name string
			run  func(dst *Tensor)
		}{
			{"QMatMulInto", func(dst *Tensor) { QMatMulInto(dst, x, q) }},
			{"QMatMulTransBInto", func(dst *Tensor) { QMatMulTransBInto(dst, x, qt) }},
		} {
			serial, parallel := New(m, n), New(m, n)
			SetWorkers(1)
			v.run(serial)
			SetWorkers(8)
			v.run(parallel)
			requireEqual(t, fmt.Sprintf("%s %v serial-vs-parallel", v.name, s), parallel, serial)
		}
	}
}

// TestQMatMulMatchesDequantizedProduct guards the pieces the fast and naive
// kernels share (quantizeRow, dequant): the integer kernels must reproduce
// the real-arithmetic product of the *dequantized* operands. A bug in the
// shared zero-point correction would survive Q-vs-NaiveQ parity but cannot
// survive this — the reference below dequantizes both operands explicitly
// and never touches the correction path.
func TestQMatMulMatchesDequantizedProduct(t *testing.T) {
	root := rng.New(63)
	for si, s := range quantShapes {
		m, k, n := s[0], s[1], s[2]
		r := root.Split("qdq", si)
		x, w := New(m, k), New(k, n)
		fillRandom(r, x, w)
		q := QuantizePerCol(w)

		got := New(m, n)
		QMatMulInto(got, x, q)

		// Explicit reference: dequantize activations row by row with the
		// canonical row quantizer, dequantize the weights, multiply in fp.
		xhat := New(m, k)
		scratch := make([]int8, k)
		for i := 0; i < m; i++ {
			sx, zx, _ := quantizeRow(scratch, x.Row(i))
			copy(xhat.Data[i*k:(i+1)*k], dequantizeRow(scratch, sx, zx))
		}
		want := New(m, n)
		NaiveMatMulInto(want, xhat, q.Dequantize())
		// Integer accumulation is exact; the fp reference rounds per add, so
		// agreement is close rather than bitwise.
		requireClose(t, fmt.Sprintf("QMatMulInto vs dequantized product %v", s), got, want, 1e-9)
	}
}

// TestQMatMulWithinErrorBoundOfFP: the quantized product must sit within
// the analytic per-element error bound of the float64 ground truth:
// |Δ| ≤ Σ_p (|x_p|·sw_j + |w_pj|·sx_i + sx_i·sw_j), with per-value
// quantization error at most one scale step (rounding plus zero-point
// rounding). This is the end-to-end accuracy contract the nn confidence
// budget builds on.
func TestQMatMulWithinErrorBoundOfFP(t *testing.T) {
	root := rng.New(64)
	for si, s := range [][3]int{{5, 129, 3}, {64, 64, 64}, {97, 130, 61}, {1, 300, 257}} {
		m, k, n := s[0], s[1], s[2]
		r := root.Split("qerr", si)
		x, w := New(m, k), New(k, n)
		fillRandom(r, x, w)
		q := QuantizePerCol(w)

		got, want := New(m, n), New(m, n)
		QMatMulInto(got, x, q)
		NaiveMatMulInto(want, x, w)

		scratch := make([]int8, k)
		for i := 0; i < m; i++ {
			sx, _, _ := quantizeRow(scratch, x.Row(i))
			for j := 0; j < n; j++ {
				sw := q.Scales[j]
				bound := 0.0
				for p := 0; p < k; p++ {
					bound += math.Abs(x.Data[i*k+p])*sw + math.Abs(w.Data[p*n+j])*sx + sx*sw
				}
				diff := math.Abs(got.Data[i*n+j] - want.Data[i*n+j])
				if diff > bound {
					t.Fatalf("shape %v element [%d,%d]: |Δ| = %g exceeds analytic bound %g", s, i, j, diff, bound)
				}
			}
		}
	}
}

// TestQuantizeRoundTrip: per-value round-trip error is at most one scale
// step, and exact zeros survive quantization exactly — the property the
// im2col padding path depends on.
func TestQuantizeRoundTrip(t *testing.T) {
	r := rng.New(65)
	w := New(37, 29)
	fillRandom(r, w)
	// Plant exact zeros, including a whole column.
	for i := 0; i < len(w.Data); i += 7 {
		w.Data[i] = 0
	}
	for p := 0; p < 37; p++ {
		w.Data[p*29+11] = 0
	}
	for _, tc := range []struct {
		name string
		q    *QTensor
	}{
		{"PerCol", QuantizePerCol(w)},
		{"PerRow", QuantizePerRow(w)},
	} {
		back := tc.q.Dequantize()
		for i := range w.Data {
			var scale float64
			if tc.q.perRow {
				scale = tc.q.Scales[i/29]
			} else {
				scale = tc.q.Scales[i%29]
			}
			if w.Data[i] == 0 {
				if back.Data[i] != 0 {
					t.Fatalf("%s: exact zero at %d round-tripped to %v", tc.name, i, back.Data[i])
				}
			} else if diff := math.Abs(back.Data[i] - w.Data[i]); diff > scale {
				t.Fatalf("%s: element %d round-trip error %g exceeds scale %g", tc.name, i, diff, scale)
			}
		}
	}
}

// TestQuantizeDegenerate: constant and all-zero channels must not divide by
// zero, and non-finite inputs must clamp deterministically instead of
// poisoning the int8 data.
func TestQuantizeDegenerate(t *testing.T) {
	w := FromSlice([]float64{
		0, 0, 5, math.NaN(),
		0, 0, 5, math.Inf(1),
		0, 0, 5, math.Inf(-1),
	}, 3, 4)
	q := QuantizePerCol(w)
	back := q.Dequantize()
	for p := 0; p < 3; p++ {
		if back.Data[p*4+0] != 0 || back.Data[p*4+1] != 0 {
			t.Fatalf("zero channel round-tripped to %v / %v", back.Data[p*4+0], back.Data[p*4+1])
		}
		if math.Abs(back.Data[p*4+2]-5) > q.Scales[2] {
			t.Fatalf("constant channel round-tripped to %v", back.Data[p*4+2])
		}
		if v := back.Data[p*4+3]; math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite input leaked through quantization: %v", v)
		}
	}
	// And the kernels stay finite on such weights.
	x := New(2, 3)
	x.Data = []float64{1, 2, 3, -1, -2, -3}
	dst := New(2, 4)
	QMatMulInto(dst, x, q)
	for i, v := range dst.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("QMatMulInto produced non-finite element %d: %v", i, v)
		}
	}
}

// TestQTensorBytes: the resident footprint is the int8 payload plus the
// 2-bytes-per-weight SWAR mirror and the per-channel params — at least 4x
// smaller than the fp representation it replaces (Value + Grad, 16 bytes
// per weight), which is the shrink the registry accounting is built on.
func TestQTensorBytes(t *testing.T) {
	w := New(256, 64)
	q := QuantizePerCol(w)
	want := 256*64 + 8*256*(64/4) + 16*64 // int8 + packed mirror + channel params
	if q.Bytes() != want {
		t.Fatalf("Bytes() = %d, want %d", q.Bytes(), want)
	}
	if ratio := float64(16*w.Len()) / float64(q.Bytes()); ratio < 4 {
		t.Fatalf("fp-resident/int8 size ratio %.1f, want ≥ 4", ratio)
	}
}

// TestQMatMulShapePanicsReportShapes mirrors TestMatMulShapePanicsReportShapes
// for the quantized validators, including the layout-mismatch and
// int32-overflow-bound panics.
func TestQMatMulShapePanicsReportShapes(t *testing.T) {
	qcol := QuantizePerCol(New(3, 5)) // [k=3, n=5]
	qrow := QuantizePerRow(New(4, 3)) // [n=4, k=3]
	cases := []struct {
		name string
		call func()
		want []string
	}{
		{"QMatMulInto-inner", func() { QMatMulInto(New(2, 5), New(2, 4), qcol) }, []string{"[2 4]", "[3 5]", "shape mismatch"}},
		{"QMatMulInto-dst", func() { QMatMulInto(New(9, 9), New(2, 3), qcol) }, []string{"[2 3]", "[9 9]", "shape mismatch"}},
		{"QMatMulInto-rank", func() { QMatMulInto(New(2, 5), New(2, 3, 1), qcol) }, []string{"requires 2-D", "[2 3 1]"}},
		{"QMatMulInto-layout", func() { QMatMulInto(New(2, 4), New(2, 3), qrow) }, []string{"per-column", "per-row"}},
		{"QMatMulTransBInto-inner", func() { QMatMulTransBInto(New(2, 4), New(2, 5), qrow) }, []string{"[2 5]", "[4 3]", "shape mismatch"}},
		{"QMatMulTransBInto-layout", func() { QMatMulTransBInto(New(2, 5), New(2, 3), qcol) }, []string{"per-row", "per-column"}},
		{"NaiveQMatMulInto", func() { NaiveQMatMulInto(New(2, 5), New(2, 4), qcol) }, []string{"[2 4]", "[3 5]", "shape mismatch"}},
		{"NaiveQMatMulTransBInto", func() { NaiveQMatMulTransBInto(New(2, 4), New(2, 5), qrow) }, []string{"[2 5]", "[4 3]", "shape mismatch"}},
		{"QuantizePerCol-rank", func() { QuantizePerCol(New(2, 3, 1)) }, []string{"2-D", "[2 3 1]"}},
		{"QuantizePerRow-rank", func() { QuantizePerRow(New(6)) }, []string{"2-D", "[6]"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected shape panic")
				}
				msg := r.(string)
				if !strings.Contains(msg, "tensor: ") {
					t.Fatalf("panic %q lacks the tensor: prefix", msg)
				}
				for _, want := range tc.want {
					if !strings.Contains(msg, want) {
						t.Fatalf("panic %q does not mention %q", msg, want)
					}
				}
			}()
			tc.call()
		})
	}
}

// TestQMatMulOverflowBoundPanics: reduction dims past qMaxK would overflow
// the int32 accumulator silently; the validators must refuse them.
func TestQMatMulOverflowBoundPanics(t *testing.T) {
	k := qMaxK + 1
	q := &QTensor{
		Data:       make([]int8, k),
		Scales:     []float64{1},
		ZeroPoints: []int32{0},
		Sums:       []int32{0},
		rows:       k,
		cols:       1,
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected overflow-bound panic")
		}
		if msg := r.(string); !strings.Contains(msg, "int32-safe bound") {
			t.Fatalf("panic %q does not mention the overflow bound", msg)
		}
	}()
	QMatMulInto(New(1, 1), New(1, k), q)
}
