package tensor

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Worker pool for the parallel kernels.
//
// All tiled kernels in this package dispatch row-block tasks onto one shared
// package-level Pool rather than spawning goroutines per call. That single
// bounded pool is what lets the hot callers compose: mlaas micro-batch
// workers, concurrent Model.Predict callers and parallel shadow training can
// all issue kernel calls at once and total CPU use stays bounded by the pool
// size — concurrent ops interleave their chunks on the same workers instead
// of oversubscribing the machine with pool-per-caller goroutines.
//
// Determinism: parallel kernels partition *output* ranges (rows, channels),
// so every output element is computed by exactly one worker in the same
// floating-point accumulation order as the serial path. Results are
// identical regardless of pool size or scheduling, which the parity suite
// (parity_test.go) checks with exact equality.

// Pool is a fixed-size worker pool. The submitting goroutine always
// participates in its own work, so a Pool of size w saturates w CPUs with
// w-1 background workers; a Pool of size 1 runs everything inline and is an
// exact serial fallback.
type Pool struct {
	size  int
	tasks chan func()
	quit  chan struct{}
}

// NewPool starts a pool with the given parallel width (minimum 1). Call
// Close when done with a non-shared pool to stop its background workers.
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{size: size}
	if size > 1 {
		p.tasks = make(chan func(), 4*size)
		p.quit = make(chan struct{})
		for i := 0; i < size-1; i++ {
			go func() {
				for {
					select {
					case task := <-p.tasks:
						task()
					case <-p.quit:
						return
					}
				}
			}()
		}
	}
	return p
}

// Size returns the pool's parallel width, counting the submitting goroutine.
func (p *Pool) Size() int { return p.size }

// Close stops the background workers. Tasks already queued are still drained
// by the For calls waiting on them (waiters execute queued work themselves),
// but no new For calls should be issued afterwards.
func (p *Pool) Close() {
	if p.quit != nil {
		close(p.quit)
	}
}

// For splits [0, n) into contiguous chunks of at least grain indices and
// runs f over them, concurrently when the pool has width. f must be safe to
// run concurrently on disjoint ranges. When n <= grain or the pool has size
// 1 the call is exactly f(0, n) on the caller.
//
// Scheduling is help-first and therefore deadlock-free under nesting and
// arbitrary concurrent callers: a chunk that cannot be handed off
// immediately runs inline, and while a caller's chunks are outstanding it
// executes whatever is queued (its own chunks or another caller's) instead
// of blocking idle. A nested For inside a worker task thus degrades toward
// serial execution rather than waiting on workers that are themselves
// waiting.
func (p *Pool) For(n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if p.size == 1 || n <= grain {
		f(0, n)
		return
	}
	// A couple of chunks per worker balances load without flooding the
	// queue; grain keeps chunks from shrinking below profitable work.
	chunk := max((n+2*p.size-1)/(2*p.size), grain)
	var pending atomic.Int64
	var panicMu sync.Mutex
	var panicVal any
	done := make(chan struct{}, 1)
	// wrap gives every chunk — handed off or inline — the same accounting:
	// a panic is captured instead of killing a bare worker goroutine (or the
	// goroutine of an unrelated caller helping out), pending always reaches
	// zero, and the submitter re-raises the first panic after the barrier so
	// kernel misuse still surfaces as a panic on the calling goroutine, as
	// it did with the serial kernels.
	wrap := func(lo, hi int) func() {
		pending.Add(1)
		return func() {
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
				if pending.Add(-1) == 0 {
					select {
					case done <- struct{}{}:
					default:
					}
				}
			}()
			f(lo, hi)
		}
	}
	start := 0
	for start+chunk < n {
		task := wrap(start, start+chunk)
		select {
		case p.tasks <- task:
		default:
			task()
		}
		start += chunk
	}
	wrap(start, n)() // the caller always takes the final chunk
	for pending.Load() > 0 {
		select {
		case task := <-p.tasks:
			task()
		case <-done:
		}
	}
	panicMu.Lock()
	r := panicVal
	panicMu.Unlock()
	if r != nil {
		panic(r)
	}
}

// --- Shared pool ---------------------------------------------------------------

var (
	sharedMu sync.Mutex // serializes pool creation/resizing only
	shared   atomic.Pointer[Pool]
)

// DefaultWorkers returns the width a lazily-started shared pool uses:
// BPROM_TENSOR_WORKERS when set to a positive integer, else GOMAXPROCS.
func DefaultWorkers() int {
	if s := os.Getenv("BPROM_TENSOR_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers resizes the shared pool to n workers; n <= 0 resets it to
// DefaultWorkers. It must not race with in-flight tensor operations — it is
// an option for process startup (cmd flags) and for tests that pin the pool
// to 1 to exercise the serial path.
func SetWorkers(n int) {
	if n <= 0 {
		n = DefaultWorkers()
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if p := shared.Load(); p != nil {
		if p.size == n {
			return
		}
		p.Close()
	}
	shared.Store(NewPool(n))
}

// Workers reports the shared pool's width, starting the pool if needed.
func Workers() int { return sharedPool().Size() }

// sharedPool is on every kernel's dispatch path, so the read side is one
// atomic load; the mutex is only taken on first use and in SetWorkers.
func sharedPool() *Pool {
	if p := shared.Load(); p != nil {
		return p
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if p := shared.Load(); p != nil {
		return p
	}
	p := NewPool(DefaultWorkers())
	shared.Store(p)
	return p
}

// ParallelFor runs f over chunked sub-ranges of [0, n) on the shared pool.
// It is the dispatch point for every parallel kernel in this package and is
// exported so hot callers (nn batch loops) can partition their own
// outer-level work onto the same bounded pool.
func ParallelFor(n, grain int, f func(lo, hi int)) {
	sharedPool().For(n, grain, f)
}
