package tensor

import (
	"encoding/binary"
	"math"
	"testing"

	"bprom/internal/rng"
)

// Native fuzz targets: shapes and data decode from fuzz input, and the tiled
// parallel kernels must agree with the naive references for every input the
// fuzzer invents. CI runs each with a short -fuzztime as a smoke pass; the
// checked-in corpus below covers the tile boundaries. Raw fuzz bytes overlay
// the deterministic rng fill so the engine can steer bit patterns
// (denormals, huge magnitudes, exact zeros — which exercise the fast path's
// zero-skipping) into the tensors; NaN/Inf are sanitized because comparing
// them is not meaningful for a parity check.

// fillFromFuzz fills dst from a seeded rng stream, then overlays float64s
// decoded from raw, clamping non-finite values to something comparable.
func fillFromFuzz(dst []float64, seed uint64, raw []byte) {
	rng.New(seed).Gaussian(dst, 0, 1)
	for i := 0; i+8 <= len(raw) && i/8 < len(dst); i += 8 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[i : i+8]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = float64(i % 17)
		}
		dst[i/8] = v
	}
}

func FuzzMatMulInto(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4), uint64(1), []byte{})
	f.Add(uint8(1), uint8(130), uint8(1), uint64(7), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(65), uint8(128), uint8(33), uint64(9), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(255), uint8(255), uint8(255), uint64(3), []byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, rm, rk, rn uint8, seed uint64, raw []byte) {
		m := int(rm)%66 + 1
		k := int(rk)%140 + 1 // straddles tileK via k near 128 with m*n*k over the threshold
		n := int(rn)%66 + 1
		a, b := New(m, k), New(k, n)
		fillFromFuzz(a.Data, seed, raw)
		half := len(raw) / 2
		fillFromFuzz(b.Data, seed+1, raw[half:])

		got, want := New(m, n), New(m, n)
		MatMulInto(got, a, b)
		NaiveMatMulInto(want, a, b)
		for i := range got.Data {
			diff := math.Abs(got.Data[i] - want.Data[i])
			if diff > 1e-9*math.Max(1, math.Abs(want.Data[i])) {
				t.Fatalf("tiled != naive at [%d,%d,%d] element %d: got %v, want %v",
					m, k, n, i, got.Data[i], want.Data[i])
			}
		}

		// The transposed variants must agree on the same data viewed
		// through their own layouts.
		at := FromSlice(append([]float64(nil), a.Data...), m, k).Transpose() // [k,m]
		gotA := New(m, n)
		MatMulTransAInto(gotA, at, b)
		for i := range gotA.Data {
			diff := math.Abs(gotA.Data[i] - want.Data[i])
			if diff > 1e-9*math.Max(1, math.Abs(want.Data[i])) {
				t.Fatalf("TransA != naive at [%d,%d,%d] element %d: got %v, want %v",
					m, k, n, i, gotA.Data[i], want.Data[i])
			}
		}
		bt := FromSlice(append([]float64(nil), b.Data...), k, n).Transpose() // [n,k]
		gotB := New(m, n)
		MatMulTransBInto(gotB, a, bt)
		for i := range gotB.Data {
			diff := math.Abs(gotB.Data[i] - want.Data[i])
			if diff > 1e-9*math.Max(1, math.Abs(want.Data[i])) {
				t.Fatalf("TransB != naive at [%d,%d,%d] element %d: got %v, want %v",
					m, k, n, i, gotB.Data[i], want.Data[i])
			}
		}
	})
}

// FuzzQMatMul steers arbitrary bit patterns through both quantized kernel
// variants and demands bitwise agreement with the NaiveQ* references —
// integer accumulation is exact, so unlike the float64 targets there is no
// tolerance at all. Weight quantization happens inside the target, so the
// fuzzer also exercises the per-channel range/zero-point derivation on
// denormals, huge magnitudes and exact zeros.
func FuzzQMatMul(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4), uint64(1), []byte{})
	f.Add(uint8(1), uint8(130), uint8(1), uint64(7), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(65), uint8(128), uint8(33), uint64(9), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(255), uint8(255), uint8(255), uint64(3), []byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, rm, rk, rn uint8, seed uint64, raw []byte) {
		m := int(rm)%66 + 1
		k := int(rk)%140 + 1
		n := int(rn)%66 + 1
		x, w := New(m, k), New(k, n)
		fillFromFuzz(x.Data, seed, raw)
		half := len(raw) / 2
		fillFromFuzz(w.Data, seed+1, raw[half:])

		// Bitwise equality, NaN-tolerant: extreme fuzz magnitudes can
		// overflow the scale product to Inf and a zero correction yields
		// NaN on both sides identically.
		same := func(a, b float64) bool {
			return a == b || (math.IsNaN(a) && math.IsNaN(b))
		}

		q := QuantizePerCol(w)
		got, want := New(m, n), New(m, n)
		QMatMulInto(got, x, q)
		NaiveQMatMulInto(want, x, q)
		for i := range got.Data {
			if !same(got.Data[i], want.Data[i]) {
				t.Fatalf("QMatMulInto != naive at [%d,%d,%d] element %d: got %v, want %v",
					m, k, n, i, got.Data[i], want.Data[i])
			}
		}

		// Same weights viewed through the transposed layout: per-row
		// channels quantize row j from the same values as column j above,
		// so the two variants must agree with each other bitwise too.
		wt := FromSlice(append([]float64(nil), w.Data...), k, n).Transpose() // [n,k]
		qt := QuantizePerRow(wt)
		gotT, wantT := New(m, n), New(m, n)
		QMatMulTransBInto(gotT, x, qt)
		NaiveQMatMulTransBInto(wantT, x, qt)
		for i := range gotT.Data {
			if !same(gotT.Data[i], wantT.Data[i]) {
				t.Fatalf("QMatMulTransBInto != naive at [%d,%d,%d] element %d: got %v, want %v",
					m, k, n, i, gotT.Data[i], wantT.Data[i])
			}
			if !same(gotT.Data[i], got.Data[i]) {
				t.Fatalf("QMatMulTransBInto != QMatMulInto on transposed weights at [%d,%d,%d] element %d: %v vs %v",
					m, k, n, i, gotT.Data[i], got.Data[i])
			}
		}
	})
}

func FuzzIm2Col(f *testing.F) {
	f.Add(uint8(1), uint8(4), uint8(4), uint8(3), uint8(3), uint8(1), uint8(1), uint64(1), []byte{})
	f.Add(uint8(3), uint8(8), uint8(8), uint8(3), uint8(3), uint8(1), uint8(1), uint64(2), []byte{9, 9, 9, 9, 9, 9, 9, 9})
	f.Add(uint8(2), uint8(13), uint8(7), uint8(2), uint8(4), uint8(2), uint8(2), uint64(5), []byte{})
	f.Add(uint8(5), uint8(30), uint8(30), uint8(5), uint8(5), uint8(1), uint8(2), uint64(8), []byte{1})
	f.Fuzz(func(t *testing.T, rc, rh, rw, rkh, rkw, rstride, rpad uint8, seed uint64, raw []byte) {
		d := ConvDims{
			InC:    int(rc)%6 + 1,
			InH:    int(rh)%40 + 1,
			InW:    int(rw)%40 + 1,
			OutC:   1, // OutC does not affect im2col/col2im
			KH:     int(rkh)%7 + 1,
			KW:     int(rkw)%7 + 1,
			Stride: int(rstride)%4 + 1,
			Pad:    int(rpad) % 4,
		}
		if err := d.Resolve(); err != nil {
			return // impossible geometry: nothing to compare
		}
		k := d.InC * d.KH * d.KW

		x := make([]float64, d.InC*d.InH*d.InW)
		fillFromFuzz(x, seed, raw)
		got := New(d.OutH*d.OutW, k)
		want := New(d.OutH*d.OutW, k)
		Im2Col(x, d, got)
		NaiveIm2Col(x, d, want)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("Im2Col != naive for %+v at element %d: got %v, want %v",
					d, i, got.Data[i], want.Data[i])
			}
		}

		// Col2Im: the parallel scatter must match the naive one bitwise —
		// per-pixel accumulation order is channel-local and identical.
		g := New(d.OutH*d.OutW, k)
		fillFromFuzz(g.Data, seed+2, raw)
		gotDx := make([]float64, len(x))
		wantDx := make([]float64, len(x))
		Col2Im(g, d, gotDx)
		NaiveCol2Im(g, d, wantDx)
		for i := range gotDx {
			if gotDx[i] != wantDx[i] {
				t.Fatalf("Col2Im != naive for %+v at element %d: got %v, want %v",
					d, i, gotDx[i], wantDx[i])
			}
		}
	})
}
