// Package defense implements the baseline backdoor detectors the paper
// compares BPROM against (Tables 1, 5, 6, 16–18, 21, 26): input-level
// detectors that flag trigger samples, dataset-level detectors that cleanse
// poisoned training sets, and model-level detectors that judge whole models.
//
// Each implementation keeps the published method's core statistic (see the
// per-type comments) in a form that runs on the pure-Go substrate. Unlike
// BPROM, most baselines receive white-box resources (latent features,
// training data) exactly as their papers assume — this reproduces the
// paper's comparison, which pits black-box BPROM against stronger-access
// baselines.
package defense

import (
	"context"
	"fmt"

	"bprom/internal/data"
	"bprom/internal/nn"
)

// Env carries the defender-side resources a baseline may use.
type Env struct {
	// Clean is a small reserved clean dataset from the model's domain.
	Clean *data.Dataset
	// Seed drives any internal randomness.
	Seed uint64
}

// InputLevel detectors score individual inputs; higher = more likely to
// carry a trigger.
type InputLevel interface {
	Name() string
	// ScoreInputs returns one score per sample of ds when classified by m.
	ScoreInputs(ctx context.Context, m *nn.Model, ds *data.Dataset, env Env) ([]float64, error)
}

// DatasetLevel detectors score training-set samples; higher = more likely
// poisoned. They may inspect the model trained on that set (the usual
// Backdoor-Toolbox setting).
type DatasetLevel interface {
	Name() string
	ScoreTraining(ctx context.Context, m *nn.Model, train *data.Dataset, env Env) ([]float64, error)
}

// ModelLevel detectors score a whole model; higher = more likely backdoored.
type ModelLevel interface {
	Name() string
	ScoreModel(ctx context.Context, m *nn.Model, env Env) (float64, error)
}

func validateEnv(name string, env Env) error {
	if env.Clean == nil || env.Clean.Len() == 0 {
		return fmt.Errorf("defense: %s requires a reserved clean dataset", name)
	}
	return nil
}

// featuresOf extracts penultimate representations for the samples of ds.
func featuresOf(m *nn.Model, ds *data.Dataset, idx []int) [][]float64 {
	x, _ := ds.Batch(idx)
	f := m.Features(x)
	d := f.Dim(1)
	out := make([][]float64, len(idx))
	for i := range idx {
		out[i] = append([]float64(nil), f.Data[i*d:(i+1)*d]...)
	}
	return out
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
