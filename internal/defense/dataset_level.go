package defense

import (
	"context"
	"math"

	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/stats"
	"bprom/internal/trainer"
)

// --- AC: Activation Clustering (Chen et al. 2018) ---------------------------------

// AC clusters each class's penultimate activations into two groups: in a
// poisoned class the trigger samples form a separated minority cluster. The
// score combines minority-cluster membership with the class's silhouette.
type AC struct{}

var _ DatasetLevel = (*AC)(nil)

func (a *AC) Name() string { return "ac" }

func (a *AC) ScoreTraining(ctx context.Context, m *nn.Model, train *data.Dataset, env Env) ([]float64, error) {
	r := rng.New(env.Seed).Split("ac")
	scores := make([]float64, train.Len())
	for c := 0; c < train.Classes; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx := train.ClassIndices(c)
		if len(idx) < 4 {
			continue
		}
		feats := featuresOf(m, train, idx)
		// The published method reduces activations (ICA in the paper, PCA
		// here) before clustering; raw high-dimensional features drown the
		// poison direction in noise. The top component is the trigger
		// direction (cf. spectral signatures), so cluster along it.
		proj, err := pcaReduce(feats, 1, r)
		if err != nil {
			return nil, err
		}
		assign, _, err := stats.KMeans(proj, 2, r)
		if err != nil {
			return nil, err
		}
		sil := stats.Silhouette(proj, assign)
		if sil < 0 {
			sil = 0
		}
		n0 := 0
		for _, aa := range assign {
			if aa == 0 {
				n0++
			}
		}
		minority := 0
		if n0 > len(assign)-n0 {
			minority = 1
		}
		for i, aa := range assign {
			if aa == minority {
				scores[idx[i]] = sil
			}
		}
	}
	return scores, nil
}

// --- SS: Spectral Signatures (Tran et al. 2018) -----------------------------------

// SS scores each sample by its squared projection on the top singular
// direction of its class's centered feature matrix: poisoned samples carry
// the spectral signature.
type SS struct{}

var _ DatasetLevel = (*SS)(nil)

func (s *SS) Name() string { return "ss" }

func (s *SS) ScoreTraining(ctx context.Context, m *nn.Model, train *data.Dataset, env Env) ([]float64, error) {
	r := rng.New(env.Seed).Split("ss")
	scores := make([]float64, train.Len())
	for c := 0; c < train.Classes; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx := train.ClassIndices(c)
		if len(idx) < 3 {
			continue
		}
		feats := featuresOf(m, train, idx)
		comps, _, err := stats.PCA(feats, 1, r)
		if err != nil {
			return nil, err
		}
		mean := make([]float64, len(feats[0]))
		for _, f := range feats {
			for j, v := range f {
				mean[j] += v
			}
		}
		for j := range mean {
			mean[j] /= float64(len(feats))
		}
		for i, f := range feats {
			proj := 0.0
			for j := range f {
				proj += (f[j] - mean[j]) * comps[0][j]
			}
			scores[idx[i]] = proj * proj
		}
	}
	return scores, nil
}

// --- SPECTRE (Hayase et al. 2021) ---------------------------------------------------

// SPECTRE robustifies spectral signatures: features are standardized with
// robust statistics (median/MAD) before the spectral projection, so a large
// poisoned fraction cannot hide by inflating the variance estimate.
type SPECTRE struct{}

var _ DatasetLevel = (*SPECTRE)(nil)

func (s *SPECTRE) Name() string { return "spectre" }

func (s *SPECTRE) ScoreTraining(ctx context.Context, m *nn.Model, train *data.Dataset, env Env) ([]float64, error) {
	r := rng.New(env.Seed).Split("spectre")
	scores := make([]float64, train.Len())
	for c := 0; c < train.Classes; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx := train.ClassIndices(c)
		if len(idx) < 3 {
			continue
		}
		feats := featuresOf(m, train, idx)
		d := len(feats[0])
		col := make([]float64, len(feats))
		med := make([]float64, d)
		madv := make([]float64, d)
		for j := 0; j < d; j++ {
			for i := range feats {
				col[i] = feats[i][j]
			}
			med[j] = stats.Median(col)
			madv[j] = stats.MAD(col)
			if madv[j] < 1e-9 {
				madv[j] = 1e-9
			}
		}
		whitened := make([][]float64, len(feats))
		for i, f := range feats {
			whitened[i] = make([]float64, d)
			for j := range f {
				whitened[i][j] = (f[j] - med[j]) / madv[j]
			}
		}
		comps, _, err := stats.PCA(whitened, 2, r)
		if err != nil {
			return nil, err
		}
		// QUE-style score: robust outlyingness along the top spectral
		// directions of the robustly whitened features.
		for i, f := range whitened {
			total := 0.0
			for _, comp := range comps {
				proj := 0.0
				for j := range f {
					proj += f[j] * comp[j]
				}
				total += proj * proj
			}
			scores[idx[i]] = total
		}
	}
	return scores, nil
}

// --- SCAn (Tang et al. 2021) ----------------------------------------------------------

// SCAn performs a statistical two-component decomposition per class: if a
// class's features are better explained by two well-separated subgroups
// than by one (relative to the global within-class scatter), the minority
// subgroup is flagged. The score is the per-sample minority membership
// weighted by the class's likelihood-ratio-style separation statistic.
type SCAn struct{}

var _ DatasetLevel = (*SCAn)(nil)

func (s *SCAn) Name() string { return "scan" }

func (s *SCAn) ScoreTraining(ctx context.Context, m *nn.Model, train *data.Dataset, env Env) ([]float64, error) {
	r := rng.New(env.Seed).Split("scan")
	// Global within-class scatter from the clean reserved set (SCAn's
	// "untangling" uses clean data to estimate it).
	if err := validateEnv(s.Name(), env); err != nil {
		return nil, err
	}
	cleanFeats := featuresOf(m, env.Clean, allIndices(env.Clean.Len()))
	globalVar := withinClassScatter(cleanFeats, env.Clean.Y)
	if globalVar < 1e-9 {
		globalVar = 1e-9
	}
	scores := make([]float64, train.Len())
	for c := 0; c < train.Classes; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx := train.ClassIndices(c)
		if len(idx) < 4 {
			continue
		}
		feats := featuresOf(m, train, idx)
		proj, err := pcaReduce(feats, 1, r)
		if err != nil {
			return nil, err
		}
		assign, cents, err := stats.KMeans(proj, 2, r)
		if err != nil {
			return nil, err
		}
		between := 0.0
		for j := range cents[0] {
			d := cents[0][j] - cents[1][j]
			between += d * d
		}
		stat := between / globalVar // separation in units of natural scatter
		n0 := 0
		for _, aa := range assign {
			if aa == 0 {
				n0++
			}
		}
		minority := 0
		if n0 > len(assign)-n0 {
			minority = 1
		}
		for i, aa := range assign {
			if aa == minority {
				scores[idx[i]] = stat
			}
		}
	}
	return scores, nil
}

// pcaReduce projects rows onto their top-k principal components.
func pcaReduce(rows [][]float64, k int, r *rng.RNG) ([][]float64, error) {
	if k > len(rows[0]) {
		k = len(rows[0])
	}
	comps, _, err := stats.PCA(rows, k, r)
	if err != nil {
		return nil, err
	}
	return stats.Project(rows, comps), nil
}

func withinClassScatter(feats [][]float64, labels []int) float64 {
	byClass := map[int][][]float64{}
	for i, f := range feats {
		byClass[labels[i]] = append(byClass[labels[i]], f)
	}
	total, n := 0.0, 0
	for _, fs := range byClass {
		if len(fs) < 2 {
			continue
		}
		d := len(fs[0])
		mean := make([]float64, d)
		for _, f := range fs {
			for j, v := range f {
				mean[j] += v
			}
		}
		for j := range mean {
			mean[j] /= float64(len(fs))
		}
		for _, f := range fs {
			for j, v := range f {
				dd := v - mean[j]
				total += dd * dd
			}
		}
		n += len(fs)
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// --- CT: Confusion Training (Qi et al. 2023c) ------------------------------------------

// CT fine-tunes a copy of the dataset together with deliberately
// mislabelled clean samples ("confusion batches"): the random labels destroy
// the model's ability to fit genuine semantic features, but the shortcut
// trigger→target association survives. Samples the confused model still
// fits are flagged as poisoned.
type CT struct {
	// Epochs of confusion training (default 6).
	Epochs int
}

var _ DatasetLevel = (*CT)(nil)

func (c *CT) Name() string { return "ct" }

func (c *CT) ScoreTraining(ctx context.Context, m *nn.Model, train *data.Dataset, env Env) ([]float64, error) {
	if err := validateEnv(c.Name(), env); err != nil {
		return nil, err
	}
	epochs := c.Epochs
	if epochs <= 0 {
		epochs = 6
	}
	r := rng.New(env.Seed).Split("ct")
	// Build the confusion set: the training data plus the clean reserved set
	// replicated with random labels so it dominates gradient pressure.
	confused := train.Clone()
	reps := 2 * (train.Len()/env.Clean.Len() + 1)
	for rep := 0; rep < reps; rep++ {
		noisy := env.Clean.Clone()
		for i := range noisy.Y {
			noisy.Y[i] = r.Intn(noisy.Classes)
		}
		if err := confused.Append(noisy); err != nil {
			return nil, err
		}
	}
	probe, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchResNetLite, C: train.Shape.C, H: train.Shape.H, W: train.Shape.W,
		NumClasses: train.Classes, Hidden: 24,
	}, r.Split("probe"))
	if err != nil {
		return nil, err
	}
	if _, err := trainer.Train(ctx, probe, confused, trainer.Config{Epochs: epochs}, r.Split("train")); err != nil {
		return nil, err
	}
	// Score: confidence the confused model still assigns to each training
	// sample's (possibly poisoned) label.
	scores := make([]float64, train.Len())
	const batch = 128
	for start := 0; start < train.Len(); start += batch {
		end := start + batch
		if end > train.Len() {
			end = train.Len()
		}
		idx := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		x, y := train.Batch(idx)
		probs := probe.Predict(x)
		k := probs.Dim(1)
		for bi, i := range idx {
			scores[i] = probs.Data[bi*k+y[bi]]
		}
	}
	return scores, nil
}

// --- helper shared by model-level defenses ------------------------------------------

func softmaxMargin(row []float64) (top, margin float64, argmax int) {
	best, second := math.Inf(-1), math.Inf(-1)
	bi := 0
	for j, v := range row {
		if v > best {
			second = best
			best, bi = v, j
		} else if v > second {
			second = v
		}
	}
	return best, best - second, bi
}
