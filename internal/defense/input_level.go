package defense

import (
	"context"
	"math"

	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/stats"
	"bprom/internal/tensor"
)

// --- STRIP (Gao et al. 2019) ----------------------------------------------------

// STRIP superimposes each input with clean samples and measures prediction
// entropy: a trigger dominates the blend, so triggered inputs keep LOW
// entropy while benign blends become uncertain.
type STRIP struct {
	// Overlays is the number of superimposed clean images (paper: 10).
	Overlays int
}

var _ InputLevel = (*STRIP)(nil)

func (s *STRIP) Name() string { return "strip" }

func (s *STRIP) ScoreInputs(ctx context.Context, m *nn.Model, ds *data.Dataset, env Env) ([]float64, error) {
	if err := validateEnv(s.Name(), env); err != nil {
		return nil, err
	}
	overlays := s.Overlays
	if overlays <= 0 {
		overlays = 10
	}
	r := rng.New(env.Seed).Split("strip")
	w := ds.Shape.Dim()
	scores := make([]float64, ds.Len())
	blend := tensor.New(overlays, w)
	for i := 0; i < ds.Len(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x := ds.Sample(i)
		for o := 0; o < overlays; o++ {
			c := env.Clean.Sample(r.Intn(env.Clean.Len()))
			row := blend.Data[o*w : (o+1)*w]
			for j := range row {
				row[j] = clamp01(0.5*x[j] + 0.5*c[j])
			}
		}
		probs := m.Predict(blend)
		ent := 0.0
		for o := 0; o < overlays; o++ {
			ent += stats.Entropy(probs.Row(o))
		}
		// Low entropy => trigger; flip sign so higher = more suspicious.
		scores[i] = -ent / float64(overlays)
	}
	return scores, nil
}

// --- Frequency (Zeng et al. 2021) ----------------------------------------------

// Frequency thresholds high-frequency DCT energy: patch/blend triggers add
// energy above the natural-image 1/f envelope. (The published defense trains
// a CNN on DCT spectra; the separating statistic is the same band energy.)
type Frequency struct {
	// Cutoff is the diagonal index separating low from high frequencies;
	// 0 selects (H+W)/2.
	Cutoff int
}

var _ InputLevel = (*Frequency)(nil)

func (f *Frequency) Name() string { return "frequency" }

func (f *Frequency) ScoreInputs(ctx context.Context, m *nn.Model, ds *data.Dataset, env Env) ([]float64, error) {
	sh := ds.Shape
	cutoff := f.Cutoff
	if cutoff <= 0 {
		cutoff = (sh.H + sh.W) / 2
	}
	scores := make([]float64, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x := ds.Sample(i)
		e := 0.0
		for c := 0; c < sh.C; c++ {
			ch := x[c*sh.H*sh.W : (c+1)*sh.H*sh.W]
			dct := stats.DCT2D(ch, sh.H, sh.W)
			e += stats.HighFreqEnergy(dct, sh.H, sh.W, cutoff)
		}
		scores[i] = e / float64(sh.C)
	}
	return scores, nil
}

// --- SentiNet (Chou et al. 2018) -------------------------------------------------

// SentiNet finds each input's most salient region by occlusion, transplants
// it onto clean carrier images and measures how often the carrier adopts the
// input's class: trigger regions hijack any carrier.
type SentiNet struct {
	// Region is the occlusion window side (0 selects H/4).
	Region int
	// Carriers is the number of clean transplant targets (paper uses ~100;
	// default 8 for CPU budgets).
	Carriers int
}

var _ InputLevel = (*SentiNet)(nil)

func (s *SentiNet) Name() string { return "sentinet" }

func (s *SentiNet) ScoreInputs(ctx context.Context, m *nn.Model, ds *data.Dataset, env Env) ([]float64, error) {
	if err := validateEnv(s.Name(), env); err != nil {
		return nil, err
	}
	sh := ds.Shape
	region := s.Region
	if region <= 0 {
		region = sh.H / 4
		if region < 2 {
			region = 2
		}
	}
	carriers := s.Carriers
	if carriers <= 0 {
		carriers = 8
	}
	r := rng.New(env.Seed).Split("sentinet")
	w := sh.Dim()
	scores := make([]float64, ds.Len())
	occluded := tensor.New(1, w)
	carrier := tensor.New(carriers, w)
	for i := 0; i < ds.Len(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x := ds.Sample(i)
		base := m.Predict(tensor.FromSlice(append([]float64(nil), x...), 1, w))
		cls := base.MaxIndex()
		baseConf := base.Data[cls]
		// Occlusion saliency: the window whose graying-out drops the
		// predicted-class confidence the most.
		bestDrop, bx, by := -1.0, 0, 0
		for y := 0; y+region <= sh.H; y += region {
			for xx := 0; xx+region <= sh.W; xx += region {
				copy(occluded.Data, x)
				for c := 0; c < sh.C; c++ {
					off := c * sh.H * sh.W
					for dy := 0; dy < region; dy++ {
						for dx := 0; dx < region; dx++ {
							occluded.Data[off+(y+dy)*sh.W+xx+dx] = 0.5
						}
					}
				}
				p := m.Predict(occluded.Clone())
				drop := baseConf - p.Data[cls]
				if drop > bestDrop {
					bestDrop, bx, by = drop, xx, y
				}
			}
		}
		// Transplant the salient window onto clean carriers.
		for cIdx := 0; cIdx < carriers; cIdx++ {
			c := env.Clean.Sample(r.Intn(env.Clean.Len()))
			row := carrier.Data[cIdx*w : (cIdx+1)*w]
			copy(row, c)
			for ch := 0; ch < sh.C; ch++ {
				off := ch * sh.H * sh.W
				for dy := 0; dy < region; dy++ {
					for dx := 0; dx < region; dx++ {
						row[off+(by+dy)*sh.W+bx+dx] = x[off+(by+dy)*sh.W+bx+dx]
					}
				}
			}
		}
		probs := m.Predict(carrier)
		fooled := 0
		k := probs.Dim(1)
		for cIdx := 0; cIdx < carriers; cIdx++ {
			row := probs.Data[cIdx*k : (cIdx+1)*k]
			best, bi := math.Inf(-1), 0
			for j, v := range row {
				if v > best {
					best, bi = v, j
				}
			}
			if bi == cls {
				fooled++
			}
		}
		scores[i] = float64(fooled) / float64(carriers)
	}
	return scores, nil
}

// --- SCALE-UP (Guo et al. 2023) ---------------------------------------------------

// ScaleUp multiplies pixel values by increasing factors and measures scaled
// prediction consistency (SPC): trigger predictions survive amplification,
// benign ones drift.
type ScaleUp struct {
	// Factors are the amplification multipliers (default 2..5).
	Factors []float64
}

var _ InputLevel = (*ScaleUp)(nil)

func (s *ScaleUp) Name() string { return "scale-up" }

func (s *ScaleUp) ScoreInputs(ctx context.Context, m *nn.Model, ds *data.Dataset, env Env) ([]float64, error) {
	factors := s.Factors
	if len(factors) == 0 {
		factors = []float64{2, 3, 4, 5}
	}
	w := ds.Shape.Dim()
	scores := make([]float64, ds.Len())
	scaled := tensor.New(len(factors), w)
	for i := 0; i < ds.Len(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x := ds.Sample(i)
		base := m.Predict(tensor.FromSlice(append([]float64(nil), x...), 1, w))
		cls := base.MaxIndex()
		for fi, f := range factors {
			row := scaled.Data[fi*w : (fi+1)*w]
			for j, v := range x {
				row[j] = clamp01(v * f)
			}
		}
		probs := m.Predict(scaled)
		k := probs.Dim(1)
		consistent := 0
		for fi := range factors {
			row := probs.Data[fi*k : (fi+1)*k]
			best, bi := math.Inf(-1), 0
			for j, v := range row {
				if v > best {
					best, bi = v, j
				}
			}
			if bi == cls {
				consistent++
			}
		}
		scores[i] = float64(consistent) / float64(len(factors))
	}
	return scores, nil
}

// --- TeCo (Liu et al. 2023) ---------------------------------------------------------

// TeCo measures corruption-robustness consistency: on an infected model a
// triggered input keeps its (target) label under many corruption types
// while clean inputs flip at corruption-dependent severities; the score is
// the negated deviation of per-corruption flip severities.
type TeCo struct {
	// Severities is the number of corruption strength levels (default 4).
	Severities int
}

var _ InputLevel = (*TeCo)(nil)

func (t *TeCo) Name() string { return "teco" }

// corruption families: Gaussian noise, brightness shift, box blur, contrast.
const tecoCorruptions = 4

func (t *TeCo) ScoreInputs(ctx context.Context, m *nn.Model, ds *data.Dataset, env Env) ([]float64, error) {
	sev := t.Severities
	if sev <= 0 {
		sev = 4
	}
	r := rng.New(env.Seed).Split("teco")
	sh := ds.Shape
	w := sh.Dim()
	scores := make([]float64, ds.Len())
	buf := tensor.New(1, w)
	for i := 0; i < ds.Len(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x := ds.Sample(i)
		base := m.Predict(tensor.FromSlice(append([]float64(nil), x...), 1, w))
		cls := base.MaxIndex()
		// flip severity per corruption: first level where the label changes
		flips := make([]float64, tecoCorruptions)
		for c := 0; c < tecoCorruptions; c++ {
			flips[c] = float64(sev + 1) // never flipped
			for level := 1; level <= sev; level++ {
				corrupt(buf.Data, x, sh, c, float64(level)/float64(sev), r)
				p := m.Predict(buf.Clone())
				if p.MaxIndex() != cls {
					flips[c] = float64(level)
					break
				}
			}
		}
		// TeCo's statistic is the deviation of flip severities across
		// corruption families. On this substrate the polarity is inverted
		// relative to natural images: clean synthetic samples survive every
		// corruption uniformly (zero deviation) while a trigger is fragile
		// to noise/blur but robust to brightness/contrast, scattering its
		// flip severities. The discriminative quantity is identical; the
		// sign is calibrated so higher = suspicious here.
		scores[i] = stats.Std(flips)
	}
	return scores, nil
}

// corrupt writes a corrupted copy of x into dst.
func corrupt(dst, x []float64, sh data.Shape, kind int, strength float64, r *rng.RNG) {
	switch kind {
	case 0: // Gaussian noise
		for j, v := range x {
			dst[j] = clamp01(v + 0.3*strength*r.NormFloat64())
		}
	case 1: // brightness
		for j, v := range x {
			dst[j] = clamp01(v + 0.4*strength)
		}
	case 2: // box blur with strength-scaled mixing
		for c := 0; c < sh.C; c++ {
			off := c * sh.H * sh.W
			for y := 0; y < sh.H; y++ {
				for xx := 0; xx < sh.W; xx++ {
					sum, cnt := 0.0, 0
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							yy, xxx := y+dy, xx+dx
							if yy < 0 || yy >= sh.H || xxx < 0 || xxx >= sh.W {
								continue
							}
							sum += x[off+yy*sh.W+xxx]
							cnt++
						}
					}
					j := off + y*sh.W + xx
					dst[j] = clamp01((1-strength)*x[j] + strength*sum/float64(cnt))
				}
			}
		}
	default: // contrast reduction toward gray
		for j, v := range x {
			dst[j] = clamp01(0.5 + (v-0.5)*(1-0.8*strength))
		}
	}
}

// --- CD: Cognitive Distillation (Huang et al. 2023) ------------------------------------

// CD searches the smallest input region that preserves the model's
// prediction: triggered inputs have tiny "cognitive patterns" (the trigger),
// benign inputs need much of the image. The published method optimizes a
// mask by gradient descent; this version greedily removes blocks while the
// prediction survives, scoring by the negated surviving-mask size.
type CD struct {
	// Block is the side of removable blocks (0 selects H/4).
	Block int
}

var _ InputLevel = (*CD)(nil)

func (c *CD) Name() string { return "cd" }

func (c *CD) ScoreInputs(ctx context.Context, m *nn.Model, ds *data.Dataset, env Env) ([]float64, error) {
	sh := ds.Shape
	block := c.Block
	if block <= 0 {
		block = sh.H / 4
		if block < 2 {
			block = 2
		}
	}
	w := sh.Dim()
	bw := (sh.W + block - 1) / block
	bh := (sh.H + block - 1) / block
	scores := make([]float64, ds.Len())
	work := tensor.New(1, w)
	for i := 0; i < ds.Len(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x := ds.Sample(i)
		base := m.Predict(tensor.FromSlice(append([]float64(nil), x...), 1, w))
		cls := base.MaxIndex()
		copy(work.Data, x)
		kept := bw * bh
		// Greedy pass: gray out each block; keep it grayed if the class
		// prediction survives.
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				saved := graySnapshot(work.Data, sh, bx*block, by*block, block)
				p := m.Predict(work.Clone())
				if p.MaxIndex() == cls {
					kept--
				} else {
					restoreSnapshot(work.Data, sh, bx*block, by*block, block, saved)
				}
			}
		}
		scores[i] = -float64(kept) / float64(bw*bh) // small surviving pattern = suspicious
	}
	return scores, nil
}

func graySnapshot(img []float64, sh data.Shape, x0, y0, block int) []float64 {
	var saved []float64
	for c := 0; c < sh.C; c++ {
		off := c * sh.H * sh.W
		for dy := 0; dy < block && y0+dy < sh.H; dy++ {
			for dx := 0; dx < block && x0+dx < sh.W; dx++ {
				j := off + (y0+dy)*sh.W + x0 + dx
				saved = append(saved, img[j])
				img[j] = 0.5
			}
		}
	}
	return saved
}

func restoreSnapshot(img []float64, sh data.Shape, x0, y0, block int, saved []float64) {
	i := 0
	for c := 0; c < sh.C; c++ {
		off := c * sh.H * sh.W
		for dy := 0; dy < block && y0+dy < sh.H; dy++ {
			for dx := 0; dx < block && x0+dx < sh.W; dx++ {
				img[off+(y0+dy)*sh.W+x0+dx] = saved[i]
				i++
			}
		}
	}
}

// --- TED (Mo et al. 2024) ------------------------------------------------------------

// TED tracks a sample's topological evolution: where its nearest clean
// neighbours sit in feature space versus output space. Benign samples keep
// neighbours of their predicted class in both views; triggered samples jump
// classes between views. The score is the rank inconsistency.
type TED struct {
	// Neighbors is k for the k-NN rank statistic (default 5).
	Neighbors int
}

var _ InputLevel = (*TED)(nil)

func (t *TED) Name() string { return "ted" }

func (t *TED) ScoreInputs(ctx context.Context, m *nn.Model, ds *data.Dataset, env Env) ([]float64, error) {
	if err := validateEnv(t.Name(), env); err != nil {
		return nil, err
	}
	k := t.Neighbors
	if k <= 0 {
		k = 5
	}
	clean := env.Clean
	cleanFeats := featuresOf(m, clean, allIndices(clean.Len()))
	cx, _ := clean.Batch(allIndices(clean.Len()))
	cleanProbs := m.Predict(cx)
	classes := cleanProbs.Dim(1)
	cleanLogitRows := make([][]float64, clean.Len())
	for i := range cleanLogitRows {
		cleanLogitRows[i] = append([]float64(nil), cleanProbs.Data[i*classes:(i+1)*classes]...)
	}
	scores := make([]float64, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		one := ds.Subset([]int{i})
		f := featuresOf(m, one, []int{0})[0]
		x, _ := one.Batch([]int{0})
		p := m.Predict(x)
		cls := p.MaxIndex()
		pr := p.Row(0)
		// fraction of k nearest clean neighbours sharing the predicted class,
		// in feature space and in output space
		ff := classAgreement(f, cleanFeats, clean.Y, cls, k)
		lf := classAgreement(pr, cleanLogitRows, clean.Y, cls, k)
		// benign: both high; triggered: feature neighbours disagree with the
		// hijacked prediction while output neighbours agree
		scores[i] = lf - ff
	}
	return scores, nil
}

func classAgreement(v []float64, rows [][]float64, labels []int, cls, k int) float64 {
	type nd struct {
		d float64
		y int
	}
	nds := make([]nd, len(rows))
	for i, row := range rows {
		s := 0.0
		for j := range row {
			d := row[j] - v[j]
			s += d * d
		}
		nds[i] = nd{s, labels[i]}
	}
	// partial selection of k smallest
	for i := 0; i < k && i < len(nds); i++ {
		minJ := i
		for j := i + 1; j < len(nds); j++ {
			if nds[j].d < nds[minJ].d {
				minJ = j
			}
		}
		nds[i], nds[minJ] = nds[minJ], nds[i]
	}
	agree := 0
	n := k
	if n > len(nds) {
		n = len(nds)
	}
	for i := 0; i < n; i++ {
		if nds[i].y == cls {
			agree++
		}
	}
	return float64(agree) / float64(n)
}
