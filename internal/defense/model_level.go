package defense

import (
	"context"
	"fmt"
	"math"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/meta"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/stats"
	"bprom/internal/tensor"
	"bprom/internal/trainer"
)

// --- MM-BD (Wang et al. 2024) --------------------------------------------------------

// MMBD estimates each class's maximum classification margin reachable under
// a small perturbation budget: starting from clean samples of OTHER classes,
// a bounded number of pixels may be saturated. A backdoor target class is
// reachable from anywhere with a trigger-sized budget, so its margin is
// anomalously large; the model score is the MAD-normalized deviation of the
// largest per-class margin (Wang et al.'s maximum-margin statistic).
type MMBD struct {
	// Starts is the number of restart samples per class (default 4).
	Starts int
	// Budget is the number of pixels the search may saturate; 0 selects
	// 10% of the input dimension (a trigger-sized allowance).
	Budget int
}

var _ ModelLevel = (*MMBD)(nil)

func (d *MMBD) Name() string { return "mm-bd" }

func (d *MMBD) ScoreModel(ctx context.Context, m *nn.Model, env Env) (float64, error) {
	if err := validateEnv(d.Name(), env); err != nil {
		return 0, err
	}
	starts := d.Starts
	if starts <= 0 {
		starts = 4
	}
	budget := d.Budget
	if budget <= 0 {
		budget = 16 // patch proposals per restart
	}
	shape := env.Clean.Shape
	r := rng.New(env.Seed).Split("mmbd")
	k := m.NumClasses
	margins := make([]float64, k)
	x := tensor.New(1, m.InputDim)
	cand := tensor.New(1, m.InputDim)
	for c := 0; c < k; c++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		best := math.Inf(-1)
		for s := 0; s < starts; s++ {
			// Start from a clean sample of a DIFFERENT class: the question
			// is how easily class c's region is reached from elsewhere.
			var seed []float64
			for tries := 0; tries < 50; tries++ {
				i := r.Intn(env.Clean.Len())
				if env.Clean.Y[i] != c {
					seed = env.Clean.Sample(i)
					break
				}
			}
			if seed == nil {
				continue
			}
			copy(x.Data, seed)
			cur := classProbMargin(m, x, c)
			// Structured proposals: a random binary patch at a random
			// location (trigger-shaped perturbations), greedily accepted.
			for spent := 0; spent < budget; spent++ {
				copy(cand.Data, x.Data)
				proposePatch(cand.Data, shape, r)
				if v := classProbMargin(m, cand, c); v > cur {
					cur = v
					copy(x.Data, cand.Data)
				}
			}
			if cur > best {
				best = cur
			}
		}
		margins[c] = best
	}
	med := stats.Median(margins)
	mad := stats.MAD(margins)
	if mad < 1e-9 {
		mad = 1e-9
	}
	maxDev := 0.0
	for _, v := range margins {
		if dev := (v - med) / mad; dev > maxDev {
			maxDev = dev
		}
	}
	return maxDev, nil
}

// proposePatch stamps a random 3x3 binary pattern (all channels) at a
// random location of img.
func proposePatch(img []float64, sh data.Shape, r *rng.RNG) {
	size := 3
	if sh.H < size || sh.W < size {
		size = 1
	}
	px := r.Intn(sh.W - size + 1)
	py := r.Intn(sh.H - size + 1)
	pat := make([]float64, size*size)
	for i := range pat {
		if r.Float64() < 0.5 {
			pat[i] = 1
		}
	}
	for c := 0; c < sh.C; c++ {
		off := c * sh.H * sh.W
		for dy := 0; dy < size; dy++ {
			for dx := 0; dx < size; dx++ {
				img[off+(py+dy)*sh.W+px+dx] = pat[dy*size+dx]
			}
		}
	}
}

// classProbMargin is the softmax-probability margin of class c — bounded in
// [-1, 1], so one saturated class cannot dominate the anomaly statistic the
// way raw logit margins can.
func classProbMargin(m *nn.Model, x *tensor.Tensor, c int) float64 {
	probs := m.Predict(x.Clone())
	row := probs.Row(0)
	target := row[c]
	other := 0.0
	for j, v := range row {
		if j != c && v > other {
			other = v
		}
	}
	return target - other
}

// --- MNTD (Xu et al. 2019) -------------------------------------------------------------

// MNTD trains clean and backdoored shadow models and a meta-classifier over
// their confidence vectors on a set of query inputs — BPROM's closest prior
// work, WITHOUT visual prompting: queries are raw source-domain inputs. The
// paper's §5.3 comparison (fewer shadows needed, single attack suffices for
// BPROM) is reproduced by running both on identical budgets.
type MNTD struct {
	// NumClean / NumBackdoor shadow counts (default 10+10).
	NumClean, NumBackdoor int
	// Queries is the number of query inputs (default 30).
	Queries int
	// Epochs of shadow training (default 15).
	Epochs int
	// Attacks cycled when poisoning shadows; MNTD's jumbo learning wants
	// variety (default: BadNets, Blend, Trojan, Dynamic).
	Attacks []attack.Kind

	forest  *meta.Forest
	queryX  *tensor.Tensor
	shape   data.Shape
	classes int
	trained bool
}

var _ ModelLevel = (*MNTD)(nil)

func (d *MNTD) Name() string { return "mntd" }

func (d *MNTD) defaults() {
	if d.NumClean <= 0 {
		d.NumClean = 10
	}
	if d.NumBackdoor <= 0 {
		d.NumBackdoor = 10
	}
	if d.Queries <= 0 {
		d.Queries = 30
	}
	if d.Epochs <= 0 {
		d.Epochs = 15
	}
	if len(d.Attacks) == 0 {
		d.Attacks = []attack.Kind{attack.BadNets, attack.Blend, attack.Trojan, attack.Dynamic}
	}
}

// Fit trains the shadow models and meta-classifier from the reserved clean
// dataset. Call once before ScoreModel; ScoreModel fits lazily otherwise.
func (d *MNTD) Fit(ctx context.Context, env Env) error {
	if err := validateEnv(d.Name(), env); err != nil {
		return err
	}
	d.defaults()
	r := rng.New(env.Seed).Split("mntd")
	ds := env.Clean
	d.shape = ds.Shape
	d.classes = ds.Classes
	// Query set: clean samples with mild noise. (MNTD tunes queries by
	// gradient; clean-data queries transfer between shadow and suspicious
	// models far better than the uniform-noise ablation on this substrate.)
	qr := r.Split("queries")
	d.queryX = tensor.New(d.Queries, ds.Shape.Dim())
	w := ds.Shape.Dim()
	for i := 0; i < d.Queries; i++ {
		row := d.queryX.Data[i*w : (i+1)*w]
		copy(row, ds.Sample(qr.Intn(ds.Len())))
		for j := range row {
			row[j] = clamp01(row[j] + 0.05*qr.NormFloat64())
		}
	}

	total := d.NumClean + d.NumBackdoor
	rows := make([][]float64, 0, total)
	labels := make([]bool, 0, total)
	for i := 0; i < total; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		sr := r.Split("shadow", i)
		train := ds
		backdoor := i >= d.NumClean
		if backdoor {
			kind := d.Attacks[i%len(d.Attacks)]
			cfg := attack.Config{
				Kind:       kind,
				PoisonRate: 0.1 + 0.1*sr.Float64(),
				Target:     sr.Intn(ds.Classes),
				Seed:       sr.Uint64(),
			}
			poisoned, _, err := attack.Poison(ds, cfg, sr.Split("poison"))
			if err != nil {
				return fmt.Errorf("defense: mntd shadow %d: %w", i, err)
			}
			train = poisoned
		}
		model, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchConvLite, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
			NumClasses: ds.Classes, Hidden: 24,
		}, sr.Split("init"))
		if err != nil {
			return err
		}
		if _, err := trainer.Train(ctx, model, train, trainer.Config{Epochs: d.Epochs}, sr.Split("train")); err != nil {
			return err
		}
		rows = append(rows, d.features(model))
		labels = append(labels, backdoor)
	}
	forest, err := meta.Train(rows, labels, meta.TrainConfig{}, r.Split("forest"))
	if err != nil {
		return fmt.Errorf("defense: mntd meta-classifier: %w", err)
	}
	d.forest = forest
	d.trained = true
	return nil
}

func (d *MNTD) features(m *nn.Model) []float64 {
	probs := m.Predict(d.queryX.Clone())
	return append([]float64(nil), probs.Data...)
}

func (d *MNTD) ScoreModel(ctx context.Context, m *nn.Model, env Env) (float64, error) {
	if !d.trained {
		if err := d.Fit(ctx, env); err != nil {
			return 0, err
		}
	}
	if m.InputDim != d.shape.Dim() || m.NumClasses != d.classes {
		return 0, fmt.Errorf("defense: mntd fitted for %v/%d-class models, got %d/%d",
			d.shape, d.classes, m.InputDim, m.NumClasses)
	}
	return d.forest.Score(d.features(m))
}
