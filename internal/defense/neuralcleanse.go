package defense

import (
	"context"
	"math"

	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/stats"
	"bprom/internal/tensor"
)

// NeuralCleanse (Wang et al., S&P 2019) inverts a minimal trigger per class:
// it optimizes a mask m and pattern t such that stamping (m, t) onto clean
// samples flips them into the class, with an L1 penalty on the mask. A
// backdoor target class admits an anomalously SMALL mask (the paper's core
// observation — the one BPROM's class-subspace-inconsistency argument builds
// on). The model score is the MAD-normalized deviation of the smallest
// per-class mask size.
//
// This is the white-box member of the model-level baselines: it uses input
// gradients, which the nn substrate exposes.
type NeuralCleanse struct {
	// Steps of mask/pattern optimization per class (default 60).
	Steps int
	// Lambda is the L1 mask penalty weight (default 0.05).
	Lambda float64
	// Batch is the number of clean carrier samples (default 16).
	Batch int
	// LR is the optimization step size (default 0.3).
	LR float64
}

var _ ModelLevel = (*NeuralCleanse)(nil)

func (d *NeuralCleanse) Name() string { return "neural-cleanse" }

func (d *NeuralCleanse) defaults() {
	if d.Steps <= 0 {
		d.Steps = 60
	}
	if d.Lambda <= 0 {
		d.Lambda = 0.05
	}
	if d.Batch <= 0 {
		d.Batch = 16
	}
	if d.LR <= 0 {
		d.LR = 0.3
	}
}

func (d *NeuralCleanse) ScoreModel(ctx context.Context, m *nn.Model, env Env) (float64, error) {
	if err := validateEnv(d.Name(), env); err != nil {
		return 0, err
	}
	d.defaults()
	r := rng.New(env.Seed).Split("neural-cleanse")
	k := m.NumClasses
	sizes := make([]float64, k)
	for c := 0; c < k; c++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		size, err := d.invertTrigger(m, env, c, r.Split("class", c))
		if err != nil {
			return 0, err
		}
		sizes[c] = size
	}
	// Anomaly: how far BELOW the median the smallest mask lies.
	med := stats.Median(sizes)
	mad := stats.MAD(sizes)
	if mad < 1e-9 {
		mad = 1e-9
	}
	maxDev := 0.0
	for _, v := range sizes {
		if dev := (med - v) / mad; dev > maxDev {
			maxDev = dev
		}
	}
	return maxDev, nil
}

// invertTrigger optimizes (mask, pattern) toward class c and returns the
// resulting L1 mask size. Mask and pattern are parameterized through a
// sigmoid so gradient steps keep them in [0,1].
func (d *NeuralCleanse) invertTrigger(m *nn.Model, env Env, c int, r *rng.RNG) (float64, error) {
	dim := m.InputDim
	maskW := make([]float64, dim) // pre-sigmoid mask weights
	patW := make([]float64, dim)  // pre-sigmoid pattern weights
	r.Gaussian(maskW, -2, 0.1)    // start near-transparent
	r.Gaussian(patW, 0, 0.5)

	n := d.Batch
	if n > env.Clean.Len() {
		n = env.Clean.Len()
	}
	carriers := env.Clean.Subset(r.Sample(env.Clean.Len(), n))
	base := carriers.Tensor()
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = c
	}
	mask := make([]float64, dim)
	pattern := make([]float64, dim)
	pass := m.NewPass()
	defer pass.Release()
	for step := 0; step < d.Steps; step++ {
		for j := 0; j < dim; j++ {
			mask[j] = sigmoid(maskW[j])
			pattern[j] = sigmoid(patW[j])
		}
		// x = (1-mask)*carrier + mask*pattern
		for i := 0; i < n; i++ {
			row := x.Data[i*dim : (i+1)*dim]
			b := base.Data[i*dim : (i+1)*dim]
			for j := 0; j < dim; j++ {
				row[j] = (1-mask[j])*b[j] + mask[j]*pattern[j]
			}
		}
		logits := pass.Forward(x, false)
		_, grad := nn.CrossEntropy(logits, labels)
		m.ZeroGrad()
		dx := pass.Backward(grad)
		// Chain rule to the reparameterized mask and pattern; L1 penalty on
		// the mask pushes it small.
		for j := 0; j < dim; j++ {
			var gMask, gPat float64
			for i := 0; i < n; i++ {
				g := dx.Data[i*dim+j]
				b := base.Data[i*dim+j]
				gMask += g * (pattern[j] - b)
				gPat += g * mask[j]
			}
			gMask = gMask/float64(n) + d.Lambda*1 // d|mask|/dmask = 1 (mask >= 0)
			sm := mask[j] * (1 - mask[j])
			sp := pattern[j] * (1 - pattern[j])
			maskW[j] -= d.LR * gMask * sm
			patW[j] -= d.LR * gPat / float64(n) * sp
		}
	}
	size := 0.0
	for j := 0; j < dim; j++ {
		size += sigmoid(maskW[j])
	}
	return size, nil
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }
