package defense

import (
	"context"
	"math"
	"sync"
	"testing"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/metric"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/trainer"
)

// fixture builds a shared environment: a clean model, a BadNets-infected
// model, the poisoned training set with ground truth, and triggered/benign
// test samples. Built once (it trains two models).
type fixture struct {
	clean, infected *nn.Model
	train           *data.Dataset
	poisonedTrain   *data.Dataset
	info            *attack.Info
	benign          *data.Dataset // clean test samples
	triggered       *data.Dataset // triggered test samples
	env             Env
	cfg             attack.Config
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		ctx := context.Background()
		gen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
		train, test := gen.GenerateSplit(50, 20, rng.New(2))
		cfg := attack.Config{Kind: attack.BadNets, PoisonRate: 0.08, Target: 0, Seed: 3}
		poisoned, info, err := attack.Poison(train, cfg, rng.New(4))
		if err != nil {
			panic(err)
		}
		build := func(ds *data.Dataset, seed uint64) *nn.Model {
			m, err := nn.Build(nn.ArchConfig{
				Arch: nn.ArchConvLite, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
				NumClasses: ds.Classes, Hidden: 24,
			}, rng.New(seed))
			if err != nil {
				panic(err)
			}
			if _, err := trainer.Train(ctx, m, ds, trainer.Config{Epochs: 14}, rng.New(seed+1)); err != nil {
				panic(err)
			}
			return m
		}
		benign := test.Subset(rng.New(5).Sample(test.Len(), 40))
		trigAll, err := attack.TriggeredTestSet(test, cfg)
		if err != nil {
			panic(err)
		}
		triggered := trigAll.Subset(rng.New(6).Sample(trigAll.Len(), 40))
		fix = &fixture{
			clean:         build(train, 10),
			infected:      build(poisoned, 20),
			train:         train,
			poisonedTrain: poisoned,
			info:          info,
			benign:        benign,
			triggered:     triggered,
			env:           Env{Clean: test.Reserve(0.2, rng.New(7)), Seed: 8},
			cfg:           cfg,
		}
	})
	return fix
}

// inputLevelAUROC scores benign + triggered samples on model and returns
// AUROC with triggered as positives.
func inputLevelAUROC(t *testing.T, d InputLevel, m *nn.Model, f *fixture) float64 {
	t.Helper()
	ctx := context.Background()
	sb, err := d.ScoreInputs(ctx, m, f.benign, f.env)
	if err != nil {
		t.Fatalf("%s benign: %v", d.Name(), err)
	}
	st, err := d.ScoreInputs(ctx, m, f.triggered, f.env)
	if err != nil {
		t.Fatalf("%s triggered: %v", d.Name(), err)
	}
	scores := append(append([]float64(nil), sb...), st...)
	labels := make([]bool, len(scores))
	for i := len(sb); i < len(scores); i++ {
		labels[i] = true
	}
	auc, err := metric.AUROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	return auc
}

func TestInputLevelDetectorsOnInfectedModel(t *testing.T) {
	f := getFixture(t)
	detectors := []InputLevel{&STRIP{}, &Frequency{}, &ScaleUp{}, &TeCo{}, &SentiNet{}, &CD{}, &TED{}}
	for _, d := range detectors {
		auc := inputLevelAUROC(t, d, f.infected, f)
		t.Logf("%s infected-model AUROC = %.3f", d.Name(), auc)
		if auc < 0.6 {
			t.Errorf("%s: AUROC %.3f on infected model, want >= 0.6", d.Name(), auc)
		}
	}
}

// TestInputLevelCollapseOnCleanModel reproduces Table 1's phenomenon: the
// same detectors lose their signal when the model is clean (the "triggered"
// inputs are just odd-looking benign samples there). We only require that
// detection is much weaker than on the infected model.
func TestInputLevelCollapseOnCleanModel(t *testing.T) {
	f := getFixture(t)
	for _, d := range []InputLevel{&STRIP{}, &ScaleUp{}, &TeCo{}} {
		infected := inputLevelAUROC(t, d, f.infected, f)
		clean := inputLevelAUROC(t, d, f.clean, f)
		t.Logf("%s: infected %.3f vs clean %.3f", d.Name(), infected, clean)
		if clean > infected-0.1 {
			t.Errorf("%s: clean-model AUROC %.3f did not collapse versus infected %.3f", d.Name(), clean, infected)
		}
	}
}

func TestDatasetLevelDetectors(t *testing.T) {
	f := getFixture(t)
	ctx := context.Background()
	labels := make([]bool, f.poisonedTrain.Len())
	for i := range labels {
		labels[i] = f.info.IsPoisoned[i]
	}
	// Clustering-based cleansers (AC, SCAn) are legitimately mediocre — the
	// paper records AC as low as 0.32 and SCAn F1 of 0 on some attacks — so
	// they only need to avoid anti-signal; the spectral and confusion
	// methods must genuinely detect.
	floors := map[string]float64{"ac": 0.5, "scan": 0.5, "ss": 0.6, "spectre": 0.6, "ct": 0.6}
	for _, d := range []DatasetLevel{&AC{}, &SS{}, &SPECTRE{}, &SCAn{}, &CT{}} {
		scores, err := d.ScoreTraining(ctx, f.infected, f.poisonedTrain, f.env)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if len(scores) != f.poisonedTrain.Len() {
			t.Fatalf("%s: %d scores for %d samples", d.Name(), len(scores), f.poisonedTrain.Len())
		}
		auc, err := metric.AUROC(scores, labels)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s training-set AUROC = %.3f", d.Name(), auc)
		if auc < floors[d.Name()] {
			t.Errorf("%s: AUROC %.3f on poisoned training set, want >= %.2f", d.Name(), auc, floors[d.Name()])
		}
	}
}

func TestMMBDScoresInfectedHigher(t *testing.T) {
	f := getFixture(t)
	ctx := context.Background()
	d := &MMBD{}
	si, err := d.ScoreModel(ctx, f.infected, f.env)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := d.ScoreModel(ctx, f.clean, f.env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mm-bd: infected %.3f vs clean %.3f", si, sc)
	// MM-BD's max-margin statistic transfers poorly to small overfit models
	// (clean ones are also trivially patch-attackable), mirroring its mixed
	// GTSRB results in the paper. Require only a sane, finite, deterministic
	// score; its table numbers are reported as measured.
	for _, s := range []float64{si, sc} {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			t.Fatalf("mm-bd produced invalid score %v", s)
		}
	}
	again, err := d.ScoreModel(ctx, f.infected, f.env)
	if err != nil {
		t.Fatal(err)
	}
	if again != si {
		t.Errorf("mm-bd not deterministic: %v vs %v", again, si)
	}
}

func TestMNTDDetects(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 8 shadow models")
	}
	f := getFixture(t)
	ctx := context.Background()
	d := &MNTD{NumClean: 4, NumBackdoor: 4, Epochs: 10}
	// MNTD's defender holds a sizeable clean dataset of the target domain
	// (the paper's setting); give it the training distribution.
	env := Env{Clean: f.train, Seed: 8}
	if err := d.Fit(ctx, env); err != nil {
		t.Fatal(err)
	}
	si, err := d.ScoreModel(ctx, f.infected, env)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := d.ScoreModel(ctx, f.clean, env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mntd: infected %.3f vs clean %.3f", si, sc)
	if si <= sc {
		t.Errorf("mntd scored clean model (%.3f) >= infected (%.3f)", sc, si)
	}
}

func TestMNTDRejectsMismatchedModel(t *testing.T) {
	f := getFixture(t)
	d := &MNTD{NumClean: 1, NumBackdoor: 1, Epochs: 1}
	if err := d.Fit(context.Background(), f.env); err != nil {
		t.Fatal(err)
	}
	other, err := nn.Build(nn.ArchConfig{Arch: nn.ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: 2, Hidden: 8}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ScoreModel(context.Background(), other, f.env); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestDefensesRequireCleanData(t *testing.T) {
	f := getFixture(t)
	ctx := context.Background()
	empty := Env{}
	if _, err := (&STRIP{}).ScoreInputs(ctx, f.clean, f.benign, empty); err == nil {
		t.Error("strip must require clean data")
	}
	if _, err := (&SentiNet{}).ScoreInputs(ctx, f.clean, f.benign, empty); err == nil {
		t.Error("sentinet must require clean data")
	}
	if _, err := (&SCAn{}).ScoreTraining(ctx, f.clean, f.train, empty); err == nil {
		t.Error("scan must require clean data")
	}
	if _, err := (&CT{}).ScoreTraining(ctx, f.clean, f.train, empty); err == nil {
		t.Error("ct must require clean data")
	}
}

func TestContextCancellationPropagates(t *testing.T) {
	f := getFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&STRIP{}).ScoreInputs(ctx, f.infected, f.benign, f.env); err == nil {
		t.Error("strip ignored cancelled context")
	}
	if _, err := (&AC{}).ScoreTraining(ctx, f.infected, f.poisonedTrain, f.env); err == nil {
		t.Error("ac ignored cancelled context")
	}
}

func TestNeuralCleanseInvertsBackdoorTarget(t *testing.T) {
	f := getFixture(t)
	ctx := context.Background()
	d := &NeuralCleanse{Steps: 50}
	si, err := d.ScoreModel(ctx, f.infected, f.env)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := d.ScoreModel(ctx, f.clean, f.env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("neural-cleanse: infected %.3f vs clean %.3f", si, sc)
	if si <= sc {
		t.Errorf("neural-cleanse scored clean model (%.3f) >= infected (%.3f)", sc, si)
	}
}

func TestNeuralCleanseRequiresCleanData(t *testing.T) {
	f := getFixture(t)
	if _, err := (&NeuralCleanse{}).ScoreModel(context.Background(), f.clean, Env{}); err == nil {
		t.Error("neural-cleanse must require clean data")
	}
}
