package stats

import (
	"math"
	"testing"
	"testing/quick"

	"bprom/internal/rng"
)

func TestBasicMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if Std(xs) != 2 {
		t.Fatalf("Std = %v", Std(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input must give 0")
	}
}

func TestMedianAndQuantile(t *testing.T) {
	xs := []float64{5, 1, 3}
	if Median(xs) != 3 {
		t.Fatalf("Median = %v", Median(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("quantile endpoints wrong")
	}
	if q := Quantile([]float64{0, 10}, 0.5); q != 5 {
		t.Fatalf("interpolated median %v", q)
	}
	// input must not be reordered
	if xs[0] != 5 {
		t.Fatal("Median mutated its input")
	}
}

func TestMADGaussianConsistency(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 20000)
	r.Gaussian(xs, 5, 3)
	mad := MAD(xs)
	if math.Abs(mad-3) > 0.15 {
		t.Fatalf("MAD = %v, want ~3 for sigma=3", mad)
	}
}

func TestEntropyBounds(t *testing.T) {
	if Entropy([]float64{1, 0, 0}) != 0 {
		t.Fatal("deterministic distribution must have zero entropy")
	}
	k := 8
	p := make([]float64, k)
	for i := range p {
		p[i] = 1.0 / float64(k)
	}
	if math.Abs(Entropy(p)-math.Log(float64(k))) > 1e-12 {
		t.Fatalf("uniform entropy %v, want ln(%d)", Entropy(p), k)
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Data stretched along (1,1)/√2 with small noise.
	r := rng.New(2)
	n := 400
	rows := make([][]float64, n)
	for i := range rows {
		tt := r.NormFloat64() * 5
		rows[i] = []float64{tt + 0.1*r.NormFloat64(), tt + 0.1*r.NormFloat64()}
	}
	comps, vars, err := PCA(rows, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	c := comps[0]
	if math.Abs(math.Abs(c[0])-math.Sqrt(0.5)) > 0.02 || math.Abs(math.Abs(c[1])-math.Sqrt(0.5)) > 0.02 {
		t.Fatalf("first component %v, want ±(0.707, 0.707)", c)
	}
	if vars[0] < 10*vars[1] {
		t.Fatalf("variance ordering wrong: %v", vars)
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	r := rng.New(3)
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = make([]float64, 6)
		r.Gaussian(rows[i], 0, 1)
	}
	comps, _, err := PCA(rows, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range comps {
		for j := i; j < len(comps); j++ {
			d := dot(comps[i], comps[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-6 {
				t.Fatalf("comp[%d]·comp[%d] = %v, want %v", i, j, d, want)
			}
		}
	}
}

func TestPCAErrors(t *testing.T) {
	if _, _, err := PCA(nil, 1, rng.New(1)); err == nil {
		t.Fatal("expected error for empty input")
	}
	rows := [][]float64{{1, 2}, {3, 4}}
	if _, _, err := PCA(rows, 3, rng.New(1)); err == nil {
		t.Fatal("expected error for k > d")
	}
	if _, _, err := PCA([][]float64{{1, 2}, {3}}, 1, rng.New(1)); err == nil {
		t.Fatal("expected error for ragged input")
	}
}

func TestProjectShape(t *testing.T) {
	rows := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	comps := [][]float64{{1, 0}, {0, 1}}
	proj := Project(rows, comps)
	if len(proj) != 3 || len(proj[0]) != 2 {
		t.Fatalf("projection shape %dx%d", len(proj), len(proj[0]))
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	r := rng.New(4)
	var rows [][]float64
	for i := 0; i < 30; i++ {
		rows = append(rows, []float64{r.NormFloat64() * 0.1, r.NormFloat64() * 0.1})
	}
	for i := 0; i < 30; i++ {
		rows = append(rows, []float64{10 + r.NormFloat64()*0.1, 10 + r.NormFloat64()*0.1})
	}
	assign, cents, err := KMeans(rows, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(cents) != 2 {
		t.Fatalf("%d centroids", len(cents))
	}
	// All of the first 30 must share a cluster, all of the last 30 the other.
	for i := 1; i < 30; i++ {
		if assign[i] != assign[0] {
			t.Fatal("first cluster split")
		}
	}
	for i := 31; i < 60; i++ {
		if assign[i] != assign[30] {
			t.Fatal("second cluster split")
		}
	}
	if assign[0] == assign[30] {
		t.Fatal("clusters merged")
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, _, err := KMeans(nil, 2, rng.New(1)); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, _, err := KMeans([][]float64{{1}}, 2, rng.New(1)); err == nil {
		t.Fatal("expected error for k > n")
	}
}

func TestSilhouetteSeparatedVsMixed(t *testing.T) {
	r := rng.New(5)
	var rows [][]float64
	var goodAssign, badAssign []int
	for i := 0; i < 20; i++ {
		rows = append(rows, []float64{r.NormFloat64() * 0.1})
		goodAssign = append(goodAssign, 0)
		badAssign = append(badAssign, i%2)
	}
	for i := 0; i < 20; i++ {
		rows = append(rows, []float64{5 + r.NormFloat64()*0.1})
		goodAssign = append(goodAssign, 1)
		badAssign = append(badAssign, i%2)
	}
	good := Silhouette(rows, goodAssign)
	bad := Silhouette(rows, badAssign)
	if good < 0.9 {
		t.Fatalf("separated silhouette %v, want > 0.9", good)
	}
	if bad >= good {
		t.Fatalf("mixed assignment silhouette %v not below separated %v", bad, good)
	}
}

func TestDCT2DParseval(t *testing.T) {
	// Orthonormal DCT preserves energy.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h, w := 6, 8
		img := make([]float64, h*w)
		r.Gaussian(img, 0, 1)
		out := DCT2D(img, h, w)
		var e1, e2 float64
		for i := range img {
			e1 += img[i] * img[i]
			e2 += out[i] * out[i]
		}
		return math.Abs(e1-e2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDCT2DConstantImage(t *testing.T) {
	img := make([]float64, 16)
	for i := range img {
		img[i] = 2
	}
	out := DCT2D(img, 4, 4)
	// Only the DC coefficient should be nonzero.
	if math.Abs(out[0]-8) > 1e-9 { // 2 * sqrt(16) = 8
		t.Fatalf("DC coefficient %v, want 8", out[0])
	}
	for i := 1; i < len(out); i++ {
		if math.Abs(out[i]) > 1e-9 {
			t.Fatalf("AC coefficient %d = %v, want 0", i, out[i])
		}
	}
}

func TestHighFreqEnergy(t *testing.T) {
	dct := make([]float64, 16)
	dct[0] = 1  // low frequency (0,0)
	dct[15] = 1 // high frequency (3,3)
	e := HighFreqEnergy(dct, 4, 4, 3)
	if math.Abs(e-0.5) > 1e-12 {
		t.Fatalf("high-freq share %v, want 0.5", e)
	}
	if HighFreqEnergy(make([]float64, 16), 4, 4, 3) != 0 {
		t.Fatal("zero image must have zero high-freq share")
	}
}

func TestGramVector(t *testing.T) {
	g := GramVector([]float64{1, 2, 3})
	want := []float64{1, 2, 3, 4, 6, 9}
	if len(g) != len(want) {
		t.Fatalf("gram length %d", len(g))
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("gram[%d] = %v, want %v", i, g[i], want[i])
		}
	}
}
