// Package stats provides the statistical primitives the baseline defenses
// and visualizations need: PCA (power iteration), k-means, per-class
// covariance utilities, median absolute deviation, quantiles, Shannon
// entropy, silhouette scores, and a 2-D DCT for the Frequency defense.
package stats

import (
	"fmt"
	"math"
	"sort"

	"bprom/internal/rng"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs (0 for empty input). xs is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (linear interpolation) of xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// MAD returns the median absolute deviation of xs (scaled by 1.4826 so it
// estimates σ for Gaussian data), as used by anomaly detectors.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, v := range xs {
		dev[i] = math.Abs(v - med)
	}
	return 1.4826 * Median(dev)
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
// Non-positive entries contribute zero.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// --- PCA ------------------------------------------------------------------------

// PCA computes the top-k principal components of rows (n samples × d dims)
// via power iteration with deflation. It returns the components (k × d, unit
// norm) and the per-component explained variance. Rows are centered
// internally; the input is not modified.
func PCA(rows [][]float64, k int, r *rng.RNG) (components [][]float64, variances []float64, err error) {
	n := len(rows)
	if n == 0 {
		return nil, nil, fmt.Errorf("stats: PCA of empty matrix")
	}
	d := len(rows[0])
	if k <= 0 || k > d {
		return nil, nil, fmt.Errorf("stats: PCA k=%d outside [1,%d]", k, d)
	}
	// center
	mean := make([]float64, d)
	for _, row := range rows {
		if len(row) != d {
			return nil, nil, fmt.Errorf("stats: ragged PCA input")
		}
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	x := make([][]float64, n)
	for i, row := range rows {
		x[i] = make([]float64, d)
		for j, v := range row {
			x[i][j] = v - mean[j]
		}
	}
	components = make([][]float64, 0, k)
	variances = make([]float64, 0, k)
	tmp := make([]float64, n)
	for c := 0; c < k; c++ {
		v := make([]float64, d)
		r.Gaussian(v, 0, 1)
		normalize(v)
		var lambda float64
		for iter := 0; iter < 100; iter++ {
			// w = Xᵀ X v / n  without forming the covariance
			for i := range x {
				tmp[i] = dot(x[i], v)
			}
			w := make([]float64, d)
			for i := range x {
				for j := range w {
					w[j] += tmp[i] * x[i][j]
				}
			}
			for j := range w {
				w[j] /= float64(n)
			}
			newLambda := norm(w)
			if newLambda == 0 {
				break
			}
			for j := range w {
				w[j] /= newLambda
			}
			delta := 0.0
			for j := range w {
				dl := w[j] - v[j]
				delta += dl * dl
			}
			copy(v, w)
			lambda = newLambda
			if delta < 1e-12 {
				break
			}
		}
		components = append(components, v)
		variances = append(variances, lambda)
		// deflate: remove the component from every row
		for i := range x {
			proj := dot(x[i], v)
			for j := range x[i] {
				x[i][j] -= proj * v[j]
			}
		}
	}
	return components, variances, nil
}

// Project maps rows onto the given components, returning n × k coordinates.
// Rows are centered with their own mean, matching PCA's internal centering.
func Project(rows [][]float64, components [][]float64) [][]float64 {
	n := len(rows)
	if n == 0 {
		return nil
	}
	d := len(rows[0])
	mean := make([]float64, d)
	for _, row := range rows {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	out := make([][]float64, n)
	centered := make([]float64, d)
	for i, row := range rows {
		for j, v := range row {
			centered[j] = v - mean[j]
		}
		out[i] = make([]float64, len(components))
		for c, comp := range components {
			out[i][c] = dot(centered, comp)
		}
	}
	return out
}

// --- k-means -------------------------------------------------------------------

// KMeans clusters rows into k groups (k-means++ init, Lloyd iterations).
// It returns per-row assignments and the centroids.
func KMeans(rows [][]float64, k int, r *rng.RNG) (assign []int, centroids [][]float64, err error) {
	n := len(rows)
	if n == 0 || k <= 0 || k > n {
		return nil, nil, fmt.Errorf("stats: KMeans with n=%d k=%d", n, k)
	}
	d := len(rows[0])
	// k-means++ seeding
	centroids = make([][]float64, 0, k)
	first := r.Intn(n)
	centroids = append(centroids, append([]float64(nil), rows[first]...))
	dist := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, row := range rows {
			best := math.Inf(1)
			for _, c := range centroids {
				if dd := sqDist(row, c); dd < best {
					best = dd
				}
			}
			dist[i] = best
			total += best
		}
		var pick int
		if total == 0 {
			pick = r.Intn(n)
		} else {
			target := r.Float64() * total
			acc := 0.0
			for i, dd := range dist {
				acc += dd
				if acc >= target {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), rows[pick]...))
	}
	assign = make([]int, n)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, row := range rows {
			best, bi := math.Inf(1), 0
			for c, cent := range centroids {
				if dd := sqDist(row, cent); dd < best {
					best, bi = dd, c
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i, row := range rows {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				centroids[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// re-seed empty cluster at a random row
				copy(centroids[c], rows[r.Intn(n)])
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
		_ = d
	}
	return assign, centroids, nil
}

// Silhouette returns the mean silhouette coefficient of a clustering — the
// separation score used to visualize class-subspace structure (Figure 3).
func Silhouette(rows [][]float64, assign []int) float64 {
	n := len(rows)
	if n < 2 {
		return 0
	}
	clusters := map[int][]int{}
	for i, a := range assign {
		clusters[a] = append(clusters[a], i)
	}
	if len(clusters) < 2 {
		return 0
	}
	total := 0.0
	counted := 0
	for i := 0; i < n; i++ {
		own := assign[i]
		if len(clusters[own]) < 2 {
			continue
		}
		a := 0.0
		for _, j := range clusters[own] {
			if j != i {
				a += math.Sqrt(sqDist(rows[i], rows[j]))
			}
		}
		a /= float64(len(clusters[own]) - 1)
		b := math.Inf(1)
		for c, members := range clusters {
			if c == own {
				continue
			}
			d := 0.0
			for _, j := range members {
				d += math.Sqrt(sqDist(rows[i], rows[j]))
			}
			d /= float64(len(members))
			if d < b {
				b = d
			}
		}
		denom := math.Max(a, b)
		if denom > 0 {
			total += (b - a) / denom
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// --- DCT ------------------------------------------------------------------------

// DCT2D computes the orthonormal type-II 2-D DCT of an h×w image (flattened
// row-major). The Frequency defense thresholds high-frequency energy of this
// transform.
func DCT2D(img []float64, h, w int) []float64 {
	if len(img) != h*w {
		panic(fmt.Sprintf("stats: DCT2D image length %d != %dx%d", len(img), h, w))
	}
	tmp := make([]float64, h*w)
	out := make([]float64, h*w)
	// rows
	for y := 0; y < h; y++ {
		dct1D(img[y*w:(y+1)*w], tmp[y*w:(y+1)*w])
	}
	// columns
	col := make([]float64, h)
	colOut := make([]float64, h)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			col[y] = tmp[y*w+x]
		}
		dct1D(col, colOut)
		for y := 0; y < h; y++ {
			out[y*w+x] = colOut[y]
		}
	}
	return out
}

func dct1D(in, out []float64) {
	n := len(in)
	for k := 0; k < n; k++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += in[i] * math.Cos(math.Pi*(float64(i)+0.5)*float64(k)/float64(n))
		}
		scale := math.Sqrt(2 / float64(n))
		if k == 0 {
			scale = math.Sqrt(1 / float64(n))
		}
		out[k] = s * scale
	}
}

// HighFreqEnergy returns the fraction of DCT energy in coefficients whose
// (row+col) index exceeds cutoff — the Frequency defense's statistic.
func HighFreqEnergy(dct []float64, h, w, cutoff int) float64 {
	total, high := 0.0, 0.0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			e := dct[y*w+x] * dct[y*w+x]
			total += e
			if x+y > cutoff {
				high += e
			}
		}
	}
	if total == 0 {
		return 0
	}
	return high / total
}

// --- Gram ------------------------------------------------------------------------

// GramVector flattens the upper triangle of the Gram matrix vvᵀ of a feature
// vector — the per-sample second-order statistic used by Beatrix-style
// detectors and available for meta-features.
func GramVector(v []float64) []float64 {
	d := len(v)
	out := make([]float64, 0, d*(d+1)/2)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			out = append(out, v[i]*v[j])
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func normalize(a []float64) {
	n := norm(a)
	if n == 0 {
		return
	}
	for i := range a {
		a[i] /= n
	}
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
