package bprom

import (
	"math"
	"testing"

	"bprom/internal/data"
	"bprom/internal/rng"
	"bprom/internal/vp"
)

func screenTestPrompt(t *testing.T, seed uint64) *vp.Prompt {
	t.Helper()
	p, err := vp.NewPrompt(data.Shape{C: 1, H: 6, W: 6}, data.Shape{C: 1, H: 8, W: 8}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng.New(seed).Uniform(p.Theta, 0, 1)
	return p
}

// TestDetectorScreenerMeansShadowPrompts pins the derivation: the serving
// screener's prompt is the element-wise mean θ of the persisted shadow
// prompts, nil-prompt shadows skipped.
func TestDetectorScreenerMeansShadowPrompts(t *testing.T) {
	p1 := screenTestPrompt(t, 1)
	p2 := screenTestPrompt(t, 2)
	d := &Detector{Shadows: []Shadow{{Prompt: p1}, {}, {Prompt: p2}}}
	s, err := d.Screener(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold() != 0.6 || s.InputDim() != 36 {
		t.Fatalf("screener metadata: threshold %v dim %d", s.Threshold(), s.InputDim())
	}
	theta := s.Prompt().Theta
	for i := range theta {
		want := (p1.Theta[i] + p2.Theta[i]) / 2
		if math.Abs(theta[i]-want) > 1e-15 {
			t.Fatalf("mean theta[%d] = %v, want %v", i, theta[i], want)
		}
	}
}

func TestDetectorScreenerErrors(t *testing.T) {
	if _, err := (&Detector{}).Screener(0); err == nil {
		t.Fatal("detector without shadow prompts produced a screener")
	}
	odd, err := vp.NewPrompt(data.Shape{C: 1, H: 8, W: 8}, data.Shape{C: 1, H: 8, W: 8}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	d := &Detector{Shadows: []Shadow{{Prompt: screenTestPrompt(t, 3)}, {Prompt: odd}}}
	if _, err := d.Screener(0); err == nil {
		t.Fatal("mismatched shadow prompt geometries produced a screener")
	}
}
