package bprom

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"bprom/internal/data"
	"bprom/internal/meta"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/vp"
)

// The golden detector artifact guards the .bpd binary format against
// accidental drift: detectorVersion bumps, section reordering, or encoding
// changes all break the byte-for-byte comparison below — the same contract
// internal/nn/golden_test.go enforces for model checkpoints. Regenerate
// (after an INTENTIONAL, versioned format change) with:
//
//	go test ./internal/bprom -run TestGoldenDetectorArtifact -update
var updateGolden = flag.Bool("update", false, "rewrite golden detector testdata")

const (
	goldenArtifactFile = "golden_v1.bpd"
	goldenScoreFile    = "golden_v1.score.json"
)

// goldenDataset hand-assembles a deterministic tiny dataset (a pixel ramp
// with cyclic labels) — independent of the synthetic generator, so
// generator changes cannot silently alter the golden bytes.
func goldenDataset(name string, n int, shape data.Shape, classes int) *data.Dataset {
	d := &data.Dataset{Name: name, Shape: shape, Classes: classes}
	dim := shape.Dim()
	d.X = make([]float64, n*dim)
	for i := range d.X {
		d.X[i] = float64(i%23) / 23
	}
	d.Y = make([]int, n)
	for i := range d.Y {
		d.Y[i] = i % classes
	}
	return d
}

// goldenDetector hand-assembles a Detector exercising every artifact
// section: forest (with in-bag matrix), threshold, query indices, both DT
// splits, prompt geometry, black-box config, and shadows with and without
// retained prompts.
func goldenDetector(t *testing.T) *Detector {
	t.Helper()
	rows := [][]float64{
		{0.1, 0.9, 0.3, 0.2},
		{0.8, 0.1, 0.7, 0.9},
		{0.2, 0.8, 0.2, 0.1},
		{0.9, 0.2, 0.8, 0.8},
		{0.1, 0.7, 0.4, 0.3},
		{0.7, 0.3, 0.9, 0.7},
	}
	labels := []bool{false, true, false, true, false, true}
	forest, err := meta.Train(rows, labels, meta.TrainConfig{Trees: 7, MaxDepth: 3}, rng.New(0x601d))
	if err != nil {
		t.Fatal(err)
	}
	source := data.Shape{C: 1, H: 8, W: 8}
	target := data.Shape{C: 1, H: 6, W: 6}
	shadowPrompt, err := vp.NewPrompt(source, target, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	for i := range shadowPrompt.Theta {
		shadowPrompt.Theta[i] = float64(i%11) / 11
	}
	return &Detector{
		forest:    forest,
		threshold: 0.4375,
		queryIdx:  []int{0, 2},
		external:  goldenDataset("golden-ext-test", 4, target, 3),
		extTrain:  goldenDataset("golden-ext-train", 6, target, 3),
		prompt:    promptGeometry{source: source, frac: 0.75},
		blackBox: vp.BlackBoxConfig{
			Iterations: 5, PopSize: 7, BatchSize: 4, Sigma0: 0.25, MaxQueries: 100,
		},
		seed: 0xBEEF,
		Shadows: []Shadow{
			{Backdoor: false, PromptedAcc: 0.875, Features: []float64{0.1, 0.9, 0.3, 0.2}, Prompt: shadowPrompt},
			{Backdoor: true, PromptedAcc: 0.25, Features: []float64{0.8, 0.1, 0.7, 0.9}},
		},
	}
}

// goldenRow is a fixed feature row for the behavioral score check.
func goldenRow() []float64 { return []float64{0.15, 0.85, 0.35, 0.25} }

func TestGoldenDetectorArtifact(t *testing.T) {
	artPath := filepath.Join("testdata", goldenArtifactFile)
	scorePath := filepath.Join("testdata", goldenScoreFile)

	if *updateGolden {
		d := goldenDetector(t)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := d.SaveFile(artPath); err != nil {
			t.Fatal(err)
		}
		score, err := d.forest.Score(goldenRow())
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(score, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(scorePath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden detector artifact rewritten: %s", artPath)
	}

	raw, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatalf("read golden artifact (regenerate with -update): %v", err)
	}

	// The artifact must load, and every section must carry the committed
	// values.
	d, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden artifact no longer loads: %v", err)
	}
	if d.seed != 0xBEEF || d.threshold != 0.4375 {
		t.Fatalf("header fields drifted: seed=%#x threshold=%v", d.seed, d.threshold)
	}
	if d.prompt.source != (data.Shape{C: 1, H: 8, W: 8}) || d.prompt.frac != 0.75 {
		t.Fatalf("prompt geometry drifted: %+v", d.prompt)
	}
	if len(d.queryIdx) != 2 || d.queryIdx[0] != 0 || d.queryIdx[1] != 2 {
		t.Fatalf("query indices drifted: %v", d.queryIdx)
	}
	if d.external.Len() != 4 || d.extTrain.Len() != 6 || d.external.Classes != 3 {
		t.Fatalf("embedded datasets drifted: %d/%d samples", d.external.Len(), d.extTrain.Len())
	}
	if d.blackBox.Iterations != 5 || d.blackBox.PopSize != 7 || d.blackBox.Sigma0 != 0.25 {
		t.Fatalf("black-box config drifted: %+v", d.blackBox)
	}
	if len(d.Shadows) != 2 || d.Shadows[0].Prompt == nil || d.Shadows[1].Prompt != nil {
		t.Fatalf("shadow metadata drifted: %+v", d.Shadows)
	}
	if d.Shadows[0].Model != nil {
		t.Fatal("shadow models must not round-trip through the artifact")
	}

	// Re-saving must reproduce the committed bytes exactly: the encoder is
	// part of the format contract.
	var resaved bytes.Buffer
	if err := d.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), raw) {
		t.Fatalf("re-saved artifact differs from golden bytes (%d vs %d bytes): encoder drifted",
			resaved.Len(), len(raw))
	}

	// And the loaded forest must behave identically: the fixed probe row
	// produces the committed score.
	var want float64
	buf, err := os.ReadFile(scorePath)
	if err != nil {
		t.Fatalf("read golden score (regenerate with -update): %v", err)
	}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	got, err := d.forest.Score(goldenRow())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0 {
		t.Fatalf("golden forest score drifted: %v vs %v", got, want)
	}
}

// TestArtifactRoundTripInspectParity closes the loop on a REAL trained
// detector: saving it, loading it back, and inspecting the same suspicious
// model on the same RNG stream must produce a bit-identical verdict — the
// train-once / audit-many portability contract.
func TestArtifactRoundTripInspectParity(t *testing.T) {
	e := sharedEnv(t)
	ctx := context.Background()

	var buf bytes.Buffer
	if err := e.det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Compatible(e.srcTrain.Classes, e.srcTrain.Shape.Dim()); err != nil {
		t.Fatalf("loaded detector incompatible with its own source domain: %v", err)
	}

	m := trainSus(t, e, nil, 500)
	want, err := e.det.Inspect(ctx, oracle.NewModelOracle(m), 11)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Inspect(ctx, oracle.NewModelOracle(m), 11)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("loaded-detector verdict %+v differs from original %+v", got, want)
	}

	// OOB scoring survives the round trip too (the in-bag matrix is part
	// of the artifact).
	rows := make([][]float64, len(e.det.Shadows))
	for i, s := range e.det.Shadows {
		rows[i] = s.Features
	}
	wantOOB, err := e.det.forest.OOBScores(rows)
	if err != nil {
		t.Fatal(err)
	}
	gotOOB, err := loaded.forest.OOBScores(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantOOB {
		if wantOOB[i] != gotOOB[i] {
			t.Fatalf("OOB score %d drifted after round trip: %v vs %v", i, gotOOB[i], wantOOB[i])
		}
	}
}

// TestLoadRejectsCorruptArtifacts spot-checks the decoder's validation.
func TestLoadRejectsCorruptArtifacts(t *testing.T) {
	d := goldenDetector(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := Load(bytes.NewReader([]byte("NOTABPD!xxxx"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Load(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated artifact accepted")
	}
	bumped := append([]byte(nil), raw...)
	bumped[len(detectorMagic)] = 0xFF // version byte
	if _, err := Load(bytes.NewReader(bumped)); err == nil {
		t.Fatal("future version accepted")
	}
}
