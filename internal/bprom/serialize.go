package bprom

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"bprom/internal/binio"
	"bprom/internal/data"
	"bprom/internal/meta"
	"bprom/internal/vp"
)

// Detector artifact format (.bpd): the persistent form of a trained BPROM
// detector, in the same magic + version discipline as the nn checkpoint
// format. It holds everything Inspect needs — the meta-classifier forest,
// the OOB-calibrated threshold, the DQ query-sample indices, the embedded
// external dataset DT (both splits, bit-exact), the prompt geometry, the
// black-box prompting configuration, and the detector seed — plus the
// per-shadow analysis metadata (label, prompted accuracy, meta-features,
// learned prompt tensors).
//
// Shadow MODELS are deliberately not persisted: detection never queries
// them again, and they dominate the artifact size. A loaded detector
// therefore has Shadow.Model == nil; everything else round-trips exactly,
// so a detector trained once with `bprom train -out d.bpd` audits models in
// any later process with verdicts bit-identical to the training process.

const (
	detectorMagic   = "BPROMDET"
	detectorVersion = uint32(1)
)

// Save writes the detector artifact to w.
func (d *Detector) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(detectorMagic); err != nil {
		return fmt.Errorf("bprom: write magic: %w", err)
	}
	if err := binio.WriteU32(bw, detectorVersion); err != nil {
		return err
	}
	if err := binio.WriteU64(bw, d.seed); err != nil {
		return err
	}
	if err := binio.WriteF64(bw, d.threshold); err != nil {
		return err
	}
	for _, v := range []int{d.prompt.source.C, d.prompt.source.H, d.prompt.source.W} {
		if err := binio.WriteU32(bw, uint32(v)); err != nil {
			return err
		}
	}
	if err := binio.WriteF64(bw, d.prompt.frac); err != nil {
		return err
	}
	// Negative config values mean "use the default" (like zero); clamp them
	// so they cannot wrap into huge budgets on load.
	for _, v := range []int{d.blackBox.Iterations, d.blackBox.PopSize, d.blackBox.BatchSize, d.blackBox.MaxQueries} {
		if v < 0 {
			v = 0
		}
		if err := binio.WriteU32(bw, uint32(v)); err != nil {
			return err
		}
	}
	if err := binio.WriteF64(bw, d.blackBox.Sigma0); err != nil {
		return err
	}
	if err := binio.WriteBool(bw, d.blackBox.UseSPSA); err != nil {
		return err
	}
	if err := binio.WriteInts(bw, d.queryIdx); err != nil {
		return err
	}
	if err := d.extTrain.Save(bw); err != nil {
		return fmt.Errorf("bprom: save DT train split: %w", err)
	}
	if err := d.external.Save(bw); err != nil {
		return fmt.Errorf("bprom: save DT test split: %w", err)
	}
	if err := d.forest.Save(bw); err != nil {
		return fmt.Errorf("bprom: save forest: %w", err)
	}
	if err := binio.WriteU32(bw, uint32(len(d.Shadows))); err != nil {
		return err
	}
	for i, s := range d.Shadows {
		if err := binio.WriteBool(bw, s.Backdoor); err != nil {
			return err
		}
		if err := binio.WriteF64(bw, s.PromptedAcc); err != nil {
			return err
		}
		if err := binio.WriteFloats(bw, s.Features); err != nil {
			return err
		}
		if err := binio.WriteBool(bw, s.Prompt != nil); err != nil {
			return err
		}
		if s.Prompt != nil {
			if err := s.Prompt.Save(bw); err != nil {
				return fmt.Errorf("bprom: save shadow %d prompt: %w", i, err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("bprom: flush detector: %w", err)
	}
	return nil
}

// SaveFile writes the detector artifact to path, creating or truncating it.
func (d *Detector) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bprom: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("bprom: close %s: %w", path, cerr)
		}
	}()
	return d.Save(f)
}

// Load reads a detector artifact previously written by Save.
func Load(r io.Reader) (*Detector, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(detectorMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("bprom: read magic: %w", err)
	}
	if string(magic) != detectorMagic {
		return nil, fmt.Errorf("bprom: bad magic %q (not a detector artifact)", magic)
	}
	ver, err := binio.ReadU32(br)
	if err != nil {
		return nil, err
	}
	if ver != detectorVersion {
		return nil, fmt.Errorf("bprom: unsupported detector format version %d", ver)
	}
	d := &Detector{}
	if d.seed, err = binio.ReadU64(br); err != nil {
		return nil, err
	}
	if d.threshold, err = binio.ReadF64(br); err != nil {
		return nil, err
	}
	var shape [3]uint32
	for i := range shape {
		if shape[i], err = binio.ReadU32(br); err != nil {
			return nil, err
		}
	}
	d.prompt.source = data.Shape{C: int(shape[0]), H: int(shape[1]), W: int(shape[2])}
	if !d.prompt.source.Valid() {
		return nil, fmt.Errorf("bprom: invalid prompt canvas %+v", d.prompt.source)
	}
	if d.prompt.frac, err = binio.ReadF64(br); err != nil {
		return nil, err
	}
	var bb [4]uint32
	for i := range bb {
		if bb[i], err = binio.ReadU32(br); err != nil {
			return nil, err
		}
	}
	d.blackBox.Iterations = int(bb[0])
	d.blackBox.PopSize = int(bb[1])
	d.blackBox.BatchSize = int(bb[2])
	d.blackBox.MaxQueries = int(bb[3])
	if d.blackBox.Sigma0, err = binio.ReadF64(br); err != nil {
		return nil, err
	}
	if d.blackBox.UseSPSA, err = binio.ReadBool(br); err != nil {
		return nil, err
	}
	if d.queryIdx, err = binio.ReadInts(br); err != nil {
		return nil, err
	}
	if d.extTrain, err = data.LoadDataset(br); err != nil {
		return nil, fmt.Errorf("bprom: load DT train split: %w", err)
	}
	if d.external, err = data.LoadDataset(br); err != nil {
		return nil, fmt.Errorf("bprom: load DT test split: %w", err)
	}
	for _, qi := range d.queryIdx {
		if qi >= d.external.Len() {
			return nil, fmt.Errorf("bprom: query index %d outside DT test split of %d samples", qi, d.external.Len())
		}
	}
	if d.forest, err = meta.Load(br); err != nil {
		return nil, fmt.Errorf("bprom: load forest: %w", err)
	}
	nShadows, err := binio.ReadU32(br)
	if err != nil {
		return nil, err
	}
	if nShadows > 1<<16 {
		return nil, fmt.Errorf("bprom: implausible shadow count %d", nShadows)
	}
	d.Shadows = make([]Shadow, nShadows)
	for i := range d.Shadows {
		s := &d.Shadows[i]
		if s.Backdoor, err = binio.ReadBool(br); err != nil {
			return nil, err
		}
		if s.PromptedAcc, err = binio.ReadF64(br); err != nil {
			return nil, err
		}
		if s.Features, err = binio.ReadFloats(br); err != nil {
			return nil, err
		}
		hasPrompt, err := binio.ReadBool(br)
		if err != nil {
			return nil, err
		}
		if hasPrompt {
			if s.Prompt, err = vp.LoadPrompt(br); err != nil {
				return nil, fmt.Errorf("bprom: load shadow %d prompt: %w", i, err)
			}
		}
	}
	return d, nil
}

// LoadFile reads a detector artifact from path.
func LoadFile(path string) (*Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bprom: open %s: %w", path, err)
	}
	defer f.Close()
	d, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("bprom: %s: %w", path, err)
	}
	return d, nil
}

// Threshold reports the detector's OOB-calibrated decision threshold.
func (d *Detector) Threshold() float64 { return d.threshold }

// InputDim reports the flattened input width suspicious oracles must have
// (the prompt canvas of the source domain).
func (d *Detector) InputDim() int { return d.prompt.source.Dim() }

// MinClasses reports the smallest label-space size a suspicious oracle can
// have: the identity label mapping needs at least as many source classes as
// the external task DT has.
func (d *Detector) MinClasses() int { return d.extTrain.Classes }

// Compatible reports whether a suspicious oracle with the given label-space
// size and input width can be audited by this detector, with a descriptive
// error when it cannot. Serving layers use it to reject incompatible audit
// submissions up front instead of failing the job mid-prompt.
func (d *Detector) Compatible(numClasses, inputDim int) error {
	if inputDim != d.InputDim() {
		return fmt.Errorf("bprom: model input width %d, detector prompts a %dx%dx%d canvas (dim %d)",
			inputDim, d.prompt.source.C, d.prompt.source.H, d.prompt.source.W, d.InputDim())
	}
	if numClasses < d.MinClasses() {
		return fmt.Errorf("bprom: model has %d classes, detector's external task needs at least %d",
			numClasses, d.MinClasses())
	}
	return nil
}
