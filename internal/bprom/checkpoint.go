package bprom

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"bprom/internal/binio"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/vp"
)

// Inspection checkpoints: the resumable state of an in-flight Inspect call
// at a CMA-ES generation boundary. The job store persists one of these per
// journal checkpoint record (as an opaque blob inside a CRC-framed record),
// so a server restart resumes every running audit from its last completed
// generation instead of from scratch — bit-exactly, because the snapshot
// carries the optimizer state and both RNG streams, and the query counter is
// pre-charged with the checkpointed spend.

// checkpointMagic guards against feeding an arbitrary blob to LoadCheckpoint;
// the version allows the layout to evolve without silent misreads.
const (
	checkpointMagic   = 0x4250_434b // "BPCK"
	checkpointVersion = 1
)

// Checkpoint is a restartable snapshot of an inspection.
type Checkpoint struct {
	// Generation is the number of completed CMA-ES generations.
	Generation int
	// Queries is the oracle sample spend at the snapshot — the value the
	// resumed run's counter is pre-charged with.
	Queries int64
	// Search is the optimizer + mini-batch RNG state.
	Search *vp.SearchState
}

// Save writes the checkpoint to w.
func (c *Checkpoint) Save(w io.Writer) error {
	if c.Search == nil {
		return fmt.Errorf("bprom: checkpoint has no search state")
	}
	for _, v := range []uint64{checkpointMagic, checkpointVersion, uint64(c.Generation), uint64(c.Queries)} {
		if err := binio.WriteU64(w, v); err != nil {
			return err
		}
	}
	return c.Search.Save(w)
}

// Encode returns the checkpoint in its wire form.
func (c *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadCheckpoint reads a checkpoint previously written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var hdr [4]uint64
	for i := range hdr {
		v, err := binio.ReadU64(r)
		if err != nil {
			return nil, fmt.Errorf("bprom: reading checkpoint header: %w", err)
		}
		hdr[i] = v
	}
	if hdr[0] != checkpointMagic {
		return nil, fmt.Errorf("bprom: not a checkpoint blob (magic %#x)", hdr[0])
	}
	if hdr[1] != checkpointVersion {
		return nil, fmt.Errorf("bprom: unsupported checkpoint version %d", hdr[1])
	}
	search, err := vp.LoadSearchState(r)
	if err != nil {
		return nil, fmt.Errorf("bprom: reading checkpoint search state: %w", err)
	}
	return &Checkpoint{Generation: int(hdr[2]), Queries: int64(hdr[3]), Search: search}, nil
}

// DecodeCheckpoint parses a checkpoint from its wire form.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	return LoadCheckpoint(bytes.NewReader(b))
}

// InspectResumable is InspectProgress with checkpoint support: onCheckpoint
// (when non-nil) fires after every completed CMA-ES generation with a
// snapshot that, passed back as resume, continues the inspection bit-exactly
// — same prompt θ, same verdict, same total query count — after a process
// restart. A crash after the search finished but before the verdict was
// recorded simply redoes the feature-extraction queries from the
// final-generation snapshot, which replays the identical query stream.
// Checkpointing does not perturb the RNG streams or the query sequence, so
// an uninterrupted run with hooks is bit-identical to Inspect.
func (d *Detector) InspectResumable(ctx context.Context, sus oracle.Oracle, inspectID int, onProgress func(Progress), onCheckpoint func(*Checkpoint), resume *Checkpoint) (Verdict, error) {
	counter := oracle.NewCounter(sus)
	if resume != nil {
		if resume.Search == nil {
			return Verdict{}, fmt.Errorf("bprom: resume checkpoint has no search state")
		}
		counter.Add(resume.Queries)
	}
	r := rng.New(d.seed).Split("inspect", inspectID)
	prompt, err := vp.NewPrompt(d.prompt.source, d.extTrain.Shape, d.prompt.frac)
	if err != nil {
		return Verdict{}, err
	}
	bb := d.blackBox
	if resume != nil {
		bb.Resume = resume.Search
	}
	if onCheckpoint != nil {
		bb.OnCheckpoint = func(st *vp.SearchState) {
			onCheckpoint(&Checkpoint{Generation: st.CMA.Iter, Queries: counter.Queries(), Search: st})
		}
	}
	var reported int64
	if onProgress != nil {
		gens := bb.Generations()
		bb.OnGeneration = func(gen int) {
			q := counter.Queries()
			onProgress(Progress{Generation: gen, Generations: gens, Queries: q, QueriesDelta: q - reported})
			reported = q
		}
		first := Progress{Generations: gens}
		if resume != nil {
			first.Generation = resume.Generation
			first.Queries = resume.Queries
			reported = resume.Queries
		}
		onProgress(first)
	}
	// Error paths still report Queries: a failed job's structured error
	// envelope carries the spend exactly as oracle.Counter metered it.
	if err := vp.TrainBlackBox(ctx, counter, prompt, d.extTrain, bb, r); err != nil {
		return Verdict{Queries: counter.Queries()}, fmt.Errorf("bprom: black-box prompting: %w", err)
	}
	pm := &vp.Prompted{Oracle: counter, Prompt: prompt}
	acc, err := pm.Accuracy(ctx, d.external)
	if err != nil {
		return Verdict{Queries: counter.Queries()}, err
	}
	feats, err := confidenceFeatures(ctx, counter, prompt, d.external, d.queryIdx)
	if err != nil {
		return Verdict{Queries: counter.Queries()}, err
	}
	score, err := d.forest.Score(feats)
	if err != nil {
		return Verdict{Queries: counter.Queries()}, err
	}
	if onProgress != nil {
		gens := bb.Generations()
		q := counter.Queries()
		onProgress(Progress{Generation: gens, Generations: gens, Queries: q, QueriesDelta: q - reported})
	}
	return Verdict{
		Score:       score,
		Threshold:   d.threshold,
		Backdoored:  score >= d.threshold,
		PromptedAcc: acc,
		Queries:     counter.Queries(),
	}, nil
}
