package bprom

import (
	"fmt"

	"bprom/internal/vp"
)

// Screener derives an inline request screener from this detector: a
// vp.Screener over the element-wise mean θ of the shadow prompts persisted
// in the artifact. The shadows were prompted on the same canvas geometry
// against the same external task, so their borders agree on where the
// prompt must carry signal; averaging them gives one serving-time prompt
// without re-querying anything. threshold is the flagging cutoff in (0,1];
// non-positive means vp.DefaultScreenThreshold (the screening score is a
// different observable than the detector's model-level meta-score, so the
// artifact's OOB threshold does not transfer).
//
// This works on any loaded artifact — shadow MODELS are not persisted, but
// shadow prompts are, and screening needs only the prompts.
func (d *Detector) Screener(threshold float64) (*vp.Screener, error) {
	var mean *vp.Prompt
	count := 0
	for i := range d.Shadows {
		p := d.Shadows[i].Prompt
		if p == nil {
			continue
		}
		if mean == nil {
			mean = p.Clone()
			count = 1
			continue
		}
		if p.Source != mean.Source || p.Inner != mean.Inner || p.Dim() != mean.Dim() {
			return nil, fmt.Errorf("bprom: shadow %d prompt geometry %+v/%d differs from %+v/%d",
				i, p.Source, p.Inner, mean.Source, mean.Inner)
		}
		for j, v := range p.Theta {
			mean.Theta[j] += v
		}
		count++
	}
	if mean == nil {
		return nil, fmt.Errorf("bprom: detector carries no shadow prompts to screen with")
	}
	if count > 1 {
		inv := 1 / float64(count)
		for j := range mean.Theta {
			mean.Theta[j] *= inv
		}
	}
	return vp.NewScreener(mean, threshold)
}
