package bprom

import (
	"context"
	"testing"

	"bprom/internal/attack"
	"bprom/internal/oracle"
)

// TestInspectResumableBitExact interrupts an inspection at a mid-run
// checkpoint (by replaying the captured snapshot through a fresh call) and
// asserts the resumed verdict — score, prompted accuracy, and total query
// count — is bit-identical to the uninterrupted run, across a round-trip
// through the binary checkpoint encoding.
func TestInspectResumableBitExact(t *testing.T) {
	e := sharedEnv(t)
	ctx := context.Background()
	sus := trainSus(t, e, &attack.Config{Kind: attack.BadNets, PoisonRate: 0.20}, 7)

	var checkpoints []*Checkpoint
	ref, err := e.det.InspectResumable(ctx, oracle.NewModelOracle(sus), 3, nil,
		func(c *Checkpoint) { checkpoints = append(checkpoints, c) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(checkpoints) == 0 {
		t.Fatal("no checkpoints captured")
	}
	plain, err := e.det.Inspect(ctx, oracle.NewModelOracle(sus), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ref != plain {
		t.Fatalf("checkpoint hooks perturbed the verdict: %+v vs %+v", ref, plain)
	}

	for _, pick := range []int{0, len(checkpoints) / 2, len(checkpoints) - 1} {
		blob, err := checkpoints[pick].Encode()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := DecodeCheckpoint(blob)
		if err != nil {
			t.Fatal(err)
		}
		if restored.Generation != checkpoints[pick].Generation || restored.Queries != checkpoints[pick].Queries {
			t.Fatalf("checkpoint round-trip drifted: %d/%d vs %d/%d",
				restored.Generation, restored.Queries, checkpoints[pick].Generation, checkpoints[pick].Queries)
		}
		got, err := e.det.InspectResumable(ctx, oracle.NewModelOracle(sus), 3, nil, nil, restored)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("resume from generation %d diverged: %+v vs %+v", restored.Generation, got, ref)
		}
	}
}

// TestInspectResumableProgressAfterResume checks the progress stream of a
// resumed run starts at the checkpointed generation and query spend.
func TestInspectResumableProgressAfterResume(t *testing.T) {
	e := sharedEnv(t)
	ctx := context.Background()
	sus := trainSus(t, e, nil, 9)

	var mid *Checkpoint
	if _, err := e.det.InspectResumable(ctx, oracle.NewModelOracle(sus), 4, nil,
		func(c *Checkpoint) {
			if mid == nil {
				mid = c
			}
		}, nil); err != nil {
		t.Fatal(err)
	}
	var first *Progress
	var progress []Progress
	if _, err := e.det.InspectResumable(ctx, oracle.NewModelOracle(sus), 4, func(p Progress) {
		if first == nil {
			cp := p
			first = &cp
		}
		progress = append(progress, p)
	}, nil, mid); err != nil {
		t.Fatal(err)
	}
	if first == nil || first.Generation != mid.Generation || first.Queries != mid.Queries {
		t.Fatalf("resumed progress started at %+v, want generation %d queries %d", first, mid.Generation, mid.Queries)
	}
	// Deltas after resume must account only for freshly spent queries.
	total := mid.Queries
	for _, p := range progress[1:] {
		total += p.QueriesDelta
		if p.Queries != total {
			t.Fatalf("query delta stream inconsistent at %+v (running total %d)", p, total)
		}
	}
}

// TestDecodeCheckpointRejectsGarbage pins the magic/version guard.
func TestDecodeCheckpointRejectsGarbage(t *testing.T) {
	if _, err := DecodeCheckpoint([]byte("not a checkpoint blob, definitely")); err == nil {
		t.Fatal("expected error for garbage blob")
	}
	if _, err := DecodeCheckpoint(nil); err == nil {
		t.Fatal("expected error for empty blob")
	}
}
