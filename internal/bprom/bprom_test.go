package bprom

import (
	"context"
	"sync"
	"testing"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/metric"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/trainer"
)

type env struct {
	srcTrain, srcTest *data.Dataset
	tgtTrain, tgtTest *data.Dataset
	det               *Detector
}

var (
	envOnce sync.Once
	shared  *env
)

// sharedEnv trains one detector reused by the tests below (detector
// training is the expensive part).
func sharedEnv(t *testing.T) *env {
	t.Helper()
	envOnce.Do(func() {
		ctx := context.Background()
		srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
		srcTrain, srcTest := srcGen.GenerateSplit(40, 120, rng.New(2))
		tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
		tgtTrain, tgtTest := tgtGen.GenerateSplit(15, 8, rng.New(4))
		det, err := Train(ctx, Config{
			Reserved:      srcTest.Reserve(0.10, rng.New(5)),
			ExternalTrain: tgtTrain,
			ExternalTest:  tgtTest,
			NumClean:      5,
			NumBackdoor:   5,
			ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 24},
			ShadowTrain:   trainer.Config{Epochs: 12},
			ShadowAttack:  attack.Config{Kind: attack.BadNets, PoisonRate: 0.20},
			Seed:          42,
		})
		if err != nil {
			panic(err)
		}
		shared = &env{srcTrain: srcTrain, srcTest: srcTest, tgtTrain: tgtTrain, tgtTest: tgtTest, det: det}
	})
	return shared
}

func trainSus(t *testing.T, e *env, poisonCfg *attack.Config, seed uint64) *nn.Model {
	t.Helper()
	ctx := context.Background()
	ds := e.srcTrain
	if poisonCfg != nil {
		poisoned, _, err := attack.Poison(e.srcTrain, *poisonCfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		ds = poisoned
	}
	m, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchConvLite, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
		NumClasses: ds.Classes, Hidden: 24,
	}, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Train(ctx, m, ds, trainer.Config{Epochs: 12}, rng.New(seed+2)); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainProducesBalancedShadows(t *testing.T) {
	e := sharedEnv(t)
	var clean, bd int
	for _, s := range e.det.Shadows {
		if s.Backdoor {
			bd++
		} else {
			clean++
		}
		if len(s.Features) == 0 {
			t.Fatal("shadow has no meta-features")
		}
		if s.PromptedAcc < 0 || s.PromptedAcc > 1 {
			t.Fatalf("prompted accuracy %v out of range", s.PromptedAcc)
		}
	}
	if clean != 5 || bd != 5 {
		t.Fatalf("shadow counts %d/%d, want 5/5", clean, bd)
	}
	// All shadows share the feature layout required by the forest.
	for _, s := range e.det.Shadows[1:] {
		if len(s.Features) != len(e.det.Shadows[0].Features) {
			t.Fatal("inconsistent meta-feature widths")
		}
	}
}

func TestDetectionSeparatesBackdooredModels(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a battery of suspicious models")
	}
	e := sharedEnv(t)
	ctx := context.Background()
	var scores []float64
	var labels []bool
	id := 0
	for s := uint64(0); s < 4; s++ {
		m := trainSus(t, e, nil, 100+s*7)
		v, err := e.det.Inspect(ctx, oracle.NewModelOracle(m), id)
		if err != nil {
			t.Fatal(err)
		}
		id++
		scores = append(scores, v.Score)
		labels = append(labels, false)
		if v.Queries == 0 {
			t.Fatal("inspection made no oracle queries")
		}
	}
	for _, kind := range []attack.Kind{attack.BadNets, attack.Blend} {
		for s := uint64(0); s < 2; s++ {
			cfg := attack.Config{Kind: kind, PoisonRate: 0.20, Target: int(s*3 + 1), Seed: 50 + s}
			m := trainSus(t, e, &cfg, 200+s*11)
			v, err := e.det.Inspect(ctx, oracle.NewModelOracle(m), id)
			if err != nil {
				t.Fatal(err)
			}
			id++
			scores = append(scores, v.Score)
			labels = append(labels, true)
		}
	}
	auc, err := metric.AUROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("detection AUROC = %.3f (scores %v)", auc, scores)
	if auc < 0.7 {
		t.Errorf("detection AUROC %.3f below 0.7", auc)
	}
}

func TestInspectDeterministic(t *testing.T) {
	e := sharedEnv(t)
	ctx := context.Background()
	m := trainSus(t, e, nil, 300)
	v1, err := e.det.Inspect(ctx, oracle.NewModelOracle(m), 7)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.det.Inspect(ctx, oracle.NewModelOracle(m), 7)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Score != v2.Score || v1.PromptedAcc != v2.PromptedAcc {
		t.Fatalf("inspection not reproducible: %+v vs %+v", v1, v2)
	}
}

func TestTrainValidation(t *testing.T) {
	ctx := context.Background()
	tgt := data.NewGenerator(data.MustSpec(data.STL10), 1).Generate(2, rng.New(1))
	if _, err := Train(ctx, Config{}); err == nil {
		t.Fatal("expected error for missing DS")
	}
	small := data.NewGenerator(data.MustSpec(data.CIFAR10), 2).Generate(2, rng.New(2))
	if _, err := Train(ctx, Config{Reserved: small}); err == nil {
		t.Fatal("expected error for missing DT")
	}
	// external task with more classes than the source domain
	big := data.NewGenerator(data.MustSpec(data.GTSRB), 3).Generate(1, rng.New(3))
	if _, err := Train(ctx, Config{Reserved: small, ExternalTrain: big, ExternalTest: big}); err == nil {
		t.Fatal("expected error for class-count mismatch")
	}
	_ = tgt
}

func TestTrainRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := data.NewGenerator(data.MustSpec(data.CIFAR10), 4).Generate(12, rng.New(4))
	tgt := data.NewGenerator(data.MustSpec(data.STL10), 5).Generate(6, rng.New(5))
	_, err := Train(ctx, Config{
		Reserved: src, ExternalTrain: tgt, ExternalTest: tgt,
		NumClean: 1, NumBackdoor: 1,
		ShadowArch:  nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 8},
		ShadowTrain: trainer.Config{Epochs: 1},
	})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestScoreModelMatchesInspect(t *testing.T) {
	e := sharedEnv(t)
	ctx := context.Background()
	m := trainSus(t, e, nil, 400)
	v, err := e.det.Inspect(ctx, oracle.NewModelOracle(m), 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.det.ScoreModel(ctx, oracle.NewModelOracle(m), 9)
	if err != nil {
		t.Fatal(err)
	}
	if s != v.Score {
		t.Fatalf("ScoreModel %v != Inspect score %v", s, v.Score)
	}
}

// TestInspectSerialBatchedParity is the end-to-end bit-parity gate for the
// generation-batched evaluator: a detector forced onto the legacy
// per-candidate evaluation path must produce the byte-identical verdict —
// score, prompted accuracy, AND total query count — as the default fused
// path. Combined with the golden-artifact test (whose committed score the
// batched path must keep reproducing), this locks the optimization out of
// the observable behavior.
func TestInspectSerialBatchedParity(t *testing.T) {
	e := sharedEnv(t)
	ctx := context.Background()
	m := trainSus(t, e, nil, 600)

	batched, err := e.det.Inspect(ctx, oracle.NewModelOracle(m), 13)
	if err != nil {
		t.Fatal(err)
	}
	serialDet := *e.det // shallow copy: Inspect only reads detector state
	serialDet.blackBox.SerialEval = true
	serial, err := serialDet.Inspect(ctx, oracle.NewModelOracle(m), 13)
	if err != nil {
		t.Fatal(err)
	}
	if batched != serial {
		t.Fatalf("batched verdict %+v != serial verdict %+v", batched, serial)
	}
	if batched.Queries == 0 {
		t.Fatal("inspection made no oracle queries")
	}
}

// TestProgressQueryDeltas asserts the per-generation spend reporting: the
// deltas must be positive for every completed generation and sum to the
// final cumulative query count.
func TestProgressQueryDeltas(t *testing.T) {
	e := sharedEnv(t)
	ctx := context.Background()
	m := trainSus(t, e, nil, 700)
	var snaps []Progress
	v, err := e.det.InspectProgress(ctx, oracle.NewModelOracle(m), 17, func(p Progress) {
		snaps = append(snaps, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 3 {
		t.Fatalf("only %d progress snapshots", len(snaps))
	}
	var sum int64
	for i, p := range snaps {
		if i == 0 {
			if p.Generation != 0 || p.Queries != 0 || p.QueriesDelta != 0 {
				t.Fatalf("initial snapshot not zeroed: %+v", p)
			}
			continue
		}
		if p.QueriesDelta <= 0 {
			t.Fatalf("snapshot %d has non-positive delta: %+v", i, p)
		}
		if p.Queries != snaps[i-1].Queries+p.QueriesDelta {
			t.Fatalf("snapshot %d delta inconsistent with cumulative count: %+v after %+v", i, p, snaps[i-1])
		}
		sum += p.QueriesDelta
	}
	if sum != v.Queries {
		t.Fatalf("deltas sum to %d, verdict reports %d queries", sum, v.Queries)
	}
	// Every mid-run snapshot's delta is one fused generation: λ×k rows.
	final := snaps[len(snaps)-1]
	if final.Queries != v.Queries || final.Generation != final.Generations {
		t.Fatalf("final snapshot %+v inconsistent with verdict %+v", final, v)
	}
}
