// Package bprom implements the paper's contribution: black-box model-level
// backdoor detection via visual prompting (Algorithm 1).
//
// Training (defender side, offline):
//  1. Generate shadow models — n clean models trained on the reserved clean
//     dataset DS with different initializations, and M-n backdoor models
//     trained on poisoned copies of DS with randomly drawn trigger
//     parameters (m, t, α, y_t) of a single attack family.
//  2. Prompt every shadow model on the external clean dataset DT
//     (white-box: the defender owns the shadows, so θ is learned by
//     backpropagation).
//  3. Query each prompted shadow with the fixed sample set DQ ⊂ DT_test and
//     train the random-forest meta-classifier on the concatenated
//     confidence vectors, labelled clean / backdoor.
//
// Detection (online, black-box): prompt the suspicious oracle with CMA-ES
// (queries only), collect its DQ confidence vectors, and let the
// meta-classifier decide. Low prompted accuracy — the class-subspace
// inconsistency signature — manifests in those vectors.
package bprom

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/meta"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/trainer"
	"bprom/internal/vp"
)

// Config assembles everything Algorithm 1 needs.
type Config struct {
	// Reserved is DS — the defender's small clean slice of the suspicious
	// model's domain (1–10% of its test set in the paper).
	Reserved *data.Dataset
	// ExternalTrain / ExternalTest are DT's splits: the unrelated clean
	// dataset used for prompting (STL-10 in the paper).
	ExternalTrain, ExternalTest *data.Dataset

	// NumClean (n) and NumBackdoor (M-n) are the shadow-model counts.
	// Default 10+10 — the count at which the paper's Table 7 plateaus.
	NumClean, NumBackdoor int

	// ShadowArch configures the shadow architecture. Classes/geometry are
	// overridden from Reserved.
	ShadowArch nn.ArchConfig
	// ShadowTrain configures shadow training.
	ShadowTrain trainer.Config

	// ShadowAttack is the single attack family used to poison shadow
	// datasets (BPROM needs only one; §5.3). Target class and trigger seed
	// are re-drawn per shadow model. Zero value selects BadNets at 10%.
	ShadowAttack attack.Config

	// PromptFrac sizes the prompt's inner window. Default 0.83.
	PromptFrac float64
	// WhiteBox configures shadow prompting.
	WhiteBox vp.WhiteBoxConfig
	// BlackBox configures suspicious-model prompting.
	BlackBox vp.BlackBoxConfig

	// QuerySamples is q = |DQ|. Default 30.
	QuerySamples int
	// Forest configures the meta-classifier.
	Forest meta.TrainConfig

	// Seed makes the whole pipeline reproducible.
	Seed uint64
	// Parallelism bounds concurrent shadow training (default GOMAXPROCS).
	// Shadow trainings are independent models, so they run concurrently;
	// the tensor kernels inside each share the process-wide worker pool,
	// which keeps total CPU use bounded however high this is set.
	Parallelism int
}

func (c *Config) defaults() error {
	if c.Reserved == nil || c.Reserved.Len() == 0 {
		return fmt.Errorf("bprom: missing reserved clean dataset DS")
	}
	if c.ExternalTrain == nil || c.ExternalTrain.Len() == 0 || c.ExternalTest == nil || c.ExternalTest.Len() == 0 {
		return fmt.Errorf("bprom: missing external dataset DT")
	}
	if c.ExternalTrain.Classes > c.Reserved.Classes {
		return fmt.Errorf("bprom: external task has %d classes, source domain only %d (identity mapping impossible)",
			c.ExternalTrain.Classes, c.Reserved.Classes)
	}
	if c.NumClean <= 0 {
		c.NumClean = 10
	}
	if c.NumBackdoor <= 0 {
		c.NumBackdoor = 10
	}
	if c.ShadowAttack.Kind == "" {
		c.ShadowAttack = attack.Config{Kind: attack.BadNets, PoisonRate: 0.10}
	}
	if c.PromptFrac <= 0 {
		c.PromptFrac = 0.83
	}
	if c.QuerySamples <= 0 {
		c.QuerySamples = 30
	}
	if c.QuerySamples > c.ExternalTest.Len() {
		c.QuerySamples = c.ExternalTest.Len()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	c.ShadowArch.C = c.Reserved.Shape.C
	c.ShadowArch.H = c.Reserved.Shape.H
	c.ShadowArch.W = c.Reserved.Shape.W
	c.ShadowArch.NumClasses = c.Reserved.Classes
	return nil
}

// Shadow is one trained + prompted shadow model with its meta-features.
type Shadow struct {
	Model    *nn.Model
	Prompt   *vp.Prompt
	Backdoor bool
	// Features is the concatenated DQ confidence vector v_i.
	Features []float64
	// PromptedAcc is the prompted model's accuracy on DT_test — the
	// class-subspace-inconsistency observable (Tables 2–4).
	PromptedAcc float64
}

// Detector is a trained BPROM instance.
type Detector struct {
	forest    *meta.Forest
	threshold float64 // OOB-calibrated decision threshold
	queryIdx  []int
	external  *data.Dataset // DT test split (DQ source)
	extTrain  *data.Dataset
	prompt    promptGeometry
	blackBox  vp.BlackBoxConfig
	seed      uint64

	// Shadows are retained for analysis (Figure 5 PCA, ablations).
	Shadows []Shadow
}

type promptGeometry struct {
	source data.Shape
	frac   float64
}

// Train runs Algorithm 1 lines 1–25 and returns a ready Detector.
func Train(ctx context.Context, cfg Config) (*Detector, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	m := cfg.NumClean + cfg.NumBackdoor
	shadows := make([]Shadow, m)
	errs := make([]error, m)

	// Shadow generation + prompting, parallel across models. Every shadow
	// derives its own RNG stream from (seed, index), so results do not
	// depend on goroutine scheduling.
	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			shadows[i], errs[i] = trainShadow(ctx, cfg, root.Split("shadow", i), i >= cfg.NumClean)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bprom: shadow %d: %w", i, err)
		}
	}

	// DQ: q fixed random samples from DT_test (line 14).
	queryIdx := root.Split("dq").Sample(cfg.ExternalTest.Len(), cfg.QuerySamples)

	// Meta-features: v_i = (f̃_i(x¹_Q) || ... || f̃_i(x^q_Q)) (lines 16–24).
	rows := make([][]float64, m)
	labels := make([]bool, m)
	for i := range shadows {
		feats, err := confidenceFeatures(ctx, oracle.NewModelOracle(shadows[i].Model), shadows[i].Prompt, cfg.ExternalTest, queryIdx)
		if err != nil {
			return nil, fmt.Errorf("bprom: meta-features for shadow %d: %w", i, err)
		}
		shadows[i].Features = feats
		rows[i] = feats
		labels[i] = shadows[i].Backdoor
	}
	forest, err := meta.Train(rows, labels, cfg.Forest, root.Split("forest"))
	if err != nil {
		return nil, fmt.Errorf("bprom: meta-classifier: %w", err)
	}
	// Calibrate the decision threshold from out-of-bag shadow scores: the
	// forest's raw scores compress on suspicious models trained outside the
	// shadow distribution, so a fixed 0.5 cut misclassifies. The midpoint of
	// the mean OOB clean and backdoor scores is an unbiased operating point.
	threshold := 0.5
	if oob, err := forest.OOBScores(rows); err == nil {
		var cSum, bSum float64
		var cN, bN int
		for i, s := range oob {
			if labels[i] {
				bSum += s
				bN++
			} else {
				cSum += s
				cN++
			}
		}
		if cN > 0 && bN > 0 {
			mid := (cSum/float64(cN) + bSum/float64(bN)) / 2
			if mid > 0 && mid < 1 {
				threshold = mid
			}
		}
	}
	return &Detector{
		forest:    forest,
		threshold: threshold,
		queryIdx:  queryIdx,
		external:  cfg.ExternalTest,
		extTrain:  cfg.ExternalTrain,
		prompt:    promptGeometry{source: cfg.Reserved.Shape, frac: cfg.PromptFrac},
		blackBox:  cfg.BlackBox,
		seed:      cfg.Seed,
		Shadows:   shadows,
	}, nil
}

func trainShadow(ctx context.Context, cfg Config, r *rng.RNG, backdoor bool) (Shadow, error) {
	ds := cfg.Reserved
	atk := cfg.ShadowAttack
	if backdoor {
		// Redraw the trigger parameters (m, t, α, y_t) per shadow: random
		// target class and pattern seed (§5.2 step 3).
		atk.Target = r.Intn(ds.Classes - max(0, atk.NumTargets-1))
		atk.Seed = r.Uint64()
		poisoned, _, err := attack.Poison(ds, atk, r.Split("poison"))
		if err != nil {
			return Shadow{}, fmt.Errorf("poisoning shadow dataset: %w", err)
		}
		ds = poisoned
	}
	model, err := nn.Build(cfg.ShadowArch, r.Split("init"))
	if err != nil {
		return Shadow{}, err
	}
	if _, err := trainer.Train(ctx, model, ds, cfg.ShadowTrain, r.Split("train")); err != nil {
		return Shadow{}, err
	}
	prompt, err := vp.NewPrompt(cfg.Reserved.Shape, cfg.ExternalTrain.Shape, cfg.PromptFrac)
	if err != nil {
		return Shadow{}, err
	}
	if err := vp.TrainWhiteBox(ctx, model, prompt, cfg.ExternalTrain, cfg.WhiteBox, r.Split("prompt")); err != nil {
		return Shadow{}, err
	}
	pm := &vp.Prompted{Oracle: oracle.NewModelOracle(model), Prompt: prompt}
	acc, err := pm.Accuracy(ctx, cfg.ExternalTest)
	if err != nil {
		return Shadow{}, err
	}
	return Shadow{Model: model, Prompt: prompt, Backdoor: backdoor, PromptedAcc: acc}, nil
}

// confidenceFeatures builds the meta-feature vector v_i from the prompted
// model's DQ confidence vectors. The paper concatenates the raw vectors;
// at our shadow-model counts the forest additionally benefits from explicit
// sufficient statistics of the SAME black-box data (documented deviation,
// DESIGN.md): per-query entropy / max / correct-class confidence, the mean
// per-class mass, and four scalar aggregates. High prompted-confidence
// entropy is the black-box footprint of class-subspace inconsistency — the
// poisoned target subspace borders every other subspace, keeping softmax
// mass spread.
func confidenceFeatures(ctx context.Context, o oracle.Oracle, p *vp.Prompt, ds *data.Dataset, queryIdx []int) ([]float64, error) {
	pm := &vp.Prompted{Oracle: o, Prompt: p}
	probs, err := pm.Confidences(ctx, ds, queryIdx)
	if err != nil {
		return nil, err
	}
	q := len(queryIdx)
	k := probs.Dim(1)
	feats := make([]float64, 0, q*(k+3)+k+4)
	feats = append(feats, probs.Data...)
	ents := make([]float64, q)
	maxes := make([]float64, q)
	corrects := make([]float64, q)
	classMass := make([]float64, k)
	accDQ := 0.0
	for i, qi := range queryIdx {
		row := probs.Data[i*k : (i+1)*k]
		ent, mx, argmax := 0.0, 0.0, 0
		for j, v := range row {
			classMass[j] += v / float64(q)
			if v > 0 {
				ent -= v * math.Log(v)
			}
			if v > mx {
				mx, argmax = v, j
			}
		}
		ents[i] = ent
		maxes[i] = mx
		corrects[i] = row[ds.Y[qi]]
		if argmax == ds.Y[qi] {
			accDQ++
		}
	}
	feats = append(feats, ents...)
	feats = append(feats, maxes...)
	feats = append(feats, corrects...)
	feats = append(feats, classMass...)
	feats = append(feats, mean(ents), mean(maxes), mean(corrects), accDQ/float64(q))
	return feats, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Verdict is the outcome of inspecting one suspicious model. The JSON tags
// are its wire form in the audit-job API (docs/API.md).
type Verdict struct {
	// Score is the meta-classifier's backdoor probability.
	Score float64 `json:"score"`
	// Threshold is the detector's OOB-calibrated decision threshold.
	Threshold float64 `json:"threshold"`
	// Backdoored reports Score >= Threshold.
	Backdoored bool `json:"backdoored"`
	// PromptedAcc is the black-box prompted accuracy on DT_test.
	PromptedAcc float64 `json:"prompted_acc"`
	// Queries counts oracle sample queries spent — the paper's black-box
	// query budget for one audit.
	Queries int64 `json:"queries"`
}

// Progress is a point-in-time snapshot of one running inspection: how far
// the CMA-ES prompt search has advanced and how many oracle sample queries
// the audit has spent so far. The JSON tags are its wire form in the
// audit-job API.
type Progress struct {
	// Generation counts completed CMA-ES generations (0 before the first).
	Generation int `json:"generation"`
	// Generations is the total generation budget.
	Generations int `json:"generations"`
	// Queries counts oracle sample queries spent so far.
	Queries int64 `json:"queries"`
	// QueriesDelta counts the queries spent since the previous progress
	// report — for a CMA-ES generation, the row count of that generation's
	// fused oracle call (λ×BatchSize on a full generation). It lets audit
	// watchers see per-generation spend without diffing snapshots.
	QueriesDelta int64 `json:"queries_delta"`
}

// Inspect prompts the suspicious oracle black-box (CMA-ES), extracts its DQ
// confidence vector and scores it with the meta-classifier. The RNG stream
// is derived from the detector seed and inspectID, so repeated inspections
// are reproducible and independent.
//
// Inspect only reads detector state, and every per-inspection workspace
// (prompt, query counter, RNG stream) is call-local, so one trained
// detector may audit any number of suspicious oracles concurrently — the
// fleet-audit mode of cmd/bprom does exactly that, one goroutine per
// hosted model.
func (d *Detector) Inspect(ctx context.Context, sus oracle.Oracle, inspectID int) (Verdict, error) {
	return d.InspectProgress(ctx, sus, inspectID, nil)
}

// InspectProgress is Inspect with a live progress hook: onProgress (when
// non-nil) is invoked once before prompting starts, after every completed
// CMA-ES generation, and once more when the meta-features are extracted.
// The hook runs on the inspection goroutine and must be fast; it must not
// query the oracle. Progress reporting does not perturb the RNG streams or
// the query sequence, so verdicts are bit-identical with or without a hook.
func (d *Detector) InspectProgress(ctx context.Context, sus oracle.Oracle, inspectID int, onProgress func(Progress)) (Verdict, error) {
	return d.InspectResumable(ctx, sus, inspectID, onProgress, nil, nil)
}

// ScoreModel adapts Inspect to the defense.ModelLevel convention (higher =
// more likely backdoored), for side-by-side evaluation with baselines.
func (d *Detector) ScoreModel(ctx context.Context, sus oracle.Oracle, inspectID int) (float64, error) {
	v, err := d.Inspect(ctx, sus, inspectID)
	if err != nil {
		return 0, err
	}
	return v.Score, nil
}
