package opt

import (
	"math"
	"testing"

	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// quadratic builds a single-parameter "model" whose loss is 0.5*||w - target||².
func quadParam(n int) *nn.Param {
	return &nn.Param{Name: "w", Value: tensor.New(n), Grad: tensor.New(n)}
}

func fillQuadGrad(p *nn.Param, target []float64) float64 {
	loss := 0.0
	for i := range p.Value.Data {
		d := p.Value.Data[i] - target[i]
		p.Grad.Data[i] = d
		loss += 0.5 * d * d
	}
	return loss
}

func converges(t *testing.T, o Optimizer, p *nn.Param, target []float64, steps int, tol float64) {
	t.Helper()
	for i := 0; i < steps; i++ {
		fillQuadGrad(p, target)
		o.Step()
		p.Grad.Zero()
	}
	for i := range target {
		if math.Abs(p.Value.Data[i]-target[i]) > tol {
			t.Fatalf("dim %d: %v, want %v (±%v)", i, p.Value.Data[i], target[i], tol)
		}
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := quadParam(5)
	rng.New(1).Gaussian(p.Value.Data, 0, 3)
	target := []float64{1, -2, 0.5, 3, -1}
	converges(t, NewSGD([]*nn.Param{p}, 0.3, 0, 0), p, target, 100, 1e-6)
}

func TestSGDMomentumConverges(t *testing.T) {
	p := quadParam(5)
	rng.New(2).Gaussian(p.Value.Data, 0, 3)
	target := []float64{1, -2, 0.5, 3, -1}
	converges(t, NewSGD([]*nn.Param{p}, 0.1, 0.9, 0), p, target, 200, 1e-5)
}

func TestAdamConverges(t *testing.T) {
	p := quadParam(5)
	rng.New(3).Gaussian(p.Value.Data, 0, 3)
	target := []float64{1, -2, 0.5, 3, -1}
	converges(t, NewAdam([]*nn.Param{p}, 0.2), p, target, 400, 1e-3)
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	p := quadParam(3)
	p.Value.Fill(10)
	s := NewSGD([]*nn.Param{p}, 0.1, 0, 0.5)
	// zero task gradient: only decay acts
	for i := 0; i < 50; i++ {
		s.Step()
	}
	for _, v := range p.Value.Data {
		if math.Abs(v) > 1 {
			t.Fatalf("weight decay failed to shrink weight: %v", v)
		}
	}
}

func TestSetLR(t *testing.T) {
	p := quadParam(1)
	s := NewSGD([]*nn.Param{p}, 0.1, 0, 0)
	s.SetLR(0.5)
	if s.LR() != 0.5 {
		t.Fatalf("LR = %v", s.LR())
	}
	a := NewAdam([]*nn.Param{p}, 0.1)
	a.SetLR(0.01)
	if a.LR() != 0.01 {
		t.Fatalf("Adam LR = %v", a.LR())
	}
}

func TestClipGradNorm(t *testing.T) {
	p := quadParam(4)
	copy(p.Grad.Data, []float64{3, 4, 0, 0}) // norm 5
	pre := ClipGradNorm([]*nn.Param{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v, want 5", pre)
	}
	norm := 0.0
	for _, g := range p.Grad.Data {
		norm += g * g
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-12 {
		t.Fatalf("post-clip norm %v, want 1", math.Sqrt(norm))
	}
}

func TestClipGradNormDisabled(t *testing.T) {
	p := quadParam(2)
	copy(p.Grad.Data, []float64{3, 4})
	ClipGradNorm([]*nn.Param{p}, 0)
	if p.Grad.Data[0] != 3 {
		t.Fatal("clip with maxNorm<=0 must be a no-op")
	}
}

func TestStepDecay(t *testing.T) {
	sched := StepDecay(1.0, 0.1, 5)
	if sched(0) != 1.0 || sched(4) != 1.0 {
		t.Fatal("decay before first interval")
	}
	if math.Abs(sched(5)-0.1) > 1e-12 || math.Abs(sched(10)-0.01) > 1e-12 {
		t.Fatalf("StepDecay wrong: %v %v", sched(5), sched(10))
	}
}

func TestCosineDecay(t *testing.T) {
	sched := CosineDecay(1.0, 0.1, 10)
	if sched(0) != 1.0 {
		t.Fatalf("cosine start %v", sched(0))
	}
	if got := sched(10); got != 0.1 {
		t.Fatalf("cosine end %v", got)
	}
	mid := sched(5)
	if mid <= 0.1 || mid >= 1.0 {
		t.Fatalf("cosine mid %v not between floor and base", mid)
	}
}

func TestSchedulePanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StepDecay(1, 0.5, 0)
}
