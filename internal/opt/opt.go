// Package opt provides the gradient-based optimizers used to train models
// and (in the white-box path) visual prompts: plain SGD, SGD with momentum,
// and Adam, plus global-norm gradient clipping and step-decay learning-rate
// schedules.
package opt

import (
	"fmt"
	"math"

	"bprom/internal/nn"
)

// Optimizer updates a fixed set of parameters from their accumulated
// gradients. Step consumes the gradients; callers zero them afterwards (the
// trainer does this).
type Optimizer interface {
	Step()
	// LR returns the current learning rate (after any schedule).
	LR() float64
	// SetLR overrides the base learning rate.
	SetLR(lr float64)
}

// SGD is stochastic gradient descent with optional momentum and weight decay.
type SGD struct {
	params   []*nn.Param
	lr       float64
	momentum float64
	decay    float64 // L2 weight decay coefficient
	velocity [][]float64
}

var _ Optimizer = (*SGD)(nil)

// NewSGD constructs an SGD optimizer over params.
func NewSGD(params []*nn.Param, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum, decay: weightDecay}
	if momentum > 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, p.Value.Len())
		}
	}
	return s
}

func (s *SGD) Step() {
	for i, p := range s.params {
		v := p.Value.Data
		g := p.Grad.Data
		if s.momentum > 0 {
			vel := s.velocity[i]
			for j := range v {
				grad := g[j] + s.decay*v[j]
				vel[j] = s.momentum*vel[j] - s.lr*grad
				v[j] += vel[j]
			}
		} else {
			for j := range v {
				v[j] -= s.lr * (g[j] + s.decay*v[j])
			}
		}
	}
}

func (s *SGD) LR() float64      { return s.lr }
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// Adam implements the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	params []*nn.Param
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	m, v   [][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam constructs Adam with the canonical defaults β1=0.9, β2=0.999.
func NewAdam(params []*nn.Param, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, p.Value.Len())
		a.v[i] = make([]float64, p.Value.Len())
	}
	return a
}

func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		val := p.Value.Data
		g := p.Grad.Data
		m, v := a.m[i], a.v[i]
		for j := range val {
			m[j] = a.beta1*m[j] + (1-a.beta1)*g[j]
			v[j] = a.beta2*v[j] + (1-a.beta2)*g[j]*g[j]
			mh := m[j] / c1
			vh := v[j] / c2
			val[j] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
		}
	}
}

func (a *Adam) LR() float64      { return a.lr }
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// ClipGradNorm rescales all gradients so their concatenated L2 norm is at
// most maxNorm, returning the pre-clip norm. maxNorm <= 0 disables clipping.
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.Grad.Scale(scale)
	}
	return norm
}

// StepDecay returns a schedule that multiplies the base LR by factor every
// interval epochs. Apply it at the start of each epoch:
//
//	optimizer.SetLR(schedule(epoch))
func StepDecay(base, factor float64, interval int) func(epoch int) float64 {
	if interval <= 0 {
		panic(fmt.Sprintf("opt: StepDecay interval must be positive, got %d", interval))
	}
	return func(epoch int) float64 {
		return base * math.Pow(factor, float64(epoch/interval))
	}
}

// CosineDecay returns a schedule annealing from base to floor over total
// epochs with the half-cosine shape.
func CosineDecay(base, floor float64, total int) func(epoch int) float64 {
	if total <= 0 {
		panic(fmt.Sprintf("opt: CosineDecay total must be positive, got %d", total))
	}
	return func(epoch int) float64 {
		if epoch >= total {
			return floor
		}
		frac := float64(epoch) / float64(total)
		return floor + (base-floor)*0.5*(1+math.Cos(math.Pi*frac))
	}
}
