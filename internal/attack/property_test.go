package attack

import (
	"testing"
	"testing/quick"

	"bprom/internal/data"
	"bprom/internal/rng"
)

// Property-based checks on the poisoning pipeline and triggers, exercising
// random shapes, rates and seeds beyond the fixed-value tests.

func TestPoisonRateHonoredProperty(t *testing.T) {
	f := func(seed uint64, rawRate uint8, rawTarget uint8) bool {
		clean := data.NewGenerator(data.MustSpec(data.CIFAR10), seed%8).Generate(12, rng.New(seed))
		rate := 0.05 + float64(rawRate%40)/100 // 5%..44%
		cfg := Config{Kind: BadNets, PoisonRate: rate, Target: int(rawTarget) % 10, Seed: seed}
		poisoned, info, err := Poison(clean, cfg, rng.New(seed+1))
		if err != nil {
			return false
		}
		want := int(rate * float64(clean.Len()))
		if want < 1 {
			want = 1
		}
		// nPoison is capped by the eligible pool; with <=44% rates and 10
		// balanced classes the pool (90% of samples) is never the binding
		// constraint here.
		if info.NumPoisoned != want {
			return false
		}
		flipped := 0
		for i := range poisoned.Y {
			if info.IsPoisoned[i] {
				flipped++
			}
		}
		return flipped == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStampPreservesRangeProperty(t *testing.T) {
	kinds := AllKinds()
	f := func(seed uint64, kindIdx, sampleID, variant uint8) bool {
		kind := kinds[int(kindIdx)%len(kinds)]
		sh := data.Shape{C: 3, H: 12, W: 12}
		src := make([]float64, sh.Dim())
		rng.New(seed).Uniform(src, 0, 1)
		trig, err := MakeTrigger(Config{Kind: kind, PoisonRate: 0.1, Seed: seed}, sh)
		if err != nil {
			return false
		}
		dst := make([]float64, len(src))
		for _, full := range []bool{false, true} {
			trig.Stamp(dst, src, sh, int(sampleID), int(variant)%3, full)
			for _, v := range dst {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStampDoesNotReadDst(t *testing.T) {
	// Stamp must fully overwrite dst regardless of its prior contents.
	sh := data.Shape{C: 3, H: 12, W: 12}
	src := make([]float64, sh.Dim())
	rng.New(1).Uniform(src, 0, 1)
	for _, kind := range AllKinds() {
		trig, err := MakeTrigger(Config{Kind: kind, PoisonRate: 0.1, Seed: 2}, sh)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]float64, len(src))
		b := make([]float64, len(src))
		for i := range b {
			b[i] = 0.777 // garbage prior contents
		}
		trig.Stamp(a, src, sh, 3, 0, true)
		trig.Stamp(b, src, sh, 3, 0, true)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: Stamp output depends on dst's prior contents", kind)
			}
		}
	}
}

func TestTriggerSeedChangesPattern(t *testing.T) {
	// Different Config.Seed draws must yield different trigger patterns —
	// the property BPROM's shadow diversity relies on.
	sh := data.Shape{C: 3, H: 12, W: 12}
	src := make([]float64, sh.Dim())
	rng.New(4).Uniform(src, 0.3, 0.7)
	for _, kind := range []Kind{Blend, Trojan, Dynamic, Refool, PoisonInk, LC} {
		t1, err := MakeTrigger(Config{Kind: kind, PoisonRate: 0.1, Seed: 1}, sh)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := MakeTrigger(Config{Kind: kind, PoisonRate: 0.1, Seed: 2}, sh)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]float64, len(src))
		b := make([]float64, len(src))
		t1.Stamp(a, src, sh, 0, 0, true)
		t2.Stamp(b, src, sh, 0, 0, true)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 produced identical triggers", kind)
		}
	}
}

func TestVariantsDiffer(t *testing.T) {
	// Multi-target backdoors need per-target trigger variants.
	sh := data.Shape{C: 3, H: 12, W: 12}
	src := make([]float64, sh.Dim())
	rng.New(5).Uniform(src, 0.3, 0.7)
	for _, kind := range []Kind{BadNets, Blend, Trojan, WaNet} {
		trig, err := MakeTrigger(Config{Kind: kind, PoisonRate: 0.1, Seed: 6}, sh)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]float64, len(src))
		b := make([]float64, len(src))
		trig.Stamp(a, src, sh, 0, 0, true)
		trig.Stamp(b, src, sh, 0, 1, true)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: variants 0 and 1 produced identical triggers", kind)
		}
	}
}

func TestCleanLabelPoolRestrictedToTarget(t *testing.T) {
	clean := data.NewGenerator(data.MustSpec(data.CIFAR10), 7).Generate(15, rng.New(7))
	for _, kind := range []Kind{SIG, LC} {
		cfg := Config{Kind: kind, PoisonRate: 0.05, Target: 4, Seed: 8}
		poisoned, info, err := Poison(clean, cfg, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		for i := range poisoned.Y {
			if info.IsPoisoned[i] && clean.Y[i] != 4 {
				t.Fatalf("%s: poisoned a sample of class %d, target is 4", kind, clean.Y[i])
			}
		}
	}
}

func TestTriggeredTestSetAllToAll(t *testing.T) {
	test := data.NewGenerator(data.MustSpec(data.CIFAR10), 10).Generate(5, rng.New(10))
	cfg := Config{Kind: BadNets, PoisonRate: 0.1, AllToAll: true}
	trigSet, err := TriggeredTestSet(test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// all-to-all keeps every sample (no target class to exclude) and labels
	// them y+1 mod K.
	if trigSet.Len() != test.Len() {
		t.Fatalf("all-to-all kept %d of %d samples", trigSet.Len(), test.Len())
	}
}
