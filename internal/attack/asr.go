package attack

import (
	"fmt"

	"bprom/internal/data"
	"bprom/internal/nn"
)

// TriggeredTestSet stamps the full-strength trigger on every test sample
// whose label is outside the target range and relabels it to its assigned
// target; the result is the standard ASR evaluation set. The returned
// dataset contains only eligible (originally non-target) samples.
func TriggeredTestSet(test *data.Dataset, cfg Config) (*data.Dataset, error) {
	if err := cfg.normalize(test.Shape, test.Classes); err != nil {
		return nil, err
	}
	trig, err := MakeTrigger(cfg, test.Shape)
	if err != nil {
		return nil, err
	}
	out := &data.Dataset{
		Name:    fmt.Sprintf("%s+%s-asr", test.Name, cfg.Kind),
		Shape:   test.Shape,
		Classes: test.Classes,
	}
	buf := make([]float64, test.Shape.Dim())
	j := 0
	for i := 0; i < test.Len(); i++ {
		y := test.Y[i]
		if !cfg.AllToAll && y >= cfg.Target && y < cfg.Target+cfg.NumTargets {
			continue // already the target; ASR excludes these
		}
		variant := j % cfg.NumTargets
		trig.Stamp(buf, test.Sample(i), test.Shape, i, variant, true)
		label := cfg.Target + variant
		if cfg.AllToAll {
			label = (y + 1) % test.Classes
		}
		out.Add(buf, label)
		j++
	}
	if out.Len() == 0 {
		return nil, fmt.Errorf("attack: no eligible ASR samples (all test labels in target range?)")
	}
	return out, nil
}

// ASR evaluates the attack success rate of model under cfg on test: the
// fraction of triggered non-target samples classified as the attacker's
// target.
func ASR(model *nn.Model, test *data.Dataset, cfg Config) (float64, error) {
	trigSet, err := TriggeredTestSet(test, cfg)
	if err != nil {
		return 0, err
	}
	x := trigSet.Tensor()
	pred := model.PredictClasses(x)
	hit := 0
	for i, p := range pred {
		if p == trigSet.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred)), nil
}

// DefaultConfigs reproduces the paper's Table 13 attack configurations. The
// paper's absolute poison rates (0.3–5%) target 50k-sample CIFAR training
// sets; our synthetic training sets are 40–80x smaller, so rates are scaled
// to keep the absolute number of poisoned samples in a regime where the
// backdoor trains to high ASR. Cover rates keep the paper's ratio to the
// poison rate (WaNet 2x, Adap-Blend 2x, Adap-Patch 1-2x).
func DefaultConfigs(dataset string) map[Kind]Config {
	// paperRates records the published (poison, cover) rates for reference;
	// Table 13's runner prints both columns.
	cfgs := map[Kind]Config{
		BadNets:   {Kind: BadNets, PoisonRate: 0.10},
		Blend:     {Kind: Blend, PoisonRate: 0.10},
		Trojan:    {Kind: Trojan, PoisonRate: 0.10},
		WaNet:     {Kind: WaNet, PoisonRate: 0.10, CoverRate: 0.10},
		Dynamic:   {Kind: Dynamic, PoisonRate: 0.10},
		AdapBlend: {Kind: AdapBlend, PoisonRate: 0.10, CoverRate: 0.05},
		AdapPatch: {Kind: AdapPatch, PoisonRate: 0.10, CoverRate: 0.05},
		BPP:       {Kind: BPP, PoisonRate: 0.10},
		Refool:    {Kind: Refool, PoisonRate: 0.10},
		PoisonInk: {Kind: PoisonInk, PoisonRate: 0.10},
		SIG:       {Kind: SIG, PoisonRate: 0.35}, // clean-label: rate is over the target class pool
		LC:        {Kind: LC, PoisonRate: 0.35},
	}
	if dataset == data.GTSRB {
		// GTSRB has 43 classes, so each class holds fewer samples; slightly
		// higher rates keep per-trigger sample counts comparable (mirrors
		// the paper using higher GTSRB rates in Table 13).
		for k, c := range cfgs {
			if !PropertiesOf(k).CleanLabel {
				c.PoisonRate *= 1.2
				cfgs[k] = c
			}
		}
	}
	return cfgs
}

// PaperConfig records the published Table 13 configuration for one attack.
type PaperConfig struct {
	PoisonRate string
	CoverRate  string
}

// PaperConfigs returns the paper's Table 13 values verbatim (for the table
// reproduction; our scaled equivalents come from DefaultConfigs).
func PaperConfigs(dataset string) map[Kind]PaperConfig {
	if dataset == data.GTSRB {
		return map[Kind]PaperConfig{
			BadNets:   {PoisonRate: "1.0%"},
			Blend:     {PoisonRate: "1.0%"},
			Trojan:    {PoisonRate: "1.0%"},
			WaNet:     {PoisonRate: "5.0%", CoverRate: "10.0%"},
			Dynamic:   {PoisonRate: "0.3%"},
			AdapBlend: {PoisonRate: "0.5%", CoverRate: "1.0%"},
			AdapPatch: {PoisonRate: "0.3%", CoverRate: "0.6%"},
		}
	}
	return map[Kind]PaperConfig{
		BadNets:   {PoisonRate: "0.3%"},
		Blend:     {PoisonRate: "0.3%"},
		Trojan:    {PoisonRate: "0.3%"},
		WaNet:     {PoisonRate: "5.0%", CoverRate: "10.0%"},
		Dynamic:   {PoisonRate: "0.3%"},
		AdapBlend: {PoisonRate: "0.3%", CoverRate: "0.6%"},
		AdapPatch: {PoisonRate: "0.3%", CoverRate: "0.3%"},
	}
}
