package attack

import (
	"context"
	"testing"

	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/trainer"
)

func cifar(t *testing.T, seed uint64, perClass int) *data.Dataset {
	t.Helper()
	return data.NewGenerator(data.MustSpec(data.CIFAR10), seed).Generate(perClass, rng.New(seed))
}

func TestPoisonBasicInvariants(t *testing.T) {
	clean := cifar(t, 1, 20)
	for _, kind := range AllKinds() {
		cfg := Config{Kind: kind, PoisonRate: 0.1, Target: 0, Seed: 7}
		poisoned, info, err := Poison(clean, cfg, rng.New(2))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if poisoned.Len() != clean.Len() {
			t.Fatalf("%s: size changed %d -> %d", kind, clean.Len(), poisoned.Len())
		}
		if info.NumPoisoned == 0 {
			t.Fatalf("%s: nothing poisoned", kind)
		}
		for _, v := range poisoned.X {
			if v < 0 || v > 1 {
				t.Fatalf("%s: pixel %v outside [0,1]", kind, v)
			}
		}
		props := PropertiesOf(kind)
		for i := range poisoned.Y {
			if info.IsPoisoned[i] {
				if props.CleanLabel {
					if poisoned.Y[i] != clean.Y[i] {
						t.Fatalf("%s: clean-label attack changed a label", kind)
					}
				} else if poisoned.Y[i] != cfg.Target {
					t.Fatalf("%s: poisoned label %d != target %d", kind, poisoned.Y[i], cfg.Target)
				}
			} else if !info.IsCover[i] {
				if poisoned.Y[i] != clean.Y[i] {
					t.Fatalf("%s: clean sample label changed", kind)
				}
				// pixels of untouched samples must be identical
				a, b := poisoned.Sample(i), clean.Sample(i)
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("%s: clean sample %d pixels modified", kind, i)
					}
				}
			}
		}
	}
}

func TestPoisonDoesNotMutateInput(t *testing.T) {
	clean := cifar(t, 3, 10)
	before := append([]float64(nil), clean.X...)
	if _, _, err := Poison(clean, Config{Kind: BadNets, PoisonRate: 0.3, Target: 1}, rng.New(4)); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if clean.X[i] != before[i] {
			t.Fatal("Poison mutated its input dataset")
		}
	}
}

func TestPoisonCoverSamples(t *testing.T) {
	clean := cifar(t, 5, 20)
	cfg := Config{Kind: AdapBlend, PoisonRate: 0.1, CoverRate: 0.05, Target: 0}
	poisoned, info, err := Poison(clean, cfg, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if info.NumCover == 0 {
		t.Fatal("no cover samples created")
	}
	for i := range poisoned.Y {
		if info.IsCover[i] {
			if poisoned.Y[i] != clean.Y[i] {
				t.Fatal("cover sample label changed")
			}
			changed := false
			for j, v := range poisoned.Sample(i) {
				if v != clean.Sample(i)[j] {
					changed = true
					break
				}
			}
			if !changed {
				t.Fatal("cover sample pixels unchanged")
			}
		}
	}
}

func TestPoisonValidation(t *testing.T) {
	clean := cifar(t, 7, 5)
	cases := []Config{
		{Kind: BadNets, PoisonRate: 0, Target: 0},
		{Kind: BadNets, PoisonRate: 1.5, Target: 0},
		{Kind: BadNets, PoisonRate: 0.1, Target: -1},
		{Kind: BadNets, PoisonRate: 0.1, Target: 99},
		{Kind: "bogus", PoisonRate: 0.1, Target: 0},
		{Kind: BadNets, PoisonRate: 0.1, Target: 8, NumTargets: 5},
	}
	for i, cfg := range cases {
		if _, _, err := Poison(clean, cfg, rng.New(8)); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
}

func TestMultiTargetPoisoning(t *testing.T) {
	clean := cifar(t, 9, 30)
	cfg := Config{Kind: BadNets, PoisonRate: 0.3, Target: 0, NumTargets: 3}
	poisoned, info, err := Poison(clean, cfg, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := range poisoned.Y {
		if info.IsPoisoned[i] {
			seen[poisoned.Y[i]] = true
			if poisoned.Y[i] < 0 || poisoned.Y[i] > 2 {
				t.Fatalf("poisoned label %d outside target range", poisoned.Y[i])
			}
		}
	}
	if len(seen) != 3 {
		t.Fatalf("multi-target used %d target labels, want 3", len(seen))
	}
}

func TestAllToAllPoisoning(t *testing.T) {
	clean := cifar(t, 11, 20)
	cfg := Config{Kind: BadNets, PoisonRate: 0.2, Target: 0, AllToAll: true}
	poisoned, info, err := Poison(clean, cfg, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	for i := range poisoned.Y {
		if info.IsPoisoned[i] {
			if poisoned.Y[i] != (clean.Y[i]+1)%clean.Classes {
				t.Fatalf("all-to-all label %d for original %d", poisoned.Y[i], clean.Y[i])
			}
		}
	}
}

func TestTriggersDeterministic(t *testing.T) {
	sh := data.Shape{C: 3, H: 12, W: 12}
	src := make([]float64, sh.Dim())
	rng.New(1).Uniform(src, 0, 1)
	for _, kind := range AllKinds() {
		cfg := Config{Kind: kind, PoisonRate: 0.1, Seed: 99}
		t1, err := MakeTrigger(cfg, sh)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := MakeTrigger(cfg, sh)
		if err != nil {
			t.Fatal(err)
		}
		a, b := make([]float64, len(src)), make([]float64, len(src))
		t1.Stamp(a, src, sh, 5, 0, true)
		t2.Stamp(b, src, sh, 5, 0, true)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: stamp not deterministic", kind)
			}
		}
	}
}

func TestTriggersActuallyModify(t *testing.T) {
	sh := data.Shape{C: 3, H: 12, W: 12}
	src := make([]float64, sh.Dim())
	rng.New(2).Uniform(src, 0.2, 0.8)
	for _, kind := range AllKinds() {
		trig, err := MakeTrigger(Config{Kind: kind, PoisonRate: 0.1, Seed: 3}, sh)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, len(src))
		trig.Stamp(dst, src, sh, 0, 0, true)
		diff := 0.0
		for i := range src {
			d := dst[i] - src[i]
			diff += d * d
		}
		if diff == 0 {
			t.Errorf("%s: full-strength stamp left image unchanged", kind)
		}
	}
}

func TestAdaptiveTrainWeakerThanTest(t *testing.T) {
	sh := data.Shape{C: 3, H: 12, W: 12}
	src := make([]float64, sh.Dim())
	rng.New(4).Uniform(src, 0.2, 0.8)
	for _, kind := range []Kind{AdapBlend, AdapPatch} {
		trig, err := MakeTrigger(Config{Kind: kind, PoisonRate: 0.1, Seed: 5}, sh)
		if err != nil {
			t.Fatal(err)
		}
		full := make([]float64, len(src))
		train := make([]float64, len(src))
		trig.Stamp(full, src, sh, 1, 0, true)
		trig.Stamp(train, src, sh, 1, 0, false)
		fullDiff, trainDiff := 0.0, 0.0
		for i := range src {
			fd, td := full[i]-src[i], train[i]-src[i]
			fullDiff += fd * fd
			trainDiff += td * td
		}
		if trainDiff >= fullDiff {
			t.Errorf("%s: train-time stamp (%v) not weaker than test-time (%v)", kind, trainDiff, fullDiff)
		}
	}
}

func TestDynamicTriggerSampleSpecific(t *testing.T) {
	sh := data.Shape{C: 3, H: 12, W: 12}
	src := make([]float64, sh.Dim())
	rng.New(6).Uniform(src, 0.2, 0.8)
	trig, err := MakeTrigger(Config{Kind: Dynamic, PoisonRate: 0.1, Seed: 7}, sh)
	if err != nil {
		t.Fatal(err)
	}
	a, b := make([]float64, len(src)), make([]float64, len(src))
	trig.Stamp(a, src, sh, 1, 0, true)
	trig.Stamp(b, src, sh, 2, 0, true)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("dynamic trigger identical across samples")
	}
}

func TestTriggeredTestSetExcludesTarget(t *testing.T) {
	test := cifar(t, 13, 10)
	cfg := Config{Kind: BadNets, PoisonRate: 0.1, Target: 3}
	trigSet, err := TriggeredTestSet(test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := test.Len() - len(test.ClassIndices(3))
	if trigSet.Len() != wantLen {
		t.Fatalf("triggered set has %d samples, want %d", trigSet.Len(), wantLen)
	}
	for _, y := range trigSet.Y {
		if y != 3 {
			t.Fatalf("triggered label %d != target", y)
		}
	}
}

// TestBackdoorTrainsToHighASR is the substrate's core integration check: a
// poisoned model must keep high clean accuracy while the trigger flips
// predictions (paper Tables 14/15 establish ACC>0.9, ASR>0.98 before any
// detection experiment makes sense).
func TestBackdoorTrainsToHighASR(t *testing.T) {
	clean := cifar(t, 15, 60)
	train, test := clean.Split(0.25, rng.New(16))
	for _, kind := range []Kind{BadNets, Blend, Trojan} {
		cfg := Config{Kind: kind, PoisonRate: 0.10, Target: 0, Seed: 17}
		poisoned, _, err := Poison(train, cfg, rng.New(18))
		if err != nil {
			t.Fatal(err)
		}
		m, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchResNetLite, C: clean.Shape.C, H: clean.Shape.H, W: clean.Shape.W,
			NumClasses: clean.Classes, Hidden: 32,
		}, rng.New(19))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trainer.Train(context.Background(), m, poisoned, trainer.Config{Epochs: 15}, rng.New(20)); err != nil {
			t.Fatal(err)
		}
		acc := trainer.Evaluate(m, test, 0)
		asr, err := ASR(m, test, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.8 {
			t.Errorf("%s: clean accuracy %.3f < 0.8", kind, acc)
		}
		if asr < 0.8 {
			t.Errorf("%s: ASR %.3f < 0.8", kind, asr)
		}
	}
}

func TestDefaultConfigsCoverTableAttacks(t *testing.T) {
	for _, ds := range []string{data.CIFAR10, data.GTSRB} {
		cfgs := DefaultConfigs(ds)
		for _, k := range AllKinds() {
			if _, ok := cfgs[k]; !ok {
				t.Errorf("%s: no default config for %s", ds, k)
			}
		}
		paper := PaperConfigs(ds)
		for _, k := range []Kind{BadNets, Blend, Trojan, WaNet, Dynamic, AdapBlend, AdapPatch} {
			if _, ok := paper[k]; !ok {
				t.Errorf("%s: no paper config for %s", ds, k)
			}
		}
	}
}
