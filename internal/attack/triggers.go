package attack

import (
	"math"

	"bprom/internal/data"
	"bprom/internal/rng"
)

// blendEq applies the paper's poisoning equation at one pixel:
// out = (1-m)·x + m·((1-α)t + α·x).
func blendEq(x, t, m, alpha float64) float64 {
	return (1-m)*x + m*((1-alpha)*t+alpha*x)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// --- patch triggers (BadNets, Trojan) ------------------------------------------

type patternFn func(y, x int, r *rng.RNG) float64

// patternChecker is the classic BadNets black/white checkerboard.
func patternChecker(y, x int, _ *rng.RNG) float64 {
	if (x+y)%2 == 0 {
		return 1
	}
	return 0
}

// patternHighFreq simulates a Trojan reverse-engineered trigger: a fixed
// high-contrast random pattern (optimized triggers are high-saliency noise).
func patternHighFreq(_, _ int, r *rng.RNG) float64 {
	if r.Float64() < 0.5 {
		return 0
	}
	return 1
}

// patchTrigger stamps a size×size pattern anchored near the bottom-right
// corner, one variant per target class shifted along the bottom edge.
type patchTrigger struct {
	name    string
	size    int
	alpha   float64
	pattern []float64 // size*size, shared across channels
}

func newPatchTrigger(name string, sh data.Shape, size int, alpha float64, f patternFn, r *rng.RNG) *patchTrigger {
	p := &patchTrigger{name: name, size: size, alpha: alpha, pattern: make([]float64, size*size)}
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			p.pattern[y*size+x] = f(y, x, r)
		}
	}
	return p
}

func (p *patchTrigger) Name() string { return p.name }

func (p *patchTrigger) Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool) {
	copy(dst, src)
	stampPatch(dst, sh, p.pattern, p.size, p.alpha, variant)
}

// stampPatch writes pattern at the bottom-right corner, offset left by
// variant*(size+1) so multi-target variants are spatially distinct.
func stampPatch(dst []float64, sh data.Shape, pattern []float64, size int, alpha float64, variant int) {
	x0 := sh.W - size - variant*(size+1)
	if x0 < 0 {
		x0 = variant % max(1, sh.W-size+1) // wrap for many variants on tiny images
	}
	y0 := sh.H - size
	for c := 0; c < sh.C; c++ {
		off := c * sh.H * sh.W
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				i := off + (y0+y)*sh.W + (x0 + x)
				dst[i] = clamp01(blendEq(dst[i], pattern[y*size+x], 1, alpha))
			}
		}
	}
}

// --- blend trigger ---------------------------------------------------------------

// blendTrigger blends a fixed random pattern over a size×size region (the
// "hello kitty" blend of Chen et al., with region size playing the paper's
// trigger-size role in Tables 3/8).
type blendTrigger struct {
	name    string
	size    int
	alpha   float64
	pattern []float64 // full-image pattern, per channel
}

func newBlendTrigger(name string, sh data.Shape, size int, alpha float64, r *rng.RNG) *blendTrigger {
	b := &blendTrigger{name: name, size: size, alpha: alpha, pattern: make([]float64, sh.Dim())}
	r.Uniform(b.pattern, 0, 1)
	return b
}

func (b *blendTrigger) Name() string { return b.name }

func (b *blendTrigger) Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool) {
	copy(dst, src)
	b.stampRegion(dst, sh, variant, nil)
}

// stampRegion blends the pattern into the trigger region. active, when
// non-nil, masks which cells of a 2x2 block grid participate (used by the
// adaptive wrapper's split-trigger training stamps).
func (b *blendTrigger) stampRegion(dst []float64, sh data.Shape, variant int, active func(y, x int) bool) {
	size := b.size
	x0 := sh.W - size - variant*(size+1)
	if x0 < 0 {
		x0 = variant % max(1, sh.W-size+1)
	}
	y0 := sh.H - size
	for c := 0; c < sh.C; c++ {
		off := c * sh.H * sh.W
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				if active != nil && !active(y, x) {
					continue
				}
				i := off + (y0+y)*sh.W + (x0 + x)
				dst[i] = clamp01(blendEq(dst[i], b.pattern[i], 1, b.alpha))
			}
		}
	}
}

// --- WaNet: smooth warping field --------------------------------------------------

type warpTrigger struct {
	dx, dy []float64 // per-pixel displacement fields
	sh     data.Shape
}

// newWarpTrigger draws a coarse control grid of displacements and upsamples
// it bilinearly to a smooth per-pixel warp, following WaNet's construction.
func newWarpTrigger(sh data.Shape, r *rng.RNG) *warpTrigger {
	const grid = 4
	strength := float64(sh.W) * 0.35
	cdx := make([]float64, grid*grid)
	cdy := make([]float64, grid*grid)
	r.Uniform(cdx, -strength, strength)
	r.Uniform(cdy, -strength, strength)
	w := &warpTrigger{sh: sh, dx: make([]float64, sh.H*sh.W), dy: make([]float64, sh.H*sh.W)}
	for y := 0; y < sh.H; y++ {
		for x := 0; x < sh.W; x++ {
			fy := float64(y) / float64(sh.H-1) * float64(grid-1)
			fx := float64(x) / float64(sh.W-1) * float64(grid-1)
			w.dx[y*sh.W+x] = bilerpGrid(cdx, grid, fy, fx)
			w.dy[y*sh.W+x] = bilerpGrid(cdy, grid, fy, fx)
		}
	}
	return w
}

func bilerpGrid(g []float64, n int, fy, fx float64) float64 {
	y0, x0 := int(fy), int(fx)
	y1, x1 := y0+1, x0+1
	if y1 >= n {
		y1 = n - 1
	}
	if x1 >= n {
		x1 = n - 1
	}
	wy, wx := fy-float64(y0), fx-float64(x0)
	return g[y0*n+x0]*(1-wy)*(1-wx) + g[y0*n+x1]*(1-wy)*wx + g[y1*n+x0]*wy*(1-wx) + g[y1*n+x1]*wy*wx
}

func (w *warpTrigger) Name() string { return string(WaNet) }

func (w *warpTrigger) Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool) {
	// Variant shifts the warp phase slightly so multi-target variants differ.
	scale := 1.0 + 0.3*float64(variant)
	for c := 0; c < sh.C; c++ {
		off := c * sh.H * sh.W
		for y := 0; y < sh.H; y++ {
			for x := 0; x < sh.W; x++ {
				sx := float64(x) + scale*w.dx[y*sh.W+x]
				sy := float64(y) + scale*w.dy[y*sh.W+x]
				dst[off+y*sh.W+x] = sampleBilinear(src, off, sh, sy, sx)
			}
		}
	}
}

func sampleBilinear(img []float64, off int, sh data.Shape, fy, fx float64) float64 {
	if fy < 0 {
		fy = 0
	}
	if fx < 0 {
		fx = 0
	}
	if fy > float64(sh.H-1) {
		fy = float64(sh.H - 1)
	}
	if fx > float64(sh.W-1) {
		fx = float64(sh.W - 1)
	}
	y0, x0 := int(fy), int(fx)
	y1, x1 := y0+1, x0+1
	if y1 >= sh.H {
		y1 = sh.H - 1
	}
	if x1 >= sh.W {
		x1 = sh.W - 1
	}
	wy, wx := fy-float64(y0), fx-float64(x0)
	return img[off+y0*sh.W+x0]*(1-wy)*(1-wx) + img[off+y0*sh.W+x1]*(1-wy)*wx +
		img[off+y1*sh.W+x0]*wy*(1-wx) + img[off+y1*sh.W+x1]*wy*wx
}

// --- Dynamic (input-aware) trigger --------------------------------------------------

// dynamicTrigger places a sample-specific pattern at a sample-specific
// location, mimicking input-aware dynamic backdoors where a generator emits
// per-sample triggers.
type dynamicTrigger struct {
	size  int
	alpha float64
	seed  uint64
}

func newDynamicTrigger(sh data.Shape, size int, alpha float64, r *rng.RNG) *dynamicTrigger {
	return &dynamicTrigger{size: size, alpha: alpha, seed: r.Uint64()}
}

func (d *dynamicTrigger) Name() string { return string(Dynamic) }

func (d *dynamicTrigger) Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool) {
	copy(dst, src)
	// The per-sample stream derives from the trigger seed and the sample
	// identity, so the same sample always receives the same trigger — the
	// property that makes dynamic backdoors learnable.
	sr := rng.New(d.seed).Split("dyn", sampleID, variant)
	x0 := sr.Intn(max(1, sh.W-d.size+1))
	y0 := sr.Intn(max(1, sh.H-d.size+1))
	for c := 0; c < sh.C; c++ {
		off := c * sh.H * sh.W
		for y := 0; y < d.size; y++ {
			for x := 0; x < d.size; x++ {
				i := off + (y0+y)*sh.W + (x0 + x)
				t := 0.0
				if sr.Float64() < 0.5 {
					t = 1
				}
				dst[i] = clamp01(blendEq(dst[i], t, 1, d.alpha))
			}
		}
	}
}

// --- Adaptive attacks (Qi et al.) ----------------------------------------------------

// adaptiveTrigger wraps a blend trigger with the "payload splitting" of
// Adap-Blend: at train time only a random half of the trigger cells are
// applied; at test time the full trigger fires.
type adaptiveTrigger struct {
	inner *blendTrigger
	seed  uint64
}

func newAdaptiveTrigger(inner *blendTrigger, sh data.Shape, r *rng.RNG) *adaptiveTrigger {
	return &adaptiveTrigger{inner: inner, seed: r.Uint64()}
}

func (a *adaptiveTrigger) Name() string { return string(AdapBlend) }

func (a *adaptiveTrigger) Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool) {
	copy(dst, src)
	if full {
		a.inner.stampRegion(dst, sh, variant, nil)
		return
	}
	sr := rng.New(a.seed).Split("adap", sampleID)
	// Activate a random half of 2x2 cell blocks within the trigger region.
	active := make(map[int]bool)
	blocks := (a.inner.size + 1) / 2
	for by := 0; by < blocks; by++ {
		for bx := 0; bx < blocks; bx++ {
			if sr.Float64() < 0.5 {
				active[by*blocks+bx] = true
			}
		}
	}
	a.inner.stampRegion(dst, sh, variant, func(y, x int) bool {
		return active[(y/2)*blocks+x/2]
	})
}

// adaptivePatchTrigger implements Adap-Patch: k small patches scattered over
// the image; training stamps a random subset, testing stamps all of them.
type adaptivePatchTrigger struct {
	patches []patchSpec
	alpha   float64
	seed    uint64
}

type patchSpec struct {
	x0, y0, size int
	pattern      []float64
}

func newAdaptivePatchTrigger(sh data.Shape, size int, alpha float64, r *rng.RNG) *adaptivePatchTrigger {
	const k = 4
	small := max(2, size/2)
	t := &adaptivePatchTrigger{alpha: alpha, seed: r.Uint64()}
	corners := [][2]int{{0, 0}, {sh.W - small, 0}, {0, sh.H - small}, {sh.W - small, sh.H - small}}
	for i := 0; i < k; i++ {
		p := patchSpec{x0: corners[i][0], y0: corners[i][1], size: small, pattern: make([]float64, small*small)}
		r.Uniform(p.pattern, 0, 1)
		for j := range p.pattern {
			if p.pattern[j] < 0.5 {
				p.pattern[j] = 0
			} else {
				p.pattern[j] = 1
			}
		}
		t.patches = append(t.patches, p)
	}
	return t
}

func (a *adaptivePatchTrigger) Name() string { return string(AdapPatch) }

func (a *adaptivePatchTrigger) Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool) {
	copy(dst, src)
	// Train-time stamps exactly half the patches (a random pair including a
	// rotating anchor); test-time stamps all of them. The strict subset is
	// what defeats latent-separation defenses in Qi et al.'s construction.
	var use map[int]bool
	if !full {
		sr := rng.New(a.seed).Split("adpatch", sampleID)
		first := sr.Intn(len(a.patches))
		second := (first + 1 + sr.Intn(len(a.patches)-1)) % len(a.patches)
		use = map[int]bool{first: true, second: true}
	}
	for pi, p := range a.patches {
		if use != nil && !use[pi] {
			continue
		}
		for c := 0; c < sh.C; c++ {
			off := c * sh.H * sh.W
			for y := 0; y < p.size; y++ {
				for x := 0; x < p.size; x++ {
					i := off + (p.y0+y)*sh.W + (p.x0 + x)
					dst[i] = clamp01(blendEq(dst[i], p.pattern[y*p.size+x], 1, a.alpha))
				}
			}
		}
	}
}

// --- BPP: quantization + dithering ------------------------------------------------------

// bppTrigger quantizes pixels to few levels with per-sample dithering, the
// image-quantization backdoor of Wang et al. (2022).
type bppTrigger struct {
	levels int
	seed   uint64
}

func newBPPTrigger(r *rng.RNG) *bppTrigger {
	return &bppTrigger{levels: 4, seed: r.Uint64()}
}

func (b *bppTrigger) Name() string { return string(BPP) }

func (b *bppTrigger) Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool) {
	sr := rng.New(b.seed).Split("bpp", sampleID)
	l := float64(b.levels - 1 - variant%2)
	for i, v := range src {
		dither := (sr.Float64() - 0.5) / l
		dst[i] = clamp01(math.Round((v+dither)*l) / l)
	}
}

// --- Refool: reflection backdoor -----------------------------------------------------------

type refoolTrigger struct {
	reflection []float64
	alpha      float64
}

// newRefoolTrigger builds a smooth "reflection layer" (low-pass noise) that
// is ghosted onto images, as in the reflection backdoor of Liu et al.
func newRefoolTrigger(sh data.Shape, alpha float64, r *rng.RNG) *refoolTrigger {
	t := &refoolTrigger{alpha: alpha, reflection: make([]float64, sh.Dim())}
	raw := make([]float64, sh.Dim())
	r.Uniform(raw, 0, 1)
	// 3x3 box blur per channel to make the reflection smooth.
	for c := 0; c < sh.C; c++ {
		off := c * sh.H * sh.W
		for y := 0; y < sh.H; y++ {
			for x := 0; x < sh.W; x++ {
				sum, cnt := 0.0, 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy, xx := y+dy, x+dx
						if yy < 0 || yy >= sh.H || xx < 0 || xx >= sh.W {
							continue
						}
						sum += raw[off+yy*sh.W+xx]
						cnt++
					}
				}
				t.reflection[off+y*sh.W+x] = sum / float64(cnt)
			}
		}
	}
	return t
}

func (t *refoolTrigger) Name() string { return string(Refool) }

func (t *refoolTrigger) Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool) {
	// Ghosting: shifted double image of the reflection.
	shift := 1 + variant%2
	for c := 0; c < sh.C; c++ {
		off := c * sh.H * sh.W
		for y := 0; y < sh.H; y++ {
			for x := 0; x < sh.W; x++ {
				i := off + y*sh.W + x
				sx := (x + shift) % sh.W
				r := 0.5*t.reflection[i] + 0.5*t.reflection[off+y*sh.W+sx]
				dst[i] = clamp01(t.alpha*src[i] + (1-t.alpha)*r)
			}
		}
	}
}

// --- Poison Ink: edge-aligned invisible trigger ----------------------------------------------

type poisonInkTrigger struct {
	ink []float64 // per-pixel ink pattern, small amplitude
}

func newPoisonInkTrigger(sh data.Shape, r *rng.RNG) *poisonInkTrigger {
	t := &poisonInkTrigger{ink: make([]float64, sh.H*sh.W)}
	r.Uniform(t.ink, -0.35, 0.35)
	return t
}

func (t *poisonInkTrigger) Name() string { return string(PoisonInk) }

func (t *poisonInkTrigger) Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool) {
	copy(dst, src)
	// Edge mask from luminance gradients of channel 0; ink is injected only
	// along structural edges, making it imperceptible (Zhang et al. 2022).
	for y := 0; y < sh.H; y++ {
		for x := 0; x < sh.W; x++ {
			gx, gy := 0.0, 0.0
			if x+1 < sh.W {
				gx = src[y*sh.W+x+1] - src[y*sh.W+x]
			}
			if y+1 < sh.H {
				gy = src[(y+1)*sh.W+x] - src[y*sh.W+x]
			}
			mag := math.Abs(gx) + math.Abs(gy)
			if mag < 0.05 {
				continue
			}
			for c := 0; c < sh.C; c++ {
				i := c*sh.H*sh.W + y*sh.W + x
				dst[i] = clamp01(dst[i] + t.ink[y*sh.W+x])
			}
		}
	}
}

// --- SIG: sinusoidal clean-label trigger ---------------------------------------------------

type sigTrigger struct{}

func newSIGTrigger() *sigTrigger { return &sigTrigger{} }

func (s *sigTrigger) Name() string { return string(SIG) }

func (s *sigTrigger) Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool) {
	// Horizontal sinusoidal stripes: x' = x + Δ·sin(2πfx/W) (Barni et al.).
	const delta = 0.15
	freq := 4.0 + float64(variant)
	for c := 0; c < sh.C; c++ {
		off := c * sh.H * sh.W
		for y := 0; y < sh.H; y++ {
			for x := 0; x < sh.W; x++ {
				i := off + y*sh.W + x
				dst[i] = clamp01(src[i] + delta*math.Sin(2*math.Pi*freq*float64(x)/float64(sh.W)))
			}
		}
	}
}

// --- LC: label-consistent trigger ------------------------------------------------------------

// lcTrigger combines four tiny corner patches with an adversarial-style
// perturbation (seeded noise here), following Turner et al.'s construction
// where the perturbation makes clean features harder to use so the model
// leans on the patches.
type lcTrigger struct {
	alpha float64
	noise []float64
}

func newLCTrigger(sh data.Shape, alpha float64, r *rng.RNG) *lcTrigger {
	t := &lcTrigger{alpha: alpha, noise: make([]float64, sh.Dim())}
	r.Uniform(t.noise, -0.12, 0.12)
	return t
}

func (t *lcTrigger) Name() string { return string(LC) }

func (t *lcTrigger) Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool) {
	for i, v := range src {
		dst[i] = clamp01(v + t.noise[i])
	}
	size := 2
	corners := [][2]int{{0, 0}, {sh.W - size, 0}, {0, sh.H - size}, {sh.W - size, sh.H - size}}
	for _, c0 := range corners {
		for c := 0; c < sh.C; c++ {
			off := c * sh.H * sh.W
			for y := 0; y < size; y++ {
				for x := 0; x < size; x++ {
					i := off + (c0[1]+y)*sh.W + (c0[0] + x)
					v := 0.0
					if (x+y)%2 == 0 {
						v = 1
					}
					dst[i] = clamp01(blendEq(dst[i], v, 1, t.alpha))
				}
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
