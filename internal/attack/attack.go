// Package attack implements the backdoor poisoning attacks evaluated in the
// paper: the classical dirty-label attacks (BadNets, Blend, Trojan), warping
// and sample-specific attacks (WaNet, Dynamic), the adaptive attacks of Qi et
// al. (Adap-Blend, Adap-Patch), feature-space attacks (BPP, Refool, Poison
// Ink) and clean-label attacks (SIG, LC).
//
// Every attack realizes the paper's poisoning equation
//
//	x' = (1-m)·x + m·((1-α)t + α·x),  y' = y_t
//
// for a trigger (m, t, α, y_t), specialized per attack family (warping
// attacks implement Stamp directly as a spatial transform). Adaptive attacks
// additionally distinguish a weakened train-time stamp from the full
// test-time stamp and plant "cover" samples — triggered inputs that keep
// their true label — to suppress latent separation.
package attack

import (
	"fmt"

	"bprom/internal/data"
	"bprom/internal/rng"
)

// Kind names one attack family.
type Kind string

// The attack families. Names match the paper's tables.
const (
	BadNets   Kind = "badnets"
	Blend     Kind = "blend"
	Trojan    Kind = "trojan"
	WaNet     Kind = "wanet"
	Dynamic   Kind = "dynamic"
	AdapBlend Kind = "adap-blend"
	AdapPatch Kind = "adap-patch"
	BPP       Kind = "bpp"
	Refool    Kind = "refool"
	PoisonInk Kind = "poison-ink"
	SIG       Kind = "sig"
	LC        Kind = "lc"
)

// AllKinds lists every implemented attack in table order.
func AllKinds() []Kind {
	return []Kind{BadNets, Blend, Trojan, WaNet, Dynamic, AdapBlend, AdapPatch, BPP, Refool, PoisonInk, SIG, LC}
}

// Properties describe the qualitative attack class, used by experiment
// tables and by the poisoning pipeline (clean-label attacks may only poison
// target-class samples).
type Properties struct {
	CleanLabel     bool // labels of poisoned samples are unchanged
	SampleSpecific bool // trigger varies per sample
	FeatureBased   bool // trigger is a global image transform, not a patch
}

// PropertiesOf returns the properties of kind.
func PropertiesOf(k Kind) Properties {
	switch k {
	case WaNet:
		return Properties{SampleSpecific: false, FeatureBased: true}
	case Dynamic:
		return Properties{SampleSpecific: true}
	case BPP:
		return Properties{FeatureBased: true, SampleSpecific: true}
	case Refool, PoisonInk:
		return Properties{FeatureBased: true}
	case SIG:
		return Properties{CleanLabel: true, FeatureBased: true}
	case LC:
		return Properties{CleanLabel: true}
	default:
		return Properties{}
	}
}

// Trigger stamps a backdoor pattern onto images.
type Trigger interface {
	// Name returns the attack family name.
	Name() string
	// Stamp writes the triggered version of src into dst (same length,
	// pixels in [0,1]). sampleID individualizes sample-specific triggers;
	// variant selects among per-target trigger variants (multi-target
	// backdoors, paper Table 2); full selects the test-time trigger
	// (adaptive attacks weaken the train-time stamp).
	Stamp(dst, src []float64, sh data.Shape, sampleID, variant int, full bool)
}

// Config parameterizes a poisoning run.
type Config struct {
	Kind Kind
	// PoisonRate is the fraction of the training set receiving a trigger.
	PoisonRate float64
	// CoverRate is the fraction receiving the trigger WITHOUT a label change
	// (adaptive attacks; 0 for classical ones).
	CoverRate float64
	// Target is the attacker's target class y_t.
	Target int
	// NumTargets > 1 builds a multi-target backdoor (paper Table 2): targets
	// are classes Target..Target+NumTargets-1, each with a distinct trigger
	// variant.
	NumTargets int
	// TriggerSize is the square trigger side length in pixels (patch and
	// blend-region attacks). 0 selects a per-attack default.
	TriggerSize int
	// Alpha is the blend intensity α in the poisoning equation; 0 selects a
	// per-attack default.
	Alpha float64
	// AllToAll implants an all-to-all backdoor (y' = y+1 mod K) instead of
	// all-to-one. The paper's limitation section: BPROM struggles here.
	AllToAll bool
	// Seed individualizes trigger patterns so independently poisoned shadow
	// models see different trigger draws (paper: "sampling different
	// combinations of backdoor patterns").
	Seed uint64
}

// normalize fills defaults and validates against the dataset geometry.
func (c *Config) normalize(sh data.Shape, classes int) error {
	if c.Kind == "" {
		return fmt.Errorf("attack: missing Kind")
	}
	if c.PoisonRate <= 0 || c.PoisonRate > 1 {
		return fmt.Errorf("attack: poison rate %v outside (0,1]", c.PoisonRate)
	}
	if c.CoverRate < 0 || c.CoverRate > 1 {
		return fmt.Errorf("attack: cover rate %v outside [0,1]", c.CoverRate)
	}
	if c.Target < 0 || c.Target >= classes {
		return fmt.Errorf("attack: target class %d outside [0,%d)", c.Target, classes)
	}
	if c.NumTargets <= 0 {
		c.NumTargets = 1
	}
	if c.Target+c.NumTargets > classes {
		return fmt.Errorf("attack: %d targets starting at %d exceed %d classes", c.NumTargets, c.Target, classes)
	}
	if c.TriggerSize <= 0 {
		c.TriggerSize = defaultTriggerSize(c.Kind, sh)
	}
	if c.TriggerSize > sh.H || c.TriggerSize > sh.W {
		c.TriggerSize = min(sh.H, sh.W)
	}
	if c.Alpha <= 0 {
		c.Alpha = defaultAlpha(c.Kind)
	}
	return nil
}

func defaultTriggerSize(k Kind, sh data.Shape) int {
	s := sh.H / 4
	if k == Blend || k == AdapBlend {
		// Blend regions need ~H/3 to reach the paper's >0.98 ASR regime at
		// the default alpha (verified by sweep; smaller regions mirror the
		// low-ASR rows of their Table 8).
		s = sh.H / 3
	}
	if s < 2 {
		s = 2
	}
	return s
}

func defaultAlpha(k Kind) float64 {
	switch k {
	case Blend, AdapBlend:
		// 0.2 keep-share reproduces the paper's Table 8 regime: a
		// quarter-width blend region reaches ~0.99 ASR while smaller regions
		// stay low, mirroring their 8x8-on-32x32 observations.
		return 0.2
	case Refool:
		return 0.6
	default:
		return 0.05 // near-replacement for patch attacks (α is the keep-original share)
	}
}

// Info records what Poison did; defenses that cleanse training sets are
// evaluated against IsPoisoned as ground truth.
type Info struct {
	Config Config
	// IsPoisoned[i] is true when sample i of the returned dataset carries a
	// trigger AND a flipped label (the samples a dataset cleanser should
	// remove). Cover samples are triggered but correctly labelled and are
	// marked in IsCover instead.
	IsPoisoned []bool
	IsCover    []bool
	// VariantOf[i] is the trigger variant stamped on sample i (-1 if clean).
	VariantOf []int
	// NumPoisoned and NumCover count the affected samples.
	NumPoisoned, NumCover int
}

// MakeTrigger constructs the trigger for cfg. The dataset shape fixes
// pattern geometry; cfg.Seed individualizes the random pattern draw.
func MakeTrigger(cfg Config, sh data.Shape) (Trigger, error) {
	r := rng.New(cfg.Seed).Split("trigger:" + string(cfg.Kind))
	size := cfg.TriggerSize
	if size <= 0 {
		size = defaultTriggerSize(cfg.Kind, sh)
	}
	alpha := cfg.Alpha
	if alpha <= 0 {
		alpha = defaultAlpha(cfg.Kind)
	}
	switch cfg.Kind {
	case BadNets:
		return newPatchTrigger(string(BadNets), sh, size, alpha, patternChecker, r), nil
	case Blend:
		return newBlendTrigger(string(Blend), sh, size, alpha, r), nil
	case Trojan:
		return newPatchTrigger(string(Trojan), sh, size, alpha, patternHighFreq, r), nil
	case WaNet:
		return newWarpTrigger(sh, r), nil
	case Dynamic:
		return newDynamicTrigger(sh, size, alpha, r), nil
	case AdapBlend:
		return newAdaptiveTrigger(newBlendTrigger(string(AdapBlend), sh, size, alpha, r), sh, r), nil
	case AdapPatch:
		return newAdaptivePatchTrigger(sh, size, alpha, r), nil
	case BPP:
		return newBPPTrigger(r), nil
	case Refool:
		return newRefoolTrigger(sh, alpha, r), nil
	case PoisonInk:
		return newPoisonInkTrigger(sh, r), nil
	case SIG:
		return newSIGTrigger(), nil
	case LC:
		return newLCTrigger(sh, alpha, r), nil
	default:
		return nil, fmt.Errorf("attack: unknown kind %q", cfg.Kind)
	}
}

// Poison builds the poisoned training set DP from clean and returns it with
// bookkeeping. clean is not modified. Dirty-label attacks draw victims from
// non-target classes; clean-label attacks draw from the target class itself.
func Poison(clean *data.Dataset, cfg Config, r *rng.RNG) (*data.Dataset, *Info, error) {
	if err := cfg.normalize(clean.Shape, clean.Classes); err != nil {
		return nil, nil, err
	}
	trig, err := MakeTrigger(cfg, clean.Shape)
	if err != nil {
		return nil, nil, err
	}
	props := PropertiesOf(cfg.Kind)
	out := clean.Clone()
	out.Name = fmt.Sprintf("%s+%s", clean.Name, cfg.Kind)
	info := &Info{
		Config:     cfg,
		IsPoisoned: make([]bool, out.Len()),
		IsCover:    make([]bool, out.Len()),
		VariantOf:  make([]int, out.Len()),
	}
	for i := range info.VariantOf {
		info.VariantOf[i] = -1
	}

	n := out.Len()
	nPoison := int(cfg.PoisonRate * float64(n))
	if nPoison < 1 {
		nPoison = 1
	}
	nCover := int(cfg.CoverRate * float64(n))

	// Victim pools.
	var pool []int
	if props.CleanLabel {
		// Clean-label: only target-class samples are perturbed; labels stay.
		for t := 0; t < cfg.NumTargets; t++ {
			pool = append(pool, out.ClassIndices(cfg.Target+t)...)
		}
	} else if cfg.AllToAll {
		pool = r.Perm(n)
	} else {
		for i, y := range out.Y {
			inTargets := y >= cfg.Target && y < cfg.Target+cfg.NumTargets
			if !inTargets {
				pool = append(pool, i)
			}
		}
	}
	if len(pool) == 0 {
		return nil, nil, fmt.Errorf("attack: no eligible victim samples for %s", cfg.Kind)
	}
	if nPoison > len(pool) {
		nPoison = len(pool)
	}
	perm := r.Perm(len(pool))
	buf := make([]float64, out.Shape.Dim())
	for j := 0; j < nPoison; j++ {
		i := pool[perm[j]]
		variant := j % cfg.NumTargets
		trig.Stamp(buf, out.Sample(i), out.Shape, i, variant, false)
		out.SetSample(i, buf)
		info.VariantOf[i] = variant
		switch {
		case props.CleanLabel:
			// label unchanged; still counts as a poisoned sample for
			// dataset-cleanser ground truth (it carries the trigger).
			info.IsPoisoned[i] = true
		case cfg.AllToAll:
			out.Y[i] = (out.Y[i] + 1) % out.Classes
			info.IsPoisoned[i] = true
		default:
			out.Y[i] = cfg.Target + variant
			info.IsPoisoned[i] = true
		}
		info.NumPoisoned++
	}
	// Cover samples: triggered, label kept (dirty-label adaptive attacks).
	if nCover > 0 && !props.CleanLabel {
		covered := 0
		for j := nPoison; j < len(perm) && covered < nCover; j++ {
			i := pool[perm[j]]
			trig.Stamp(buf, out.Sample(i), out.Shape, i, 0, false)
			out.SetSample(i, buf)
			info.IsCover[i] = true
			info.VariantOf[i] = 0
			covered++
		}
		info.NumCover = covered
	}
	return out, info, nil
}
