// Package mlaas provides a Machine-Learning-as-a-Service layer: an HTTP
// server that exposes a model as a prediction API (confidence vectors only,
// exactly the paper's threat model) and a client that implements
// oracle.Oracle over the wire. BPROM runs unchanged against either an
// in-process model or a remote endpoint — the examples and integration
// tests exercise detection across a real network boundary.
//
// API:
//
//	GET  /v1/info     -> {"classes": K, "input_dim": D, "name": "..."}
//	POST /v1/predict  {"inputs": [[f64,...],...]} -> {"confidences": [[f64,...],...]}
//
// The server bounds request sizes and concurrent inference; the client adds
// timeouts and bounded retries with exponential backoff for transient
// failures.
package mlaas

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/tensor"
)

// ServerConfig tunes the service.
type ServerConfig struct {
	// Name is reported by /v1/info (a model-zoo listing name).
	Name string
	// MaxBatch bounds samples per request. Default 512.
	MaxBatch int
	// MaxConcurrent bounds simultaneous inference calls. Default 4.
	MaxConcurrent int
}

func (c *ServerConfig) defaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 512
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
}

// Server serves one frozen model.
type Server struct {
	cfg   ServerConfig
	model *nn.Model
	mu    sync.Mutex // nn layer caches are not concurrency-safe; serialize inference
	sem   chan struct{}
}

// NewServer wraps a frozen model. The model must not be mutated afterwards.
func NewServer(model *nn.Model, cfg ServerConfig) *Server {
	cfg.defaults()
	return &Server{cfg: cfg, model: model, sem: make(chan struct{}, cfg.MaxConcurrent)}
}

// Handler returns the HTTP handler for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	return mux
}

// infoResponse is the /v1/info payload.
type infoResponse struct {
	Name     string `json:"name"`
	Classes  int    `json:"classes"`
	InputDim int    `json:"input_dim"`
}

type predictRequest struct {
	Inputs [][]float64 `json:"inputs"`
}

type predictResponse struct {
	Confidences [][]float64 `json:"confidences"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, infoResponse{
		Name:     s.cfg.Name,
		Classes:  s.model.NumClasses,
		InputDim: s.model.InputDim,
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	// Bound the request body: MaxBatch samples of InputDim float64s encoded
	// as JSON need at most ~25 bytes per number.
	limit := int64(s.cfg.MaxBatch*s.model.InputDim*25 + 1024)
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return
	}
	if int64(len(body)) > limit {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request too large"})
		return
	}
	var req predictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decode: " + err.Error()})
		return
	}
	n := len(req.Inputs)
	if n == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch"})
		return
	}
	if n > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("batch %d exceeds limit %d", n, s.cfg.MaxBatch)})
		return
	}
	x := tensor.New(n, s.model.InputDim)
	for i, row := range req.Inputs {
		if len(row) != s.model.InputDim {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("sample %d has %d values, want %d", i, len(row), s.model.InputDim),
			})
			return
		}
		copy(x.Data[i*s.model.InputDim:(i+1)*s.model.InputDim], row)
	}

	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "cancelled while queued"})
		return
	}
	s.mu.Lock()
	probs := s.model.Predict(x)
	s.mu.Unlock()

	resp := predictResponse{Confidences: make([][]float64, n)}
	k := s.model.NumClasses
	for i := 0; i < n; i++ {
		resp.Confidences[i] = append([]float64(nil), probs.Data[i*k:(i+1)*k]...)
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client;
	// they surface as a truncated body on the client side.
	_ = json.NewEncoder(w).Encode(v)
}

// Serve listens on addr until ctx is cancelled, then shuts down gracefully.
// It reports the bound address through ready (useful with addr ":0").
func (s *Server) Serve(ctx context.Context, addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("mlaas: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("mlaas: shutdown: %w", err)
		}
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("mlaas: serve: %w", err)
	}
}

// --- Client ---------------------------------------------------------------------

// ClientConfig tunes the HTTP oracle.
type ClientConfig struct {
	// Timeout per request. Default 30s.
	Timeout time.Duration
	// Retries on transient failure (network errors and 5xx). Default 2.
	Retries int
	// HTTPClient overrides the transport (tests).
	HTTPClient *http.Client
}

func (c *ClientConfig) defaults() {
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
}

// Client is an oracle.Oracle backed by a remote MLaaS endpoint.
type Client struct {
	base     string
	cfg      ClientConfig
	classes  int
	inputDim int
}

var _ oracle.Oracle = (*Client)(nil)

// Dial fetches /v1/info and returns a ready client.
func Dial(ctx context.Context, baseURL string, cfg ClientConfig) (*Client, error) {
	cfg.defaults()
	c := &Client{base: baseURL, cfg: cfg}
	reqCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, baseURL+"/v1/info", nil)
	if err != nil {
		return nil, fmt.Errorf("mlaas: build info request: %w", err)
	}
	resp, err := cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("mlaas: fetch info: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mlaas: info returned %s", resp.Status)
	}
	var info infoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("mlaas: decode info: %w", err)
	}
	if info.Classes < 2 || info.InputDim < 1 {
		return nil, fmt.Errorf("mlaas: implausible endpoint metadata %+v", info)
	}
	c.classes = info.Classes
	c.inputDim = info.InputDim
	return c, nil
}

func (c *Client) NumClasses() int { return c.classes }
func (c *Client) InputDim() int   { return c.inputDim }

// Predict sends the batch to the endpoint, retrying transient failures.
func (c *Client) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(1) != c.inputDim {
		return nil, fmt.Errorf("mlaas: input shape %v, want [N %d]", x.Shape(), c.inputDim)
	}
	n := x.Dim(0)
	req := predictRequest{Inputs: make([][]float64, n)}
	for i := 0; i < n; i++ {
		req.Inputs[i] = x.Row(i)
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("mlaas: encode batch: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			backoff := time.Duration(1<<uint(attempt-1)) * 100 * time.Millisecond
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, fmt.Errorf("mlaas: %w (last error: %v)", ctx.Err(), lastErr)
			}
		}
		out, retryable, err := c.predictOnce(ctx, payload, n)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if !retryable {
			break
		}
	}
	return nil, fmt.Errorf("mlaas: predict failed: %w", lastErr)
}

func (c *Client) predictOnce(ctx context.Context, payload []byte, n int) (_ *tensor.Tensor, retryable bool, _ error) {
	reqCtx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, c.base+"/v1/predict", bytes.NewReader(payload))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return nil, true, fmt.Errorf("server error: %s", resp.Status)
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return nil, false, fmt.Errorf("endpoint rejected request: %s (%s)", resp.Status, er.Error)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, true, fmt.Errorf("decode response: %w", err)
	}
	if len(pr.Confidences) != n {
		return nil, false, fmt.Errorf("endpoint returned %d rows for %d inputs", len(pr.Confidences), n)
	}
	out := tensor.New(n, c.classes)
	for i, row := range pr.Confidences {
		if len(row) != c.classes {
			return nil, false, fmt.Errorf("row %d has %d classes, want %d", i, len(row), c.classes)
		}
		copy(out.Data[i*c.classes:(i+1)*c.classes], row)
	}
	return out, false, nil
}
