// Package mlaas provides a Machine-Learning-as-a-Service layer: an HTTP
// server that exposes a model as a prediction API (confidence vectors only,
// exactly the paper's threat model) and a client that implements
// oracle.Oracle over the wire. BPROM runs unchanged against either an
// in-process model or a remote endpoint — the examples and integration
// tests exercise detection across a real network boundary.
//
// API:
//
//	GET  /v1/info     -> {"classes": K, "input_dim": D, "max_batch": B, "name": "..."}
//	POST /v1/predict  {"inputs": [[f64,...],...]} -> {"confidences": [[f64,...],...]}
//
// Serving is fully concurrent: the nn inference path is stateless, so the
// server runs one forward pass per worker with no global lock. An adaptive
// micro-batcher coalesces requests that queue up while workers are busy
// into a single forward pass, so throughput under load approaches the
// model's raw batched-inference rate — and each coalesced pass is itself
// parallel inside, because the tensor kernels split row blocks across the
// process-wide shared worker pool. The client adds timeouts, bounded
// retries with exponential backoff, and transparent chunking of batches
// larger than the endpoint's advertised max_batch.
package mlaas

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/tensor"
)

// ServerConfig tunes the service.
type ServerConfig struct {
	// Name is reported by /v1/info (a model-zoo listing name).
	Name string
	// MaxBatch bounds samples per request, and is the coalescing target of
	// the micro-batcher. Advertised via /v1/info so clients chunk larger
	// batches themselves. Default 512.
	MaxBatch int
	// MaxConcurrent bounds simultaneous forward passes: it is the number of
	// micro-batch workers, and only workers run inference. Default 4.
	//
	// Forward passes themselves run on the tensor package's shared worker
	// pool (one bounded pool per process, sized by GOMAXPROCS or
	// BPROM_TENSOR_WORKERS), so raising MaxConcurrent adds request-level
	// concurrency without oversubscribing CPUs: concurrent passes interleave
	// their row-block chunks on the same pool workers. Pool shares, not
	// pool-per-request.
	MaxConcurrent int
}

func (c *ServerConfig) defaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 512
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
}

// predictJob is one decoded /v1/predict request waiting for a worker.
type predictJob struct {
	x   *tensor.Tensor // [n, InputDim]
	out chan *tensor.Tensor
}

// Server serves one frozen model. Inference goes through a queue drained by
// MaxConcurrent workers; each worker coalesces whatever is queued at its
// tick (up to MaxBatch rows) into one forward pass. The nn inference path
// is reentrant, so no lock guards the model.
type Server struct {
	cfg   ServerConfig
	model *nn.Model
	queue chan *predictJob
	done  chan struct{}
	once  sync.Once
}

// NewServer wraps a frozen model and starts the micro-batch workers. The
// model must not be mutated afterwards. Call Close to stop the workers
// (Serve does so on shutdown).
func NewServer(model *nn.Model, cfg ServerConfig) *Server {
	cfg.defaults()
	s := &Server{
		cfg:   cfg,
		model: model,
		queue: make(chan *predictJob, 4*cfg.MaxConcurrent),
		done:  make(chan struct{}),
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go s.worker()
	}
	return s
}

// Close stops the micro-batch workers; queued and future requests fail with
// 503. Safe to call more than once.
func (s *Server) Close() {
	s.once.Do(func() { close(s.done) })
}

// worker drains the queue: it blocks for one job, greedily coalesces
// whatever else is already queued into the same forward pass (adaptive
// batching: no added latency when idle, large batches under load), and
// fans the confidence rows back out to the waiting handlers.
func (s *Server) worker() {
	for {
		select {
		case <-s.done:
			return
		case job := <-s.queue:
			batch := []*predictJob{job}
			rows := job.x.Dim(0)
		coalesce:
			for rows < s.cfg.MaxBatch {
				select {
				case next := <-s.queue:
					// Accepting an already-dequeued job may overshoot
					// MaxBatch; since every request holds at most MaxBatch
					// rows the pass stays under 2x, which the model handles
					// fine — MaxBatch bounds request size, not tensor size.
					batch = append(batch, next)
					rows += next.x.Dim(0)
				default:
					break coalesce
				}
			}
			s.runBatch(batch, rows)
		}
	}
}

// runBatch runs one forward pass for the coalesced jobs and distributes the
// result rows. Parallelism is bounded by construction: only the
// MaxConcurrent workers call this.
func (s *Server) runBatch(batch []*predictJob, rows int) {
	if len(batch) == 1 {
		// Common uncoalesced case: the job owns the whole result.
		batch[0].out <- s.model.Predict(batch[0].x)
		return
	}
	x := tensor.New(rows, s.model.InputDim)
	off := 0
	for _, j := range batch {
		copy(x.Data[off:off+j.x.Len()], j.x.Data)
		off += j.x.Len()
	}
	probs := s.model.Predict(x)
	k := s.model.NumClasses
	row := 0
	for _, j := range batch {
		n := j.x.Dim(0)
		out := tensor.New(n, k)
		copy(out.Data, probs.Data[row*k:(row+n)*k])
		row += n
		j.out <- out // buffered; never blocks even if the handler is gone
	}
}

// Handler returns the HTTP handler for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	return mux
}

// infoResponse is the /v1/info payload.
type infoResponse struct {
	Name     string `json:"name"`
	Classes  int    `json:"classes"`
	InputDim int    `json:"input_dim"`
	MaxBatch int    `json:"max_batch"`
}

type predictRequest struct {
	Inputs [][]float64 `json:"inputs"`
}

type predictResponse struct {
	Confidences [][]float64 `json:"confidences"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, infoResponse{
		Name:     s.cfg.Name,
		Classes:  s.model.NumClasses,
		InputDim: s.model.InputDim,
		MaxBatch: s.cfg.MaxBatch,
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	// Bound the request body: MaxBatch samples of InputDim float64s encoded
	// as JSON need at most ~25 bytes per number.
	limit := int64(s.cfg.MaxBatch*s.model.InputDim*25 + 1024)
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return
	}
	if int64(len(body)) > limit {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request too large"})
		return
	}
	var req predictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decode: " + err.Error()})
		return
	}
	n := len(req.Inputs)
	if n == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch"})
		return
	}
	if n > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("batch %d exceeds limit %d", n, s.cfg.MaxBatch)})
		return
	}
	x := tensor.New(n, s.model.InputDim)
	for i, row := range req.Inputs {
		if len(row) != s.model.InputDim {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("sample %d has %d values, want %d", i, len(row), s.model.InputDim),
			})
			return
		}
		copy(x.Data[i*s.model.InputDim:(i+1)*s.model.InputDim], row)
	}

	// Check done first: select chooses randomly among ready cases, so
	// without this a post-Close request could still win the enqueue race.
	select {
	case <-s.done:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server closed"})
		return
	default:
	}
	job := &predictJob{x: x, out: make(chan *tensor.Tensor, 1)}
	select {
	case s.queue <- job:
	case <-r.Context().Done():
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "cancelled while queued"})
		return
	case <-s.done:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server closed"})
		return
	}
	var probs *tensor.Tensor
	select {
	case probs = <-job.out:
	case <-r.Context().Done():
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "cancelled while computing"})
		return
	case <-s.done:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server closed"})
		return
	}

	resp := predictResponse{Confidences: make([][]float64, n)}
	k := s.model.NumClasses
	for i := 0; i < n; i++ {
		resp.Confidences[i] = probs.Data[i*k : (i+1)*k]
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client;
	// they surface as a truncated body on the client side.
	_ = json.NewEncoder(w).Encode(v)
}

// Serve listens on addr until ctx is cancelled, then shuts down gracefully
// and stops the micro-batch workers. It reports the bound address through
// ready (useful with addr ":0").
func (s *Server) Serve(ctx context.Context, addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("mlaas: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		s.Close()
		if err != nil {
			return fmt.Errorf("mlaas: shutdown: %w", err)
		}
		return nil
	case err := <-errCh:
		s.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("mlaas: serve: %w", err)
	}
}

// --- Client ---------------------------------------------------------------------

// NoRetries disables retries explicitly. ClientConfig.Retries treats zero
// as "use the default", so callers that want exactly one attempt per
// request pass this sentinel.
const NoRetries = -1

// maxInflightChunks bounds parallel sub-requests when Predict splits an
// oversized batch across multiple /v1/predict calls.
const maxInflightChunks = 4

// ClientConfig tunes the HTTP oracle.
type ClientConfig struct {
	// Timeout per request. Default 30s.
	Timeout time.Duration
	// Retries is the number of retry attempts after the first failure, for
	// transient failures only (network errors and 5xx). Zero means "use the
	// default" (2); pass NoRetries (or any negative value) to disable
	// retries entirely.
	Retries int
	// HTTPClient overrides the transport (tests).
	HTTPClient *http.Client
}

func (c *ClientConfig) defaults() {
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0 // NoRetries and friends: first attempt only
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
}

// Client is an oracle.Oracle backed by a remote MLaaS endpoint. It is safe
// for concurrent use; batches larger than the endpoint's advertised
// max_batch are split into parallel chunked requests transparently.
type Client struct {
	base     string
	cfg      ClientConfig
	classes  int
	inputDim int
	maxBatch int
}

var _ oracle.Oracle = (*Client)(nil)

// Dial fetches /v1/info and returns a ready client.
func Dial(ctx context.Context, baseURL string, cfg ClientConfig) (*Client, error) {
	cfg.defaults()
	c := &Client{base: baseURL, cfg: cfg}
	reqCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, baseURL+"/v1/info", nil)
	if err != nil {
		return nil, fmt.Errorf("mlaas: build info request: %w", err)
	}
	resp, err := cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("mlaas: fetch info: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mlaas: info returned %s", resp.Status)
	}
	var info infoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("mlaas: decode info: %w", err)
	}
	if info.Classes < 2 || info.InputDim < 1 {
		return nil, fmt.Errorf("mlaas: implausible endpoint metadata %+v", info)
	}
	c.classes = info.Classes
	c.inputDim = info.InputDim
	c.maxBatch = info.MaxBatch // 0 for endpoints that do not advertise one
	return c, nil
}

func (c *Client) NumClasses() int { return c.classes }
func (c *Client) InputDim() int   { return c.inputDim }

// MaxBatch reports the endpoint's advertised per-request batch limit
// (0 when the endpoint does not advertise one).
func (c *Client) MaxBatch() int { return c.maxBatch }

// Predict sends the batch to the endpoint, retrying transient failures.
// Batches beyond the endpoint's max_batch are chunked into multiple
// requests (at most maxInflightChunks in flight) and reassembled in order.
func (c *Client) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(1) != c.inputDim {
		return nil, fmt.Errorf("mlaas: input shape %v, want [N %d]", x.Shape(), c.inputDim)
	}
	n := x.Dim(0)
	if c.maxBatch <= 0 || n <= c.maxBatch {
		return c.predictBatch(ctx, x)
	}
	out := tensor.New(n, c.classes)
	sem := make(chan struct{}, maxInflightChunks)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for start := 0; start < n; start += c.maxBatch {
		end := start + c.maxBatch
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			failed := firstErr != nil
			mu.Unlock()
			if failed {
				return
			}
			chunk := tensor.FromSlice(x.Data[start*c.inputDim:end*c.inputDim], end-start, c.inputDim)
			probs, err := c.predictBatch(ctx, chunk)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("mlaas: chunk [%d:%d]: %w", start, end, err)
				}
				mu.Unlock()
				return
			}
			copy(out.Data[start*c.classes:end*c.classes], probs.Data)
		}(start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// predictBatch sends one already-sized batch with the retry loop.
func (c *Client) predictBatch(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	n := x.Dim(0)
	req := predictRequest{Inputs: make([][]float64, n)}
	for i := 0; i < n; i++ {
		req.Inputs[i] = x.Row(i)
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("mlaas: encode batch: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			backoff := time.Duration(1<<uint(attempt-1)) * 100 * time.Millisecond
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, fmt.Errorf("mlaas: %w (last error: %v)", ctx.Err(), lastErr)
			}
		}
		out, retryable, err := c.predictOnce(ctx, payload, n)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if !retryable {
			break
		}
	}
	return nil, fmt.Errorf("mlaas: predict failed: %w", lastErr)
}

func (c *Client) predictOnce(ctx context.Context, payload []byte, n int) (_ *tensor.Tensor, retryable bool, _ error) {
	reqCtx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, c.base+"/v1/predict", bytes.NewReader(payload))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return nil, true, fmt.Errorf("server error: %s", resp.Status)
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return nil, false, fmt.Errorf("endpoint rejected request: %s (%s)", resp.Status, er.Error)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, true, fmt.Errorf("decode response: %w", err)
	}
	if len(pr.Confidences) != n {
		return nil, false, fmt.Errorf("endpoint returned %d rows for %d inputs", len(pr.Confidences), n)
	}
	out := tensor.New(n, c.classes)
	for i, row := range pr.Confidences {
		if len(row) != c.classes {
			return nil, false, fmt.Errorf("row %d has %d classes, want %d", i, len(row), c.classes)
		}
		copy(out.Data[i*c.classes:(i+1)*c.classes], row)
	}
	return out, false, nil
}
