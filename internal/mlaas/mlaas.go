// Package mlaas provides a Machine-Learning-as-a-Service layer: an HTTP
// server that exposes models as a prediction API (confidence vectors only,
// exactly the paper's threat model) and a client that implements
// oracle.Oracle over the wire. BPROM runs unchanged against either an
// in-process model or a remote endpoint — the examples and integration
// tests exercise detection across a real network boundary.
//
// The server hosts either a single in-memory model (NewServer) or a whole
// zoo of on-disk checkpoints (NewRegistryServer + Registry): the registry
// scans a checkpoint directory, lazily loads models on first request, and
// keeps a bounded LRU hot-set so any number of checkpoints serve within a
// fixed memory budget. Each hot model gets its own micro-batch worker
// group; all of them share the one process-wide tensor worker pool.
//
// A server given a detector artifact (EnableAudits) additionally runs
// audit-as-a-service: asynchronous server-side BPROM audit jobs against its
// own hosted models (internal/audit), so one trained detector screens the
// whole zoo without the defender pulling predictions over the wire.
//
// API (see docs/API.md for the full wire-protocol reference):
//
//	GET    /v1/models                  -> {"default": id, "models": [{...}, ...]}
//	GET    /v1/models/{id}/info        -> {"id", "name", "arch", "classes", "input_dim", "max_batch"}
//	POST   /v1/models/{id}/predict     {"inputs": [[f64,...],...]} -> {"confidences": [[f64,...],...]}
//	POST   /v1/models/{id}/audits      submit an async audit job -> 202 + job
//	GET    /v1/audits                  -> {"jobs": [...]} (submission order)
//	GET    /v1/audits/{id}             poll one job (state, progress, verdict)
//	DELETE /v1/audits/{id}             cancel (context-cancel) and remove a job
//	GET    /v1/healthz                 liveness + audit-service state
//	GET    /v1/info                    alias for the default model's info
//	POST   /v1/predict                 alias for the default model's predict
//	POST   /v1/audits                  alias: audit the default model
//
// Serving is fully concurrent: the nn inference path is stateless, so each
// model's engine runs one forward pass per worker with no global lock. An
// adaptive micro-batcher coalesces requests that queue up while workers are
// busy into a single forward pass, so throughput under load approaches the
// model's raw batched-inference rate — and each coalesced pass is itself
// parallel inside, because the tensor kernels split row blocks across the
// process-wide shared worker pool. The client adds timeouts, bounded
// retries with exponential backoff, and transparent chunking of batches
// larger than the endpoint's advertised max_batch.
package mlaas

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"bprom/internal/audit"
	"bprom/internal/jobstore"
	"bprom/internal/nn"
	"bprom/internal/tensor"
	"bprom/internal/vp"
)

// ErrUnknownModel reports a model id the serving surface does not host.
// The HTTP layer maps it to 404.
var ErrUnknownModel = errors.New("mlaas: unknown model")

// DefaultModelID is the id under which NewServer registers its single
// model, and the id aliased by the legacy /v1/info and /v1/predict routes
// on a single-model server.
const DefaultModelID = "default"

// ModelInfo describes one hosted model in /v1/models listings.
type ModelInfo struct {
	// ID is the route segment that selects the model (/v1/models/{id}/...).
	ID string `json:"id"`
	// Name is the display name (sidecar name, or the id when absent).
	Name string `json:"name,omitempty"`
	// Arch is the nn architecture family of the checkpoint.
	Arch string `json:"arch,omitempty"`
	// Note is free-form provenance from the checkpoint sidecar.
	Note string `json:"note,omitempty"`
	// Classes is the label-space size.
	Classes int `json:"classes"`
	// InputDim is the flattened per-sample input width.
	InputDim int `json:"input_dim"`
	// Params is the trainable-scalar count (0 when unknown).
	Params int `json:"params,omitempty"`
	// Precision is the serving precision: "fp64" for the bit-exact float
	// path, "int8" for the quantized inference path (registry default or
	// sidecar override; quantization is derived at load, checkpoints stay
	// full-precision on disk).
	Precision string `json:"precision,omitempty"`
	// Screened reports whether inline request screening covers this model:
	// the server carries a screener, the model's input width matches its
	// prompt canvas, and no sidecar opted the model out.
	Screened bool `json:"screened,omitempty"`
	// Loaded reports whether the model is resident in the LRU hot-set
	// right now (single-model servers are always loaded).
	Loaded bool `json:"loaded"`
	// ResidentBytes is the weight bytes the model occupies while resident
	// (0 when cold). Quantized models charge their int8 footprint.
	ResidentBytes int `json:"resident_bytes,omitempty"`
}

// provider abstracts where hosted models come from: a single in-memory
// model (NewServer) or a disk-backed LRU registry (NewRegistryServer).
type provider interface {
	// Models lists every hosted model, sorted by id.
	Models() []ModelInfo
	// DefaultID is the model served by the legacy un-prefixed routes.
	DefaultID() string
	// Info resolves one model's metadata without forcing a load.
	// id "" means the default model.
	Info(id string) (ModelInfo, error)
	// MaxBatch is the per-request row limit shared by all hosted models.
	MaxBatch() int
	// Predict routes one batch to the model's engine, loading it first if
	// necessary. id "" means the default model. screen requests inline
	// screening: when the model is screened, the returned slice holds one
	// outcome per input row (nil otherwise — unscreened models and
	// screen=false cost nothing extra).
	Predict(ctx context.Context, id string, x *tensor.Tensor, screen bool) (*tensor.Tensor, []vp.ScreenResult, error)
	// Close stops every engine.
	Close()
}

// Screening policies: what the server does with a flagged input row.
const (
	// ScreenAnnotate (the default) serves every row and attaches the
	// screening block — confidences are bit-identical to an unscreened
	// server.
	ScreenAnnotate = "annotate"
	// ScreenReject withholds flagged rows' confidences: the row's entry in
	// the response is null and its screening block carries rejected=true
	// plus an error message (a structured 403-style error row; the HTTP
	// status stays 200 because other rows of the batch may be fine).
	ScreenReject = "reject"
)

// validScreenPolicy reports whether p names a screening policy ("" means
// ScreenAnnotate).
func validScreenPolicy(p string) bool {
	return p == "" || p == ScreenAnnotate || p == ScreenReject
}

// ServerConfig tunes the service.
type ServerConfig struct {
	// Name is reported by /v1/info (a model-zoo listing name). Ignored in
	// registry mode, where each checkpoint carries its own name.
	Name string
	// MaxBatch bounds samples per request, and is the coalescing target of
	// the micro-batcher. Advertised via /v1/info so clients chunk larger
	// batches themselves. Default 512. Ignored in registry mode (the
	// RegistryConfig sets it).
	MaxBatch int
	// MaxConcurrent bounds simultaneous forward passes: it is the number of
	// micro-batch workers, and only workers run inference. Default 4.
	// Ignored in registry mode (the RegistryConfig sets it per model).
	//
	// Forward passes themselves run on the tensor package's shared worker
	// pool (one bounded pool per process, sized by GOMAXPROCS or
	// BPROM_TENSOR_WORKERS), so raising MaxConcurrent adds request-level
	// concurrency without oversubscribing CPUs: concurrent passes interleave
	// their row-block chunks on the same pool workers. Pool shares, not
	// pool-per-request.
	MaxConcurrent int
	// Screener enables inline request screening (typically derived from a
	// detector artifact via bprom.Detector.Screener): every screened predict
	// row gets a suspicion score from the learned prompt, fused into the
	// same micro-batched forward pass as the row itself. Its InputDim must
	// match the model's. Nil disables screening.
	Screener *vp.Screener
	// ScreenPolicy picks what happens to flagged rows: ScreenAnnotate
	// (default) or ScreenReject. Ignored without a Screener.
	ScreenPolicy string
}

func (c *ServerConfig) defaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 512
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.ScreenPolicy == "" {
		c.ScreenPolicy = ScreenAnnotate
	}
}

// singleProvider hosts exactly one in-memory model under DefaultModelID.
type singleProvider struct {
	info ModelInfo
	eng  *engine
}

func (p *singleProvider) Models() []ModelInfo { return []ModelInfo{p.info} }
func (p *singleProvider) DefaultID() string   { return p.info.ID }
func (p *singleProvider) MaxBatch() int       { return p.eng.maxBatch }
func (p *singleProvider) Close()              { p.eng.close() }

func (p *singleProvider) Info(id string) (ModelInfo, error) {
	if id != "" && id != p.info.ID {
		return ModelInfo{}, fmt.Errorf("%w: %q", ErrUnknownModel, id)
	}
	return p.info, nil
}

func (p *singleProvider) Predict(ctx context.Context, id string, x *tensor.Tensor, screen bool) (*tensor.Tensor, []vp.ScreenResult, error) {
	if id != "" && id != p.info.ID {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownModel, id)
	}
	return p.eng.predict(ctx, x, screen)
}

// Server is the HTTP front of the service: request decoding, model routing,
// and the error envelope. Inference happens in per-model engines owned by
// the provider behind it; server-side audit jobs (EnableAudits) run in an
// audit.Manager beside it.
type Server struct {
	prov         provider
	screenPolicy string              // ScreenAnnotate or ScreenReject
	audits       *audit.Manager      // nil until EnableAudits
	tenancy      *jobstore.Tenancy   // nil until EnableTenancy
	store        *jobstore.Store     // nil until EnableAudits with a Store
	reaudit      *jobstore.Scheduler // nil until EnableReaudit
	once         sync.Once
}

// NewServer wraps one frozen in-memory model and starts its micro-batch
// workers. The model must not be mutated afterwards. Call Close to stop
// the workers (Serve does so on shutdown). The model is hosted under
// DefaultModelID, so multi-model clients work against it too. A Screener
// whose canvas does not match the model's input width, or an unknown
// ScreenPolicy, is a programmer error and panics (registry mode reports
// these as OpenRegistry errors instead).
func NewServer(model *nn.Model, cfg ServerConfig) *Server {
	if !validScreenPolicy(cfg.ScreenPolicy) {
		panic(fmt.Sprintf("mlaas: unknown screen policy %q (want %q or %q)", cfg.ScreenPolicy, ScreenAnnotate, ScreenReject))
	}
	cfg.defaults()
	if cfg.Screener != nil && cfg.Screener.InputDim() != model.InputDim {
		panic(fmt.Sprintf("mlaas: screener canvas %d != model input %d", cfg.Screener.InputDim(), model.InputDim))
	}
	return &Server{
		screenPolicy: cfg.ScreenPolicy,
		prov: &singleProvider{
			info: ModelInfo{
				ID:            DefaultModelID,
				Name:          cfg.Name,
				Arch:          string(model.Arch),
				Classes:       model.NumClasses,
				InputDim:      model.InputDim,
				Params:        model.ParamCount(),
				Precision:     model.Precision(),
				Screened:      cfg.Screener != nil,
				Loaded:        true,
				ResidentBytes: model.WeightBytes(),
			},
			eng: newEngine(model, cfg.Screener, cfg.MaxBatch, cfg.MaxConcurrent),
		},
	}
}

// NewRegistryServer serves every checkpoint hosted by reg. The server takes
// ownership of the registry: Close (and Serve on shutdown) closes it.
func NewRegistryServer(reg *Registry) *Server {
	return &Server{prov: reg, screenPolicy: reg.cfg.ScreenPolicy}
}

// Close stops the re-audit scheduler, drains the audit manager (running
// jobs checkpoint and are cancelled via their contexts), and then stops all
// model engines; queued and future requests fail with 503. The job store
// itself stays open — its owner closes it after Close returns. Safe to call
// more than once.
func (s *Server) Close() {
	s.once.Do(func() {
		if s.reaudit != nil {
			s.reaudit.Close()
		}
		if s.audits != nil {
			s.audits.Close()
		}
		s.prov.Close()
	})
}

// Handler returns the HTTP handler for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/models/{id}/info", func(w http.ResponseWriter, r *http.Request) {
		s.handleInfo(w, r.PathValue("id"))
	})
	mux.HandleFunc("POST /v1/models/{id}/predict", func(w http.ResponseWriter, r *http.Request) {
		s.handlePredict(w, r, r.PathValue("id"))
	})
	// Audit-as-a-service routes (501 until EnableAudits): asynchronous
	// server-side audit jobs over the hosted models.
	mux.HandleFunc("POST /v1/models/{id}/audits", func(w http.ResponseWriter, r *http.Request) {
		s.handleSubmitAudit(w, r, r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/audits", s.handleListAudits)
	mux.HandleFunc("GET /v1/audits/{id}", s.handleGetAudit)
	mux.HandleFunc("GET /v1/audits/{id}/checkpoint", s.handleExportCheckpoint)
	mux.HandleFunc("DELETE /v1/audits/{id}", s.handleDeleteAudit)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	// Tenancy routes (501 until EnableTenancy, or until a routing provider
	// can fan the question out to nodes that run it).
	mux.HandleFunc("GET /v1/tenants/{id}/usage", func(w http.ResponseWriter, r *http.Request) {
		s.handleTenantUsage(w, r, r.PathValue("id"))
	})
	// Legacy single-model routes: aliases for the default model.
	mux.HandleFunc("GET /v1/info", func(w http.ResponseWriter, r *http.Request) {
		s.handleInfo(w, "")
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		s.handlePredict(w, r, "")
	})
	// Default-model audit alias, in the same spirit as /v1/predict.
	mux.HandleFunc("POST /v1/audits", func(w http.ResponseWriter, r *http.Request) {
		s.handleSubmitAudit(w, r, "")
	})
	// The tenancy middleware wraps every route: it always captures the
	// caller's bearer token for pass-through (gateways forward it to nodes),
	// and enforces auth + rate limits on mutating routes once EnableTenancy
	// has run.
	return s.withTenancy(mux)
}

// infoResponse is the /v1/info and /v1/models/{id}/info payload.
type infoResponse struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Arch     string `json:"arch,omitempty"`
	Classes  int    `json:"classes"`
	InputDim int    `json:"input_dim"`
	MaxBatch int    `json:"max_batch"`
	// Precision advertises the serving precision ("fp64" or "int8") so
	// clients know whether confidences come from the bit-exact float path
	// or the quantized one. Omitted by servers that predate the field.
	Precision string `json:"precision,omitempty"`
	// Screened advertises inline request screening on this model's predict
	// route. Omitted (false) by servers without a screener.
	Screened bool `json:"screened,omitempty"`
	// ScreenPolicy is the server's flagged-row policy ("annotate" or
	// "reject"), present only when Screened is set.
	ScreenPolicy string `json:"screen_policy,omitempty"`
}

// modelsResponse is the /v1/models payload.
type modelsResponse struct {
	Default string      `json:"default"`
	Models  []ModelInfo `json:"models"`
}

type predictRequest struct {
	Inputs [][]float64 `json:"inputs"`
	// Screen opts a single request out of (or redundantly into) inline
	// screening: absent means "screen when the model is screened". Clients
	// that only want raw confidences send false and pay nothing extra.
	Screen *bool `json:"screen,omitempty"`
}

// Screening is one row's wire-form screening outcome.
type Screening struct {
	// Score is the suspicion score in [0,1].
	Score float64 `json:"score"`
	// Flagged reports Score >= Threshold.
	Flagged bool `json:"flagged"`
	// Threshold is the server's flagging cutoff.
	Threshold float64 `json:"threshold"`
	// Rejected is set under the reject policy when the row's confidences
	// were withheld (the row's confidences entry is null).
	Rejected bool `json:"rejected,omitempty"`
	// Error describes the rejection (set only with Rejected).
	Error string `json:"error,omitempty"`
}

type predictResponse struct {
	Confidences [][]float64 `json:"confidences"`
	// Screening holds one entry per input row when the request was
	// screened; absent otherwise.
	Screening []Screening `json:"screening,omitempty"`
}

// errorResponse is the uniform error envelope: every non-2xx response
// carries {"error": "..."}. Tenancy-plane rejections additionally carry a
// machine-readable code ("unauthorized", "rate_limited", "quota_exhausted",
// "tenant_forbidden") and, for quota rejections, the exact oracle-query
// accounting.
type errorResponse struct {
	Error string `json:"error"`
	// Code classifies tenancy rejections; absent on other errors.
	Code string `json:"code,omitempty"`
	// Queries is the tenant's oracle-query spend as metered by
	// oracle.Counter, present on quota_exhausted envelopes.
	Queries int64 `json:"queries,omitempty"`
	// Quota is the tenant's configured budget, present on quota_exhausted
	// envelopes.
	Quota int64 `json:"quota,omitempty"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, modelsResponse{
		Default: s.prov.DefaultID(),
		Models:  s.prov.Models(),
	})
}

func (s *Server) handleInfo(w http.ResponseWriter, id string) {
	info, err := s.prov.Info(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := infoResponse{
		ID:        info.ID,
		Name:      info.Name,
		Arch:      info.Arch,
		Classes:   info.Classes,
		InputDim:  info.InputDim,
		MaxBatch:  s.prov.MaxBatch(),
		Precision: info.Precision,
		Screened:  info.Screened,
	}
	if info.Screened {
		resp.ScreenPolicy = s.screenPolicy
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, id string) {
	info, err := s.prov.Info(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	maxBatch := s.prov.MaxBatch()
	// Bound the request body: MaxBatch samples of InputDim float64s encoded
	// as JSON need at most ~25 bytes per number.
	limit := int64(maxBatch*info.InputDim*25 + 1024)
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return
	}
	if int64(len(body)) > limit {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request too large"})
		return
	}
	var req predictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decode: " + err.Error()})
		return
	}
	n := len(req.Inputs)
	if n == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch"})
		return
	}
	if n > maxBatch {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("batch %d exceeds limit %d", n, maxBatch)})
		return
	}
	x := tensor.New(n, info.InputDim)
	for i, row := range req.Inputs {
		if len(row) != info.InputDim {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("sample %d has %d values, want %d", i, len(row), info.InputDim),
			})
			return
		}
		copy(x.Data[i*info.InputDim:(i+1)*info.InputDim], row)
	}

	// Screening defaults ON for screened models; a request may opt out
	// ("screen": false) and pay nothing. Unscreened models ignore the flag.
	screen := req.Screen == nil || *req.Screen
	probs, scores, err := s.prov.Predict(r.Context(), id, x, screen)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := predictResponse{Confidences: make([][]float64, n)}
	if scores != nil {
		resp.Screening = make([]Screening, n)
		for i, sc := range scores {
			resp.Screening[i] = Screening{Score: sc.Score, Flagged: sc.Flagged, Threshold: sc.Threshold}
		}
	}
	reject := scores != nil && s.screenPolicy == ScreenReject
	k := info.Classes
	for i := 0; i < n; i++ {
		if reject && scores[i].Flagged {
			// A structured 403-style error row: confidences withheld (null
			// in the JSON), the screening block says why. The batch itself
			// still succeeds — unflagged rows are served normally.
			resp.Screening[i].Rejected = true
			resp.Screening[i].Error = fmt.Sprintf("input flagged by backdoor screening (score %.3f >= threshold %.3f)",
				scores[i].Score, scores[i].Threshold)
			continue
		}
		resp.Confidences[i] = probs.Data[i*k : (i+1)*k]
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeError maps provider and audit errors onto the wire error envelope:
// unknown model or audit job -> 404, audits not enabled -> 501, audit queue
// full -> 429, closed/cancelled -> 503, anything else (e.g. a checkpoint
// that fails to load) -> 500. Gateway errors carry their own mapping: a
// *nodeError passes the originating node's status (and Retry-After hint)
// through unchanged, and ErrNoHealthyReplica is a 503 — the routing layer's
// structured "this model is currently unservable", distinct from 404 (never
// hosted) and from a hang.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var ne *nodeError
	var qe *jobstore.QuotaError
	switch {
	case errors.As(err, &qe):
		// The structured 402-style quota envelope: queries carries the spend
		// exactly as oracle.Counter metered it.
		writeJSON(w, http.StatusPaymentRequired, errorResponse{
			Error: err.Error(), Code: "quota_exhausted", Queries: qe.Spent, Quota: qe.Quota,
		})
	case errors.Is(err, ErrUnknownTenant):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrTenancyDisabled):
		writeJSON(w, http.StatusNotImplemented, errorResponse{Error: err.Error()})
	case errors.As(err, &ne):
		if ne.retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", ne.retryAfter))
		}
		writeJSON(w, ne.code, errorResponse{Error: ne.Error()})
	case errors.Is(err, ErrNoHealthyReplica):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrUnknownModel), errors.Is(err, audit.ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	case errors.Is(err, audit.ErrTerminalJob):
		// Checkpoint export against a finished job: a structured conflict,
		// not a missing resource — the job is there, it just has a verdict
		// instead of resumable state.
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrAuditsDisabled):
		writeJSON(w, http.StatusNotImplemented, errorResponse{Error: err.Error()})
	case errors.Is(err, audit.ErrQueueFull):
		// 429 without a Retry-After header leaves fleet clients guessing
		// (and, before the client-side jitter fix, retrying in lockstep).
		// The hint is derived from current queue depth over worker count —
		// see audit.Manager.RetryAfter.
		if s.audits != nil {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.audits.RetryAfter().Seconds())))
		}
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, errEngineClosed), errors.Is(err, audit.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server closed"})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "cancelled: " + err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client;
	// they surface as a truncated body on the client side.
	_ = json.NewEncoder(w).Encode(v)
}

// Serve listens on addr until ctx is cancelled, then shuts down gracefully
// and stops the model engines. It reports the bound address through ready
// (useful with addr ":0").
func (s *Server) Serve(ctx context.Context, addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("mlaas: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		s.Close()
		if err != nil {
			return fmt.Errorf("mlaas: shutdown: %w", err)
		}
		return nil
	case err := <-errCh:
		s.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("mlaas: serve: %w", err)
	}
}
