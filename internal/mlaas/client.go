package mlaas

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"bprom/internal/oracle"
	"bprom/internal/tensor"
)

// NoRetries disables retries explicitly. ClientConfig.Retries treats zero
// as "use the default", so callers that want exactly one attempt per
// request pass this sentinel.
const NoRetries = -1

// maxInflightChunks bounds parallel sub-requests when Predict splits an
// oversized batch across multiple predict calls.
const maxInflightChunks = 4

// ClientConfig tunes the HTTP oracle.
type ClientConfig struct {
	// Timeout per request. Default 30s.
	Timeout time.Duration
	// Retries is the number of retry attempts after the first failure, for
	// transient failures only (network errors and 5xx). Zero means "use the
	// default" (2); pass NoRetries (or any negative value) to disable
	// retries entirely.
	Retries int
	// HTTPClient overrides the transport (tests).
	HTTPClient *http.Client
}

func (c *ClientConfig) defaults() {
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0 // NoRetries and friends: first attempt only
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
}

// Client is an oracle.Oracle backed by one model on a remote MLaaS
// endpoint. It is safe for concurrent use; batches larger than the
// endpoint's advertised max_batch are split into parallel chunked requests
// transparently. Dial binds it to the endpoint's default model, DialModel
// to a specific one — a fleet audit holds one Client per hosted model.
type Client struct {
	base     string
	modelID  string // "" = default model (legacy un-prefixed routes)
	cfg      ClientConfig
	name     string
	classes  int
	inputDim int
	maxBatch int
}

var _ oracle.Oracle = (*Client)(nil)

// Dial fetches /v1/info and returns a client bound to the endpoint's
// default model.
func Dial(ctx context.Context, baseURL string, cfg ClientConfig) (*Client, error) {
	return dial(ctx, baseURL, "", cfg)
}

// DialModel fetches /v1/models/{id}/info and returns a client bound to
// that hosted model.
func DialModel(ctx context.Context, baseURL, modelID string, cfg ClientConfig) (*Client, error) {
	if modelID == "" {
		return nil, fmt.Errorf("mlaas: empty model id (use Dial for the default model)")
	}
	return dial(ctx, baseURL, modelID, cfg)
}

func dial(ctx context.Context, baseURL, modelID string, cfg ClientConfig) (*Client, error) {
	cfg.defaults()
	c := &Client{base: baseURL, modelID: modelID, cfg: cfg}
	var info infoResponse
	if err := c.getJSON(ctx, c.route("info"), &info); err != nil {
		return nil, err
	}
	if info.Classes < 2 || info.InputDim < 1 {
		return nil, fmt.Errorf("mlaas: implausible endpoint metadata %+v", info)
	}
	c.name = info.Name
	c.classes = info.Classes
	c.inputDim = info.InputDim
	c.maxBatch = info.MaxBatch // 0 for endpoints that do not advertise one
	return c, nil
}

// ModelList is the decoded /v1/models listing.
type ModelList struct {
	// Default is the id served by the legacy un-prefixed routes.
	Default string `json:"default"`
	// Models lists every hosted model, sorted by id.
	Models []ModelInfo `json:"models"`
}

// ListModels fetches /v1/models: the ids, shapes, and hot-set state of
// every model the endpoint hosts. Fleet audits start here, then DialModel
// each id.
func ListModels(ctx context.Context, baseURL string, cfg ClientConfig) (ModelList, error) {
	cfg.defaults()
	c := &Client{base: baseURL, cfg: cfg}
	var list ModelList
	if err := c.getJSON(ctx, baseURL+"/v1/models", &list); err != nil {
		return ModelList{}, err
	}
	return list, nil
}

// route builds the endpoint path for this client's model: the legacy
// un-prefixed routes for the default model, /v1/models/{id}/... otherwise.
func (c *Client) route(leaf string) string {
	if c.modelID == "" {
		return c.base + "/v1/" + leaf
	}
	return c.base + "/v1/models/" + url.PathEscape(c.modelID) + "/" + leaf
}

// getJSON fetches one metadata URL and decodes the response (no retries:
// metadata fetches are cheap for the caller to re-issue).
func (c *Client) getJSON(ctx context.Context, u string, v any) error {
	reqCtx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("mlaas: build request: %w", err)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("mlaas: fetch %s: %w", u, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return fmt.Errorf("mlaas: %s returned %s (%s)", u, resp.Status, er.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("mlaas: decode %s: %w", u, err)
	}
	return nil
}

// ModelID reports which hosted model this client queries ("" for the
// endpoint's default model).
func (c *Client) ModelID() string { return c.modelID }

// Name reports the endpoint's display name for the bound model.
func (c *Client) Name() string { return c.name }

// NumClasses reports the bound model's label-space size.
func (c *Client) NumClasses() int { return c.classes }

// InputDim reports the bound model's flattened input width.
func (c *Client) InputDim() int { return c.inputDim }

// MaxBatch reports the endpoint's advertised per-request batch limit
// (0 when the endpoint does not advertise one).
func (c *Client) MaxBatch() int { return c.maxBatch }

// Predict sends the batch to the endpoint, retrying transient failures.
// Batches beyond the endpoint's max_batch are chunked into multiple
// requests (at most maxInflightChunks in flight) and reassembled in order.
func (c *Client) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(1) != c.inputDim {
		return nil, fmt.Errorf("mlaas: input shape %v, want [N %d]", x.Shape(), c.inputDim)
	}
	n := x.Dim(0)
	if c.maxBatch <= 0 || n <= c.maxBatch {
		return c.predictBatch(ctx, x)
	}
	out := tensor.New(n, c.classes)
	sem := make(chan struct{}, maxInflightChunks)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for start := 0; start < n; start += c.maxBatch {
		end := start + c.maxBatch
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			failed := firstErr != nil
			mu.Unlock()
			if failed {
				return
			}
			chunk := tensor.FromSlice(x.Data[start*c.inputDim:end*c.inputDim], end-start, c.inputDim)
			probs, err := c.predictBatch(ctx, chunk)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("mlaas: chunk [%d:%d]: %w", start, end, err)
				}
				mu.Unlock()
				return
			}
			copy(out.Data[start*c.classes:end*c.classes], probs.Data)
		}(start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// predictBatch sends one already-sized batch with the retry loop.
func (c *Client) predictBatch(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	n := x.Dim(0)
	req := predictRequest{Inputs: make([][]float64, n)}
	for i := 0; i < n; i++ {
		req.Inputs[i] = x.Row(i)
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("mlaas: encode batch: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			backoff := time.Duration(1<<uint(attempt-1)) * 100 * time.Millisecond
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, fmt.Errorf("mlaas: %w (last error: %v)", ctx.Err(), lastErr)
			}
		}
		out, retryable, err := c.predictOnce(ctx, payload, n)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if !retryable {
			break
		}
	}
	return nil, fmt.Errorf("mlaas: predict failed: %w", lastErr)
}

func (c *Client) predictOnce(ctx context.Context, payload []byte, n int) (_ *tensor.Tensor, retryable bool, _ error) {
	reqCtx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, c.route("predict"), bytes.NewReader(payload))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return nil, true, fmt.Errorf("server error: %s", resp.Status)
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return nil, false, fmt.Errorf("endpoint rejected request: %s (%s)", resp.Status, er.Error)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, true, fmt.Errorf("decode response: %w", err)
	}
	if len(pr.Confidences) != n {
		return nil, false, fmt.Errorf("endpoint returned %d rows for %d inputs", len(pr.Confidences), n)
	}
	out := tensor.New(n, c.classes)
	for i, row := range pr.Confidences {
		if len(row) != c.classes {
			return nil, false, fmt.Errorf("row %d has %d classes, want %d", i, len(row), c.classes)
		}
		copy(out.Data[i*c.classes:(i+1)*c.classes], row)
	}
	return out, false, nil
}
