package mlaas

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"bprom/internal/audit"
	"bprom/internal/oracle"
	"bprom/internal/tensor"
)

// NoRetries disables retries explicitly. ClientConfig.Retries treats zero
// as "use the default", so callers that want exactly one attempt per
// request pass this sentinel.
const NoRetries = -1

// maxInflightChunks bounds parallel sub-requests when Predict splits an
// oversized batch across multiple predict calls.
const maxInflightChunks = 4

// ClientConfig tunes the HTTP oracle.
type ClientConfig struct {
	// Timeout per request. Default 30s.
	Timeout time.Duration
	// RequestTimeout, when positive, overrides Timeout as the per-request
	// deadline. It exists so callers that share a ClientConfig can tighten
	// the hang bound without disturbing the rest of the defaults: a fleet
	// scan (`bprom audit -timeout`) or a gateway's health probes must never
	// wait the full 30s default on a hung node.
	RequestTimeout time.Duration
	// Retries is the number of retry attempts after the first failure, for
	// transient failures only (network errors, 5xx, and 429 backpressure).
	// Zero means "use the default" (2); pass NoRetries (or any negative
	// value) to disable retries entirely. Retrying stops immediately once
	// the caller's context is cancelled or past its deadline. Backoff is
	// exponential from 100ms with a 5s ceiling and jitter, floored by the
	// server's Retry-After hint when one is sent.
	Retries int
	// AuditPoll is the WaitAudit polling interval. Default 250ms.
	AuditPoll time.Duration
	// APIKey, when set, is sent as Authorization: Bearer <key> on every
	// request — required for mutating routes on endpoints started with an
	// API-key file. A WithAPIKey context value overrides it per request
	// (the gateway forwards the calling tenant's credential that way).
	APIKey string
	// HTTPClient overrides the transport (tests).
	HTTPClient *http.Client
}

func (c *ClientConfig) defaults() {
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0 // NoRetries and friends: first attempt only
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.AuditPoll <= 0 {
		c.AuditPoll = 250 * time.Millisecond
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
}

// Client is an oracle.Oracle backed by one model on a remote MLaaS
// endpoint. It is safe for concurrent use; batches larger than the
// endpoint's advertised max_batch are split into parallel chunked requests
// transparently. Dial binds it to the endpoint's default model, DialModel
// to a specific one — a fleet audit holds one Client per hosted model.
type Client struct {
	base         string
	modelID      string // "" = default model (legacy un-prefixed routes)
	cfg          ClientConfig
	name         string
	classes      int
	inputDim     int
	maxBatch     int
	precision    string
	screened     bool
	screenPolicy string
}

var (
	_ oracle.Oracle       = (*Client)(nil)
	_ oracle.BatchLimiter = (*Client)(nil)
)

// Dial fetches /v1/info and returns a client bound to the endpoint's
// default model.
func Dial(ctx context.Context, baseURL string, cfg ClientConfig) (*Client, error) {
	return dial(ctx, baseURL, "", cfg)
}

// DialModel fetches /v1/models/{id}/info and returns a client bound to
// that hosted model.
func DialModel(ctx context.Context, baseURL, modelID string, cfg ClientConfig) (*Client, error) {
	if modelID == "" {
		return nil, fmt.Errorf("mlaas: empty model id (use Dial for the default model)")
	}
	return dial(ctx, baseURL, modelID, cfg)
}

func dial(ctx context.Context, baseURL, modelID string, cfg ClientConfig) (*Client, error) {
	cfg.defaults()
	c := &Client{base: baseURL, modelID: modelID, cfg: cfg}
	var info infoResponse
	if err := c.getJSON(ctx, c.route("info"), &info); err != nil {
		return nil, err
	}
	if info.Classes < 2 || info.InputDim < 1 {
		return nil, fmt.Errorf("mlaas: implausible endpoint metadata %+v", info)
	}
	c.name = info.Name
	c.classes = info.Classes
	c.inputDim = info.InputDim
	c.maxBatch = info.MaxBatch   // 0 for endpoints that do not advertise one
	c.precision = info.Precision // "" for endpoints that predate the field
	c.screened = info.Screened
	c.screenPolicy = info.ScreenPolicy
	return c, nil
}

// ModelList is the decoded /v1/models listing.
type ModelList struct {
	// Default is the id served by the legacy un-prefixed routes.
	Default string `json:"default"`
	// Models lists every hosted model, sorted by id.
	Models []ModelInfo `json:"models"`
}

// ListModels fetches /v1/models: the ids, shapes, and hot-set state of
// every model the endpoint hosts. Fleet audits start here, then DialModel
// each id.
func ListModels(ctx context.Context, baseURL string, cfg ClientConfig) (ModelList, error) {
	cfg.defaults()
	c := &Client{base: baseURL, cfg: cfg}
	var list ModelList
	if err := c.getJSON(ctx, baseURL+"/v1/models", &list); err != nil {
		return ModelList{}, err
	}
	return list, nil
}

// reqTimeout is the effective per-request deadline: RequestTimeout when
// set, else Timeout.
func (c *Client) reqTimeout() time.Duration {
	if c.cfg.RequestTimeout > 0 {
		return c.cfg.RequestTimeout
	}
	return c.cfg.Timeout
}

// route builds the endpoint path for this client's model: the legacy
// un-prefixed routes for the default model, /v1/models/{id}/... otherwise.
func (c *Client) route(leaf string) string {
	if c.modelID == "" {
		return c.base + "/v1/" + leaf
	}
	return c.base + "/v1/models/" + url.PathEscape(c.modelID) + "/" + leaf
}

// StatusError is a non-2xx endpoint response, carrying the HTTP status
// code and the decoded error envelope. Callers that must distinguish
// rejection classes (e.g. a fleet audit telling "model incompatible with
// the detector" from "queue full", or the gateway classifying a replica's
// failure) unwrap it with errors.As. Every client request path — metadata,
// predict, audit routes — surfaces non-2xx responses this way.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// URL is the request URL.
	URL string
	// Msg is the error-envelope message (may be empty).
	Msg string
	// RetryAfter is the response's Retry-After hint in whole seconds
	// (0 when the server sent none). The gateway propagates it across the
	// routing hop so end clients back off on the saturated node's schedule.
	RetryAfter int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("mlaas: %s returned %d (%s)", e.URL, e.Code, e.Msg)
}

// getJSON fetches one metadata URL and decodes the response (no retries:
// metadata fetches are cheap for the caller to re-issue).
func (c *Client) getJSON(ctx context.Context, u string, v any) error {
	reqCtx, cancel := context.WithTimeout(ctx, c.reqTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("mlaas: build request: %w", err)
	}
	return c.doJSON(req, v)
}

// ModelID reports which hosted model this client queries ("" for the
// endpoint's default model).
func (c *Client) ModelID() string { return c.modelID }

// Name reports the endpoint's display name for the bound model.
func (c *Client) Name() string { return c.name }

// NumClasses reports the bound model's label-space size.
func (c *Client) NumClasses() int { return c.classes }

// InputDim reports the bound model's flattened input width.
func (c *Client) InputDim() int { return c.inputDim }

// Precision reports the endpoint's advertised serving precision for the
// bound model ("fp64", "int8", or "" when the endpoint does not advertise
// one).
func (c *Client) Precision() string { return c.precision }

// MaxBatch reports the endpoint's advertised per-request batch limit
// (0 when the endpoint does not advertise one). It implements
// oracle.BatchLimiter; callers may still Predict larger batches — they are
// chunked transparently.
func (c *Client) MaxBatch() int { return c.maxBatch }

// Screened reports whether the endpoint advertises inline request
// screening for the bound model.
func (c *Client) Screened() bool { return c.screened }

// ScreenPolicy reports the endpoint's flagged-row policy ("annotate" or
// "reject"; "" when the model is unscreened or the endpoint predates
// screening).
func (c *Client) ScreenPolicy() string { return c.screenPolicy }

// Predict sends the batch to the endpoint, retrying transient failures.
// Batches beyond the endpoint's max_batch are chunked into multiple
// requests (at most maxInflightChunks in flight) and reassembled in order.
// Generation-batched audits lean on exactly this: one fused CMA-ES
// generation arrives here as a single λ×k-row call and leaves as parallel
// full-width requests, instead of λ narrow sequential round-trips.
//
// Against a screened endpoint, Predict opts out of screening on the wire
// ("screen": false): the annotations would be discarded here anyway, and
// the opt-out keeps oracle traffic (audits, prompt training) at exactly one
// forward pass per row. Use PredictScreened to get the screening verdicts.
// Should the server reject a row regardless (reject policy), Predict
// reports it as an error.
func (c *Client) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	out, screening, err := c.predict(ctx, x, false)
	if err != nil {
		return nil, err
	}
	for i := range screening {
		if screening[i].Rejected {
			return nil, fmt.Errorf("mlaas: input row %d rejected by server-side screening (score %.3f >= threshold %.3f)",
				i, screening[i].Score, screening[i].Threshold)
		}
	}
	return out, nil
}

// PredictScreened is Predict with inline screening requested: it returns
// the confidence rows plus one Screening entry per input row. On endpoints
// (or individual models) without screening the slice is nil. Under the
// server's reject policy, flagged rows come back with Rejected set and
// zeroed confidences — callers must check before using those rows. Batches
// beyond max_batch are chunked exactly like Predict.
func (c *Client) PredictScreened(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []Screening, error) {
	return c.predict(ctx, x, true)
}

func (c *Client) predict(ctx context.Context, x *tensor.Tensor, screen bool) (*tensor.Tensor, []Screening, error) {
	if x.Rank() != 2 || x.Dim(1) != c.inputDim {
		return nil, nil, fmt.Errorf("mlaas: input shape %v, want [N %d]", x.Shape(), c.inputDim)
	}
	n := x.Dim(0)
	if c.maxBatch <= 0 || n <= c.maxBatch {
		return c.predictBatch(ctx, x, screen)
	}
	out := tensor.New(n, c.classes)
	var screening []Screening
	sem := make(chan struct{}, maxInflightChunks)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for start := 0; start < n; start += c.maxBatch {
		end := start + c.maxBatch
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			failed := firstErr != nil
			mu.Unlock()
			if failed {
				return
			}
			chunk := tensor.FromSlice(x.Data[start*c.inputDim:end*c.inputDim], end-start, c.inputDim)
			probs, scr, err := c.predictBatch(ctx, chunk, screen)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("mlaas: chunk [%d:%d]: %w", start, end, err)
				}
				mu.Unlock()
				return
			}
			copy(out.Data[start*c.classes:end*c.classes], probs.Data)
			if scr != nil {
				mu.Lock()
				if screening == nil {
					screening = make([]Screening, n)
				}
				copy(screening[start:end], scr)
				mu.Unlock()
			}
		}(start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return out, screening, nil
}

// Encoding/decoding scratch for the predict hot path. Generation-batched
// audits push hundreds of chunked predict calls through one client, and
// each call used to marshal a fresh multi-megabyte payload and decode into
// fresh confidence rows; pooling the encode buffer, the row-header slice,
// and the decode target keeps the steady-state allocation rate of the
// batched path below the serial one instead of above it.
var (
	encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	reqPool    = sync.Pool{New: func() any { return new(predictRequest) }}
	respPool   = sync.Pool{New: func() any { return new(predictResponse) }}
)

// screenOptOut is the encoded "screen": false request field Predict sends
// to screened endpoints (a shared target for the pooled request's pointer).
var screenOptOut = false

// Retry backoff bounds: exponential from retryBaseBackoff, never above
// retryMaxBackoff. The old backoff was pure 1<<attempt * 100ms — uncapped
// (attempt 10 slept 51s) and jitterless, so a fleet of clients bounced off
// a busy endpoint in lockstep, re-colliding forever.
const (
	retryBaseBackoff = 100 * time.Millisecond
	retryMaxBackoff  = 5 * time.Second
)

// retryBackoff computes the sleep before retry attempt (1-based): capped
// exponential with the upper half jittered (d/2 + uniform[0, d/2]), so
// concurrent clients decorrelate while the expected wait keeps its
// exponential shape. A server Retry-After hint floors the result — the
// server knows its backlog better than our schedule does.
func retryBackoff(attempt int, hint time.Duration) time.Duration {
	d := retryBaseBackoff
	for i := 1; i < attempt && d < retryMaxBackoff; i++ {
		d *= 2
	}
	if d > retryMaxBackoff {
		d = retryMaxBackoff
	}
	d = d/2 + rand.N(d/2+1)
	if hint > d {
		d = hint
	}
	return d
}

// parseRetryAfter reads a Retry-After header in delay-seconds form (the
// only form this server emits); anything else means "no hint".
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(h)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// predictBatch sends one already-sized batch with the retry loop.
func (c *Client) predictBatch(ctx context.Context, x *tensor.Tensor, screen bool) (*tensor.Tensor, []Screening, error) {
	n := x.Dim(0)
	req := reqPool.Get().(*predictRequest)
	if cap(req.Inputs) < n {
		req.Inputs = make([][]float64, n)
	}
	req.Inputs = req.Inputs[:n]
	for i := 0; i < n; i++ {
		req.Inputs[i] = x.Row(i)
	}
	// Screening is server-default-on, so the only flag worth bytes is the
	// opt-out — and only against endpoints that actually screen.
	req.Screen = nil
	if !screen && c.screened {
		req.Screen = &screenOptOut
	}
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer encBufPool.Put(buf)
	err := json.NewEncoder(buf).Encode(req)
	// Drop the row views before pooling so the scratch never pins the
	// caller's tensor beyond this call.
	for i := range req.Inputs {
		req.Inputs[i] = nil
	}
	req.Screen = nil
	reqPool.Put(req)
	if err != nil {
		return nil, nil, fmt.Errorf("mlaas: encode batch: %w", err)
	}
	payload := buf.Bytes()
	var lastErr error
	var hint time.Duration
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(retryBackoff(attempt, hint)):
			case <-ctx.Done():
				return nil, nil, fmt.Errorf("mlaas: %w (last error: %v)", ctx.Err(), lastErr)
			}
		}
		out, scr, retryable, retryAfter, err := c.predictOnce(ctx, payload, n)
		if err == nil {
			return out, scr, nil
		}
		lastErr = err
		hint = retryAfter
		// A cancelled or expired caller context is never transient: a
		// deleted audit job or an aborted fleet run must stop querying
		// immediately instead of burning the retry budget. Per-request
		// timeouts (reqCtx) without a dead parent stay retryable.
		if !retryable || ctx.Err() != nil {
			break
		}
	}
	return nil, nil, fmt.Errorf("mlaas: predict failed: %w", lastErr)
}

// --- Audit-as-a-service helpers -----------------------------------------------------

// Healthz fetches GET /v1/healthz: endpoint liveness plus whether the
// server runs the audit service. Fleet audits use it as a preflight before
// submitting jobs.
func Healthz(ctx context.Context, baseURL string, cfg ClientConfig) (Health, error) {
	cfg.defaults()
	c := &Client{base: baseURL, cfg: cfg}
	var h Health
	if err := c.getJSON(ctx, baseURL+"/v1/healthz", &h); err != nil {
		return Health{}, err
	}
	return h, nil
}

// ServerAssignedInspectID lets the server pick the inspection RNG stream
// for a submitted audit job (its job sequence number). Pass an explicit
// non-negative id instead when verdicts must be reproducible against an
// in-process Detector.Inspect call.
const ServerAssignedInspectID = -1

// AuditModel submits an asynchronous server-side audit job for the bound
// model (POST /v1/models/{id}/audits) and returns the queued job snapshot.
// The server audits the model with ITS detector artifact in-process — no
// probe traffic crosses the wire. inspectID seeds the inspection RNG
// stream; pass ServerAssignedInspectID to let the server choose. Poll the
// returned job with GetAudit, or block with WaitAudit.
func (c *Client) AuditModel(ctx context.Context, inspectID int) (audit.Job, error) {
	var req struct {
		InspectID *int `json:"inspect_id,omitempty"`
	}
	if inspectID >= 0 {
		req.InspectID = &inspectID
	}
	var job audit.Job
	if err := c.postJSON(ctx, c.route("audits"), req, &job); err != nil {
		return audit.Job{}, err
	}
	return job, nil
}

// GetAudit fetches one audit job snapshot (GET /v1/audits/{id}).
func (c *Client) GetAudit(ctx context.Context, jobID string) (audit.Job, error) {
	var job audit.Job
	if err := c.getJSON(ctx, c.base+"/v1/audits/"+url.PathEscape(jobID), &job); err != nil {
		return audit.Job{}, err
	}
	return job, nil
}

// ListAudits fetches every audit job the endpoint holds, in submission
// order (GET /v1/audits).
func (c *Client) ListAudits(ctx context.Context) ([]audit.Job, error) {
	var resp auditListResponse
	if err := c.getJSON(ctx, c.base+"/v1/audits", &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// CancelAudit cancels and removes an audit job (DELETE /v1/audits/{id}):
// a queued job never runs, a running one is context-cancelled server-side.
// It returns the job's snapshot as of deletion.
func (c *Client) CancelAudit(ctx context.Context, jobID string) (audit.Job, error) {
	reqCtx, cancel := context.WithTimeout(ctx, c.reqTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodDelete, c.base+"/v1/audits/"+url.PathEscape(jobID), nil)
	if err != nil {
		return audit.Job{}, fmt.Errorf("mlaas: build request: %w", err)
	}
	var job audit.Job
	if err := c.doJSON(req, &job); err != nil {
		return audit.Job{}, err
	}
	return job, nil
}

// AuditResume is the optional resume block of an audit submission: the
// wire form of "continue this audit here". A gateway's migration
// supervisor fills it from a dead node's exported checkpoint; in-process
// callers can use it to move a job between managers.
type AuditResume struct {
	// Checkpoint is a wire-exported checkpoint frame (the jobstore CRC
	// frame around an encoded bprom.Checkpoint), base64 in JSON. Empty
	// restarts the audit from generation zero while still preserving the
	// job's identity fields below.
	Checkpoint []byte `json:"checkpoint,omitempty"`
	// Tenant attributes the resumed job to the tenant that submitted the
	// original, so quota accounting and usage listings follow the job
	// across nodes.
	Tenant string `json:"tenant,omitempty"`
	// Source names the job this one continues (the gateway's namespaced id
	// of the original, e.g. "n0.a3"); it lands in the new job's
	// migrated_from field.
	Source string `json:"source,omitempty"`
}

// maxCheckpointWire bounds a checkpoint-export response body. It matches
// the journal's frame-payload ceiling plus header; real checkpoints are
// kilobytes.
const maxCheckpointWire = (1 << 26) + 64

// CheckpointExport is a running audit job's wire-exported resume state
// (GET /v1/audits/{id}/checkpoint): the CRC-framed checkpoint bytes plus
// the metadata a migration supervisor needs to resubmit the job elsewhere.
type CheckpointExport struct {
	// Frame is the opaque CRC-framed checkpoint. The client deliberately
	// does NOT validate the CRC — the node that resumes from the frame
	// does, so corruption anywhere in transit is caught exactly once, at
	// the point where acting on it would do harm.
	Frame []byte
	// Generation and Queries mirror the checkpoint's progress metadata
	// (X-Audit-Generation / X-Audit-Queries).
	Generation int
	Queries    int64
	// ModelID, InspectID and Tenant identify the job, so a supervisor can
	// resubmit without a second metadata fetch.
	ModelID   string
	InspectID int
	Tenant    string
}

// ExportCheckpoint fetches a running job's newest checkpoint
// (GET /v1/audits/{id}/checkpoint). A job that exists but has not
// completed a generation yet answers 204, surfaced as audit.ErrNoCheckpoint;
// a finished job is a 409 *StatusError (nothing to resume), an unknown one
// a 404.
func (c *Client) ExportCheckpoint(ctx context.Context, jobID string) (CheckpointExport, error) {
	reqCtx, cancel := context.WithTimeout(ctx, c.reqTimeout())
	defer cancel()
	u := c.base + "/v1/audits/" + url.PathEscape(jobID) + "/checkpoint"
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, u, nil)
	if err != nil {
		return CheckpointExport{}, fmt.Errorf("mlaas: build request: %w", err)
	}
	c.authorize(req)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return CheckpointExport{}, fmt.Errorf("mlaas: GET %s: %w", u, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return CheckpointExport{}, fmt.Errorf("%w (job %s)", audit.ErrNoCheckpoint, jobID)
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return CheckpointExport{}, &StatusError{Code: resp.StatusCode, URL: u, Msg: er.Error}
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, maxCheckpointWire))
	if err != nil {
		return CheckpointExport{}, fmt.Errorf("mlaas: reading checkpoint: %w", err)
	}
	exp := CheckpointExport{
		Frame:   frame,
		ModelID: resp.Header.Get("X-Audit-Model"),
		Tenant:  resp.Header.Get("X-Audit-Tenant"),
	}
	exp.Generation, _ = strconv.Atoi(resp.Header.Get("X-Audit-Generation"))
	exp.Queries, _ = strconv.ParseInt(resp.Header.Get("X-Audit-Queries"), 10, 64)
	exp.InspectID, _ = strconv.Atoi(resp.Header.Get("X-Audit-Inspect-Id"))
	return exp, nil
}

// AuditModelResume submits an audit job for the bound model that resumes
// from a wire-exported checkpoint (POST /v1/models/{id}/audits with a
// resume block). inspectID must be the ORIGINAL job's inspect id — the
// resumed search continues the same RNG stream, which is what makes the
// migrated verdict bit-identical to an uninterrupted run. A corrupt
// checkpoint still returns a job (the server accepts the submission and
// fails it with error_code "bad_checkpoint") rather than an error.
func (c *Client) AuditModelResume(ctx context.Context, inspectID int, resume AuditResume) (audit.Job, error) {
	var req struct {
		InspectID *int         `json:"inspect_id,omitempty"`
		Resume    *AuditResume `json:"resume,omitempty"`
	}
	if inspectID >= 0 {
		req.InspectID = &inspectID
	}
	req.Resume = &resume
	var job audit.Job
	if err := c.postJSON(ctx, c.route("audits"), req, &job); err != nil {
		return audit.Job{}, err
	}
	return job, nil
}

// WaitAudit polls an audit job (every ClientConfig.AuditPoll) until it
// reaches a terminal state and returns the final snapshot. A job that ends
// StateFailed is returned with a nil error — the failure is the job's
// Error field; WaitAudit's own error means the polling itself broke
// (endpoint unreachable, job deleted, ctx cancelled).
//
// Transient poll failures — 429 backpressure and 5xx, the statuses a
// gateway returns while the node holding the job flaps — do not abort the
// wait: the job is still running somewhere, so the loop keeps polling on
// its normal cadence. Permanent statuses (404 deleted job, 501 audits
// disabled) and transport-level errors return immediately, and a cancelled
// caller context always stops the loop on the spot, even mid-blip.
func (c *Client) WaitAudit(ctx context.Context, jobID string) (audit.Job, error) {
	ticker := time.NewTicker(c.cfg.AuditPoll)
	defer ticker.Stop()
	for {
		job, err := c.GetAudit(ctx, jobID)
		if err != nil {
			if !transientStatus(err) || ctx.Err() != nil {
				return audit.Job{}, err
			}
		} else if job.State.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return audit.Job{}, fmt.Errorf("mlaas: waiting for audit %s: %w", jobID, ctx.Err())
		case <-ticker.C:
		}
	}
}

// transientStatus reports whether err is a *StatusError worth polling
// through: 429 backpressure or a 5xx other than 501 (audits disabled —
// that endpoint will never answer differently).
func transientStatus(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	if se.Code == http.StatusTooManyRequests {
		return true
	}
	return se.Code >= 500 && se.Code != http.StatusNotImplemented
}

// postJSON sends one JSON request body and decodes the JSON response (no
// retries: submissions are not idempotent from the caller's viewpoint).
func (c *Client) postJSON(ctx context.Context, u string, body, v any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("mlaas: encode request: %w", err)
	}
	reqCtx, cancel := context.WithTimeout(ctx, c.reqTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, u, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("mlaas: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.doJSON(req, v)
}

// authorize attaches the API-key credential to req: the request context's
// WithAPIKey value when present (pass-through across a gateway hop), else
// the client's configured APIKey, else nothing.
func (c *Client) authorize(req *http.Request) {
	key := apiKeyFrom(req.Context())
	if key == "" {
		key = c.cfg.APIKey
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
}

// doJSON executes req and decodes a 2xx JSON response into v; non-2xx
// responses become *StatusError with the decoded error envelope.
func (c *Client) doJSON(req *http.Request, v any) error {
	c.authorize(req)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("mlaas: %s %s: %w", req.Method, req.URL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return &StatusError{
			Code:       resp.StatusCode,
			URL:        req.URL.String(),
			Msg:        er.Error,
			RetryAfter: int(parseRetryAfter(resp.Header.Get("Retry-After")).Seconds()),
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("mlaas: decode %s: %w", req.URL, err)
	}
	return nil
}

func (c *Client) predictOnce(ctx context.Context, payload []byte, n int) (_ *tensor.Tensor, _ []Screening, retryable bool, retryAfter time.Duration, _ error) {
	reqCtx, cancel := context.WithTimeout(ctx, c.reqTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, c.route("predict"), bytes.NewReader(payload))
	if err != nil {
		return nil, nil, false, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.authorize(req)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, nil, true, 0, err
	}
	defer resp.Body.Close()
	// Non-200 responses surface as *StatusError so callers that stack on
	// top of the client — the gateway classifying a replica's failure, a
	// fleet audit skipping incompatible models — see the status code and
	// Retry-After hint instead of a flattened string. 5xx and 429 are
	// transient: the server is broken or pushing back, and either way it may
	// name its own recovery horizon via Retry-After (which the backoff
	// honors as a floor).
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		hint := parseRetryAfter(resp.Header.Get("Retry-After"))
		se := &StatusError{
			Code:       resp.StatusCode,
			URL:        req.URL.String(),
			Msg:        er.Error,
			RetryAfter: int(hint.Seconds()),
		}
		transient := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		return nil, nil, transient, hint, se
	}
	// Decode into a pooled response: encoding/json reuses both the outer
	// slice and the per-row []float64 backing arrays across calls, and the
	// rows are copied into the caller's tensor before the scratch goes back.
	// Screening is optional on the wire, so its pooled slice must be
	// truncated first — a stale block from a previous screened response
	// would otherwise survive an unscreened decode untouched.
	pr := respPool.Get().(*predictResponse)
	pr.Screening = pr.Screening[:0]
	defer respPool.Put(pr)
	if err := json.NewDecoder(resp.Body).Decode(pr); err != nil {
		return nil, nil, true, 0, fmt.Errorf("decode response: %w", err)
	}
	if len(pr.Confidences) != n {
		return nil, nil, false, 0, fmt.Errorf("endpoint returned %d rows for %d inputs", len(pr.Confidences), n)
	}
	var screening []Screening
	if len(pr.Screening) > 0 {
		if len(pr.Screening) != n {
			return nil, nil, false, 0, fmt.Errorf("endpoint returned %d screening entries for %d inputs", len(pr.Screening), n)
		}
		screening = append([]Screening(nil), pr.Screening...)
	}
	out := tensor.New(n, c.classes)
	for i, row := range pr.Confidences {
		if len(row) == 0 && screening != nil && screening[i].Rejected {
			continue // withheld by the reject policy: confidences stay zero
		}
		if len(row) != c.classes {
			return nil, nil, false, 0, fmt.Errorf("row %d has %d classes, want %d", i, len(row), c.classes)
		}
		copy(out.Data[i*c.classes:(i+1)*c.classes], row)
	}
	return out, screening, false, 0, nil
}
