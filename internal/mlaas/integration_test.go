package mlaas

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// TestConcurrentPredictMatchesInProcessOracle fires many concurrent Predict
// calls through the full HTTP stack (Client -> Server -> micro-batcher ->
// model) and asserts row-exact agreement with the in-process ModelOracle.
// Go's JSON float64 encoding round-trips exactly and the server runs the
// same softmax code, so any divergence means requests were cross-wired or
// the supposedly stateless forward pass shared state. Run under -race.
func TestConcurrentPredictMatchesInProcessOracle(t *testing.T) {
	m := testModel(t)
	s := NewServer(m, ServerConfig{Name: "integration", MaxBatch: 8, MaxConcurrent: 4})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	c, err := Dial(context.Background(), srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ref := oracle.NewModelOracle(m)

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(100 + g))
			// Varying batch sizes (some above max_batch to exercise client
			// chunking) keep the micro-batcher coalescing unevenly.
			n := 1 + r.Intn(12)
			x := tensor.New(n, m.InputDim)
			r.Uniform(x.Data, 0, 1)
			got, err := c.Predict(context.Background(), x)
			if err != nil {
				errs[g] = err
				return
			}
			want, err := ref.Predict(context.Background(), x.Clone())
			if err != nil {
				errs[g] = err
				return
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Errorf("caller %d: confidence %d differs: remote %v vs in-process %v",
						g, i, got.Data[i], want.Data[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", g, err)
		}
	}
}

// TestMicroBatcherCoalesces floods a single-worker server and checks every
// request still gets its own correct rows back — the coalesced forward pass
// must fan results out per-job.
func TestMicroBatcherCoalesces(t *testing.T) {
	m := testModel(t)
	s := NewServer(m, ServerConfig{MaxBatch: 64, MaxConcurrent: 1})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	c, err := Dial(context.Background(), srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 32
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := tensor.New(2, m.InputDim)
			rng.New(uint64(g)).Uniform(x.Data, 0, 1)
			got, err := c.Predict(context.Background(), x)
			if err != nil {
				t.Errorf("caller %d: %v", g, err)
				return
			}
			want := m.Predict(x.Clone())
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Errorf("caller %d: row data cross-wired at %d", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestServerClosedRejectsRequests verifies requests fail cleanly once the
// micro-batch workers are stopped.
func TestServerClosedRejectsRequests(t *testing.T) {
	m := testModel(t)
	s := NewServer(m, ServerConfig{})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	c, err := Dial(context.Background(), srv.URL, ClientConfig{Retries: NoRetries})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := c.Predict(context.Background(), tensor.New(1, m.InputDim)); err == nil {
		t.Fatal("expected error after Close")
	}
}
