package mlaas

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bprom/internal/audit"
	"bprom/internal/bprom"
	"bprom/internal/jobstore"
)

// startTenantServer serves the shared zoo with audits and tenancy enabled
// (and optionally a durable job store) — the full multi-tenant platform
// configuration of mlaas-server -detector -keys [-jobs-dir].
func startTenantServer(t *testing.T, configs []jobstore.TenantConfig, store *jobstore.Store) (*httptest.Server, *Server) {
	t.Helper()
	env := sharedAuditEnv(t)
	det, err := bprom.LoadFile(env.artPath)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(env.zoo, RegistryConfig{MaxLoaded: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := NewRegistryServer(reg)
	if configs != nil {
		var seed map[string]int64
		if store != nil {
			seed = store.TenantSpend()
		}
		s.EnableTenancy(jobstore.NewTenancy(configs, seed))
	}
	if err := s.EnableAudits(det, AuditConfig{Workers: 2, Store: store}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, s
}

// postEnvelope POSTs to url with an optional bearer key and decodes the
// error envelope alongside the status code.
func postEnvelope(t *testing.T, url, key string) (int, errorResponse, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&env)
	return resp.StatusCode, env, resp.Header
}

func TestTenancyAuthEnforced(t *testing.T) {
	srv, _ := startTenantServer(t, []jobstore.TenantConfig{
		{Name: "alice", Key: "ka"},
	}, nil)

	// Mutating routes without (or with a wrong) key: structured 401.
	for _, key := range []string{"", "wrong"} {
		code, env, _ := postEnvelope(t, srv.URL+"/v1/models/clean/audits", key)
		if code != http.StatusUnauthorized || env.Code != "unauthorized" {
			t.Fatalf("key %q: got %d %+v, want 401 code=unauthorized", key, code, env)
		}
	}

	// Read-only routes stay open: listings and health need no key.
	for _, path := range []string{"/v1/models", "/v1/audits", "/v1/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s with no key: %d", path, resp.StatusCode)
		}
	}

	// A valid key authenticates, and the job is attributed to the tenant.
	ctx := context.Background()
	c, err := DialModel(ctx, srv.URL, "clean", ClientConfig{APIKey: "ka"})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.AuditModel(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if job.Tenant != "alice" {
		t.Fatalf("job tenant = %q, want alice", job.Tenant)
	}
	final, err := c.WaitAudit(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != audit.StateDone || final.Tenant != "alice" {
		t.Fatalf("final job: %+v", final)
	}
}

func TestTenantUsageRoute(t *testing.T) {
	srv, _ := startTenantServer(t, []jobstore.TenantConfig{
		{Name: "alice", Key: "ka"},
	}, nil)
	ctx := context.Background()
	c, err := DialModel(ctx, srv.URL, "clean", ClientConfig{APIKey: "ka"})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.AuditModel(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitAudit(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != audit.StateDone || final.Verdict == nil {
		t.Fatalf("audit did not complete: %+v", final)
	}

	var u TenantUsage
	resp, err := http.Get(srv.URL + "/v1/tenants/alice/usage")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&u); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if u.Tenant != "alice" || u.Jobs != 1 {
		t.Fatalf("usage: %+v", u)
	}
	// The ledger and the verdict's oracle.Counter must agree exactly.
	if u.Spent != final.Verdict.Queries {
		t.Fatalf("ledger %d != verdict queries %d", u.Spent, final.Verdict.Queries)
	}

	resp, err = http.Get(srv.URL + "/v1/tenants/nobody/usage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant usage: %d, want 404", resp.StatusCode)
	}
}

func TestTenancyRateLimit(t *testing.T) {
	srv, _ := startTenantServer(t, []jobstore.TenantConfig{
		{Name: "bob", Key: "kb", RPS: 1}, // burst 2
	}, nil)

	var limited bool
	for i := 0; i < 10; i++ {
		code, env, hdr := postEnvelope(t, srv.URL+"/v1/models/nosuch/audits", "kb")
		if code == http.StatusTooManyRequests {
			if env.Code != "rate_limited" || hdr.Get("Retry-After") == "" {
				t.Fatalf("429 envelope: %+v, Retry-After %q", env, hdr.Get("Retry-After"))
			}
			limited = true
			break
		}
	}
	if !limited {
		t.Fatal("10 rapid mutating requests at rps=1 never hit the rate limit")
	}
}

func TestQuotaExhaustedJobEnvelope(t *testing.T) {
	srv, s := startTenantServer(t, []jobstore.TenantConfig{
		{Name: "carol", Key: "kc", Quota: 50},
	}, nil)
	ctx := context.Background()
	c, err := DialModel(ctx, srv.URL, "clean", ClientConfig{APIKey: "kc"})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.AuditModel(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitAudit(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != audit.StateFailed || final.ErrorCode != "quota_exhausted" {
		t.Fatalf("quota failure not classified: %+v", final)
	}
	tenant, _ := s.Tenancy().Lookup("carol")
	if final.Progress.Queries != tenant.Spent() {
		t.Fatalf("job queries %d != ledger %d", final.Progress.Queries, tenant.Spent())
	}
	if tenant.Spent() > 50 {
		t.Fatalf("ledger overshot the quota: %d > 50", tenant.Spent())
	}

	var u TenantUsage
	resp, err := http.Get(srv.URL + "/v1/tenants/carol/usage")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&u); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if u.Quota != 50 || u.Spent != tenant.Spent() || u.Remaining != 50-tenant.Spent() {
		t.Fatalf("usage after quota exhaustion: %+v (ledger %d)", u, tenant.Spent())
	}
}

func TestHealthzJobStore(t *testing.T) {
	store, err := jobstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := startTenantServer(t, nil, store)
	t.Cleanup(func() { store.Close() })

	h, err := Healthz(context.Background(), srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if h.JobStore == nil {
		t.Fatal("healthz missing job_store section with a durable store")
	}
	if h.JobStore.LastCompaction.IsZero() {
		t.Fatalf("job_store stats not populated: %+v", h.JobStore)
	}

	// Without a store the section is absent.
	plain, _ := startTenantServer(t, nil, nil)
	h2, err := Healthz(context.Background(), plain.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if h2.JobStore != nil {
		t.Fatalf("healthz has job_store without a store: %+v", h2.JobStore)
	}
}

func TestReauditScheduler(t *testing.T) {
	_, s := startTenantServer(t, nil, nil)
	if err := s.EnableReaudit(20*time.Millisecond, "reaudit"); err != nil {
		t.Fatal(err)
	}
	// The sweep audits every compatible model (clean, badnets — oddshape is
	// rejected) and attributes the jobs to the scheduler's tenant.
	deadline := time.Now().Add(30 * time.Second)
	for {
		byModel := make(map[string]bool)
		for _, j := range s.Audits().List() {
			if j.Tenant == "reaudit" {
				byModel[j.ModelID] = true
			}
		}
		if byModel["clean"] && byModel["badnets"] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-audit sweep never covered the zoo: %+v", s.Audits().List())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, j := range s.Audits().List() {
		if j.ModelID == "oddshape" {
			t.Fatalf("re-audit submitted an incompatible model: %+v", j)
		}
	}
}

// startTenantGateway fronts n tenant-enabled durable nodes with a gateway
// that has no tenancy of its own: auth happens on the nodes, reached by the
// forwarded bearer token.
func startTenantGateway(t *testing.T, configs []jobstore.TenantConfig, nodeCount int) (*httptest.Server, *Gateway) {
	t.Helper()
	nodes := make([]string, nodeCount)
	for i := range nodes {
		store, err := jobstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		srv, _ := startTenantServer(t, configs, store)
		nodes[i] = srv.URL
	}
	g, err := NewGateway(context.Background(), GatewayConfig{
		Nodes:          nodes,
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGatewayServer(g)
	t.Cleanup(gs.Close)
	srv := httptest.NewServer(gs.Handler())
	t.Cleanup(srv.Close)
	return srv, g
}

func TestGatewayAuthPassthroughAndUsageAggregation(t *testing.T) {
	configs := []jobstore.TenantConfig{{Name: "alice", Key: "ka"}}
	gw, g := startTenantGateway(t, configs, 2)
	ctx := context.Background()

	// Without a key the node (not the gateway) rejects the submission, and
	// the 401 passes through the routing hop.
	noKey, err := DialModel(ctx, gw.URL, "clean", ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noKey.AuditModel(ctx, 1); err == nil {
		t.Fatal("unauthenticated submit through gateway succeeded")
	} else {
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusUnauthorized {
			t.Fatalf("expected 401 through gateway, got %v", err)
		}
	}

	// With a key: the gateway forwards the bearer, the node attributes the
	// tenant, and the namespaced job carries it back.
	var finals []audit.Job
	for i, model := range []string{"clean", "badnets"} {
		c, err := DialModel(ctx, gw.URL, model, ClientConfig{APIKey: "ka"})
		if err != nil {
			t.Fatal(err)
		}
		job, err := c.AuditModel(ctx, i+1)
		if err != nil {
			t.Fatal(err)
		}
		if job.Tenant != "alice" || job.Node == "" {
			t.Fatalf("gateway job not attributed: %+v", job)
		}
		final, err := c.WaitAudit(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != audit.StateDone || final.Verdict == nil {
			t.Fatalf("gateway audit failed: %+v", final)
		}
		finals = append(finals, final)
	}

	// Usage through the gateway is the fan-out sum over the nodes' ledgers.
	var u TenantUsage
	resp, err := http.Get(gw.URL + "/v1/tenants/alice/usage")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&u); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var wantSpent int64
	for _, f := range finals {
		wantSpent += f.Verdict.Queries
	}
	if u.Tenant != "alice" || u.Spent != wantSpent || u.Jobs != 2 {
		t.Fatalf("aggregated usage %+v, want spent %d over 2 jobs", u, wantSpent)
	}

	// Gateway healthz aggregates the nodes' job_store sections. The numbers
	// come from the membership probes' cached health snapshots; re-probe so
	// the aggregate reflects the journals the submissions just grew.
	g.probeAll(ctx)
	h, err := Healthz(ctx, gw.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if h.JobStore == nil || h.JobStore.JournalBytes == 0 {
		t.Fatalf("gateway healthz job_store not aggregated: %+v", h.JobStore)
	}
}

func TestTenantSpendSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	configs := []jobstore.TenantConfig{{Name: "alice", Key: "ka"}}
	ctx := context.Background()

	store1, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1, _ := startTenantServer(t, configs, store1)
	c, err := DialModel(ctx, srv1.URL, "clean", ClientConfig{APIKey: "ka"})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.AuditModel(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitAudit(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != audit.StateDone {
		t.Fatalf("audit failed: %+v", final)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process over the same journal seeds the ledger with the
	// terminal job's spend: usage picks up where the last life left off.
	store2, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store2.Close() })
	srv2, _ := startTenantServer(t, configs, store2)
	var u TenantUsage
	resp, err := http.Get(srv2.URL + "/v1/tenants/alice/usage")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&u); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if u.Spent != final.Verdict.Queries || u.Jobs != 1 {
		t.Fatalf("restarted usage %+v, want spent %d jobs 1", u, final.Verdict.Queries)
	}
}
