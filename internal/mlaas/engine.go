package mlaas

import (
	"context"
	"errors"
	"sync"

	"bprom/internal/nn"
	"bprom/internal/tensor"
	"bprom/internal/vp"
)

// errEngineClosed reports a predict attempted on a stopped worker group
// (server shut down, or the registry evicted the model).
var errEngineClosed = errors.New("mlaas: model engine closed")

// predictJob is one decoded predict request waiting for a worker.
type predictJob struct {
	x *tensor.Tensor // [n, InputDim]
	// screen requests inline screening for this job's rows (honored only
	// when the engine carries a screener).
	screen bool
	out    chan predictResult
}

// predictResult is one job's outcome: the confidence rows, plus per-row
// screening outcomes when the job asked for them on a screening engine.
type predictResult struct {
	probs     *tensor.Tensor
	screening []vp.ScreenResult // nil when unscreened
}

// engine is the micro-batch worker group for one frozen model: a request
// queue drained by maxConcurrent workers, each coalescing whatever is
// queued at its tick (up to maxBatch rows) into a single forward pass. The
// nn inference path is reentrant, so no lock guards the model; forward
// passes themselves run on the process-wide shared tensor worker pool, so
// engines for many models compose without oversubscribing CPUs.
//
// An engine built with a screener additionally scores screening-enabled
// rows inline: the prompted view of every such row is appended to the SAME
// fused tensor as the plain rows, so one forward pass per tick serves both.
// Plain confidence rows occupy the exact positions (and therefore bits)
// they would without screening — nn.Model.Predict outputs are row-
// independent, so the appended view rows are invisible to them.
//
// A Server owns one engine in single-model mode; a Registry owns one per
// hot model and closes it on eviction.
type engine struct {
	model    *nn.Model
	screener *vp.Screener // nil: screening disabled for this model
	maxBatch int
	queue    chan *predictJob
	done     chan struct{}
	once     sync.Once
}

// newEngine starts maxConcurrent micro-batch workers over model. screener
// may be nil (no screening). The model must not be mutated afterwards; call
// close to stop the workers.
func newEngine(model *nn.Model, screener *vp.Screener, maxBatch, maxConcurrent int) *engine {
	e := &engine{
		model:    model,
		screener: screener,
		maxBatch: maxBatch,
		queue:    make(chan *predictJob, 4*maxConcurrent),
		done:     make(chan struct{}),
	}
	for i := 0; i < maxConcurrent; i++ {
		go e.worker()
	}
	return e
}

// close stops the workers; queued and future predicts fail with
// errEngineClosed. Safe to call more than once.
func (e *engine) close() {
	e.once.Do(func() { close(e.done) })
}

// predict enqueues one batch and waits for its confidence rows — plus
// per-row screening outcomes when screen is set and the engine screens.
// The batch must already respect maxBatch (the HTTP layer rejects larger
// requests).
func (e *engine) predict(ctx context.Context, x *tensor.Tensor, screen bool) (*tensor.Tensor, []vp.ScreenResult, error) {
	// Check done first: select chooses randomly among ready cases, so
	// without this a post-close predict could still win the enqueue race.
	select {
	case <-e.done:
		return nil, nil, errEngineClosed
	default:
	}
	job := &predictJob{x: x, screen: screen && e.screener != nil, out: make(chan predictResult, 1)}
	select {
	case e.queue <- job:
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	case <-e.done:
		return nil, nil, errEngineClosed
	}
	select {
	case res := <-job.out:
		return res.probs, res.screening, nil
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	case <-e.done:
		return nil, nil, errEngineClosed
	}
}

// worker drains the queue: it blocks for one job, greedily coalesces
// whatever else is already queued into the same forward pass (adaptive
// batching: no added latency when idle, large batches under load), and
// fans the confidence rows back out to the waiting callers.
func (e *engine) worker() {
	for {
		select {
		case <-e.done:
			return
		case job := <-e.queue:
			batch := []*predictJob{job}
			rows := job.x.Dim(0)
		coalesce:
			for rows < e.maxBatch {
				select {
				case next := <-e.queue:
					// Accepting an already-dequeued job may overshoot
					// maxBatch; since every request holds at most maxBatch
					// rows the pass stays under 2x, which the model handles
					// fine — maxBatch bounds request size, not tensor size.
					batch = append(batch, next)
					rows += next.x.Dim(0)
				default:
					break coalesce
				}
			}
			e.runBatch(batch, rows)
		}
	}
}

// runBatch runs one forward pass for the coalesced jobs and distributes the
// result rows. Screening-enabled jobs get their rows' prompted views
// appended AFTER all plain rows of the tick, so the plain block keeps the
// exact layout of the unscreened engine and the whole tick still costs one
// model.Predict. Parallelism is bounded by construction: only the engine's
// workers call this.
func (e *engine) runBatch(batch []*predictJob, rows int) {
	screenRows := 0
	for _, j := range batch {
		if j.screen {
			screenRows += j.x.Dim(0)
		}
	}
	if screenRows == 0 && len(batch) == 1 {
		// Common uncoalesced case: the job owns the whole result.
		batch[0].out <- predictResult{probs: e.model.Predict(batch[0].x)}
		return
	}
	dim := e.model.InputDim
	x := tensor.New(rows+screenRows, dim)
	off := 0
	for _, j := range batch {
		copy(x.Data[off:off+j.x.Len()], j.x.Data)
		off += j.x.Len()
	}
	view := rows
	for _, j := range batch {
		if j.screen {
			e.screener.MaterializeInto(x, view, j.x)
			view += j.x.Dim(0)
		}
	}
	probs := e.model.Predict(x)
	k := e.model.NumClasses
	row, view := 0, rows
	for _, j := range batch {
		n := j.x.Dim(0)
		out := tensor.New(n, k)
		copy(out.Data, probs.Data[row*k:(row+n)*k])
		res := predictResult{probs: out}
		if j.screen {
			res.screening = make([]vp.ScreenResult, n)
			for i := 0; i < n; i++ {
				res.screening[i] = e.screener.Score(
					probs.Data[(row+i)*k:(row+i+1)*k],
					probs.Data[(view+i)*k:(view+i+1)*k])
			}
			view += n
		}
		row += n
		j.out <- res // buffered; never blocks even if the caller is gone
	}
}
