package mlaas

import (
	"context"
	"errors"
	"sync"

	"bprom/internal/nn"
	"bprom/internal/tensor"
)

// errEngineClosed reports a predict attempted on a stopped worker group
// (server shut down, or the registry evicted the model).
var errEngineClosed = errors.New("mlaas: model engine closed")

// predictJob is one decoded predict request waiting for a worker.
type predictJob struct {
	x   *tensor.Tensor // [n, InputDim]
	out chan *tensor.Tensor
}

// engine is the micro-batch worker group for one frozen model: a request
// queue drained by maxConcurrent workers, each coalescing whatever is
// queued at its tick (up to maxBatch rows) into a single forward pass. The
// nn inference path is reentrant, so no lock guards the model; forward
// passes themselves run on the process-wide shared tensor worker pool, so
// engines for many models compose without oversubscribing CPUs.
//
// A Server owns one engine in single-model mode; a Registry owns one per
// hot model and closes it on eviction.
type engine struct {
	model    *nn.Model
	maxBatch int
	queue    chan *predictJob
	done     chan struct{}
	once     sync.Once
}

// newEngine starts maxConcurrent micro-batch workers over model. The model
// must not be mutated afterwards; call close to stop the workers.
func newEngine(model *nn.Model, maxBatch, maxConcurrent int) *engine {
	e := &engine{
		model:    model,
		maxBatch: maxBatch,
		queue:    make(chan *predictJob, 4*maxConcurrent),
		done:     make(chan struct{}),
	}
	for i := 0; i < maxConcurrent; i++ {
		go e.worker()
	}
	return e
}

// close stops the workers; queued and future predicts fail with
// errEngineClosed. Safe to call more than once.
func (e *engine) close() {
	e.once.Do(func() { close(e.done) })
}

// predict enqueues one batch and waits for its confidence rows. The batch
// must already respect maxBatch (the HTTP layer rejects larger requests).
func (e *engine) predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	// Check done first: select chooses randomly among ready cases, so
	// without this a post-close predict could still win the enqueue race.
	select {
	case <-e.done:
		return nil, errEngineClosed
	default:
	}
	job := &predictJob{x: x, out: make(chan *tensor.Tensor, 1)}
	select {
	case e.queue <- job:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.done:
		return nil, errEngineClosed
	}
	select {
	case probs := <-job.out:
		return probs, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.done:
		return nil, errEngineClosed
	}
}

// worker drains the queue: it blocks for one job, greedily coalesces
// whatever else is already queued into the same forward pass (adaptive
// batching: no added latency when idle, large batches under load), and
// fans the confidence rows back out to the waiting callers.
func (e *engine) worker() {
	for {
		select {
		case <-e.done:
			return
		case job := <-e.queue:
			batch := []*predictJob{job}
			rows := job.x.Dim(0)
		coalesce:
			for rows < e.maxBatch {
				select {
				case next := <-e.queue:
					// Accepting an already-dequeued job may overshoot
					// maxBatch; since every request holds at most maxBatch
					// rows the pass stays under 2x, which the model handles
					// fine — maxBatch bounds request size, not tensor size.
					batch = append(batch, next)
					rows += next.x.Dim(0)
				default:
					break coalesce
				}
			}
			e.runBatch(batch, rows)
		}
	}
}

// runBatch runs one forward pass for the coalesced jobs and distributes the
// result rows. Parallelism is bounded by construction: only the engine's
// workers call this.
func (e *engine) runBatch(batch []*predictJob, rows int) {
	if len(batch) == 1 {
		// Common uncoalesced case: the job owns the whole result.
		batch[0].out <- e.model.Predict(batch[0].x)
		return
	}
	x := tensor.New(rows, e.model.InputDim)
	off := 0
	for _, j := range batch {
		copy(x.Data[off:off+j.x.Len()], j.x.Data)
		off += j.x.Len()
	}
	probs := e.model.Predict(x)
	k := e.model.NumClasses
	row := 0
	for _, j := range batch {
		n := j.x.Dim(0)
		out := tensor.New(n, k)
		copy(out.Data, probs.Data[row*k:(row+n)*k])
		row += n
		j.out <- out // buffered; never blocks even if the caller is gone
	}
}
