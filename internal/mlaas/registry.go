package mlaas

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"bprom/internal/nn"
	"bprom/internal/tensor"
	"bprom/internal/vp"
)

// RegistryConfig tunes a checkpoint registry.
type RegistryConfig struct {
	// MaxLoaded bounds the LRU hot-set: at most this many models are
	// resident (weights in memory, engine running) at once; the rest stay
	// on disk until requested. Default 4. The bound is soft under pressure:
	// a model with requests in flight is never evicted, so the hot-set can
	// transiently overshoot rather than break active predictions.
	MaxLoaded int
	// MaxBatch bounds samples per request for every hosted model, and is
	// each engine's micro-batch coalescing target. Default 512.
	MaxBatch int
	// MaxConcurrent is the number of micro-batch workers per hot model.
	// All engines share the one process-wide tensor worker pool, so this
	// adds request-level concurrency, not CPU oversubscription. Default 4.
	MaxConcurrent int
	// Default selects the model served by the legacy un-prefixed routes.
	// Empty means: the checkpoint named "clean" if present, else the first
	// id in sorted order.
	Default string
	// Quantize makes int8 the registry's default serving precision: models
	// are quantized right after their weights load (nn.Model.Quantize with
	// the default weight floor), so hot-set residency is charged at int8
	// size — roughly 4x more checkpoints fit the same memory budget.
	// Checkpoints are always stored full-precision on disk; quantization is
	// derived at load and never persisted. A sidecar "precision" field
	// overrides the default per model in either direction: "fp64" pins a
	// model to the bit-exact float path (experiment reproducibility),
	// "int8" quantizes one model on an otherwise full-precision registry.
	Quantize bool
	// Screener enables inline request screening (typically derived from a
	// detector artifact via bprom.Detector.Screener) on every hosted model
	// whose input width matches the screener's prompt canvas; incompatible
	// models serve unscreened. A sidecar "screen" field overrides per model:
	// "off" opts a compatible model out, "on" asserts screening (a scan
	// error when the registry has no screener or the shapes mismatch).
	Screener *vp.Screener
	// ScreenPolicy picks what happens to flagged rows: ScreenAnnotate
	// (default) or ScreenReject. Ignored without a Screener.
	ScreenPolicy string
}

func (c *RegistryConfig) defaults() {
	if c.MaxLoaded <= 0 {
		c.MaxLoaded = 4
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 512
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.ScreenPolicy == "" {
		c.ScreenPolicy = ScreenAnnotate
	}
}

// regEntry is one discovered checkpoint. Scan metadata (info) is immutable
// after OpenRegistry except for info.Loaded; eng/refs/lastUse are guarded
// by Registry.mu, and loadMu serializes the disk load so concurrent first
// requests read the file once.
type regEntry struct {
	id   string
	path string
	info ModelInfo
	// quantize is the precision resolved at scan time: the registry default,
	// unless the sidecar's "precision" field overrode it for this model.
	quantize bool
	// screen is the screening coverage resolved at scan time: the registry
	// carries a compatible screener and the sidecar did not opt out.
	screen bool

	loadMu  sync.Mutex
	eng     *engine
	refs    int
	lastUse uint64
	// residentBytes is what this entry currently charges against the
	// registry's resident-weight total: the loaded model's WeightBytes()
	// (int8-sized for quantized entries), 0 while cold.
	residentBytes int
}

// Registry hosts a directory of saved checkpoints (*.bin in the versioned
// nn binary format, with optional *.bin.json sidecars) behind the provider
// interface. OpenRegistry scans the directory eagerly — headers and
// sidecars only, a few dozen bytes per model — and loads weights lazily on
// the first predict for each model. A bounded LRU hot-set (MaxLoaded) caps
// resident models: loading a cold model evicts the least-recently-used
// idle one, closing its engine and dropping its weights. Every hot model
// runs its own micro-batch worker group; all groups share the process-wide
// tensor worker pool.
//
// Registry implements the provider interface, so NewRegistryServer exposes
// it over HTTP; it is equally usable in-process (see examples/fleet).
type Registry struct {
	dir       string
	cfg       RegistryConfig
	defaultID string

	mu            sync.Mutex
	entries       map[string]*regEntry
	ids           []string // sorted
	tick          uint64
	loaded        int
	residentBytes int
	closed        bool
}

var _ provider = (*Registry)(nil)

// OpenRegistry scans dir for checkpoints and returns a registry hosting
// them. Every *.bin file must parse as an nn checkpoint header; sidecars
// (*.bin.json) are optional and enrich listings with names, notes, and
// parameter counts. At least one checkpoint is required.
func OpenRegistry(dir string, cfg RegistryConfig) (*Registry, error) {
	if !validScreenPolicy(cfg.ScreenPolicy) {
		return nil, fmt.Errorf("mlaas: unknown screen policy %q (want %q or %q)", cfg.ScreenPolicy, ScreenAnnotate, ScreenReject)
	}
	cfg.defaults()
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("mlaas: scan registry dir: %w", err)
	}
	r := &Registry{dir: dir, cfg: cfg, entries: make(map[string]*regEntry)}
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".bin") {
			continue
		}
		id := strings.TrimSuffix(name, ".bin")
		path := filepath.Join(dir, name)
		h, err := nn.ReadHeaderFile(path)
		if err != nil {
			return nil, fmt.Errorf("mlaas: checkpoint %q: %w", id, err)
		}
		sc, _, err := nn.ReadSidecar(path)
		if err != nil {
			return nil, fmt.Errorf("mlaas: checkpoint %q: %w", id, err)
		}
		display := sc.Name
		if display == "" {
			display = id
		}
		// Serving precision: registry default, unless the sidecar pins this
		// model. Unknown values are a scan error — a typo silently serving
		// the wrong precision would defeat the fp-exact fallback.
		quantize := cfg.Quantize
		switch sc.Precision {
		case "":
		case nn.PrecisionFP64:
			quantize = false
		case nn.PrecisionInt8:
			quantize = true
		default:
			return nil, fmt.Errorf("mlaas: checkpoint %q: sidecar precision %q (want %q or %q)",
				id, sc.Precision, nn.PrecisionFP64, nn.PrecisionInt8)
		}
		precision := nn.PrecisionFP64
		if quantize {
			precision = nn.PrecisionInt8
		}
		// Screening coverage: default on for every model the screener's
		// prompt canvas fits, with a per-model sidecar override. "on" is an
		// assertion, so a zoo that REQUIRES screening fails the scan loudly
		// instead of serving a silently unscreened model.
		screen := cfg.Screener != nil && cfg.Screener.InputDim() == h.InputDim
		switch sc.Screen {
		case "":
		case "off":
			screen = false
		case "on":
			if cfg.Screener == nil {
				return nil, fmt.Errorf("mlaas: checkpoint %q: sidecar requires screening but the registry has no screener", id)
			}
			if cfg.Screener.InputDim() != h.InputDim {
				return nil, fmt.Errorf("mlaas: checkpoint %q: sidecar requires screening but its input width %d != screener canvas %d",
					id, h.InputDim, cfg.Screener.InputDim())
			}
		default:
			return nil, fmt.Errorf("mlaas: checkpoint %q: sidecar screen %q (want \"on\" or \"off\")", id, sc.Screen)
		}
		r.entries[id] = &regEntry{
			id:       id,
			path:     path,
			quantize: quantize,
			screen:   screen,
			info: ModelInfo{
				ID:        id,
				Name:      display,
				Arch:      string(h.Arch),
				Note:      sc.Note,
				Classes:   h.NumClasses,
				InputDim:  h.InputDim,
				Params:    sc.Params,
				Precision: precision,
				Screened:  screen,
			},
		}
		r.ids = append(r.ids, id)
	}
	if len(r.ids) == 0 {
		return nil, fmt.Errorf("mlaas: no checkpoints (*.bin) in %s", dir)
	}
	sort.Strings(r.ids)
	switch {
	case cfg.Default != "":
		if _, ok := r.entries[cfg.Default]; !ok {
			return nil, fmt.Errorf("mlaas: default model %q not in %s", cfg.Default, dir)
		}
		r.defaultID = cfg.Default
	case r.entries["clean"] != nil:
		r.defaultID = "clean"
	default:
		r.defaultID = r.ids[0]
	}
	return r, nil
}

// Dir reports the scanned checkpoint directory.
func (r *Registry) Dir() string { return r.dir }

// Len reports how many checkpoints the registry hosts.
func (r *Registry) Len() int { return len(r.ids) }

// DefaultID reports the model served by the legacy un-prefixed routes.
func (r *Registry) DefaultID() string { return r.defaultID }

// MaxBatch reports the per-request row limit shared by all hosted models.
func (r *Registry) MaxBatch() int { return r.cfg.MaxBatch }

// MaxLoaded reports the LRU hot-set capacity (resolved default included).
func (r *Registry) MaxLoaded() int { return r.cfg.MaxLoaded }

// LoadedCount reports how many models are resident right now.
func (r *Registry) LoadedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.loaded
}

// ResidentBytes reports the total weight bytes held by resident models
// right now: quantized entries charge their int8 footprint, full-precision
// entries their float64 one. The LRU bound itself stays count-based
// (MaxLoaded); this is the observability hook that shows what Quantize
// buys within that count.
func (r *Registry) ResidentBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.residentBytes
}

// Models lists every hosted checkpoint in sorted id order, with current
// hot-set residency flags.
func (r *Registry) Models() []ModelInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ModelInfo, 0, len(r.ids))
	for _, id := range r.ids {
		out = append(out, r.entries[id].info)
	}
	return out
}

// Info resolves one checkpoint's metadata without loading it. id "" means
// the default model.
func (r *Registry) Info(id string) (ModelInfo, error) {
	if id == "" {
		id = r.defaultID
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return ModelInfo{}, fmt.Errorf("%w: %q", ErrUnknownModel, id)
	}
	return e.info, nil
}

// Predict routes one batch to the model's engine, loading the checkpoint
// first if it is cold. id "" means the default model. screen asks for
// inline screening; models outside the screener's coverage return nil
// screening outcomes.
func (r *Registry) Predict(ctx context.Context, id string, x *tensor.Tensor, screen bool) (*tensor.Tensor, []vp.ScreenResult, error) {
	if id == "" {
		id = r.defaultID
	}
	e, eng, err := r.acquire(id)
	if err != nil {
		return nil, nil, err
	}
	defer r.release(e)
	return eng.predict(ctx, x, screen)
}

// acquire returns the model's running engine, loading the checkpoint if
// needed, and pins the entry (refs) so eviction cannot close the engine
// while the caller uses it. Balance every successful acquire with release.
func (r *Registry) acquire(id string) (*regEntry, *engine, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, nil, errEngineClosed
	}
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownModel, id)
	}
	e.refs++
	r.tick++
	e.lastUse = r.tick
	eng := e.eng
	r.mu.Unlock()
	if eng != nil {
		return e, eng, nil
	}

	// Cold: load under the entry's own lock so racing first requests do
	// one disk read, while requests for other models proceed untouched.
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	r.mu.Lock()
	eng = e.eng
	r.mu.Unlock()
	if eng != nil {
		return e, eng, nil // a racing loader won while we waited
	}
	m, err := nn.LoadFile(e.path)
	if err != nil {
		r.release(e)
		return nil, nil, fmt.Errorf("mlaas: load model %q: %w", id, err)
	}
	if e.quantize {
		// Quantization is derived here, at load, from the full-precision
		// checkpoint — never persisted. Layers under the weight floor stay
		// fp inside the model; residency is charged at whatever the mixed
		// representation actually occupies.
		m.Quantize(0)
	}
	var screener *vp.Screener
	if e.screen {
		screener = r.cfg.Screener
	}
	eng = newEngine(m, screener, r.cfg.MaxBatch, r.cfg.MaxConcurrent)
	r.mu.Lock()
	if r.closed {
		e.refs--
		r.mu.Unlock()
		eng.close()
		return nil, nil, errEngineClosed
	}
	e.eng = eng
	e.info.Loaded = true
	e.residentBytes = m.WeightBytes()
	e.info.ResidentBytes = e.residentBytes
	r.loaded++
	r.residentBytes += e.residentBytes
	r.evictLocked()
	r.mu.Unlock()
	return e, eng, nil
}

// release unpins an acquired entry. If the hot-set overshot MaxLoaded
// while every resident model was busy, the drain is when the bound is
// restored — so eviction reruns here, not only on loads.
func (r *Registry) release(e *regEntry) {
	r.mu.Lock()
	e.refs--
	if !r.closed && r.loaded > r.cfg.MaxLoaded {
		r.evictLocked()
	}
	r.mu.Unlock()
}

// evictLocked closes least-recently-used idle engines until the hot-set is
// back within MaxLoaded. Entries with requests in flight are skipped — the
// hot-set transiently overshoots rather than failing active predicts.
// Callers hold r.mu.
func (r *Registry) evictLocked() {
	for r.loaded > r.cfg.MaxLoaded {
		var victim *regEntry
		for _, e := range r.entries {
			if e.eng == nil || e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return // everything hot is busy; retry at the next load
		}
		victim.eng.close()
		victim.eng = nil
		victim.info.Loaded = false
		r.loaded--
		r.residentBytes -= victim.residentBytes
		victim.residentBytes = 0
		victim.info.ResidentBytes = 0
	}
}

// Close stops every engine and drops the hot-set. In-flight requests fail
// with 503; the registry cannot be reopened. Safe to call more than once.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for _, e := range r.entries {
		if e.eng != nil {
			e.eng.close()
			e.eng = nil
			e.info.Loaded = false
			e.residentBytes = 0
			e.info.ResidentBytes = 0
		}
	}
	r.loaded = 0
	r.residentBytes = 0
}
