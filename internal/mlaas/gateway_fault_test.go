package mlaas

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Fault-injection battery: nodes die between requests (httptest servers
// closed mid-run), shed load, or hold audit jobs hostage — and the gateway
// must mark down, fail over, and surface structured errors instead of
// hangs. The client-side regressions for the 503 path (WaitAudit polling,
// predict retry + cancel) live here too: they are what keeps a fleet CLI
// pointed at a degraded gateway responsive.

// gwTestConfig is the fast-hysteresis config the fault tests share: one
// strike marks a node down, membership is driven manually via probeAll.
func gwTestConfig(nodes ...string) GatewayConfig {
	return GatewayConfig{
		Nodes:          nodes,
		HealthInterval: time.Hour,
		MarkDownAfter:  1,
		MarkUpAfter:    1,
		Client:         ClientConfig{Timeout: 5 * time.Second},
	}
}

// TestGatewayFailoverOnNodeKill kills one of two replicas mid-run: every
// predict must keep succeeding bit-identically via the survivor, and the
// dead node must be marked down by the failed request itself (passive
// detection, no probe needed).
func TestGatewayFailoverOnNodeKill(t *testing.T) {
	m := testModel(t)
	var nodeSrvs []*httptest.Server
	for i := 0; i < 2; i++ {
		s := NewServer(m, ServerConfig{})
		t.Cleanup(s.Close)
		srv := httptest.NewServer(s.Handler())
		t.Cleanup(srv.Close)
		nodeSrvs = append(nodeSrvs, srv)
	}
	cfg := gwTestConfig(nodeSrvs[0].URL, nodeSrvs[1].URL)
	cfg.Replication = 2
	g, err := NewGateway(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGatewayServer(g)
	t.Cleanup(gs.Close)
	gwSrv := httptest.NewServer(gs.Handler())
	t.Cleanup(gwSrv.Close)

	ctx := context.Background()
	c, err := Dial(ctx, gwSrv.URL, ClientConfig{Retries: NoRetries})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 16)
	rng.New(5).Uniform(x.Data, 0, 1)
	want := m.Predict(x.Clone())

	check := func() {
		t.Helper()
		got, err := c.Predict(ctx, x.Clone())
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("confidence %d drifted: %v vs %v", i, got.Data[i], want.Data[i])
			}
		}
	}
	check()
	if got := g.HealthyNodes(); got != 2 {
		t.Fatalf("healthy nodes before kill: %d", got)
	}

	nodeSrvs[0].Close() // the kill: connection refused from here on

	// Replication 2 + failover: every predict still succeeds, and within a
	// few requests the rotation has touched the dead node and struck it out.
	for i := 0; i < 4; i++ {
		check()
	}
	if got := g.HealthyNodes(); got != 1 {
		t.Fatalf("dead node not marked down after failed predicts: %d healthy", got)
	}

	// The gateway's healthz reflects the degraded fleet.
	resp, err := http.Get(gwSrv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Nodes != 2 || h.HealthyNodes != 1 {
		t.Fatalf("degraded healthz: %+v", h)
	}
}

// TestGatewayUnreplicatedModel503 shards two single-model zoos across two
// nodes (no replication) and kills one: the orphaned model must answer a
// prompt structured 503 — not a hang, not a 404 (its listing is sticky) —
// while the surviving node's model keeps serving.
func TestGatewayUnreplicatedModel503(t *testing.T) {
	m := testModel(t)
	var nodeSrvs []*httptest.Server
	for _, id := range []string{"alpha", "beta"} {
		dir := t.TempDir()
		if err := m.SaveFile(filepath.Join(dir, id+".bin")); err != nil {
			t.Fatal(err)
		}
		reg, err := OpenRegistry(dir, RegistryConfig{MaxLoaded: 1})
		if err != nil {
			t.Fatal(err)
		}
		s := NewRegistryServer(reg)
		t.Cleanup(s.Close)
		srv := httptest.NewServer(s.Handler())
		t.Cleanup(srv.Close)
		nodeSrvs = append(nodeSrvs, srv)
	}
	g, err := NewGateway(context.Background(), gwTestConfig(nodeSrvs[0].URL, nodeSrvs[1].URL))
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGatewayServer(g)
	t.Cleanup(gs.Close)
	gwSrv := httptest.NewServer(gs.Handler())
	t.Cleanup(gwSrv.Close)
	ctx := context.Background()

	// The merged zoo spans both shards.
	list, err := ListModels(ctx, gwSrv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 2 || list.Models[0].ID != "alpha" || list.Models[1].ID != "beta" {
		t.Fatalf("merged listing: %+v", list)
	}

	x := tensor.New(1, 16)
	rng.New(6).Uniform(x.Data, 0, 1)
	body, err := json.Marshal(map[string]any{"inputs": [][]float64{x.Row(0)}})
	if err != nil {
		t.Fatal(err)
	}
	predict := func(id string) *http.Response {
		t.Helper()
		resp, err := http.Post(gwSrv.URL+"/v1/models/"+id+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := predict("alpha"); resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha before kill: %s", resp.Status)
	}

	nodeSrvs[0].Close() // alpha's only host dies

	start := time.Now()
	resp := predict("alpha")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("orphaned predict took %s (must fail fast, not hang)", elapsed)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("orphaned model: %s, want 503", resp.Status)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(envelope.Error, "alpha") {
		t.Fatalf("503 envelope should name the model: %+v", envelope)
	}

	// Sticky listing: metadata still answers (the model exists, it is
	// currently unservable — 503, not 404).
	infoResp, err := http.Get(gwSrv.URL + "/v1/models/alpha/info")
	if err != nil {
		t.Fatal(err)
	}
	infoResp.Body.Close()
	if infoResp.StatusCode != http.StatusOK {
		t.Fatalf("sticky info after kill: %s", infoResp.Status)
	}

	// Audit submissions for the orphan shed the same way.
	auditResp, err := http.Post(gwSrv.URL+"/v1/models/alpha/audits", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	auditResp.Body.Close()
	if auditResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("orphaned audit submit: %s, want 503", auditResp.Status)
	}

	// The surviving shard is untouched.
	if resp := predict("beta"); resp.StatusCode != http.StatusOK {
		t.Fatalf("beta after alpha's node died: %s", resp.Status)
	}
}

// TestGatewayRetryAfterPropagation pins the slow-node contract end-to-end:
// a node shedding with 429 + Retry-After must reach the end client with
// the node's own hint intact — header on the wire, field on StatusError.
func TestGatewayRetryAfterPropagation(t *testing.T) {
	s := NewServer(testModel(t), ServerConfig{})
	t.Cleanup(s.Close)
	inner := s.Handler()
	nodeSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/predict") {
			w.Header().Set("Retry-After", "7")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"node saturated"}`))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(nodeSrv.Close)

	g, err := NewGateway(context.Background(), gwTestConfig(nodeSrv.URL))
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGatewayServer(g)
	t.Cleanup(gs.Close)
	gwSrv := httptest.NewServer(gs.Handler())
	t.Cleanup(gwSrv.Close)
	ctx := context.Background()

	// Wire level: status and header survive the hop.
	resp, err := http.Post(gwSrv.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"inputs":[[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed predict: %s, want 429", resp.Status)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After through gateway: %q, want \"7\"", got)
	}

	// Client level: the hint lands on StatusError.RetryAfter.
	c, err := Dial(ctx, gwSrv.URL, ClientConfig{Retries: NoRetries})
	if err != nil {
		t.Fatal(err)
	}
	_, predictErr := c.Predict(ctx, tensor.New(1, 16))
	var se *StatusError
	if !errors.As(predictErr, &se) {
		t.Fatalf("want StatusError, got %v", predictErr)
	}
	if se.Code != http.StatusTooManyRequests || se.RetryAfter != 7 {
		t.Fatalf("StatusError through gateway: %+v", se)
	}
	// Shedding is not death: the node stays in the membership.
	if got := g.HealthyNodes(); got != 1 {
		t.Fatalf("429 must not mark the node down: %d healthy", got)
	}
}

// fakeAuditNode is a minimal wire-compatible node whose audit job "a1"
// runs forever — the piece a real node cannot provide deterministically
// for poll-path fault injection.
func fakeAuditNode(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	info := `{"id":"m","name":"m","classes":3,"input_dim":16,"max_batch":64}`
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","models":1,"audits_enabled":true,"audit_jobs":1}`))
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"default":"m","models":[` + info + `]}`))
	})
	for _, route := range []string{"GET /v1/info", "GET /v1/models/m/info"} {
		mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(info))
		})
	}
	job := `{"id":"a1","model_id":"m","state":"running","created":"2026-01-01T00:00:00Z"}`
	mux.HandleFunc("POST /v1/models/m/audits", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(job))
	})
	mux.HandleFunc("GET /v1/audits/a1", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(job))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestGatewayAuditPollSurvivesNodeKill kills the node holding a running
// audit job: polling the namespaced job must return a structured 503
// immediately, and a fleet-style WaitAudit against the degraded gateway
// must keep polling (the job may come back) yet stop the moment its
// context expires — the exact no-hang contract bprom -fleet relies on.
// The kill is injected through the chaos harness rather than closing the
// server, so the fault is revertible: the final section lifts it and
// proves the same poll works again with no gateway restart.
func TestGatewayAuditPollSurvivesNodeKill(t *testing.T) {
	node := fakeAuditNode(t)
	cfg := gwTestConfig(node.URL)
	chaos := NewChaosTransport(nil)
	cfg.Client.HTTPClient = &http.Client{Transport: chaos}
	g, err := NewGateway(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGatewayServer(g)
	t.Cleanup(gs.Close)
	gwSrv := httptest.NewServer(gs.Handler())
	t.Cleanup(gwSrv.Close)
	ctx := context.Background()

	c, err := DialModel(ctx, gwSrv.URL, "m", ClientConfig{AuditPoll: 30 * time.Millisecond, Retries: NoRetries})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.AuditModel(ctx, ServerAssignedInspectID)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "n0.a1" || job.Node != "n0" {
		t.Fatalf("namespaced job: %+v", job)
	}
	if got, err := c.GetAudit(ctx, job.ID); err != nil || got.State != "running" {
		t.Fatalf("poll before kill: %+v, %v", got, err)
	}

	chaos.Set(hostOf(node.URL), ChaosRule{Kill: true}) // the node holding the job drops off the network

	start := time.Now()
	_, pollErr := c.GetAudit(ctx, job.ID)
	var se *StatusError
	if !errors.As(pollErr, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("poll after kill: want structured 503, got %v", pollErr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("poll after kill took %s", elapsed)
	}

	// WaitAudit polls through the 503s (transient: the node might return)
	// but stops the moment the caller's deadline hits.
	waitCtx, cancel := context.WithTimeout(ctx, 400*time.Millisecond)
	defer cancel()
	start = time.Now()
	_, waitErr := c.WaitAudit(waitCtx, job.ID)
	if waitErr == nil {
		t.Fatal("WaitAudit against a dead node should fail once its context expires")
	}
	if !errors.Is(waitErr, context.DeadlineExceeded) {
		t.Fatalf("WaitAudit should surface the caller's deadline, got: %v", waitErr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("WaitAudit hung %s past its 400ms deadline", elapsed)
	}

	// Lift the fault: the node was never actually gone, and the next poll
	// must succeed without any gateway restart.
	chaos.Clear(hostOf(node.URL))
	if got, err := c.GetAudit(ctx, job.ID); err != nil || got.State != "running" {
		t.Fatalf("poll after heal: %+v, %v", got, err)
	}
}

// TestWaitAuditTolerates503Blip: a transient 503 (node flap behind a
// gateway) must not abort a fleet wait — the regression the 503 path never
// had coverage for.
func TestWaitAuditTolerates503Blip(t *testing.T) {
	var hits atomic.Int64
	done := `{"id":"a1","model_id":"m","state":"done","created":"2026-01-01T00:00:00Z"}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"node n0: node unreachable"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(done))
	}))
	t.Cleanup(srv.Close)

	c := &Client{base: srv.URL, cfg: ClientConfig{AuditPoll: 10 * time.Millisecond}}
	c.cfg.defaults()
	job, err := c.WaitAudit(context.Background(), "a1")
	if err != nil {
		t.Fatalf("WaitAudit aborted on a transient 503: %v", err)
	}
	if job.State != "done" {
		t.Fatalf("final job: %+v", job)
	}
	if got := hits.Load(); got < 3 {
		t.Fatalf("WaitAudit gave up after %d polls", got)
	}
}

// TestWaitAuditStopsOnPermanentStatus: 404 means the job is gone — no
// amount of polling brings it back.
func TestWaitAuditStopsOnPermanentStatus(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error":"unknown job"}`))
	}))
	t.Cleanup(srv.Close)

	c := &Client{base: srv.URL, cfg: ClientConfig{AuditPoll: 10 * time.Millisecond}}
	c.cfg.defaults()
	_, err := c.WaitAudit(context.Background(), "a9")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("want 404 StatusError, got %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("WaitAudit polled a deleted job %d times, want 1", got)
	}
}

// TestPredictStops503RetryOnCancelledContext extends the cancel-path
// regression to the gateway's signature status: 503 with a Retry-After
// hint is retryable, but a cancelled caller context overrides the hint
// immediately.
func TestPredictStops503RetryOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/info" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"id":"default","name":"gw","classes":3,"input_dim":16,"max_batch":64}`))
			return
		}
		hits.Add(1)
		cancel() // caller gives up right as the 503 lands
		w.Header().Set("Retry-After", "30")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(fmt.Sprintf(`{"error":"no healthy replica (%d)"}`, hits.Load())))
	}))
	t.Cleanup(srv.Close)

	c, err := Dial(context.Background(), srv.URL, ClientConfig{Retries: 5})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Predict(ctx, tensor.New(1, 16))
	if err == nil {
		t.Fatal("expected error")
	}
	// Depending on when cancellation lands, the last attempt surfaces as
	// either the transport-level cancel or the received 503 — both are
	// fine; issuing another attempt is not.
	var se *StatusError
	if !errors.Is(err, context.Canceled) && !(errors.As(err, &se) && se.Code == http.StatusServiceUnavailable) {
		t.Fatalf("error should surface the cancellation or the final 503, got: %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("predict hit the endpoint %d times after cancellation, want 1 (Retry-After must not override cancel)", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled predict took %s", elapsed)
	}
}
