package mlaas

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Membership and placement: the routing brain of the gateway, exercised
// without real inference where possible (placement is a pure function) and
// under -race with flapping membership where it matters. CI runs this file
// with -race -count=2.

func placementTestNodes() []string {
	return []string{"n0", "n1", "n2", "n3", "n4"}
}

// TestPlacementOrderStableAndSpread: placement is deterministic (two calls
// agree), covers every node, and spreads primaries across the fleet
// instead of piling onto one node.
func TestPlacementOrderStableAndSpread(t *testing.T) {
	nodes := placementTestNodes()
	primaries := make(map[string]int)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("model-%03d", i)
		order := placementOrder(id, nodes)
		again := placementOrder(id, nodes)
		if len(order) != len(nodes) {
			t.Fatalf("%s: order dropped nodes: %v", id, order)
		}
		for j := range order {
			if order[j] != again[j] {
				t.Fatalf("%s: placement not deterministic: %v vs %v", id, order, again)
			}
		}
		seen := make(map[string]bool, len(order))
		for _, n := range order {
			seen[n] = true
		}
		if len(seen) != len(nodes) {
			t.Fatalf("%s: order is not a permutation: %v", id, order)
		}
		primaries[order[0]]++
	}
	// 200 ids over 5 nodes: a uniform hash puts ~40 on each. The exact
	// split is deterministic; the assertion guards against a placement bug
	// collapsing the spread, not against hash variance.
	for _, n := range nodes {
		if primaries[n] < 10 {
			t.Fatalf("node %s is primary for only %d/200 models: %v", n, primaries[n], primaries)
		}
	}
}

// TestPlacementMinimalReshuffle pins the rendezvous invariant: removing
// one node reassigns exactly the models it owned — every other model's
// preference order is unchanged with the dead node deleted in place.
func TestPlacementMinimalReshuffle(t *testing.T) {
	nodes := placementTestNodes()
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("model-%03d", i)
		full := placementOrder(id, nodes)
		for _, removed := range nodes {
			var survivors []string
			for _, n := range nodes {
				if n != removed {
					survivors = append(survivors, n)
				}
			}
			got := placementOrder(id, survivors)
			var want []string
			for _, n := range full {
				if n != removed {
					want = append(want, n)
				}
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s without %s: order %v, want %v (full %v)", id, removed, got, want, full)
				}
			}
		}
	}
}

// TestGatewayBootstrapRequiresHealthyNode: a gateway over nothing but dead
// nodes is a configuration error, reported with the per-node reasons.
func TestGatewayBootstrapRequiresHealthyNode(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	dead.Close()
	_, err := NewGateway(context.Background(), GatewayConfig{Nodes: []string{dead.URL}})
	if err == nil || !strings.Contains(err.Error(), "no healthy node") {
		t.Fatalf("bootstrap over a dead node: %v", err)
	}
	if _, err := NewGateway(context.Background(), GatewayConfig{}); err == nil {
		t.Fatal("bootstrap with no nodes should fail")
	}
}

// TestGatewayMembershipHysteresis drives probes manually: one bad probe
// must not mark a node down (MarkDownAfter 2), one good probe must not
// bring it back (MarkUpAfter 2) — and the first-ever success bypasses the
// mark-up delay so a fresh gateway starts serving immediately.
func TestGatewayMembershipHysteresis(t *testing.T) {
	var failing atomic.Bool
	s := NewServer(testModel(t), ServerConfig{})
	t.Cleanup(s.Close)
	inner := s.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	cfg := GatewayConfig{
		Nodes:          []string{srv.URL},
		HealthInterval: time.Hour,
		MarkDownAfter:  2,
		MarkUpAfter:    2,
	}
	ctx := context.Background()
	g, err := NewGateway(ctx, cfg) // first-ever success marks up instantly
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	if g.HealthyNodes() != 1 {
		t.Fatal("bootstrap should mark the node up on its first success")
	}

	failing.Store(true)
	g.probeAll(ctx)
	if g.HealthyNodes() != 1 {
		t.Fatal("one failed probe must not mark down (hysteresis)")
	}
	g.probeAll(ctx)
	if g.HealthyNodes() != 0 {
		t.Fatal("two consecutive failed probes must mark down")
	}

	failing.Store(false)
	g.probeAll(ctx)
	if g.HealthyNodes() != 0 {
		t.Fatal("one good probe must not mark a downed node up (hysteresis)")
	}
	g.probeAll(ctx)
	if g.HealthyNodes() != 1 {
		t.Fatal("two consecutive good probes must mark up")
	}
}

// TestGatewayMembershipFlapStress hammers predicts through a gateway over
// 4 nodes while membership flaps (nodes toggled into 503 one at a time,
// with the real probe loop running hot). Every predict must succeed via
// failover and return bit-identical confidences. Run under -race, this is
// the routing/membership data-race net.
func TestGatewayMembershipFlapStress(t *testing.T) {
	m := testModel(t)
	const nodeCount = 4
	var flags [nodeCount]atomic.Bool
	var nodeURLs []string
	for i := 0; i < nodeCount; i++ {
		s := NewServer(m, ServerConfig{})
		t.Cleanup(s.Close)
		inner := s.Handler()
		flag := &flags[i]
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if flag.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		nodeURLs = append(nodeURLs, srv.URL)
	}

	cfg := GatewayConfig{
		Nodes:          nodeURLs,
		Replication:    nodeCount, // every node replicates the model: failover always has a target
		HealthInterval: 5 * time.Millisecond,
		MarkDownAfter:  1,
		MarkUpAfter:    1,
		Client:         ClientConfig{Timeout: 5 * time.Second},
	}
	ctx := context.Background()
	g, err := NewGateway(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGatewayServer(g)
	t.Cleanup(gs.Close)
	gwSrv := httptest.NewServer(gs.Handler())
	t.Cleanup(gwSrv.Close)

	c, err := Dial(ctx, gwSrv.URL, ClientConfig{Retries: NoRetries})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 16)
	rng.New(11).Uniform(x.Data, 0, 1)
	want := m.Predict(x.Clone())

	// Flapper: one node at a time dips for a few milliseconds — never two
	// at once, so a correct gateway can always serve.
	stopFlap := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		i := 0
		for {
			select {
			case <-stopFlap:
				return
			default:
			}
			flag := &flags[i%nodeCount]
			flag.Store(true)
			time.Sleep(8 * time.Millisecond)
			flag.Store(false)
			time.Sleep(4 * time.Millisecond)
			i++
		}
	}()

	const workers, perWorker = 8, 25
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				got, err := c.Predict(ctx, x.Clone())
				if err != nil {
					errCh <- err
					return
				}
				for j := range want.Data {
					if got.Data[j] != want.Data[j] {
						errCh <- fmt.Errorf("confidence %d drifted under flapping membership", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stopFlap)
	flapWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Let every node recover and the probe loop converge.
	g.probeAll(ctx)
	if got := g.HealthyNodes(); got != nodeCount {
		t.Fatalf("fleet did not converge after flapping stopped: %d/%d healthy", got, nodeCount)
	}
}
