package mlaas

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Chaos harness: a fault-injecting http.RoundTripper that sits between any
// mlaas client (including the gateway's per-node clients) and the wire.
// Faults are keyed by target host, toggled at runtime, and deterministic —
// a test decides exactly which node misbehaves, how, and when, instead of
// relying on real process kills and timing luck. Install it with
//
//	cfg.HTTPClient = &http.Client{Transport: NewChaosTransport(nil)}
//
// on a ClientConfig (or GatewayConfig.Client) and drive it with Set/Clear.
// It ships in the package proper, not a _test file, so operator tooling and
// example programs can stage failure drills against live fleets too.

// ChaosRule describes the faults injected for one host. Zero value = no
// faults. Checks happen in field order below; the first matching fault
// wins.
type ChaosRule struct {
	// Kill makes every request fail immediately with a transport error, as
	// if the process were gone (connection refused).
	Kill bool
	// Hang blocks every request until its context expires, like a machine
	// that accepts the SYN and then freezes. The request fails with the
	// context's error; a client without a deadline waits forever.
	Hang bool
	// Delay sleeps before forwarding, modelling a slow node. The sleep
	// respects the request context.
	Delay time.Duration
	// FailNext answers the next N requests with a synthetic 500 instead of
	// forwarding, then the burst is spent and requests flow again.
	FailNext int
	// CorruptPath, when non-empty, forwards matching requests (substring
	// match on the URL path) but flips bits in the response body —
	// simulating a checkpoint export damaged in flight. CRC framing on the
	// receiving side must catch it.
	CorruptPath string
}

// ChaosTransport is an http.RoundTripper applying per-host ChaosRules.
// Safe for concurrent use.
type ChaosTransport struct {
	next http.RoundTripper

	mu    sync.Mutex
	rules map[string]*ChaosRule
}

// NewChaosTransport wraps next (nil: http.DefaultTransport).
func NewChaosTransport(next http.RoundTripper) *ChaosTransport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &ChaosTransport{next: next, rules: make(map[string]*ChaosRule)}
}

// Set installs (replaces) the rule for one host ("127.0.0.1:8701").
func (t *ChaosTransport) Set(host string, rule ChaosRule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules[host] = &rule
}

// Clear heals one host.
func (t *ChaosTransport) Clear(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.rules, host)
}

// ClearAll heals the whole fleet.
func (t *ChaosTransport) ClearAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = make(map[string]*ChaosRule)
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	rule := t.rules[req.URL.Host]
	var r ChaosRule
	if rule != nil {
		r = *rule
		if rule.FailNext > 0 {
			rule.FailNext--
		}
	}
	t.mu.Unlock()
	switch {
	case r.Kill:
		return nil, fmt.Errorf("chaos: connect %s: connection refused", req.URL.Host)
	case r.Hang:
		<-req.Context().Done()
		return nil, fmt.Errorf("chaos: %s hung: %w", req.URL.Host, req.Context().Err())
	}
	if r.Delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, fmt.Errorf("chaos: %s slow: %w", req.URL.Host, req.Context().Err())
		case <-time.After(r.Delay):
		}
	}
	if r.FailNext > 0 {
		return synthetic500(req), nil
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if r.CorruptPath != "" && strings.Contains(req.URL.Path, r.CorruptPath) {
		return corruptBody(resp)
	}
	return resp, nil
}

// synthetic500 fabricates a well-formed error-envelope response, the shape
// a node under pressure would actually send.
func synthetic500(req *http.Request) *http.Response {
	body := `{"error":{"message":"chaos: injected server failure"}}`
	return &http.Response{
		Status:        "500 Internal Server Error",
		StatusCode:    http.StatusInternalServerError,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// corruptBody reads the response body and flips one bit per 64 bytes
// (always at least one), returning the damaged copy. Headers — including
// any length or checksum metadata — are left alone, exactly like silent
// wire or disk corruption.
func corruptBody(resp *http.Response) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("chaos: corrupting body: %w", err)
	}
	for i := 0; i < len(data); i += 64 {
		data[i] ^= 0x80
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	resp.ContentLength = int64(len(data))
	return resp, nil
}
