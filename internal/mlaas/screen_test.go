package mlaas

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bprom/internal/audit"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/tensor"
	"bprom/internal/vp"
)

// testScreener builds a screener whose prompt canvas matches testModel
// (1x4x4, input dim 16), with a deterministic non-trivial border.
func testScreener(t testing.TB, threshold float64) *vp.Screener {
	t.Helper()
	p, err := vp.NewPrompt(data.Shape{C: 1, H: 4, W: 4}, data.Shape{C: 1, H: 8, W: 8}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng.New(77).Uniform(p.Theta, 0, 1)
	s, err := vp.NewScreener(p, threshold)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// startModelServer serves an already-built model (startTestServer always
// builds a fresh fp64 testModel; quantized-serving tests need their own).
func startModelServer(t *testing.T, m *nn.Model, cfg ServerConfig) *httptest.Server {
	t.Helper()
	s := NewServer(m, cfg)
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestScreeningAnnotateKeepsConfidencesBitIdentical is the tentpole's
// non-negotiable: turning screening on (annotate policy) must not move a
// single confidence bit. Plain rows sit at the same offsets of the fused
// micro-batch tensor whether or not prompted views ride behind them, and
// nn.Model.Predict is row-independent — this test holds that contract.
func TestScreeningAnnotateKeepsConfidencesBitIdentical(t *testing.T) {
	ctx := context.Background()
	plainSrv, _ := startTestServer(t, ServerConfig{})
	scrSrv, _ := startTestServer(t, ServerConfig{Screener: testScreener(t, 0.5)})

	cPlain, err := Dial(ctx, plainSrv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cPlain.Screened() {
		t.Fatal("unscreened endpoint advertises screening")
	}
	cScr, err := Dial(ctx, scrSrv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !cScr.Screened() || cScr.ScreenPolicy() != ScreenAnnotate {
		t.Fatalf("screened endpoint metadata: screened=%v policy=%q", cScr.Screened(), cScr.ScreenPolicy())
	}

	x := tensor.New(7, 16)
	rng.New(3).Uniform(x.Data, 0, 1)
	want, err := cPlain.Predict(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	got, scr, err := cScr.PredictScreened(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(scr) != 7 {
		t.Fatalf("got %d screening entries for 7 rows", len(scr))
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("screened confidence %d differs: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	for i, s := range scr {
		if s.Threshold != 0.5 || s.Score < 0 || s.Score > 1 {
			t.Fatalf("screening row %d implausible: %+v", i, s)
		}
		if s.Flagged != (s.Score >= s.Threshold) {
			t.Fatalf("screening row %d flag disagrees with its own score: %+v", i, s)
		}
	}

	// Plain Predict against the screened endpoint opts out on the wire and
	// must stay bit-identical too.
	got2, err := cScr.Predict(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got2.Data[i] != want.Data[i] {
			t.Fatalf("opt-out confidence %d differs: %v vs %v", i, got2.Data[i], want.Data[i])
		}
	}
}

// TestScreeningScoresMatchSerialReference pins fused-path parity: one
// batched screened request and n single-row screened requests must both
// reproduce vp.Screener.Screen's two-pass reference scores exactly.
func TestScreeningScoresMatchSerialReference(t *testing.T) {
	ctx := context.Background()
	sc := testScreener(t, 0.5)
	srv, m := startTestServer(t, ServerConfig{Screener: sc, MaxBatch: 64})
	c, err := Dial(ctx, srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}

	const n = 9
	x := tensor.New(n, 16)
	rng.New(12).Uniform(x.Data, 0, 1)
	ref := sc.Screen(m, x.Clone())

	_, batch, err := c.PredictScreened(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != n {
		t.Fatalf("batched request returned %d screening entries", len(batch))
	}
	for i := range ref {
		if batch[i].Score != ref[i].Score || batch[i].Flagged != ref[i].Flagged {
			t.Fatalf("batched score %d differs from reference: %+v vs %+v", i, batch[i], ref[i])
		}
	}
	for i := 0; i < n; i++ {
		row := tensor.FromSlice(x.Data[i*16:(i+1)*16], 1, 16)
		_, one, err := c.PredictScreened(ctx, row)
		if err != nil {
			t.Fatal(err)
		}
		if len(one) != 1 || one[0].Score != ref[i].Score || one[0].Flagged != ref[i].Flagged {
			t.Fatalf("single-row score %d differs from reference: %+v vs %+v", i, one, ref[i])
		}
	}
}

// TestScreeningConcurrentMatchesReference blasts a screened server from
// concurrent clients so micro-batches coalesce rows AND prompted views from
// different requests into shared tensors — every worker must still get its
// own reference scores back. Run under -race this doubles as the data-race
// check on the fused screening path.
func TestScreeningConcurrentMatchesReference(t *testing.T) {
	ctx := context.Background()
	sc := testScreener(t, 0.5)
	srv, m := startTestServer(t, ServerConfig{Screener: sc, MaxBatch: 32, MaxConcurrent: 4})
	c, err := Dial(ctx, srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}

	const workers, rows = 8, 5
	inputs := make([]*tensor.Tensor, workers)
	refs := make([][]vp.ScreenResult, workers)
	for w := 0; w < workers; w++ {
		inputs[w] = tensor.New(rows, 16)
		rng.New(uint64(100+w)).Uniform(inputs[w].Data, 0, 1)
		refs[w] = sc.Screen(m, inputs[w].Clone())
	}

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				_, scr, err := c.PredictScreened(ctx, inputs[w])
				if err != nil {
					errs[w] = err
					return
				}
				for i := range refs[w] {
					if scr[i].Score != refs[w][i].Score || scr[i].Flagged != refs[w][i].Flagged {
						errs[w] = fmt.Errorf("worker %d iter %d row %d: %+v vs reference %+v", w, iter, i, scr[i], refs[w][i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestScreenRejectPolicyWithholdsFlaggedRows drives the reject policy with
// a threshold low enough to flag everything: screened requests get their
// confidences withheld (null rows on the wire, zero rows in the client)
// with a structured screening error, while the wire-level opt-out still
// serves the exact unscreened confidences.
func TestScreenRejectPolicyWithholdsFlaggedRows(t *testing.T) {
	ctx := context.Background()
	srv, m := startTestServer(t, ServerConfig{Screener: testScreener(t, 0.05), ScreenPolicy: ScreenReject})
	c, err := Dial(ctx, srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.ScreenPolicy() != ScreenReject {
		t.Fatalf("advertised policy %q, want reject", c.ScreenPolicy())
	}

	const n = 4
	x := tensor.New(n, 16)
	rng.New(8).Uniform(x.Data, 0, 1)
	out, scr, err := c.PredictScreened(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !scr[i].Flagged || !scr[i].Rejected || scr[i].Error == "" {
			t.Fatalf("row %d not rejected under reject policy: %+v", i, scr[i])
		}
	}
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("rejected confidences leaked at %d: %v", i, v)
		}
	}

	// The wire shape: confidences null for rejected rows, screening says why.
	body := `{"inputs": [[0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,0.1,0.2,0.3,0.4,0.5,0.6,0.7]]}`
	resp, err := srv.Client().Post(srv.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reject policy answered %d, want 200 with withheld rows", resp.StatusCode)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Confidences) != 1 || pr.Confidences[0] != nil {
		t.Fatalf("flagged row confidences on the wire: %v, want null", pr.Confidences)
	}
	if len(pr.Screening) != 1 || !pr.Screening[0].Rejected {
		t.Fatalf("flagged row screening block: %+v", pr.Screening)
	}

	// Opting out of screening opts out of rejection: plain Predict serves
	// the full unscreened confidences.
	want := m.Predict(x.Clone())
	got, err := c.Predict(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("opt-out confidence %d differs under reject policy: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestScreeningQuantizedAgreesWithFp64 serves the same weights fp64 and
// int8 behind the same screener: screening scores must stay close, and the
// verdicts must agree for every row whose score is not sitting on the
// threshold — the fused path may not assume float64 layers.
func TestScreeningQuantizedAgreesWithFp64(t *testing.T) {
	ctx := context.Background()
	sc := testScreener(t, 0) // default threshold
	mF := testModel(t)
	mQ := testModel(t)
	mQ.Quantize(0)
	srvF := startModelServer(t, mF, ServerConfig{Screener: sc})
	srvQ := startModelServer(t, mQ, ServerConfig{Screener: sc})
	cF, err := Dial(ctx, srvF.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cQ, err := Dial(ctx, srvQ.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}

	const n, tol = 16, 0.05
	x := tensor.New(n, 16)
	rng.New(15).Uniform(x.Data, 0, 1)
	_, sf, err := cF.PredictScreened(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	_, sq, err := cQ.PredictScreened(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		diff := sf[i].Score - sq[i].Score
		if diff < 0 {
			diff = -diff
		}
		if diff > tol {
			t.Fatalf("row %d: fp64 score %.4f vs int8 score %.4f (tol %v)", i, sf[i].Score, sq[i].Score, tol)
		}
		margin := sf[i].Score - sf[i].Threshold
		if margin < 0 {
			margin = -margin
		}
		if margin > tol && sf[i].Flagged != sq[i].Flagged {
			t.Fatalf("row %d: verdicts disagree away from threshold: fp64 %+v vs int8 %+v", i, sf[i], sq[i])
		}
	}
}

// TestRegistrySidecarScreenOverrides covers per-model screening resolution:
// compatible models screen by default under a registry screener, "off" opts
// one out, and "on" without a screener fails the scan.
func TestRegistrySidecarScreenOverrides(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	m := testModel(t)
	for _, id := range []string{"alpha", "beta"} {
		if err := m.SaveFile(filepath.Join(dir, id+".bin")); err != nil {
			t.Fatal(err)
		}
	}
	if err := (nn.Sidecar{Screen: "off"}).WriteFile(filepath.Join(dir, "beta.bin")); err != nil {
		t.Fatal(err)
	}

	reg, err := OpenRegistry(dir, RegistryConfig{Screener: testScreener(t, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	for id, want := range map[string]bool{"alpha": true, "beta": false} {
		info, err := reg.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Screened != want {
			t.Fatalf("model %s advertises screened=%v, want %v", id, info.Screened, want)
		}
	}
	x := tensor.New(3, 16)
	rng.New(9).Uniform(x.Data, 0, 1)
	if _, scores, err := reg.Predict(ctx, "alpha", x.Clone(), true); err != nil || len(scores) != 3 {
		t.Fatalf("screened model: scores=%v err=%v", scores, err)
	}
	if _, scores, err := reg.Predict(ctx, "beta", x.Clone(), true); err != nil || scores != nil {
		t.Fatalf("opted-out model returned scores=%v err=%v", scores, err)
	}

	// "on" is an assertion: without a screener the scan must fail.
	if err := (nn.Sidecar{Screen: "on"}).WriteFile(filepath.Join(dir, "alpha.bin")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegistry(dir, RegistryConfig{}); err == nil {
		t.Fatal("sidecar screen \"on\" without a registry screener did not fail the scan")
	}
	// Unknown values are a scan error, not a silent default.
	if err := (nn.Sidecar{Screen: "maybe"}).WriteFile(filepath.Join(dir, "alpha.bin")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegistry(dir, RegistryConfig{Screener: testScreener(t, 0.5)}); err == nil {
		t.Fatal("sidecar screen \"maybe\" did not fail the scan")
	}
}

// TestQuantizedRegistryAuditCompletes audits an int8-served model through
// the in-process provider oracle. Screening and audits are pure inference;
// a quantized model must never be pushed onto the training-only APIs it
// panics on, so the audit has to complete with a verdict.
func TestQuantizedRegistryAuditCompletes(t *testing.T) {
	ctx := context.Background()
	env := sharedAuditEnv(t)
	loaded, err := bprom.LoadFile(env.artPath)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(env.zoo, RegistryConfig{MaxLoaded: 2, Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	s := NewRegistryServer(reg)
	if err := s.EnableAudits(loaded, AuditConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	c, err := DialModel(ctx, srv.URL, "badnets", ClientConfig{AuditPoll: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if c.Precision() != nn.PrecisionInt8 {
		t.Fatalf("registry serves %q, want int8", c.Precision())
	}
	job, err := c.AuditModel(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitAudit(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != audit.StateDone || final.Verdict == nil {
		t.Fatalf("quantized audit ended %q (error %q), want done with a verdict", final.State, final.Error)
	}
}

// stallOracle blocks every audit query until released, wedging an audit
// worker for as long as a test needs the queue to stay full.
type stallOracle struct {
	classes, dim int
	release      chan struct{}
}

func (o *stallOracle) NumClasses() int { return o.classes }
func (o *stallOracle) InputDim() int   { return o.dim }
func (o *stallOracle) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	select {
	case <-o.release:
	case <-ctx.Done():
	}
	return tensor.New(x.Dim(0), o.classes), nil
}

// TestAuditQueueFullCarriesRetryAfter pins the 429 contract: a full audit
// queue must tell clients when to come back. The single worker is wedged on
// a stalling oracle and the one queue slot filled, so the next HTTP
// submission deterministically bounces.
func TestAuditQueueFullCarriesRetryAfter(t *testing.T) {
	env := sharedAuditEnv(t)
	loaded, err := bprom.LoadFile(env.artPath)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(env.zoo, RegistryConfig{MaxLoaded: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := NewRegistryServer(reg)
	if err := s.EnableAudits(loaded, AuditConfig{Workers: 1, MaxQueued: 1}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	info, err := reg.Info("clean")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	stall := &stallOracle{classes: info.Classes, dim: info.InputDim, release: release}
	if _, err := s.Audits().Submit("stall", "", stall, 1); err != nil {
		t.Fatal(err)
	}
	// Once the worker picks the wedged job up, this second submission takes
	// the single queue slot and stays there.
	for i := 0; ; i++ {
		if _, err := s.Audits().Submit("stall", "", stall, 2); err == nil {
			break
		} else if !errors.Is(err, audit.ErrQueueFull) {
			t.Fatal(err)
		}
		if i > 200 {
			t.Fatal("worker never picked up the wedged job")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := srv.Client().Post(srv.URL+"/v1/models/clean/audits", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429", resp.StatusCode)
	}
	if hint := parseRetryAfter(resp.Header.Get("Retry-After")); hint < time.Second {
		t.Fatalf("429 without a usable Retry-After header (%q)", resp.Header.Get("Retry-After"))
	}
}

// TestRetryBackoffBounds pins the client backoff shape: capped exponential,
// upper-half jitter, Retry-After hints floor the wait but never lower it.
func TestRetryBackoffBounds(t *testing.T) {
	for i := 0; i < 100; i++ {
		if d := retryBackoff(1, 0); d < retryBaseBackoff/2 || d > retryBaseBackoff {
			t.Fatalf("attempt 1 backoff %v outside [%v, %v]", d, retryBaseBackoff/2, retryBaseBackoff)
		}
		// Attempt 30 would be ~35 minutes uncapped; the ceiling must hold.
		if d := retryBackoff(30, 0); d < retryMaxBackoff/2 || d > retryMaxBackoff {
			t.Fatalf("attempt 30 backoff %v outside [%v, %v]", d, retryMaxBackoff/2, retryMaxBackoff)
		}
		if d := retryBackoff(1, 3*time.Second); d != 3*time.Second {
			t.Fatalf("Retry-After hint not floored: %v, want 3s", d)
		}
		if d := retryBackoff(1, time.Millisecond); d > retryBaseBackoff {
			t.Fatalf("tiny hint raised backoff to %v", d)
		}
	}
	for h, want := range map[string]time.Duration{"3": 3 * time.Second, "0": 0, "-2": 0, "soon": 0, "": 0} {
		if got := parseRetryAfter(h); got != want {
			t.Fatalf("parseRetryAfter(%q) = %v, want %v", h, got, want)
		}
	}
}

// TestClientRetries429HonoringRetryAfter makes the endpoint push back once
// with Retry-After: 1 — the old client treated 429 as terminal; the fixed
// one must retry, and no sooner than the server asked.
func TestClientRetries429HonoringRetryAfter(t *testing.T) {
	ctx := context.Background()
	s := NewServer(testModel(t), ServerConfig{})
	t.Cleanup(s.Close)
	h := s.Handler()
	var pushed atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/predict") && pushed.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	c, err := Dial(ctx, srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 16)
	rng.New(4).Uniform(x.Data, 0, 1)
	start := time.Now()
	if _, err := c.Predict(ctx, x); err != nil {
		t.Fatalf("429 with Retry-After was not retried: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retry after %v ignored the 1s Retry-After hint", elapsed)
	}
}
