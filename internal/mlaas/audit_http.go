package mlaas

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"bprom/internal/audit"
	"bprom/internal/bprom"
	"bprom/internal/jobstore"
	"bprom/internal/oracle"
	"bprom/internal/tensor"
)

// Audit-as-a-service routes: the HTTP face of internal/audit. A server
// started with a detector artifact (EnableAudits) accepts asynchronous
// audit jobs against its own hosted models — POST to submit, GET to list
// and poll, DELETE to cancel — so the platform audits its zoo server-side
// instead of every defender pulling thousands of confidence vectors over
// the wire. See docs/API.md for the wire reference.

// ErrAuditsDisabled reports an audit request against a server that was not
// given a detector. The HTTP layer maps it to 501.
var ErrAuditsDisabled = errors.New("mlaas: audits not enabled on this server (start it with a detector artifact)")

// AuditConfig tunes the server-side audit service.
type AuditConfig struct {
	// Workers bounds concurrently running audit jobs. Default 2.
	Workers int
	// MaxQueued bounds jobs waiting for a worker (submissions beyond it
	// get 429). Default 64.
	MaxQueued int
	// Store, when non-nil, makes audit jobs durable: lifecycle transitions
	// and per-generation search checkpoints are journaled, and EnableAudits
	// re-enqueues the journal's interrupted jobs so they resume bit-exactly
	// after a restart. The caller owns the store and closes it after the
	// server's Close returns.
	Store *jobstore.Store
	// CheckpointEvery journals every Nth generation checkpoint (default 1).
	// Larger values trade restart granularity for journal traffic; a
	// graceful shutdown still flushes the latest snapshot regardless.
	CheckpointEvery int
}

// EnableAudits attaches an audit job manager over det to the server: the
// /v1/audits route family becomes live, auditing the server's own hosted
// models in-process. Call it once, before the server starts handling
// requests — and after EnableTenancy, so resumed jobs' oracles pick up
// their tenants' quota ledgers. Close (and Serve on shutdown) stops the
// manager; with a Store the shutdown checkpoints running jobs instead of
// failing them, and the next EnableAudits over the same store resumes them.
func (s *Server) EnableAudits(det *bprom.Detector, cfg AuditConfig) error {
	acfg := audit.Config{
		Workers:         cfg.Workers,
		MaxQueued:       cfg.MaxQueued,
		Store:           cfg.Store,
		CheckpointEvery: cfg.CheckpointEvery,
	}
	if cfg.Store != nil {
		// Resumed jobs rebuild their oracles here: same provider path and
		// same quota wrap as a fresh submission, so a resumed job's queries
		// land on the same ledger its pre-restart queries did.
		acfg.OracleFor = func(modelID, tenant string) (oracle.Oracle, error) {
			info, err := s.prov.Info(modelID)
			if err != nil {
				return nil, err
			}
			return s.auditOracle(info, tenant), nil
		}
	}
	m, err := audit.NewManager(det, acfg)
	if err != nil {
		return err
	}
	s.audits = m
	s.store = cfg.Store
	return nil
}

// Audits exposes the attached audit manager (nil when audits are disabled).
// In-process callers (examples, tests) can submit and poll without HTTP.
func (s *Server) Audits() *audit.Manager { return s.audits }

// auditRouter is an optional provider capability: a provider that routes
// audit jobs to remote nodes instead of running them in a local manager.
// When the server has no local manager but its provider routes (the
// gateway's remoteProvider), the /v1/audits family proxies through it —
// same wire contract, jobs namespaced "{node}.{id}".
type auditRouter interface {
	SubmitAudit(ctx context.Context, modelID string, inspectID int, resume *AuditResume) (audit.Job, error)
	GetAudit(ctx context.Context, jobID string) (audit.Job, error)
	ListAudits(ctx context.Context) ([]audit.Job, error)
	CancelAudit(ctx context.Context, jobID string) (audit.Job, error)
	ExportAuditCheckpoint(ctx context.Context, jobID string) (CheckpointExport, error)
}

// auditRouter returns the provider's audit-routing capability, or nil. A
// local audit manager always wins: routing only kicks in where there is no
// in-process detector to run jobs with.
func (s *Server) auditRouter() auditRouter {
	if s.audits != nil {
		return nil
	}
	rt, _ := s.prov.(auditRouter)
	return rt
}

// healthAugmenter is an optional provider capability: a provider that adds
// fields to the /v1/healthz payload (the gateway reports fleet membership
// and aggregates the nodes' audit-service state).
type healthAugmenter interface {
	augmentHealth(h *Health)
}

// providerOracle adapts one hosted model to oracle.Oracle for server-side
// audits: queries go straight to the provider's engines (no HTTP loopback),
// chunked to the provider's per-request batch limit so audit traffic obeys
// the same batching contract as wire traffic.
type providerOracle struct {
	prov     provider
	id       string
	classes  int
	inputDim int
}

var _ oracle.BatchLimiter = (*providerOracle)(nil)

func (o *providerOracle) NumClasses() int { return o.classes }
func (o *providerOracle) InputDim() int   { return o.inputDim }

// MaxBatch reports the provider's per-request row limit (oracle.BatchLimiter):
// the width fused audit batches are chunked to below.
func (o *providerOracle) MaxBatch() int { return o.prov.MaxBatch() }

func (o *providerOracle) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(1) != o.inputDim {
		return nil, fmt.Errorf("mlaas: audit input shape %v, want [N %d]", x.Shape(), o.inputDim)
	}
	n := x.Dim(0)
	maxBatch := o.prov.MaxBatch()
	// Audit traffic is never screened (screen=false): an inspection issues
	// thousands of probe queries that only need raw confidences, and its
	// verdict must stay bit-identical whether or not the hosted model also
	// serves screened predict traffic. This also keeps quantized models
	// auditable — screening and auditing alike are pure inference, and
	// nothing on this path may reach the training-only APIs a quantized
	// model panics on (nn.Model.NewPass / Dense.Backward).
	if maxBatch <= 0 || n <= maxBatch {
		probs, _, err := o.prov.Predict(ctx, o.id, x, false)
		return probs, err
	}
	out := tensor.New(n, o.classes)
	for start := 0; start < n; start += maxBatch {
		end := start + maxBatch
		if end > n {
			end = n
		}
		chunk := tensor.FromSlice(x.Data[start*o.inputDim:end*o.inputDim], end-start, o.inputDim)
		probs, _, err := o.prov.Predict(ctx, o.id, chunk, false)
		if err != nil {
			return nil, err
		}
		copy(out.Data[start*o.classes:end*o.classes], probs.Data)
	}
	return out, nil
}

// auditSubmitRequest is the POST /v1/models/{id}/audits body. All fields
// are optional; an empty body is valid.
type auditSubmitRequest struct {
	// InspectID selects the inspection RNG stream (reproducibility handle:
	// the same detector, model, and inspect_id give a bit-identical
	// verdict). Absent or negative: the server assigns the job's
	// submission sequence number. Required (non-negative) with a resume
	// block — a resumed search must continue the original RNG stream.
	InspectID *int `json:"inspect_id"`
	// Resume, when present, makes this a migrated submission: the job
	// continues from the attached wire-exported checkpoint (or from
	// scratch when the checkpoint is empty), attributed to the original
	// tenant and linked to its source job. On a tenancy-enabled server a
	// resume.tenant different from the authenticated tenant requires a
	// service credential (403 tenant_forbidden otherwise).
	Resume *AuditResume `json:"resume,omitempty"`
}

// auditListResponse is the GET /v1/audits payload.
type auditListResponse struct {
	Jobs []audit.Job `json:"jobs"`
}

// Health is the GET /v1/healthz payload: liveness plus the state of the
// audit service, so orchestrators (and fleet CLIs, as a preflight) can tell
// a serving-only endpoint from a full audit platform.
type Health struct {
	// Status is "ok" whenever the server answers at all.
	Status string `json:"status"`
	// Models counts hosted models.
	Models int `json:"models"`
	// AuditsEnabled reports whether the server carries a detector.
	AuditsEnabled bool `json:"audits_enabled"`
	// AuditJobs counts jobs the audit manager currently holds (always
	// present — 0 with audits enabled means "idle", which monitoring must
	// be able to tell apart from "disabled").
	AuditJobs int `json:"audit_jobs"`
	// ScreenedModels counts hosted models covered by inline request
	// screening (0 on servers without a screener).
	ScreenedModels int `json:"screened_models,omitempty"`
	// Nodes counts backend nodes behind a gateway (absent on single-node
	// servers).
	Nodes int `json:"nodes,omitempty"`
	// HealthyNodes counts gateway backend nodes currently marked up
	// (absent on single-node servers).
	HealthyNodes int `json:"healthy_nodes,omitempty"`
	// JobStore reports the audit journal's state when jobs are durable
	// (absent otherwise). A gateway reports the sum over its healthy nodes
	// (bytes and resumed jobs add; last_compaction is the newest).
	JobStore *jobstore.Stats `json:"job_store,omitempty"`
	// MigratedJobs counts audit jobs the gateway's migration supervisor has
	// re-homed off dead nodes (absent on single-node servers and when
	// migration is disabled).
	MigratedJobs int `json:"migrated_jobs,omitempty"`
	// MigrationFailures counts jobs the supervisor gave up migrating because
	// every target would deterministically reject the resubmission (4xx
	// other than 429) — surfaced so operators see abandoned jobs instead of
	// the supervisor silently crash-looping on them.
	MigrationFailures int `json:"migration_failures,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	models := s.prov.Models()
	screened := 0
	for _, mi := range models {
		if mi.Screened {
			screened++
		}
	}
	resp := Health{
		Status:         "ok",
		Models:         len(models),
		AuditsEnabled:  s.audits != nil,
		ScreenedModels: screened,
	}
	if s.audits != nil {
		resp.AuditJobs = s.audits.Len()
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.JobStore = &st
	}
	if ha, ok := s.prov.(healthAugmenter); ok {
		ha.augmentHealth(&resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxSubmitBody bounds a submit body: enough for the base64 encoding of
// the largest checkpoint frame a node can export (maxCheckpointWire — the
// journal's frame ceiling) plus JSON-envelope slack. Anything bigger cannot
// be a legal submission. The old 16MB cap was SMALLER than a legal export,
// so an oversized-but-valid checkpoint migrated into a deterministic 400
// and the supervisor retried it forever; now every exportable frame fits.
const maxSubmitBody = (maxCheckpointWire+2)/3*4 + 4096

// handleSubmitAudit serves POST /v1/models/{id}/audits (and the legacy
// default-model alias POST /v1/audits, id ""). It validates the model and
// its detector compatibility up front, so incompatible submissions fail
// fast with 400 instead of producing a failed job. On a gateway (no local
// manager, routing provider) the submission is forwarded to the node
// placed for the model; its validation errors pass through.
func (s *Server) handleSubmitAudit(w http.ResponseWriter, r *http.Request, id string) {
	rt := s.auditRouter()
	if s.audits == nil && rt == nil {
		s.writeError(w, ErrAuditsDisabled)
		return
	}
	var req auditSubmitRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return
	}
	if len(body) > maxSubmitBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "submit body exceeds the checkpoint frame ceiling"})
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decode: " + err.Error()})
			return
		}
	}
	inspectID := -1
	if req.InspectID != nil {
		inspectID = *req.InspectID
	}
	if req.Resume != nil && inspectID < 0 {
		// A server-assigned stream cannot continue the original search: the
		// resumed CMA-ES state is only meaningful on the RNG stream that
		// produced it.
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "resume requires the original non-negative inspect_id"})
		return
	}
	tenant := tenantFrom(r.Context())
	if req.Resume != nil && req.Resume.Tenant != "" && req.Resume.Tenant != tenant && s.tenancy != nil {
		// resume.tenant redirects billing, so honoring it is a privilege:
		// only a service credential (the gateway's migration supervisor) may
		// resume on another tenant's behalf. An ordinary key that could name
		// an arbitrary tenant here would charge its oracle spend to a
		// victim's quota — or name an unknown tenant and run unmetered.
		// Enforced before routing too, so a tenancy-enabled gateway rejects
		// at the edge with the same envelope as a node.
		if t, ok := s.tenancy.Lookup(tenant); !ok || !t.Service {
			writeJSON(w, http.StatusForbidden, errorResponse{
				Error: fmt.Sprintf("resume.tenant %q: only a service credential may resume on another tenant's behalf", req.Resume.Tenant),
				Code:  "tenant_forbidden",
			})
			return
		}
	}
	if rt != nil {
		job, err := rt.SubmitAudit(r.Context(), id, inspectID, req.Resume)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
		return
	}
	info, err := s.prov.Info(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.audits.Detector().Compatible(info.Classes, info.InputDim); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("model %q not auditable: %v", info.ID, err)})
		return
	}
	if req.Resume != nil {
		// A migrated job keeps its original tenant attribution: the
		// supervisor resubmits with its own service credential (validated
		// above), but spend and listings must follow the tenant who paid
		// for the first half.
		if req.Resume.Tenant != "" {
			tenant = req.Resume.Tenant
		}
		job, err := s.audits.SubmitResume(info.ID, tenant, s.auditOracle(info, tenant), inspectID, req.Resume.Checkpoint, req.Resume.Source)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
		return
	}
	job, err := s.audits.Submit(info.ID, tenant, s.auditOracle(info, tenant), inspectID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// handleExportCheckpoint serves GET /v1/audits/{id}/checkpoint: the job's
// newest checkpoint as one CRC-framed application/octet-stream body, with
// the job's identity in X-Audit-* headers. 204 means "job exists, nothing
// checkpointed yet" (submit a fresh-resume instead); 409 a terminal job;
// 404 an unknown one. On a gateway the request routes to the node that
// owns the namespaced job.
func (s *Server) handleExportCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if rt := s.auditRouter(); rt != nil {
		exp, err := rt.ExportAuditCheckpoint(r.Context(), id)
		if err != nil {
			if errors.Is(err, audit.ErrNoCheckpoint) {
				w.WriteHeader(http.StatusNoContent)
				return
			}
			s.writeError(w, err)
			return
		}
		writeCheckpoint(w, exp)
		return
	}
	if s.audits == nil {
		s.writeError(w, ErrAuditsDisabled)
		return
	}
	c, err := s.audits.ExportCheckpoint(id)
	if err != nil {
		if errors.Is(err, audit.ErrNoCheckpoint) {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		s.writeError(w, err)
		return
	}
	job, err := s.audits.Get(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	blob, err := c.Encode()
	if err != nil {
		s.writeError(w, err)
		return
	}
	frame, err := jobstore.EncodeFrame(blob)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeCheckpoint(w, CheckpointExport{
		Frame:      frame,
		Generation: c.Generation,
		Queries:    c.Queries,
		ModelID:    job.ModelID,
		InspectID:  job.InspectID,
		Tenant:     job.Tenant,
	})
}

// writeCheckpoint emits one CheckpointExport on the wire.
func writeCheckpoint(w http.ResponseWriter, exp CheckpointExport) {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Audit-Generation", strconv.Itoa(exp.Generation))
	h.Set("X-Audit-Queries", strconv.FormatInt(exp.Queries, 10))
	h.Set("X-Audit-Model", exp.ModelID)
	h.Set("X-Audit-Inspect-Id", strconv.Itoa(exp.InspectID))
	if exp.Tenant != "" {
		h.Set("X-Audit-Tenant", exp.Tenant)
	}
	_, _ = w.Write(exp.Frame)
}

func (s *Server) handleListAudits(w http.ResponseWriter, r *http.Request) {
	if rt := s.auditRouter(); rt != nil {
		jobs, err := rt.ListAudits(r.Context())
		if err != nil {
			s.writeError(w, err)
			return
		}
		if jobs == nil {
			jobs = []audit.Job{}
		}
		writeJSON(w, http.StatusOK, auditListResponse{Jobs: jobs})
		return
	}
	if s.audits == nil {
		s.writeError(w, ErrAuditsDisabled)
		return
	}
	jobs := s.audits.List()
	if jobs == nil {
		jobs = []audit.Job{}
	}
	writeJSON(w, http.StatusOK, auditListResponse{Jobs: jobs})
}

func (s *Server) handleGetAudit(w http.ResponseWriter, r *http.Request) {
	if rt := s.auditRouter(); rt != nil {
		job, err := rt.GetAudit(r.Context(), r.PathValue("id"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, job)
		return
	}
	if s.audits == nil {
		s.writeError(w, ErrAuditsDisabled)
		return
	}
	job, err := s.audits.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleDeleteAudit(w http.ResponseWriter, r *http.Request) {
	if rt := s.auditRouter(); rt != nil {
		job, err := rt.CancelAudit(r.Context(), r.PathValue("id"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, job)
		return
	}
	if s.audits == nil {
		s.writeError(w, ErrAuditsDisabled)
		return
	}
	job, err := s.audits.Delete(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}
