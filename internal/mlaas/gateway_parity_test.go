package mlaas

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bprom/internal/bprom"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Gateway-vs-single-node bit-parity suite: the routing layer must be
// behaviorally invisible. Confidences, screening scores, and audit
// verdicts through a gateway over N nodes are asserted bit-identical to
// one in-process node serving the same zoo — for fp64 AND int8 models —
// extending the PR 3/4 parity chain (in-process == wire == artifact
// round-trip) across one more boundary. Anything less is drift an
// adaptive attacker can exploit to tell audit traffic from the real
// serving path.

// gatewayParityZoo copies the shared audit zoo's trained checkpoints and
// adds int8-pinned twins ("-i8" sidecar precision override), so every
// parity assertion runs once per serving precision.
func gatewayParityZoo(t *testing.T) string {
	t.Helper()
	env := sharedAuditEnv(t)
	dir := t.TempDir()
	for _, id := range []string{"clean", "badnets"} {
		raw, err := os.ReadFile(filepath.Join(env.zoo, id+".bin"))
		if err != nil {
			t.Fatal(err)
		}
		for _, variant := range []struct {
			id        string
			precision string
		}{{id, ""}, {id + "-i8", nn.PrecisionInt8}} {
			path := filepath.Join(dir, variant.id+".bin")
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			if variant.precision != "" {
				if err := (nn.Sidecar{Precision: variant.precision}).WriteFile(path); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return dir
}

// startParityNode serves zoo with audits + screening from the shared
// artifact — the exact single-node configuration the gateway's nodes run.
func startParityNode(t *testing.T, zoo string) *httptest.Server {
	t.Helper()
	env := sharedAuditEnv(t)
	det, err := bprom.LoadFile(env.artPath)
	if err != nil {
		t.Fatal(err)
	}
	screener, err := det.Screener(0)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(zoo, RegistryConfig{MaxLoaded: 4, Screener: screener})
	if err != nil {
		t.Fatal(err)
	}
	s := NewRegistryServer(reg)
	if err := s.EnableAudits(det, AuditConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// startParityGateway fronts nodeCount parity nodes with a gateway and
// returns its HTTP endpoint.
func startParityGateway(t *testing.T, zoo string, nodeCount int) (*httptest.Server, *Gateway) {
	t.Helper()
	nodes := make([]string, nodeCount)
	for i := range nodes {
		nodes[i] = startParityNode(t, zoo).URL
	}
	g, err := NewGateway(context.Background(), GatewayConfig{
		Nodes:          nodes,
		HealthInterval: time.Hour, // membership driven manually in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGatewayServer(g)
	t.Cleanup(gs.Close)
	srv := httptest.NewServer(gs.Handler())
	t.Cleanup(srv.Close)
	return srv, g
}

func parityModelIDs() []string {
	return []string{"clean", "badnets", "clean-i8", "badnets-i8"}
}

// TestGatewayPredictParity asserts confidences AND screening outcomes
// through the gateway are bit-identical to a single node, per model and
// per serving precision.
func TestGatewayPredictParity(t *testing.T) {
	zoo := gatewayParityZoo(t)
	single := startParityNode(t, zoo)
	gateway, _ := startParityGateway(t, zoo, 2)
	ctx := context.Background()

	for _, id := range parityModelIDs() {
		ref, err := DialModel(ctx, single.URL, id, ClientConfig{Retries: NoRetries})
		if err != nil {
			t.Fatal(err)
		}
		gw, err := DialModel(ctx, gateway.URL, id, ClientConfig{Retries: NoRetries})
		if err != nil {
			t.Fatal(err)
		}
		if gw.NumClasses() != ref.NumClasses() || gw.InputDim() != ref.InputDim() ||
			gw.Precision() != ref.Precision() || gw.Screened() != ref.Screened() ||
			gw.ScreenPolicy() != ref.ScreenPolicy() {
			t.Fatalf("%s: gateway metadata diverges from node: %+v vs %+v", id, gw, ref)
		}
		x := tensor.New(6, ref.InputDim())
		rng.New(99).Uniform(x.Data, 0, 1)
		wantProbs, wantScr, err := ref.PredictScreened(ctx, x.Clone())
		if err != nil {
			t.Fatal(err)
		}
		gotProbs, gotScr, err := gw.PredictScreened(ctx, x.Clone())
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantProbs.Data {
			if gotProbs.Data[i] != wantProbs.Data[i] {
				t.Fatalf("%s: confidence %d differs through gateway: %v vs %v",
					id, i, gotProbs.Data[i], wantProbs.Data[i])
			}
		}
		if len(gotScr) != len(wantScr) {
			t.Fatalf("%s: screening length %d vs %d", id, len(gotScr), len(wantScr))
		}
		for i := range wantScr {
			if gotScr[i] != wantScr[i] {
				t.Fatalf("%s: screening %d differs through gateway: %+v vs %+v",
					id, i, gotScr[i], wantScr[i])
			}
		}
		if !ref.Screened() {
			t.Fatalf("%s: parity fixture should serve screened models", id)
		}
	}
}

// TestGatewayAuditVerdictParity is the fleet-audit acceptance check:
// submitting the same (model, inspect id) audit through the gateway and
// against a single node must yield bit-identical verdicts for every model
// in the golden zoo, fp64 and int8 alike. Jobs routed by the gateway carry
// their namespaced id and node tag.
func TestGatewayAuditVerdictParity(t *testing.T) {
	zoo := gatewayParityZoo(t)
	single := startParityNode(t, zoo)
	gateway, _ := startParityGateway(t, zoo, 2)
	ctx := context.Background()

	for i, id := range parityModelIDs() {
		ref, err := DialModel(ctx, single.URL, id, ClientConfig{AuditPoll: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		gw, err := DialModel(ctx, gateway.URL, id, ClientConfig{AuditPoll: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		inspectID := 300 + i
		refJob, err := ref.AuditModel(ctx, inspectID)
		if err != nil {
			t.Fatal(err)
		}
		gwJob, err := gw.AuditModel(ctx, inspectID)
		if err != nil {
			t.Fatal(err)
		}
		if gwJob.Node == "" || !strings.HasPrefix(gwJob.ID, gwJob.Node+".") {
			t.Fatalf("%s: gateway job not namespaced: %+v", id, gwJob)
		}
		refFinal, err := ref.WaitAudit(ctx, refJob.ID)
		if err != nil {
			t.Fatal(err)
		}
		gwFinal, err := gw.WaitAudit(ctx, gwJob.ID)
		if err != nil {
			t.Fatal(err)
		}
		if refFinal.State != "done" || refFinal.Verdict == nil {
			t.Fatalf("%s: single-node audit did not finish: %+v", id, refFinal)
		}
		if gwFinal.State != "done" || gwFinal.Verdict == nil {
			t.Fatalf("%s: gateway audit did not finish: %+v", id, gwFinal)
		}
		if *gwFinal.Verdict != *refFinal.Verdict {
			t.Fatalf("%s: gateway verdict %+v != single-node %+v", id, *gwFinal.Verdict, *refFinal.Verdict)
		}
		if gwFinal.Node != gwJob.Node {
			t.Fatalf("%s: job node changed across poll: %q vs %q", id, gwFinal.Node, gwJob.Node)
		}
	}
}

// TestGatewayListingMatchesNode pins the merged-zoo view: same ids, same
// metadata, same default as the nodes it fronts.
func TestGatewayListingMatchesNode(t *testing.T) {
	zoo := gatewayParityZoo(t)
	single := startParityNode(t, zoo)
	gateway, _ := startParityGateway(t, zoo, 2)
	ctx := context.Background()

	want, err := ListModels(ctx, single.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ListModels(ctx, gateway.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Default != want.Default {
		t.Fatalf("gateway default %q != node default %q", got.Default, want.Default)
	}
	if len(got.Models) != len(want.Models) {
		t.Fatalf("gateway lists %d models, node %d", len(got.Models), len(want.Models))
	}
	for i := range want.Models {
		g, w := got.Models[i], want.Models[i]
		// Loaded/ResidentBytes are node-local hot-set state and may differ.
		g.Loaded, w.Loaded = false, false
		g.ResidentBytes, w.ResidentBytes = 0, 0
		if g != w {
			t.Fatalf("model %d diverges through gateway: %+v vs %+v", i, g, w)
		}
	}
}
