package mlaas

import (
	"context"
	"sync"
	"testing"

	"bprom/internal/data"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/vp"
)

// promptTrainSet hand-assembles a deterministic target-domain dataset (a
// pixel ramp with cyclic labels) for prompt-training tests.
func promptTrainSet(n int, shape data.Shape, classes int) *data.Dataset {
	d := &data.Dataset{Name: "vp-batch", Shape: shape, Classes: classes}
	dim := shape.Dim()
	d.X = make([]float64, n*dim)
	for i := range d.X {
		d.X[i] = float64(i%17) / 17
	}
	d.Y = make([]int, n)
	for i := range d.Y {
		d.Y[i] = i % classes
	}
	return d
}

// TestBatchedTrainBlackBoxRemoteParity runs the generation-batched CMA-ES
// prompt training through the full HTTP stack — a fused generation arrives
// at the Client as one wide Predict, is chunked to the endpoint's small
// max_batch, fanned out in parallel, and coalesced by the server's
// micro-batch engine — and asserts the learned θ and the per-sample query
// count are bit-identical to the same training against the in-process
// oracle.
func TestBatchedTrainBlackBoxRemoteParity(t *testing.T) {
	// MaxBatch 8 guarantees a fused generation (λ×k = 9×6 = 54 rows) spans
	// several wire requests.
	srv, m := startTestServer(t, ServerConfig{Name: "vp-batch", MaxBatch: 8, MaxConcurrent: 4})
	ctx := context.Background()
	c, err := Dial(ctx, srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	src := data.Shape{C: 1, H: 4, W: 4}
	train := promptTrainSet(12, data.Shape{C: 1, H: 6, W: 6}, 3)
	cfg := vp.BlackBoxConfig{Iterations: 6, BatchSize: 6}

	run := func(o oracle.Oracle) ([]float64, int64) {
		p, err := vp.NewPrompt(src, train.Shape, 0.75)
		if err != nil {
			t.Fatal(err)
		}
		counter := oracle.NewCounter(o)
		if err := vp.TrainBlackBox(ctx, counter, p, train, cfg, rng.New(42)); err != nil {
			t.Fatal(err)
		}
		return p.Theta, counter.Queries()
	}
	remoteTheta, remoteQ := run(c)
	localTheta, localQ := run(oracle.NewModelOracle(m))
	if remoteQ != localQ || remoteQ == 0 {
		t.Fatalf("query accounting diverged across the wire: remote %d, in-process %d", remoteQ, localQ)
	}
	for i := range localTheta {
		if remoteTheta[i] != localTheta[i] {
			t.Fatalf("theta[%d] diverged across the wire: remote %v, in-process %v", i, remoteTheta[i], localTheta[i])
		}
	}
}

// TestBatchedTrainBlackBoxSharedClientRace drives concurrent
// generation-batched trainings through ONE shared Client against one
// httptest endpoint — the fleet-audit topology, where chunk fan-out,
// retries, and the server's micro-batch coalescing all interleave. Run
// under -race; same-seed workers must still agree bit-for-bit.
func TestBatchedTrainBlackBoxSharedClientRace(t *testing.T) {
	srv, _ := startTestServer(t, ServerConfig{Name: "vp-race", MaxBatch: 16, MaxConcurrent: 2})
	ctx := context.Background()
	c, err := Dial(ctx, srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	src := data.Shape{C: 1, H: 4, W: 4}
	train := promptTrainSet(10, data.Shape{C: 1, H: 6, W: 6}, 3)

	const workers = 4
	thetas := make([][]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := vp.NewPrompt(src, train.Shape, 0.75)
			if err != nil {
				errs[w] = err
				return
			}
			cfg := vp.BlackBoxConfig{Iterations: 4, BatchSize: 5}
			if errs[w] = vp.TrainBlackBox(ctx, c, p, train, cfg, rng.New(60+uint64(w%2))); errs[w] == nil {
				thetas[w] = p.Theta
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for i := range thetas[0] {
		if thetas[0][i] != thetas[2][i] {
			t.Fatal("same-seed trainings diverged through the shared client")
		}
	}
}
