package mlaas

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bprom/internal/attack"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/tensor"
	"bprom/internal/trainer"
	"bprom/internal/vp"
)

// auditEnv is the shared audit-service fixture: one trained detector, a
// zoo directory with one clean and one backdoored checkpoint, and the
// detector's artifact bytes on disk.
type auditEnv struct {
	det     *bprom.Detector
	artPath string
	zoo     string
}

var (
	auditOnce sync.Once
	auditShr  *auditEnv
)

func sharedAuditEnv(t *testing.T) *auditEnv {
	t.Helper()
	auditOnce.Do(func() {
		ctx := context.Background()
		srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
		srcTrain, srcTest := srcGen.GenerateSplit(12, 40, rng.New(2))
		tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
		tgtTrain, tgtTest := tgtGen.GenerateSplit(6, 4, rng.New(4))
		det, err := bprom.Train(ctx, bprom.Config{
			Reserved:      srcTest.Reserve(0.10, rng.New(5)),
			ExternalTrain: tgtTrain,
			ExternalTest:  tgtTest,
			NumClean:      2,
			NumBackdoor:   2,
			ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 12},
			ShadowTrain:   trainer.Config{Epochs: 3},
			WhiteBox:      vp.WhiteBoxConfig{Epochs: 2},
			BlackBox:      vp.BlackBoxConfig{Iterations: 3, BatchSize: 6},
			QuerySamples:  6,
			Seed:          42,
		})
		if err != nil {
			panic(err)
		}

		dir, err := os.MkdirTemp("", "bprom-audit-test-*")
		if err != nil {
			panic(err)
		}
		artPath := filepath.Join(dir, "detector.bpd")
		if err := det.SaveFile(artPath); err != nil {
			panic(err)
		}

		zoo := filepath.Join(dir, "zoo")
		if err := os.MkdirAll(zoo, 0o755); err != nil {
			panic(err)
		}
		poisoned, _, err := attack.Poison(srcTrain, attack.Config{Kind: attack.BadNets, PoisonRate: 0.2, Seed: 9}, rng.New(10))
		if err != nil {
			panic(err)
		}
		for _, up := range []struct {
			id string
			ds *data.Dataset
		}{{"clean", srcTrain}, {"badnets", poisoned}} {
			m, err := nn.Build(nn.ArchConfig{
				Arch: nn.ArchConvLite, C: up.ds.Shape.C, H: up.ds.Shape.H, W: up.ds.Shape.W,
				NumClasses: up.ds.Classes, Hidden: 12,
			}, rng.New(20))
			if err != nil {
				panic(err)
			}
			if _, err := trainer.Train(ctx, m, up.ds, trainer.Config{Epochs: 3}, rng.New(21)); err != nil {
				panic(err)
			}
			if err := m.SaveFile(filepath.Join(zoo, up.id+".bin")); err != nil {
				panic(err)
			}
		}
		// An extra checkpoint whose geometry the detector cannot prompt.
		odd, err := nn.Build(nn.ArchConfig{Arch: nn.ArchConvLite, C: 1, H: 4, W: 4, NumClasses: 10, Hidden: 8}, rng.New(30))
		if err != nil {
			panic(err)
		}
		if err := odd.SaveFile(filepath.Join(zoo, "oddshape.bin")); err != nil {
			panic(err)
		}
		auditShr = &auditEnv{det: det, artPath: artPath, zoo: zoo}
	})
	return auditShr
}

// startAuditServer serves the shared zoo with audits enabled over a
// detector freshly loaded from the .bpd artifact — the fresh-process side
// of the train-once / audit-many contract.
func startAuditServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	env := sharedAuditEnv(t)
	loaded, err := bprom.LoadFile(env.artPath)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(env.zoo, RegistryConfig{MaxLoaded: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := NewRegistryServer(reg)
	if err := s.EnableAudits(loaded, AuditConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, s
}

// TestServerSideAuditMatchesInProcessInspect is the acceptance check of the
// audit redesign, extending the PR 3 remote-parity test across BOTH new
// boundaries at once: a detector round-tripped through its .bpd artifact
// into a "fresh process", driving a server-side audit job against a hosted
// checkpoint, must produce a verdict bit-identical to the original
// in-memory detector inspecting the same checkpoint in-process.
func TestServerSideAuditMatchesInProcessInspect(t *testing.T) {
	env := sharedAuditEnv(t)
	srv, _ := startAuditServer(t)
	ctx := context.Background()

	for i, id := range []string{"clean", "badnets"} {
		c, err := DialModel(ctx, srv.URL, id, ClientConfig{AuditPoll: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		job, err := c.AuditModel(ctx, 100+i)
		if err != nil {
			t.Fatal(err)
		}
		final, err := c.WaitAudit(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != "done" || final.Verdict == nil {
			t.Fatalf("audit of %s did not finish: %+v", id, final)
		}
		if final.Verdict.Queries == 0 || final.Progress.Queries != final.Verdict.Queries {
			t.Fatalf("audit of %s lost its query count: %+v", id, final)
		}

		m, err := nn.LoadFile(filepath.Join(env.zoo, id+".bin"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := env.det.Inspect(ctx, oracle.NewModelOracle(m), 100+i)
		if err != nil {
			t.Fatal(err)
		}
		if *final.Verdict != want {
			t.Fatalf("server-side audit of %s: verdict %+v != in-process %+v", id, *final.Verdict, want)
		}
	}
}

func TestAuditRouteLifecycle(t *testing.T) {
	srv, _ := startAuditServer(t)
	ctx := context.Background()
	c, err := DialModel(ctx, srv.URL, "clean", ClientConfig{AuditPoll: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	job, err := c.AuditModel(ctx, ServerAssignedInspectID)
	if err != nil {
		t.Fatal(err)
	}
	if job.ModelID != "clean" || job.State == "" {
		t.Fatalf("submitted job: %+v", job)
	}
	list, err := c.ListAudits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != job.ID {
		t.Fatalf("listing: %+v", list)
	}
	got, err := c.GetAudit(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != job.ID {
		t.Fatalf("GetAudit: %+v", got)
	}
	final, err := c.WaitAudit(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.State.Terminal() {
		t.Fatalf("WaitAudit returned non-terminal job: %+v", final)
	}
	if _, err := c.CancelAudit(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetAudit(ctx, job.ID); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("deleted job should 404, got %v", err)
	}
}

func TestAuditSubmissionValidation(t *testing.T) {
	srv, _ := startAuditServer(t)

	post := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post("/v1/models/nosuch/audits"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %s", resp.Status)
	}
	// oddshape's input geometry doesn't match the detector's prompt canvas.
	if resp := post("/v1/models/oddshape/audits"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("incompatible model: %s", resp.Status)
	}

	// Audits disabled: every audit route answers 501.
	plain := httptest.NewServer(NewServer(testModel(t), ServerConfig{}).Handler())
	t.Cleanup(plain.Close)
	if resp, err := http.Post(plain.URL+"/v1/audits", "application/json", nil); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("audits disabled: %s", resp.Status)
	} else {
		resp.Body.Close()
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := startAuditServer(t)
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	var h struct {
		Status        string `json:"status"`
		Models        int    `json:"models"`
		AuditsEnabled bool   `json:"audits_enabled"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Models != 3 || !h.AuditsEnabled {
		t.Fatalf("healthz payload: %+v", h)
	}
}

// TestPredictStopsRetryingOnCancelledContext pins the retry-path fix: once
// the caller's context is cancelled, Predict must not issue further
// attempts even though 5xx responses are normally retryable.
func TestPredictStopsRetryingOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var hits atomic.Int64
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/info" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"id":"default","name":"flaky","classes":3,"input_dim":16,"max_batch":64}`))
			return
		}
		hits.Add(1)
		cancel() // the caller gives up after the first failure lands
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(failing.Close)

	c, err := Dial(context.Background(), failing.URL, ClientConfig{Retries: 5})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Predict(ctx, tensor.New(1, 16))
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should surface the cancellation, got: %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("predict hit the endpoint %d times after cancellation, want 1", got)
	}
	// 5 retries at exponential backoff would take >3s; aborting on cancel
	// must return almost immediately.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled predict took %s", elapsed)
	}
}
