package mlaas

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

func testModel(t *testing.T) *nn.Model {
	t.Helper()
	m, err := nn.Build(nn.ArchConfig{Arch: nn.ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: 3, Hidden: 8}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func startTestServer(t *testing.T, cfg ServerConfig) (*httptest.Server, *nn.Model) {
	t.Helper()
	m := testModel(t)
	s := NewServer(m, cfg)
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, m
}

func TestInfoAndPredictRoundTrip(t *testing.T) {
	srv, m := startTestServer(t, ServerConfig{Name: "zoo/classifier"})
	c, err := Dial(context.Background(), srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClasses() != 3 || c.InputDim() != 16 {
		t.Fatalf("client metadata %d/%d", c.NumClasses(), c.InputDim())
	}
	x := tensor.New(5, 16)
	rng.New(2).Uniform(x.Data, 0, 1)
	got, err := c.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Predict(x.Clone())
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("remote confidence %d differs: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestPredictRejectsBadBatches(t *testing.T) {
	srv, _ := startTestServer(t, ServerConfig{MaxBatch: 4})
	c, err := Dial(context.Background(), srv.URL, ClientConfig{Retries: NoRetries})
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxBatch() != 4 {
		t.Fatalf("client MaxBatch %d, want 4 from /v1/info", c.MaxBatch())
	}
	// wrong input dim is rejected client-side
	if _, err := c.Predict(context.Background(), tensor.New(1, 7)); err == nil {
		t.Fatal("expected error for wrong dim")
	}
}

func TestClientChunksOversizedBatches(t *testing.T) {
	// 11 rows against max_batch 4 forces three chunked requests; the
	// reassembled confidences must match the in-process model row-exactly.
	srv, m := startTestServer(t, ServerConfig{MaxBatch: 4})
	c, err := Dial(context.Background(), srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(11, 16)
	rng.New(5).Uniform(x.Data, 0, 1)
	got, err := c.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Predict(x.Clone())
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("chunked confidence %d differs: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestServerRejectsOversizedRawBatch(t *testing.T) {
	// The per-request cap still holds for clients that ignore /v1/info.
	srv, _ := startTestServer(t, ServerConfig{MaxBatch: 2})
	var sb strings.Builder
	sb.WriteString(`{"inputs": [`)
	for i := 0; i < 3; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1]`)
	}
	sb.WriteString("]}")
	resp, err := srv.Client().Post(srv.URL+"/v1/predict", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d for oversized raw batch, want 400", resp.StatusCode)
	}
}

func TestRetriesSemantics(t *testing.T) {
	var zero ClientConfig
	zero.defaults()
	if zero.Retries != 2 {
		t.Fatalf("zero-value Retries resolved to %d, want default 2", zero.Retries)
	}
	none := ClientConfig{Retries: NoRetries}
	none.defaults()
	if none.Retries != 0 {
		t.Fatalf("NoRetries resolved to %d, want 0", none.Retries)
	}
	five := ClientConfig{Retries: 5}
	five.defaults()
	if five.Retries != 5 {
		t.Fatalf("explicit Retries resolved to %d, want 5", five.Retries)
	}
}

func TestServerRejectsMalformedRequests(t *testing.T) {
	srv, _ := startTestServer(t, ServerConfig{})
	body := strings.NewReader(`{"inputs": "nope"}`)
	resp, err := srv.Client().Post(srv.URL+"/v1/predict", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d for malformed JSON, want 400", resp.StatusCode)
	}
	resp, err = srv.Client().Post(srv.URL+"/v1/predict", "application/json", strings.NewReader(`{"inputs": []}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d for empty batch, want 400", resp.StatusCode)
	}
	// wrong sample width
	resp, err = srv.Client().Post(srv.URL+"/v1/predict", "application/json", strings.NewReader(`{"inputs": [[1,2,3]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d for short sample, want 400", resp.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startTestServer(t, ServerConfig{MaxConcurrent: 2})
	c, err := Dial(context.Background(), srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := tensor.New(3, 16)
			rng.New(uint64(i)).Uniform(x.Data, 0, 1)
			_, errs[i] = c.Predict(context.Background(), x)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestDialFailsOnBadEndpoint(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := Dial(ctx, "http://127.0.0.1:1", ClientConfig{Timeout: 200 * time.Millisecond, Retries: NoRetries}); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	s := NewServer(testModel(t), ServerConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready
	c, err := Dial(context.Background(), "http://"+addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(context.Background(), tensor.New(1, 16)); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}
