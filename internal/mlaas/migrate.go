package mlaas

import (
	"context"
	"errors"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"

	"bprom/internal/audit"
)

// Audit-job migration: the gateway supervises every audit it places and,
// when the owning node dies, re-homes the job onto the next healthy replica
// in placement order with the newest exported checkpoint attached. The
// resumed job pre-charges the checkpoint's query count into its progress
// counter, so the migrated verdict is bit-identical to an uninterrupted run
// and the tenant ledger never double-charges the queries already spent.
//
// Ownership stays at-most-one: the supervisor only migrates after the
// owner's mark-down has survived a full grace window (a flapping node that
// recovers inside it resets the clock), and when a migrated-away owner
// later returns, its stale local copy of the job is cancelled best-effort.

// MigrationConfig tunes the gateway's audit-job migration supervisor.
type MigrationConfig struct {
	// Enabled turns the supervisor on. Off by default: migration implies
	// the gateway may re-submit work under its own credential, which an
	// operator must opt into.
	Enabled bool
	// Grace is how long a node must stay marked down before its jobs
	// migrate. Mark-down already requires MarkDownAfter consecutive probe
	// failures; the grace window on top keeps a flapping node (down one
	// probe, up the next) from triggering duplicate work. Default 10s.
	Grace time.Duration
	// Interval is the sweep period. Defaults to the gateway's
	// HealthInterval so ownership decisions move at the same cadence as
	// the health picture they depend on.
	Interval time.Duration
	// MaxAttempts bounds re-submission attempts per job per sweep; a job
	// that exhausts them stays tracked and is retried next sweep.
	// Default 3.
	MaxAttempts int
	// BackoffBase and BackoffMax bound the capped, jittered exponential
	// backoff after a failed migration pass. The supervisor never sleeps
	// inside a sweep (one stubborn job must not delay every other tracked
	// job): a job whose attempts all failed is deferred, and later sweeps
	// skip it until the backoff deadline passes. Defaults 100ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// AttemptTimeout bounds one re-submission attempt (the POST carrying
	// the checkpoint frame). Default 10s.
	AttemptTimeout time.Duration
	// ForwardTTL bounds the supervisor's migration bookkeeping: a forward
	// chain entry is dropped once its target job has been out of
	// supervision (finished, failed, or deleted) for this long, and a
	// pending stale-copy cancellation against a node that never returns is
	// aged out the same way — without it both grow for the gateway's
	// lifetime under churn. Default 15m.
	ForwardTTL time.Duration
	// APIKey is the credential the supervisor presents on its own calls —
	// checkpoint polls, resume submissions, stale-copy cancellations.
	// Against tenant-enabled nodes it must be a `service`-flagged key:
	// resuming a migrated job attributes spend to the job's original
	// tenant, which nodes only allow from a service credential. Scoped to
	// the supervisor on purpose — proxied caller traffic keeps the
	// caller's own bearer token (or none) and never inherits this one.
	APIKey string
}

func (c *MigrationConfig) defaults(healthInterval time.Duration) {
	if c.Grace <= 0 {
		c.Grace = 10 * time.Second
	}
	if c.Interval <= 0 {
		c.Interval = healthInterval
		if c.Interval <= 0 {
			c.Interval = 2 * time.Second
		}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = 2 * time.Second
		if c.BackoffMax < c.BackoffBase {
			c.BackoffMax = c.BackoffBase
		}
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 10 * time.Second
	}
	if c.ForwardTTL <= 0 {
		c.ForwardTTL = 15 * time.Minute
	}
}

// trackedJob is one live audit under supervision. The identity fields
// (tenant, inspectID) are what make the migrated job the *same* job: the
// resume submission carries them so the verdict stream and the ledger
// attribution survive the move.
type trackedJob struct {
	gwID      string // namespaced gateway id ("n0.a3")
	node      *gatewayNode
	localID   string // node-local id ("a3")
	modelID   string
	inspectID int
	tenant    string
	frame     []byte // newest exported checkpoint frame (nil: none yet)
	frameGen  int
	downSince time.Time // zero while the owner is healthy
	attempts  int       // cumulative failed migration attempts (backoff shape)
	nextTry   time.Time // earliest next migration pass (capped-jitter backoff)
}

type staleJob struct {
	node    *gatewayNode
	localID string
	since   time.Time // when the cancellation became pending (ForwardTTL aging)
}

// forward is one migration forward-chain entry. seen is the last time the
// chain's terminal job was still under supervision; once the job leaves
// (terminal or deleted) the entry ages out after ForwardTTL.
type forward struct {
	to   string
	seen time.Time
}

type supervisor struct {
	g   *Gateway
	cfg MigrationConfig

	sweepMu sync.Mutex // serializes whole sweeps (ticker vs. test-driven)

	mu        sync.Mutex
	tracked   map[string]*trackedJob
	forwards  map[string]forward // old gateway id -> new gateway id
	stale     []staleJob         // migrated-away copies to cancel if the owner returns
	nMigrated int
	nFailed   int // jobs abandoned on a deterministic target rejection
}

func newSupervisor(g *Gateway, cfg MigrationConfig) *supervisor {
	return &supervisor{
		g:        g,
		cfg:      cfg,
		tracked:  make(map[string]*trackedJob),
		forwards: make(map[string]forward),
	}
}

// track registers a just-submitted (or just-migrated) job for supervision.
// Terminal jobs have nothing left to protect and are skipped.
func (s *supervisor) track(n *gatewayNode, gw audit.Job, modelID string) {
	if gw.State.Terminal() {
		return
	}
	tj := &trackedJob{
		gwID:      gw.ID,
		node:      n,
		localID:   strings.TrimPrefix(gw.ID, n.name+"."),
		modelID:   modelID,
		inspectID: gw.InspectID,
		tenant:    gw.Tenant,
	}
	s.mu.Lock()
	s.tracked[gw.ID] = tj
	s.mu.Unlock()
}

// resolve follows the forward chain left by migrations, so a client polling
// the id it was handed at submission reaches the job wherever it lives now.
// The chain is loop-free by construction (a forward is only ever recorded
// to a freshly created id) but the walk is bounded anyway.
func (s *supervisor) resolve(jobID string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i <= len(s.forwards); i++ {
		next, ok := s.forwards[jobID]
		if !ok {
			break
		}
		jobID = next.to
	}
	return jobID
}

// migrated reports how many jobs have been re-homed.
func (s *supervisor) migrated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nMigrated
}

// failed reports how many jobs were abandoned because every migration
// target would deterministically reject them.
func (s *supervisor) failed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nFailed
}

// snapshot copies the tracked set so the sweep can do network I/O without
// holding the supervisor lock.
func (s *supervisor) snapshot() []*trackedJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := make([]*trackedJob, 0, len(s.tracked))
	for _, tj := range s.tracked {
		jobs = append(jobs, tj)
	}
	return jobs
}

func (s *supervisor) untrack(gwID string) {
	s.mu.Lock()
	delete(s.tracked, gwID)
	s.mu.Unlock()
}

// sweep runs one supervision pass: poll healthy owners (dropping finished
// jobs, caching the newest checkpoint), start or advance the grace clock on
// down owners, migrate jobs whose owner stayed down past the grace window
// (skipping jobs still inside their failure backoff — the sweep itself
// never sleeps, so one stubborn job cannot delay the rest), cancel stale
// copies on owners that came back after losing a job, and age out
// bookkeeping for jobs and nodes that are gone for good. The background
// loop calls it on Migration.Interval; tests drive it directly.
func (s *supervisor) sweep(ctx context.Context) {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if s.cfg.APIKey != "" {
		ctx = WithAPIKey(ctx, s.cfg.APIKey) // the supervisor's own credential
	}
	now := time.Now()
	for _, tj := range s.snapshot() {
		if tj.node.isHealthy() {
			s.mu.Lock()
			tj.downSince = time.Time{} // flap protection: recovery resets the clock
			tj.attempts = 0
			tj.nextTry = time.Time{}
			s.mu.Unlock()
			s.poll(ctx, tj)
			continue
		}
		s.mu.Lock()
		if tj.downSince.IsZero() {
			tj.downSince = now
		}
		due := now.Sub(tj.downSince) >= s.cfg.Grace && !now.Before(tj.nextTry)
		s.mu.Unlock()
		if due {
			s.migrate(ctx, tj)
		}
	}
	s.cancelStale(ctx)
	s.prune(time.Now())
}

// poll refreshes one healthy owner's view of a job: terminal or unknown
// jobs leave supervision, live ones contribute their newest checkpoint to
// the cache that a later migration would resume from.
func (s *supervisor) poll(ctx context.Context, tj *trackedJob) {
	job, err := tj.node.api.GetAudit(ctx, tj.localID)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			s.untrack(tj.gwID) // deleted on the node; nothing left to supervise
		}
		return // transient: the health probe owns strike bookkeeping
	}
	if job.State.Terminal() {
		s.untrack(tj.gwID)
		return
	}
	exp, err := tj.node.api.ExportCheckpoint(ctx, tj.localID)
	if err != nil {
		return // no checkpoint yet, or transient — keep what we have
	}
	s.mu.Lock()
	if tj.frame == nil || exp.Generation >= tj.frameGen {
		tj.frame = exp.Frame
		tj.frameGen = exp.Generation
	}
	s.mu.Unlock()
}

// migrate re-homes one job: healthy hosting nodes excluding the dead owner
// are tried in placement order (the same order submission uses, so the job
// lands where a fresh submission would), each attempt bounded by
// AttemptTimeout. With no cached checkpoint the job restarts from
// generation zero — identity (tenant, inspect_id) still carries over, so
// the verdict is unchanged.
//
// Failure handling is three-way. A transient failure (transport error,
// 5xx, 429) moves on to the next candidate; when the pass exhausts its
// MaxAttempts (or the candidates), the job stays tracked and is deferred by
// a capped jittered backoff — the sweep never sleeps in place, so other
// jobs keep migrating on schedule. A deterministic rejection (any other
// 4xx: oversized body, incompatible model, missing service credential) is
// final — the fleet is uniform, so every replica would answer the same —
// and the job is abandoned, counted in migration_failures instead of being
// retried forever. A target that rejects the checkpoint as CORRUPT is not
// an error at all: the job is created terminal (failed, error_code
// "bad_checkpoint"), the forward is recorded, and the poller sees the
// clean failure — restarting from scratch behind the tenant's back would
// silently re-spend their query budget.
func (s *supervisor) migrate(ctx context.Context, tj *trackedJob) {
	s.mu.Lock()
	resume := AuditResume{Checkpoint: tj.frame, Tenant: tj.tenant, Source: tj.gwID}
	frameGen := tj.frameGen
	inspectID := tj.inspectID
	s.mu.Unlock()

	g := s.g
	g.mu.Lock()
	hosting := g.hosts[tj.modelID]
	g.mu.Unlock()
	names := make([]string, 0, len(hosting))
	for _, n := range hosting {
		names = append(names, n.name)
	}
	attempts := 0
	for _, name := range placementOrder(tj.modelID, names) {
		n := g.byName[name]
		if n == tj.node || !n.isHealthy() {
			continue
		}
		if attempts >= s.cfg.MaxAttempts {
			break // defer below; a later sweep retries
		}
		attempts++
		job, err := s.resubmit(ctx, n, tj.modelID, inspectID, resume)
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) && se.Code >= 400 && se.Code < 500 && se.Code != http.StatusTooManyRequests {
				// Deterministic rejection: the uniform fleet would answer
				// the same everywhere, so retrying can only loop. Abandon
				// the job (it stays wherever the dead owner left it) and
				// surface the give-up in healthz migration_failures.
				s.mu.Lock()
				delete(s.tracked, tj.gwID)
				s.nFailed++
				s.mu.Unlock()
				return
			}
			s.mu.Lock()
			tj.attempts++
			s.mu.Unlock()
			continue
		}
		gw := namespaceJob(n, job)
		now := time.Now()
		s.mu.Lock()
		s.forwards[tj.gwID] = forward{to: gw.ID, seen: now}
		delete(s.tracked, tj.gwID)
		s.nMigrated++
		s.stale = append(s.stale, staleJob{node: tj.node, localID: tj.localID, since: now})
		s.mu.Unlock()
		s.track(n, gw, tj.modelID)
		// Seed the new owner's supervision entry with the frame just
		// resubmitted: if the new owner dies before the first successful
		// checkpoint poll, the next migration still resumes from the
		// carried-over state instead of restarting at generation zero and
		// re-spending queries the ledger already charged.
		s.mu.Lock()
		if ntj := s.tracked[gw.ID]; ntj != nil && ntj.frame == nil {
			ntj.frame = resume.Checkpoint
			ntj.frameGen = frameGen
		}
		s.mu.Unlock()
		return
	}
	if attempts > 0 {
		// Every candidate failed transiently: defer the next pass with
		// capped-jitter backoff instead of sleeping here — the rest of the
		// sweep (and the next ticks) must not wait on this job.
		s.mu.Lock()
		tj.nextTry = time.Now().Add(s.backoff(tj.attempts))
		s.mu.Unlock()
	}
}

// resubmit posts one resume submission to one candidate node.
func (s *supervisor) resubmit(ctx context.Context, n *gatewayNode, modelID string, inspectID int, resume AuditResume) (audit.Job, error) {
	actx, cancel := context.WithTimeout(ctx, s.cfg.AttemptTimeout)
	defer cancel()
	c, err := n.predictClient(actx, modelID)
	if err != nil {
		return audit.Job{}, err
	}
	return c.AuditModelResume(actx, inspectID, resume)
}

// cancelStale enforces at-most-one-owner after the fact: when a node that
// lost a job to migration comes back up, its local copy — orphaned, still
// queued or running — is cancelled so two nodes never burn oracle queries
// on the same audit. Best-effort: a failure leaves the entry for the next
// sweep, and a 4xx (job already terminal or gone on the node) retires it.
func (s *supervisor) cancelStale(ctx context.Context) {
	s.mu.Lock()
	pending := s.stale
	s.stale = nil
	s.mu.Unlock()
	var keep []staleJob
	for _, sj := range pending {
		if !sj.node.isHealthy() {
			keep = append(keep, sj)
			continue
		}
		if _, err := sj.node.api.CancelAudit(ctx, sj.localID); err != nil {
			var se *StatusError
			if errors.As(err, &se) && se.Code >= 400 && se.Code < 500 {
				continue // already terminal or deleted: settled
			}
			keep = append(keep, sj)
		}
	}
	if keep != nil {
		s.mu.Lock()
		s.stale = append(s.stale, keep...)
		s.mu.Unlock()
	}
}

// prune ages out the supervisor's long-tail bookkeeping so a long-lived
// gateway under node churn holds state proportional to its LIVE jobs, not
// its history. A forward entry stays fresh while its chain's terminal job
// is still supervised (a client may poll the original id for as long as
// the job runs); once the job leaves supervision the entry survives one
// more ForwardTTL for terminal-verdict polling and is then dropped. Stale
// cancellations against nodes that never came back age out on the same
// clock — if the node ever does return, its next journal replay is bounded
// by the job's own lifecycle, not by the gateway remembering it.
func (s *supervisor) prune(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, f := range s.forwards {
		// Walk to the chain's terminal id (bounded like resolve).
		target := f.to
		for i := 0; i <= len(s.forwards); i++ {
			next, ok := s.forwards[target]
			if !ok {
				break
			}
			target = next.to
		}
		if _, live := s.tracked[target]; live {
			f.seen = now
			s.forwards[id] = f
		} else if now.Sub(f.seen) > s.cfg.ForwardTTL {
			delete(s.forwards, id)
		}
	}
	keep := s.stale[:0]
	for _, sj := range s.stale {
		if now.Sub(sj.since) <= s.cfg.ForwardTTL {
			keep = append(keep, sj)
		}
	}
	s.stale = keep
}

// backoff computes the sleep before the next migration attempt: capped
// exponential from BackoffBase with the upper half jittered, same shape as
// the client's retryBackoff but bounded by the supervisor's own knobs.
func (s *supervisor) backoff(attempt int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 0; i < attempt && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	return d/2 + rand.N(d/2+1)
}
