package mlaas

import (
	"context"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// writeZoo saves n distinct checkpoints (zoo-0 .. zoo-<n-1>) plus one named
// "clean" into a fresh temp dir and returns the dir and the in-memory
// models keyed by id.
func writeZoo(t *testing.T, n int) (string, map[string]*nn.Model) {
	t.Helper()
	dir := t.TempDir()
	models := make(map[string]*nn.Model)
	ids := []string{"clean"}
	for i := 0; i < n; i++ {
		ids = append(ids, "zoo-"+string(rune('a'+i)))
	}
	for i, id := range ids {
		m, err := nn.Build(nn.ArchConfig{Arch: nn.ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: 3, Hidden: 8}, rng.New(uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, id+".bin")
		if err := m.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		sc := nn.SidecarFor(m, "zoo/"+id, "test checkpoint "+id)
		if err := sc.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		models[id] = m
	}
	return dir, models
}

func TestRegistryScanAndDefaults(t *testing.T) {
	dir, models := writeZoo(t, 3)
	reg, err := OpenRegistry(dir, RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if reg.Len() != len(models) {
		t.Fatalf("registry hosts %d models, want %d", reg.Len(), len(models))
	}
	if reg.DefaultID() != "clean" {
		t.Fatalf("default %q, want the checkpoint named clean", reg.DefaultID())
	}
	list := reg.Models()
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatalf("listing not sorted: %q before %q", list[i-1].ID, list[i].ID)
		}
	}
	info, err := reg.Info("zoo-a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Classes != 3 || info.InputDim != 16 {
		t.Fatalf("scan metadata %d classes / dim %d, want 3/16", info.Classes, info.InputDim)
	}
	if info.Name != "zoo/zoo-a" || info.Note == "" || info.Params == 0 {
		t.Fatalf("sidecar metadata not picked up: %+v", info)
	}
	if info.Loaded {
		t.Fatal("scan must not load weights")
	}
	if _, err := reg.Info("nope"); err == nil {
		t.Fatal("expected unknown-model error")
	}
	if reg.LoadedCount() != 0 {
		t.Fatalf("loaded %d models before any request", reg.LoadedCount())
	}
}

func TestRegistryExplicitDefault(t *testing.T) {
	dir, _ := writeZoo(t, 2)
	reg, err := OpenRegistry(dir, RegistryConfig{Default: "zoo-b"})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if reg.DefaultID() != "zoo-b" {
		t.Fatalf("default %q, want zoo-b", reg.DefaultID())
	}
	if _, err := OpenRegistry(dir, RegistryConfig{Default: "missing"}); err == nil {
		t.Fatal("expected error for unknown default id")
	}
}

func TestRegistryRejectsBadCheckpoint(t *testing.T) {
	dir, _ := writeZoo(t, 1)
	if err := os.WriteFile(filepath.Join(dir, "junk.bin"), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegistry(dir, RegistryConfig{}); err == nil {
		t.Fatal("expected scan error for corrupt checkpoint")
	}
}

func TestRegistryServingMatchesInProcess(t *testing.T) {
	dir, models := writeZoo(t, 3)
	reg, err := OpenRegistry(dir, RegistryConfig{MaxLoaded: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := NewRegistryServer(reg)
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	ctx := context.Background()
	list, err := ListModels(ctx, srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != len(models) || list.Default != "clean" {
		t.Fatalf("listing %+v", list)
	}
	x := tensor.New(5, 16)
	rng.New(9).Uniform(x.Data, 0, 1)
	for _, mi := range list.Models {
		c, err := DialModel(ctx, srv.URL, mi.ID, ClientConfig{})
		if err != nil {
			t.Fatalf("dial %s: %v", mi.ID, err)
		}
		if c.ModelID() != mi.ID || c.Name() != "zoo/"+mi.ID {
			t.Fatalf("client bound to %q name %q", c.ModelID(), c.Name())
		}
		got, err := c.Predict(ctx, x)
		if err != nil {
			t.Fatalf("predict %s: %v", mi.ID, err)
		}
		want := models[mi.ID].Predict(x.Clone())
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("model %s confidence %d differs: %v vs %v", mi.ID, i, got.Data[i], want.Data[i])
			}
		}
	}

	// The legacy un-prefixed routes alias the default model.
	c, err := Dial(ctx, srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	want := models["clean"].Predict(x.Clone())
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("legacy route row %d differs from default model", i)
		}
	}

	// Unknown ids are 404, surfaced as non-retryable client errors.
	if _, err := DialModel(ctx, srv.URL, "missing", ClientConfig{Retries: NoRetries}); err == nil {
		t.Fatal("expected 404 for unknown model")
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	dir, _ := writeZoo(t, 3) // 4 checkpoints incl. clean
	reg, err := OpenRegistry(dir, RegistryConfig{MaxLoaded: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()
	x := tensor.New(1, 16)
	rng.New(3).Uniform(x.Data, 0, 1)

	touch := func(id string) {
		t.Helper()
		if _, err := reg.Predict(ctx, id, x.Clone()); err != nil {
			t.Fatalf("predict %s: %v", id, err)
		}
	}
	loaded := func() map[string]bool {
		set := make(map[string]bool)
		for _, mi := range reg.Models() {
			if mi.Loaded {
				set[mi.ID] = true
			}
		}
		return set
	}

	touch("clean")
	touch("zoo-a")
	if n := reg.LoadedCount(); n != 2 {
		t.Fatalf("loaded %d, want 2", n)
	}
	// Loading a third must evict the least recently used (clean).
	touch("zoo-b")
	set := loaded()
	if len(set) != 2 || set["clean"] || !set["zoo-a"] || !set["zoo-b"] {
		t.Fatalf("hot-set after eviction: %v", set)
	}
	// Re-touch zoo-a so zoo-b becomes LRU, then load a fourth.
	touch("zoo-a")
	touch("zoo-c")
	set = loaded()
	if len(set) != 2 || set["zoo-b"] || !set["zoo-a"] || !set["zoo-c"] {
		t.Fatalf("hot-set after recency update: %v", set)
	}
	// Evicted models reload on demand and still serve.
	touch("clean")
	if n := reg.LoadedCount(); n != 2 {
		t.Fatalf("loaded %d after reload, want 2", n)
	}
}

func TestRegistryConcurrentLoadAndEvictionUnderLoad(t *testing.T) {
	dir, models := writeZoo(t, 4) // 5 checkpoints, hot-set of 2
	reg, err := OpenRegistry(dir, RegistryConfig{MaxLoaded: 2, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()
	ids := make([]string, 0, len(models))
	for id := range models {
		ids = append(ids, id)
	}

	// Hammer every model from many goroutines at once: cold loads race,
	// evictions interleave with in-flight predicts, and every response must
	// still match the right model bit-for-bit.
	const workers = 16
	const rounds = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w + 1))
			for i := 0; i < rounds; i++ {
				id := ids[(w+i)%len(ids)]
				x := tensor.New(2, 16)
				r.Uniform(x.Data, 0, 1)
				got, err := reg.Predict(ctx, id, x)
				if err != nil {
					errs[w] = err
					return
				}
				want := models[id].Predict(x.Clone())
				for j := range want.Data {
					if math.Abs(got.Data[j]-want.Data[j]) > 1e-9 {
						t.Errorf("worker %d: model %s row value %d differs", w, id, j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	// Once the storm drains, the hot-set is back within budget.
	if n := reg.LoadedCount(); n > 2 {
		t.Fatalf("hot-set %d exceeds MaxLoaded 2 after drain", n)
	}
}

func TestRegistryPredictAfterClose(t *testing.T) {
	dir, _ := writeZoo(t, 1)
	reg, err := OpenRegistry(dir, RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()
	reg.Close() // idempotent
	if _, err := reg.Predict(context.Background(), "", tensor.New(1, 16)); err == nil {
		t.Fatal("expected error after Close")
	}
}
