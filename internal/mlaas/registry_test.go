package mlaas

import (
	"context"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// writeZoo saves n distinct checkpoints (zoo-0 .. zoo-<n-1>) plus one named
// "clean" into a fresh temp dir and returns the dir and the in-memory
// models keyed by id.
func writeZoo(t *testing.T, n int) (string, map[string]*nn.Model) {
	t.Helper()
	dir := t.TempDir()
	models := make(map[string]*nn.Model)
	ids := []string{"clean"}
	for i := 0; i < n; i++ {
		ids = append(ids, "zoo-"+string(rune('a'+i)))
	}
	for i, id := range ids {
		m, err := nn.Build(nn.ArchConfig{Arch: nn.ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: 3, Hidden: 8}, rng.New(uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, id+".bin")
		if err := m.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		sc := nn.SidecarFor(m, "zoo/"+id, "test checkpoint "+id)
		if err := sc.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		models[id] = m
	}
	return dir, models
}

// writeQuantZoo saves n checkpoints whose hidden layers clear the default
// quantization weight floor (Dense 64x32 = 2048 weights), so opening the
// dir with Quantize: true actually converts them. Returns the dir and the
// in-memory fp models keyed by id ("big-a", "big-b", ...).
func writeQuantZoo(t *testing.T, n int) (string, map[string]*nn.Model) {
	t.Helper()
	dir := t.TempDir()
	models := make(map[string]*nn.Model)
	for i := 0; i < n; i++ {
		id := "big-" + string(rune('a'+i))
		r := rng.New(uint64(200 + i))
		m := &nn.Model{
			Arch:       nn.ArchConvLite,
			InputDim:   64,
			NumClasses: 3,
			Layers: []nn.Layer{
				nn.NewDense(64, 32, r),
				&nn.ReLU{},
				nn.NewDense(32, 3, r),
			},
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, id+".bin")
		if err := m.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		models[id] = m
	}
	return dir, models
}

// quantizedCopy round-trips m through the serializer and quantizes the
// copy with the registry's own policy (default weight floor) — the
// reference for what a quantize-on-load registry must serve.
func quantizedCopy(t *testing.T, m *nn.Model) *nn.Model {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "m.bin")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := nn.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	q.Quantize(0)
	return q
}

func TestRegistryScanAndDefaults(t *testing.T) {
	dir, models := writeZoo(t, 3)
	reg, err := OpenRegistry(dir, RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if reg.Len() != len(models) {
		t.Fatalf("registry hosts %d models, want %d", reg.Len(), len(models))
	}
	if reg.DefaultID() != "clean" {
		t.Fatalf("default %q, want the checkpoint named clean", reg.DefaultID())
	}
	list := reg.Models()
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatalf("listing not sorted: %q before %q", list[i-1].ID, list[i].ID)
		}
	}
	info, err := reg.Info("zoo-a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Classes != 3 || info.InputDim != 16 {
		t.Fatalf("scan metadata %d classes / dim %d, want 3/16", info.Classes, info.InputDim)
	}
	if info.Name != "zoo/zoo-a" || info.Note == "" || info.Params == 0 {
		t.Fatalf("sidecar metadata not picked up: %+v", info)
	}
	if info.Loaded {
		t.Fatal("scan must not load weights")
	}
	if _, err := reg.Info("nope"); err == nil {
		t.Fatal("expected unknown-model error")
	}
	if reg.LoadedCount() != 0 {
		t.Fatalf("loaded %d models before any request", reg.LoadedCount())
	}
}

func TestRegistryExplicitDefault(t *testing.T) {
	dir, _ := writeZoo(t, 2)
	reg, err := OpenRegistry(dir, RegistryConfig{Default: "zoo-b"})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if reg.DefaultID() != "zoo-b" {
		t.Fatalf("default %q, want zoo-b", reg.DefaultID())
	}
	if _, err := OpenRegistry(dir, RegistryConfig{Default: "missing"}); err == nil {
		t.Fatal("expected error for unknown default id")
	}
}

func TestRegistryRejectsBadCheckpoint(t *testing.T) {
	dir, _ := writeZoo(t, 1)
	if err := os.WriteFile(filepath.Join(dir, "junk.bin"), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegistry(dir, RegistryConfig{}); err == nil {
		t.Fatal("expected scan error for corrupt checkpoint")
	}
}

func TestRegistryServingMatchesInProcess(t *testing.T) {
	dir, models := writeZoo(t, 3)
	reg, err := OpenRegistry(dir, RegistryConfig{MaxLoaded: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := NewRegistryServer(reg)
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	ctx := context.Background()
	list, err := ListModels(ctx, srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != len(models) || list.Default != "clean" {
		t.Fatalf("listing %+v", list)
	}
	x := tensor.New(5, 16)
	rng.New(9).Uniform(x.Data, 0, 1)
	for _, mi := range list.Models {
		c, err := DialModel(ctx, srv.URL, mi.ID, ClientConfig{})
		if err != nil {
			t.Fatalf("dial %s: %v", mi.ID, err)
		}
		if c.ModelID() != mi.ID || c.Name() != "zoo/"+mi.ID {
			t.Fatalf("client bound to %q name %q", c.ModelID(), c.Name())
		}
		got, err := c.Predict(ctx, x)
		if err != nil {
			t.Fatalf("predict %s: %v", mi.ID, err)
		}
		want := models[mi.ID].Predict(x.Clone())
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("model %s confidence %d differs: %v vs %v", mi.ID, i, got.Data[i], want.Data[i])
			}
		}
	}

	// The legacy un-prefixed routes alias the default model.
	c, err := Dial(ctx, srv.URL, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	want := models["clean"].Predict(x.Clone())
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("legacy route row %d differs from default model", i)
		}
	}

	// Unknown ids are 404, surfaced as non-retryable client errors.
	if _, err := DialModel(ctx, srv.URL, "missing", ClientConfig{Retries: NoRetries}); err == nil {
		t.Fatal("expected 404 for unknown model")
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	dir, _ := writeZoo(t, 3) // 4 checkpoints incl. clean
	reg, err := OpenRegistry(dir, RegistryConfig{MaxLoaded: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()
	x := tensor.New(1, 16)
	rng.New(3).Uniform(x.Data, 0, 1)

	touch := func(id string) {
		t.Helper()
		if _, _, err := reg.Predict(ctx, id, x.Clone(), false); err != nil {
			t.Fatalf("predict %s: %v", id, err)
		}
	}
	loaded := func() map[string]bool {
		set := make(map[string]bool)
		for _, mi := range reg.Models() {
			if mi.Loaded {
				set[mi.ID] = true
			}
		}
		return set
	}

	touch("clean")
	touch("zoo-a")
	if n := reg.LoadedCount(); n != 2 {
		t.Fatalf("loaded %d, want 2", n)
	}
	// Loading a third must evict the least recently used (clean).
	touch("zoo-b")
	set := loaded()
	if len(set) != 2 || set["clean"] || !set["zoo-a"] || !set["zoo-b"] {
		t.Fatalf("hot-set after eviction: %v", set)
	}
	// Re-touch zoo-a so zoo-b becomes LRU, then load a fourth.
	touch("zoo-a")
	touch("zoo-c")
	set = loaded()
	if len(set) != 2 || set["zoo-b"] || !set["zoo-a"] || !set["zoo-c"] {
		t.Fatalf("hot-set after recency update: %v", set)
	}
	// Evicted models reload on demand and still serve.
	touch("clean")
	if n := reg.LoadedCount(); n != 2 {
		t.Fatalf("loaded %d after reload, want 2", n)
	}
}

func TestRegistryConcurrentLoadAndEvictionUnderLoad(t *testing.T) {
	dir, models := writeZoo(t, 4) // 5 checkpoints, hot-set of 2
	reg, err := OpenRegistry(dir, RegistryConfig{MaxLoaded: 2, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()
	ids := make([]string, 0, len(models))
	for id := range models {
		ids = append(ids, id)
	}

	// Hammer every model from many goroutines at once: cold loads race,
	// evictions interleave with in-flight predicts, and every response must
	// still match the right model bit-for-bit.
	const workers = 16
	const rounds = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w + 1))
			for i := 0; i < rounds; i++ {
				id := ids[(w+i)%len(ids)]
				x := tensor.New(2, 16)
				r.Uniform(x.Data, 0, 1)
				got, _, err := reg.Predict(ctx, id, x, false)
				if err != nil {
					errs[w] = err
					return
				}
				want := models[id].Predict(x.Clone())
				for j := range want.Data {
					if math.Abs(got.Data[j]-want.Data[j]) > 1e-9 {
						t.Errorf("worker %d: model %s row value %d differs", w, id, j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	// Once the storm drains, the hot-set is back within budget.
	if n := reg.LoadedCount(); n > 2 {
		t.Fatalf("hot-set %d exceeds MaxLoaded 2 after drain", n)
	}
}

// TestRegistryQuantizeOnLoad: a Quantize registry advertises int8, serves
// predictions bitwise identical to quantizing the checkpoint in-process,
// and charges residency at the shrunken footprint.
func TestRegistryQuantizeOnLoad(t *testing.T) {
	dir, models := writeQuantZoo(t, 2)
	reg, err := OpenRegistry(dir, RegistryConfig{Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	info, err := reg.Info("big-a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Precision != nn.PrecisionInt8 {
		t.Fatalf("advertised precision %q, want int8", info.Precision)
	}
	if info.ResidentBytes != 0 || reg.ResidentBytes() != 0 {
		t.Fatal("cold models must charge no resident bytes")
	}

	ctx := context.Background()
	x := tensor.New(4, 64)
	rng.New(21).Uniform(x.Data, 0, 1)
	got, _, err := reg.Predict(ctx, "big-a", x.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	want := quantizedCopy(t, models["big-a"]).Predict(x.Clone())
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("value %d: registry %v != in-process quantized %v", i, got.Data[i], want.Data[i])
		}
	}

	// Residency is charged at the quantized size: well under half the fp
	// footprint (the small head stays fp, so the ratio is between 2x and
	// the pure-int8 ~5x).
	fpBytes := models["big-a"].WeightBytes()
	qBytes := reg.ResidentBytes()
	if qBytes == 0 || qBytes*2 > fpBytes {
		t.Fatalf("resident %d bytes for a quantized model, fp footprint %d", qBytes, fpBytes)
	}
	info, _ = reg.Info("big-a")
	if info.ResidentBytes != qBytes {
		t.Fatalf("info.ResidentBytes %d != registry total %d", info.ResidentBytes, qBytes)
	}
}

// TestRegistrySidecarPrecisionOverride: the sidecar "precision" field pins
// individual models against the registry default, in both directions. The
// fp-pinned model on a quantized registry is the experiment harness's
// bit-reproducibility escape hatch, so its predictions must be bitwise
// identical to the in-process fp model.
func TestRegistrySidecarPrecisionOverride(t *testing.T) {
	dir, models := writeQuantZoo(t, 2)
	sc := nn.SidecarFor(models["big-a"], "", "pinned fp")
	sc.Precision = nn.PrecisionFP64
	if err := sc.WriteFile(filepath.Join(dir, "big-a.bin")); err != nil {
		t.Fatal(err)
	}

	reg, err := OpenRegistry(dir, RegistryConfig{Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()
	x := tensor.New(3, 64)
	rng.New(23).Uniform(x.Data, 0, 1)

	info, _ := reg.Info("big-a")
	if info.Precision != nn.PrecisionFP64 {
		t.Fatalf("fp-pinned model advertises %q", info.Precision)
	}
	got, _, err := reg.Predict(ctx, "big-a", x.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	want := models["big-a"].Predict(x.Clone())
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("fp-pinned model not bit-identical to in-process fp at %d", i)
		}
	}
	// The sibling without an override follows the registry default.
	if info, _ := reg.Info("big-b"); info.Precision != nn.PrecisionInt8 {
		t.Fatalf("default-precision model advertises %q, want int8", info.Precision)
	}
	reg.Close()

	// Other direction: int8 override on an otherwise fp registry.
	sc.Precision = nn.PrecisionInt8
	if err := sc.WriteFile(filepath.Join(dir, "big-a.bin")); err != nil {
		t.Fatal(err)
	}
	reg2, err := OpenRegistry(dir, RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if info, _ := reg2.Info("big-a"); info.Precision != nn.PrecisionInt8 {
		t.Fatalf("int8-pinned model advertises %q", info.Precision)
	}
	if info, _ := reg2.Info("big-b"); info.Precision != nn.PrecisionFP64 {
		t.Fatalf("default model advertises %q, want fp64", info.Precision)
	}
	got2, _, err := reg2.Predict(ctx, "big-a", x.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	wantQ := quantizedCopy(t, models["big-a"]).Predict(x.Clone())
	for i := range wantQ.Data {
		if got2.Data[i] != wantQ.Data[i] {
			t.Fatalf("int8-pinned model not identical to in-process quantized at %d", i)
		}
	}

	// Unknown precision values are a scan error, not a silent default.
	sc.Precision = "bf16"
	if err := sc.WriteFile(filepath.Join(dir, "big-a.bin")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegistry(dir, RegistryConfig{}); err == nil {
		t.Fatal("expected scan error for unknown sidecar precision")
	}
}

// TestRegistryMixedPrecisionResidency: LRU byte accounting with fp and
// int8 entries side by side — loading charges each entry's own footprint,
// eviction refunds exactly what was charged, and MaxLoaded semantics are
// unchanged by precision.
func TestRegistryMixedPrecisionResidency(t *testing.T) {
	dir, models := writeQuantZoo(t, 3)
	// big-a pinned fp on a quantized registry; big-b and big-c follow the
	// int8 default.
	sc := nn.SidecarFor(models["big-a"], "", "")
	sc.Precision = nn.PrecisionFP64
	if err := sc.WriteFile(filepath.Join(dir, "big-a.bin")); err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(dir, RegistryConfig{Quantize: true, MaxLoaded: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()
	x := tensor.New(1, 64)
	rng.New(29).Uniform(x.Data, 0, 1)
	touch := func(id string) {
		t.Helper()
		if _, _, err := reg.Predict(ctx, id, x.Clone(), false); err != nil {
			t.Fatal(err)
		}
	}
	resident := func(id string) int {
		t.Helper()
		info, err := reg.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		return info.ResidentBytes
	}

	touch("big-a")
	fpBytes := resident("big-a")
	if fpBytes != models["big-a"].WeightBytes() {
		t.Fatalf("fp entry charges %d bytes, want its full fp footprint %d", fpBytes, models["big-a"].WeightBytes())
	}
	if reg.ResidentBytes() != fpBytes {
		t.Fatalf("registry total %d != sole entry %d", reg.ResidentBytes(), fpBytes)
	}

	touch("big-b")
	qBytes := resident("big-b")
	if qBytes == 0 || qBytes*2 > fpBytes {
		t.Fatalf("int8 entry charges %d bytes vs fp %d, want a big shrink", qBytes, fpBytes)
	}
	if reg.ResidentBytes() != fpBytes+qBytes {
		t.Fatalf("registry total %d != fp %d + int8 %d", reg.ResidentBytes(), fpBytes, qBytes)
	}

	// Loading a third evicts the LRU (big-a, the fp entry): the refund must
	// be fp-sized, leaving exactly the two int8 footprints.
	touch("big-c")
	if n := reg.LoadedCount(); n != 2 {
		t.Fatalf("loaded %d, want MaxLoaded 2", n)
	}
	if resident("big-a") != 0 {
		t.Fatal("evicted fp entry still charges bytes")
	}
	if got := reg.ResidentBytes(); got != qBytes+resident("big-c") {
		t.Fatalf("after fp eviction total %d, want %d", got, qBytes+resident("big-c"))
	}

	// Evict an int8 entry (big-b is now LRU): the refund must be int8-sized.
	touch("big-a")
	if resident("big-b") != 0 {
		t.Fatal("evicted int8 entry still charges bytes")
	}
	if got := reg.ResidentBytes(); got != fpBytes+resident("big-c") {
		t.Fatalf("after int8 eviction total %d, want fp %d + int8 %d", got, fpBytes, resident("big-c"))
	}

	reg.Close()
	if reg.ResidentBytes() != 0 {
		t.Fatal("Close must drop all resident bytes")
	}
}

func TestRegistryPredictAfterClose(t *testing.T) {
	dir, _ := writeZoo(t, 1)
	reg, err := OpenRegistry(dir, RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()
	reg.Close() // idempotent
	if _, _, err := reg.Predict(context.Background(), "", tensor.New(1, 16), false); err == nil {
		t.Fatal("expected error after Close")
	}
}
