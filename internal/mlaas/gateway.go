package mlaas

// Multi-node serving plane: the Gateway fronts N mlaas-server nodes as one
// endpoint speaking the exact wire API of a single node. It is the
// "millions of users" scale step — the single-process server is the node,
// and horizontal capacity comes from placing the checkpoint zoo across a
// fleet:
//
//	client ──▶ gateway ──▶ node n0 (mlaas-server, zoo shard)
//	                  ├──▶ node n1
//	                  └──▶ node n2
//
// Design:
//
//   - Placement is rendezvous (highest-random-weight) hashing of
//     (node, model): every model has a stable, uniformly-spread preference
//     order over the node set, and removing a node reassigns only the
//     models it owned — no global reshuffle, no ring state to persist. The
//     top Replication candidates that actually host the model form its
//     replica set; predicts rotate across them and fail over within a
//     request.
//   - Membership is health-checked: a background loop probes every node's
//     /v1/healthz (+ /v1/models, /v1/info) on HealthInterval, with
//     mark-down after MarkDownAfter consecutive failures and mark-up after
//     MarkUpAfter consecutive successes, so a flapping node neither serves
//     traffic nor bounces in and out of the pool per probe. Failed proxied
//     requests count against the same streak (passive detection), so a
//     dead node is usually down before the next probe tick.
//   - The wire API is proxied through remoteProvider, an implementation of
//     the same provider seam the single-node server runs on — the HTTP
//     layer (routes, envelopes, screening fields, error mapping) is reused
//     unchanged, which is what keeps gateway responses bit-identical to a
//     node's and testable as such.
//   - Backpressure passes through: a node's 429 (audit queue full,
//     Retry-After hint) is retried on a replica for idempotent predicts,
//     and only when every replica sheds does the gateway return 429 with
//     the node's own Retry-After. Non-idempotent audit submissions are
//     never retried on another node.
//
// The gateway assumes a uniform fleet: nodes serve the same checkpoints
// for the ids they share and agree on screening policy. Model listings are
// sticky — a node's last-known zoo outlives its mark-down — so a model
// whose only hosts are down yields a structured 503 (ErrNoHealthyReplica),
// distinct from 404 (never hosted anywhere).

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bprom/internal/audit"
	"bprom/internal/jobstore"
	"bprom/internal/tensor"
	"bprom/internal/vp"
)

// ErrNoHealthyReplica reports a model whose hosting nodes are all marked
// down (or shedding): the model exists in the fleet's last-known zoo but is
// currently unservable. The HTTP layer maps it to 503 — clients should
// retry; 404 stays reserved for ids no node has ever listed.
var ErrNoHealthyReplica = errors.New("mlaas: no healthy replica")

// nodeError is a backend node's non-2xx response carried across the
// routing hop: the gateway's HTTP layer re-emits the originating status
// code, message, and Retry-After hint so clients see the node's verdict
// (400 incompatible model, 404 stale listing, 429 queue full, ...) rather
// than a flattened gateway 500.
type nodeError struct {
	node       string
	code       int
	msg        string
	retryAfter int // seconds, 0 = no hint
}

func (e *nodeError) Error() string {
	msg := e.msg
	if msg == "" {
		msg = http.StatusText(e.code)
	}
	return fmt.Sprintf("node %s: %s", e.node, msg)
}

// GatewayConfig tunes the multi-node gateway.
type GatewayConfig struct {
	// Nodes lists the backend base URLs (e.g. "http://10.0.0.7:8100").
	// Order fixes the node names n0, n1, ... used in logs, job ids, and
	// placement hashing. At least one node must be healthy at NewGateway
	// time.
	Nodes []string
	// Replication is how many nodes serve each model (bounded by the number
	// of nodes actually hosting it). 1 (the default) shards the zoo with no
	// redundancy; hot or critical models get >1 so predicts survive a node
	// loss and spread across replicas. Default 1.
	Replication int
	// HealthInterval is the membership probe period. Default 2s.
	HealthInterval time.Duration
	// MarkDownAfter is how many consecutive failures (probes or proxied
	// requests) mark a node down. Default 2.
	MarkDownAfter int
	// MarkUpAfter is how many consecutive successful probes bring a
	// marked-down node back. Default 2. A node's very first successful
	// probe marks it up immediately, so a fresh gateway does not idle
	// through the hysteresis window.
	MarkUpAfter int
	// ProbeTimeout bounds one node's whole health probe (healthz + listing
	// + info). Probes used to inherit the client's 30s request default,
	// which let a single hung node pin a probe goroutine for most of a
	// minute per round; a probe that slow IS a failure. Default 5s.
	ProbeTimeout time.Duration
	// Client configures the per-node HTTP clients. Retries is forced to
	// NoRetries: the gateway's failover across replicas replaces in-place
	// retry — hammering a dead node with backoff would stall the caller,
	// and end clients talking to the gateway bring their own retry loop.
	Client ClientConfig
	// Migration configures the audit-job migration supervisor (disabled by
	// default). See MigrationConfig.
	Migration MigrationConfig
}

func (c *GatewayConfig) defaults() {
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.MarkDownAfter <= 0 {
		c.MarkDownAfter = 2
	}
	if c.MarkUpAfter <= 0 {
		c.MarkUpAfter = 2
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 5 * time.Second
	}
	c.Migration.defaults(c.HealthInterval)
	c.Client.defaults()
	// Re-pin AFTER normalization: ClientConfig.defaults turns the sentinel
	// into 0, and 0 means "use the default (2)" to the next defaults() run
	// inside DialModel — which would hand every node client a retry loop
	// (and its Retry-After sleeps) right back.
	c.Client.Retries = NoRetries
}

// gatewayNode is one backend in the membership table: its health streaks,
// its last-known zoo listing (sticky across mark-down), and its cached
// per-model clients.
type gatewayNode struct {
	name string // "n0", "n1", ... — placement-hash and job-namespace key
	base string
	cfg  ClientConfig
	api  *Client // bare client for node-level routes (healthz, audits)

	mu           sync.Mutex
	healthy      bool
	everUp       bool // first-ever success marks up without hysteresis
	fails        int  // consecutive failures (probe or proxied)
	oks          int  // consecutive successful probes
	lastErr      error
	health       Health // last successful healthz payload
	listing      []ModelInfo
	listDefault  string
	maxBatch     int
	screenPolicy string
	clients      map[string]*Client // model id -> dialed predict client
}

// recordSuccess feeds one successful probe into the mark-up hysteresis and
// refreshes the node's sticky snapshots.
func (n *gatewayNode) recordSuccess(markUpAfter int, h Health, list ModelList, info infoResponse) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fails = 0
	n.oks++
	n.lastErr = nil
	if !n.healthy && (n.oks >= markUpAfter || !n.everUp) {
		n.healthy = true
		n.everUp = true
	}
	n.health = h
	n.listing = list.Models
	n.listDefault = list.Default
	n.maxBatch = info.MaxBatch
	if info.Screened {
		n.screenPolicy = info.ScreenPolicy
	}
}

// recordFailure feeds one failure (probe or proxied request) into the
// mark-down hysteresis.
func (n *gatewayNode) recordFailure(markDownAfter int, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.oks = 0
	n.fails++
	n.lastErr = err
	if n.healthy && n.fails >= markDownAfter {
		n.healthy = false
	}
}

func (n *gatewayNode) isHealthy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy
}

// predictClient returns the cached client bound to (node, model), dialing
// on first use. Dials race benignly: the first cached client wins.
func (n *gatewayNode) predictClient(ctx context.Context, modelID string) (*Client, error) {
	n.mu.Lock()
	c := n.clients[modelID]
	n.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := DialModel(ctx, n.base, modelID, n.cfg)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if cached := n.clients[modelID]; cached != nil {
		c = cached
	} else {
		n.clients[modelID] = c
	}
	n.mu.Unlock()
	return c, nil
}

// Gateway routes the wire API across a fleet of mlaas-server nodes. Create
// one with NewGateway, serve it with NewGatewayServer, stop it with Close.
type Gateway struct {
	cfg    GatewayConfig
	nodes  []*gatewayNode
	byName map[string]*gatewayNode

	// Merged fleet view, rebuilt after every probe round.
	mu           sync.Mutex
	zoo          map[string]ModelInfo
	hosts        map[string][]*gatewayNode // model id -> nodes listing it
	defaultID    string
	maxBatch     int
	screenPolicy string

	rr        atomic.Uint64 // round-robin cursor spreading hot models over replicas
	closed    atomic.Bool
	done      chan struct{}
	loopStop  context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once

	// sup is the audit-job migration supervisor (nil unless
	// Migration.Enabled).
	sup *supervisor
}

// NewGateway probes every configured node once (synchronously), builds the
// merged zoo, and starts the background membership loop. It fails unless
// at least one node is healthy and lists at least one model — a gateway
// with nothing to serve is a misconfiguration, not a degraded state.
func NewGateway(ctx context.Context, cfg GatewayConfig) (*Gateway, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("mlaas: gateway needs at least one node URL")
	}
	cfg.defaults()
	g := &Gateway{
		cfg:    cfg,
		byName: make(map[string]*gatewayNode, len(cfg.Nodes)),
		zoo:    make(map[string]ModelInfo),
		hosts:  make(map[string][]*gatewayNode),
		done:   make(chan struct{}),
	}
	for i, base := range cfg.Nodes {
		n := &gatewayNode{
			name:    fmt.Sprintf("n%d", i),
			base:    strings.TrimRight(base, "/"),
			cfg:     cfg.Client,
			clients: make(map[string]*Client),
		}
		n.api = &Client{base: n.base, cfg: cfg.Client}
		g.nodes = append(g.nodes, n)
		g.byName[n.name] = n
	}
	g.probeAll(ctx)
	if g.HealthyNodes() == 0 {
		var reasons []string
		for _, n := range g.nodes {
			n.mu.Lock()
			reasons = append(reasons, fmt.Sprintf("%s (%s): %v", n.name, n.base, n.lastErr))
			n.mu.Unlock()
		}
		return nil, fmt.Errorf("mlaas: gateway bootstrap: no healthy node: %s", strings.Join(reasons, "; "))
	}
	g.mu.Lock()
	empty := len(g.zoo) == 0
	g.mu.Unlock()
	if empty {
		return nil, errors.New("mlaas: gateway bootstrap: healthy nodes list no models")
	}
	if cfg.Migration.Enabled {
		g.sup = newSupervisor(g, cfg.Migration)
	}
	loopCtx, cancel := context.WithCancel(context.Background())
	g.loopStop = cancel
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		ticker := time.NewTicker(g.cfg.HealthInterval)
		defer ticker.Stop()
		for {
			select {
			case <-g.done:
				return
			case <-ticker.C:
				g.probeAll(loopCtx)
			}
		}
	}()
	if g.sup != nil {
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			ticker := time.NewTicker(g.cfg.Migration.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-g.done:
					return
				case <-ticker.C:
					g.sup.sweep(loopCtx)
				}
			}
		}()
	}
	return g, nil
}

// Close stops the membership loop. Safe to call more than once; the
// remoteProvider's Close (Server shutdown) lands here.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		g.closed.Store(true)
		if g.loopStop != nil {
			g.loopStop()
		}
		close(g.done)
		g.wg.Wait()
	})
}

// Nodes reports the configured fleet size.
func (g *Gateway) Nodes() int { return len(g.nodes) }

// HealthyNodes reports how many nodes are currently marked up.
func (g *Gateway) HealthyNodes() int {
	healthy := 0
	for _, n := range g.nodes {
		if n.isHealthy() {
			healthy++
		}
	}
	return healthy
}

// probeAll probes every node once (concurrently) and rebuilds the merged
// fleet view. The bootstrap in NewGateway and the background loop both land
// here; tests drive membership deterministically by calling it directly.
func (g *Gateway) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, n := range g.nodes {
		wg.Add(1)
		go func(n *gatewayNode) {
			defer wg.Done()
			g.probeNode(ctx, n)
		}(n)
	}
	wg.Wait()
	g.refresh()
}

// probeNode runs one health check: liveness, zoo listing, and serving
// limits in three requests. Any failure counts one strike. The whole probe
// shares one ProbeTimeout deadline: a node too slow to answer three cheap
// GETs inside it is down for routing purposes, and without the ceiling one
// hung socket would pin this goroutine for the client's full 30s default.
func (g *Gateway) probeNode(ctx context.Context, n *gatewayNode) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	var h Health
	if err := n.api.getJSON(ctx, n.base+"/v1/healthz", &h); err != nil {
		n.recordFailure(g.cfg.MarkDownAfter, err)
		return
	}
	var list ModelList
	if err := n.api.getJSON(ctx, n.base+"/v1/models", &list); err != nil {
		n.recordFailure(g.cfg.MarkDownAfter, err)
		return
	}
	var info infoResponse
	if err := n.api.getJSON(ctx, n.base+"/v1/info", &info); err != nil {
		n.recordFailure(g.cfg.MarkDownAfter, err)
		return
	}
	n.recordSuccess(g.cfg.MarkUpAfter, h, list, info)
}

// refresh rebuilds the merged zoo from every node's last-known listing.
// Healthy nodes' metadata wins; down nodes only contribute ids no healthy
// node lists (sticky listings are what turn "every host down" into a 503
// instead of a 404). The serving batch limit is the minimum across healthy
// nodes so the gateway never forwards a batch a node would reject.
func (g *Gateway) refresh() {
	zoo := make(map[string]ModelInfo)
	hosts := make(map[string][]*gatewayNode)
	defaultID, screenPolicy := "", ""
	maxBatch := 0
	for pass := 0; pass < 2; pass++ {
		for _, n := range g.nodes {
			n.mu.Lock()
			healthy, listing, listDefault := n.healthy, n.listing, n.listDefault
			nodeMaxBatch, nodePolicy := n.maxBatch, n.screenPolicy
			n.mu.Unlock()
			if healthy != (pass == 0) {
				continue
			}
			for _, mi := range listing {
				if _, seen := zoo[mi.ID]; !seen {
					zoo[mi.ID] = mi
				}
				hosts[mi.ID] = append(hosts[mi.ID], n)
			}
			if defaultID == "" {
				defaultID = listDefault
			}
			if healthy {
				if nodeMaxBatch > 0 && (maxBatch == 0 || nodeMaxBatch < maxBatch) {
					maxBatch = nodeMaxBatch
				}
				if screenPolicy == "" {
					screenPolicy = nodePolicy
				}
			}
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.zoo = zoo
	g.hosts = hosts
	if defaultID != "" {
		g.defaultID = defaultID
	}
	if maxBatch > 0 {
		g.maxBatch = maxBatch
	}
	if screenPolicy != "" {
		g.screenPolicy = screenPolicy
	}
}

// --- Placement -----------------------------------------------------------------------

// rendezvousScore is the highest-random-weight score of placing modelID on
// node: an fnv64a hash of the pair (with a separator so (node="a", model=
// "bc") and (node="ab", model="c") never collide by concatenation), pushed
// through a 64-bit avalanche finalizer. The finalizer is load-bearing: raw
// fnv64a diffuses low-to-high only, so model ids sharing a long prefix
// leave the node-dependent high bits untouched and one node wins every
// election. Full avalanche restores the uniform spread HRW depends on.
func rendezvousScore(node, modelID string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(node))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(modelID))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// placementOrder sorts nodeNames by descending rendezvous score for
// modelID (ties broken by name). The head of the order is the model's
// primary; replicas extend down the list. The order is a pure function of
// the inputs: adding or removing a node never reorders the survivors, so a
// node loss reassigns exactly the models it owned.
func placementOrder(modelID string, nodeNames []string) []string {
	order := append([]string(nil), nodeNames...)
	sort.Slice(order, func(i, j int) bool {
		si, sj := rendezvousScore(order[i], modelID), rendezvousScore(order[j], modelID)
		if si != sj {
			return si > sj
		}
		return order[i] < order[j]
	})
	return order
}

// replicasFor resolves a model's current replica set: the nodes hosting it,
// in rendezvous order, filtered to healthy, truncated to Replication. backup
// is the desperation tier — every marked-down hosting node, in placement
// order. Mark-down is a prediction, not a fact: a node that just recovered
// stays invisible until the next probe, so when the healthy tier is
// exhausted the router tries the marked-down hosts before giving up rather
// than failing a request a live node could have served. known reports
// whether any node (healthy or not) has ever listed the id.
func (g *Gateway) replicasFor(modelID string) (replicas, backup []*gatewayNode, known bool) {
	g.mu.Lock()
	hosting := g.hosts[modelID]
	g.mu.Unlock()
	if len(hosting) == 0 {
		return nil, nil, false
	}
	names := make([]string, len(hosting))
	for i, n := range hosting {
		names[i] = n.name
	}
	for _, name := range placementOrder(modelID, names) {
		n := g.byName[name]
		if !n.isHealthy() {
			backup = append(backup, n)
			continue
		}
		if len(replicas) < g.cfg.Replication {
			replicas = append(replicas, n)
		}
	}
	return replicas, backup, true
}

// --- Request routing -----------------------------------------------------------------

// resolveID maps the empty (default-route) id to the fleet default.
func (g *Gateway) resolveID(id string) string {
	if id != "" {
		return id
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.defaultID
}

// predict routes one batch to the model's replica set: rotate the starting
// replica (spreading a hot model's load), fail over on transient errors —
// dropping to the marked-down desperation tier once the healthy replicas
// are exhausted — and shed with the node's own 429 only when every replica
// sheds. Permanent node verdicts (4xx other than 429) pass through
// immediately: a replica would answer the same.
func (g *Gateway) predict(ctx context.Context, id string, x *tensor.Tensor, screen bool) (*tensor.Tensor, []vp.ScreenResult, error) {
	if g.closed.Load() {
		return nil, nil, errEngineClosed
	}
	id = g.resolveID(id)
	replicas, backup, known := g.replicasFor(id)
	if !known {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownModel, id)
	}
	// Rotation spreads load across the healthy tier only; the desperation
	// tier keeps its placement order so a half-recovered fleet converges
	// back onto primaries instead of scattering.
	candidates := make([]*gatewayNode, 0, len(replicas)+len(backup))
	if len(replicas) > 0 {
		start := int(g.rr.Add(1) % uint64(len(replicas)))
		for i := range replicas {
			candidates = append(candidates, replicas[(start+i)%len(replicas)])
		}
	}
	candidates = append(candidates, backup...)
	if len(candidates) == 0 {
		return nil, nil, fmt.Errorf("%w: model %q (all hosting nodes down)", ErrNoHealthyReplica, id)
	}
	var lastErr error
	var shed *nodeError
	for _, n := range candidates {
		out, scr, err := g.predictOn(ctx, n, id, x, screen)
		if err == nil {
			return out, scr, nil
		}
		if ctx.Err() != nil {
			return nil, nil, err // caller gone: stop fanning out
		}
		var se *StatusError
		if errors.As(err, &se) {
			switch {
			case se.Code == http.StatusTooManyRequests:
				// Shedding, not broken: no health strike. Try a replica;
				// remember the hint in case they all shed.
				shed = &nodeError{node: n.name, code: se.Code, msg: se.Msg, retryAfter: se.RetryAfter}
			case se.Code >= 500:
				n.recordFailure(g.cfg.MarkDownAfter, err)
			default:
				return nil, nil, &nodeError{node: n.name, code: se.Code, msg: se.Msg, retryAfter: se.RetryAfter}
			}
		} else {
			n.recordFailure(g.cfg.MarkDownAfter, err)
		}
		lastErr = err
	}
	if shed != nil {
		return nil, nil, shed
	}
	return nil, nil, fmt.Errorf("%w: model %q (%d replicas tried, last: %v)", ErrNoHealthyReplica, id, len(candidates), lastErr)
}

// predictOn sends the batch to one node. The node's wire Screening comes
// back as provider-seam ScreenResults; the gateway's own HTTP layer
// re-derives rejection from Flagged + policy, exactly as a node does, so
// the response reaching the end client is bit-identical either way.
func (g *Gateway) predictOn(ctx context.Context, n *gatewayNode, id string, x *tensor.Tensor, screen bool) (*tensor.Tensor, []vp.ScreenResult, error) {
	c, err := n.predictClient(ctx, id)
	if err != nil {
		return nil, nil, err
	}
	out, screening, err := c.predict(ctx, x, screen)
	if err != nil {
		return nil, nil, err
	}
	var scores []vp.ScreenResult
	if screening != nil {
		scores = make([]vp.ScreenResult, len(screening))
		for i, sc := range screening {
			scores[i] = vp.ScreenResult{Score: sc.Score, Flagged: sc.Flagged, Threshold: sc.Threshold}
		}
	}
	return out, scores, nil
}

// nodeRouteErr classifies a failed node-level route (audit submit/poll):
// a node's own non-2xx passes through as nodeError; transport-level
// failures strike the node's health and become a structured 503.
func (g *Gateway) nodeRouteErr(n *gatewayNode, err error) error {
	var se *StatusError
	if errors.As(err, &se) {
		if se.Code >= 500 {
			n.recordFailure(g.cfg.MarkDownAfter, err)
		}
		return &nodeError{node: n.name, code: se.Code, msg: se.Msg, retryAfter: se.RetryAfter}
	}
	n.recordFailure(g.cfg.MarkDownAfter, err)
	return &nodeError{node: n.name, code: http.StatusServiceUnavailable, msg: "node unreachable: " + err.Error()}
}

// --- Audit-job routing ---------------------------------------------------------------

// Gateway audit-job ids are namespaced "{node}.{id}" ("n0.a3"): node job
// sequences are per-process, so two nodes both have an "a1" and the prefix
// keeps poll and cancel routable. The dot survives Go 1.22 ServeMux {id}
// segments (a "/" would not).

// namespaceJob rewrites a node-local job snapshot into the gateway's
// namespace.
func namespaceJob(n *gatewayNode, j audit.Job) audit.Job {
	j.ID = n.name + "." + j.ID
	j.Node = n.name
	return j
}

// splitJob resolves a namespaced job id to its node and local id.
func (g *Gateway) splitJob(jobID string) (*gatewayNode, string, error) {
	name, rest, ok := strings.Cut(jobID, ".")
	if ok {
		if n := g.byName[name]; n != nil && rest != "" {
			return n, rest, nil
		}
	}
	return nil, "", fmt.Errorf("%w: %q", audit.ErrUnknownJob, jobID)
}

// submitAudit routes an audit submission to the model's primary healthy
// replica (rendezvous order, no rotation: job placement stays stable), or
// to the first marked-down host when no healthy one exists — one attempt,
// since a probe-lagged node may well still answer. Submissions are not
// idempotent, so unlike predicts they are never retried on another
// replica: a node that might have accepted the job must not be shadowed
// by a duplicate.
func (g *Gateway) submitAudit(ctx context.Context, modelID string, inspectID int, resume *AuditResume) (audit.Job, error) {
	modelID = g.resolveID(modelID)
	replicas, backup, known := g.replicasFor(modelID)
	if !known {
		return audit.Job{}, fmt.Errorf("%w: %q", ErrUnknownModel, modelID)
	}
	replicas = append(replicas, backup...)
	if len(replicas) == 0 {
		return audit.Job{}, fmt.Errorf("%w: model %q (all hosting nodes down)", ErrNoHealthyReplica, modelID)
	}
	n := replicas[0]
	c, err := n.predictClient(ctx, modelID)
	if err != nil {
		return audit.Job{}, g.nodeRouteErr(n, err)
	}
	var job audit.Job
	if resume != nil {
		job, err = c.AuditModelResume(ctx, inspectID, *resume)
	} else {
		job, err = c.AuditModel(ctx, inspectID)
	}
	if err != nil {
		return audit.Job{}, g.nodeRouteErr(n, err)
	}
	gw := namespaceJob(n, job)
	if g.sup != nil {
		g.sup.track(n, gw, modelID)
	}
	return gw, nil
}

// exportAuditCheckpoint fetches the newest checkpoint frame for a
// namespaced job from its node. audit.ErrNoCheckpoint passes through
// unwrapped so the HTTP layer can answer 204 just like a single node.
func (g *Gateway) exportAuditCheckpoint(ctx context.Context, jobID string) (CheckpointExport, error) {
	jobID = g.forwarded(jobID)
	n, local, err := g.splitJob(jobID)
	if err != nil {
		return CheckpointExport{}, err
	}
	exp, err := n.api.ExportCheckpoint(ctx, local)
	if err != nil {
		if errors.Is(err, audit.ErrNoCheckpoint) {
			return CheckpointExport{}, err
		}
		return CheckpointExport{}, g.nodeRouteErr(n, err)
	}
	return exp, nil
}

// forwarded follows the supervisor's migration forward chain: a client
// still polling the job id it was handed at submission keeps getting
// answers after the job has been re-homed, from wherever it lives now.
func (g *Gateway) forwarded(jobID string) string {
	if g.sup == nil {
		return jobID
	}
	return g.sup.resolve(jobID)
}

// getAudit polls one namespaced job on its node. The node is tried even
// when marked down — a probe-lagged node may well still answer, and if it
// does not the caller gets a structured 503 rather than a stale snapshot.
func (g *Gateway) getAudit(ctx context.Context, jobID string) (audit.Job, error) {
	n, local, err := g.splitJob(g.forwarded(jobID))
	if err != nil {
		return audit.Job{}, err
	}
	job, err := n.api.GetAudit(ctx, local)
	if err != nil {
		return audit.Job{}, g.nodeRouteErr(n, err)
	}
	return namespaceJob(n, job), nil
}

// cancelAudit cancels one namespaced job on its node.
func (g *Gateway) cancelAudit(ctx context.Context, jobID string) (audit.Job, error) {
	n, local, err := g.splitJob(g.forwarded(jobID))
	if err != nil {
		return audit.Job{}, err
	}
	job, err := n.api.CancelAudit(ctx, local)
	if err != nil {
		return audit.Job{}, g.nodeRouteErr(n, err)
	}
	return namespaceJob(n, job), nil
}

// listAudits merges every healthy node's job list (best-effort: a node
// failing mid-list is skipped and takes a health strike), ordered by
// submission time then id.
func (g *Gateway) listAudits(ctx context.Context) ([]audit.Job, error) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var jobs []audit.Job
	for _, n := range g.nodes {
		if !n.isHealthy() {
			continue
		}
		wg.Add(1)
		go func(n *gatewayNode) {
			defer wg.Done()
			nodeJobs, err := n.api.ListAudits(ctx)
			if err != nil {
				g.nodeRouteErr(n, err) // strike bookkeeping only
				return
			}
			mu.Lock()
			for _, j := range nodeJobs {
				jobs = append(jobs, namespaceJob(n, j))
			}
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	sort.Slice(jobs, func(i, j int) bool {
		if !jobs[i].Created.Equal(jobs[j].Created) {
			return jobs[i].Created.Before(jobs[j].Created)
		}
		return jobs[i].ID < jobs[j].ID
	})
	return jobs, nil
}

// augmentHealth adds the fleet view to /v1/healthz: membership counts,
// degraded status, and the nodes' aggregated audit-service state (enabled
// iff every healthy node carries a detector — a fleet audit preflight must
// not pass if some shard cannot audit). Nodes with durable job stores also
// contribute an aggregated job_store block: journal bytes and resumed jobs
// add across the fleet, last_compaction is the newest.
func (g *Gateway) augmentHealth(h *Health) {
	h.Nodes = len(g.nodes)
	h.HealthyNodes = 0
	auditsEnabled := false
	auditJobs := 0
	var store *jobstore.Stats
	for _, n := range g.nodes {
		n.mu.Lock()
		if n.healthy {
			h.HealthyNodes++
			if h.HealthyNodes == 1 {
				auditsEnabled = true
			}
			auditsEnabled = auditsEnabled && n.health.AuditsEnabled
			auditJobs += n.health.AuditJobs
			if js := n.health.JobStore; js != nil {
				if store == nil {
					store = &jobstore.Stats{}
				}
				store.JournalBytes += js.JournalBytes
				store.JobsResumed += js.JobsResumed
				store.Compactions += js.Compactions
				if js.LastCompaction.After(store.LastCompaction) {
					store.LastCompaction = js.LastCompaction
				}
			}
		}
		n.mu.Unlock()
	}
	h.AuditsEnabled = auditsEnabled
	h.AuditJobs = auditJobs
	h.JobStore = store
	if g.sup != nil {
		h.MigratedJobs = g.sup.migrated()
		h.MigrationFailures = g.sup.failed()
	}
	if h.HealthyNodes < h.Nodes {
		h.Status = "degraded"
	}
}

// tenantUsage fans the usage question out to every healthy node and sums
// the answers: each node's journal is its own ledger of record, so fleet
// usage is the sum of per-node spend and job counts. Quota is the maximum a
// node reports (uniform-fleet assumption: the nodes share one key file).
// Nodes without tenancy answer 501 and are skipped; only when no node
// answers at all does the last error pass through.
func (g *Gateway) tenantUsage(ctx context.Context, name string) (TenantUsage, error) {
	agg := TenantUsage{Tenant: name}
	var lastErr error
	answered := false
	for _, n := range g.nodes {
		if !n.isHealthy() {
			continue
		}
		var u TenantUsage
		if err := n.api.getJSON(ctx, n.base+"/v1/tenants/"+url.PathEscape(name)+"/usage", &u); err != nil {
			// A 501 is the node's deliberate "no tenancy here" — skip it
			// without a health strike; anything else classifies normally.
			var se *StatusError
			if errors.As(err, &se) && se.Code == http.StatusNotImplemented {
				lastErr = &nodeError{node: n.name, code: se.Code, msg: se.Msg}
			} else {
				lastErr = g.nodeRouteErr(n, err)
			}
			continue
		}
		answered = true
		agg.Spent += u.Spent
		agg.Jobs += u.Jobs
		if u.Quota > agg.Quota {
			agg.Quota = u.Quota
		}
	}
	if !answered {
		if lastErr != nil {
			return TenantUsage{}, lastErr
		}
		return TenantUsage{}, fmt.Errorf("%w: tenant usage for %q (no healthy node)", ErrNoHealthyReplica, name)
	}
	if agg.Quota > 0 {
		agg.Remaining = agg.Quota - agg.Spent
		if agg.Remaining < 0 {
			agg.Remaining = 0
		}
	}
	return agg, nil
}

// --- Provider seam -------------------------------------------------------------------

// remoteProvider adapts the Gateway to the provider seam the single-node
// server runs on: the same Server (routes, envelopes, screening fields,
// error mapping) serves a fleet instead of an engine. It additionally
// implements the auditRouter and healthAugmenter capabilities, so the
// audit-job routes and /v1/healthz reflect the fleet.
type remoteProvider struct {
	g *Gateway
}

var (
	_ provider        = (*remoteProvider)(nil)
	_ auditRouter     = (*remoteProvider)(nil)
	_ healthAugmenter = (*remoteProvider)(nil)
	_ usageRouter     = (*remoteProvider)(nil)
)

func (p *remoteProvider) Models() []ModelInfo {
	p.g.mu.Lock()
	defer p.g.mu.Unlock()
	models := make([]ModelInfo, 0, len(p.g.zoo))
	for _, mi := range p.g.zoo {
		models = append(models, mi)
	}
	sort.Slice(models, func(i, j int) bool { return models[i].ID < models[j].ID })
	return models
}

func (p *remoteProvider) DefaultID() string {
	p.g.mu.Lock()
	defer p.g.mu.Unlock()
	return p.g.defaultID
}

func (p *remoteProvider) Info(id string) (ModelInfo, error) {
	id = p.g.resolveID(id)
	p.g.mu.Lock()
	mi, ok := p.g.zoo[id]
	p.g.mu.Unlock()
	if !ok {
		return ModelInfo{}, fmt.Errorf("%w: %q", ErrUnknownModel, id)
	}
	return mi, nil
}

func (p *remoteProvider) MaxBatch() int {
	p.g.mu.Lock()
	defer p.g.mu.Unlock()
	return p.g.maxBatch
}

func (p *remoteProvider) Predict(ctx context.Context, id string, x *tensor.Tensor, screen bool) (*tensor.Tensor, []vp.ScreenResult, error) {
	return p.g.predict(ctx, id, x, screen)
}

func (p *remoteProvider) Close() { p.g.Close() }

func (p *remoteProvider) SubmitAudit(ctx context.Context, modelID string, inspectID int, resume *AuditResume) (audit.Job, error) {
	return p.g.submitAudit(ctx, modelID, inspectID, resume)
}

func (p *remoteProvider) ExportAuditCheckpoint(ctx context.Context, jobID string) (CheckpointExport, error) {
	return p.g.exportAuditCheckpoint(ctx, jobID)
}

func (p *remoteProvider) GetAudit(ctx context.Context, jobID string) (audit.Job, error) {
	return p.g.getAudit(ctx, jobID)
}

func (p *remoteProvider) ListAudits(ctx context.Context) ([]audit.Job, error) {
	return p.g.listAudits(ctx)
}

func (p *remoteProvider) CancelAudit(ctx context.Context, jobID string) (audit.Job, error) {
	return p.g.cancelAudit(ctx, jobID)
}

// augmentHealth implements healthAugmenter.
func (p *remoteProvider) augmentHealth(h *Health) { p.g.augmentHealth(h) }

// TenantUsage implements usageRouter: fleet-summed tenant usage.
func (p *remoteProvider) TenantUsage(ctx context.Context, name string) (TenantUsage, error) {
	return p.g.tenantUsage(ctx, name)
}

// NewGatewayServer wraps the gateway in the standard HTTP Server: the full
// wire API — listings, predicts with screening fields, audit jobs, healthz
// — served with the exact envelopes of a single node. The server takes
// ownership of the gateway: Close (and Serve on shutdown) closes it. The
// screening policy advertised and enforced at the gateway is the one the
// fleet's nodes advertise (uniform-fleet assumption).
func NewGatewayServer(g *Gateway) *Server {
	g.mu.Lock()
	policy := g.screenPolicy
	g.mu.Unlock()
	if policy == "" {
		policy = ScreenAnnotate
	}
	return &Server{prov: &remoteProvider{g: g}, screenPolicy: policy}
}
