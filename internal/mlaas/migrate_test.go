package mlaas

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bprom/internal/bprom"
	"bprom/internal/jobstore"
	"bprom/internal/nn"
	"bprom/internal/oracle"
)

// Migration battery: the no-audit-dies-with-its-node contract. Real-fleet
// tests prove a killed owner's audit finishes bit-identically on a replica;
// fake-node tests pin the supervisor's wire behavior (resume body content,
// grace-window flap protection) deterministically; and the chaos harness
// injects the faults — kill, hang, corrupt checkpoint — that real process
// kills cannot time precisely.

// migratingConfig is gwTestConfig plus an armed supervisor: tiny grace so
// tests migrate after two manual sweeps, hour-long interval so background
// sweeps never race the manual ones.
func migratingConfig(nodes ...string) GatewayConfig {
	cfg := gwTestConfig(nodes...)
	cfg.Migration = MigrationConfig{
		Enabled:  true,
		Grace:    time.Millisecond,
		Interval: time.Hour,
	}
	return cfg
}

func startGatewayServer(t *testing.T, cfg GatewayConfig) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := NewGateway(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGatewayServer(g)
	t.Cleanup(gs.Close)
	gwSrv := httptest.NewServer(gs.Handler())
	t.Cleanup(gwSrv.Close)
	return g, gwSrv
}

// hostOf strips the scheme from an httptest URL, yielding the chaos-rule key.
func hostOf(srvURL string) string {
	return strings.TrimPrefix(srvURL, "http://")
}

// TestMigrationOnNodeKill is the acceptance test: kill the node that owns a
// running audit, and the job must finish on the surviving replica with a
// verdict and query count bit-identical to an uninterrupted in-process
// inspection — the whole time answering polls on the id the client was
// originally handed.
func TestMigrationOnNodeKill(t *testing.T) {
	env := sharedAuditEnv(t)
	srv0, _ := startAuditServer(t)
	srv1, _ := startAuditServer(t)
	nodeSrvs := []*httptest.Server{srv0, srv1}
	cfg := migratingConfig(srv0.URL, srv1.URL)
	cfg.Replication = 2
	g, gwSrv := startGatewayServer(t, cfg)
	ctx := context.Background()

	c, err := DialModel(ctx, gwSrv.URL, "badnets", ClientConfig{AuditPoll: 20 * time.Millisecond, Retries: NoRetries})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.AuditModel(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	owner := job.Node
	var ownerSrv *httptest.Server
	for i, s := range nodeSrvs {
		if fmt.Sprintf("n%d", i) == owner {
			ownerSrv = s
		}
	}
	if ownerSrv == nil {
		t.Fatalf("job on unknown node: %+v", job)
	}

	ownerSrv.Close() // the kill: the audit's node is gone mid-job

	g.probeAll(ctx) // one strike marks it down
	if got := g.HealthyNodes(); got != 1 {
		t.Fatalf("healthy after kill: %d, want 1", got)
	}
	g.sup.sweep(ctx) // stamps the down clock
	time.Sleep(10 * time.Millisecond)
	g.sup.sweep(ctx) // grace expired: migrates
	if got := g.sup.migrated(); got != 1 {
		t.Fatalf("migrations after grace: %d, want 1", got)
	}

	// The ORIGINAL id keeps answering, forwarded to the survivor.
	final, err := c.WaitAudit(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Verdict == nil {
		t.Fatalf("migrated audit did not finish: %+v", final)
	}
	if final.MigratedFrom != job.ID {
		t.Fatalf("migrated_from = %q, want %q", final.MigratedFrom, job.ID)
	}
	if final.Node == owner {
		t.Fatalf("job still reports the dead owner %q: %+v", owner, final)
	}

	m, err := nn.LoadFile(filepath.Join(env.zoo, "badnets.bin"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := env.det.Inspect(ctx, oracle.NewModelOracle(m), 5)
	if err != nil {
		t.Fatal(err)
	}
	if *final.Verdict != want {
		t.Fatalf("migrated verdict %+v != uninterrupted %+v", *final.Verdict, want)
	}
	if final.Progress.Queries != want.Queries {
		t.Fatalf("migrated query count %d != uninterrupted %d", final.Progress.Queries, want.Queries)
	}

	// The fleet healthz counts the re-homed job.
	resp, err := http.Get(gwSrv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.MigratedJobs != 1 {
		t.Fatalf("healthz migrated_jobs = %d, want 1", h.MigratedJobs)
	}
}

// captureCheckpoint runs one uninterrupted resumable inspection in-process
// and returns its first checkpoint plus the final verdict — the fixture for
// resume-over-the-wire tests.
func captureCheckpoint(t *testing.T, modelID string, inspectID int) (*bprom.Checkpoint, bprom.Verdict) {
	t.Helper()
	env := sharedAuditEnv(t)
	m, err := nn.LoadFile(filepath.Join(env.zoo, modelID+".bin"))
	if err != nil {
		t.Fatal(err)
	}
	var ckpt *bprom.Checkpoint
	want, err := env.det.InspectResumable(context.Background(), oracle.NewModelOracle(m), inspectID, nil,
		func(c *bprom.Checkpoint) {
			if ckpt == nil {
				ckpt = c
			}
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt == nil {
		t.Fatal("inspection produced no checkpoint")
	}
	if ckpt.Queries <= 0 || ckpt.Queries >= want.Queries {
		t.Fatalf("mid-run checkpoint spend %d outside (0, %d)", ckpt.Queries, want.Queries)
	}
	return ckpt, want
}

func encodeTestFrame(t *testing.T, ckpt *bprom.Checkpoint) []byte {
	t.Helper()
	blob, err := ckpt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := jobstore.EncodeFrame(blob)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestMigrationResumeCarriesTenantSpend pins the ledger contract of a
// migrated job: the resume submission names the original tenant and carries
// the checkpoint's pre-charged spend, so the target node bills that tenant
// for the FRESH queries only — total spend across the migration equals one
// uninterrupted run, never a double charge — while the verdict stays
// bit-identical.
func TestMigrationResumeCarriesTenantSpend(t *testing.T) {
	ckpt, want := captureCheckpoint(t, "badnets", 77)
	frame := encodeTestFrame(t, ckpt)
	srv, _ := startTenantServer(t, []jobstore.TenantConfig{
		{Name: "svc", Key: "ks", Service: true},
		{Name: "acme", Key: "ka"},
	}, nil)
	ctx := context.Background()

	// The supervisor's credential is the service key; the resume body names
	// the tenant the job belongs to.
	c, err := DialModel(ctx, srv.URL, "badnets", ClientConfig{APIKey: "ks", AuditPoll: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.AuditModelResume(ctx, 77, AuditResume{Checkpoint: frame, Tenant: "acme", Source: "n0.a9"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Tenant != "acme" || job.MigratedFrom != "n0.a9" {
		t.Fatalf("resumed job identity: %+v", job)
	}
	final, err := c.WaitAudit(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Verdict == nil {
		t.Fatalf("resumed audit did not finish: %+v", final)
	}
	if *final.Verdict != want {
		t.Fatalf("resumed verdict %+v != uninterrupted %+v", *final.Verdict, want)
	}
	if final.Progress.Queries != want.Queries {
		t.Fatalf("resumed query count %d != uninterrupted %d", final.Progress.Queries, want.Queries)
	}

	// acme is charged only the queries actually made here: the checkpointed
	// spend was already billed wherever the job started.
	usage := func(name string) TenantUsage {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/tenants/" + name + "/usage")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var u TenantUsage
		if err := json.NewDecoder(resp.Body).Decode(&u); err != nil {
			t.Fatal(err)
		}
		return u
	}
	fresh := want.Queries - ckpt.Queries
	if got := usage("acme").Spent; got != fresh {
		t.Fatalf("acme spend after resume = %d, want %d (total %d minus checkpointed %d)",
			got, fresh, want.Queries, ckpt.Queries)
	}
	if got := usage("svc").Spent; got != 0 {
		t.Fatalf("service credential was billed %d queries, want 0", got)
	}
}

// TestResumeTenantRequiresServiceCredential pins the privilege boundary on
// resume attribution: only a `service`-flagged key may name a resume tenant
// other than its own. Without the check any authenticated tenant could bill
// oracle spend to a victim's quota — or name an unknown tenant and run
// unmetered, since only known tenants get quota-wrapped oracles.
func TestResumeTenantRequiresServiceCredential(t *testing.T) {
	srv, _ := startTenantServer(t, []jobstore.TenantConfig{
		{Name: "svc", Key: "ks", Service: true},
		{Name: "acme", Key: "ka"},
		{Name: "mallory", Key: "km"},
	}, nil)
	ctx := context.Background()

	dial := func(key string) *Client {
		t.Helper()
		c, err := DialModel(ctx, srv.URL, "clean", ClientConfig{APIKey: key, Retries: NoRetries})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// An ordinary tenant naming someone else (victim or ghost): 403, before
	// any work is enqueued.
	for _, victim := range []string{"acme", "ghost"} {
		_, err := dial("km").AuditModelResume(ctx, 1, AuditResume{Tenant: victim, Source: "n0.a1"})
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusForbidden {
			t.Fatalf("mallory resuming as %q: err=%v, want 403", victim, err)
		}
		if !strings.Contains(se.Msg, "service credential") {
			t.Fatalf("403 should explain the service requirement: %q", se.Msg)
		}
	}

	// Naming yourself (or nobody) stays open to ordinary keys: the resume
	// route is also how a tenant restarts its own exported checkpoint.
	for _, tenant := range []string{"", "mallory"} {
		job, err := dial("km").AuditModelResume(ctx, 1, AuditResume{Tenant: tenant, Source: "n0.a2"})
		if err != nil {
			t.Fatalf("mallory resuming as %q: %v", tenant, err)
		}
		if job.Tenant != "mallory" {
			t.Fatalf("resume as %q attributed to %q, want mallory", tenant, job.Tenant)
		}
	}

	// The service credential may attribute to another tenant — the whole
	// point of the flag: the migration supervisor resumes on the original
	// tenant's behalf.
	job, err := dial("ks").AuditModelResume(ctx, 1, AuditResume{Tenant: "acme", Source: "n0.a3"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Tenant != "acme" {
		t.Fatalf("service resume attributed to %q, want acme", job.Tenant)
	}
}

// resumeRecord captures what a migration target actually received. A
// non-zero rejectStatus scripts the target's answer to every submission
// (with an error envelope) instead of the 202.
type resumeRecord struct {
	mu           sync.Mutex
	inspectID    int
	resume       AuditResume
	hits         int
	rejectStatus int
}

// fakeFleetNode is a wire-compatible node hosting model "m" whose audit
// behavior is scripted: jobJSON is the job it reports (and returns on
// submit), ckptFrame (when non-nil) is served on the checkpoint route, and
// rec (when non-nil) records incoming resume submissions.
func fakeFleetNode(t *testing.T, jobJSON string, ckptFrame []byte, rec *resumeRecord) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	info := `{"id":"m","name":"m","classes":3,"input_dim":16,"max_batch":64}`
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","models":1,"audits_enabled":true}`))
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"default":"m","models":[` + info + `]}`))
	})
	for _, route := range []string{"GET /v1/info", "GET /v1/models/m/info"} {
		mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(info))
		})
	}
	mux.HandleFunc("POST /v1/models/m/audits", func(w http.ResponseWriter, r *http.Request) {
		reject := 0
		if rec != nil {
			var req struct {
				InspectID int          `json:"inspect_id"`
				Resume    *AuditResume `json:"resume"`
			}
			_ = json.NewDecoder(r.Body).Decode(&req)
			rec.mu.Lock()
			rec.hits++
			rec.inspectID = req.InspectID
			if req.Resume != nil {
				rec.resume = *req.Resume
			}
			reject = rec.rejectStatus
			rec.mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		if reject != 0 {
			w.WriteHeader(reject)
			_, _ = w.Write([]byte(`{"error":"scripted rejection","code":"scripted"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(jobJSON))
	})
	mux.HandleFunc("GET /v1/audits/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(jobJSON))
	})
	if ckptFrame != nil {
		mux.HandleFunc("GET /v1/audits/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("X-Audit-Generation", "1")
			w.Header().Set("X-Audit-Queries", "42")
			w.Header().Set("X-Audit-Model", "m")
			w.Header().Set("X-Audit-Inspect-Id", "9")
			w.Header().Set("X-Audit-Tenant", "acme")
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(ckptFrame)
		})
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// orderFleet arranges owner and peer so the rendezvous placement for model
// "m" makes owner the submission primary — tests then know exactly which
// node a gateway-routed job lands on.
func orderFleet(owner, peer *httptest.Server) []string {
	if placementOrder("m", []string{"n0", "n1"})[0] == "n0" {
		return []string{owner.URL, peer.URL}
	}
	return []string{peer.URL, owner.URL}
}

// TestMigrationResumeWireContract pins what the supervisor actually posts
// when it re-homes a job: the cached checkpoint frame byte-for-byte (the
// frame is opaque to the gateway — no decode, no re-encode), the original
// tenant, the original inspect id, and the source job id.
func TestMigrationResumeWireContract(t *testing.T) {
	frame := []byte("opaque-checkpoint-frame-bytes: the gateway must not parse this")
	runningJob := `{"id":"a1","model_id":"m","inspect_id":9,"tenant":"acme","state":"running","created":"2026-01-01T00:00:00Z"}`
	doneJob := `{"id":"a5","model_id":"m","inspect_id":9,"tenant":"acme","state":"running","created":"2026-01-01T00:00:01Z"}`
	var rec resumeRecord
	owner := fakeFleetNode(t, runningJob, frame, nil)
	target := fakeFleetNode(t, doneJob, nil, &rec)

	chaos := NewChaosTransport(nil)
	cfg := migratingConfig(orderFleet(owner, target)...)
	cfg.Replication = 2
	cfg.Client.HTTPClient = &http.Client{Transport: chaos}
	g, _ := startGatewayServer(t, cfg)
	ctx := context.Background()

	job, err := g.submitAudit(ctx, "m", 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.sup.sweep(ctx) // owner healthy: caches the exported frame
	snap := g.sup.snapshot()
	if len(snap) != 1 || string(snap[0].frame) != string(frame) {
		t.Fatalf("supervisor cached %d job(s), frame %q; want the exported frame", len(snap), snap[0].frame)
	}

	chaos.Set(hostOf(owner.URL), ChaosRule{Kill: true})
	g.probeAll(ctx)
	g.sup.sweep(ctx)
	time.Sleep(5 * time.Millisecond)
	g.sup.sweep(ctx)
	if got := g.sup.migrated(); got != 1 {
		t.Fatalf("migrations: %d, want 1", got)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.hits != 1 {
		t.Fatalf("target received %d submissions, want 1", rec.hits)
	}
	if string(rec.resume.Checkpoint) != string(frame) {
		t.Fatalf("checkpoint bytes changed in flight: %q", rec.resume.Checkpoint)
	}
	if rec.resume.Tenant != "acme" || rec.resume.Source != job.ID || rec.inspectID != 9 {
		t.Fatalf("resume identity: %+v inspect=%d, want tenant=acme source=%s inspect=9", rec.resume, rec.inspectID, job.ID)
	}
}

// TestMigrationFlapNoSpuriousMigration pins the grace window: a node that
// dips out of the membership and returns before the grace expires must keep
// its jobs — the down clock resets on recovery, and the migration counter
// stays at zero through repeated flaps.
func TestMigrationFlapNoSpuriousMigration(t *testing.T) {
	runningJob := `{"id":"a1","model_id":"m","inspect_id":3,"state":"running","created":"2026-01-01T00:00:00Z"}`
	owner := fakeFleetNode(t, runningJob, nil, nil)
	var rec resumeRecord
	peer := fakeFleetNode(t, runningJob, nil, &rec)

	chaos := NewChaosTransport(nil)
	cfg := migratingConfig(orderFleet(owner, peer)...)
	cfg.Replication = 2
	cfg.Migration.Grace = 10 * time.Second // flaps resolve well inside it
	cfg.Client.HTTPClient = &http.Client{Transport: chaos}
	g, _ := startGatewayServer(t, cfg)
	ctx := context.Background()

	if _, err := g.submitAudit(ctx, "m", 3, nil); err != nil {
		t.Fatal(err)
	}
	downSince := func() time.Time {
		t.Helper()
		snap := g.sup.snapshot()
		if len(snap) != 1 {
			t.Fatalf("tracked jobs: %d, want 1", len(snap))
		}
		g.sup.mu.Lock()
		defer g.sup.mu.Unlock()
		return snap[0].downSince
	}

	ownerHost := hostOf(owner.URL)
	for flap := 0; flap < 3; flap++ {
		chaos.Set(ownerHost, ChaosRule{Kill: true})
		g.probeAll(ctx)
		g.sup.sweep(ctx)
		if downSince().IsZero() {
			t.Fatalf("flap %d: down clock not started", flap)
		}
		chaos.Clear(ownerHost)
		g.probeAll(ctx)
		g.sup.sweep(ctx)
		if !downSince().IsZero() {
			t.Fatalf("flap %d: down clock survived recovery — cumulative flaps would migrate", flap)
		}
	}
	if got := g.sup.migrated(); got != 0 {
		t.Fatalf("flapping owner triggered %d migration(s)", got)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.hits != 0 {
		t.Fatalf("peer received %d spurious submissions", rec.hits)
	}
}

// TestMigrationBadCheckpointFailsClean corrupts the checkpoint in flight
// (chaos bit-flips on the export route) and then kills the owner: the
// target node must reject the damaged frame CLEANLY — job created terminal,
// error_code "bad_checkpoint" — and the forward must still land, so the
// poller sees a structured failure instead of a hang or a silent restart
// that would re-bill the tenant from query zero.
func TestMigrationBadCheckpointFailsClean(t *testing.T) {
	ckpt, _ := captureCheckpoint(t, "clean", 3)
	frame := encodeTestFrame(t, ckpt)
	runningJob := `{"id":"a7","model_id":"clean","inspect_id":3,"state":"running","created":"2026-01-01T00:00:00Z"}`
	owner := fakeFleetNode(t, runningJob, frame, nil)
	target, _ := startAuditServer(t) // a REAL node decodes the migrated frame

	// The fake owner only hosts "m"; rename its model route by submitting on
	// the shared model id both nodes list. The fake node's zoo says "m", the
	// real node's zoo says clean/badnets/oddshape — so the merged zoo hosts
	// "m" only on the owner and migration would find no candidate. Instead,
	// drive the supervisor directly with a tracked job for "clean" whose
	// checkpoint cache is the corrupted frame.
	chaos := NewChaosTransport(nil)
	cfg := migratingConfig(owner.URL, target.URL)
	cfg.Client.HTTPClient = &http.Client{Transport: chaos}
	chaos.Set(hostOf(owner.URL), ChaosRule{CorruptPath: "/checkpoint"})
	g, _ := startGatewayServer(t, cfg)
	ctx := context.Background()

	// Seed the tracked job by hand on the fake owner (its submit route only
	// answers for "m") and let the supervisor cache the corrupted export.
	ownerNode := g.byName["n0"]
	job, err := ownerNode.api.GetAudit(ctx, "a7")
	if err != nil {
		t.Fatal(err)
	}
	g.sup.track(ownerNode, namespaceJob(ownerNode, job), "clean")
	g.sup.sweep(ctx)
	snap := g.sup.snapshot()
	if len(snap) != 1 || snap[0].frame == nil {
		t.Fatal("supervisor did not cache the exported checkpoint")
	}
	if string(snap[0].frame) == string(frame) {
		t.Fatal("chaos corruption did not change the frame")
	}

	chaos.Set(hostOf(owner.URL), ChaosRule{Kill: true})
	g.probeAll(ctx)
	g.sup.sweep(ctx)
	time.Sleep(5 * time.Millisecond)
	g.sup.sweep(ctx)
	if got := g.sup.migrated(); got != 1 {
		t.Fatalf("migrations: %d, want 1", got)
	}

	// Polling the original id follows the forward to the clean failure.
	final, err := g.getAudit(ctx, "n0.a7")
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "failed" || final.ErrorCode != "bad_checkpoint" {
		t.Fatalf("migrated job with corrupt checkpoint: %+v, want failed/bad_checkpoint", final)
	}
	if final.MigratedFrom != "n0.a7" {
		t.Fatalf("migrated_from = %q, want n0.a7", final.MigratedFrom)
	}
	if !strings.Contains(final.Error, "corrupt") {
		t.Fatalf("failure should name the corruption: %q", final.Error)
	}
	// A clean terminal failure leaves supervision: nothing to re-migrate.
	if got := len(g.sup.snapshot()); got != 0 {
		t.Fatalf("failed job still tracked (%d)", got)
	}
}

// TestChaosHangRequestTimeout pins the RequestTimeout escape hatch: against
// a node that accepts connections and then freezes, a client with a tight
// per-request deadline fails fast instead of waiting the 30s default.
func TestChaosHangRequestTimeout(t *testing.T) {
	node := fakeFleetNode(t, `{"id":"a1","model_id":"m","state":"running","created":"2026-01-01T00:00:00Z"}`, nil, nil)
	chaos := NewChaosTransport(nil)
	c := &Client{base: node.URL, cfg: ClientConfig{
		RequestTimeout: 100 * time.Millisecond,
		Retries:        NoRetries,
		HTTPClient:     &http.Client{Transport: chaos},
	}}
	c.cfg.defaults()

	chaos.Set(hostOf(node.URL), ChaosRule{Hang: true})
	start := time.Now()
	_, err := c.GetAudit(context.Background(), "a1")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("hung node: want error")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("request against hung node took %s; RequestTimeout=100ms must cut it off", elapsed)
	}
	chaos.Clear(hostOf(node.URL))
	if _, err := c.GetAudit(context.Background(), "a1"); err != nil {
		t.Fatalf("healed node: %v", err)
	}
}

// TestChaosProbeTimeoutMarksHungNodeDown: a hung node must cost the
// membership loop at most ProbeTimeout, not the client's full default.
func TestChaosProbeTimeoutMarksHungNodeDown(t *testing.T) {
	running := `{"id":"a1","model_id":"m","state":"running","created":"2026-01-01T00:00:00Z"}`
	n0 := fakeFleetNode(t, running, nil, nil)
	n1 := fakeFleetNode(t, running, nil, nil)
	chaos := NewChaosTransport(nil)
	cfg := gwTestConfig(n0.URL, n1.URL)
	cfg.ProbeTimeout = 100 * time.Millisecond
	cfg.Client.HTTPClient = &http.Client{Transport: chaos}
	g, err := NewGateway(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)

	chaos.Set(hostOf(n0.URL), ChaosRule{Hang: true})
	start := time.Now()
	g.probeAll(context.Background())
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("probe round with a hung node took %s, want ~ProbeTimeout", elapsed)
	}
	if got := g.HealthyNodes(); got != 1 {
		t.Fatalf("hung node not marked down: %d healthy", got)
	}
}

// TestChaosErrorBurstStrikesThenHeals drives the hysteresis through the
// harness instead of server kills: a burst of injected 500s marks the node
// down after MarkDownAfter strikes, and once the burst is spent the probes
// bring it back.
func TestChaosErrorBurstStrikesThenHeals(t *testing.T) {
	running := `{"id":"a1","model_id":"m","state":"running","created":"2026-01-01T00:00:00Z"}`
	node := fakeFleetNode(t, running, nil, nil)
	chaos := NewChaosTransport(nil)
	cfg := gwTestConfig(node.URL)
	cfg.Client.HTTPClient = &http.Client{Transport: chaos}
	g, err := NewGateway(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ctx := context.Background()

	// Each probe round consumes one injected 500 (the round aborts on its
	// first failed request), so a burst of 2 costs exactly two rounds.
	chaos.Set(hostOf(node.URL), ChaosRule{FailNext: 2})
	g.probeAll(ctx)
	if got := g.HealthyNodes(); got != 0 {
		t.Fatalf("node healthy through a 500 burst: %d", got)
	}
	g.probeAll(ctx) // second 500: burst spent
	g.probeAll(ctx) // this round succeeds end to end
	if got := g.HealthyNodes(); got != 1 {
		t.Fatalf("node did not heal after the burst: %d healthy", got)
	}
}

// TestMigrationDeterministicRejectAbandons: a target that answers a resume
// submission with a non-429 4xx would answer the same on every sweep (the
// fleet is uniform), so the supervisor must give up — job out of
// supervision, counted in healthz migration_failures — instead of
// resubmitting forever.
func TestMigrationDeterministicRejectAbandons(t *testing.T) {
	runningJob := `{"id":"a1","model_id":"m","inspect_id":3,"state":"running","created":"2026-01-01T00:00:00Z"}`
	owner := fakeFleetNode(t, runningJob, nil, nil)
	rec := resumeRecord{rejectStatus: http.StatusBadRequest}
	target := fakeFleetNode(t, runningJob, nil, &rec)

	chaos := NewChaosTransport(nil)
	cfg := migratingConfig(orderFleet(owner, target)...)
	cfg.Replication = 2
	cfg.Client.HTTPClient = &http.Client{Transport: chaos}
	g, gwSrv := startGatewayServer(t, cfg)
	ctx := context.Background()

	if _, err := g.submitAudit(ctx, "m", 3, nil); err != nil {
		t.Fatal(err)
	}
	chaos.Set(hostOf(owner.URL), ChaosRule{Kill: true})
	g.probeAll(ctx)
	g.sup.sweep(ctx) // stamps the down clock
	time.Sleep(5 * time.Millisecond)
	g.sup.sweep(ctx) // grace expired: attempts, gets the 400, abandons
	g.sup.sweep(ctx) // must NOT retry an abandoned job

	rec.mu.Lock()
	hits := rec.hits
	rec.mu.Unlock()
	if hits != 1 {
		t.Fatalf("target saw %d submissions, want exactly 1 (no retry after a deterministic 4xx)", hits)
	}
	if got := g.sup.migrated(); got != 0 {
		t.Fatalf("migrations: %d, want 0", got)
	}
	if got := g.sup.failed(); got != 1 {
		t.Fatalf("failed counter: %d, want 1", got)
	}
	if got := len(g.sup.snapshot()); got != 0 {
		t.Fatalf("abandoned job still tracked (%d)", got)
	}

	// The give-up is visible to operators on the fleet healthz.
	resp, err := http.Get(gwSrv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.MigrationFailures != 1 {
		t.Fatalf("healthz migration_failures = %d, want 1", h.MigrationFailures)
	}
}

// TestMigrationBackoffDefersNotSleeps pins the no-sleeping-in-sweeps
// contract: after a transient migration failure the job is deferred by its
// backoff deadline — the sweep itself returns immediately (other jobs keep
// their cadence) and later sweeps skip the job until the deadline passes.
func TestMigrationBackoffDefersNotSleeps(t *testing.T) {
	runningJob := `{"id":"a1","model_id":"m","inspect_id":3,"state":"running","created":"2026-01-01T00:00:00Z"}`
	owner := fakeFleetNode(t, runningJob, nil, nil)
	rec := resumeRecord{rejectStatus: http.StatusServiceUnavailable}
	target := fakeFleetNode(t, runningJob, nil, &rec)

	chaos := NewChaosTransport(nil)
	cfg := migratingConfig(orderFleet(owner, target)...)
	cfg.Replication = 2
	// A backoff so large that any inline sleep would hang the test — and any
	// pass before the deadline proves the deferral was ignored.
	cfg.Migration.BackoffBase = time.Hour
	cfg.Migration.BackoffMax = time.Hour
	cfg.Client.HTTPClient = &http.Client{Transport: chaos}
	g, _ := startGatewayServer(t, cfg)
	ctx := context.Background()

	if _, err := g.submitAudit(ctx, "m", 3, nil); err != nil {
		t.Fatal(err)
	}
	chaos.Set(hostOf(owner.URL), ChaosRule{Kill: true})
	g.probeAll(ctx)
	g.sup.sweep(ctx) // stamps the down clock
	time.Sleep(5 * time.Millisecond)

	start := time.Now()
	g.sup.sweep(ctx) // the 503: defers with the hour-long backoff, no sleep
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sweep with a failing target took %s: backoff must defer, not sleep", elapsed)
	}
	g.sup.sweep(ctx) // inside the backoff window: must not attempt again

	rec.mu.Lock()
	hits := rec.hits
	rec.mu.Unlock()
	if hits != 1 {
		t.Fatalf("target saw %d submissions, want 1 (deferred by backoff)", hits)
	}
	snap := g.sup.snapshot()
	if len(snap) != 1 {
		t.Fatalf("deferred job left supervision: %d tracked", len(snap))
	}
	g.sup.mu.Lock()
	nextTry := snap[0].nextTry
	g.sup.mu.Unlock()
	if until := time.Until(nextTry); until < 10*time.Minute {
		t.Fatalf("nextTry %s away, want ~an hour", until)
	}

	// Deadline passed (simulated) and the target healed: the job migrates.
	rec.mu.Lock()
	rec.rejectStatus = 0
	rec.mu.Unlock()
	g.sup.mu.Lock()
	snap[0].nextTry = time.Now().Add(-time.Second)
	g.sup.mu.Unlock()
	g.sup.sweep(ctx)
	if got := g.sup.migrated(); got != 1 {
		t.Fatalf("migrations after backoff expiry: %d, want 1", got)
	}
}

// TestMigrationBookkeepingPruned pins the supervisor's memory bound: the
// forward-chain entry and the pending stale-copy cancellation left behind by
// a migration age out ForwardTTL after the migrated job leaves supervision,
// so a long-lived gateway under churn does not grow state forever.
func TestMigrationBookkeepingPruned(t *testing.T) {
	runningJob := `{"id":"a1","model_id":"m","inspect_id":3,"state":"running","created":"2026-01-01T00:00:00Z"}`
	// The migrated job is born terminal on the target: it leaves supervision
	// immediately, starting the forward entry's TTL clock.
	doneJob := `{"id":"a2","model_id":"m","inspect_id":3,"state":"done","created":"2026-01-01T00:00:01Z"}`
	owner := fakeFleetNode(t, runningJob, nil, nil)
	var rec resumeRecord
	target := fakeFleetNode(t, doneJob, nil, &rec)

	chaos := NewChaosTransport(nil)
	cfg := migratingConfig(orderFleet(owner, target)...)
	cfg.Replication = 2
	cfg.Migration.ForwardTTL = 50 * time.Millisecond
	cfg.Client.HTTPClient = &http.Client{Transport: chaos}
	g, _ := startGatewayServer(t, cfg)
	ctx := context.Background()

	job, err := g.submitAudit(ctx, "m", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Set(hostOf(owner.URL), ChaosRule{Kill: true})
	g.probeAll(ctx)
	g.sup.sweep(ctx)
	time.Sleep(5 * time.Millisecond)
	g.sup.sweep(ctx)
	if got := g.sup.migrated(); got != 1 {
		t.Fatalf("migrations: %d, want 1", got)
	}

	counts := func() (forwards, stale int) {
		g.sup.mu.Lock()
		defer g.sup.mu.Unlock()
		return len(g.sup.forwards), len(g.sup.stale)
	}
	// Inside the TTL window the bookkeeping is intact: the original id still
	// resolves (clients poll the terminal verdict through it) and the stale
	// copy on the dead owner is still scheduled for cancellation.
	if f, s := counts(); f != 1 || s != 1 {
		t.Fatalf("right after migration: %d forwards, %d stale; want 1, 1", f, s)
	}
	if got := g.sup.resolve(job.ID); got == job.ID {
		t.Fatalf("forward for %s gone before TTL", job.ID)
	}

	time.Sleep(60 * time.Millisecond) // past ForwardTTL
	g.sup.sweep(ctx)
	if f, s := counts(); f != 0 || s != 0 {
		t.Fatalf("after ForwardTTL: %d forwards, %d stale; want both pruned", f, s)
	}
}

// TestSubmitBodyFitsCheckpointCeiling pins the size relationship the
// reviewer caught inverted: every checkpoint frame a node can legally
// export (≤ maxCheckpointWire) must fit, base64-encoded with envelope
// slack, inside the submit body cap — otherwise a large-but-valid
// checkpoint can never be resubmitted and migration wedges.
func TestSubmitBodyFitsCheckpointCeiling(t *testing.T) {
	need := base64.StdEncoding.EncodedLen(maxCheckpointWire) + 1024
	if maxSubmitBody < need {
		t.Fatalf("maxSubmitBody %d < base64(maxCheckpointWire)+slack %d", maxSubmitBody, need)
	}
}
