package mlaas

// The tenancy plane: API-key auth, per-tenant rate limits, and per-tenant
// oracle-query quotas over the audit platform (internal/jobstore). A server
// given a parsed key file (EnableTenancy) requires Authorization: Bearer
// <key> on every mutating /v1/* route, attributes submitted audit jobs to
// the authenticated tenant, charges each job's oracle queries against the
// tenant's quota ledger, and answers GET /v1/tenants/{id}/usage. Read-only
// routes (listings, health, job polling) stay open — the quota protects the
// expensive resource, which is oracle queries, not metadata.
//
// A gateway forwards the caller's bearer token to its backend nodes
// unchanged (via the request context, see WithAPIKey), so tenant
// attribution and quota enforcement happen on the node that actually runs
// the job, whose journal is the ledger of record.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"bprom/internal/audit"
	"bprom/internal/jobstore"
	"bprom/internal/oracle"
)

// ErrTenancyDisabled reports a tenancy request against a server without an
// API-key file. The HTTP layer maps it to 501.
var ErrTenancyDisabled = errors.New("mlaas: tenancy not enabled on this server (start it with an API-key file)")

// ErrUnknownTenant reports a usage query for a tenant the key file does not
// name. The HTTP layer maps it to 404.
var ErrUnknownTenant = errors.New("mlaas: unknown tenant")

// ctxKey keys the values the tenancy middleware threads through request
// contexts.
type ctxKey int

const (
	ctxKeyAPIKey ctxKey = iota
	ctxKeyTenant
)

// WithAPIKey returns a context that makes every mlaas Client request carry
// Authorization: Bearer key, overriding the client's configured APIKey. The
// gateway uses it to forward the calling tenant's credential across the
// routing hop, so the node running the job sees the original caller.
func WithAPIKey(ctx context.Context, key string) context.Context {
	return context.WithValue(ctx, ctxKeyAPIKey, key)
}

// apiKeyFrom reads a WithAPIKey credential ("" when absent).
func apiKeyFrom(ctx context.Context) string {
	k, _ := ctx.Value(ctxKeyAPIKey).(string)
	return k
}

// tenantFrom reads the authenticated tenant name the middleware stored (""
// on servers without tenancy, and on non-mutating routes).
func tenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(ctxKeyTenant).(string)
	return t
}

// bearerToken extracts the Authorization bearer token ("" when absent or
// not bearer-shaped).
func bearerToken(r *http.Request) string {
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return strings.TrimSpace(h[len(prefix):])
	}
	return ""
}

// EnableTenancy attaches the tenant set to the server: mutating /v1/*
// routes start requiring a valid API key, submissions are attributed to the
// authenticated tenant, and audit oracle traffic is charged against the
// tenant's quota. Call it before EnableAudits — resumed jobs rebuild their
// oracles at EnableAudits time and must see the tenancy to quota-wrap them.
func (s *Server) EnableTenancy(tn *jobstore.Tenancy) { s.tenancy = tn }

// Tenancy exposes the attached tenant set (nil when tenancy is disabled).
func (s *Server) Tenancy() *jobstore.Tenancy { return s.tenancy }

// withTenancy is the middleware around the whole route table. It always
// captures the caller's bearer token into the request context so routing
// providers (the gateway) can forward it; with tenancy enabled it
// additionally enforces authentication and per-tenant rate limits on
// mutating routes, rejecting with structured 401/429 envelopes.
func (s *Server) withTenancy(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		key := bearerToken(r)
		if key != "" {
			ctx = WithAPIKey(ctx, key)
		}
		if s.tenancy != nil && r.Method != http.MethodGet && r.Method != http.MethodHead {
			t, ok := s.tenancy.Authenticate(key)
			if key == "" || !ok {
				writeJSON(w, http.StatusUnauthorized, errorResponse{
					Error: "missing or invalid API key (send Authorization: Bearer <key>)",
					Code:  "unauthorized",
				})
				return
			}
			if !t.Allow(time.Now()) {
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, errorResponse{
					Error: fmt.Sprintf("tenant %q rate limit exceeded", t.Name),
					Code:  "rate_limited",
				})
				return
			}
			ctx = context.WithValue(ctx, ctxKeyTenant, t.Name)
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// TenantUsage is the GET /v1/tenants/{id}/usage payload: the tenant's
// oracle-query ledger and job count. Through a gateway the numbers are the
// sum over the fleet's nodes (each node's journal is its own ledger of
// record).
type TenantUsage struct {
	// Tenant is the tenant name.
	Tenant string `json:"tenant"`
	// Quota is the configured oracle-query budget (absent = unlimited).
	Quota int64 `json:"quota,omitempty"`
	// Spent is cumulative successful oracle-query spend, as metered by
	// oracle.Counter and replayed from the journal across restarts.
	Spent int64 `json:"spent"`
	// Remaining is the unspent budget, present only with a quota.
	Remaining int64 `json:"remaining,omitempty"`
	// Jobs counts audit jobs attributed to the tenant.
	Jobs int `json:"jobs"`
}

// usageRouter is an optional provider capability: a provider that answers
// tenant-usage queries by fanning out to remote nodes (the gateway).
type usageRouter interface {
	TenantUsage(ctx context.Context, name string) (TenantUsage, error)
}

func (s *Server) handleTenantUsage(w http.ResponseWriter, r *http.Request, name string) {
	// Routing wins where there is no local ledger, mirroring auditRouter: a
	// gateway's own tenancy (edge auth) holds no spend — the nodes do.
	if rt, ok := s.prov.(usageRouter); ok && s.audits == nil {
		u, err := rt.TenantUsage(r.Context(), name)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, u)
		return
	}
	if s.tenancy == nil {
		s.writeError(w, ErrTenancyDisabled)
		return
	}
	t, ok := s.tenancy.Lookup(name)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: %q", ErrUnknownTenant, name))
		return
	}
	u := TenantUsage{Tenant: t.Name, Quota: t.Quota, Spent: t.Spent()}
	if n, bounded := t.Remaining(); bounded {
		u.Remaining = n
	}
	if s.audits != nil {
		for _, j := range s.audits.List() {
			if j.Tenant == t.Name {
				u.Jobs++
			}
		}
	}
	writeJSON(w, http.StatusOK, u)
}

// auditOracle builds the oracle an audit job queries: the provider's own
// engines (no HTTP loopback), quota-wrapped when the tenant is known to the
// tenancy. Unknown or empty tenants (serverless tests, the re-audit
// scheduler's synthetic tenant on a key file that does not name it) run
// unmetered.
func (s *Server) auditOracle(info ModelInfo, tenant string) oracle.Oracle {
	var o oracle.Oracle = &providerOracle{prov: s.prov, id: info.ID, classes: info.Classes, inputDim: info.InputDim}
	if s.tenancy != nil {
		if t, ok := s.tenancy.Lookup(tenant); ok {
			o = jobstore.WrapOracle(t, o)
		}
	}
	return o
}

// SubmitAudit submits an in-process audit job for a hosted model on behalf
// of tenant ("" without tenancy) — the programmatic face of POST
// /v1/models/{id}/audits, used by the HTTP handler, the re-audit scheduler,
// and in-process callers alike. inspectID < 0 lets the manager assign the
// job's sequence number.
func (s *Server) SubmitAudit(modelID, tenant string, inspectID int) (audit.Job, error) {
	if s.audits == nil {
		return audit.Job{}, ErrAuditsDisabled
	}
	info, err := s.prov.Info(modelID)
	if err != nil {
		return audit.Job{}, err
	}
	if err := s.audits.Detector().Compatible(info.Classes, info.InputDim); err != nil {
		return audit.Job{}, fmt.Errorf("model %q not auditable: %w", info.ID, err)
	}
	return s.audits.Submit(info.ID, tenant, s.auditOracle(info, tenant), inspectID)
}

// EnableReaudit starts the cron-like re-audit scheduler: every interval it
// submits one audit job per hosted model that is compatible with the
// detector and not already queued or running, attributed to tenant (so
// scheduled sweeps are distinguishable from user submissions in listings
// and usage). Call it after EnableAudits; Close stops the scheduler before
// draining the jobs it submitted.
func (s *Server) EnableReaudit(interval time.Duration, tenant string) error {
	if s.audits == nil {
		return ErrAuditsDisabled
	}
	if s.reaudit != nil {
		return errors.New("mlaas: re-audit scheduler already enabled")
	}
	s.reaudit = jobstore.NewScheduler(interval, func(ctx context.Context) {
		s.reauditSweep(tenant)
	})
	return nil
}

// reauditSweep submits one job per idle auditable model. Failures (queue
// full, incompatible, closed) are skipped silently: the next sweep retries,
// and piling up duplicate jobs would be worse than waiting a tick.
func (s *Server) reauditSweep(tenant string) {
	active := make(map[string]bool)
	for _, j := range s.audits.List() {
		if !j.State.Terminal() {
			active[j.ModelID] = true
		}
	}
	for _, mi := range s.prov.Models() {
		if active[mi.ID] {
			continue
		}
		_, _ = s.SubmitAudit(mi.ID, tenant, -1)
	}
}
