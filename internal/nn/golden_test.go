package nn

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// The golden checkpoint guards the binary format against accidental drift:
// formatVersion bumps, layer-tag renumbering, field reordering, or encoding
// changes all break the byte-for-byte comparison below. Regenerate (after
// an INTENTIONAL, versioned format change) with:
//
//	go test ./internal/nn -run TestGoldenCheckpoint -update
var updateGolden = flag.Bool("update", false, "rewrite golden checkpoint testdata")

const (
	goldenModelFile = "golden_v1.bin"
	goldenProbsFile = "golden_v1.probs.json"
)

// goldenModel hand-assembles a model exercising every serializable layer
// tag (Dense, ReLU, Tanh, Dropout, LayerNorm, Residual, Conv2D, Flatten,
// ToImage, GlobalAvgPool) with deterministic weights.
func goldenModel(t *testing.T) *Model {
	t.Helper()
	r := rng.New(0x601d) // deterministic; value itself is arbitrary
	dims := tensor.ConvDims{InC: 1, InH: 4, InW: 4, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := dims.Resolve(); err != nil {
		t.Fatal(err)
	}
	m := &Model{
		Arch:       ArchConvLite,
		InputDim:   16,
		NumClasses: 3,
		Layers: []Layer{
			&ToImage{C: 1, H: 4, W: 4},
			NewConv2D(dims, r),
			&ReLU{},
			&Flatten{},
			NewDense(32, 8, r),
			&Tanh{},
			NewLayerNorm(8),
			&Residual{Body: []Layer{NewDense(8, 8, r), &ReLU{}}},
			NewDropout(0.25, r),
			&ToImage{C: 2, H: 2, W: 2},
			&GlobalAvgPool{},
			NewDense(2, 3, r),
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// goldenInput is a fixed probe batch: a deterministic ramp over [0, 1).
func goldenInput() *tensor.Tensor {
	x := tensor.New(4, 16)
	for i := range x.Data {
		x.Data[i] = float64(i%17) / 17
	}
	return x
}

func TestGoldenCheckpointRoundTrip(t *testing.T) {
	modelPath := filepath.Join("testdata", goldenModelFile)
	probsPath := filepath.Join("testdata", goldenProbsFile)

	if *updateGolden {
		m := goldenModel(t)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := m.SaveFile(modelPath); err != nil {
			t.Fatal(err)
		}
		probs := m.Predict(goldenInput())
		buf, err := json.MarshalIndent(probs.Data, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(probsPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden checkpoint rewritten: %s", modelPath)
	}

	raw, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatalf("read golden checkpoint (regenerate with -update): %v", err)
	}

	// The header must stay at version 1 with the committed shape fields —
	// bumping formatVersion without a migration breaks every saved model.
	h, err := ReadHeaderFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 1 || h.Arch != ArchConvLite || h.InputDim != 16 || h.NumClasses != 3 {
		t.Fatalf("golden header drifted: %+v", h)
	}

	// The checkpoint must load, and re-saving it must reproduce the
	// committed bytes exactly: the encoder is part of the format contract.
	m, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden checkpoint no longer loads: %v", err)
	}
	var resaved bytes.Buffer
	if err := m.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), raw) {
		t.Fatalf("re-saved checkpoint differs from golden bytes (%d vs %d bytes): encoder drifted",
			resaved.Len(), len(raw))
	}

	// And the loaded weights must behave identically: fixed probe inputs
	// produce the committed confidence vectors.
	var want []float64
	buf, err := os.ReadFile(probsPath)
	if err != nil {
		t.Fatalf("read golden probs (regenerate with -update): %v", err)
	}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	got := m.Predict(goldenInput())
	if len(want) != got.Len() {
		t.Fatalf("golden probs length %d, model emits %d", len(want), got.Len())
	}
	for i := range want {
		if math.Abs(got.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("golden prediction %d drifted: %v vs %v", i, got.Data[i], want[i])
		}
	}
}

// TestSidecarRoundTrip covers the JSON metadata companion of a checkpoint.
func TestSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := goldenModel(t)
	path := filepath.Join(dir, "m.bin")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	sc := SidecarFor(m, "zoo/golden", "hand-built golden model")
	sc.Metrics = map[string]float64{"acc": 0.5}
	if err := sc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadSidecar(path)
	if err != nil || !ok {
		t.Fatalf("sidecar read: ok=%v err=%v", ok, err)
	}
	if got.Name != "zoo/golden" || got.Params != m.ParamCount() || got.Metrics["acc"] != 0.5 {
		t.Fatalf("sidecar round trip: %+v", got)
	}
	if got.InputDim != 16 || got.NumClasses != 3 || got.Arch != string(ArchConvLite) {
		t.Fatalf("sidecar shape fields: %+v", got)
	}
	// Missing sidecars are ok=false, not errors.
	_, ok, err = ReadSidecar(filepath.Join(dir, "absent.bin"))
	if err != nil || ok {
		t.Fatalf("missing sidecar: ok=%v err=%v", ok, err)
	}
}
