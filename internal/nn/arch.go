package nn

import (
	"fmt"

	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// ArchConfig selects and sizes an architecture family. The zero value is not
// usable; call Normalize (done by Build) to apply defaults.
type ArchConfig struct {
	Arch       Arch
	C, H, W    int // image geometry of the input domain
	NumClasses int
	Hidden     int     // base width; default depends on the family
	Blocks     int     // residual / mixing block count; default 2
	Dropout    float64 // dropout rate inside blocks; default 0
}

// Normalize applies family defaults and validates the configuration.
func (c *ArchConfig) Normalize() error {
	if c.C <= 0 || c.H <= 0 || c.W <= 0 {
		return fmt.Errorf("nn: invalid image geometry %dx%dx%d", c.C, c.H, c.W)
	}
	if c.NumClasses < 2 {
		return fmt.Errorf("nn: need at least 2 classes, got %d", c.NumClasses)
	}
	if c.Blocks <= 0 {
		c.Blocks = 2
	}
	if c.Hidden <= 0 {
		switch c.Arch {
		case ArchMobileNetLite:
			c.Hidden = 48 // deliberately narrower, like MobileNetV2 vs ResNet18
		case ArchVitLite:
			c.Hidden = 56
		default:
			c.Hidden = 64
		}
	}
	switch c.Arch {
	case ArchResNetLite, ArchMobileNetLite, ArchVitLite, ArchConvLite:
		return nil
	case "":
		c.Arch = ArchResNetLite
		return nil
	default:
		return fmt.Errorf("nn: unknown architecture %q", c.Arch)
	}
}

// InputDim returns the flattened per-sample input width.
func (c ArchConfig) InputDim() int { return c.C * c.H * c.W }

// Build constructs a freshly initialized model of the requested family.
// Parameter initialization draws from r, so different seeds give the
// "different parameter initializations" the paper's shadow models require.
func Build(cfg ArchConfig, r *rng.RNG) (*Model, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	in := cfg.InputDim()
	var layers []Layer
	switch cfg.Arch {
	case ArchResNetLite:
		layers = buildResNetLite(cfg, in, r)
	case ArchMobileNetLite:
		layers = buildMobileNetLite(cfg, in, r)
	case ArchVitLite:
		layers = buildVitLite(cfg, in, r)
	case ArchConvLite:
		layers = buildConvLite(cfg, r)
	}
	m := &Model{Arch: cfg.Arch, InputDim: in, NumClasses: cfg.NumClasses, Layers: layers}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Every family starts with a convolutional stem (ResNet/MobileNet begin
// with conv layers; ViT's patch embedding is a strided convolution). Weight
// sharing in the stem is essential to the paper's phenomenon: it couples
// trigger detectors to image content everywhere in the canvas, which is what
// makes a poisoned model's class subspaces interfere with prompted inputs.

// buildResNetLite: conv stem + identity residual blocks — the ResNet18
// analogue (skip connections are the defining feature).
func buildResNetLite(cfg ArchConfig, in int, r *rng.RNG) []Layer {
	h := cfg.Hidden
	stem1 := tensor.ConvDims{InC: cfg.C, InH: cfg.H, InW: cfg.W, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := stem1.Resolve(); err != nil {
		panic(fmt.Sprintf("nn: resnetlite stem: %v", err))
	}
	stem2 := tensor.ConvDims{InC: 8, InH: stem1.OutH, InW: stem1.OutW, OutC: 12, KH: 3, KW: 3, Stride: 2, Pad: 1}
	if err := stem2.Resolve(); err != nil {
		panic(fmt.Sprintf("nn: resnetlite stage2: %v", err))
	}
	flat := stem2.OutC * stem2.OutH * stem2.OutW
	layers := []Layer{
		&ToImage{C: cfg.C, H: cfg.H, W: cfg.W},
		NewConv2D(stem1, r.Split("stem.conv")),
		&ReLU{},
		NewConv2D(stem2, r.Split("stage2.conv")),
		&ReLU{},
		&Flatten{},
		NewDense(flat, h, r.Split("stem.fc")),
		&ReLU{},
	}
	for b := 0; b < cfg.Blocks; b++ {
		body := []Layer{
			NewDense(h, h, r.Split("res.a", b)),
			&ReLU{},
			NewDense(h, h, r.Split("res.b", b)),
		}
		if cfg.Dropout > 0 {
			body = append(body, NewDropout(cfg.Dropout, r.Split("res.drop", b)))
		}
		layers = append(layers, &Residual{Body: body}, &ReLU{})
	}
	return append(layers, NewDense(h, cfg.NumClasses, r.Split("head")))
}

// buildMobileNetLite: a strided (cheap) conv stem + inverted-bottleneck
// residual blocks (expand → project) on a narrower base width — the
// MobileNetV2 analogue.
func buildMobileNetLite(cfg ArchConfig, in int, r *rng.RNG) []Layer {
	h := cfg.Hidden
	stem1 := tensor.ConvDims{InC: cfg.C, InH: cfg.H, InW: cfg.W, OutC: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := stem1.Resolve(); err != nil {
		panic(fmt.Sprintf("nn: mobilenetlite stem: %v", err))
	}
	stem2 := tensor.ConvDims{InC: 6, InH: stem1.OutH, InW: stem1.OutW, OutC: 10, KH: 3, KW: 3, Stride: 2, Pad: 1}
	if err := stem2.Resolve(); err != nil {
		panic(fmt.Sprintf("nn: mobilenetlite stage2: %v", err))
	}
	flat := stem2.OutC * stem2.OutH * stem2.OutW
	layers := []Layer{
		&ToImage{C: cfg.C, H: cfg.H, W: cfg.W},
		NewConv2D(stem1, r.Split("stem.conv")),
		&ReLU{},
		NewConv2D(stem2, r.Split("stage2.conv")),
		&ReLU{},
		&Flatten{},
		NewDense(flat, h, r.Split("stem.fc")),
		&ReLU{},
	}
	for b := 0; b < cfg.Blocks; b++ {
		body := []Layer{
			NewDense(h, 2*h, r.Split("mb.expand", b)), // expansion, like the 6x pointwise conv
			&ReLU{},
			NewDense(2*h, h, r.Split("mb.project", b)), // linear bottleneck: no activation after projection
		}
		layers = append(layers, &Residual{Body: body})
	}
	return append(layers, &ReLU{}, NewDense(h, cfg.NumClasses, r.Split("head")))
}

// buildVitLite: convolutional patch embedding (a 3x3-stride-3 conv, exactly
// how ViT tokenizes) + pre-norm residual MLP-mixing blocks — the MobileViT /
// Swin analogue. A full attention stack is out of scope; the patch
// tokenization + LayerNorm + pre-norm residual structure is what
// differentiates the family here.
func buildVitLite(cfg ArchConfig, in int, r *rng.RNG) []Layer {
	h := cfg.Hidden
	patch := 3
	embed := tensor.ConvDims{InC: cfg.C, InH: cfg.H, InW: cfg.W, OutC: 12, KH: patch, KW: patch, Stride: patch, Pad: 0}
	if err := embed.Resolve(); err != nil {
		panic(fmt.Sprintf("nn: vitlite patch embedding: %v", err))
	}
	flat := embed.OutC * embed.OutH * embed.OutW
	layers := []Layer{
		&ToImage{C: cfg.C, H: cfg.H, W: cfg.W},
		NewConv2D(embed, r.Split("patch.embed")),
		&Flatten{},
		NewDense(flat, h, r.Split("token.mix")),
		NewLayerNorm(h),
	}
	for b := 0; b < cfg.Blocks; b++ {
		body := []Layer{
			NewLayerNorm(h),
			NewDense(h, 2*h, r.Split("vit.fc1", b)),
			&ReLU{},
			NewDense(2*h, h, r.Split("vit.fc2", b)),
		}
		layers = append(layers, &Residual{Body: body})
	}
	return append(layers, NewLayerNorm(h), NewDense(h, cfg.NumClasses, r.Split("head")))
}

// buildConvLite: genuine convolutions for the experiments that need spatial
// weight sharing; slower, used at larger scales.
func buildConvLite(cfg ArchConfig, r *rng.RNG) []Layer {
	c1 := tensor.ConvDims{InC: cfg.C, InH: cfg.H, InW: cfg.W, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := c1.Resolve(); err != nil {
		panic(fmt.Sprintf("nn: convlite stem: %v", err))
	}
	c2 := tensor.ConvDims{InC: 8, InH: c1.OutH, InW: c1.OutW, OutC: 12, KH: 3, KW: 3, Stride: 2, Pad: 1}
	if err := c2.Resolve(); err != nil {
		panic(fmt.Sprintf("nn: convlite block: %v", err))
	}
	flatW := 12 * c2.OutH * c2.OutW
	return []Layer{
		&ToImage{C: cfg.C, H: cfg.H, W: cfg.W},
		NewConv2D(c1, r.Split("conv1")),
		&ReLU{},
		NewConv2D(c2, r.Split("conv2")),
		&ReLU{},
		&Flatten{},
		NewDense(flatW, cfg.Hidden, r.Split("fc")),
		&ReLU{},
		NewDense(cfg.Hidden, cfg.NumClasses, r.Split("head")),
	}
}
