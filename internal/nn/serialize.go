package nn

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"bprom/internal/binio"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Binary model format: magic, version, arch, input dim, class count, then a
// recursive layer list with one byte-tag per layer type. Weights are raw
// little-endian float64. The format is versioned so saved shadow models
// remain loadable across releases.

const (
	formatMagic   = "BPROMNN"
	formatVersion = uint32(1)
)

// Layer tags. Values are stable once released — append only.
const (
	tagDense byte = iota + 1
	tagReLU
	tagTanh
	tagDropout
	tagLayerNorm
	tagResidual
	tagConv2D
	tagFlatten
	tagToImage
	tagGlobalAvgPool
)

// Save writes the model to w. Quantized models cannot be saved: the int8
// representation is derived state, re-created at load time from the full-
// precision weights, and persisting it would silently lose precision.
func (m *Model) Save(w io.Writer) error {
	if m.quantized {
		return fmt.Errorf("nn: cannot serialize a quantized model (quantization is derived at load, not persisted)")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(formatMagic); err != nil {
		return fmt.Errorf("nn: write magic: %w", err)
	}
	if err := writeU32(bw, formatVersion); err != nil {
		return err
	}
	if err := writeString(bw, string(m.Arch)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(m.InputDim)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(m.NumClasses)); err != nil {
		return err
	}
	if err := writeLayers(bw, m.Layers); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("nn: flush model: %w", err)
	}
	return nil
}

// SaveFile writes the model to path, creating or truncating it.
func (m *Model) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("nn: close %s: %w", path, cerr)
		}
	}()
	return m.Save(f)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	layers, err := readLayers(br)
	if err != nil {
		return nil, err
	}
	m := &Model{Arch: h.Arch, InputDim: h.InputDim, NumClasses: h.NumClasses, Layers: layers}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("nn: loaded model invalid: %w", err)
	}
	return m, nil
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}

func writeLayers(w *bufio.Writer, layers []Layer) error {
	if err := writeU32(w, uint32(len(layers))); err != nil {
		return err
	}
	for _, l := range layers {
		if err := writeLayer(w, l); err != nil {
			return err
		}
	}
	return nil
}

func writeLayer(w *bufio.Writer, l Layer) error {
	switch v := l.(type) {
	case *Dense:
		if err := w.WriteByte(tagDense); err != nil {
			return err
		}
		if err := writeU32(w, uint32(v.In)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(v.Out)); err != nil {
			return err
		}
		if err := writeFloats(w, v.W.Value.Data); err != nil {
			return err
		}
		return writeFloats(w, v.B.Value.Data)
	case *ReLU:
		return w.WriteByte(tagReLU)
	case *Tanh:
		return w.WriteByte(tagTanh)
	case *Dropout:
		if err := w.WriteByte(tagDropout); err != nil {
			return err
		}
		return writeFloats(w, []float64{v.Rate})
	case *LayerNorm:
		if err := w.WriteByte(tagLayerNorm); err != nil {
			return err
		}
		if err := writeU32(w, uint32(v.F)); err != nil {
			return err
		}
		if err := writeFloats(w, v.Gamma.Value.Data); err != nil {
			return err
		}
		return writeFloats(w, v.Beta.Value.Data)
	case *Residual:
		if err := w.WriteByte(tagResidual); err != nil {
			return err
		}
		return writeLayers(w, v.Body)
	case *Conv2D:
		if err := w.WriteByte(tagConv2D); err != nil {
			return err
		}
		d := v.Dims
		for _, x := range []int{d.InC, d.InH, d.InW, d.OutC, d.KH, d.KW, d.Stride, d.Pad} {
			if err := writeU32(w, uint32(x)); err != nil {
				return err
			}
		}
		if err := writeFloats(w, v.W.Value.Data); err != nil {
			return err
		}
		return writeFloats(w, v.B.Value.Data)
	case *Flatten:
		return w.WriteByte(tagFlatten)
	case *ToImage:
		if err := w.WriteByte(tagToImage); err != nil {
			return err
		}
		for _, x := range []int{v.C, v.H, v.W} {
			if err := writeU32(w, uint32(x)); err != nil {
				return err
			}
		}
		return nil
	case *GlobalAvgPool:
		return w.WriteByte(tagGlobalAvgPool)
	default:
		return fmt.Errorf("nn: cannot serialize layer type %T", l)
	}
}

func readLayers(r *bufio.Reader) ([]Layer, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("nn: implausible layer count %d", n)
	}
	layers := make([]Layer, 0, n)
	for i := uint32(0); i < n; i++ {
		l, err := readLayer(r)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
		layers = append(layers, l)
	}
	return layers, nil
}

func readLayer(r *bufio.Reader) (Layer, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("read layer tag: %w", err)
	}
	switch tag {
	case tagDense:
		in, err := readU32(r)
		if err != nil {
			return nil, err
		}
		out, err := readU32(r)
		if err != nil {
			return nil, err
		}
		d := &Dense{
			In:  int(in),
			Out: int(out),
			W:   &Param{Name: "dense.w", Value: tensor.New(int(in), int(out)), Grad: tensor.New(int(in), int(out))},
			B:   &Param{Name: "dense.b", Value: tensor.New(1, int(out)), Grad: tensor.New(1, int(out))},
		}
		if err := readFloats(r, d.W.Value.Data); err != nil {
			return nil, err
		}
		if err := readFloats(r, d.B.Value.Data); err != nil {
			return nil, err
		}
		return d, nil
	case tagReLU:
		return &ReLU{}, nil
	case tagTanh:
		return &Tanh{}, nil
	case tagDropout:
		rate := make([]float64, 1)
		if err := readFloats(r, rate); err != nil {
			return nil, err
		}
		// The dropout RNG is not part of the persisted state; inference does
		// not use it, and resumed training reseeds deterministically.
		return NewDropout(rate[0], rng.New(0xd06)), nil
	case tagLayerNorm:
		f, err := readU32(r)
		if err != nil {
			return nil, err
		}
		ln := NewLayerNorm(int(f))
		if err := readFloats(r, ln.Gamma.Value.Data); err != nil {
			return nil, err
		}
		if err := readFloats(r, ln.Beta.Value.Data); err != nil {
			return nil, err
		}
		return ln, nil
	case tagResidual:
		body, err := readLayers(r)
		if err != nil {
			return nil, err
		}
		return &Residual{Body: body}, nil
	case tagConv2D:
		var vals [8]uint32
		for i := range vals {
			v, err := readU32(r)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		dims := tensor.ConvDims{
			InC: int(vals[0]), InH: int(vals[1]), InW: int(vals[2]),
			OutC: int(vals[3]), KH: int(vals[4]), KW: int(vals[5]),
			Stride: int(vals[6]), Pad: int(vals[7]),
		}
		if err := dims.Resolve(); err != nil {
			return nil, err
		}
		c := NewConv2D(dims, rng.New(0)) // weights overwritten below
		if err := readFloats(r, c.W.Value.Data); err != nil {
			return nil, err
		}
		if err := readFloats(r, c.B.Value.Data); err != nil {
			return nil, err
		}
		return c, nil
	case tagFlatten:
		return &Flatten{}, nil
	case tagToImage:
		var vals [3]uint32
		for i := range vals {
			v, err := readU32(r)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return &ToImage{C: int(vals[0]), H: int(vals[1]), W: int(vals[2])}, nil
	case tagGlobalAvgPool:
		return &GlobalAvgPool{}, nil
	default:
		return nil, fmt.Errorf("unknown layer tag %d", tag)
	}
}

// The encoding primitives live in internal/binio (shared with the detector
// artifact format, which mirrors this checkpoint format's conventions);
// these wrappers only keep the historical call sites short.

func writeU32(w *bufio.Writer, v uint32) error { return binio.WriteU32(w, v) }

func readU32(r *bufio.Reader) (uint32, error) { return binio.ReadU32(r) }

func writeString(w *bufio.Writer, s string) error { return binio.WriteString(w, s) }

func readString(r *bufio.Reader) (string, error) { return binio.ReadString(r) }

func writeFloats(w *bufio.Writer, data []float64) error { return binio.WriteFloats(w, data) }

func readFloats(r *bufio.Reader, dst []float64) error { return binio.ReadFloatsInto(r, dst) }
