package nn

import (
	"fmt"
	"sync"

	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Conv2D is a 2-D convolution over batches shaped [N, C, H, W], implemented
// with im2col + matmul. Weights are stored as [OutC, InC*KH*KW].
// When Q is non-nil the layer is quantized: it holds the transposed weights
// [InC*KH*KW, OutC] in per-output-channel int8 (so the im2col product runs
// through the fast per-column kernel), W's float64 tensors are dropped, and
// the layer is inference-only (Backward panics). See Model.Quantize.
type Conv2D struct {
	Dims tensor.ConvDims
	W    *Param // [OutC, InC*KH*KW]; Value/Grad nil once quantized
	B    *Param // [1, OutC]; always float64
	Q    *tensor.QTensor

	// colPool recycles [OutH*OutW, InC*KH*KW] im2col matrices between a
	// recording Forward and the Backward that consumes them, keeping the
	// training loop's per-step allocations flat without giving up
	// reentrancy (sync.Pool is concurrency-safe).
	colPool sync.Pool
}

var _ Layer = (*Conv2D)(nil)

// conv2DCache holds the per-image im2col matrices Backward reuses.
type conv2DCache struct {
	cols []*tensor.Tensor
}

func (c *Conv2D) getCol(spatial, k int) *tensor.Tensor {
	if t, ok := c.colPool.Get().(*tensor.Tensor); ok {
		return t
	}
	return tensor.New(spatial, k)
}

// NewConv2D constructs a convolution layer. It panics on impossible
// geometry, which indicates a programming error in architecture builders.
func NewConv2D(dims tensor.ConvDims, r *rng.RNG) *Conv2D {
	if err := dims.Resolve(); err != nil {
		panic(fmt.Sprintf("nn: %v", err))
	}
	k := dims.InC * dims.KH * dims.KW
	c := &Conv2D{
		Dims: dims,
		W:    &Param{Name: "conv.w", Value: tensor.New(dims.OutC, k), Grad: tensor.New(dims.OutC, k)},
		B:    &Param{Name: "conv.b", Value: tensor.New(1, dims.OutC), Grad: tensor.New(1, dims.OutC)},
	}
	heInit(c.W.Value.Data, k, r)
	return c
}

// forward runs the convolution. When cols is non-nil it receives one im2col
// matrix per image (kept for Backward); otherwise scratch matrices are
// recycled through the layer's pool.
//
// The batch is partitioned across the shared tensor worker pool: every image
// writes a disjoint slice of the output (and its own cols entry), so chunks
// are race-free, and each chunk carries its own scratch tensors. The nested
// Im2Col/MatMul calls dispatch onto the same shared pool, which bounds total
// parallelism at the pool size instead of multiplying batch-level by
// kernel-level workers.
func (c *Conv2D) forward(x *tensor.Tensor, cols []*tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: Conv2D expects [N,C,H,W], got shape %v", x.Shape()))
	}
	n := x.Dim(0)
	d := c.Dims
	k := d.InC * d.KH * d.KW
	spatial := d.OutH * d.OutW
	out := tensor.New(n, d.OutC, d.OutH, d.OutW)
	img := d.InC * d.InH * d.InW
	runImages := func(lo, hi int) {
		tmp := tensor.New(spatial, d.OutC)
		var scratch *tensor.Tensor
		if cols == nil {
			scratch = c.getCol(spatial, k)
			defer c.colPool.Put(scratch)
		}
		for i := lo; i < hi; i++ {
			col := scratch
			if cols != nil {
				cols[i] = c.getCol(spatial, k)
				col = cols[i]
			}
			tensor.Im2Col(x.Data[i*img:(i+1)*img], d, col)
			// tmp[pos, oc] = col[pos, :] · W[oc, :]
			if c.Q != nil {
				tensor.QMatMulInto(tmp, col, c.Q) // Q holds Wᵀ [k, OutC]
			} else {
				tensor.MatMulTransBInto(tmp, col, c.W.Value)
			}
			// transpose into [OutC, OutH*OutW] layout of the output image
			dst := out.Data[i*d.OutC*spatial : (i+1)*d.OutC*spatial]
			for pos := 0; pos < spatial; pos++ {
				row := tmp.Row(pos)
				for oc, v := range row {
					dst[oc*spatial+pos] = v + c.B.Value.Data[oc]
				}
			}
		}
	}
	// Per-image cost ≈ spatial*k*OutC multiplies; stay serial when the whole
	// batch is cheaper than a few goroutine handoffs.
	if n == 1 || !tensor.WorthParallel(n*spatial*k*d.OutC) {
		runImages(0, n)
	} else {
		tensor.ParallelFor(n, 1, runImages)
	}
	return out
}

func (c *Conv2D) Infer(x *tensor.Tensor) *tensor.Tensor {
	return c.forward(x, nil)
}

func (c *Conv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	cc := &conv2DCache{cols: make([]*tensor.Tensor, x.Dim(0))}
	return c.forward(x, cc.cols), cc
}

func (c *Conv2D) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	if c.Q != nil {
		panic("nn: Backward on a quantized Conv2D layer (quantized models are inference-only)")
	}
	cc := cache.(*conv2DCache)
	n := grad.Dim(0)
	d := c.Dims
	k := d.InC * d.KH * d.KW
	spatial := d.OutH * d.OutW
	img := d.InC * d.InH * d.InW
	dx := tensor.New(n, d.InC, d.InH, d.InW)
	gcols := tensor.New(spatial, d.OutC) // per-image gradient in [pos, oc] layout
	dcols := tensor.New(spatial, k)
	dW := tensor.New(d.OutC, k)
	for i := 0; i < n; i++ {
		src := grad.Data[i*d.OutC*spatial : (i+1)*d.OutC*spatial]
		for oc := 0; oc < d.OutC; oc++ {
			for pos := 0; pos < spatial; pos++ {
				v := src[oc*spatial+pos]
				gcols.Data[pos*d.OutC+oc] = v
				c.B.Grad.Data[oc] += v
			}
		}
		// dW += gcolsᵀ @ cols  ([OutC, spatial] @ [spatial, k])
		tensor.MatMulTransAInto(dW, gcols, cc.cols[i])
		c.colPool.Put(cc.cols[i])
		cc.cols[i] = nil
		tensor.AXPY(1, dW, c.W.Grad)
		// dcols = gcols @ W  ([spatial, OutC] @ [OutC, k])
		tensor.MatMulInto(dcols, gcols, c.W.Value)
		tensor.Col2Im(dcols, d, dx.Data[i*img:(i+1)*img])
	}
	return dx
}

func (c *Conv2D) Params() []*Param {
	if c.Q != nil {
		return []*Param{c.B} // W lives in Q; no trainable float64 weights
	}
	return []*Param{c.W, c.B}
}

// Flatten reshapes [N, C, H, W] to [N, C*H*W]; identity for 2-D inputs.
type Flatten struct{}

var _ Layer = (*Flatten)(nil)

func (f *Flatten) Infer(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() == 2 {
		return x
	}
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

func (f *Flatten) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	return f.Infer(x), x.Shape()
}

func (f *Flatten) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(cache.([]int)...)
}

func (f *Flatten) Params() []*Param { return nil }

// ToImage reshapes [N, F] into [N, C, H, W] so convolutional stacks can
// follow dense preprocessing (and so flat dataset vectors enter conv nets).
type ToImage struct {
	C, H, W int
}

var _ Layer = (*ToImage)(nil)

func (t *ToImage) Infer(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	return x.Reshape(n, t.C, t.H, t.W)
}

func (t *ToImage) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	return t.Infer(x), nil
}

func (t *ToImage) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	return grad.Reshape(n, grad.Len()/n)
}

func (t *ToImage) Params() []*Param { return nil }

// GlobalAvgPool reduces [N, C, H, W] to [N, C].
type GlobalAvgPool struct{}

var _ Layer = (*GlobalAvgPool)(nil)

// avgPoolCache records the pooled spatial extent for the backward pass.
type avgPoolCache struct {
	h, w int
}

func (g *GlobalAvgPool) Infer(x *tensor.Tensor) *tensor.Tensor {
	return tensor.AvgPool2D(x)
}

func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	return tensor.AvgPool2D(x), &avgPoolCache{h: x.Dim(2), w: x.Dim(3)}
}

func (g *GlobalAvgPool) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	cc := cache.(*avgPoolCache)
	return tensor.AvgPool2DBackward(grad, cc.h, cc.w)
}

func (g *GlobalAvgPool) Params() []*Param { return nil }
