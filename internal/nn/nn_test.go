package nn

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// numericGrad estimates dLoss/dTheta for one scalar via central differences.
func numericGrad(f func() float64, theta *float64) float64 {
	const h = 1e-5
	orig := *theta
	*theta = orig + h
	lp := f()
	*theta = orig - h
	lm := f()
	*theta = orig
	return (lp - lm) / (2 * h)
}

// checkLayerGradients validates both parameter and input gradients of a
// layer against numeric differentiation of a quadratic loss.
func checkLayerGradients(t *testing.T, l Layer, inShape []int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	x := tensor.New(inShape...)
	r.Gaussian(x.Data, 0, 1)
	// Loss = 0.5 * sum(out^2) so dLoss/dOut = out.
	loss := func() float64 {
		out := l.Infer(x)
		s := 0.0
		for _, v := range out.Data {
			s += 0.5 * v * v
		}
		return s
	}
	out, cache := l.Forward(x, false)
	for _, p := range l.Params() {
		p.Grad.Zero()
	}
	dx := l.Backward(cache, out.Clone())

	// input gradient
	for i := 0; i < x.Len(); i += maxInt(1, x.Len()/7) {
		want := numericGrad(loss, &x.Data[i])
		if math.Abs(want-dx.Data[i]) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, dx.Data[i], want)
		}
	}
	// parameter gradients
	for pi, p := range l.Params() {
		for i := 0; i < p.Value.Len(); i += maxInt(1, p.Value.Len()/7) {
			want := numericGrad(loss, &p.Value.Data[i])
			got := p.Grad.Data[i]
			if math.Abs(want-got) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %d grad[%d]: analytic %v vs numeric %v", pi, i, got, want)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestDenseGradients(t *testing.T) {
	checkLayerGradients(t, NewDense(5, 4, rng.New(1)), []int{3, 5}, 2)
}

func TestReLUGradients(t *testing.T) {
	checkLayerGradients(t, &ReLU{}, []int{4, 6}, 3)
}

func TestTanhGradients(t *testing.T) {
	checkLayerGradients(t, &Tanh{}, []int{4, 6}, 4)
}

func TestLayerNormGradients(t *testing.T) {
	checkLayerGradients(t, NewLayerNorm(6), []int{3, 6}, 5)
}

func TestResidualGradients(t *testing.T) {
	body := []Layer{NewDense(5, 5, rng.New(6)), &Tanh{}, NewDense(5, 5, rng.New(7))}
	checkLayerGradients(t, &Residual{Body: body}, []int{2, 5}, 8)
}

func TestConv2DGradients(t *testing.T) {
	dims := tensor.ConvDims{InC: 2, InH: 5, InW: 5, OutC: 3, KH: 3, KW: 3, Stride: 2, Pad: 1}
	checkLayerGradients(t, NewConv2D(dims, rng.New(9)), []int{2, 2, 5, 5}, 10)
}

func TestDropoutInferenceIdentity(t *testing.T) {
	d := NewDropout(0.5, rng.New(1))
	x := tensor.New(4, 8)
	rng.New(2).Gaussian(x.Data, 0, 1)
	out := d.Infer(x)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatal("dropout must be identity at inference")
		}
	}
	// the recording pass in eval mode is identity too
	evalOut, cache := d.Forward(x, false)
	if cache != nil {
		t.Fatal("eval-mode dropout must not record a mask")
	}
	for i := range x.Data {
		if evalOut.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
}

func TestDropoutTrainingZeroesAndRescales(t *testing.T) {
	d := NewDropout(0.5, rng.New(3))
	x := tensor.New(1, 10000)
	x.Fill(1)
	out, cache := d.Forward(x, true)
	zeros := 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			// kept value rescaled by 1/(1-0.5)
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	frac := float64(zeros) / float64(x.Len())
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("dropout zeroed %.3f, expected ~0.5", frac)
	}
	// backward must use the same mask
	g := tensor.New(1, 10000)
	g.Fill(1)
	dx := d.Backward(cache, g)
	for i := range dx.Data {
		if (out.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("dropout backward mask differs from forward")
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	x := tensor.New(5, 7)
	rng.New(4).Gaussian(x.Data, 0, 5)
	SoftmaxInPlace(x)
	for i := 0; i < 5; i++ {
		s := 0.0
		for _, v := range x.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v outside [0,1]", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("softmax row sums to %v", s)
		}
	}
}

func TestSoftmaxStableUnderLargeLogits(t *testing.T) {
	x := tensor.FromSlice([]float64{1000, 1001, 999}, 1, 3)
	SoftmaxInPlace(x)
	for _, v := range x.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflowed on large logits")
		}
	}
}

func TestCrossEntropyMatchesManual(t *testing.T) {
	logits := tensor.FromSlice([]float64{2, 0, -1, 0, 3, 0}, 2, 3)
	loss, grad := CrossEntropy(logits, []int{0, 1})
	// manual computation
	p0 := math.Exp(2.0) / (math.Exp(2.0) + 1 + math.Exp(-1.0))
	p1 := math.Exp(3.0) / (1 + math.Exp(3.0) + 1)
	want := -(math.Log(p0) + math.Log(p1)) / 2
	if math.Abs(loss-want) > 1e-9 {
		t.Fatalf("loss %v, want %v", loss, want)
	}
	// gradient at the true class is (p-1)/N
	if math.Abs(grad.At(0, 0)-(p0-1)/2) > 1e-9 {
		t.Fatalf("grad[0,0] = %v, want %v", grad.At(0, 0), (p0-1)/2)
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	r := rng.New(11)
	logits := tensor.New(3, 4)
	r.Gaussian(logits.Data, 0, 1)
	labels := []int{1, 3, 0}
	_, grad := CrossEntropy(logits, labels)
	for i := range logits.Data {
		f := func() float64 {
			l, _ := CrossEntropy(logits, labels)
			return l
		}
		want := numericGrad(f, &logits.Data[i])
		if math.Abs(want-grad.Data[i]) > 1e-6 {
			t.Fatalf("CE grad[%d] analytic %v numeric %v", i, grad.Data[i], want)
		}
	}
}

func TestCrossEntropyPanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	CrossEntropy(tensor.New(1, 3), []int{5})
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{1, 2, 0, 5, 1, 1}, 2, 3)
	if got := Accuracy(logits, []int{1, 0}); got != 1 {
		t.Fatalf("Accuracy = %v, want 1", got)
	}
	if got := Accuracy(logits, []int{0, 0}); got != 0.5 {
		t.Fatalf("Accuracy = %v, want 0.5", got)
	}
}

func buildAll(t *testing.T) []*Model {
	t.Helper()
	var models []*Model
	for _, arch := range []Arch{ArchResNetLite, ArchMobileNetLite, ArchVitLite, ArchConvLite} {
		m, err := Build(ArchConfig{Arch: arch, C: 2, H: 6, W: 6, NumClasses: 4, Hidden: 16, Blocks: 2}, rng.New(42))
		if err != nil {
			t.Fatalf("Build(%s): %v", arch, err)
		}
		models = append(models, m)
	}
	return models
}

func TestBuildArchitectures(t *testing.T) {
	for _, m := range buildAll(t) {
		x := tensor.New(3, m.InputDim)
		rng.New(1).Gaussian(x.Data, 0, 1)
		logits := m.Infer(x)
		if logits.Dim(0) != 3 || logits.Dim(1) != 4 {
			t.Fatalf("%s: logits shape %v", m.Arch, logits.Shape())
		}
		if m.ParamCount() == 0 {
			t.Fatalf("%s: no parameters", m.Arch)
		}
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(ArchConfig{Arch: "nope", C: 1, H: 4, W: 4, NumClasses: 2}, rng.New(1)); err == nil {
		t.Fatal("expected error for unknown arch")
	}
	if _, err := Build(ArchConfig{Arch: ArchResNetLite, C: 0, H: 4, W: 4, NumClasses: 2}, rng.New(1)); err == nil {
		t.Fatal("expected error for bad geometry")
	}
	if _, err := Build(ArchConfig{Arch: ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: 1}, rng.New(1)); err == nil {
		t.Fatal("expected error for single class")
	}
}

func TestModelInputGradientFlows(t *testing.T) {
	// VP training depends on nonzero input gradients through the whole model.
	m, err := Build(ArchConfig{Arch: ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: 3, Hidden: 8}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 16)
	rng.New(6).Gaussian(x.Data, 0, 1)
	pass := m.NewPass()
	defer pass.Release()
	logits := pass.Forward(x, true)
	_, grad := CrossEntropy(logits, []int{0, 2})
	dx := pass.Backward(grad)
	if dx.Len() != x.Len() {
		t.Fatalf("input grad shape %v", dx.Shape())
	}
	if dx.Norm2() == 0 {
		t.Fatal("input gradient is identically zero")
	}
}

func TestFeaturesShape(t *testing.T) {
	m, err := Build(ArchConfig{Arch: ArchMobileNetLite, C: 1, H: 4, W: 4, NumClasses: 3, Hidden: 8}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(5, 16)
	f := m.Features(x)
	if f.Dim(0) != 5 || f.Dim(1) != 8 {
		t.Fatalf("Features shape %v, want [5 8]", f.Shape())
	}
}

func TestDifferentSeedsDifferentWeights(t *testing.T) {
	cfg := ArchConfig{Arch: ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: 3, Hidden: 8}
	m1, _ := Build(cfg, rng.New(1))
	m2, _ := Build(cfg, rng.New(2))
	p1 := m1.Params()[0].Value.Data
	p2 := m2.Params()[0].Value.Data
	same := true
	for i := range p1 {
		if p1[i] != p2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical initializations")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, m := range buildAll(t) {
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("%s: Save: %v", m.Arch, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: Load: %v", m.Arch, err)
		}
		if loaded.Arch != m.Arch || loaded.InputDim != m.InputDim || loaded.NumClasses != m.NumClasses {
			t.Fatalf("%s: metadata mismatch", m.Arch)
		}
		x := tensor.New(4, m.InputDim)
		rng.New(3).Gaussian(x.Data, 0, 1)
		a := m.Infer(x)
		b := loaded.Infer(x)
		for i := range a.Data {
			if math.Abs(a.Data[i]-b.Data[i]) > 1e-12 {
				t.Fatalf("%s: loaded model diverges at output %d", m.Arch, i)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestSaveLoadFile(t *testing.T) {
	m, err := Build(ArchConfig{Arch: ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: 2, Hidden: 8}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.bin"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ParamCount() != m.ParamCount() {
		t.Fatal("param count changed across file round trip")
	}
}

func TestInferMatchesRecordingForward(t *testing.T) {
	for _, m := range buildAll(t) {
		x := tensor.New(3, m.InputDim)
		rng.New(7).Gaussian(x.Data, 0, 1)
		pure := m.Infer(x)
		pass := m.NewPass()
		recorded := pass.Forward(x, false)
		pass.Release()
		for i := range pure.Data {
			if pure.Data[i] != recorded.Data[i] {
				t.Fatalf("%s: Infer and Forward diverge at %d", m.Arch, i)
			}
		}
	}
}

func TestConcurrentInferIsDeterministic(t *testing.T) {
	// The whole point of the stateless inference path: many goroutines
	// hammering one frozen model must all see the serial answer (run under
	// -race to catch cache sharing).
	for _, m := range buildAll(t) {
		x := tensor.New(4, m.InputDim)
		rng.New(8).Gaussian(x.Data, 0, 1)
		want := m.Predict(x.Clone())
		var wg sync.WaitGroup
		const goroutines = 8
		outs := make([]*tensor.Tensor, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				outs[g] = m.Predict(x.Clone())
			}(g)
		}
		wg.Wait()
		for g, got := range outs {
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s: goroutine %d diverges at %d", m.Arch, g, i)
				}
			}
		}
	}
}

func TestConcurrentPassesShareNoState(t *testing.T) {
	// Two training-mode passes over one model (dropout on) must be
	// memory-safe; gradient steps are synchronized by running Backward
	// under a mutex, mirroring a data-parallel trainer.
	m, err := Build(ArchConfig{
		Arch: ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: 3, Hidden: 8, Dropout: 0.3,
	}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := tensor.New(2, 16)
			rng.New(uint64(g)).Gaussian(x.Data, 0, 1)
			pass := m.NewPass()
			defer pass.Release()
			logits := pass.Forward(x, true)
			_, grad := CrossEntropy(logits, []int{0, 1})
			mu.Lock()
			pass.Backward(grad)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
}

func TestPassBackwardWithoutForwardPanics(t *testing.T) {
	m, err := Build(ArchConfig{Arch: ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: 2, Hidden: 8}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Backward without Forward")
		}
	}()
	m.NewPass().Backward(tensor.New(1, 2))
}

func TestValidateChecksHead(t *testing.T) {
	m := &Model{InputDim: 4, NumClasses: 3, Layers: []Layer{&ReLU{}}}
	if err := m.Validate(); err == nil {
		t.Fatal("expected validation failure for non-Dense head")
	}
	m2 := &Model{InputDim: 4, NumClasses: 3, Layers: []Layer{NewDense(4, 2, rng.New(1))}}
	if err := m2.Validate(); err == nil {
		t.Fatal("expected validation failure for wrong head width")
	}
}
