package nn

import (
	"bprom/internal/tensor"
)

// Quantized inference. Model.Quantize converts the weight matrices of the
// matmul-bound layers (Dense, Conv2D) to the tensor package's per-channel
// int8 representation and drops their float64 Value/Grad tensors, shrinking
// the resident model several-fold and routing Infer through the int8 SWAR
// kernels. Quantization is derived state: it is never serialized (Save
// refuses), and the fp-exact path — simply not calling Quantize — remains
// the default everywhere bit-reproducibility matters (cmd/tables, the
// experiment harness, golden tests).
//
// A quantized model is inference-only: Infer/Predict/PredictClasses/
// Features stay pure and concurrent as before, but NewPass and the layer
// Backward methods panic, and Save returns an error. Biases and every other
// layer type (LayerNorm, activations, pooling) stay float64 — they are a
// vanishing fraction of both the bytes and the work.

// Precision labels for a model's weight representation, as advertised by
// the MLaaS model info endpoint.
const (
	PrecisionFP64 = "fp64"
	PrecisionInt8 = "int8"
)

// DefaultQuantMinWeights is the layer-size floor below which Quantize
// leaves a weight matrix in float64: tiny layers contribute nothing to
// bytes or throughput, but their quantization error is proportionally
// largest (per-channel ranges estimated from few values).
const DefaultQuantMinWeights = 1024

// walkLayers visits every layer in the stack, descending into Residual
// bodies.
func walkLayers(layers []Layer, f func(Layer)) {
	for _, l := range layers {
		if r, ok := l.(*Residual); ok {
			walkLayers(r.Body, f)
			continue
		}
		f(l)
	}
}

// Quantize converts every Dense and Conv2D layer holding at least
// minWeights weight scalars to per-channel int8 (minWeights 0 means
// DefaultQuantMinWeights; pass a negative value to quantize every layer).
// It returns the number of layers converted. If any layer converts, the
// model becomes inference-only; smaller layers and biases stay float64.
// Quantize is idempotent — already-converted layers are skipped.
func (m *Model) Quantize(minWeights int) int {
	if minWeights == 0 {
		minWeights = DefaultQuantMinWeights
	}
	converted := 0
	walkLayers(m.Layers, func(l Layer) {
		switch v := l.(type) {
		case *Dense:
			if v.Q != nil || v.W.Value == nil || v.W.Value.Len() < minWeights {
				return
			}
			v.Q = tensor.QuantizePerCol(v.W.Value)
			v.W.Value, v.W.Grad = nil, nil
			converted++
		case *Conv2D:
			if v.Q != nil || v.W.Value == nil || v.W.Value.Len() < minWeights {
				return
			}
			// Conv weights are [OutC, k]; the forward product col @ Wᵀ maps
			// onto the fast per-column kernel by quantizing the transpose
			// [k, OutC] — output channels stay the quantization channels.
			v.Q = tensor.QuantizePerCol(v.W.Value.Transpose())
			v.W.Value, v.W.Grad = nil, nil
			converted++
		}
	})
	if converted > 0 {
		m.quantized = true
	}
	return converted
}

// Quantized reports whether any layer has been converted to int8 (making
// the model inference-only).
func (m *Model) Quantized() bool { return m.quantized }

// Precision returns the label describing the model's weight representation:
// PrecisionInt8 once Quantize has converted at least one layer,
// PrecisionFP64 otherwise.
func (m *Model) Precision() string {
	if m.quantized {
		return PrecisionInt8
	}
	return PrecisionFP64
}

// WeightBytes returns the resident bytes held by parameter tensors:
// float64 Values and Grads at 8 bytes per scalar plus the quantized
// representations' actual footprint. This is the number the MLaaS registry
// charges against hot-set residency.
func (m *Model) WeightBytes() int {
	bytes := 0
	for _, p := range m.Params() {
		if p.Value != nil {
			bytes += 8 * p.Value.Len()
		}
		if p.Grad != nil {
			bytes += 8 * p.Grad.Len()
		}
	}
	walkLayers(m.Layers, func(l Layer) {
		switch v := l.(type) {
		case *Dense:
			if v.Q != nil {
				bytes += v.Q.Bytes()
			}
		case *Conv2D:
			if v.Q != nil {
				bytes += v.Q.Bytes()
			}
		}
	})
	return bytes
}

// quantWeightCount counts weight scalars held in int8 form, so ParamCount
// stays the architecture's parameter count regardless of representation.
func (m *Model) quantWeightCount() int {
	n := 0
	walkLayers(m.Layers, func(l Layer) {
		switch v := l.(type) {
		case *Dense:
			if v.Q != nil {
				s := v.Q.Shape()
				n += s[0] * s[1]
			}
		case *Conv2D:
			if v.Q != nil {
				s := v.Q.Shape()
				n += s[0] * s[1]
			}
		}
	})
	return n
}
