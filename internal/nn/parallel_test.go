package nn

import (
	"sync"
	"testing"

	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Concurrency harness for the shared tensor pool: many goroutines hammer one
// frozen model through Model.Predict while the parallel kernels fan row
// blocks onto the same pool underneath. CI runs this under -race, which is
// the point — any write overlap between chunks, any layer-state mutation on
// the inference path, or any pool-queue misuse surfaces here.

func raceModel(t *testing.T) *Model {
	t.Helper()
	m, err := Build(ArchConfig{
		Arch: ArchResNetLite, C: 3, H: 12, W: 12, NumClasses: 10, Hidden: 32,
	}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestConcurrentPredictSharedPool: N goroutines × several iterations each,
// one shared pool, results bitwise equal to the single-caller baseline.
func TestConcurrentPredictSharedPool(t *testing.T) {
	// Pin the pool above 1 so the parallel dispatch path runs even on
	// single-core machines (where DefaultWorkers would make it inline).
	tensor.SetWorkers(4)
	defer tensor.SetWorkers(0)
	m := raceModel(t)
	x := tensor.New(8, m.InputDim)
	rng.New(23).Uniform(x.Data, 0, 1)
	want := m.Predict(x.Clone())

	const goroutines, iters = 16, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := x.Clone()
			for it := 0; it < iters; it++ {
				got := m.Predict(in)
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						t.Errorf("concurrent Predict diverged at element %d: got %v, want %v",
							i, got.Data[i], want.Data[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestPredictSerialPoolMatchesParallel pins the shared pool to one worker —
// the serial degradation path — and to a forced width, and demands
// bitwise-identical predictions: kernels partition output rows, so pool
// width must never leak into results.
func TestPredictSerialPoolMatchesParallel(t *testing.T) {
	defer tensor.SetWorkers(0)
	m := raceModel(t)
	x := tensor.New(6, m.InputDim)
	rng.New(29).Uniform(x.Data, 0, 1)

	tensor.SetWorkers(1)
	if tensor.Workers() != 1 {
		t.Fatalf("Workers = %d after SetWorkers(1)", tensor.Workers())
	}
	serial := m.Predict(x.Clone())

	tensor.SetWorkers(8)
	parallel := m.Predict(x.Clone())

	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("pool width changed Predict output at element %d: serial %v, parallel %v",
				i, serial.Data[i], parallel.Data[i])
		}
	}
}

// TestConcurrentTrainingPasses: concurrent recording Forwards on one model
// (each with its own Pass) must stay memory-safe while the batch-parallel
// Conv2D forward shares the pool. Gradient work stays single-flight per the
// package contract, so only Forward runs concurrently here.
func TestConcurrentTrainingPasses(t *testing.T) {
	tensor.SetWorkers(4)
	defer tensor.SetWorkers(0)
	m := raceModel(t)
	x := tensor.New(4, m.InputDim)
	rng.New(31).Uniform(x.Data, 0, 1)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.NewPass()
			defer p.Release()
			logits := p.Forward(x.Clone(), false)
			if logits.Dim(0) != 4 || logits.Dim(1) != m.NumClasses {
				t.Errorf("Forward shape %v", logits.Shape())
			}
		}()
	}
	wg.Wait()
}
