package nn

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
)

// Checkpoint metadata. A saved model is two files: the binary weights
// (Save/Load, see serialize.go) and an optional JSON sidecar next to it
// carrying human-facing metadata — a display name, provenance notes, and
// training metrics — that the binary format deliberately does not encode.
// The MLaaS registry scans checkpoint directories with ReadHeaderFile (a
// few dozen bytes per model, no weight I/O) and enriches listings from the
// sidecars, so a model zoo can be enumerated without loading a single
// weight tensor.

// Header is the fixed prelude of the binary model format: everything Save
// writes before the layer list. It identifies a checkpoint — architecture
// family, input width, label-space size — at the cost of reading ~40 bytes.
type Header struct {
	// Version is the on-disk format version (currently 1).
	Version uint32
	// Arch is the architecture family the model was built from.
	Arch Arch
	// InputDim is the flattened per-sample input width.
	InputDim int
	// NumClasses is the label-space size.
	NumClasses int
}

// ReadHeader reads the format prelude from r without touching the layer
// list or weights. The reader is left positioned at the first layer tag.
func ReadHeader(r io.Reader) (Header, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return readHeader(br)
}

// ReadHeaderFile reads just the checkpoint prelude from path. It is the
// cheap way to identify a model file: no weights are read.
func ReadHeaderFile(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, fmt.Errorf("nn: open %s: %w", path, err)
	}
	defer f.Close()
	h, err := ReadHeader(f)
	if err != nil {
		return Header{}, fmt.Errorf("nn: %s: %w", path, err)
	}
	return h, nil
}

func readHeader(br *bufio.Reader) (Header, error) {
	magic := make([]byte, len(formatMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return Header{}, fmt.Errorf("nn: read magic: %w", err)
	}
	if string(magic) != formatMagic {
		return Header{}, fmt.Errorf("nn: bad magic %q", magic)
	}
	ver, err := readU32(br)
	if err != nil {
		return Header{}, err
	}
	if ver != formatVersion {
		return Header{}, fmt.Errorf("nn: unsupported format version %d", ver)
	}
	arch, err := readString(br)
	if err != nil {
		return Header{}, err
	}
	inDim, err := readU32(br)
	if err != nil {
		return Header{}, err
	}
	classes, err := readU32(br)
	if err != nil {
		return Header{}, err
	}
	return Header{Version: ver, Arch: Arch(arch), InputDim: int(inDim), NumClasses: int(classes)}, nil
}

// Sidecar is the JSON metadata file written next to a checkpoint
// (<model>.bin -> <model>.bin.json). It duplicates the binary header's
// shape fields for grep-ability and adds the free-form fields an MLaaS
// listing wants to show: a display name, a provenance note (e.g. which
// backdoor attack poisoned the training set), and training metrics.
type Sidecar struct {
	// Name is a human-facing display name for model listings.
	Name string `json:"name,omitempty"`
	// Note records provenance: how the checkpoint was produced.
	Note string `json:"note,omitempty"`
	// Arch mirrors the binary header's architecture family.
	Arch string `json:"arch,omitempty"`
	// InputDim mirrors the binary header's flattened input width.
	InputDim int `json:"input_dim,omitempty"`
	// NumClasses mirrors the binary header's label-space size.
	NumClasses int `json:"classes,omitempty"`
	// Params is the trainable-scalar count of the saved model.
	Params int `json:"params,omitempty"`
	// Precision optionally overrides the registry's serving precision for
	// this model: "int8" forces quantize-on-load, "fp64" forces the exact
	// float64 path even when the registry default is quantized. Empty means
	// follow the registry default. The checkpoint itself is always float64.
	Precision string `json:"precision,omitempty"`
	// Screen optionally overrides a serving registry's inline request
	// screening for this model: "off" opts a model out (e.g. a calibration
	// model whose inputs are legitimately prompt-like), "on" asserts the
	// model must be screened (the registry scan fails when it cannot be).
	// Empty means follow the registry default — screen whenever a
	// compatible screener is configured.
	Screen string `json:"screen,omitempty"`
	// Metrics holds free-form training/evaluation numbers (e.g. "acc",
	// "asr" for the attack zoo's checkpoints).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// SidecarFor assembles a Sidecar describing m.
func SidecarFor(m *Model, name, note string) Sidecar {
	return Sidecar{
		Name:       name,
		Note:       note,
		Arch:       string(m.Arch),
		InputDim:   m.InputDim,
		NumClasses: m.NumClasses,
		Params:     m.ParamCount(),
	}
}

// SidecarPath returns the sidecar path for a model file path.
func SidecarPath(modelPath string) string { return modelPath + ".json" }

// WriteFile writes the sidecar next to the model file at modelPath.
func (s Sidecar) WriteFile(modelPath string) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("nn: encode sidecar: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(SidecarPath(modelPath), buf, 0o644); err != nil {
		return fmt.Errorf("nn: write sidecar: %w", err)
	}
	return nil
}

// ReadSidecar loads the sidecar for the model file at modelPath. A missing
// sidecar is not an error: it returns ok=false (sidecars are optional — the
// binary header alone identifies a checkpoint).
func ReadSidecar(modelPath string) (s Sidecar, ok bool, err error) {
	buf, err := os.ReadFile(SidecarPath(modelPath))
	if errors.Is(err, fs.ErrNotExist) {
		return Sidecar{}, false, nil
	}
	if err != nil {
		return Sidecar{}, false, fmt.Errorf("nn: read sidecar: %w", err)
	}
	if err := json.Unmarshal(buf, &s); err != nil {
		return Sidecar{}, false, fmt.Errorf("nn: decode sidecar %s: %w", SidecarPath(modelPath), err)
	}
	return s, true, nil
}
