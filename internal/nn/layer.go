// Package nn implements the from-scratch neural-network substrate: layers
// with forward/backward passes, softmax cross-entropy, weight initialization,
// the three architecture families used in the paper's experiments
// (ResNetLite, MobileNetLite, VitLite — scaled-down analogues of ResNet18,
// MobileNetV2 and MobileViT/Swin), and binary model serialization.
//
// Two properties matter for the BPROM reproduction beyond ordinary training:
//
//   - Backward propagates gradients all the way to the *input*, because
//     visual-prompt training optimizes pixels of the prompt while the model
//     stays frozen.
//   - Models expose penultimate-layer Features, because several baseline
//     defenses (AC, SS, SCAn, SPECTRE) cluster latent representations.
//
// Concurrency model: the inference path (Infer, Predict, PredictClasses,
// Features) is pure — it never mutates layer state — so a frozen model
// serves any number of concurrent callers. The training path records
// per-call activations into a caller-owned Pass workspace; concurrent
// passes over one model are memory-safe, but concurrent Backward calls
// race on the shared parameter-gradient accumulators, so gradient work
// for a single model should stay single-flight (or synchronize steps).
//
// Intra-op parallelism comes from the tensor package's shared worker pool:
// matmuls, im2col and the Conv2D batch loop all partition row blocks onto
// one bounded pool (sized by GOMAXPROCS, see tensor.SetWorkers), so any
// number of concurrent Infer/Predict callers compose with the parallel
// kernels without oversubscribing the machine. Callers add concurrency for
// throughput (many models, many requests), never per-op speed — the kernels
// already use every core.
package nn

import (
	"fmt"
	"sync"

	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// Cache carries whatever one layer recorded during Forward for use by the
// matching Backward. Values are layer-specific and opaque to callers; a nil
// Cache is valid for layers that need nothing.
type Cache any

// Layer is a differentiable module. Infer is the pure inference pass;
// Forward/Backward form the recording pass, with all per-call state flowing
// through the returned Cache so one Layer instance serves concurrent calls.
type Layer interface {
	// Infer maps a batch to its output without recording anything and
	// without mutating the layer. Training-only behaviour (dropout) is off.
	Infer(x *tensor.Tensor) *tensor.Tensor
	// Forward maps a batch to its output and returns the cache Backward
	// needs. train toggles training-only behaviour (dropout).
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache)
	// Backward consumes the cache of the matching Forward, receives
	// dLoss/dOutput and returns dLoss/dInput, adding parameter gradients
	// into Params' Grad tensors.
	Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly none).
	Params() []*Param
}

// --- Dense -------------------------------------------------------------------

// Dense is a fully connected layer: y = xW + b for x of shape [N, In].
// When Q is non-nil the layer is quantized: W's float64 tensors are dropped
// (Value and Grad nil), Infer multiplies through the int8 kernel, and the
// layer is inference-only (Backward panics). See Model.Quantize.
type Dense struct {
	In, Out int
	W       *Param // [In, Out]; Value/Grad nil once quantized
	B       *Param // [1, Out]; always float64
	Q       *tensor.QTensor
}

var _ Layer = (*Dense)(nil)

// NewDense constructs a dense layer with He-initialized weights.
func NewDense(in, out int, r *rng.RNG) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   &Param{Name: "dense.w", Value: tensor.New(in, out), Grad: tensor.New(in, out)},
		B:   &Param{Name: "dense.b", Value: tensor.New(1, out), Grad: tensor.New(1, out)},
	}
	heInit(d.W.Value.Data, in, r)
	return d
}

func (d *Dense) Infer(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	out := tensor.New(n, d.Out)
	if d.Q != nil {
		tensor.QMatMulInto(out, x, d.Q)
	} else {
		tensor.MatMulInto(out, x, d.W.Value)
	}
	tensor.AddRowVecInto(out, out, d.B.Value.Data)
	return out
}

func (d *Dense) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	return d.Infer(x), x
}

func (d *Dense) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	if d.Q != nil {
		panic("nn: Backward on a quantized Dense layer (quantized models are inference-only)")
	}
	x := cache.(*tensor.Tensor)
	// dW += xᵀ grad ; db += column sums ; dx = grad Wᵀ
	dW := tensor.New(d.In, d.Out)
	tensor.MatMulTransAInto(dW, x, grad)
	tensor.AXPY(1, dW, d.W.Grad)
	sums := make([]float64, d.Out)
	tensor.ColSumsInto(sums, grad)
	for j, s := range sums {
		d.B.Grad.Data[j] += s
	}
	dx := tensor.New(grad.Dim(0), d.In)
	tensor.MatMulTransBInto(dx, grad, d.W.Value)
	return dx
}

func (d *Dense) Params() []*Param {
	if d.Q != nil {
		return []*Param{d.B} // W lives in Q; no trainable float64 weights
	}
	return []*Param{d.W, d.B}
}

// --- Activations ---------------------------------------------------------------

// ReLU is max(0, x).
type ReLU struct{}

var _ Layer = (*ReLU)(nil)

func (a *ReLU) Infer(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
		}
	}
	return out
}

func (a *ReLU) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	return a.Infer(x), x
}

func (a *ReLU) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	x := cache.(*tensor.Tensor)
	dx := grad.Clone()
	for i := range dx.Data {
		if x.Data[i] <= 0 {
			dx.Data[i] = 0
		}
	}
	return dx
}

func (a *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct{}

var _ Layer = (*Tanh)(nil)

func (a *Tanh) Infer(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	out.Apply(tanh)
	return out
}

func (a *Tanh) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	out := a.Infer(x)
	return out, out
}

func tanh(v float64) float64 {
	// math.Tanh is fine; inlined name keeps Apply call sites tidy.
	e2 := exp(2 * v)
	return (e2 - 1) / (e2 + 1)
}

func (a *Tanh) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	y := cache.(*tensor.Tensor)
	dx := grad.Clone()
	for i := range dx.Data {
		yv := y.Data[i]
		dx.Data[i] *= 1 - yv*yv
	}
	return dx
}

func (a *Tanh) Params() []*Param { return nil }

// --- Dropout -------------------------------------------------------------------

// Dropout zeroes a fraction Rate of activations during training and rescales
// the rest (inverted dropout). It is identity at inference time. The random
// stream is guarded by a mutex so concurrent training passes stay
// memory-safe (their mask draws interleave nondeterministically).
type Dropout struct {
	Rate float64

	mu  sync.Mutex
	rng *rng.RNG
}

var _ Layer = (*Dropout)(nil)

// NewDropout constructs a dropout layer with its own random stream.
func NewDropout(rate float64, r *rng.RNG) *Dropout {
	return &Dropout{Rate: rate, rng: r.Split("dropout")}
}

func (d *Dropout) Infer(x *tensor.Tensor) *tensor.Tensor { return x }

func (d *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	if !train || d.Rate <= 0 {
		return x, nil
	}
	out := x.Clone()
	mask := make([]float64, x.Len())
	keep := 1 - d.Rate
	inv := 1 / keep
	d.mu.Lock()
	for i := range mask {
		if d.rng.Float64() < keep {
			mask[i] = inv
		}
	}
	d.mu.Unlock()
	for i := range out.Data {
		out.Data[i] *= mask[i]
	}
	return out, mask
}

func (d *Dropout) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	if cache == nil {
		return grad
	}
	mask := cache.([]float64)
	dx := grad.Clone()
	for i := range dx.Data {
		dx.Data[i] *= mask[i]
	}
	return dx
}

func (d *Dropout) Params() []*Param { return nil }

// --- LayerNorm -------------------------------------------------------------------

// LayerNorm normalizes each row of an [N, F] batch to zero mean and unit
// variance, then applies a learned affine transform. It stabilizes the
// deeper VitLite stacks.
type LayerNorm struct {
	F       int
	Gamma   *Param // [1, F]
	Beta    *Param // [1, F]
	epsilon float64
}

var _ Layer = (*LayerNorm)(nil)

// layerNormCache records the normalized rows and per-row inverse stddev.
type layerNormCache struct {
	norm   *tensor.Tensor
	invStd []float64
}

// NewLayerNorm constructs a layer norm over feature width f.
func NewLayerNorm(f int) *LayerNorm {
	ln := &LayerNorm{
		F:       f,
		Gamma:   &Param{Name: "ln.gamma", Value: tensor.New(1, f), Grad: tensor.New(1, f)},
		Beta:    &Param{Name: "ln.beta", Value: tensor.New(1, f), Grad: tensor.New(1, f)},
		epsilon: 1e-5,
	}
	ln.Gamma.Value.Fill(1)
	return ln
}

// forward computes the output; when cc is non-nil it also records the
// normalized activations and inverse stddevs Backward needs.
func (l *LayerNorm) forward(x *tensor.Tensor, cc *layerNormCache) *tensor.Tensor {
	n := x.Dim(0)
	var norm *tensor.Tensor
	var invStd []float64
	if cc != nil {
		norm = tensor.New(n, l.F)
		invStd = make([]float64, n)
		cc.norm, cc.invStd = norm, invStd
	}
	out := tensor.New(n, l.F)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(l.F)
		varSum := 0.0
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		inv := 1 / sqrt(varSum/float64(l.F)+l.epsilon)
		or := out.Row(i)
		var nr []float64
		if norm != nil {
			invStd[i] = inv
			nr = norm.Row(i)
		}
		for j, v := range row {
			nv := (v - mean) * inv
			if nr != nil {
				nr[j] = nv
			}
			or[j] = nv*l.Gamma.Value.Data[j] + l.Beta.Value.Data[j]
		}
	}
	return out
}

func (l *LayerNorm) Infer(x *tensor.Tensor) *tensor.Tensor {
	return l.forward(x, nil)
}

func (l *LayerNorm) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	cc := &layerNormCache{}
	return l.forward(x, cc), cc
}

func (l *LayerNorm) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	cc := cache.(*layerNormCache)
	n := grad.Dim(0)
	dx := tensor.New(n, l.F)
	f := float64(l.F)
	for i := 0; i < n; i++ {
		g := grad.Row(i)
		nr := cc.norm.Row(i)
		// accumulate parameter grads
		var sumG, sumGN float64
		for j := 0; j < l.F; j++ {
			gg := g[j] * l.Gamma.Value.Data[j]
			l.Gamma.Grad.Data[j] += g[j] * nr[j]
			l.Beta.Grad.Data[j] += g[j]
			sumG += gg
			sumGN += gg * nr[j]
		}
		inv := cc.invStd[i]
		dr := dx.Row(i)
		for j := 0; j < l.F; j++ {
			gg := g[j] * l.Gamma.Value.Data[j]
			dr[j] = inv * (gg - sumG/f - nr[j]*sumGN/f)
		}
	}
	return dx
}

func (l *LayerNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// --- Residual -------------------------------------------------------------------

// Residual wraps a body computing y = x + body(x). Input and output shapes
// of the body must match — validated at Forward time.
type Residual struct {
	Body []Layer
}

var _ Layer = (*Residual)(nil)

func (r *Residual) Infer(x *tensor.Tensor) *tensor.Tensor {
	h := x
	for _, l := range r.Body {
		h = l.Infer(h)
	}
	return r.join(x, h)
}

func (r *Residual) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	caches := make([]Cache, len(r.Body))
	h := x
	for i, l := range r.Body {
		h, caches[i] = l.Forward(h, train)
	}
	return r.join(x, h), caches
}

func (r *Residual) join(x, h *tensor.Tensor) *tensor.Tensor {
	if !h.SameShape(x) {
		panic(fmt.Sprintf("nn: residual body changed shape %v -> %v", x.Shape(), h.Shape()))
	}
	out := tensor.New(x.Shape()...)
	tensor.AddInto(out, x, h)
	return out
}

func (r *Residual) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	caches := cache.([]Cache)
	g := grad
	for i := len(r.Body) - 1; i >= 0; i-- {
		g = r.Body[i].Backward(caches[i], g)
	}
	dx := grad.Clone()
	tensor.AddInto(dx, dx, g)
	return dx
}

func (r *Residual) Params() []*Param {
	var ps []*Param
	for _, l := range r.Body {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// --- helpers -------------------------------------------------------------------

func heInit(w []float64, fanIn int, r *rng.RNG) {
	std := sqrt(2 / float64(fanIn))
	r.Gaussian(w, 0, std)
}
