// Package nn implements the from-scratch neural-network substrate: layers
// with forward/backward passes, softmax cross-entropy, weight initialization,
// the three architecture families used in the paper's experiments
// (ResNetLite, MobileNetLite, VitLite — scaled-down analogues of ResNet18,
// MobileNetV2 and MobileViT/Swin), and binary model serialization.
//
// Two properties matter for the BPROM reproduction beyond ordinary training:
//
//   - Backward propagates gradients all the way to the *input*, because
//     visual-prompt training optimizes pixels of the prompt while the model
//     stays frozen.
//   - Models expose penultimate-layer Features, because several baseline
//     defenses (AC, SS, SCAn, SPECTRE) cluster latent representations.
package nn

import (
	"fmt"

	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// Layer is a differentiable module. Forward must be called before Backward;
// layers cache whatever they need for the backward pass, so a Layer instance
// must not be shared across concurrent forward passes.
type Layer interface {
	// Forward maps a batch to its output. train toggles training-only
	// behaviour (dropout).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward receives dLoss/dOutput and returns dLoss/dInput, adding
	// parameter gradients into Params' Grad tensors.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly none).
	Params() []*Param
}

// --- Dense -------------------------------------------------------------------

// Dense is a fully connected layer: y = xW + b for x of shape [N, In].
type Dense struct {
	In, Out int
	W       *Param // [In, Out]
	B       *Param // [1, Out]

	x *tensor.Tensor // cached input for backward
}

var _ Layer = (*Dense)(nil)

// NewDense constructs a dense layer with He-initialized weights.
func NewDense(in, out int, r *rng.RNG) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   &Param{Name: "dense.w", Value: tensor.New(in, out), Grad: tensor.New(in, out)},
		B:   &Param{Name: "dense.b", Value: tensor.New(1, out), Grad: tensor.New(1, out)},
	}
	heInit(d.W.Value.Data, in, r)
	return d
}

func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.x = x
	n := x.Dim(0)
	out := tensor.New(n, d.Out)
	tensor.MatMulInto(out, x, d.W.Value)
	tensor.AddRowVecInto(out, out, d.B.Value.Data)
	return out
}

func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW += xᵀ grad ; db += column sums ; dx = grad Wᵀ
	dW := tensor.New(d.In, d.Out)
	tensor.MatMulTransAInto(dW, d.x, grad)
	tensor.AXPY(1, dW, d.W.Grad)
	sums := make([]float64, d.Out)
	tensor.ColSumsInto(sums, grad)
	for j, s := range sums {
		d.B.Grad.Data[j] += s
	}
	dx := tensor.New(grad.Dim(0), d.In)
	tensor.MatMulTransBInto(dx, grad, d.W.Value)
	return dx
}

func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// --- Activations ---------------------------------------------------------------

// ReLU is max(0, x).
type ReLU struct {
	mask []bool
}

var _ Layer = (*ReLU)(nil)

func (a *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if cap(a.mask) < x.Len() {
		a.mask = make([]bool, x.Len())
	}
	a.mask = a.mask[:x.Len()]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			a.mask[i] = false
		} else {
			a.mask[i] = true
		}
	}
	return out
}

func (a *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := grad.Clone()
	for i := range dx.Data {
		if !a.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

func (a *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	y *tensor.Tensor
}

var _ Layer = (*Tanh)(nil)

func (a *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	out.Apply(tanh)
	a.y = out
	return out
}

func tanh(v float64) float64 {
	// math.Tanh is fine; inlined name keeps Apply call sites tidy.
	e2 := exp(2 * v)
	return (e2 - 1) / (e2 + 1)
}

func (a *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := grad.Clone()
	for i := range dx.Data {
		y := a.y.Data[i]
		dx.Data[i] *= 1 - y*y
	}
	return dx
}

func (a *Tanh) Params() []*Param { return nil }

// --- Dropout -------------------------------------------------------------------

// Dropout zeroes a fraction Rate of activations during training and rescales
// the rest (inverted dropout). It is identity at inference time.
type Dropout struct {
	Rate float64
	rng  *rng.RNG
	mask []float64
}

var _ Layer = (*Dropout)(nil)

// NewDropout constructs a dropout layer with its own random stream.
func NewDropout(rate float64, r *rng.RNG) *Dropout {
	return &Dropout{Rate: rate, rng: r.Split("dropout")}
}

func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate <= 0 {
		d.mask = nil
		return x
	}
	out := x.Clone()
	if cap(d.mask) < x.Len() {
		d.mask = make([]float64, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	keep := 1 - d.Rate
	inv := 1 / keep
	for i := range out.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = inv
			out.Data[i] *= inv
		} else {
			d.mask[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	dx := grad.Clone()
	for i := range dx.Data {
		dx.Data[i] *= d.mask[i]
	}
	return dx
}

func (d *Dropout) Params() []*Param { return nil }

// --- LayerNorm -------------------------------------------------------------------

// LayerNorm normalizes each row of an [N, F] batch to zero mean and unit
// variance, then applies a learned affine transform. It stabilizes the
// deeper VitLite stacks.
type LayerNorm struct {
	F     int
	Gamma *Param // [1, F]
	Beta  *Param // [1, F]

	x, norm *tensor.Tensor
	invStd  []float64
	epsilon float64
}

var _ Layer = (*LayerNorm)(nil)

// NewLayerNorm constructs a layer norm over feature width f.
func NewLayerNorm(f int) *LayerNorm {
	ln := &LayerNorm{
		F:       f,
		Gamma:   &Param{Name: "ln.gamma", Value: tensor.New(1, f), Grad: tensor.New(1, f)},
		Beta:    &Param{Name: "ln.beta", Value: tensor.New(1, f), Grad: tensor.New(1, f)},
		epsilon: 1e-5,
	}
	ln.Gamma.Value.Fill(1)
	return ln
}

func (l *LayerNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	l.x = x
	l.norm = tensor.New(n, l.F)
	if cap(l.invStd) < n {
		l.invStd = make([]float64, n)
	}
	l.invStd = l.invStd[:n]
	out := tensor.New(n, l.F)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(l.F)
		varSum := 0.0
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		inv := 1 / sqrt(varSum/float64(l.F)+l.epsilon)
		l.invStd[i] = inv
		nr := l.norm.Row(i)
		or := out.Row(i)
		for j, v := range row {
			nv := (v - mean) * inv
			nr[j] = nv
			or[j] = nv*l.Gamma.Value.Data[j] + l.Beta.Value.Data[j]
		}
	}
	return out
}

func (l *LayerNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	dx := tensor.New(n, l.F)
	f := float64(l.F)
	for i := 0; i < n; i++ {
		g := grad.Row(i)
		nr := l.norm.Row(i)
		// accumulate parameter grads
		var sumG, sumGN float64
		for j := 0; j < l.F; j++ {
			gg := g[j] * l.Gamma.Value.Data[j]
			l.Gamma.Grad.Data[j] += g[j] * nr[j]
			l.Beta.Grad.Data[j] += g[j]
			sumG += gg
			sumGN += gg * nr[j]
		}
		inv := l.invStd[i]
		dr := dx.Row(i)
		for j := 0; j < l.F; j++ {
			gg := g[j] * l.Gamma.Value.Data[j]
			dr[j] = inv * (gg - sumG/f - nr[j]*sumGN/f)
		}
	}
	return dx
}

func (l *LayerNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// --- Residual -------------------------------------------------------------------

// Residual wraps a body computing y = x + body(x). Input and output shapes
// of the body must match — validated at Forward time.
type Residual struct {
	Body []Layer
}

var _ Layer = (*Residual)(nil)

func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	h := x
	for _, l := range r.Body {
		h = l.Forward(h, train)
	}
	if !h.SameShape(x) {
		panic(fmt.Sprintf("nn: residual body changed shape %v -> %v", x.Shape(), h.Shape()))
	}
	out := tensor.New(x.Shape()...)
	tensor.AddInto(out, x, h)
	return out
}

func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := grad
	for i := len(r.Body) - 1; i >= 0; i-- {
		g = r.Body[i].Backward(g)
	}
	dx := grad.Clone()
	tensor.AddInto(dx, dx, g)
	return dx
}

func (r *Residual) Params() []*Param {
	var ps []*Param
	for _, l := range r.Body {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// --- helpers -------------------------------------------------------------------

func heInit(w []float64, fanIn int, r *rng.RNG) {
	std := sqrt(2 / float64(fanIn))
	r.Gaussian(w, 0, std)
}
