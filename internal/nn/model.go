package nn

import (
	"fmt"
	"math"
	"sync"

	"bprom/internal/tensor"
)

// Arch identifies one of the architecture families built by this package.
type Arch string

// Architecture families. These are scaled-down pure-Go analogues of the
// networks in the paper (see DESIGN.md "Substitutions").
const (
	ArchResNetLite    Arch = "resnetlite"    // analogue of ResNet18: residual blocks
	ArchMobileNetLite Arch = "mobilenetlite" // analogue of MobileNetV2: narrow bottlenecks
	ArchVitLite       Arch = "vitlite"       // analogue of MobileViT/Swin: patch tokens + mixing
	ArchConvLite      Arch = "convlite"      // small convolutional net (full-fidelity path)
)

// Model is a feed-forward classifier: a stack of layers whose final layer is
// a Dense head producing logits over NumClasses.
type Model struct {
	Arch       Arch
	InputDim   int // flattened per-sample input size
	NumClasses int
	Layers     []Layer

	// passes pools training workspaces; the zero value is ready to use.
	passes sync.Pool

	// quantized is set by Quantize once any layer holds int8 weights; the
	// model is then inference-only (NewPass panics, Save errors).
	quantized bool
}

// Infer runs the pure inference pass and returns logits of shape
// [N, NumClasses]. It never mutates the model, so a frozen model serves
// concurrent Infer calls.
func (m *Model) Infer(x *tensor.Tensor) *tensor.Tensor {
	h := x
	for _, l := range m.Layers {
		h = l.Infer(h)
	}
	return h
}

// Pass is a caller-owned workspace for one recording forward/backward pair.
// Obtain one with NewPass, run Forward then Backward, and Release it when
// the gradients have been consumed. Each Pass carries the per-layer
// activation caches, so separate Passes over one model never share state.
type Pass struct {
	m      *Model
	caches []Cache
}

// NewPass returns a workspace drawn from the model's pool. It panics on a
// quantized model: int8 layers have no gradient path, so recording passes
// are meaningless there.
func (m *Model) NewPass() *Pass {
	if m.quantized {
		panic("nn: NewPass on a quantized model (quantized models are inference-only)")
	}
	if p, ok := m.passes.Get().(*Pass); ok {
		p.m = m
		return p
	}
	return &Pass{m: m}
}

// Forward runs the recording pass and returns logits of shape
// [N, NumClasses]. train toggles training-only behaviour (dropout).
func (p *Pass) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	p.caches = p.caches[:0]
	h := x
	for _, l := range p.m.Layers {
		var c Cache
		h, c = l.Forward(h, train)
		p.caches = append(p.caches, c)
	}
	return h
}

// Backward propagates the loss gradient through all layers using the caches
// of the preceding Forward and returns dLoss/dInput, which visual-prompt
// training consumes. Parameter gradients accumulate into the shared Params,
// so concurrent Backward calls on one model must be synchronized by the
// caller.
func (p *Pass) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(p.caches) != len(p.m.Layers) {
		panic("nn: Pass.Backward without a matching Forward")
	}
	g := grad
	for i := len(p.m.Layers) - 1; i >= 0; i-- {
		g = p.m.Layers[i].Backward(p.caches[i], g)
	}
	return g
}

// Release drops the recorded activations and returns the workspace to the
// model's pool. The Pass must not be used afterwards.
func (p *Pass) Release() {
	m := p.m
	for i := range p.caches {
		p.caches[i] = nil
	}
	p.caches = p.caches[:0]
	p.m = nil
	m.passes.Put(p)
}

// Features returns the penultimate activations (input to the final Dense
// head) of shape [N, F]. Baseline defenses that analyze latent
// representations use this; BPROM itself never does. Pure, like Infer.
func (m *Model) Features(x *tensor.Tensor) *tensor.Tensor {
	h := x
	for _, l := range m.Layers[:len(m.Layers)-1] {
		h = l.Infer(h)
	}
	if h.Rank() != 2 {
		n := h.Dim(0)
		h = h.Reshape(n, h.Len()/n)
	}
	return h
}

// predictBlock bounds the rows of one inference pass inside Predict. Wide
// batches (fused CMA-ES generations, coalesced micro-batches) are split
// into row blocks that run on the shared worker pool: each block's
// intermediate activations stay cache-resident instead of streaming a
// whole generation's worth of feature maps through memory, and the blocks
// parallelize across workers on top of the kernels' own chunking. Every
// layer is row-independent in inference mode (the micro-batch engine
// already coalesces unrelated requests into one pass), so the split is
// bitwise invisible.
const predictBlock = 16

// Predict returns softmax probabilities of shape [N, NumClasses]. Pure,
// like Infer. Batches wider than predictBlock rows are processed as
// independent row blocks on the shared worker pool; results are bitwise
// identical to a single pass.
func (m *Model) Predict(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	if n <= predictBlock || x.Rank() != 2 {
		logits := m.Infer(x)
		SoftmaxInPlace(logits)
		return logits
	}
	dim := x.Dim(1)
	out := tensor.New(n, m.NumClasses)
	blocks := (n + predictBlock - 1) / predictBlock
	tensor.ParallelFor(blocks, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			r0 := b * predictBlock
			r1 := r0 + predictBlock
			if r1 > n {
				r1 = n
			}
			sub := tensor.FromSlice(x.Data[r0*dim:r1*dim], r1-r0, dim)
			logits := m.Infer(sub)
			SoftmaxInPlace(logits)
			copy(out.Data[r0*m.NumClasses:r1*m.NumClasses], logits.Data)
		}
	})
	return out
}

// PredictClasses returns the argmax class for each sample. Pure, like Infer.
func (m *Model) PredictClasses(x *tensor.Tensor) []int {
	logits := m.Infer(x)
	n, k := logits.Dim(0), logits.Dim(1)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// Params returns all trainable parameters in layer order.
func (m *Model) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all parameter gradients.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// ParamCount returns the total number of parameter scalars in the
// architecture, independent of representation: weights held in int8 count
// the same as their float64 originals.
func (m *Model) ParamCount() int {
	n := m.quantWeightCount()
	for _, p := range m.Params() {
		n += p.Value.Len()
	}
	return n
}

// Validate checks structural invariants: a model must end in a Dense head
// whose width equals NumClasses and accept InputDim-wide inputs.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("nn: model has no layers")
	}
	head, ok := m.Layers[len(m.Layers)-1].(*Dense)
	if !ok {
		return fmt.Errorf("nn: model must end in a Dense head, got %T", m.Layers[len(m.Layers)-1])
	}
	if head.Out != m.NumClasses {
		return fmt.Errorf("nn: head width %d != NumClasses %d", head.Out, m.NumClasses)
	}
	if m.InputDim <= 0 {
		return fmt.Errorf("nn: non-positive InputDim %d", m.InputDim)
	}
	return nil
}

// SoftmaxInPlace converts each row of logits [N, K] into probabilities using
// the max-subtraction trick for numerical stability.
func SoftmaxInPlace(logits *tensor.Tensor) {
	n, k := logits.Dim(0), logits.Dim(1)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxV)
			row[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// CrossEntropy computes mean softmax cross-entropy between logits [N, K] and
// integer labels, returning the loss and dLoss/dLogits (already averaged over
// the batch).
func CrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	probs := logits.Clone()
	SoftmaxInPlace(probs)
	loss := 0.0
	grad := probs // reuse: grad = probs - onehot(labels), scaled by 1/N
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		p := probs.Data[i*k+y]
		loss -= math.Log(math.Max(p, 1e-12))
		row := grad.Data[i*k : (i+1)*k]
		for j := range row {
			row[j] *= invN
		}
		row[y] -= invN
	}
	return loss * invN, grad
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Dim(0), logits.Dim(1)
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// small math indirections so layer code reads without the math import
func exp(v float64) float64  { return math.Exp(v) }
func sqrt(v float64) float64 { return math.Sqrt(v) }
