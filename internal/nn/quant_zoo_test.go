package nn_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"bprom/internal/attack"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/trainer"
	"bprom/internal/vp"
)

// End-to-end quantization parity on a miniature golden attack zoo: one
// clean and one BadNets-backdoored model, each audited by the same tiny
// BPROM detector in fp and in int8 form. The detector verdict — the number
// the whole pipeline exists to produce — must be identical, and the
// suspects' raw confidences must stay within the |Δconfidence| budget.
// (package nn_test: these tests need trainer/bprom, which import nn.)

// zooConfBudget mirrors quantConfBudget in the in-package battery.
const zooConfBudget = 0.05

func quantClone(t *testing.T, m *nn.Model) *nn.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := nn.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Quantize(-1) == 0 {
		t.Fatal("Quantize(-1) converted no layers")
	}
	return c
}

func TestQuantizedZooVerdictAgreement(t *testing.T) {
	ctx := context.Background()

	// Tiny source task and detector, the audit-test scale: scheduling-sized
	// budgets, deterministic seeds.
	srcGen := data.NewGenerator(data.MustSpec(data.CIFAR10), 1)
	srcTrain, srcTest := srcGen.GenerateSplit(12, 40, rng.New(2))
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 3)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(6, 4, rng.New(4))
	det, err := bprom.Train(ctx, bprom.Config{
		Reserved:      srcTest.Reserve(0.10, rng.New(5)),
		ExternalTrain: tgtTrain,
		ExternalTest:  tgtTest,
		NumClean:      2,
		NumBackdoor:   2,
		ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: 12},
		ShadowTrain:   trainer.Config{Epochs: 3},
		WhiteBox:      vp.WhiteBoxConfig{Epochs: 2},
		BlackBox:      vp.BlackBoxConfig{Iterations: 3, BatchSize: 6},
		QuerySamples:  6,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}

	trainSuspect := func(seed uint64, poison bool) *nn.Model {
		ds := srcTrain
		if poison {
			poisoned, _, err := attack.Poison(ds, attack.Config{Kind: attack.BadNets, PoisonRate: 0.25}, rng.New(seed+100))
			if err != nil {
				t.Fatal(err)
			}
			ds = poisoned
		}
		m, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchConvLite, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
			NumClasses: ds.Classes, Hidden: 12,
		}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trainer.Train(ctx, m, ds, trainer.Config{Epochs: 3}, rng.New(seed+1)); err != nil {
			t.Fatal(err)
		}
		return m
	}

	for name, tc := range map[string]struct {
		seed   uint64
		poison bool
	}{
		"clean":   {seed: 7, poison: false},
		"badnets": {seed: 9, poison: true},
	} {
		t.Run(name, func(t *testing.T) {
			fp := trainSuspect(tc.seed, tc.poison)
			q := quantClone(t, fp)

			// Raw-confidence budget on held-out source data.
			x := srcTest.Tensor()
			fpProbs := fp.Predict(x)
			qProbs := q.Predict(x)
			maxDelta := 0.0
			for i := range fpProbs.Data {
				if d := math.Abs(fpProbs.Data[i] - qProbs.Data[i]); d > maxDelta {
					maxDelta = d
				}
			}
			if maxDelta > zooConfBudget {
				t.Fatalf("max |Δconfidence| = %g exceeds budget %g", maxDelta, zooConfBudget)
			}

			// Detector verdict: the fp and int8 servings of the same model
			// must be judged identically.
			vFP, err := det.Inspect(ctx, oracle.NewModelOracle(fp), 3)
			if err != nil {
				t.Fatal(err)
			}
			vQ, err := det.Inspect(ctx, oracle.NewModelOracle(q), 3)
			if err != nil {
				t.Fatal(err)
			}
			if vFP.Backdoored != vQ.Backdoored {
				t.Fatalf("verdict disagreement: fp backdoored=%v (score %.4f), int8 backdoored=%v (score %.4f)",
					vFP.Backdoored, vFP.Score, vQ.Backdoored, vQ.Score)
			}
			if d := math.Abs(vFP.Score - vQ.Score); d > 0.25 {
				t.Fatalf("detector score moved %.4f (fp %.4f -> int8 %.4f)", d, vFP.Score, vQ.Score)
			}
		})
	}
}
