package nn

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Quantized-model parity battery. The contract Model.Quantize must honor:
// bounded confidence error against the fp model (quantConfBudget), argmax
// agreement wherever the fp prediction is not a coin flip, bitwise
// determinism under batching/parallelism, strict inference-only guards, and
// complete isolation from the fp path (quantizing one model never perturbs
// another, and the fp path itself stays bit-identical to the goldens —
// golden_test.go keeps asserting that independently).

// quantConfBudget bounds max |Δconfidence| between a model's fp and int8
// softmax outputs in these tests. Per-channel 8-bit quantization on the
// small test stacks lands well inside it; a kernel or correction-term bug
// lands far outside.
const quantConfBudget = 0.05

// cloneModel round-trips m through the serializer, yielding an independent
// fp copy (the idiom callers use to quantize without giving up the fp
// original).
func cloneModel(t *testing.T, m *Model) *Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildArch(t *testing.T, arch Arch, seed uint64) *Model {
	t.Helper()
	m, err := Build(ArchConfig{Arch: arch, C: 3, H: 8, W: 8, NumClasses: 5, Hidden: 16}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestQuantizeInferParity: every architecture family, fp vs int8 — bounded
// confidence deltas, and argmax agreement on every row where the fp margin
// between top-1 and top-2 exceeds twice the budget (closer calls may
// legitimately flip).
func TestQuantizeInferParity(t *testing.T) {
	for _, arch := range []Arch{ArchResNetLite, ArchMobileNetLite, ArchVitLite, ArchConvLite} {
		t.Run(string(arch), func(t *testing.T) {
			m := buildArch(t, arch, 11)
			q := cloneModel(t, m)
			if n := q.Quantize(-1); n == 0 {
				t.Fatal("Quantize(-1) converted no layers")
			}

			x := tensor.New(24, m.InputDim)
			rng.New(13).Uniform(x.Data, 0, 1)
			fp := m.Predict(x)
			qp := q.Predict(x)

			maxDelta := 0.0
			for i := range fp.Data {
				if d := math.Abs(fp.Data[i] - qp.Data[i]); d > maxDelta {
					maxDelta = d
				}
			}
			if maxDelta > quantConfBudget {
				t.Fatalf("max |Δconfidence| = %g exceeds budget %g", maxDelta, quantConfBudget)
			}

			k := m.NumClasses
			for i := 0; i < fp.Dim(0); i++ {
				row := fp.Data[i*k : (i+1)*k]
				top, second, arg := -1.0, -1.0, 0
				for j, v := range row {
					if v > top {
						second, top, arg = top, v, j
					} else if v > second {
						second = v
					}
				}
				if top-second <= 2*quantConfBudget {
					continue // fp itself is near a tie; a flip is legitimate
				}
				qrow := qp.Data[i*k : (i+1)*k]
				qarg := 0
				for j, v := range qrow {
					if v > qrow[qarg] {
						qarg = j
					}
				}
				if qarg != arg {
					t.Fatalf("row %d: argmax flipped %d -> %d despite fp margin %g", i, arg, qarg, top-second)
				}
			}
		})
	}
}

// TestQuantizedPredictDeterminism: the quantized Predict must be bitwise
// invariant under predictBlock splitting and pool width — the same
// contract the fp path has, required for micro-batch coalescing to stay
// invisible.
func TestQuantizedPredictDeterminism(t *testing.T) {
	defer tensor.SetWorkers(0)
	m := buildArch(t, ArchResNetLite, 17)
	m.Quantize(-1)

	x := tensor.New(40, m.InputDim) // wider than predictBlock: exercises row-block splitting
	rng.New(19).Uniform(x.Data, 0, 1)

	tensor.SetWorkers(1)
	serial := m.Predict(x)
	// Single pass, no row blocks, one worker: the reference output.
	rowByRow := tensor.New(40, m.NumClasses)
	for i := 0; i < 40; i++ {
		sub := tensor.FromSlice(x.Row(i), 1, m.InputDim)
		logits := m.Infer(sub)
		SoftmaxInPlace(logits)
		copy(rowByRow.Data[i*m.NumClasses:(i+1)*m.NumClasses], logits.Data)
	}
	tensor.SetWorkers(8)
	parallel := m.Predict(x)

	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("element %d: serial %v != parallel %v", i, serial.Data[i], parallel.Data[i])
		}
		if serial.Data[i] != rowByRow.Data[i] {
			t.Fatalf("element %d: batched %v != row-by-row %v", i, serial.Data[i], rowByRow.Data[i])
		}
	}
}

// TestQuantizeThreshold: layers under the weight floor stay fp, so a model
// of only tiny layers is untouched (and stays trainable), while Quantize(0)
// converts layers at or above DefaultQuantMinWeights.
func TestQuantizeThreshold(t *testing.T) {
	r := rng.New(23)
	m := &Model{
		Arch:       ArchConvLite,
		InputDim:   64,
		NumClasses: 4,
		Layers: []Layer{
			NewDense(64, 32, r), // 2048 weights: above the floor
			&ReLU{},
			NewDense(32, 4, r), // 128 weights: below the floor
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := m.Quantize(0); n != 1 {
		t.Fatalf("Quantize(0) converted %d layers, want 1", n)
	}
	if m.Layers[0].(*Dense).Q == nil {
		t.Fatal("large layer not quantized")
	}
	if head := m.Layers[2].(*Dense); head.Q != nil || head.W.Value == nil {
		t.Fatal("small head should have stayed fp")
	}
	if !m.Quantized() || m.Precision() != PrecisionInt8 {
		t.Fatalf("Quantized()=%v Precision()=%q", m.Quantized(), m.Precision())
	}

	tiny := &Model{
		Arch: ArchConvLite, InputDim: 8, NumClasses: 2,
		Layers: []Layer{NewDense(8, 2, r)},
	}
	if n := tiny.Quantize(0); n != 0 {
		t.Fatalf("tiny model: Quantize(0) converted %d layers, want 0", n)
	}
	if tiny.Quantized() || tiny.Precision() != PrecisionFP64 {
		t.Fatal("tiny model must stay fp and trainable")
	}
	tiny.NewPass().Release() // must not panic: nothing was converted
}

// TestQuantizeIdempotent: a second Quantize finds nothing left to convert.
func TestQuantizeIdempotent(t *testing.T) {
	m := buildArch(t, ArchResNetLite, 29)
	first := m.Quantize(-1)
	if first == 0 {
		t.Fatal("first Quantize converted nothing")
	}
	if again := m.Quantize(-1); again != 0 {
		t.Fatalf("second Quantize converted %d layers, want 0", again)
	}
	if m.Precision() != PrecisionInt8 {
		t.Fatalf("Precision() = %q", m.Precision())
	}
}

// TestQuantizeInferenceOnlyGuards: NewPass panics, layer Backward panics,
// Save errors — the three doors into state a quantized model no longer has.
func TestQuantizeInferenceOnlyGuards(t *testing.T) {
	m := buildArch(t, ArchConvLite, 31)
	m.Quantize(-1)

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("NewPass on a quantized model should panic")
			}
			if !strings.Contains(r.(string), "inference-only") {
				t.Fatalf("panic %q does not explain inference-only", r)
			}
		}()
		m.NewPass()
	}()

	var dense *Dense
	walkLayers(m.Layers, func(l Layer) {
		if d, ok := l.(*Dense); ok && d.Q != nil && dense == nil {
			dense = d
		}
	})
	if dense == nil {
		t.Fatal("no quantized Dense layer found")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Backward on a quantized Dense should panic")
			}
		}()
		dense.Backward(tensor.New(1, dense.In), tensor.New(1, dense.Out))
	}()

	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Fatal("Save of a quantized model should error")
	} else if !strings.Contains(err.Error(), "quantized") {
		t.Fatalf("Save error %q does not mention quantization", err)
	}
}

// TestQuantizeFPIsolation: quantizing a clone must not perturb the original
// — same outputs bit for bit before and after.
func TestQuantizeFPIsolation(t *testing.T) {
	m := buildArch(t, ArchMobileNetLite, 37)
	x := tensor.New(6, m.InputDim)
	rng.New(41).Uniform(x.Data, 0, 1)
	before := m.Predict(x)

	q := cloneModel(t, m)
	q.Quantize(-1)
	_ = q.Predict(x)

	after := m.Predict(x)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatalf("fp model perturbed at element %d: %v -> %v", i, before.Data[i], after.Data[i])
		}
	}
	if m.Quantized() || m.Precision() != PrecisionFP64 {
		t.Fatal("original model must remain fp")
	}
}

// TestQuantizeWeightBytes: the resident footprint must shrink at least 4x,
// and ParamCount must be representation-independent.
func TestQuantizeWeightBytes(t *testing.T) {
	m := buildArch(t, ArchResNetLite, 43)
	fpBytes := m.WeightBytes()
	fpParams := m.ParamCount()

	q := cloneModel(t, m)
	q.Quantize(-1)
	qBytes := q.WeightBytes()
	if ratio := float64(fpBytes) / float64(qBytes); ratio < 4 {
		t.Fatalf("resident shrink %.2fx (fp %d -> int8 %d bytes), want ≥ 4x", ratio, fpBytes, qBytes)
	}
	if got := q.ParamCount(); got != fpParams {
		t.Fatalf("ParamCount changed across quantization: %d -> %d", fpParams, got)
	}
}
