package jobstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// seedJobs writes a small mixed-state history and closes the store,
// returning the jobs directory.
func seedJobs(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s := openT(t, dir)
	now := time.Unix(0, 1700000000e9)
	if err := s.Create(1, "m-clean", "acme", 1, now); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Done(1, VerdictRecord{Score: 0.12, Threshold: 0.5, PromptedAcc: 0.7, Queries: 420}, now.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(2, "m-sus", "acme", 2, now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(2, 3, 210, []byte("opaque search state")); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(3, "m-queued", "globex", 3, now.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestStoreReplayRoundTrip(t *testing.T) {
	dir := seedJobs(t)
	s := openT(t, dir)
	jobs := s.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	j1, j2, j3 := jobs[0], jobs[1], jobs[2]
	if j1.State != StateDone || j1.Verdict == nil || j1.Verdict.Queries != 420 || j1.Queries != 420 {
		t.Fatalf("job 1 replayed wrong: %+v", j1)
	}
	if j2.State != StateRunning || j2.Generation != 3 || j2.Queries != 210 || string(j2.Checkpoint) != "opaque search state" {
		t.Fatalf("job 2 replayed wrong: %+v", j2)
	}
	if j3.State != StateQueued || j3.Tenant != "globex" {
		t.Fatalf("job 3 replayed wrong: %+v", j3)
	}
	if got := s.NextSeq(); got != 4 {
		t.Fatalf("NextSeq %d, want 4", got)
	}
	spend := s.TenantSpend()
	if spend["acme"] != 630 || spend["globex"] != 0 {
		t.Fatalf("tenant spend %v", spend)
	}
	st := s.Stats()
	if st.JobsResumed != 2 {
		t.Fatalf("jobs_resumed %d, want 2 (one running, one queued)", st.JobsResumed)
	}
	if st.JournalBytes <= 0 || st.LastCompaction.IsZero() {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestEmptyAndMissingJournalBootClean(t *testing.T) {
	// Missing directory and journal.
	dir := filepath.Join(t.TempDir(), "does", "not", "exist")
	s := openT(t, dir)
	if len(s.Jobs()) != 0 || s.NextSeq() != 1 {
		t.Fatal("missing journal did not boot clean")
	}
	s.Close()
	// Empty journal file.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, journalName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir2)
	if len(s2.Jobs()) != 0 {
		t.Fatal("empty journal did not boot clean")
	}
}

func TestTruncatedTailSilentlyDropped(t *testing.T) {
	dir := seedJobs(t)
	path := filepath.Join(dir, journalName)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the final frame — a crash artifact.
	for _, cut := range []int{1, 3, frameHeaderSize - 1, frameHeaderSize + 2} {
		trimmed := img[:len(img)-cut]
		if err := os.WriteFile(path, trimmed, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: truncated tail should boot clean, got %v", cut, err)
		}
		// The damaged final record (job 3's create) is gone; earlier
		// records survive intact.
		jobs := s.Jobs()
		if len(jobs) != 2 {
			t.Fatalf("cut %d: %d jobs after tail drop, want 2", cut, len(jobs))
		}
		if jobs[1].State != StateRunning || jobs[1].Generation != 3 {
			t.Fatalf("cut %d: surviving job wrong: %+v", cut, jobs[1])
		}
		s.Close()
		// Restore the full image for the next cut.
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFlippedCRCByteRejectsRecord(t *testing.T) {
	dir := seedJobs(t)
	path := filepath.Join(dir, journalName)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the first frame's payload.
	corrupt := append([]byte(nil), img...)
	corrupt[frameHeaderSize+4] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if err == nil {
		t.Fatal("corrupt journal opened without error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	// The error names the bad offset so operators can find the damage.
	if want := "offset 0"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestCompactionDropsCheckpointChurn(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	now := time.Now()
	if err := s.Create(1, "m", "t", 1, now); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(1); err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("x"), 2048)
	for gen := 1; gen <= 50; gen++ {
		if err := s.Checkpoint(1, gen, int64(gen*10), blob); err != nil {
			t.Fatal(err)
		}
	}
	grown := s.Stats().JournalBytes
	s.Close()
	s2 := openT(t, dir)
	compacted := s2.Stats().JournalBytes
	if compacted >= grown/10 {
		t.Fatalf("compaction kept %d of %d bytes (want only the latest checkpoint)", compacted, grown)
	}
	jobs := s2.Jobs()
	if len(jobs) != 1 || jobs[0].Generation != 50 || jobs[0].Queries != 500 {
		t.Fatalf("compaction lost the latest checkpoint: %+v", jobs[0])
	}
}

// TestLiveCompactionOnThreshold pins the size-triggered path: a store with
// a byte threshold compacts DURING appends — a long-running node's journal
// stays bounded without waiting for the next restart — and keeps accepting
// writes afterwards (the compactor must reopen its own rewritten file; the
// old descriptor points at an unlinked inode).
func TestLiveCompactionOnThreshold(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.SetCompactThreshold(16 << 10)
	now := time.Now()
	if err := s.Create(1, "m", "t", 1, now); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(1); err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("x"), 2048)
	for gen := 1; gen <= 200; gen++ {
		if err := s.Checkpoint(1, gen, int64(gen*10), blob); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no live compaction after 200 checkpoints over a 16KiB threshold: %+v", st)
	}
	// Churn collapses to roughly one live checkpoint per compaction cycle:
	// the journal must stay well under the raw append volume (~400KiB).
	if st.JournalBytes > 64<<10 {
		t.Fatalf("journal grew to %d bytes despite live compaction", st.JournalBytes)
	}
	// The store stays writable and terminal records land after compaction.
	if err := s.Fail(1, "boom", "", 42, now); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openT(t, dir)
	jobs := s2.Jobs()
	if len(jobs) != 1 || jobs[0].State != StateFailed || jobs[0].Generation != 200 {
		t.Fatalf("replay after live compaction: %+v", jobs)
	}
}

// TestFrameRoundTrip pins the exported wire framing used for checkpoint
// migration: EncodeFrame/DecodeFrame round-trip exactly, and any damage —
// truncation or a flipped payload byte — surfaces as ErrCorrupt instead of
// garbage bytes.
func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("checkpoint bytes travel inside one CRC frame")
	frame, err := EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round-trip: %q", got)
	}
	for name, bad := range map[string][]byte{
		"truncated header":  frame[:frameHeaderSize-1],
		"truncated payload": frame[:len(frame)-3],
		"flipped byte":      append(append([]byte(nil), frame[:frameHeaderSize]...), append([]byte(nil), frame[frameHeaderSize:]...)...),
	} {
		if name == "flipped byte" {
			bad[frameHeaderSize] ^= 0x01
		}
		if _, err := DecodeFrame(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}

func TestCancelAndFailReplay(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	now := time.Now()
	for id := uint64(1); id <= 2; id++ {
		if err := s.Create(id, "m", "t", int(id), now); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Fail(1, "oracle exploded", "quota_exhausted", 99, now); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(2, now); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openT(t, dir)
	jobs := s2.Jobs()
	if jobs[0].State != StateFailed || jobs[0].Error != "oracle exploded" || jobs[0].ErrorCode != "quota_exhausted" || jobs[0].Queries != 99 {
		t.Fatalf("failed job replayed wrong: %+v", jobs[0])
	}
	if jobs[1].State != StateCancelled {
		t.Fatalf("cancelled job replayed wrong: %+v", jobs[1])
	}
	if s2.Stats().JobsResumed != 0 {
		t.Fatal("terminal jobs must not count as resumed")
	}
}

// FuzzJournalReplay feeds arbitrary journal images to the replay scanner:
// it must never panic, and every accepted record must verify its CRC (so
// re-encoding a scanned journal reproduces the accepted prefix).
func FuzzJournalReplay(f *testing.F) {
	var seed bytes.Buffer
	_ = appendFrame(&seed, []byte("hello"))
	_ = appendFrame(&seed, bytes.Repeat([]byte{0xab}, 300))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(seed.Bytes()[:seed.Len()-3])
	corrupted := append([]byte(nil), seed.Bytes()...)
	corrupted[frameHeaderSize] ^= 1
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, image []byte) {
		payloads, goodLen, err := decodeAll(image)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corruption error from scanner: %v", err)
			}
			return
		}
		if goodLen > int64(len(image)) {
			t.Fatalf("goodLen %d exceeds image size %d", goodLen, len(image))
		}
		// Re-encoding the accepted records must reproduce the good prefix.
		var re bytes.Buffer
		for _, p := range payloads {
			if err := appendFrame(&re, p); err != nil {
				t.Fatal(err)
			}
		}
		if int64(re.Len()) != goodLen || !bytes.Equal(re.Bytes(), image[:goodLen]) {
			t.Fatalf("re-encoded prefix diverges: %d vs %d bytes", re.Len(), goodLen)
		}
	})
}
