// Package jobstore is the durable half of the audit platform: a crash-safe
// journaled job store that lets server-side audit jobs survive restarts, plus
// the tenancy plane built on top of it (API keys, per-tenant rate limits and
// oracle-query quotas, and a re-audit scheduler).
//
// Jobs append state transitions (create/start/checkpoint/done/failed/
// cancelled) to an append-only journal of CRC-framed binio records. On boot
// the journal is replayed: a partial final frame is a crash artifact and is
// silently truncated away, while a CRC mismatch anywhere else is real
// corruption and fails loudly with the offending offset. Checkpoint records
// carry opaque detector search state (internal/bprom.Checkpoint), so a
// rebooted server resumes every interrupted audit from its last completed
// CMA-ES generation — bit-exactly, queries and verdict alike.
package jobstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Frame layout: u32 payload length, u32 CRC-32 (IEEE) of the payload, then
// the payload bytes. Both header words are little-endian, matching
// internal/binio. A frame is the atomicity unit: a crash can only ever leave
// a partial frame at the tail, never a torn earlier record, because frames
// are written with a single Write call and the file is append-only.

const (
	frameHeaderSize = 8
	// maxFramePayload bounds a single record; checkpoints for even very
	// high-dimensional prompts are far below this.
	maxFramePayload = 1 << 26
)

// ErrCorrupt reports a journal record whose CRC does not match its payload —
// real corruption, as opposed to a truncated crash tail. Errors carry the
// byte offset of the bad frame; match with errors.Is.
var ErrCorrupt = errors.New("jobstore: journal corrupt")

// EncodeFrame wraps payload in the journal's CRC frame (length + CRC-32
// header, then the bytes) and returns the framed record. It is the wire
// format for checkpoint export: a node ships a job's search state as one
// frame so transit corruption is detected by the same CRC that guards the
// journal on disk.
func EncodeFrame(payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := appendFrame(&buf, payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFrame verifies and unwraps a single CRC frame produced by
// EncodeFrame. Truncated, oversized, trailing-garbage, or CRC-mismatched
// input fails with ErrCorrupt.
func DecodeFrame(frame []byte) ([]byte, error) {
	if len(frame) < frameHeaderSize {
		return nil, fmt.Errorf("%w: %d-byte frame is shorter than its header", ErrCorrupt, len(frame))
	}
	length := binary.LittleEndian.Uint32(frame[0:4])
	sum := binary.LittleEndian.Uint32(frame[4:8])
	if length > maxFramePayload {
		return nil, fmt.Errorf("%w: frame claims %d-byte payload", ErrCorrupt, length)
	}
	if int64(len(frame)) != frameHeaderSize+int64(length) {
		return nil, fmt.Errorf("%w: frame holds %d payload bytes, header claims %d", ErrCorrupt, len(frame)-frameHeaderSize, length)
	}
	payload := frame[frameHeaderSize:]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: frame has CRC %#08x, payload hashes to %#08x", ErrCorrupt, sum, got)
	}
	return payload, nil
}

// appendFrame writes one CRC-framed record to w as a single Write call.
func appendFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("jobstore: record of %d bytes exceeds frame limit", len(payload))
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	_, err := w.Write(buf)
	return err
}

// scanResult is what replaying a journal stream yields: the decoded payloads,
// and the byte offset of the first incomplete frame (the "good length" of the
// file — everything past it is a crash artifact to truncate away).
type scanResult struct {
	payloads [][]byte
	goodLen  int64
}

// scanFrames reads frames until EOF. A clean EOF at a frame boundary or a
// partial frame at the tail both terminate the scan normally (the tail is
// reported via goodLen, not an error); a CRC mismatch returns ErrCorrupt with
// the frame's offset.
func scanFrames(r io.Reader) (scanResult, error) {
	res := scanResult{}
	var offset int64
	hdr := make([]byte, frameHeaderSize)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// EOF at a boundary is a clean end; a partial header is a
				// crash artifact. Either way the good prefix ends here.
				res.goodLen = offset
				return res, nil
			}
			return res, fmt.Errorf("jobstore: reading journal at offset %d: %w", offset, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxFramePayload {
			// An absurd length word means the header bytes themselves are
			// damaged — not distinguishable from a torn tail by framing
			// alone, but a length this large cannot have been written by
			// appendFrame, so treat it as corruption.
			return res, fmt.Errorf("%w: frame at offset %d claims %d-byte payload", ErrCorrupt, offset, length)
		}
		payload := make([]byte, int(length))
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// Partial payload: crash artifact.
				res.goodLen = offset
				return res, nil
			}
			return res, fmt.Errorf("jobstore: reading journal at offset %d: %w", offset, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return res, fmt.Errorf("%w: frame at offset %d has CRC %#08x, payload hashes to %#08x", ErrCorrupt, offset, sum, got)
		}
		res.payloads = append(res.payloads, payload)
		offset += frameHeaderSize + int64(length)
	}
}

// replayFile scans path, truncating a crash-damaged tail in place. Missing
// files yield an empty result: a fresh store boots clean.
func replayFile(path string) (scanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return scanResult{}, nil
		}
		return scanResult{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return scanResult{}, err
	}
	res, err := scanFrames(f)
	if err != nil {
		return res, err
	}
	if res.goodLen < fi.Size() {
		// Drop the partial tail so the next append starts at a frame
		// boundary. This is the normal post-crash path, not an error.
		if err := os.Truncate(path, res.goodLen); err != nil {
			return res, fmt.Errorf("jobstore: truncating crash tail: %w", err)
		}
	}
	return res, nil
}

// decodeAll is a convenience for tests and fuzzing: replay a journal image
// from memory without touching the filesystem.
func decodeAll(image []byte) ([][]byte, int64, error) {
	res, err := scanFrames(bytes.NewReader(image))
	return res.payloads, res.goodLen, err
}
