package jobstore

import (
	"context"
	"sync"
	"time"
)

// Scheduler fires a callback on a fixed interval — the cron-like re-audit
// loop that keeps a model zoo continuously monitored instead of scanned
// once. It is deliberately tiny: the interesting state (which jobs exist,
// what they found) lives in the Store; the scheduler only triggers
// re-submission.
type Scheduler struct {
	interval time.Duration
	fire     func(ctx context.Context)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	fired int
}

// NewScheduler starts a scheduler invoking fire every interval. The context
// passed to fire is cancelled by Close, so a re-audit sweep in flight during
// shutdown aborts promptly. Fire runs on the scheduler goroutine; overlapping
// sweeps cannot happen (a slow sweep delays the next tick).
func NewScheduler(interval time.Duration, fire func(ctx context.Context)) *Scheduler {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{interval: interval, fire: fire, ctx: ctx, cancel: cancel}
	s.wg.Add(1)
	go s.run()
	return s
}

func (s *Scheduler) run() {
	defer s.wg.Done()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.fire(s.ctx)
			s.mu.Lock()
			s.fired++
			s.mu.Unlock()
		}
	}
}

// Fired reports completed sweeps (for health reporting and tests).
func (s *Scheduler) Fired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Close stops the ticker and waits for an in-flight sweep to return.
func (s *Scheduler) Close() {
	s.cancel()
	s.wg.Wait()
}
