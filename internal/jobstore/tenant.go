package jobstore

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"bprom/internal/oracle"
	"bprom/internal/tensor"
)

// The tenancy plane: who may call the API, how fast, and how many oracle
// queries they may spend. Quotas are denominated in the paper's central cost
// metric — individual oracle sample queries, exactly as metered by
// oracle.Counter — so "tenant A may spend 100k queries" means the same thing
// as the query budgets in the experiment tables.

// TenantConfig is one line of the API-key file.
type TenantConfig struct {
	// Name identifies the tenant in job attribution and usage reporting.
	Name string
	// Key is the bearer token presented in Authorization headers.
	Key string
	// Quota bounds cumulative oracle-query spend (0 = unlimited).
	Quota int64
	// RPS bounds mutating API requests per second (0 = unlimited); bursts
	// up to 2×RPS are tolerated via the token bucket.
	RPS float64
	// Service marks a privileged service credential (the `service` flag in
	// the key file) — a gateway's migration supervisor, not an end tenant.
	// Only service credentials may attribute a resume submission to a
	// tenant other than themselves; an ordinary key that could name an
	// arbitrary resume tenant could bill its spend to a victim's quota.
	Service bool
}

// ParseKeyFile reads a static API-key file: one
// `tenant:key[:quota[:rps[:flags]]]` per line, with #-comments and blank
// lines ignored. flags is a comma-separated set; the only recognized flag
// is `service` (see TenantConfig.Service).
func ParseKeyFile(path string) ([]TenantConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("jobstore: opening key file: %w", err)
	}
	defer f.Close()
	var out []TenantConfig
	seenKey := make(map[string]string)
	seenName := make(map[string]bool)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ":")
		if len(parts) < 2 || len(parts) > 5 {
			return nil, fmt.Errorf("jobstore: %s:%d: want tenant:key[:quota[:rps[:flags]]]", path, line)
		}
		tc := TenantConfig{Name: strings.TrimSpace(parts[0]), Key: strings.TrimSpace(parts[1])}
		if tc.Name == "" || tc.Key == "" {
			return nil, fmt.Errorf("jobstore: %s:%d: empty tenant or key", path, line)
		}
		if len(parts) >= 3 && parts[2] != "" {
			q, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
			if err != nil || q < 0 {
				return nil, fmt.Errorf("jobstore: %s:%d: bad quota %q", path, line, parts[2])
			}
			tc.Quota = q
		}
		if len(parts) >= 4 && parts[3] != "" {
			r, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("jobstore: %s:%d: bad rps %q", path, line, parts[3])
			}
			tc.RPS = r
		}
		if len(parts) == 5 && parts[4] != "" {
			for _, f := range strings.Split(parts[4], ",") {
				switch strings.TrimSpace(f) {
				case "service":
					tc.Service = true
				case "":
				default:
					return nil, fmt.Errorf("jobstore: %s:%d: unknown flag %q (known: service)", path, line, f)
				}
			}
		}
		if prev, dup := seenKey[tc.Key]; dup {
			return nil, fmt.Errorf("jobstore: %s:%d: key already assigned to tenant %q", path, line, prev)
		}
		if seenName[tc.Name] {
			return nil, fmt.Errorf("jobstore: %s:%d: duplicate tenant %q", path, line, tc.Name)
		}
		seenKey[tc.Key] = tc.Name
		seenName[tc.Name] = true
		out = append(out, tc)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("jobstore: reading key file: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("jobstore: key file %s has no tenants", path)
	}
	return out, nil
}

// Tenant is a live tenant: configuration plus the running spend ledger and
// rate-limit bucket. Safe for concurrent use.
type Tenant struct {
	Name  string
	Key   string
	Quota int64
	// Service reports a privileged service credential (TenantConfig.Service):
	// the only class of caller allowed to resume a job on another tenant's
	// behalf.
	Service bool

	mu     sync.Mutex
	spent  int64
	rps    float64
	tokens float64
	last   time.Time
}

// Spent returns cumulative oracle-query spend.
func (t *Tenant) Spent() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spent
}

// Charge adds n queries to the ledger.
func (t *Tenant) Charge(n int64) {
	t.mu.Lock()
	t.spent += n
	t.mu.Unlock()
}

// reserve atomically admits and charges a batch of n queries, rejecting with
// a QuotaError when the batch would exceed the quota. Refund on oracle
// failure keeps the ledger equal to successful spend, matching
// oracle.Counter's accounting.
func (t *Tenant) reserve(n int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.Quota > 0 && t.spent+n > t.Quota {
		return &QuotaError{Tenant: t.Name, Spent: t.spent, Quota: t.Quota}
	}
	t.spent += n
	return nil
}

func (t *Tenant) refund(n int64) {
	t.mu.Lock()
	t.spent -= n
	t.mu.Unlock()
}

// Remaining reports the unspent quota; ok is false when the tenant is
// unlimited.
func (t *Tenant) Remaining() (n int64, ok bool) {
	if t.Quota <= 0 {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spent >= t.Quota {
		return 0, true
	}
	return t.Quota - t.spent, true
}

// Allow consumes one rate-limit token (token bucket, burst 2×RPS, floor 1).
func (t *Tenant) Allow(now time.Time) bool {
	if t.rps <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	burst := 2 * t.rps
	if burst < 1 {
		burst = 1
	}
	if !t.last.IsZero() {
		t.tokens += now.Sub(t.last).Seconds() * t.rps
	}
	if t.tokens > burst {
		t.tokens = burst
	}
	t.last = now
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// Tenancy resolves API keys to tenants and carries their ledgers.
type Tenancy struct {
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	order  []*Tenant
}

// NewTenancy builds the live tenant set from parsed configs, seeding each
// ledger from seedSpend (the Store's journal-replayed TenantSpend), so quota
// accounting picks up where the previous process left off.
func NewTenancy(configs []TenantConfig, seedSpend map[string]int64) *Tenancy {
	tn := &Tenancy{byKey: make(map[string]*Tenant), byName: make(map[string]*Tenant)}
	for _, c := range configs {
		t := &Tenant{Name: c.Name, Key: c.Key, Quota: c.Quota, Service: c.Service, rps: c.RPS, tokens: 2 * c.RPS}
		if t.tokens < 1 {
			t.tokens = 1
		}
		t.spent = seedSpend[c.Name]
		tn.byKey[c.Key] = t
		tn.byName[c.Name] = t
		tn.order = append(tn.order, t)
	}
	return tn
}

// Authenticate resolves a bearer key.
func (tn *Tenancy) Authenticate(key string) (*Tenant, bool) {
	t, ok := tn.byKey[key]
	return t, ok
}

// Lookup resolves a tenant by name.
func (tn *Tenancy) Lookup(name string) (*Tenant, bool) {
	t, ok := tn.byName[name]
	return t, ok
}

// Tenants returns tenants in key-file order.
func (tn *Tenancy) Tenants() []*Tenant { return tn.order }

// QuotaError reports an oracle query rejected because the tenant's budget is
// exhausted. It carries the exact Counter-style accounting the structured
// 402 envelope exposes.
type QuotaError struct {
	Tenant string
	Spent  int64
	Quota  int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("jobstore: tenant %q oracle-query quota exhausted (%d of %d spent)", e.Tenant, e.Spent, e.Quota)
}

// quotaOracle enforces a tenant's query quota below the job's
// oracle.Counter: each Predict is admitted only if the whole batch fits in
// the remaining budget, and charged to the ledger only on success — the same
// per-row, batching-invariant accounting Counter uses, so a job's journaled
// spend and the ledger can never disagree on a completed call.
type quotaOracle struct {
	tenant *Tenant
	inner  oracle.Oracle
}

// WrapOracle returns inner guarded by t's quota ledger. Tenants without a
// quota still get charged (for usage reporting) but are never rejected.
func WrapOracle(t *Tenant, inner oracle.Oracle) oracle.Oracle {
	if t == nil {
		return inner
	}
	return &quotaOracle{tenant: t, inner: inner}
}

var _ oracle.BatchLimiter = (*quotaOracle)(nil)

func (q *quotaOracle) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	rows := int64(x.Dim(0))
	if err := q.tenant.reserve(rows); err != nil {
		return nil, err
	}
	out, err := q.inner.Predict(ctx, x)
	if err != nil {
		q.tenant.refund(rows)
	}
	return out, err
}

func (q *quotaOracle) NumClasses() int { return q.inner.NumClasses() }
func (q *quotaOracle) InputDim() int   { return q.inner.InputDim() }

// MaxBatch passes through the wrapped oracle's batch limit so quota
// enforcement does not change how callers batch.
func (q *quotaOracle) MaxBatch() int {
	if bl, ok := q.inner.(oracle.BatchLimiter); ok {
		return bl.MaxBatch()
	}
	return 0
}
