package jobstore

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bprom/internal/binio"
)

// Record kinds, one per job state transition. The numeric values are part of
// the on-disk format; append only.
const (
	recCreate     = uint32(1)
	recStart      = uint32(2)
	recCheckpoint = uint32(3)
	recDone       = uint32(4)
	recFailed     = uint32(5)
	recCancelled  = uint32(6)
)

// journalName is the journal file inside the jobs directory.
const journalName = "jobs.journal"

// State is a job's replayed lifecycle state.
type State string

// Job lifecycle states as persisted in the journal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// VerdictRecord is the persisted subset of a bprom verdict.
type VerdictRecord struct {
	Score       float64
	Threshold   float64
	Backdoored  bool
	PromptedAcc float64
	Queries     int64
}

// JobRecord is the replayed state of one job. All fields are value types or
// owned copies; callers may retain returned records.
type JobRecord struct {
	ID        uint64
	ModelID   string
	Tenant    string
	InspectID int
	State     State
	Created   time.Time
	Finished  time.Time

	// Generation/Queries track the latest checkpoint (or the terminal
	// record's spend for finished jobs).
	Generation int
	Queries    int64
	// Checkpoint is the latest opaque search-state blob (nil when the job
	// never checkpointed).
	Checkpoint []byte

	Verdict   *VerdictRecord
	Error     string
	ErrorCode string
}

// clone deep-copies a record so Store internals never alias caller memory.
func (j *JobRecord) clone() *JobRecord {
	c := *j
	c.Checkpoint = append([]byte(nil), j.Checkpoint...)
	if j.Verdict != nil {
		v := *j.Verdict
		c.Verdict = &v
	}
	return &c
}

// Stats is the job_store section of /v1/healthz.
type Stats struct {
	// JournalBytes is the current size of the journal file.
	JournalBytes int64 `json:"journal_bytes"`
	// JobsResumed counts jobs that were replayed in a non-terminal state at
	// the last Open — the jobs the audit manager re-enqueued on boot.
	JobsResumed int `json:"jobs_resumed"`
	// LastCompaction is when the journal was last rewritten to its live
	// prefix (RFC 3339; zero before the first compaction).
	LastCompaction time.Time `json:"last_compaction"`
	// Compactions counts live (size-triggered) compactions since Open. The
	// boot-time compaction is not counted: it happens on every Open.
	Compactions int `json:"compactions,omitempty"`
}

// Store is a journal-backed job store. All methods are safe for concurrent
// use. Appends are synchronous: when a transition method returns, the record
// is in the journal (and fsynced), so an acknowledged transition survives a
// crash.
type Store struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	jobs    map[uint64]*JobRecord
	order   []uint64 // creation order, for stable listings
	bytes   int64
	resumed int
	compact time.Time

	// Size-triggered live compaction (SetCompactThreshold): compactEvery is
	// the byte threshold (0: boot-time compaction only), compactFloor the
	// journal size right after the last live compaction (the hysteresis
	// base, so a live state near the threshold cannot thrash), compactions
	// the live-compaction counter surfaced in Stats.
	compactEvery int64
	compactFloor int64
	compactions  int
}

// Open replays (and compacts) the journal in dir, creating it if needed. A
// missing or empty journal boots clean; a crash-truncated tail is dropped
// silently; a CRC mismatch fails with ErrCorrupt.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	path := filepath.Join(dir, journalName)
	res, err := replayFile(path)
	if err != nil {
		return nil, err
	}
	s := &Store{path: path, jobs: make(map[uint64]*JobRecord)}
	for i, payload := range res.payloads {
		if err := s.apply(payload); err != nil {
			return nil, fmt.Errorf("jobstore: journal record %d: %w", i, err)
		}
	}
	for _, id := range s.order {
		if !s.jobs[id].State.Terminal() {
			s.resumed++
		}
	}
	// Compact: rewrite the journal to the minimal record set that replays
	// to the same live state, then append from there. Compacting on every
	// boot keeps the journal proportional to job history, not to checkpoint
	// churn (each job contributes at most one checkpoint record after
	// compaction).
	if err := s.compactLocked(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	s.f = f
	if fi, err := f.Stat(); err == nil {
		s.bytes = fi.Size()
	}
	return s, nil
}

// Close closes the journal file. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Path returns the journal file path (for diagnostics and tests).
func (s *Store) Path() string { return s.path }

// Stats returns the current job_store health section.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		JournalBytes: s.bytes, JobsResumed: s.resumed,
		LastCompaction: s.compact, Compactions: s.compactions,
	}
}

// SetCompactThreshold enables size-triggered compaction: whenever an append
// pushes the journal past n bytes, the journal is rewritten to its live
// prefix in place (tmp + rename, exactly the boot-time compaction) so a
// long-lived server — a re-audit scheduler churning checkpoints for months —
// cannot grow the journal without bound. Hysteresis keeps it from
// thrashing when the live state itself is near n: after a live compaction
// the next one does not trigger until the journal doubles from its
// post-compaction size. n <= 0 disables live compaction (the default).
func (s *Store) SetCompactThreshold(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactEvery = n
}

// NextSeq returns the smallest job ID larger than every journaled ID, so a
// rebooted manager continues the ID sequence instead of colliding.
func (s *Store) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max uint64
	for id := range s.jobs {
		if id > max {
			max = id
		}
	}
	return max + 1
}

// Jobs returns all replayed jobs in creation order (deep copies).
func (s *Store) Jobs() []*JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobRecord, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].clone())
	}
	return out
}

// TenantSpend sums journaled oracle-query spend per tenant: each job
// contributes its terminal spend, or its latest checkpointed spend while
// still in flight. This seeds the tenancy ledger on boot, so quota
// accounting survives restarts along with the jobs themselves.
func (s *Store) TenantSpend() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	spend := make(map[string]int64)
	for _, j := range s.jobs {
		if j.Tenant == "" {
			continue
		}
		spend[j.Tenant] += j.Queries
	}
	return spend
}

// --- transitions ----------------------------------------------------------------------

// Create journals a new job in StateQueued.
func (s *Store) Create(id uint64, modelID, tenant string, inspectID int, created time.Time) error {
	var buf bytes.Buffer
	must(binio.WriteU32(&buf, recCreate))
	must(binio.WriteU64(&buf, id))
	must(binio.WriteString(&buf, modelID))
	must(binio.WriteString(&buf, tenant))
	must(binio.WriteU64(&buf, uint64(int64(inspectID))))
	must(binio.WriteU64(&buf, uint64(created.UnixNano())))
	return s.append(buf.Bytes())
}

// Start journals the queued→running transition.
func (s *Store) Start(id uint64) error {
	var buf bytes.Buffer
	must(binio.WriteU32(&buf, recStart))
	must(binio.WriteU64(&buf, id))
	return s.append(buf.Bytes())
}

// Checkpoint journals a completed-generation snapshot: the generation count,
// the oracle spend so far, and an opaque resumable search-state blob.
func (s *Store) Checkpoint(id uint64, generation int, queries int64, blob []byte) error {
	var buf bytes.Buffer
	must(binio.WriteU32(&buf, recCheckpoint))
	must(binio.WriteU64(&buf, id))
	must(binio.WriteU64(&buf, uint64(generation)))
	must(binio.WriteU64(&buf, uint64(queries)))
	must(binio.WriteU32(&buf, uint32(len(blob))))
	buf.Write(blob)
	return s.append(buf.Bytes())
}

// Done journals successful completion with the verdict.
func (s *Store) Done(id uint64, v VerdictRecord, finished time.Time) error {
	var buf bytes.Buffer
	must(binio.WriteU32(&buf, recDone))
	must(binio.WriteU64(&buf, id))
	must(binio.WriteF64(&buf, v.Score))
	must(binio.WriteF64(&buf, v.Threshold))
	must(binio.WriteBool(&buf, v.Backdoored))
	must(binio.WriteF64(&buf, v.PromptedAcc))
	must(binio.WriteU64(&buf, uint64(v.Queries)))
	must(binio.WriteU64(&buf, uint64(finished.UnixNano())))
	return s.append(buf.Bytes())
}

// Fail journals failure with a message, a machine-readable code (may be
// empty), and the queries spent before failing.
func (s *Store) Fail(id uint64, msg, code string, queries int64, finished time.Time) error {
	var buf bytes.Buffer
	must(binio.WriteU32(&buf, recFailed))
	must(binio.WriteU64(&buf, id))
	must(binio.WriteString(&buf, msg))
	must(binio.WriteString(&buf, code))
	must(binio.WriteU64(&buf, uint64(queries)))
	must(binio.WriteU64(&buf, uint64(finished.UnixNano())))
	return s.append(buf.Bytes())
}

// Cancel journals user cancellation.
func (s *Store) Cancel(id uint64, finished time.Time) error {
	var buf bytes.Buffer
	must(binio.WriteU32(&buf, recCancelled))
	must(binio.WriteU64(&buf, id))
	must(binio.WriteU64(&buf, uint64(finished.UnixNano())))
	return s.append(buf.Bytes())
}

// must panics on a bytes.Buffer write error, which cannot happen short of
// OOM; it keeps the encoders readable.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// append applies the record to the in-memory state and appends it to the
// journal, fsyncing before returning.
func (s *Store) append(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("jobstore: store is closed")
	}
	if err := s.apply(payload); err != nil {
		return err
	}
	if err := appendFrame(s.f, payload); err != nil {
		return fmt.Errorf("jobstore: appending journal record: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("jobstore: syncing journal: %w", err)
	}
	s.bytes += frameHeaderSize + int64(len(payload))
	if s.compactEvery > 0 && s.bytes >= s.compactEvery && s.bytes >= 2*s.compactFloor {
		return s.compactLive()
	}
	return nil
}

// compactLive rewrites the journal in place and swings the open append
// handle onto the new file (the rename leaves s.f pointing at the unlinked
// old inode). The caller holds s.mu and has already durably appended its
// record, so a failure to *rewrite* is non-fatal — the journal just stays
// big and the next append retries — but a failure to *reopen* after the
// rename would leave appends going to the unlinked inode, which is silent
// data loss; that poisons the store instead.
func (s *Store) compactLive() error {
	if err := s.compactLocked(); err != nil {
		return nil
	}
	old := s.f
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.f = nil
		old.Close()
		return fmt.Errorf("jobstore: reopening journal after compaction: %w", err)
	}
	old.Close()
	s.f = f
	if fi, err := f.Stat(); err == nil {
		s.bytes = fi.Size()
	}
	s.compactFloor = s.bytes
	s.compactions++
	return nil
}

// apply folds one decoded record payload into the in-memory state. It is
// used both on replay and on live append, so replay(journal) == live state
// by construction.
func (s *Store) apply(payload []byte) error {
	r := bytes.NewReader(payload)
	kind, err := binio.ReadU32(r)
	if err != nil {
		return err
	}
	if kind == recCreate {
		id, err := binio.ReadU64(r)
		if err != nil {
			return err
		}
		modelID, err := binio.ReadString(r)
		if err != nil {
			return err
		}
		tenant, err := binio.ReadString(r)
		if err != nil {
			return err
		}
		inspectID, err := binio.ReadU64(r)
		if err != nil {
			return err
		}
		created, err := binio.ReadU64(r)
		if err != nil {
			return err
		}
		if _, exists := s.jobs[id]; exists {
			return fmt.Errorf("duplicate create for job %d", id)
		}
		s.jobs[id] = &JobRecord{
			ID: id, ModelID: modelID, Tenant: tenant,
			InspectID: int(int64(inspectID)), State: StateQueued,
			Created: time.Unix(0, int64(created)),
		}
		s.order = append(s.order, id)
		return nil
	}
	id, err := binio.ReadU64(r)
	if err != nil {
		return err
	}
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("transition %d for unknown job %d", kind, id)
	}
	switch kind {
	case recStart:
		j.State = StateRunning
	case recCheckpoint:
		gen, err := binio.ReadU64(r)
		if err != nil {
			return err
		}
		queries, err := binio.ReadU64(r)
		if err != nil {
			return err
		}
		blobLen, err := binio.ReadU32(r)
		if err != nil {
			return err
		}
		blob := make([]byte, int(blobLen))
		if _, err := io.ReadFull(r, blob); err != nil {
			return err
		}
		j.Generation = int(gen)
		j.Queries = int64(queries)
		j.Checkpoint = blob
	case recDone:
		v := VerdictRecord{}
		if v.Score, err = binio.ReadF64(r); err != nil {
			return err
		}
		if v.Threshold, err = binio.ReadF64(r); err != nil {
			return err
		}
		if v.Backdoored, err = binio.ReadBool(r); err != nil {
			return err
		}
		if v.PromptedAcc, err = binio.ReadF64(r); err != nil {
			return err
		}
		q, err := binio.ReadU64(r)
		if err != nil {
			return err
		}
		fin, err := binio.ReadU64(r)
		if err != nil {
			return err
		}
		v.Queries = int64(q)
		j.Verdict = &v
		j.Queries = v.Queries
		j.State = StateDone
		j.Finished = time.Unix(0, int64(fin))
		j.Checkpoint = nil
	case recFailed:
		msg, err := binio.ReadString(r)
		if err != nil {
			return err
		}
		code, err := binio.ReadString(r)
		if err != nil {
			return err
		}
		q, err := binio.ReadU64(r)
		if err != nil {
			return err
		}
		fin, err := binio.ReadU64(r)
		if err != nil {
			return err
		}
		j.Error = msg
		j.ErrorCode = code
		j.Queries = int64(q)
		j.State = StateFailed
		j.Finished = time.Unix(0, int64(fin))
		j.Checkpoint = nil
	case recCancelled:
		fin, err := binio.ReadU64(r)
		if err != nil {
			return err
		}
		j.State = StateCancelled
		j.Finished = time.Unix(0, int64(fin))
		j.Checkpoint = nil
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
	return nil
}

// compactLocked rewrites the journal to the minimal record sequence that
// replays to the current state: create (+start +latest checkpoint) for live
// jobs, create + terminal for finished ones. Atomic via tmp + rename.
func (s *Store) compactLocked() error {
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: compacting: %w", err)
	}
	write := func(encode func(*bytes.Buffer)) error {
		var buf bytes.Buffer
		encode(&buf)
		return appendFrame(f, buf.Bytes())
	}
	for _, id := range s.order {
		j := s.jobs[id]
		err := write(func(buf *bytes.Buffer) {
			must(binio.WriteU32(buf, recCreate))
			must(binio.WriteU64(buf, j.ID))
			must(binio.WriteString(buf, j.ModelID))
			must(binio.WriteString(buf, j.Tenant))
			must(binio.WriteU64(buf, uint64(int64(j.InspectID))))
			must(binio.WriteU64(buf, uint64(j.Created.UnixNano())))
		})
		if err == nil && j.State == StateRunning {
			err = write(func(buf *bytes.Buffer) {
				must(binio.WriteU32(buf, recStart))
				must(binio.WriteU64(buf, j.ID))
			})
		}
		if err == nil && !j.State.Terminal() && j.Checkpoint != nil {
			err = write(func(buf *bytes.Buffer) {
				must(binio.WriteU32(buf, recCheckpoint))
				must(binio.WriteU64(buf, j.ID))
				must(binio.WriteU64(buf, uint64(j.Generation)))
				must(binio.WriteU64(buf, uint64(j.Queries)))
				must(binio.WriteU32(buf, uint32(len(j.Checkpoint))))
				buf.Write(j.Checkpoint)
			})
		}
		if err == nil {
			switch j.State {
			case StateDone:
				err = write(func(buf *bytes.Buffer) {
					v := j.Verdict
					must(binio.WriteU32(buf, recDone))
					must(binio.WriteU64(buf, j.ID))
					must(binio.WriteF64(buf, v.Score))
					must(binio.WriteF64(buf, v.Threshold))
					must(binio.WriteBool(buf, v.Backdoored))
					must(binio.WriteF64(buf, v.PromptedAcc))
					must(binio.WriteU64(buf, uint64(v.Queries)))
					must(binio.WriteU64(buf, uint64(j.Finished.UnixNano())))
				})
			case StateFailed:
				err = write(func(buf *bytes.Buffer) {
					must(binio.WriteU32(buf, recFailed))
					must(binio.WriteU64(buf, j.ID))
					must(binio.WriteString(buf, j.Error))
					must(binio.WriteString(buf, j.ErrorCode))
					must(binio.WriteU64(buf, uint64(j.Queries)))
					must(binio.WriteU64(buf, uint64(j.Finished.UnixNano())))
				})
			case StateCancelled:
				err = write(func(buf *bytes.Buffer) {
					must(binio.WriteU32(buf, recCancelled))
					must(binio.WriteU64(buf, j.ID))
					must(binio.WriteU64(buf, uint64(j.Finished.UnixNano())))
				})
			}
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("jobstore: compacting: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobstore: compacting: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobstore: compacting: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobstore: compacting: %w", err)
	}
	s.compact = time.Now()
	return nil
}
