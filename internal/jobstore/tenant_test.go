package jobstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bprom/internal/oracle"
	"bprom/internal/tensor"
)

func writeKeys(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys")
	if err := os.WriteFile(path, []byte(lines), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseKeyFile(t *testing.T) {
	path := writeKeys(t, `
# tenants
acme:sk-acme-1:100000:5
globex:sk-globex-9
initech:sk-init:0:2.5
gateway:sk-gw:0:0:service
`)
	cfgs, err := ParseKeyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("parsed %d tenants, want 4", len(cfgs))
	}
	if cfgs[0].Name != "acme" || cfgs[0].Key != "sk-acme-1" || cfgs[0].Quota != 100000 || cfgs[0].RPS != 5 {
		t.Fatalf("acme parsed wrong: %+v", cfgs[0])
	}
	if cfgs[1].Quota != 0 || cfgs[1].RPS != 0 {
		t.Fatalf("globex should be unlimited: %+v", cfgs[1])
	}
	if cfgs[2].RPS != 2.5 {
		t.Fatalf("initech rps parsed wrong: %+v", cfgs[2])
	}
	if !cfgs[3].Service || cfgs[2].Service || cfgs[0].Service {
		t.Fatalf("service flag: gateway=%v acme=%v initech=%v, want only gateway", cfgs[3].Service, cfgs[0].Service, cfgs[2].Service)
	}
	// The flag survives into the live tenant set.
	tn := NewTenancy(cfgs, nil)
	if gw, ok := tn.Lookup("gateway"); !ok || !gw.Service {
		t.Fatalf("live gateway tenant lost the service flag: %+v ok=%v", gw, ok)
	}
	if a, _ := tn.Lookup("acme"); a.Service {
		t.Fatal("acme gained a service flag it was never granted")
	}
}

func TestParseKeyFileRejects(t *testing.T) {
	for name, lines := range map[string]string{
		"empty":         "# only comments\n",
		"no-key":        "acme\n",
		"empty-fields":  "acme:\n",
		"bad-quota":     "acme:k:notanumber\n",
		"neg-quota":     "acme:k:-5\n",
		"dup-key":       "a:k1\nb:k1\n",
		"dup-tenant":    "a:k1\na:k2\n",
		"unknown-flag":  "a:k:1:2:admin\n",
		"too-many-cols": "a:k:1:2:service:x\n",
	} {
		if _, err := ParseKeyFile(writeKeys(t, lines)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

// fixedOracle returns constant confidences and counts calls.
type fixedOracle struct {
	mu    sync.Mutex
	calls int
}

func (o *fixedOracle) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	o.mu.Lock()
	o.calls++
	o.mu.Unlock()
	out := tensor.New(x.Dim(0), 2)
	for i := range out.Data {
		out.Data[i] = 0.5
	}
	return out, nil
}
func (o *fixedOracle) NumClasses() int { return 2 }
func (o *fixedOracle) InputDim() int   { return 4 }

func TestQuotaOracleExactAccounting(t *testing.T) {
	tn := NewTenancy([]TenantConfig{{Name: "acme", Key: "k", Quota: 10}}, nil)
	tenant, _ := tn.Lookup("acme")
	inner := &fixedOracle{}
	counter := oracle.NewCounter(WrapOracle(tenant, inner))
	ctx := context.Background()

	// 3 batches of 3 rows fit; a 4th would cross 10.
	for i := 0; i < 3; i++ {
		if _, err := counter.Predict(ctx, tensor.New(3, 4)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := counter.Predict(ctx, tensor.New(3, 4))
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("want QuotaError, got %v", err)
	}
	// The envelope's accounting matches oracle.Counter exactly: the
	// rejected batch is not charged anywhere.
	if qe.Spent != 9 || qe.Quota != 10 {
		t.Fatalf("quota error accounting %d/%d, want 9/10", qe.Spent, qe.Quota)
	}
	if counter.Queries() != 9 || tenant.Spent() != 9 {
		t.Fatalf("counter %d / ledger %d, want 9/9", counter.Queries(), tenant.Spent())
	}
	// A 1-row probe still fits.
	if _, err := counter.Predict(ctx, tensor.New(1, 4)); err != nil {
		t.Fatal(err)
	}
	if counter.Queries() != 10 || tenant.Spent() != 10 {
		t.Fatalf("counter %d / ledger %d, want 10/10", counter.Queries(), tenant.Spent())
	}
}

func TestQuotaLedgerSeedsFromStore(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	now := time.Now()
	if err := s.Create(1, "m", "acme", 1, now); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(1, 2, 7, []byte("st")); err != nil {
		t.Fatal(err)
	}
	tn := NewTenancy([]TenantConfig{{Name: "acme", Key: "k", Quota: 10}}, s.TenantSpend())
	tenant, _ := tn.Lookup("acme")
	if tenant.Spent() != 7 {
		t.Fatalf("seeded spend %d, want 7", tenant.Spent())
	}
	// Only 3 queries left.
	inner := &fixedOracle{}
	wrapped := WrapOracle(tenant, inner)
	if _, err := wrapped.Predict(context.Background(), tensor.New(4, 4)); err == nil {
		t.Fatal("4-row batch should exceed the reseeded quota")
	}
	if _, err := wrapped.Predict(context.Background(), tensor.New(3, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestRateLimitTokenBucket(t *testing.T) {
	tn := NewTenancy([]TenantConfig{{Name: "a", Key: "k", RPS: 10}}, nil)
	tenant, _ := tn.Lookup("a")
	now := time.Now()
	// Burst capacity is 2×RPS.
	allowed := 0
	for i := 0; i < 50; i++ {
		if tenant.Allow(now) {
			allowed++
		}
	}
	if allowed != 20 {
		t.Fatalf("burst allowed %d, want 20", allowed)
	}
	// After one second, ~10 more tokens accrue.
	now = now.Add(time.Second)
	allowed = 0
	for i := 0; i < 50; i++ {
		if tenant.Allow(now) {
			allowed++
		}
	}
	if allowed != 10 {
		t.Fatalf("refill allowed %d, want 10", allowed)
	}
	// Unlimited tenants never throttle.
	tn2 := NewTenancy([]TenantConfig{{Name: "b", Key: "k2"}}, nil)
	b, _ := tn2.Lookup("b")
	for i := 0; i < 1000; i++ {
		if !b.Allow(now) {
			t.Fatal("unlimited tenant throttled")
		}
	}
}

func TestSchedulerFiresAndStops(t *testing.T) {
	fired := make(chan struct{}, 64)
	s := NewScheduler(5*time.Millisecond, func(ctx context.Context) {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	for i := 0; i < 3; i++ {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatal("scheduler never fired")
		}
	}
	s.Close()
	if s.Fired() < 3 {
		t.Fatalf("fired %d, want >= 3", s.Fired())
	}
	// No fires after Close.
	n := s.Fired()
	time.Sleep(30 * time.Millisecond)
	if s.Fired() != n {
		t.Fatal("scheduler fired after Close")
	}
}
