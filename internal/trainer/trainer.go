// Package trainer runs mini-batch training loops over nn models and data
// datasets. It is deliberately small: shuffle, batch, forward, loss,
// backward, clip, step — with optional per-epoch evaluation and early
// stopping. Everything heavier (poisoning, prompting, detection) is built on
// top of it.
//
// The batch loop itself stays single-flight (gradient accumulation into
// shared Params requires it) and gets its parallelism from below: the tensor
// kernels inside Forward/Backward partition row blocks onto the shared
// worker pool, and batch augmentation fans out on the same pool. Concurrent
// Train calls on different models (bprom shadow training) therefore compose
// without oversubscription — all of them share one bounded pool.
package trainer

import (
	"context"
	"fmt"

	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/opt"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Config controls one training run.
type Config struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// WeightDecay is the L2 coefficient (SGD only).
	WeightDecay float64
	// ClipNorm bounds the global gradient norm; <= 0 disables.
	ClipNorm float64
	// UseAdam selects Adam instead of SGD+momentum.
	UseAdam bool
	// TargetAcc stops early once training accuracy reaches this level
	// (checked per epoch); <= 0 disables.
	TargetAcc float64
	// AugmentShift applies random-translation augmentation of up to ±N
	// pixels per batch sample (the random-crop analogue of standard CIFAR
	// training; Backdoor Toolbox trains with RandomCrop(32, padding=4)).
	// Without it, a fixed-position trigger degenerates to a constant-offset
	// feature in dense models and the class-subspace distortion the paper
	// studies does not form. Default 0 (off); experiments use 2.
	AugmentShift int
	// Quiet suppresses the per-epoch log callback even if set.
	Log func(epoch int, loss, acc float64)
}

// Defaults fills unset fields with values that train the synthetic datasets
// reliably at experiment scale.
func (c *Config) Defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		// 0.01 with momentum 0.9 trains every architecture family on the
		// synthetic datasets; 0.05+ diverges (verified by sweep).
		c.LR = 0.01
	}
	if c.Momentum == 0 && !c.UseAdam {
		c.Momentum = 0.9
	}
}

// Result summarizes a training run.
type Result struct {
	Epochs    int
	FinalLoss float64
	TrainAcc  float64
}

// Train fits model on train with the given config. The context aborts
// between batches, letting experiment sweeps time out cleanly.
func Train(ctx context.Context, model *nn.Model, train *data.Dataset, cfg Config, r *rng.RNG) (Result, error) {
	cfg.Defaults()
	if train.Len() == 0 {
		return Result{}, fmt.Errorf("trainer: empty training set")
	}
	if train.Shape.Dim() != model.InputDim {
		return Result{}, fmt.Errorf("trainer: dataset dim %d != model input %d", train.Shape.Dim(), model.InputDim)
	}
	params := model.Params()
	var optimizer opt.Optimizer
	if cfg.UseAdam {
		optimizer = opt.NewAdam(params, cfg.LR)
	} else {
		optimizer = opt.NewSGD(params, cfg.LR, cfg.Momentum, cfg.WeightDecay)
	}
	res := Result{}
	n := train.Len()
	pass := model.NewPass()
	defer pass.Release()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := r.Perm(n)
		var lossSum float64
		var correct, seen int
		for start := 0; start < n; start += cfg.BatchSize {
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("trainer: aborted: %w", err)
			}
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			x, y := train.Batch(perm[start:end])
			if cfg.AugmentShift > 0 {
				augmentShift(x, train.Shape, cfg.AugmentShift, r)
			}
			model.ZeroGrad()
			logits := pass.Forward(x, true)
			loss, grad := nn.CrossEntropy(logits, y)
			correct += int(nn.Accuracy(logits, y) * float64(len(y)))
			seen += len(y)
			lossSum += loss * float64(len(y))
			pass.Backward(grad)
			opt.ClipGradNorm(params, cfg.ClipNorm)
			optimizer.Step()
		}
		res.Epochs = epoch + 1
		res.FinalLoss = lossSum / float64(seen)
		res.TrainAcc = float64(correct) / float64(seen)
		if cfg.Log != nil {
			cfg.Log(epoch, res.FinalLoss, res.TrainAcc)
		}
		if cfg.TargetAcc > 0 && res.TrainAcc >= cfg.TargetAcc {
			break
		}
	}
	return res, nil
}

// augmentShift translates every sample of a materialized batch by an
// independent random offset in [-maxShift, maxShift]² with edge clamping
// (equivalent to pad-and-crop augmentation).
//
// The offsets are drawn serially up front — the rng stream must not depend
// on goroutine scheduling, or training loses bit-reproducibility — and the
// pixel shuffles then run on the shared tensor worker pool, each sample
// touching only its own rows of the batch.
func augmentShift(x *tensor.Tensor, sh data.Shape, maxShift int, r *rng.RNG) {
	n := x.Dim(0)
	w := sh.Dim()
	offs := make([][2]int, n)
	for i := range offs {
		offs[i] = [2]int{
			r.Intn(2*maxShift+1) - maxShift,
			r.Intn(2*maxShift+1) - maxShift,
		}
	}
	shift := func(lo, hi int) {
		buf := make([]float64, w)
		for i := lo; i < hi; i++ {
			dx, dy := offs[i][0], offs[i][1]
			if dx == 0 && dy == 0 {
				continue
			}
			img := x.Data[i*w : (i+1)*w]
			for c := 0; c < sh.C; c++ {
				off := c * sh.H * sh.W
				for y := 0; y < sh.H; y++ {
					sy := clampInt(y+dy, 0, sh.H-1)
					for xx := 0; xx < sh.W; xx++ {
						sx := clampInt(xx+dx, 0, sh.W-1)
						buf[off+y*sh.W+xx] = img[off+sy*sh.W+sx]
					}
				}
			}
			copy(img, buf)
		}
	}
	if tensor.WorthParallel(n * w) {
		tensor.ParallelFor(n, 8, shift)
	} else {
		shift(0, n)
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Evaluate returns classification accuracy of model on ds, processing in
// batches of batchSize (default 256 when <= 0).
func Evaluate(model *nn.Model, ds *data.Dataset, batchSize int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 256
	}
	n := ds.Len()
	correct := 0
	idx := make([]int, 0, batchSize)
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		idx = idx[:0]
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		x, y := ds.Batch(idx)
		logits := model.Infer(x)
		correct += int(nn.Accuracy(logits, y)*float64(len(y)) + 0.5)
	}
	return float64(correct) / float64(n)
}
