package trainer

import (
	"context"
	"testing"
	"time"

	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/rng"
)

func smallDataset(t *testing.T, seed uint64, perClass int) *data.Dataset {
	t.Helper()
	g := data.NewGenerator(data.MustSpec(data.CIFAR10), seed)
	return g.Generate(perClass, rng.New(seed))
}

func TestTrainLearnsSyntheticCIFAR(t *testing.T) {
	// End-to-end learnability: every architecture must fit the synthetic
	// CIFAR-10 analogue well above chance. This validates the whole
	// substrate (data clustering + backprop + optimizer).
	ds := smallDataset(t, 1, 30)
	train, test := ds.Split(0.25, rng.New(2))
	for _, arch := range []nn.Arch{nn.ArchResNetLite, nn.ArchMobileNetLite, nn.ArchVitLite} {
		m, err := nn.Build(nn.ArchConfig{
			Arch: arch, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
			NumClasses: ds.Classes, Hidden: 32,
		}, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Train(context.Background(), m, train, Config{Epochs: 12}, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		acc := Evaluate(m, test, 0)
		if acc < 0.7 {
			t.Errorf("%s: test accuracy %.3f < 0.7 (train acc %.3f)", arch, acc, res.TrainAcc)
		}
	}
}

func TestTrainEarlyStop(t *testing.T) {
	ds := smallDataset(t, 5, 20)
	m, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchResNetLite, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
		NumClasses: ds.Classes, Hidden: 32,
	}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(context.Background(), m, ds, Config{Epochs: 50, TargetAcc: 0.8}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 50 && res.TrainAcc < 0.8 {
		t.Fatalf("never reached target accuracy: %.3f", res.TrainAcc)
	}
	if res.TrainAcc >= 0.8 && res.Epochs == 50 {
		t.Log("reached target only on final epoch; acceptable")
	}
	if res.Epochs > 30 {
		t.Errorf("early stopping did not trigger (ran %d epochs)", res.Epochs)
	}
}

func TestTrainContextCancellation(t *testing.T) {
	ds := smallDataset(t, 8, 30)
	m, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchResNetLite, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
		NumClasses: ds.Classes, Hidden: 32,
	}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	if _, err := Train(ctx, m, ds, Config{Epochs: 100}, rng.New(10)); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestTrainRejectsEmptyAndMismatched(t *testing.T) {
	ds := smallDataset(t, 11, 2)
	m, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: ds.Classes, Hidden: 8,
	}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(context.Background(), m, ds, Config{}, rng.New(13)); err == nil {
		t.Fatal("expected dimension-mismatch error")
	}
	empty := &data.Dataset{Shape: data.Shape{C: 1, H: 4, W: 4}, Classes: 2}
	if _, err := Train(context.Background(), m, empty, Config{}, rng.New(14)); err == nil {
		t.Fatal("expected empty-dataset error")
	}
}

func TestTrainDeterministic(t *testing.T) {
	ds := smallDataset(t, 15, 10)
	build := func() *nn.Model {
		m, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchResNetLite, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
			NumClasses: ds.Classes, Hidden: 16,
		}, rng.New(16))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := build(), build()
	cfg := Config{Epochs: 3}
	if _, err := Train(context.Background(), m1, ds, cfg, rng.New(17)); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(context.Background(), m2, ds, cfg, rng.New(17)); err != nil {
		t.Fatal(err)
	}
	d1 := m1.Params()[0].Value.Data
	d2 := m2.Params()[0].Value.Data
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("training is not deterministic under identical seeds")
		}
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m, err := nn.Build(nn.ArchConfig{Arch: nn.ArchResNetLite, C: 1, H: 2, W: 2, NumClasses: 2, Hidden: 4}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	empty := &data.Dataset{Shape: data.Shape{C: 1, H: 2, W: 2}, Classes: 2}
	if got := Evaluate(m, empty, 0); got != 0 {
		t.Fatalf("Evaluate(empty) = %v", got)
	}
}

func TestAdamPathTrains(t *testing.T) {
	ds := smallDataset(t, 19, 15)
	m, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchVitLite, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
		NumClasses: ds.Classes, Hidden: 24,
	}, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(context.Background(), m, ds, Config{Epochs: 8, LR: 0.003, UseAdam: true, ClipNorm: 5}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainAcc < 0.5 {
		t.Fatalf("Adam training accuracy %.3f too low", res.TrainAcc)
	}
}
