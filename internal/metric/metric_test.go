package metric

import (
	"math"
	"testing"
	"testing/quick"

	"bprom/internal/rng"
)

func TestAUROCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	auc, err := AUROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("AUROC = %v, want 1", auc)
	}
}

func TestAUROCInverted(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	auc, err := AUROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Fatalf("AUROC = %v, want 0", auc)
	}
}

func TestAUROCChance(t *testing.T) {
	// identical scores: AUROC must be exactly 0.5 via midranks
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	auc, err := AUROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Fatalf("AUROC = %v, want 0.5", auc)
	}
}

func TestAUROCKnownValue(t *testing.T) {
	// hand-computed example with one inversion
	scores := []float64{0.9, 0.3, 0.6, 0.1}
	labels := []bool{true, true, false, false}
	// pairs: (0.9 vs 0.6): win, (0.9 vs 0.1): win, (0.3 vs 0.6): loss, (0.3 vs 0.1): win
	// AUROC = 3/4
	auc, err := AUROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.75) > 1e-12 {
		t.Fatalf("AUROC = %v, want 0.75", auc)
	}
}

func TestAUROCErrorsWithoutBothClasses(t *testing.T) {
	if _, err := AUROC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Fatal("expected error for all-positive labels")
	}
	if _, err := AUROC([]float64{1, 2}, []bool{false, false}); err == nil {
		t.Fatal("expected error for all-negative labels")
	}
	if _, err := AUROC([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func TestAUROCInvarianceToMonotoneTransform(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20
		scores := make([]float64, n)
		labels := make([]bool, n)
		r.Gaussian(scores, 0, 1)
		pos := 0
		for i := range labels {
			labels[i] = r.Float64() < 0.5
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true // undefined case, skip
		}
		a1, err1 := AUROC(scores, labels)
		scaled := make([]float64, n)
		for i, s := range scores {
			scaled[i] = math.Exp(2*s) + 7 // strictly monotone
		}
		a2, err2 := AUROC(scaled, labels)
		return err1 == nil && err2 == nil && math.Abs(a1-a2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestROCEndpoints(t *testing.T) {
	scores := []float64{0.9, 0.7, 0.4, 0.2}
	labels := []bool{true, false, true, false}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	last := curve[len(curve)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("ROC must end at (1,1), got (%v,%v)", last.FPR, last.TPR)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].TPR < curve[i-1].TPR || curve[i].FPR < curve[i-1].FPR {
			t.Fatal("ROC must be monotone")
		}
	}
}

func TestConfusionAndDerivedMetrics(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.6, 0.4, 0.2}
	labels := []bool{true, false, true, false, false}
	c := Confuse(scores, labels, 0.5)
	if c.TP != 2 || c.FP != 1 || c.TN != 2 || c.FN != 0 {
		t.Fatalf("confusion %+v", c)
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Fatalf("precision %v", c.Precision())
	}
	if c.Recall() != 1 {
		t.Fatalf("recall %v", c.Recall())
	}
	wantF1 := 2 * (2.0 / 3) * 1 / (2.0/3 + 1)
	if math.Abs(c.F1()-wantF1) > 1e-12 {
		t.Fatalf("F1 %v, want %v", c.F1(), wantF1)
	}
	if math.Abs(c.Accuracy()-0.8) > 1e-12 {
		t.Fatalf("accuracy %v", c.Accuracy())
	}
}

func TestConfusionEmptyEdges(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty confusion must yield zeros, not NaN")
	}
}

func TestBestF1AtLeastFixedThreshold(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 15
		scores := make([]float64, n)
		labels := make([]bool, n)
		r.Uniform(scores, 0, 1)
		hasPos := false
		for i := range labels {
			labels[i] = r.Float64() < 0.4
			hasPos = hasPos || labels[i]
		}
		if !hasPos {
			return true
		}
		return BestF1(scores, labels) >= F1AtThreshold(scores, labels, 0.5)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBestF1PerfectScores(t *testing.T) {
	if got := BestF1([]float64{0.9, 0.8, 0.1}, []bool{true, true, false}); got != 1 {
		t.Fatalf("BestF1 = %v, want 1", got)
	}
	if got := BestF1(nil, nil); got != 0 {
		t.Fatalf("BestF1(empty) = %v", got)
	}
}
