// Package metric implements the detection-quality metrics the paper reports:
// ROC curves with AUROC, and F1 / precision / recall at a threshold. Scores
// follow the convention "higher = more likely positive (backdoored /
// poisoned / triggered)".
package metric

import (
	"fmt"
	"sort"
)

// AUROC computes the area under the ROC curve for scores with binary labels
// (true = positive). It handles ties by the trapezoidal rule over the
// rank-ordered sweep, equivalent to the Mann–Whitney U statistic. It returns
// an error when either class is absent — an undefined-AUROC situation that
// experiment code must surface rather than average away.
func AUROC(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("metric: %d scores for %d labels", len(scores), len(labels))
	}
	var pos, neg int
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("metric: AUROC undefined with %d positives and %d negatives", pos, neg)
	}
	// Mann–Whitney with midranks for ties.
	type pair struct {
		s float64
		l bool
	}
	ps := make([]pair, len(scores))
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	rankSumPos := 0.0
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		// midrank for the tied block [i, j)
		mid := float64(i+j-1)/2 + 1 // ranks are 1-based
		for k := i; k < j; k++ {
			if ps[k].l {
				rankSumPos += mid
			}
		}
		i = j
	}
	u := rankSumPos - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg)), nil
}

// ROCPoint is one point of an ROC curve.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROC returns the full ROC curve, one point per distinct threshold, sweeping
// from the highest score (strictest) to the lowest.
func ROC(scores []float64, labels []bool) ([]ROCPoint, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("metric: %d scores for %d labels", len(scores), len(labels))
	}
	var pos, neg int
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("metric: ROC undefined with %d positives and %d negatives", pos, neg)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var curve []ROCPoint
	tp, fp := 0, 0
	i := 0
	for i < len(idx) {
		th := scores[idx[i]]
		for i < len(idx) && scores[idx[i]] == th {
			if labels[idx[i]] {
				tp++
			} else {
				fp++
			}
			i++
		}
		curve = append(curve, ROCPoint{
			Threshold: th,
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
		})
	}
	return curve, nil
}

// Confusion holds binary-classification counts at a threshold.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse thresholds scores at th (score >= th predicts positive).
func Confuse(scores []float64, labels []bool, th float64) Confusion {
	var c Confusion
	for i, s := range scores {
		pred := s >= th
		switch {
		case pred && labels[i]:
			c.TP++
		case pred && !labels[i]:
			c.FP++
		case !pred && labels[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), 0 when no positives are predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when no positives exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall (0 when undefined).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// F1AtThreshold is the common shorthand used by the experiment tables.
func F1AtThreshold(scores []float64, labels []bool, th float64) float64 {
	return Confuse(scores, labels, th).F1()
}

// BestF1 sweeps all score thresholds and returns the maximum F1 (papers
// commonly report the best-threshold F1 for sample-level detectors).
func BestF1(scores []float64, labels []bool) float64 {
	if len(scores) == 0 {
		return 0
	}
	uniq := append([]float64(nil), scores...)
	sort.Float64s(uniq)
	best := 0.0
	for _, th := range uniq {
		if f := F1AtThreshold(scores, labels, th); f > best {
			best = f
		}
	}
	return best
}
