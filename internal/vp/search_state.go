package vp

import (
	"fmt"
	"io"

	"bprom/internal/binio"
	"bprom/internal/cmaes"
)

// SearchState is the resumable state of a black-box prompt search at a
// CMA-ES generation boundary: the full optimizer snapshot plus the
// mini-batch sampling RNG. Together they determine every remaining oracle
// query, so a search resumed from a SearchState reproduces the
// uninterrupted run bit-for-bit — learned θ and per-image query count
// alike. This is the payload of audit-job checkpoints in the journaled job
// store.
type SearchState struct {
	CMA      cmaes.SepState
	BatchRNG [6]uint64
}

// Clone deep-copies the state so journal encoding never races the search.
func (st *SearchState) Clone() *SearchState {
	c := &SearchState{CMA: st.CMA, BatchRNG: st.BatchRNG}
	c.CMA.Mean = append([]float64(nil), st.CMA.Mean...)
	c.CMA.Diag = append([]float64(nil), st.CMA.Diag...)
	c.CMA.Ps = append([]float64(nil), st.CMA.Ps...)
	c.CMA.Pc = append([]float64(nil), st.CMA.Pc...)
	c.CMA.Best = append([]float64(nil), st.CMA.Best...)
	return c
}

// Save writes the search state to w in the binio wire format.
func (st *SearchState) Save(w io.Writer) error {
	for _, v := range []uint64{uint64(st.CMA.Iter), uint64(st.CMA.Evals), uint64(st.CMA.Stale)} {
		if err := binio.WriteU64(w, v); err != nil {
			return err
		}
	}
	for _, v := range []float64{st.CMA.Sigma, st.CMA.BestValue, st.CMA.PrevBest} {
		if err := binio.WriteF64(w, v); err != nil {
			return err
		}
	}
	for _, s := range [][]float64{st.CMA.Mean, st.CMA.Diag, st.CMA.Ps, st.CMA.Pc, st.CMA.Best} {
		if err := binio.WriteFloats(w, s); err != nil {
			return err
		}
	}
	for _, words := range [][6]uint64{st.CMA.RNG, st.BatchRNG} {
		for _, v := range words {
			if err := binio.WriteU64(w, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadSearchState reads a state previously written by Save.
func LoadSearchState(r io.Reader) (*SearchState, error) {
	st := &SearchState{}
	var words [3]uint64
	for i := range words {
		v, err := binio.ReadU64(r)
		if err != nil {
			return nil, err
		}
		words[i] = v
	}
	st.CMA.Iter, st.CMA.Evals, st.CMA.Stale = int(words[0]), int(words[1]), int(words[2])
	for _, dst := range []*float64{&st.CMA.Sigma, &st.CMA.BestValue, &st.CMA.PrevBest} {
		v, err := binio.ReadF64(r)
		if err != nil {
			return nil, err
		}
		*dst = v
	}
	for _, dst := range []*[]float64{&st.CMA.Mean, &st.CMA.Diag, &st.CMA.Ps, &st.CMA.Pc, &st.CMA.Best} {
		s, err := binio.ReadFloats(r)
		if err != nil {
			return nil, err
		}
		*dst = s
	}
	for _, dst := range []*[6]uint64{&st.CMA.RNG, &st.BatchRNG} {
		for i := range dst {
			v, err := binio.ReadU64(r)
			if err != nil {
				return nil, err
			}
			dst[i] = v
		}
	}
	n := len(st.CMA.Mean)
	for _, s := range [][]float64{st.CMA.Diag, st.CMA.Ps, st.CMA.Pc, st.CMA.Best} {
		if len(s) != n {
			return nil, fmt.Errorf("vp: search state vectors disagree on dimension (%d vs %d)", len(s), n)
		}
	}
	return st, nil
}
