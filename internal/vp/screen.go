package vp

// Inline request screening: the serving-time flip of the paper's setting.
// BPROM trains a prompt that separates backdoored from clean MODELS; Stein
// et al. (arXiv 2412.08755) observe the same learned prompts also expose
// backdoored INPUTS — a trigger is engineered to dominate the model's
// decision, so it survives being resized into the prompt's inner window,
// while the benign signal of a clean input diffuses against the learned
// border. A Screener carries one trained prompt plus a decision threshold
// and scores individual serving inputs: high score = the prompted view
// still classifies confidently AND agrees with the plain prediction, the
// STRIP-style entropy collapse that marks trigger-carrying inputs
// (internal/defense/input_level.go measures the same observable offline).
//
// The screener is deliberately inference-only: scoring row i needs exactly
// two confidence rows — the plain input and its prompted view — from ANY
// oracle-equivalent forward pass, fp64 or int8. The serving engine
// (internal/mlaas) fuses the prompted views into the same micro-batched
// Predict tick as the plain rows, so screening rides the existing forward
// pass instead of doubling inference calls.

import (
	"fmt"
	"math"

	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/tensor"
)

// DefaultScreenThreshold is the flagging threshold used when a Screener is
// built with a non-positive one. Scores live in [0,1]; clean inputs under a
// trained prompt typically land well below this, trigger-carrying inputs
// near 1.
const DefaultScreenThreshold = 0.7

// ScreenResult is one input row's screening outcome.
type ScreenResult struct {
	// Score is the suspicion score in [0,1]: the mean of (a) the prompted
	// view's confidence in the plain prediction's class and (b) one minus
	// the prompted view's normalized entropy.
	Score float64
	// Flagged reports Score >= Threshold.
	Flagged bool
	// Threshold echoes the screener's decision threshold.
	Threshold float64
}

// Screener scores serving inputs with a trained visual prompt. It is
// immutable after construction and safe for concurrent use: every scoring
// method allocates its own scratch.
type Screener struct {
	prompt    *Prompt
	threshold float64
	inner     data.Shape
}

// NewScreener builds a screener over a trained prompt. threshold is the
// flagging cutoff in (0,1]; non-positive means DefaultScreenThreshold.
func NewScreener(p *Prompt, threshold float64) (*Screener, error) {
	if p == nil || p.Dim() == 0 {
		return nil, fmt.Errorf("vp: screener needs a trained prompt")
	}
	if threshold <= 0 {
		threshold = DefaultScreenThreshold
	}
	if threshold > 1 {
		return nil, fmt.Errorf("vp: screening threshold %v outside (0,1]", threshold)
	}
	return &Screener{
		prompt:    p.Clone(),
		threshold: threshold,
		inner:     data.Shape{C: p.Source.C, H: p.Inner, W: p.Inner},
	}, nil
}

// InputDim reports the input width the screener expects — the prompt's
// source canvas. Models with a different input width cannot be screened.
func (s *Screener) InputDim() int { return s.prompt.Source.Dim() }

// Threshold reports the flagging cutoff.
func (s *Screener) Threshold() float64 { return s.threshold }

// Prompt returns a copy of the screening prompt (analysis, artifacts).
func (s *Screener) Prompt() *Prompt { return s.prompt.Clone() }

// MaterializeInto writes the prompted view of every row of src — the row
// resized into the prompt's inner window, learned border around it — into
// rows [row0, row0+src.Dim(0)) of x. src rows must be full source-canvas
// images (InputDim wide); x must be at least as wide and tall enough.
// This is the fusion hook: the serving engine appends these rows to a
// micro-batch tensor so one forward pass covers plain rows and prompted
// views alike.
func (s *Screener) MaterializeInto(x *tensor.Tensor, row0 int, src *tensor.Tensor) {
	n := src.Dim(0)
	if n == 0 {
		return
	}
	dim := s.prompt.Source.Dim()
	resized := make([]float64, s.inner.Dim())
	window := func(i int) []float64 {
		data.ResizeImage(src.Data[i*dim:(i+1)*dim], s.prompt.Source, resized, s.inner)
		return resized
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	s.prompt.materializeInto(x, row0, s.prompt.Theta, window, idx)
}

// Score folds one row's plain and prompted confidence vectors into its
// screening outcome. Both rows must come from the same model (same class
// count). The score averages two trigger observables: the prompted view's
// confidence in the plain argmax class (a surviving trigger keeps hijacking
// the same class) and the prompted view's entropy collapse (1 - H/ln K —
// clean inputs diffuse to high entropy under the prompt).
func (s *Screener) Score(plain, prompted []float64) ScreenResult {
	arg := 0
	best := math.Inf(-1)
	for j, v := range plain {
		if v > best {
			best, arg = v, j
		}
	}
	agree := prompted[arg]
	concentration := 1.0
	if k := len(prompted); k > 1 {
		h := 0.0
		for _, v := range prompted {
			if v > 0 {
				h -= v * math.Log(v)
			}
		}
		concentration = 1 - h/math.Log(float64(k))
	}
	score := 0.5*agree + 0.5*concentration
	return ScreenResult{Score: score, Flagged: score >= s.threshold, Threshold: s.threshold}
}

// Screen scores a batch the reference way: one forward pass for the plain
// rows and one for their prompted views, then per-row Score. The fused
// serving path must agree with this bit-for-bit (nn.Model.Predict outputs
// are row-independent, so fusing the two passes into one tensor changes
// nothing); the parity tests hold the two together. Works on fp64 and
// quantized models alike — screening only ever needs inference.
func (s *Screener) Screen(model *nn.Model, x *tensor.Tensor) []ScreenResult {
	n := x.Dim(0)
	plain := model.Predict(x)
	views := tensor.New(n, s.prompt.Source.Dim())
	s.MaterializeInto(views, 0, x)
	prompted := model.Predict(views)
	k := plain.Dim(1)
	out := make([]ScreenResult, n)
	for i := 0; i < n; i++ {
		out[i] = s.Score(plain.Data[i*k:(i+1)*k], prompted.Data[i*k:(i+1)*k])
	}
	return out
}
