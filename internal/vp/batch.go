package vp

// Generation-batched prompt evaluation. CMA-ES prompt training dominates a
// black-box audit's wall clock, and its objective decomposes into a
// candidate-invariant part (resizing training images into the inner window)
// and a candidate-dependent part (the border θ). This file exploits both:
// the resize cache computes every inner-window image once per training run,
// and the generation evaluator materializes all λ×k prompted canvases of a
// CMA-ES generation into one pooled tensor and issues a single fused
// oracle.Predict per generation — so remote oracles' parallel chunk fan-out
// and the serving stack's micro-batch engine see full-width batches instead
// of λ narrow ones. Everything here is bit-identical to the serial path
// (locked in by the parity tests): candidate order, mini-batch RNG draws,
// per-row model outputs, and oracle query accounting (queries = rows) are
// all preserved.

import (
	"context"
	"fmt"
	"math"
	"sync"

	"bprom/internal/data"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// promptChunk is the row granularity at which predictPrompted streams
// canvases through an oracle that does NOT advertise a transport batch
// limit (an in-process model): it bounds the peak canvas + activation
// footprint of large evaluation sets. Oracles that do advertise one
// (oracle.BatchLimiter — mlaas clients, server-side audit oracles) get a
// wider window instead — max(promptChunk, 4×MaxBatch) rows per Predict —
// enough for a parallel-fan-out client to keep its in-flight request
// budget full, while staying bounded by the advertised width rather than
// the evaluation-set size. Either way the split is invisible to query
// accounting (counters count rows, not calls) and to the results (per-row
// model outputs are batch-size independent).
const promptChunk = 512

// fanoutRequests is how many transport requests' worth of rows
// predictPrompted materializes per Predict against a BatchLimiter oracle.
// It mirrors mlaas.Client's maxInflightChunks (the client's parallel
// request budget): fewer would starve the fan-out, more would grow the
// canvas footprint without adding parallelism. Keep the two in sync.
const fanoutRequests = 4

// canvasPool recycles the flat scratch behind prompted-canvas tensors
// (mirroring nn's sync.Pool-backed Pass workspaces): the evaluation paths
// materialize λ×k canvases per CMA-ES generation, and pooling makes that
// allocation-free after the first generation.
var canvasPool sync.Pool

// getCanvas returns a pooled float64 slice of length n. Contents are
// unspecified — callers overwrite every element (a prompted canvas is
// border ∪ window, which covers the whole row).
func getCanvas(n int) *[]float64 {
	if p, ok := canvasPool.Get().(*[]float64); ok && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	s := make([]float64, n)
	return &s
}

func putCanvas(p *[]float64) { canvasPool.Put(p) }

// resizeCache holds every sample of one dataset bilinearly resized into a
// prompt's inner window — the candidate-invariant half of prompt
// application. TrainBlackBox resizes each training image exactly once per
// call (instead of once per objective evaluation), and TrainWhiteBox once
// per call (instead of once per epoch×batch visit). The cached pixels are
// bit-identical to an on-the-fly resize: both run the same
// data.ResizeImage on the same inputs.
type resizeCache struct {
	dim  int
	data []float64 // [ds.Len()][dim], row i = sample i resized
}

func newResizeCache(p *Prompt, ds *data.Dataset) *resizeCache {
	inner := data.Shape{C: p.Source.C, H: p.Inner, W: p.Inner}
	c := &resizeCache{dim: inner.Dim()}
	c.data = make([]float64, ds.Len()*c.dim)
	for i := 0; i < ds.Len(); i++ {
		data.ResizeImage(ds.Sample(i), ds.Shape, c.data[i*c.dim:(i+1)*c.dim], inner)
	}
	return c
}

// resized returns sample i's cached inner-window pixels. Callers must not
// mutate the result.
func (c *resizeCache) resized(i int) []float64 { return c.data[i*c.dim : (i+1)*c.dim] }

// fillBorder writes clamp01(theta) into dst's border pixels.
func (p *Prompt) fillBorder(dst, theta []float64) {
	for i, bi := range p.borderIdx {
		dst[bi] = clamp01(theta[i])
	}
}

// copyWindow writes an already-resized inner image into dst's window rows.
func (p *Prompt) copyWindow(dst, resized []float64) {
	for c := 0; c < p.Source.C; c++ {
		srcOff := c * p.Inner * p.Inner
		dstOff := c * p.Source.H * p.Source.W
		for y := 0; y < p.Inner; y++ {
			copy(dst[dstOff+(p.y0+y)*p.Source.W+p.x0:dstOff+(p.y0+y)*p.Source.W+p.x0+p.Inner],
				resized[srcOff+y*p.Inner:srcOff+(y+1)*p.Inner])
		}
	}
}

// materializeInto writes the prompted canvases for samples idx, under
// border theta, into rows [row0, row0+len(idx)) of x. The border is filled
// once (scattered writes) into the first row and block-copied to the rest,
// then each row receives its window — so per-row cost is two contiguous
// copies instead of a scatter plus a resize.
func (p *Prompt) materializeInto(x *tensor.Tensor, row0 int, theta []float64, window func(sample int) []float64, idx []int) {
	if len(idx) == 0 {
		return
	}
	dim := p.Source.Dim()
	first := x.Data[row0*dim : (row0+1)*dim]
	p.fillBorder(first, theta)
	for r := 1; r < len(idx); r++ {
		copy(x.Data[(row0+r)*dim:(row0+r+1)*dim], first)
	}
	for r, i := range idx {
		p.copyWindow(x.Data[(row0+r)*dim:(row0+r+1)*dim], window(i))
	}
}

// genEvaluator is the cmaes.BatchObjective behind TrainBlackBox: one fused
// oracle call per CMA-ES generation. It draws every candidate's mini-batch
// up front in candidate order (the exact Sample sequence the serial
// objective consumes), materializes all λ×k canvases into one pooled
// tensor, sends them through the oracle in a single Predict, and folds the
// confidence rows back into per-candidate losses in the serial path's
// summation order — so best-θ selection and the query counter are
// bit-identical to the per-candidate path.
type genEvaluator struct {
	ctx      context.Context
	oracle   oracle.Oracle
	prompt   *Prompt
	cache    *resizeCache
	train    *data.Dataset
	k        int       // samples per candidate evaluation
	batchRNG *rng.RNG  // shared with the serial objective
	errp     *error    // first oracle failure, shared with TrainBlackBox
	fs       []float64 // per-candidate losses, reused across generations
	idx      []int     // λ×k sample indices, reused across generations
}

func (e *genEvaluator) evaluate(cands [][]float64) []float64 {
	lam := len(cands)
	if cap(e.fs) < lam {
		e.fs = make([]float64, lam)
	}
	fs := e.fs[:lam]
	if *e.errp != nil || e.ctx.Err() != nil {
		for i := range fs {
			fs[i] = math.Inf(1)
		}
		return fs
	}
	n := e.train.Len()
	if cap(e.idx) < lam*e.k {
		e.idx = make([]int, 0, lam*e.k)
	}
	idx := e.idx[:0]
	for range cands {
		idx = append(idx, e.batchRNG.Sample(n, e.k)...)
	}
	e.idx = idx

	dim := e.prompt.Source.Dim()
	rows := lam * e.k
	buf := getCanvas(rows * dim)
	defer putCanvas(buf)
	x := tensor.FromSlice(*buf, rows, dim)
	for c, theta := range cands {
		e.prompt.materializeInto(x, c*e.k, theta, e.cache.resized, idx[c*e.k:(c+1)*e.k])
	}
	probs, err := e.oracle.Predict(e.ctx, x)
	if err != nil {
		*e.errp = err
		for i := range fs {
			fs[i] = math.Inf(1)
		}
		return fs
	}
	classes := probs.Dim(1)
	for c := 0; c < lam; c++ {
		loss := 0.0
		for bi := 0; bi < e.k; bi++ {
			row := c*e.k + bi
			pTrue := probs.Data[row*classes+e.train.Y[idx[row]]]
			loss -= math.Log(math.Max(pTrue, 1e-12))
		}
		fs[c] = loss / float64(e.k)
	}
	return fs
}

// predictPrompted streams the prompted canvases for ds[idx] through o in
// chunks of at most promptChunk rows, reusing one pooled canvas (and one
// resize scratch) across chunks, and collects the [len(idx), K] confidence
// tensor. Prompted.Confidences and Accuracy share it with the audit
// feature-extraction path; it replaces the per-chunk idx rebuild and canvas
// allocation the old Accuracy loop paid. Chunking is invisible to results
// and query accounting: per-row outputs are batch-size independent, and
// counters count rows, not calls.
func predictPrompted(ctx context.Context, o oracle.Oracle, p *Prompt, ds *data.Dataset, idx []int) (*tensor.Tensor, error) {
	classes := o.NumClasses()
	out := tensor.New(len(idx), classes)
	inner := data.Shape{C: p.Source.C, H: p.Inner, W: p.Inner}
	// The resize scratch is a few hundred floats allocated once per call —
	// deliberately NOT drawn from canvasPool, whose buffers are row-batch
	// sized: pooling it would let tiny buffers evict the large canvases.
	resized := make([]float64, inner.Dim())
	window := func(i int) []float64 {
		data.ResizeImage(ds.Sample(i), ds.Shape, resized, inner)
		return resized
	}
	dim := p.Source.Dim()
	chunk := promptChunk
	if bl, ok := o.(oracle.BatchLimiter); ok && bl.MaxBatch() > 0 {
		// Self-chunking transport (a positive limit means the oracle splits
		// to it internally): widen our materialization window to a few
		// transport requests' worth, so a parallel-fan-out client
		// (mlaas.Client keeps up to 4 chunked requests in flight) sees
		// enough rows per call to saturate its fan-out. Materializing
		// beyond that buys no extra parallelism — sequential self-chunkers
		// (server-side audit oracles) split any width into the same
		// requests — so the canvas footprint stays bounded by the
		// advertised width instead of the evaluation-set size. A zero
		// MaxBatch — e.g. a Counter around an in-process model — keeps the
		// promptChunk streamed path.
		if c := fanoutRequests * bl.MaxBatch(); c > chunk {
			chunk = c
		}
	}
	if chunk > len(idx) {
		chunk = len(idx)
	}
	buf := getCanvas(chunk * dim)
	defer putCanvas(buf)
	for start := 0; start < len(idx); start += chunk {
		end := start + chunk
		if end > len(idx) {
			end = len(idx)
		}
		x := tensor.FromSlice((*buf)[:(end-start)*dim], end-start, dim)
		p.materializeInto(x, 0, p.Theta, window, idx[start:end])
		probs, err := o.Predict(ctx, x)
		if err != nil {
			return nil, err
		}
		if probs.Dim(0) != end-start || probs.Dim(1) != classes {
			return nil, fmt.Errorf("vp: oracle returned %v confidences for %d prompted samples of %d advertised classes",
				probs.Shape(), end-start, classes)
		}
		copy(out.Data[start*classes:end*classes], probs.Data)
	}
	return out, nil
}
