package vp

import (
	"context"
	"math"
	"sync"
	"testing"

	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/trainer"
)

func shapes() (src, tgt data.Shape) {
	return data.Shape{C: 3, H: 12, W: 12}, data.Shape{C: 3, H: 16, W: 16}
}

func TestNewPromptGeometry(t *testing.T) {
	src, tgt := shapes()
	p, err := NewPrompt(src, tgt, 0.83)
	if err != nil {
		t.Fatal(err)
	}
	if p.Inner != 10 {
		t.Fatalf("inner window %d, want 10", p.Inner)
	}
	wantBorder := src.Dim() - 3*10*10
	if p.Dim() != wantBorder {
		t.Fatalf("border dim %d, want %d", p.Dim(), wantBorder)
	}
}

func TestNewPromptValidation(t *testing.T) {
	src, tgt := shapes()
	if _, err := NewPrompt(src, tgt, 0); err == nil {
		t.Fatal("expected error for frac 0")
	}
	if _, err := NewPrompt(src, tgt, 1); err == nil {
		t.Fatal("expected error for no border")
	}
	if _, err := NewPrompt(src, data.Shape{C: 1, H: 16, W: 16}, 0.8); err == nil {
		t.Fatal("expected error for channel mismatch")
	}
	if _, err := NewPrompt(data.Shape{}, tgt, 0.8); err == nil {
		t.Fatal("expected error for invalid shape")
	}
}

func TestApplyPlacesImageAndTheta(t *testing.T) {
	src, tgt := shapes()
	p, err := NewPrompt(src, tgt, 0.83)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Theta {
		p.Theta[i] = 0.25
	}
	img := make([]float64, tgt.Dim())
	for i := range img {
		img[i] = 1 // all-white target image
	}
	dst := make([]float64, src.Dim())
	p.Apply(dst, img, tgt)
	// center pixel must be the image (1), a corner pixel must be θ (0.25)
	center := (src.H/2)*src.W + src.W/2
	if dst[center] != 1 {
		t.Fatalf("center pixel %v, want 1", dst[center])
	}
	if dst[0] != 0.25 {
		t.Fatalf("corner pixel %v, want theta 0.25", dst[0])
	}
}

func TestApplyClampsTheta(t *testing.T) {
	src, tgt := shapes()
	p, _ := NewPrompt(src, tgt, 0.83)
	p.Theta[0] = 5
	p.Theta[1] = -3
	dst := make([]float64, src.Dim())
	img := make([]float64, tgt.Dim())
	p.Apply(dst, img, tgt)
	if dst[0] != 1 {
		t.Fatalf("over-range theta not clamped: %v", dst[0])
	}
}

func TestBatchMatchesApply(t *testing.T) {
	src, _ := shapes()
	gen := data.NewGenerator(data.MustSpec(data.STL10), 1)
	ds := gen.Generate(2, rng.New(2))
	p, err := NewPrompt(src, ds.Shape, 0.83)
	if err != nil {
		t.Fatal(err)
	}
	rng.New(3).Uniform(p.Theta, 0, 1)
	batch := p.Batch(ds, []int{3, 7})
	single := make([]float64, src.Dim())
	p.Apply(single, ds.Sample(7), ds.Shape)
	row := batch.Row(1)
	for i := range single {
		if math.Abs(single[i]-row[i]) > 1e-12 {
			t.Fatal("Batch differs from Apply")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	src, tgt := shapes()
	p, _ := NewPrompt(src, tgt, 0.83)
	c := p.Clone()
	c.Theta[0] = 0.9
	if p.Theta[0] == 0.9 {
		t.Fatal("Clone aliases Theta")
	}
}

// trainSourceModel fits a small model on the synthetic CIFAR analogue.
func trainSourceModel(t *testing.T, seed uint64) (*nn.Model, *data.Dataset) {
	t.Helper()
	gen := data.NewGenerator(data.MustSpec(data.CIFAR10), seed)
	ds := gen.Generate(30, rng.New(seed))
	m, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchConvLite, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
		NumClasses: ds.Classes, Hidden: 24,
	}, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Train(context.Background(), m, ds, trainer.Config{Epochs: 10}, rng.New(seed+2)); err != nil {
		t.Fatal(err)
	}
	return m, ds
}

func TestWhiteBoxPromptingImprovesOverRandomTheta(t *testing.T) {
	ctx := context.Background()
	model, src := trainSourceModel(t, 1)
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 5)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(12, 6, rng.New(6))

	p, err := NewPrompt(src.Shape, tgtTrain.Shape, 0.83)
	if err != nil {
		t.Fatal(err)
	}
	rng.New(7).Uniform(p.Theta, 0, 1)
	before, err := (&Prompted{Oracle: oracle.NewModelOracle(model), Prompt: p}).Accuracy(ctx, tgtTest)
	if err != nil {
		t.Fatal(err)
	}
	if err := TrainWhiteBox(ctx, model, p, tgtTrain, WhiteBoxConfig{Epochs: 6}, rng.New(8)); err != nil {
		t.Fatal(err)
	}
	after, err := (&Prompted{Oracle: oracle.NewModelOracle(model), Prompt: p}).Accuracy(ctx, tgtTest)
	if err != nil {
		t.Fatal(err)
	}
	if after < before-0.05 {
		t.Fatalf("white-box prompting hurt: %.3f -> %.3f", before, after)
	}
	if after < 0.5 {
		t.Fatalf("prompted accuracy %.3f too low on clean model", after)
	}
}

func TestBlackBoxPromptingReachesUsefulAccuracy(t *testing.T) {
	ctx := context.Background()
	model, src := trainSourceModel(t, 11)
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 15)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(12, 6, rng.New(16))

	p, err := NewPrompt(src.Shape, tgtTrain.Shape, 0.83)
	if err != nil {
		t.Fatal(err)
	}
	o := oracle.NewCounter(oracle.NewModelOracle(model))
	if err := TrainBlackBox(ctx, o, p, tgtTrain, BlackBoxConfig{Iterations: 25}, rng.New(17)); err != nil {
		t.Fatal(err)
	}
	if o.Queries() == 0 {
		t.Fatal("black-box prompting made no oracle queries")
	}
	acc, err := (&Prompted{Oracle: o, Prompt: p}).Accuracy(ctx, tgtTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Fatalf("black-box prompted accuracy %.3f on clean model", acc)
	}
}

func TestBlackBoxQueryBudget(t *testing.T) {
	ctx := context.Background()
	model, src := trainSourceModel(t, 21)
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 25)
	tgtTrain, _ := tgtGen.GenerateSplit(10, 4, rng.New(26))
	p, _ := NewPrompt(src.Shape, tgtTrain.Shape, 0.83)
	o := oracle.NewCounter(oracle.NewModelOracle(model))
	cfg := BlackBoxConfig{Iterations: 100, BatchSize: 20, MaxQueries: 500}
	if err := TrainBlackBox(ctx, o, p, tgtTrain, cfg, rng.New(27)); err != nil {
		t.Fatal(err)
	}
	if o.Queries() > 520 { // one batch of slack
		t.Fatalf("query budget exceeded: %d", o.Queries())
	}
}

func TestTrainValidation(t *testing.T) {
	ctx := context.Background()
	model, src := trainSourceModel(t, 31)
	big := data.NewGenerator(data.MustSpec(data.GTSRB), 33).Generate(2, rng.New(34))
	p, _ := NewPrompt(src.Shape, big.Shape, 0.83)
	// 43-class target task cannot map onto 10-class source model.
	if err := TrainWhiteBox(ctx, model, p, big, WhiteBoxConfig{}, rng.New(35)); err == nil {
		t.Fatal("expected class-count error")
	}
	if err := TrainBlackBox(ctx, oracle.NewModelOracle(model), p, big, BlackBoxConfig{}, rng.New(36)); err == nil {
		t.Fatal("expected class-count error")
	}
	empty := &data.Dataset{Shape: big.Shape, Classes: 5}
	if err := TrainWhiteBox(ctx, model, p, empty, WhiteBoxConfig{}, rng.New(37)); err == nil {
		t.Fatal("expected empty-dataset error")
	}
}

func TestSPSAPathRuns(t *testing.T) {
	ctx := context.Background()
	model, src := trainSourceModel(t, 41)
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 45)
	tgtTrain, _ := tgtGen.GenerateSplit(8, 4, rng.New(46))
	p, _ := NewPrompt(src.Shape, tgtTrain.Shape, 0.83)
	cfg := BlackBoxConfig{Iterations: 5, UseSPSA: true}
	if err := TrainBlackBox(ctx, oracle.NewModelOracle(model), p, tgtTrain, cfg, rng.New(47)); err != nil {
		t.Fatal(err)
	}
	for _, v := range p.Theta {
		if v < 0 || v > 1 {
			t.Fatalf("theta %v outside [0,1] after SPSA", v)
		}
	}
}

func TestAccuracyEmptySet(t *testing.T) {
	model, src := trainSourceModel(t, 51)
	tgt := data.Shape{C: 3, H: 16, W: 16}
	p, _ := NewPrompt(src.Shape, tgt, 0.83)
	empty := &data.Dataset{Shape: tgt, Classes: 10}
	if _, err := (&Prompted{Oracle: oracle.NewModelOracle(model), Prompt: p}).Accuracy(context.Background(), empty); err == nil {
		t.Fatal("expected error for empty evaluation set")
	}
}

// TestBlackBoxSerialBatchedBitParity locks the tentpole contract at the vp
// level: training a prompt through the generation-batched evaluator (one
// fused oracle call per generation) must be bit-identical to the legacy
// per-candidate path — same learned θ, same oracle query count — including
// when MaxQueries truncates the final generation mid-population.
func TestBlackBoxSerialBatchedBitParity(t *testing.T) {
	ctx := context.Background()
	model, src := trainSourceModel(t, 61)
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 65)
	tgtTrain, _ := tgtGen.GenerateSplit(10, 4, rng.New(66))

	cases := []struct {
		name string
		cfg  BlackBoxConfig
	}{
		{"default", BlackBoxConfig{Iterations: 8}},
		{"custom-pop", BlackBoxConfig{Iterations: 6, PopSize: 9, BatchSize: 5}},
		{"truncating-budget", BlackBoxConfig{Iterations: 50, BatchSize: 6, MaxQueries: 6 * 23}}, // 23 evals: not a λ multiple
		{"batch-capped-by-n", BlackBoxConfig{Iterations: 4, BatchSize: 64}},                     // k capped to len(train)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(serial bool) (*Prompt, int64) {
				p, err := NewPrompt(src.Shape, tgtTrain.Shape, 0.83)
				if err != nil {
					t.Fatal(err)
				}
				cfg := tc.cfg
				cfg.SerialEval = serial
				o := oracle.NewCounter(oracle.NewModelOracle(model))
				if err := TrainBlackBox(ctx, o, p, tgtTrain, cfg, rng.New(67)); err != nil {
					t.Fatal(err)
				}
				return p, o.Queries()
			}
			pSerial, qSerial := run(true)
			pBatched, qBatched := run(false)
			if qBatched != qSerial {
				t.Fatalf("query count diverged: batched %d, serial %d", qBatched, qSerial)
			}
			if qSerial == 0 {
				t.Fatal("no oracle queries made")
			}
			for i := range pSerial.Theta {
				if pBatched.Theta[i] != pSerial.Theta[i] {
					t.Fatalf("theta[%d] diverged: batched %v, serial %v", i, pBatched.Theta[i], pSerial.Theta[i])
				}
			}
		})
	}
}

// TestBatchedEvaluatorSharedOracleRace drives several concurrent
// generation-batched trainings against ONE shared ModelOracle (the fleet
// audit topology: every audit goroutine funnels into the shared tensor
// worker pool). Run under -race this is the data-race harness; the result
// check asserts the trainings stay independent despite the shared oracle
// and the shared canvas pool.
func TestBatchedEvaluatorSharedOracleRace(t *testing.T) {
	ctx := context.Background()
	model, src := trainSourceModel(t, 71)
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 75)
	tgtTrain, _ := tgtGen.GenerateSplit(10, 4, rng.New(76))
	shared := oracle.NewModelOracle(model)

	const workers = 4
	thetas := make([][]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := NewPrompt(src.Shape, tgtTrain.Shape, 0.83)
			if err != nil {
				errs[w] = err
				return
			}
			// Workers 0 and 2 share a seed; they must agree bit-for-bit
			// even while racing workers 1 and 3 on the same oracle.
			if errs[w] = TrainBlackBox(ctx, shared, p, tgtTrain, BlackBoxConfig{Iterations: 5}, rng.New(80+uint64(w%2))); errs[w] == nil {
				thetas[w] = p.Theta
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for i := range thetas[0] {
		if thetas[0][i] != thetas[2][i] {
			t.Fatal("same-seed concurrent trainings diverged: shared state leaked between workers")
		}
	}
}

// TestSPSARespectsQueryBudgetAndContext covers the SPSA parity satellite:
// MaxQueries must bound SPSA audits exactly as it bounds CMA-ES ones, and a
// cancelled context must stop the optimization with an error.
func TestSPSARespectsQueryBudgetAndContext(t *testing.T) {
	ctx := context.Background()
	model, src := trainSourceModel(t, 81)
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 85)
	tgtTrain, _ := tgtGen.GenerateSplit(10, 4, rng.New(86))

	p, _ := NewPrompt(src.Shape, tgtTrain.Shape, 0.83)
	o := oracle.NewCounter(oracle.NewModelOracle(model))
	cfg := BlackBoxConfig{Iterations: 100, BatchSize: 20, MaxQueries: 500, UseSPSA: true}
	if err := TrainBlackBox(ctx, o, p, tgtTrain, cfg, rng.New(87)); err != nil {
		t.Fatal(err)
	}
	if o.Queries() == 0 {
		t.Fatal("SPSA made no oracle queries")
	}
	if o.Queries() > 500 {
		t.Fatalf("SPSA exceeded MaxQueries: %d > 500", o.Queries())
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	p2, _ := NewPrompt(src.Shape, tgtTrain.Shape, 0.83)
	if err := TrainBlackBox(cancelled, oracle.NewModelOracle(model), p2, tgtTrain, cfg, rng.New(88)); err == nil {
		t.Fatal("expected cancellation error from SPSA path")
	}
}

// TestConfidencesMatchesBatchPredict pins the refactored chunked
// Confidences path to the reference Batch+Predict composition.
func TestConfidencesMatchesBatchPredict(t *testing.T) {
	ctx := context.Background()
	model, src := trainSourceModel(t, 91)
	tgtGen := data.NewGenerator(data.MustSpec(data.STL10), 95)
	ds := tgtGen.Generate(3, rng.New(96))
	p, err := NewPrompt(src.Shape, ds.Shape, 0.83)
	if err != nil {
		t.Fatal(err)
	}
	rng.New(97).Uniform(p.Theta, 0, 1)
	o := oracle.NewModelOracle(model)
	idx := []int{5, 0, 17, 3}
	pm := &Prompted{Oracle: o, Prompt: p}
	got, err := pm.Confidences(ctx, ds, idx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := o.Predict(ctx, p.Batch(ds, idx))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim(0) != want.Dim(0) || got.Dim(1) != want.Dim(1) {
		t.Fatalf("shape %v, want %v", got.Shape(), want.Shape())
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("confidence %d diverged: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestResizeCacheMatchesDirectResize pins the cache to data.ResizeImage.
func TestResizeCacheMatchesDirectResize(t *testing.T) {
	src, _ := shapes()
	gen := data.NewGenerator(data.MustSpec(data.STL10), 99)
	ds := gen.Generate(2, rng.New(99))
	p, err := NewPrompt(src, ds.Shape, 0.83)
	if err != nil {
		t.Fatal(err)
	}
	cache := newResizeCache(p, ds)
	inner := data.Shape{C: p.Source.C, H: p.Inner, W: p.Inner}
	want := make([]float64, inner.Dim())
	for i := 0; i < ds.Len(); i++ {
		data.ResizeImage(ds.Sample(i), ds.Shape, want, inner)
		got := cache.resized(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("cached resize of sample %d differs at %d", i, j)
			}
		}
	}
}
