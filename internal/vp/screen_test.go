package vp

import (
	"math"
	"testing"

	"bprom/internal/data"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

func testScreenPrompt(t *testing.T) *Prompt {
	t.Helper()
	p, err := NewPrompt(data.Shape{C: 1, H: 6, W: 6}, data.Shape{C: 1, H: 8, W: 8}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng.New(11).Uniform(p.Theta, 0, 1)
	return p
}

func TestNewScreenerValidation(t *testing.T) {
	p := testScreenPrompt(t)
	if _, err := NewScreener(nil, 0.5); err == nil {
		t.Fatal("nil prompt accepted")
	}
	if _, err := NewScreener(p, 1.5); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
	s, err := NewScreener(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold() != DefaultScreenThreshold {
		t.Fatalf("non-positive threshold resolved to %v, want default %v", s.Threshold(), DefaultScreenThreshold)
	}
	if s.InputDim() != 36 {
		t.Fatalf("InputDim %d, want 36", s.InputDim())
	}
	// The screener clones the prompt: mutating the original later must not
	// move scores.
	p.Theta[0] = 123
	if got := s.Prompt().Theta[0]; got == 123 {
		t.Fatal("screener shares the caller's Theta")
	}
}

func TestScreenerScoreMath(t *testing.T) {
	s, err := NewScreener(testScreenPrompt(t), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	plain := []float64{0.2, 0.5, 0.3}
	prompted := []float64{0.1, 0.8, 0.1}
	h := -(0.1*math.Log(0.1) + 0.8*math.Log(0.8) + 0.1*math.Log(0.1))
	want := 0.5*0.8 + 0.5*(1-h/math.Log(3))
	got := s.Score(plain, prompted)
	if math.Abs(got.Score-want) > 1e-12 {
		t.Fatalf("score %v, want %v", got.Score, want)
	}
	if got.Threshold != 0.7 || got.Flagged != (want >= 0.7) {
		t.Fatalf("result %+v inconsistent with threshold 0.7", got)
	}
	// A fully collapsed prompted distribution on the plain argmax is the
	// canonical trigger signature: score 1, always flagged.
	if r := s.Score([]float64{0, 1, 0}, []float64{0, 1, 0}); math.Abs(r.Score-1) > 1e-12 || !r.Flagged {
		t.Fatalf("collapsed distribution scored %+v, want 1/flagged", r)
	}
}

// TestScreenerMaterializeMatchesApply pins the fused-path building block:
// MaterializeInto must write exactly the prompted view Prompt.Apply defines,
// row by row, at the requested offset.
func TestScreenerMaterializeMatchesApply(t *testing.T) {
	p := testScreenPrompt(t)
	s, err := NewScreener(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	const n, off = 4, 3
	src := tensor.New(n, 36)
	rng.New(21).Uniform(src.Data, 0, 1)
	x := tensor.New(off+n, 36)
	s.MaterializeInto(x, off, src)

	want := make([]float64, 36)
	for i := 0; i < n; i++ {
		p.Apply(want, src.Row(i), p.Source)
		got := x.Data[(off+i)*36 : (off+i+1)*36]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d elem %d: materialized %v, Apply %v", i, j, got[j], want[j])
			}
		}
	}
	// Rows below the offset stay untouched.
	for i := 0; i < off*36; i++ {
		if x.Data[i] != 0 {
			t.Fatalf("MaterializeInto wrote below row0 at %d", i)
		}
	}
}
