package vp

import (
	"fmt"
	"io"

	"bprom/internal/binio"
	"bprom/internal/data"
)

// Binary prompt section of the detector artifact: the source canvas
// geometry, the inner window side length, and the learned border pixels θ.
// The border index set is not stored — it is a pure function of the
// geometry and is rebuilt on load, so the section stays compact and cannot
// desynchronize from the canvas shape. The enclosing artifact
// (internal/bprom/serialize.go) carries magic and version.

// Save writes the prompt section to w.
func (p *Prompt) Save(w io.Writer) error {
	for _, v := range []int{p.Source.C, p.Source.H, p.Source.W, p.Inner} {
		if err := binio.WriteU32(w, uint32(v)); err != nil {
			return err
		}
	}
	return binio.WriteFloats(w, p.Theta)
}

// LoadPrompt reads a prompt section previously written by Save and rebuilds
// the border geometry.
func LoadPrompt(r io.Reader) (*Prompt, error) {
	var vals [4]uint32
	for i := range vals {
		v, err := binio.ReadU32(r)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	source := data.Shape{C: int(vals[0]), H: int(vals[1]), W: int(vals[2])}
	if !source.Valid() {
		return nil, fmt.Errorf("vp: invalid prompt canvas %+v", source)
	}
	p, err := newPromptGeometry(source, int(vals[3]))
	if err != nil {
		return nil, err
	}
	theta, err := binio.ReadFloats(r)
	if err != nil {
		return nil, err
	}
	if len(theta) != len(p.Theta) {
		return nil, fmt.Errorf("vp: prompt has %d border values, geometry needs %d", len(theta), len(p.Theta))
	}
	p.Theta = theta
	return p, nil
}
