// Package vp implements visual prompting (VP / model reprogramming): a
// frozen source-domain classifier is adapted to a target-domain task by
// resizing target images into an inner window of the source canvas and
// learning the surrounding border pixels θ (the visual prompt).
//
// Two training paths mirror the paper exactly:
//
//   - White-box (shadow models, §5.2 "Prompting Shadow Models"): θ is
//     trained by backpropagating the task loss through the frozen model to
//     its input pixels.
//   - Black-box (the suspicious model): θ is trained with CMA-ES using only
//     oracle confidence queries.
//
// Output label mapping O(·|w) is the identity over the first K_T source
// classes, as in the paper's experiments ("we omitted this step"), which
// requires K_T ≤ K_S.
package vp

import (
	"context"
	"fmt"
	"math"

	"bprom/internal/cmaes"
	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Prompt is the visual prompt V(·|θ): geometry plus the trainable border.
type Prompt struct {
	// Source is the canvas geometry (the suspicious model's input domain).
	Source data.Shape
	// Inner is the side length of the centered window receiving the resized
	// target image.
	Inner int
	// Theta holds one value per border pixel (the canvas pixels outside the
	// inner window), in canvas scan order. Values live in [0,1]: border
	// pixels ARE the prompt.
	Theta []float64

	borderIdx []int // canvas indices owned by Theta, precomputed
	x0, y0    int   // inner window origin
}

// NewPrompt builds a prompt for adapting target-shaped images to a
// source-shaped model. innerFrac (0,1] controls the window size; the paper's
// setup resizes the target image to roughly 2/3 of the canvas. The channel
// counts must match.
func NewPrompt(source data.Shape, target data.Shape, innerFrac float64) (*Prompt, error) {
	if !source.Valid() || !target.Valid() {
		return nil, fmt.Errorf("vp: invalid shapes source=%+v target=%+v", source, target)
	}
	if source.C != target.C {
		return nil, fmt.Errorf("vp: channel mismatch source=%d target=%d", source.C, target.C)
	}
	if innerFrac <= 0 || innerFrac > 1 {
		return nil, fmt.Errorf("vp: innerFrac %v outside (0,1]", innerFrac)
	}
	inner := int(math.Round(innerFrac * float64(min(source.H, source.W))))
	if inner < 1 {
		inner = 1
	}
	p, err := newPromptGeometry(source, inner)
	if err != nil {
		return nil, err
	}
	for i := range p.Theta {
		p.Theta[i] = 0.5 // neutral gray start
	}
	return p, nil
}

// newPromptGeometry builds a prompt from its canonical geometry — the
// source canvas and the inner window side length — with Theta zeroed. Both
// NewPrompt and the artifact decoder (serialize.go) derive the border index
// set from this one function, so a deserialized prompt is geometrically
// identical to a freshly constructed one.
func newPromptGeometry(source data.Shape, inner int) (*Prompt, error) {
	if inner < 1 || inner >= min(source.H, source.W) {
		return nil, fmt.Errorf("vp: inner window %d leaves no border on %dx%d canvas", inner, source.H, source.W)
	}
	p := &Prompt{
		Source: source,
		Inner:  inner,
		x0:     (source.W - inner) / 2,
		y0:     (source.H - inner) / 2,
	}
	for c := 0; c < source.C; c++ {
		off := c * source.H * source.W
		for y := 0; y < source.H; y++ {
			for x := 0; x < source.W; x++ {
				if x >= p.x0 && x < p.x0+inner && y >= p.y0 && y < p.y0+inner {
					continue
				}
				p.borderIdx = append(p.borderIdx, off+y*source.W+x)
			}
		}
	}
	p.Theta = make([]float64, len(p.borderIdx))
	return p, nil
}

// Dim returns the number of trainable prompt parameters.
func (p *Prompt) Dim() int { return len(p.Theta) }

// Clone deep-copies the prompt (geometry shared, Theta copied).
func (p *Prompt) Clone() *Prompt {
	c := *p
	c.Theta = append([]float64(nil), p.Theta...)
	return &c
}

// Apply writes the prompted canvas for one target image into dst
// (len Source.Dim()): the image resized into the inner window, θ on the
// border.
func (p *Prompt) Apply(dst, img []float64, imgShape data.Shape) {
	inner := data.Shape{C: p.Source.C, H: p.Inner, W: p.Inner}
	resized := make([]float64, inner.Dim())
	data.ResizeImage(img, imgShape, resized, inner)
	p.applyResized(dst, resized)
}

func (p *Prompt) applyResized(dst, resized []float64) {
	p.fillBorder(dst, p.Theta)
	p.copyWindow(dst, resized)
}

// Batch materializes prompted canvases for the given samples of ds as an
// [len(idx), Source.Dim()] tensor.
func (p *Prompt) Batch(ds *data.Dataset, idx []int) *tensor.Tensor {
	out := tensor.New(len(idx), p.Source.Dim())
	inner := data.Shape{C: p.Source.C, H: p.Inner, W: p.Inner}
	resized := make([]float64, inner.Dim())
	for bi, i := range idx {
		data.ResizeImage(ds.Sample(i), ds.Shape, resized, inner)
		p.applyResized(out.Data[bi*p.Source.Dim():(bi+1)*p.Source.Dim()], resized)
	}
	return out
}

// clampTheta keeps prompt pixels valid after a gradient step.
func (p *Prompt) clampTheta() {
	for i, v := range p.Theta {
		p.Theta[i] = clamp01(v)
	}
}

// --- White-box prompt training -------------------------------------------------------

// WhiteBoxConfig controls gradient-based prompt training on an owned model.
type WhiteBoxConfig struct {
	Epochs    int     // default 8
	BatchSize int     // default 32
	LR        float64 // default 0.5 (θ is low-dimensional and bounded)
	Momentum  float64 // default 0.9
}

func (c *WhiteBoxConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.5
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
}

// TrainWhiteBox optimizes p.Theta by backpropagating through the frozen
// model (its weights are never updated). Labels map identically onto the
// first K_T source classes; it errors when the target task has more classes
// than the source model.
func TrainWhiteBox(ctx context.Context, model *nn.Model, p *Prompt, train *data.Dataset, cfg WhiteBoxConfig, r *rng.RNG) error {
	cfg.defaults()
	if train.Classes > model.NumClasses {
		return fmt.Errorf("vp: target task has %d classes, source model only %d", train.Classes, model.NumClasses)
	}
	if p.Source.Dim() != model.InputDim {
		return fmt.Errorf("vp: prompt canvas %d != model input %d", p.Source.Dim(), model.InputDim)
	}
	if train.Len() == 0 {
		return fmt.Errorf("vp: empty prompt training set")
	}
	vel := make([]float64, p.Dim())
	n := train.Len()
	pass := model.NewPass()
	defer pass.Release()
	// Candidate-invariant work is hoisted out of the epoch loop: every
	// image is resized into the inner window once (the old path re-resized
	// each image every epoch), and one pooled canvas is reused across
	// batches. The materialized pixels are bit-identical to the old
	// per-batch Prompt.Batch, so θ's trajectory is unchanged.
	cache := newResizeCache(p, train)
	dim := p.Source.Dim()
	bs := cfg.BatchSize
	if bs > n {
		bs = n
	}
	buf := getCanvas(bs * dim)
	defer putCanvas(buf)
	y := make([]int, bs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := r.Perm(n)
		for start := 0; start < n; start += cfg.BatchSize {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("vp: aborted: %w", err)
			}
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			idx := perm[start:end]
			x := tensor.FromSlice((*buf)[:len(idx)*dim], len(idx), dim)
			p.materializeInto(x, 0, p.Theta, cache.resized, idx)
			yb := y[:len(idx)]
			for bi, i := range idx {
				yb[bi] = train.Y[i]
			}
			logits := pass.Forward(x, false)
			_, grad := nn.CrossEntropy(logits, yb)
			dx := pass.Backward(grad)
			// Accumulate input gradient onto θ (sum over batch rows at the
			// border positions) and take a momentum SGD step.
			for ti, bi := range p.borderIdx {
				g := 0.0
				for row := 0; row < len(idx); row++ {
					g += dx.Data[row*p.Source.Dim()+bi]
				}
				vel[ti] = cfg.Momentum*vel[ti] - cfg.LR*g
				p.Theta[ti] += vel[ti]
			}
			p.clampTheta()
		}
	}
	return nil
}

// --- Black-box prompt training --------------------------------------------------------

// BlackBoxConfig controls CMA-ES prompt training against an oracle.
type BlackBoxConfig struct {
	// Iterations bounds CMA-ES generations. Default 40.
	Iterations int
	// PopSize is the CMA-ES population (default from dimension).
	PopSize int
	// BatchSize is the number of target samples per objective evaluation.
	// Default 24.
	BatchSize int
	// Sigma0 is the initial CMA-ES step. Default 0.15 (pixels are in [0,1]).
	Sigma0 float64
	// MaxQueries bounds total oracle sample queries (0 = unlimited).
	MaxQueries int
	// UseSPSA switches to SPSA (ablation).
	UseSPSA bool
	// SerialEval forces the legacy per-candidate evaluation path: one
	// oracle call per CMA-ES candidate, re-resizing the mini-batch per
	// evaluation. The default generation-batched path (one fused oracle
	// call per generation) is bit-identical — same θ, same query count —
	// and strictly faster; this switch exists for the parity harness, the
	// before/after benchmarks, and debugging. Ignored by SPSA (which is
	// per-candidate by construction). Not persisted in detector artifacts.
	SerialEval bool
	// OnGeneration, when non-nil, is invoked after every completed CMA-ES
	// generation with the 1-based generation count — the progress hook
	// behind live audit-job reporting. Ignored by SPSA. Not persisted in
	// detector artifacts.
	OnGeneration func(gen int)
	// OnCheckpoint, when non-nil, is invoked after every completed CMA-ES
	// generation with a deep-copied snapshot of the resumable search state
	// (optimizer + mini-batch RNG). Feeding the snapshot back through
	// Resume continues the search bit-exactly — same θ, same oracle query
	// sequence — which is how the journaled job store survives restarts.
	// Not supported by SPSA. Not persisted in detector artifacts.
	OnCheckpoint func(st *SearchState)
	// Resume, when non-nil, restarts the search from an OnCheckpoint
	// snapshot instead of from scratch. The caller must supply the same
	// prompt geometry, training set, and config as the original run. Not
	// supported by SPSA. Not persisted in detector artifacts.
	Resume *SearchState
}

func (c *BlackBoxConfig) defaults() {
	if c.Iterations <= 0 {
		c.Iterations = 40
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 24
	}
	if c.Sigma0 <= 0 {
		c.Sigma0 = 0.15
	}
}

// Generations reports the resolved CMA-ES generation budget (the configured
// Iterations, or the default when unset) — the denominator of audit-job
// progress.
func (c BlackBoxConfig) Generations() int {
	c.defaults()
	return c.Iterations
}

// TrainBlackBox optimizes p.Theta using only oracle queries: the objective
// is the mini-batch cross-entropy of the oracle's confidences against the
// identity label mapping, minimized by sep-CMA-ES (or SPSA). This is the
// only access BPROM has to the suspicious model.
//
// The CMA-ES path is generation-batched by default: every training image is
// resized into the inner window once per call, each generation's λ×k
// prompted canvases are materialized into one pooled tensor, and the oracle
// sees one fused Predict per generation. The result — learned θ and oracle
// query count alike — is bit-identical to the per-candidate path
// (cfg.SerialEval), which remains as the fallback.
func TrainBlackBox(ctx context.Context, o oracle.Oracle, p *Prompt, train *data.Dataset, cfg BlackBoxConfig, r *rng.RNG) error {
	cfg.defaults()
	if train.Classes > o.NumClasses() {
		return fmt.Errorf("vp: target task has %d classes, oracle only %d", train.Classes, o.NumClasses())
	}
	if p.Source.Dim() != o.InputDim() {
		return fmt.Errorf("vp: prompt canvas %d != oracle input %d", p.Source.Dim(), o.InputDim())
	}
	if train.Len() == 0 {
		return fmt.Errorf("vp: empty prompt training set")
	}
	if cfg.UseSPSA && (cfg.Resume != nil || cfg.OnCheckpoint != nil) {
		return fmt.Errorf("vp: SPSA path does not support checkpoint/resume")
	}
	// Split order matters for determinism: the parent RNG advances once per
	// Split, so resume must perform the same splits as the original run and
	// only then overwrite the child states from the snapshot.
	batchRNG := r.Split("batches")
	if cfg.Resume != nil {
		batchRNG.SetState(cfg.Resume.BatchRNG)
	}
	work := p.Clone()
	var oracleErr error
	n := train.Len()
	k := cfg.BatchSize
	if k > n {
		k = n
	}
	// Serial objective: one oracle call per candidate, re-resizing the
	// mini-batch per evaluation. SPSA and the SerialEval fallback use it;
	// the batched path below replaces it wholesale.
	objective := func(theta []float64) float64 {
		if oracleErr != nil || ctx.Err() != nil {
			return math.Inf(1)
		}
		copy(work.Theta, theta)
		idx := batchRNG.Sample(n, k)
		x := work.Batch(train, idx)
		probs, err := o.Predict(ctx, x)
		if err != nil {
			oracleErr = err
			return math.Inf(1)
		}
		loss := 0.0
		for bi, i := range idx {
			pTrue := probs.At(bi, train.Y[i])
			loss -= math.Log(math.Max(pTrue, 1e-12))
		}
		return loss / float64(k)
	}
	// A generation evaluated after the oracle failed (or the context was
	// cancelled mid-run) scored every candidate +Inf: the optimizer update
	// after it is garbage, and checkpointing it would poison a resumed run.
	// Gate both per-generation hooks on a healthy evaluation.
	aborted := func() bool { return oracleErr != nil || ctx.Err() != nil }
	opt := cmaes.Options{
		Sigma0:   cfg.Sigma0,
		PopSize:  cfg.PopSize,
		MaxIters: cfg.Iterations,
		Lo:       0,
		Hi:       1,
	}
	if cfg.OnGeneration != nil {
		opt.OnIter = func(gen int) {
			if !aborted() {
				cfg.OnGeneration(gen)
			}
		}
	}
	if cfg.Resume != nil {
		opt.Resume = &cfg.Resume.CMA
	}
	if cfg.OnCheckpoint != nil {
		opt.OnState = func(st *cmaes.SepState) {
			if aborted() {
				return
			}
			cfg.OnCheckpoint(&SearchState{CMA: *st, BatchRNG: batchRNG.State()})
		}
	}
	if cfg.MaxQueries > 0 {
		opt.MaxEvals = cfg.MaxQueries / cfg.BatchSize
		if opt.MaxEvals < 1 {
			opt.MaxEvals = 1
		}
	}
	var best []float64
	if cfg.UseSPSA {
		spsaOpt := cmaes.Options{Lo: 0, Hi: 1, MaxEvals: opt.MaxEvals}
		res := cmaes.SPSA(ctx, objective, p.Theta, cfg.Iterations*10, 0.2, 0.05, spsaOpt, r.Split("spsa"))
		best = res.Best
	} else {
		if !cfg.SerialEval {
			ev := &genEvaluator{
				ctx:      ctx,
				oracle:   o,
				prompt:   p,
				cache:    newResizeCache(p, train),
				train:    train,
				k:        k,
				batchRNG: batchRNG,
				errp:     &oracleErr,
			}
			opt.Evaluate = ev.evaluate
		}
		res, err := cmaes.MinimizeSep(objective, p.Theta, opt, r.Split("cmaes"))
		if err != nil {
			return fmt.Errorf("vp: black-box prompt optimization: %w", err)
		}
		best = res.Best
	}
	if oracleErr != nil {
		return fmt.Errorf("vp: oracle failed during prompting: %w", oracleErr)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("vp: aborted: %w", err)
	}
	copy(p.Theta, best)
	p.clampTheta()
	return nil
}

// --- Prompted model ---------------------------------------------------------------------

// Prompted couples an oracle with a trained prompt, forming the prompted
// model f̃ = f ∘ V(·|θ): it classifies target-domain inputs.
type Prompted struct {
	Oracle oracle.Oracle
	Prompt *Prompt
}

// Confidences returns the oracle's confidence vectors for the prompted
// versions of the given target samples — the raw material of BPROM's
// meta-features. Canvases are materialized into pooled scratch and streamed
// in promptChunk-row batches (chunking is invisible to results and query
// accounting).
func (pm *Prompted) Confidences(ctx context.Context, ds *data.Dataset, idx []int) (*tensor.Tensor, error) {
	return predictPrompted(ctx, pm.Oracle, pm.Prompt, ds, idx)
}

// Accuracy evaluates prompted-task accuracy on ds under the identity label
// mapping — the quantity whose degradation signals class subspace
// inconsistency (paper Tables 2–4).
func (pm *Prompted) Accuracy(ctx context.Context, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, fmt.Errorf("vp: empty evaluation set")
	}
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	probs, err := predictPrompted(ctx, pm.Oracle, pm.Prompt, ds, idx)
	if err != nil {
		return 0, err
	}
	k := probs.Dim(1)
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		row := probs.Data[i*k : (i+1)*k]
		best, bj := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bj = v, j
			}
		}
		if bj == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
