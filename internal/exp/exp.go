// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index) at
// three scales. "tiny" backs the benchmark suite, "small" produces the
// numbers recorded in EXPERIMENTS.md, "full" runs the largest CPU-feasible
// configuration.
package exp

import (
	"fmt"
	"strings"

	"bprom/internal/data"
	"bprom/internal/rng"
)

// Scale selects an experiment size.
type Scale string

// The supported scales.
const (
	Tiny  Scale = "tiny"
	Small Scale = "small"
	Full  Scale = "full"
)

// Params sizes every experiment. All counts are per class unless noted.
type Params struct {
	Scale Scale

	SrcTrain, SrcTest int // source-domain samples per class
	TgtTrain, TgtTest int // external-domain (DT) samples per class

	Epochs     int // suspicious/shadow training epochs
	Hidden     int
	CMAIters   int // black-box prompting budget
	WBEpochs   int // white-box prompting epochs
	PromptFrac float64

	ShadowClean, ShadowBackdoor int
	SusClean, SusPerAttack      int // suspicious-model battery sizes

	ReservedFrac float64 // DS fraction of the source test set
	QuerySamples int
	ForestTrees  int

	// MaxClasses caps class counts of the very large datasets
	// (Tiny-ImageNet: 200, ImageNet: 1000) so CPU training stays feasible;
	// 0 = no cap. Documented substitution (DESIGN.md).
	MaxClasses int

	// InputAUROCSamples is the benign/triggered sample count for
	// input-level detector evaluation.
	InputAUROCSamples int

	Seed uint64
}

// ParamsFor returns the preset for a scale.
func ParamsFor(scale Scale) Params {
	switch scale {
	case Tiny:
		// Sized so the FULL benchmark suite (33 experiments) completes in
		// roughly ten minutes on a laptop-class CPU.
		return Params{
			Scale: Tiny, SrcTrain: 22, SrcTest: 80, TgtTrain: 10, TgtTest: 8,
			Epochs: 8, Hidden: 24, CMAIters: 15, WBEpochs: 5, PromptFrac: 0.83,
			ShadowClean: 3, ShadowBackdoor: 3, SusClean: 2, SusPerAttack: 1,
			ReservedFrac: 0.10, QuerySamples: 16, ForestTrees: 100,
			MaxClasses: 16, InputAUROCSamples: 24, Seed: 1,
		}
	case Full:
		return Params{
			Scale: Full, SrcTrain: 80, SrcTest: 200, TgtTrain: 25, TgtTest: 15,
			Epochs: 20, Hidden: 32, CMAIters: 60, WBEpochs: 12, PromptFrac: 0.83,
			ShadowClean: 20, ShadowBackdoor: 20, SusClean: 10, SusPerAttack: 4,
			ReservedFrac: 0.10, QuerySamples: 30, ForestTrees: 300,
			MaxClasses: 0, InputAUROCSamples: 80, Seed: 1,
		}
	default: // Small
		return Params{
			Scale: Small, SrcTrain: 50, SrcTest: 150, TgtTrain: 20, TgtTest: 10,
			Epochs: 15, Hidden: 28, CMAIters: 40, WBEpochs: 8, PromptFrac: 0.83,
			ShadowClean: 8, ShadowBackdoor: 8, SusClean: 6, SusPerAttack: 2,
			ReservedFrac: 0.10, QuerySamples: 30, ForestTrees: 200,
			MaxClasses: 40, InputAUROCSamples: 40, Seed: 1,
		}
	}
}

// Table is one reproduced table/figure: rendered rows plus the raw cells.
type Table struct {
	ID      string
	Caption string
	Header  []string
	Rows    [][]string
	// Notes records scale caveats and substitutions for EXPERIMENTS.md.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns an aligned plain-text rendering.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Caption)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV returns a comma-separated rendering (quotes are not needed for the
// numeric/identifier cells these tables hold).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// world bundles the datasets one experiment needs.
type world struct {
	srcTrain, srcTest *data.Dataset // suspicious-model domain
	reserved          *data.Dataset // DS
	tgtTrain, tgtTest *data.Dataset // DT splits
}

// buildWorld generates the datasets for (source, external) at the given
// scale. Class counts of very large datasets are capped per Params.
func buildWorld(p Params, source, external string, seed uint64) (*world, error) {
	srcSpec, ok := data.SpecFor(source)
	if !ok {
		return nil, fmt.Errorf("exp: unknown source dataset %q", source)
	}
	extSpec, ok := data.SpecFor(external)
	if !ok {
		return nil, fmt.Errorf("exp: unknown external dataset %q", external)
	}
	if p.MaxClasses > 0 && srcSpec.Classes > p.MaxClasses {
		srcSpec.Classes = p.MaxClasses
	}
	if p.MaxClasses > 0 && extSpec.Classes > p.MaxClasses {
		extSpec.Classes = p.MaxClasses
	}
	r := rng.New(p.Seed).Split("world", int(seed))
	srcGen := data.NewGenerator(srcSpec, p.Seed^0x5151)
	srcTrain, srcTest := srcGen.GenerateSplit(p.SrcTrain, p.SrcTest, r.Split("src"))
	tgtGen := data.NewGenerator(extSpec, p.Seed^0xA7A7)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(p.TgtTrain, p.TgtTest, r.Split("tgt"))
	return &world{
		srcTrain: srcTrain,
		srcTest:  srcTest,
		reserved: srcTest.Reserve(p.ReservedFrac, r.Split("reserve")),
		tgtTrain: tgtTrain,
		tgtTest:  tgtTest,
	}, nil
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
